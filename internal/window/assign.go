package window

import (
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

// ID identifies one window instance by its half-open extent
// [Start, End) in ordering-attribute units.
type ID struct {
	Start, End int64
}

// Assigner maps a tuple timestamp to the window instances it belongs to,
// and determines when instances close. This is the aggregation-side view
// of windows: a tumbling window assigns each tuple to exactly one
// instance, a sliding window with slide s and range r to r/s instances,
// an agglomerative (landmark) window to every instance from its arrival
// on (slide 27).
type Assigner struct {
	spec Spec
	buf  []ID
}

// NewAssigner builds an assigner for a validated time-window spec.
func NewAssigner(spec Spec) *Assigner { return &Assigner{spec: spec} }

// Assign returns the window instances containing ts. The returned slice
// is reused across calls. For landmark windows it returns the single
// growing instance [0, next-emission-boundary).
func (a *Assigner) Assign(ts int64) []ID {
	a.buf = a.buf[:0]
	s := a.spec
	if s.Landmark {
		end := (ts/s.Slide + 1) * s.Slide
		a.buf = append(a.buf, ID{Start: 0, End: end})
		return a.buf
	}
	// The last window starting at or before ts starts at
	// floor(ts/slide)*slide; earlier windows at multiples of slide back
	// while they still cover ts.
	last := (ts / s.Slide) * s.Slide
	for start := last; start > ts-s.Range; start -= s.Slide {
		if start < 0 {
			break
		}
		a.buf = append(a.buf, ID{Start: start, End: start + s.Range})
	}
	return a.buf
}

// Closed returns the largest window end boundary <= now: all window
// instances with End <= that boundary can be finalized once time has
// advanced to now. Returns 0 when no instance has closed yet.
func (a *Assigner) Closed(now int64) int64 {
	s := a.spec
	if s.Landmark {
		// Landmark windows close (emit a snapshot) at every landmark
		// emission boundary: multiples of the slide.
		return (now / s.Slide) * s.Slide
	}
	// Non-landmark ends are of the form k*Slide + Range, which lies on
	// slide multiples only when Range is a multiple of Slide. The largest
	// end <= now is floor((now-Range)/Slide)*Slide + Range.
	if now < s.Range {
		return 0
	}
	return ((now-s.Range)/s.Slide)*s.Slide + s.Range
}

// Spec returns the assigner's window spec.
func (a *Assigner) Spec() Spec { return a.spec }

// PunctBuffer implements punctuation-based windows [TMSF03] (slide 28):
// tuples accumulate until a punctuation arrives; the punctuation then
// closes and releases exactly the tuples it covers (e.g. all bids of a
// closed auction).
type PunctBuffer struct {
	pending []*tuple.Tuple
	bytes   int
}

// NewPunctBuffer builds an empty punctuation window buffer.
func NewPunctBuffer() *PunctBuffer { return &PunctBuffer{} }

// Insert adds a tuple to the open window.
func (p *PunctBuffer) Insert(t *tuple.Tuple) {
	p.pending = append(p.pending, t)
	p.bytes += t.MemSize()
}

// Close applies a punctuation: every pending tuple the punctuation
// covers is removed and returned (the closed window); uncovered tuples
// stay pending.
func (p *PunctBuffer) Close(punct *stream.Punctuation) []*tuple.Tuple {
	var closed []*tuple.Tuple
	keep := p.pending[:0]
	for _, t := range p.pending {
		if punct.Matches(t) {
			closed = append(closed, t)
			p.bytes -= t.MemSize()
		} else {
			keep = append(keep, t)
		}
	}
	// Clear the tail so released tuples are collectable.
	for i := len(keep); i < len(p.pending); i++ {
		p.pending[i] = nil
	}
	p.pending = keep
	return closed
}

// Len reports the number of pending tuples.
func (p *PunctBuffer) Len() int { return len(p.pending) }

// MemSize reports the approximate bytes held.
func (p *PunctBuffer) MemSize() int { return p.bytes }

// Partitioned wraps per-key buffers: the "partitioning tuples in a
// window" variant of slide 26 (CQL's PARTITION BY). Each distinct key
// gets an independent buffer built by mk.
type Partitioned struct {
	keyIdx []int
	mk     func() Buffer
	parts  map[uint64]*part
}

type part struct {
	sample *tuple.Tuple // representative tuple for collision checks
	buf    Buffer
}

// NewPartitioned builds a partitioned buffer keyed on the given field
// positions.
func NewPartitioned(keyIdx []int, mk func() Buffer) *Partitioned {
	return &Partitioned{keyIdx: keyIdx, mk: mk, parts: make(map[uint64]*part)}
}

// Insert routes the tuple to its partition's buffer.
func (p *Partitioned) Insert(t *tuple.Tuple) {
	h := t.Key(p.keyIdx)
	pt, ok := p.parts[h]
	if !ok {
		pt = &part{sample: t, buf: p.mk()}
		p.parts[h] = pt
	}
	pt.buf.Insert(t)
}

// Invalidate expires tuples in every partition and prunes empty ones.
func (p *Partitioned) Invalidate(now int64) int {
	dropped := 0
	for h, pt := range p.parts {
		dropped += pt.buf.Invalidate(now)
		if pt.buf.Len() == 0 {
			delete(p.parts, h)
		}
	}
	return dropped
}

// Each visits all live tuples partition by partition.
func (p *Partitioned) Each(f func(*tuple.Tuple) bool) {
	for _, pt := range p.parts {
		stop := false
		pt.buf.Each(func(t *tuple.Tuple) bool {
			if !f(t) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// EachInPartition visits live tuples whose key matches t's key.
func (p *Partitioned) EachInPartition(t *tuple.Tuple, f func(*tuple.Tuple) bool) {
	if pt, ok := p.parts[t.Key(p.keyIdx)]; ok {
		pt.buf.Each(f)
	}
}

// Len implements Buffer.
func (p *Partitioned) Len() int {
	n := 0
	for _, pt := range p.parts {
		n += pt.buf.Len()
	}
	return n
}

// MemSize implements Buffer.
func (p *Partitioned) MemSize() int {
	n := 0
	for _, pt := range p.parts {
		n += pt.buf.MemSize()
	}
	return n
}

// Partitions reports the number of live partitions.
func (p *Partitioned) Partitions() int { return len(p.parts) }
