package ops

// Checkpoint support (ckpt.Snapshotter) for the physical operators.
// Snapshot captures an operator's complete logical state; Restore reads
// it back into a freshly constructed operator of identical
// configuration. The contract in both directions is exactness: a
// restored operator must produce byte-identical output to one that
// never stopped, so restore paths rebuild state through raw structure
// writes (FIFO pushes, index bucket appends) rather than the normal
// insert paths, whose sweeps and evictions would perturb the physical
// layout mid-rebuild.

import (
	"encoding/binary"
	"fmt"
	"os"
	"sort"

	"streamdb/internal/ckpt"
	"streamdb/internal/tuple"
)

// appendXTuple writes one tuple in the spill-file record format
// (varint ats | varint dts | self-describing tuple) shared with
// spillLargest.
func appendXTuple(buf []byte, xt xtuple) []byte {
	buf = binary.AppendVarint(buf, xt.ats)
	buf = binary.AppendVarint(buf, xt.dts)
	return tuple.AppendEncode(buf, xt.t)
}

// Snapshot implements ckpt.Snapshotter. Each side's window is captured
// as a schema-coded tuple batch in FIFO (insertion) order plus the
// watermark scalars; the hash index is NOT serialized — for JoinHash
// sides it always holds exactly the FIFO's tuples in insertion order,
// so Restore rebuilds it.
func (j *WindowJoin) Snapshot(enc *ckpt.Encoder) error {
	enc.Varint(j.probes)
	enc.Varint(j.emitted)
	enc.Varint(j.received[0])
	enc.Varint(j.received[1])
	schemas := [2]*tuple.Schema{j.leftSch, j.rightSch}
	for i, s := range j.sides {
		if err := enc.TupleBatch(schemas[i], s.fifo.AppendTo(nil)); err != nil {
			return fmt.Errorf("ops: snapshot %s side %d: %w", j.name, i, err)
		}
		enc.Varint(s.wm)
		enc.Bool(s.sorted)
		enc.Varint(s.lastIns)
		enc.Int(s.pendingWM)
		enc.Varint(s.expired)
		enc.Varint(s.evicted)
	}
	return nil
}

// Restore implements ckpt.Snapshotter on a freshly built WindowJoin.
// Tuples are re-pushed raw: no sweep, no eviction, no watermark
// advance — the snapshot already reflects all of those.
func (j *WindowJoin) Restore(dec *ckpt.Decoder) error {
	j.probes = dec.Varint()
	j.emitted = dec.Varint()
	j.received[0] = dec.Varint()
	j.received[1] = dec.Varint()
	schemas := [2]*tuple.Schema{j.leftSch, j.rightSch}
	for i, s := range j.sides {
		if s.fifo.Len() != 0 {
			return fmt.Errorf("ops: restore %s side %d: window not empty", j.name, i)
		}
		for _, t := range dec.TupleBatch(schemas[i]) {
			s.fifo.Push(t)
			if s.index != nil {
				h := s.hashOf(t)
				s.index[h] = append(s.index[h], t)
			}
		}
		s.wm = dec.Varint()
		s.sorted = dec.Bool()
		s.lastIns = dec.Varint()
		s.pendingWM = dec.Int()
		s.expired = dec.Varint()
		s.evicted = dec.Varint()
	}
	return dec.Err()
}

// encodeXTuples writes one partition phase (memory or disk) as the
// ats/dts interval pairs followed by the tuples themselves in the
// schema-coded batch encoding.
func encodeXTuples(enc *ckpt.Encoder, sch *tuple.Schema, xs []xtuple) error {
	enc.Uvarint(uint64(len(xs)))
	ts := make([]*tuple.Tuple, len(xs))
	for i, xt := range xs {
		enc.Varint(xt.ats)
		enc.Varint(xt.dts)
		ts[i] = xt.t
	}
	return enc.TupleBatch(sch, ts)
}

func decodeXTuples(dec *ckpt.Decoder, sch *tuple.Schema) ([]xtuple, error) {
	n := dec.Uvarint()
	if err := dec.Err(); err != nil {
		return nil, err
	}
	type iv struct{ ats, dts int64 }
	ivs := make([]iv, n)
	for i := range ivs {
		ivs[i] = iv{dec.Varint(), dec.Varint()}
	}
	ts := dec.TupleBatch(sch)
	if err := dec.Err(); err != nil {
		return nil, err
	}
	if len(ts) != len(ivs) {
		return nil, fmt.Errorf("ops: xjoin snapshot has %d intervals for %d tuples", len(ivs), len(ts))
	}
	out := make([]xtuple, n)
	for i := range out {
		out[i] = xtuple{t: ts[i], ats: ivs[i].ats, dts: ivs[i].dts}
	}
	return out, nil
}

// Snapshot implements ckpt.Snapshotter. Both phases of every partition
// are captured — the in-memory xtuples AND the spilled disk tuples
// (read back through loadPart), because spill files live in a temp
// directory that does not survive the crash the checkpoint is for.
func (x *XJoin) Snapshot(enc *ckpt.Encoder) error {
	enc.Varint(x.seq)
	enc.Int(x.inMem)
	enc.Int(x.nparts)
	enc.Varint(x.emitted)
	enc.Varint(x.spills)
	enc.Varint(x.spilledTs)
	enc.Varint(x.diskBytes)
	enc.Bool(x.cleaned)
	schemas := [2]*tuple.Schema{x.leftSch, x.rightSch}
	for s := 0; s < 2; s++ {
		for p := 0; p < x.nparts; p++ {
			part := x.parts[s][p]
			if err := encodeXTuples(enc, schemas[s], part.mem); err != nil {
				return fmt.Errorf("ops: snapshot %s: %w", x.name, err)
			}
			disk, err := x.loadPart(part)
			if err != nil {
				return fmt.Errorf("ops: snapshot %s: %w", x.name, err)
			}
			if err := encodeXTuples(enc, schemas[s], disk); err != nil {
				return fmt.Errorf("ops: snapshot %s: %w", x.name, err)
			}
		}
	}
	return nil
}

// Restore implements ckpt.Snapshotter on a freshly built XJoin of
// identical configuration. Disk-phase tuples are re-spilled to fresh
// files under the new instance's directory, preserving their original
// residency intervals so the cleanup phase's overlap rule still
// deduplicates exactly.
func (x *XJoin) Restore(dec *ckpt.Decoder) error {
	x.seq = dec.Varint()
	x.inMem = dec.Int()
	if n := dec.Int(); n != x.nparts {
		return fmt.Errorf("ops: restore %s: snapshot has %d partitions, operator has %d", x.name, n, x.nparts)
	}
	x.emitted = dec.Varint()
	x.spills = dec.Varint()
	x.spilledTs = dec.Varint()
	x.diskBytes = dec.Varint()
	x.cleaned = dec.Bool()
	schemas := [2]*tuple.Schema{x.leftSch, x.rightSch}
	for s := 0; s < 2; s++ {
		for p := 0; p < x.nparts; p++ {
			part := x.parts[s][p]
			mem, err := decodeXTuples(dec, schemas[s])
			if err != nil {
				return err
			}
			part.mem = mem
			disk, err := decodeXTuples(dec, schemas[s])
			if err != nil {
				return err
			}
			if len(disk) > 0 {
				if err := x.respill(part, disk); err != nil {
					return fmt.Errorf("ops: restore %s: %w", x.name, err)
				}
			}
		}
	}
	return dec.Err()
}

// respill writes restored disk-phase tuples into a fresh spill file.
func (x *XJoin) respill(p *xpart, disk []xtuple) error {
	f, err := os.CreateTemp(x.dir, "part")
	if err != nil {
		return err
	}
	var buf []byte
	for _, xt := range disk {
		buf = appendXTuple(buf, xt)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	p.file = f
	p.n = int64(len(disk))
	return nil
}

// Snapshot implements ckpt.Snapshotter: selection is stateless apart
// from its observation counters.
func (s *Select) Snapshot(enc *ckpt.Encoder) error {
	enc.Varint(s.in)
	enc.Varint(s.out)
	return nil
}

// Restore implements ckpt.Snapshotter.
func (s *Select) Restore(dec *ckpt.Decoder) error {
	s.in = dec.Varint()
	s.out = dec.Varint()
	return dec.Err()
}

// Snapshot implements ckpt.Snapshotter: projection holds no state.
func (p *Project) Snapshot(*ckpt.Encoder) error { return nil }

// Restore implements ckpt.Snapshotter.
func (p *Project) Restore(*ckpt.Decoder) error { return nil }

// Snapshot implements ckpt.Snapshotter. The seen table is flattened in
// deterministic (hash-sorted, bucket-order) layout; hashes are
// recomputed on restore from the key columns.
func (d *DupElim) Snapshot(enc *ckpt.Encoder) error {
	enc.Varint(d.winEnd)
	enc.Int(d.bytes)
	hs := make([]uint64, 0, len(d.seen))
	for h := range d.seen {
		hs = append(hs, h)
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	var flat []*tuple.Tuple
	for _, h := range hs {
		flat = append(flat, d.seen[h]...)
	}
	return enc.TupleBatch(d.sch, flat)
}

// Restore implements ckpt.Snapshotter.
func (d *DupElim) Restore(dec *ckpt.Decoder) error {
	d.winEnd = dec.Varint()
	d.bytes = dec.Int()
	d.seen = make(map[uint64][]*tuple.Tuple)
	for _, t := range dec.TupleBatch(d.sch) {
		h := t.Key(d.keyIdx)
		d.seen[h] = append(d.seen[h], t)
	}
	return dec.Err()
}
