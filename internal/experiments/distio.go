package experiments

import (
	"fmt"
	"math/rand"

	"streamdb/internal/dsms"
	"streamdb/internal/hancock"
)

// E13BlockIO reproduces the Hancock I/O lesson (slides 6, 21, 56):
// signature maintenance with block-sorted sequential merges vs
// per-record random access. The seek count is the cost that made the
// pre-Hancock code "I/O intensive".
func E13BlockIO(scale Scale, dir1, dir2 string) *Table {
	t := &Table{
		ID:     "E13",
		Title:  "per-element vs block-processing I/O (slides 6, 21, 56)",
		Header: []string{"strategy", "days", "lines", "seeks", "seqMB", "randMB"},
	}
	lines := scale.N(20000)
	days := 3
	cfg := hancock.GenConfig{
		Seed: 13, Lines: lines, CallsPerLinePerDay: 2,
		FraudLines: []int{1}, FraudStartDay: 99,
	}
	merge, err := hancock.NewSigStore(dir1)
	if err != nil {
		panic(err)
	}
	random, err := hancock.NewSigStore(dir2)
	if err != nil {
		panic(err)
	}
	for day := 0; day < days; day++ {
		calls := hancock.GenerateDay(cfg, day)
		stats := hancock.CollectDayStats(calls)
		if err := merge.MergeUpdate(0.3, stats); err != nil {
			panic(err)
		}
		if err := random.RandomUpdate(0.3, stats); err != nil {
			panic(err)
		}
	}
	ms, rs := merge.Stats, random.Stats
	t.AddRow("block merge (Hancock)", days, lines, ms.Seeks,
		fmt.Sprintf("%.1f", float64(ms.SeqReadBytes+ms.SeqWriteBytes)/1e6),
		fmt.Sprintf("%.1f", float64(ms.RandReadBytes+ms.RandWriteBytes)/1e6))
	t.AddRow("per-record random", days, lines, rs.Seeks,
		fmt.Sprintf("%.1f", float64(rs.SeqReadBytes+rs.SeqWriteBytes)/1e6),
		fmt.Sprintf("%.1f", float64(rs.RandReadBytes+rs.RandWriteBytes)/1e6))
	t.Notes = append(t.Notes,
		"expected shape: the merge strategy performs zero seeks; the per-record strategy seeks O(updates * log store)")
	return t
}

// E13FraudDetection is the companion application result: the Hancock
// signature program catching injected fraud lines (slide 6).
func E13FraudDetection(scale Scale, dir string) *Table {
	t := &Table{
		ID:     "E13b",
		Title:  "signature-based fraud detection (slide 6)",
		Header: []string{"day", "alerts", "truePositives", "falsePositives", "recall"},
	}
	lines := scale.N(5000)
	fraudLines := []int{7, 42, lines / 2, lines - 1}
	cfg := hancock.GenConfig{
		Seed: 14, Lines: lines, CallsPerLinePerDay: 3,
		FraudLines: fraudLines, FraudStartDay: 3,
	}
	store, err := hancock.NewSigStore(dir)
	if err != nil {
		panic(err)
	}
	isFraud := map[uint64]bool{}
	for _, l := range fraudLines {
		isFraud[uint64(l)] = true
	}
	const threshold = 50.0
	for day := 0; day < 5; day++ {
		calls := hancock.GenerateDay(cfg, day)
		stats := hancock.CollectDayStats(calls)
		alerts, tp := 0, 0
		alerted := map[uint64]bool{}
		if day >= 1 { // need at least one day of signature history
			for line, d := range stats {
				sig, ok, err := store.Get(line)
				if err != nil {
					panic(err)
				}
				if !ok {
					continue
				}
				if sig.FraudScore(d) > threshold {
					alerts++
					alerted[line] = true
					if isFraud[line] {
						tp++
					}
				}
			}
		}
		// Alerted days are excluded from blending: folding fraud into
		// the signature would normalize it away.
		clean := make(map[uint64]hancock.DayStats, len(stats))
		for line, d := range stats {
			if !alerted[line] {
				clean[line] = d
			}
		}
		if err := store.MergeUpdate(0.3, clean); err != nil {
			panic(err)
		}
		recall := 0.0
		if day >= cfg.FraudStartDay {
			recall = float64(tp) / float64(len(fraudLines))
		}
		t.AddRow(day, alerts, tp, alerts-tp, recall)
	}
	t.Notes = append(t.Notes,
		"expected shape: zero alerts before the fraud starts (day 3), all fraud lines caught after, with few false positives")
	return t
}

// E15DistributedFilters reproduces slide 55 / [OJW03]: adaptive filters
// for continuous distributed monitoring — messages sent vs precision
// bound, against the ship-every-update baseline.
func E15DistributedFilters(scale Scale) *Table {
	t := &Table{
		ID:     "E15",
		Title:  "distributed evaluation with adaptive filters (slide 55)",
		Header: []string{"precision", "updates", "messages", "saving", "maxErr", "withinBound"},
	}
	const sites = 8
	steps := scale.N(100000)
	for _, precision := range []float64{0, 1, 10, 100} {
		c, err := dsms.NewCoordinator(sites, precision)
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(15))
		vals := make([]float64, sites)
		maxErr := 0.0
		within := true
		for s := 0; s < steps; s++ {
			i := rng.Intn(sites)
			vals[i] += rng.NormFloat64()
			c.Update(i, vals[i])
			if e := c.Error(); e > maxErr {
				maxErr = e
			}
			if c.Error() > precision+1e-9 {
				within = false
			}
			if s%1000 == 999 {
				c.Reallocate()
			}
		}
		saving := "1.0x"
		if c.Messages() > 0 {
			saving = fmt.Sprintf("%.1fx", float64(c.TotalUpdates())/float64(c.Messages()))
		}
		t.AddRow(precision, c.TotalUpdates(), c.Messages(), saving,
			fmt.Sprintf("%.2f", maxErr), within)
	}
	t.Notes = append(t.Notes,
		"expected shape: communication falls as the precision bound loosens; the error never exceeds the bound")
	return t
}
