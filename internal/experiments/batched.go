package experiments

import (
	"fmt"
	"time"

	"streamdb/internal/exec"
	"streamdb/internal/expr"
	"streamdb/internal/ops"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

// E18BatchedExecution traces the throughput-vs-batch-size curve of the
// batched concurrent engine on a filter pipeline, and checks at every
// point that batching is semantically invisible: the output sequence is
// byte-identical to the element-at-a-time (batch = 1) run. The expected
// shape is the classic amortization curve — steep gains from 1 to ~64
// as channel operations, message headers, and sink handoffs are shared
// across a batch, then a flattening tail once per-element work
// dominates.
func E18BatchedExecution(scale Scale) *Table {
	t := &Table{
		ID:     "E18",
		Title:  "batched concurrent execution: throughput vs batch size",
		Header: []string{"batch", "replicas", "elems", "elems/s", "speedup", "exact"},
	}

	n := scale.N(200000)
	sch := stream.TrafficSchema("Traffic")
	elems := stream.Drain(stream.Limit(stream.NewTrafficStream(7, 1e6, 1000), n), -1)

	run := func(batch, replicas int) ([]byte, float64) {
		var out []byte
		g := exec.NewGraph(func(e stream.Element) {
			if !e.IsPunct() {
				out = tuple.AppendEncode(out, e.Tuple)
			}
		})
		src := g.AddSource(stream.FromElements(sch, elems...))
		pred, err := expr.NewBin(expr.OpGt, expr.MustColumn(sch, "length"), expr.Constant(tuple.Int(512)))
		if err != nil {
			panic(err)
		}
		sel, err := ops.NewSelect("sel", sch, pred, -1, 1)
		if err != nil {
			panic(err)
		}
		id := g.AddOp(sel)
		if err := g.ConnectSource(src, id, 0); err != nil {
			panic(err)
		}
		if err := g.ConnectOut(id); err != nil {
			panic(err)
		}
		start := time.Now()
		g.RunWith(-1, exec.RunOptions{BatchSize: batch, Parallelism: replicas})
		return out, float64(n) / time.Since(start).Seconds()
	}

	var baseline []byte
	var baseRate float64
	for _, cfg := range []struct{ batch, replicas int }{
		{1, 1}, {8, 1}, {64, 1}, {256, 1}, {64, 4},
	} {
		out, rate := run(cfg.batch, cfg.replicas)
		if cfg.batch == 1 && cfg.replicas == 1 {
			baseline, baseRate = out, rate
		}
		exact := string(out) == string(baseline)
		t.AddRow(cfg.batch, cfg.replicas, n,
			fmt.Sprintf("%.3g", rate), fmt.Sprintf("%.2fx", rate/baseRate), exact)
	}
	t.Notes = append(t.Notes,
		"expected shape: throughput climbs steeply to batch~64, then flattens as per-element work dominates",
		"exact = output byte-identical to the batch=1 run: batching and replication preserve arrival order per edge (replication restores it by sequence-numbered merge)",
		"replicated rows measure the split/merge machinery; parallel speedup requires multiple cores")
	return t
}
