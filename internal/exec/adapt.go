// Adaptive runtime: a feedback controller inside RunWith.
//
// The paper's adaptivity machinery — rate-based operating points [VN02],
// Chain scheduling priorities [BBDM03], QoS load shedding (slide 44),
// eddies — historically steered only the serial virtual-time engine.
// This controller closes the loop for the concurrent engine: a per-run
// goroutine samples every node's edge-queue occupancy (the engine
// already counts queued elements per node for MaxQueue) on a fixed
// cadence and acts on it live, in escalation order:
//
//  1. micro-batch size — each producer's edge writer re-reads its batch
//     target at flush boundaries: full batches under pressure for
//     throughput, decaying toward MinBatch when the consumers idle so
//     punctuation latency shrinks;
//  2. replication — stateless (ops.Replicable) and partial-aggregation
//     (ops.PartialAggregable) lanes grow and shrink their active worker
//     set instantly (replicas are stateless or mergeable, so assignment
//     is free to change at any batch boundary); key-partitioned lanes
//     (ops.KeyPartitionable / ColPartitionable) re-split live through
//     the checkpoint path: the splitter quiesces the replicas, each one
//     Snapshots, and every new active replica rebuilds its slice of the
//     key space with ops.StateRescaler.RestorePartition;
//  3. semantic shedding — only when every pressured scalable node is
//     already at the pool ceiling does the controller raise the drop
//     rate of in-graph shedders (internal/shed), before queues hit
//     their capacity instead of after, and decays it once pressure
//     clears.
//
// Which backlogged node grows first is decided by Chain-scheduling
// drain priority: sched.Slopes over the graph's declared ops.Costs
// gives the steepest memory-drop-per-cost segment each node starts,
// and the controller multiplies occupancy by that slope. Initial
// operating points are seeded from the rate-based model: with
// AdaptConfig.ExpectedRate set, each costed stage starts at the
// replica count the [VN02] service-demand model predicts it needs.
//
// Everything the controller reads or writes crosses goroutines through
// atomics (queue occupancy, batch targets, active widths, shed rates),
// so the data path takes no locks and no per-element overhead beyond
// what the engine already paid. Decisions never change results: every
// lane's order-restoring merge is width-independent, batch sizing is
// semantically invisible by the engine's batching rules, and shedders
// stay at rate 0 below capacity — so below capacity the adaptive run
// remains byte-identical to the serial engine.
package exec

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"streamdb/internal/ops"
	"streamdb/internal/optimizer/rate"
	"streamdb/internal/sched"
)

// Lane kinds recorded per node for the controller.
const (
	laneStatic   = int8(iota) // runNode: not scalable
	laneRepl                  // runReplicated: stateless clones
	lanePartial               // runPartialReplicated: partial replicas + combiner
	laneKeyPart               // runKeyPartitioned / runKeyPartitionedCol
)

// AdaptConfig enables the adaptive controller in RunWith. Adaptation is
// mutually exclusive with live barrier checkpointing and with Restore
// (both pin the lane layout for the whole run); when either is set the
// controller is disabled for that run.
type AdaptConfig struct {
	// Interval is the controller's sample cadence; <= 0 uses 2ms.
	Interval time.Duration
	// MaxParallelism caps how far the controller may grow any node's
	// replica set. <= 0 uses max(Parallelism, GOMAXPROCS). The worker
	// pools are sized to this ceiling up front; growth only activates
	// already-spawned workers.
	MaxParallelism int
	// MinBatch is the floor the per-edge batch target may decay to when
	// the pipeline idles; <= 0 uses 8 (capped at BatchSize).
	MinBatch int
	// HighWater and LowWater are queue-occupancy thresholds in [0,1]
	// (fraction of an edge's element capacity). Defaults 0.5 and 0.1.
	HighWater, LowWater float64
	// MaxShedRate caps the controller-imposed drop rate; <= 0 uses 0.95.
	MaxShedRate float64
	// ExpectedRate, when > 0, seeds initial replica counts from the
	// rate-based model: each stage declaring ops.Costs starts at the
	// width its service demand at this input rate requires (UnitCost is
	// interpreted relative to a per-replica capacity of ExpectedRate
	// tuples/interval).
	ExpectedRate float64
	// OnDecision, when set, observes every control action as it is
	// taken (from the controller goroutine; it must not call back into
	// the engine).
	OnDecision func(AdaptDecision)

	// testWant, when set (tests only), overrides the controller's
	// replica-width policy: called once per node per tick with the tick
	// index, a returned value > 0 becomes the wanted width.
	testWant func(id NodeID, tick int) int
}

// AdaptDecision is one controller action, for observability.
type AdaptDecision struct {
	Node     NodeID // -1 for graph-wide actions (shed rate)
	Op       string
	Action   string // "grow" | "shrink" | "batch" | "shed"
	Replicas int
	Batch    int
	ShedRate float64
	// Occupancy is the queue occupancy (fraction of edge capacity) that
	// triggered the action.
	Occupancy float64
}

// rateSetter is what the controller needs from an in-graph shedder
// (internal/shed.Random, internal/shed.Semantic — matched structurally
// so exec does not import shed).
type rateSetter interface {
	SetRate(float64)
	Rate() float64
}

// adaptState is the controller half of one adaptive RunWith: shared
// atomics the lanes read, plus the controller goroutine's bookkeeping.
type adaptState struct {
	cfg  AdaptConfig
	maxP int // worker-pool ceiling

	// batchTgt holds the per-producer micro-batch target: slot i < nodes
	// is node i, slot nodes+j is source j. Edge writers re-read their
	// slot at flush boundaries.
	batchTgt []int64
	// actP is each node's active replica width (what splitters route
	// over); wantP is the width the controller asks key-partitioned
	// splitters to re-split to at their next safe point.
	actP  []int32
	wantP []int32

	// Controller-local (single goroutine) state.
	kind     []int8
	rescaler []bool // keypart node supports live re-split
	shed     []int  // node ids of in-graph shedders
	prio     []float64
	cons     [][]int // consumers fed by each producer slot
	prods    [][]int // producer slots feeding each node
	lowTicks []int
	shedRate float64
	ticks    int

	done chan struct{}
	wg   sync.WaitGroup
}

// newAdaptState builds the controller state for a run; lanes fill in
// kind/rescaler as they are spawned.
func newAdaptState(g *Graph, opts RunOptions, maxP int) *adaptState {
	cfg := *opts.Adapt
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Millisecond
	}
	if cfg.MinBatch <= 0 {
		cfg.MinBatch = 8
	}
	if cfg.MinBatch > opts.BatchSize {
		cfg.MinBatch = opts.BatchSize
	}
	if cfg.HighWater <= 0 || cfg.HighWater > 1 {
		cfg.HighWater = 0.5
	}
	if cfg.LowWater <= 0 || cfg.LowWater >= cfg.HighWater {
		cfg.LowWater = cfg.HighWater / 5
	}
	if cfg.MaxShedRate <= 0 || cfg.MaxShedRate > 1 {
		cfg.MaxShedRate = 0.95
	}
	nn := len(g.nodes)
	a := &adaptState{
		cfg:      cfg,
		maxP:     maxP,
		batchTgt: make([]int64, nn+len(g.sources)),
		actP:     make([]int32, nn),
		wantP:    make([]int32, nn),
		kind:     make([]int8, nn),
		rescaler: make([]bool, nn),
		prio:     make([]float64, nn),
		cons:     make([][]int, nn+len(g.sources)),
		prods:    make([][]int, nn),
		lowTicks: make([]int, nn),
		done:     make(chan struct{}),
	}
	for i := range a.batchTgt {
		a.batchTgt[i] = int64(opts.BatchSize)
	}
	for i := range a.actP {
		a.actP[i] = int32(opts.Parallelism)
		a.wantP[i] = int32(opts.Parallelism)
	}
	// Producer → consumer map for per-edge batch targets, and shedder
	// discovery.
	for i, n := range g.nodes {
		for _, ed := range n.out {
			if ed.to >= 0 {
				a.cons[i] = append(a.cons[i], int(ed.to))
				a.prods[ed.to] = append(a.prods[ed.to], i)
			}
		}
		if _, ok := n.op.(rateSetter); ok {
			a.shed = append(a.shed, i)
		}
	}
	for j, s := range g.sources {
		for _, ed := range s.out {
			if ed.to >= 0 {
				a.cons[nn+j] = append(a.cons[nn+j], int(ed.to))
				a.prods[ed.to] = append(a.prods[ed.to], nn+j)
			}
		}
	}
	// Chain-scheduling drain priority: build the progress chart over the
	// nodes in insertion order (a valid topological order for graphs
	// built front-to-back) from declared costs; nodes without ops.Costs
	// model as unit-cost pass-throughs.
	specs := make([]sched.OpSpec, nn)
	for i, n := range g.nodes {
		specs[i] = sched.OpSpec{Sel: 1, Cost: 1}
		if c, ok := n.op.(ops.Costs); ok {
			if s := c.Selectivity(); s >= 0 && s <= 1 {
				specs[i].Sel = s
			}
			if uc := c.UnitCost(); uc > 0 {
				specs[i].Cost = uc
			}
		}
	}
	copy(a.prio, sched.Slopes(specs))
	return a
}

// seed applies the rate-based initial operating point [VN02]: with an
// expected arrival rate, each stage's service demand (admitted rate /
// per-replica capacity) predicts the replica count it needs before any
// feedback has been observed.
func (a *adaptState) seed(g *Graph) {
	er := a.cfg.ExpectedRate
	if er <= 0 {
		return
	}
	chain := make([]rate.Op, 0, len(g.nodes))
	in := er
	for i, n := range g.nodes {
		sel, cap := 1.0, math.Inf(1)
		if c, ok := n.op.(ops.Costs); ok {
			if s := c.Selectivity(); s >= 0 && s <= 1 {
				sel = s
			}
			if uc := c.UnitCost(); uc > 0 {
				// UnitCost 1 = one ExpectedRate's worth of capacity per
				// replica: demand is expressed in replicas directly.
				cap = er / uc
			}
		}
		chain = append(chain, rate.Op{Name: n.op.Name(), Sel: sel, Capacity: cap})
		if a.kind[i] != laneStatic {
			demand := int(math.Ceil(in / cap))
			if demand < 1 {
				demand = 1
			}
			if demand > a.maxP {
				demand = a.maxP
			}
			w := int32(demand)
			atomic.StoreInt32(&a.actP[i], w)
			atomic.StoreInt32(&a.wantP[i], w)
			g.nodes[i].stats.Replicas = demand
		}
		in = math.Min(in, cap) * sel
	}
	// The whole-chain service demand bounds what replication can buy; a
	// demand beyond the pool predicts shedding, so start the rate warm
	// instead of waiting for queues to prove it.
	if total := rate.ChainDemand(er, chain); total > float64(a.maxP) {
		a.shedRate = math.Min(a.cfg.MaxShedRate, 1-float64(a.maxP)/total)
	}
}

func (a *adaptState) start(r *concRun) {
	a.seed(r.g)
	if a.shedRate > 0 {
		a.applyShed(r)
	}
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		t := time.NewTicker(a.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-a.done:
				return
			case <-t.C:
				a.tick(r)
			}
		}
	}()
}

func (a *adaptState) stop() {
	close(a.done)
	a.wg.Wait()
}

func (a *adaptState) decide(d AdaptDecision) {
	if a.cfg.OnDecision != nil {
		a.cfg.OnDecision(d)
	}
}

// occupancy is a node's queued-input fraction of its edge capacity.
// Capacity follows the live batch targets: a producer the controller
// throttled to MinBatch fills its ChanCap-batch channel with far fewer
// elements, and measuring against the configured BatchSize would leave
// a hard-backpressured throttled edge reading as near-idle — a dead
// band where the controller never re-escalates.
func (a *adaptState) occupancy(r *concRun, id int) float64 {
	tgt := int64(r.opts.BatchSize)
	for _, s := range a.prods[id] {
		if t := atomic.LoadInt64(&a.batchTgt[s]); t < tgt {
			tgt = t
		}
	}
	cap := float64(int64(r.opts.ChanCap) * tgt)
	q := float64(atomic.LoadInt64(&r.pending[id]))
	return q / cap
}

// scalable reports whether the controller may change this node's active
// width right now (key-partitioned nodes need StateRescaler support).
func (a *adaptState) scalable(id int) bool {
	switch a.kind[id] {
	case laneRepl, lanePartial:
		return true
	case laneKeyPart:
		return a.rescaler[id]
	}
	return false
}

// setWidth requests a new active width: stateless and partial lanes
// switch instantly (their splitters read actP per message); the
// key-partition lanes re-split at their next safe point when they see
// wantP change.
func (a *adaptState) setWidth(r *concRun, id, w int) {
	atomic.StoreInt32(&a.wantP[id], int32(w))
	if a.kind[id] != laneKeyPart {
		atomic.StoreInt32(&a.actP[id], int32(w))
		r.g.nodes[id].stats.Replicas = w
	}
}

// tick is one control interval: batch targets, then replication, then
// shedding — strictly in that escalation order.
func (a *adaptState) tick(r *concRun) {
	a.ticks++
	nn := len(r.g.nodes)
	occ := make([]float64, nn)
	maxOcc := 0.0
	for i := 0; i < nn; i++ {
		occ[i] = a.occupancy(r, i)
		if occ[i] > maxOcc {
			maxOcc = occ[i]
		}
	}

	// 1. Micro-batch targets per producer edge: full batches while any
	// consumer is pressured, halving toward MinBatch while all idle.
	for slot, cons := range a.cons {
		if len(cons) == 0 {
			continue
		}
		worst := 0.0
		for _, c := range cons {
			if occ[c] > worst {
				worst = occ[c]
			}
		}
		cur := atomic.LoadInt64(&a.batchTgt[slot])
		tgt := cur
		switch {
		case worst > a.cfg.HighWater:
			tgt = int64(r.opts.BatchSize)
		case worst < a.cfg.LowWater:
			if tgt = cur / 2; tgt < int64(a.cfg.MinBatch) {
				tgt = int64(a.cfg.MinBatch)
			}
		}
		if tgt != cur {
			atomic.StoreInt64(&a.batchTgt[slot], tgt)
			if slot < nn {
				r.g.nodes[slot].stats.BatchTarget = int(tgt)
				a.decide(AdaptDecision{Node: NodeID(slot), Op: r.g.nodes[slot].op.Name(),
					Action: "batch", Batch: int(tgt), Occupancy: worst})
			}
		}
	}

	// Test hook: deterministic width overrides.
	if a.cfg.testWant != nil {
		for i := 0; i < nn; i++ {
			if !a.scalable(i) {
				continue
			}
			if w := a.cfg.testWant(NodeID(i), a.ticks); w > 0 && w <= a.maxP {
				a.setWidth(r, i, w)
			}
		}
		return
	}

	// 2. Replication: grow the highest-priority pressured node one step
	// per tick (slope-weighted occupancy — the Chain drain order);
	// shrink a node only after sustained idleness.
	grew := false
	best, bestScore := -1, 0.0
	for i := 0; i < nn; i++ {
		if !a.scalable(i) {
			continue
		}
		act := int(atomic.LoadInt32(&a.actP[i]))
		if occ[i] > a.cfg.HighWater && act < a.maxP {
			score := occ[i] * (1 + a.prio[i])
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		if occ[i] < a.cfg.LowWater {
			a.lowTicks[i]++
		} else {
			a.lowTicks[i] = 0
		}
	}
	if best >= 0 {
		w := int(atomic.LoadInt32(&a.actP[best])) + 1
		a.setWidth(r, best, w)
		grew = true
		a.decide(AdaptDecision{Node: NodeID(best), Op: r.g.nodes[best].op.Name(),
			Action: "grow", Replicas: w, Occupancy: occ[best]})
	} else {
		for i := 0; i < nn; i++ {
			if !a.scalable(i) || a.lowTicks[i] < 8 {
				continue
			}
			if act := int(atomic.LoadInt32(&a.actP[i])); act > 1 {
				a.lowTicks[i] = 0
				a.setWidth(r, i, act-1)
				a.decide(AdaptDecision{Node: NodeID(i), Op: r.g.nodes[i].op.Name(),
					Action: "shrink", Replicas: act - 1, Occupancy: occ[i]})
				break // one shrink per tick
			}
		}
	}

	// 3. Shedding: engage only when pressure persists with replication
	// exhausted — every pressured scalable node already at the ceiling —
	// and decay once the queues clear.
	if len(a.shed) == 0 {
		return
	}
	old := a.shedRate
	if maxOcc > a.cfg.HighWater && !grew {
		a.shedRate += 0.02 + 0.2*(maxOcc-a.cfg.HighWater)
		if a.shedRate > a.cfg.MaxShedRate {
			a.shedRate = a.cfg.MaxShedRate
		}
	} else if maxOcc < a.cfg.LowWater {
		a.shedRate = a.shedRate*0.7 - 0.01
		if a.shedRate < 0 {
			a.shedRate = 0
		}
	}
	if a.shedRate != old {
		a.applyShed(r)
		a.decide(AdaptDecision{Node: -1, Action: "shed", ShedRate: a.shedRate, Occupancy: maxOcc})
	}
}

func (a *adaptState) applyShed(r *concRun) {
	for _, id := range a.shed {
		r.g.nodes[id].op.(rateSetter).SetRate(a.shedRate)
		r.g.nodes[id].stats.ShedRate = a.shedRate
	}
}

// rescaleOp coordinates one key-partition re-split between the splitter
// and its workers: every worker snapshots its replica into its section
// slot, and once all sections are present each worker k < newAct
// rebuilds its slice of the key space at the new width.
type rescaleOp struct {
	sections [][]byte
	newAct   int
	snapWG   sync.WaitGroup // workers done snapshotting
	ready    chan struct{}  // closed when all sections are in
}
