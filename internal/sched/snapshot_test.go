package sched

// Snapshot/Restore round-trip for the scheduling simulator: a run cut
// mid-stream and restored into a fresh Sim must continue exactly as the
// uninterrupted run — same queue contents, same recorded series — for
// every policy, including the stateful Chain whose progress chart is
// configuration rebuilt at construction.

import (
	"math"
	"testing"

	"streamdb/internal/ckpt"
)

func TestSimSnapshotRestoreContinues(t *testing.T) {
	arrivals := []int{3, 0, 2, 1, 0, 4, 0, 0, 1, 2}
	for _, tc := range []struct {
		label  string
		policy func() Policy
	}{
		{"fifo", func() Policy { return FIFO{} }},
		{"greedy", func() Policy { return Greedy{} }},
		{"chain", func() Policy { return &Chain{} }},
	} {
		full, err := NewSim(slide43Chain(), tc.policy())
		if err != nil {
			t.Fatal(err)
		}
		full.Run(len(arrivals), arrivals)

		head, err := NewSim(slide43Chain(), tc.policy())
		if err != nil {
			t.Fatal(err)
		}
		head.Run(4, arrivals[:4])
		enc := &ckpt.Encoder{}
		if err := head.Snapshot(enc); err != nil {
			t.Fatalf("%s: %v", tc.label, err)
		}
		tail, err := NewSim(slide43Chain(), tc.policy())
		if err != nil {
			t.Fatal(err)
		}
		if err := tail.Restore(ckpt.NewDecoder(enc.Bytes())); err != nil {
			t.Fatalf("%s: %v", tc.label, err)
		}
		tail.Run(len(arrivals)-4, arrivals[4:])

		if len(tail.Backlog) != len(full.Backlog) {
			t.Fatalf("%s: %d backlog samples, want %d", tc.label, len(tail.Backlog), len(full.Backlog))
		}
		for i := range full.Backlog {
			if math.Abs(tail.Backlog[i]-full.Backlog[i]) > 1e-9 {
				t.Errorf("%s: backlog[%d] = %v, want %v", tc.label, i, tail.Backlog[i], full.Backlog[i])
			}
		}
		if tail.Processed != full.Processed || math.Abs(tail.Emitted-full.Emitted) > 1e-9 {
			t.Errorf("%s: processed/emitted (%d, %v), want (%d, %v)",
				tc.label, tail.Processed, tail.Emitted, full.Processed, full.Emitted)
		}
	}
}

func TestSimRestoreRejectsChainMismatch(t *testing.T) {
	s, err := NewSim(slide43Chain(), FIFO{})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(3, []int{1, 1, 1})
	enc := &ckpt.Encoder{}
	if err := s.Snapshot(enc); err != nil {
		t.Fatal(err)
	}
	longer, err := NewSim([]OpSpec{{Sel: 0.5, Cost: 1}, {Sel: 0.5, Cost: 1}, {Sel: 0, Cost: 1}}, FIFO{})
	if err != nil {
		t.Fatal(err)
	}
	if err := longer.Restore(ckpt.NewDecoder(enc.Bytes())); err == nil {
		t.Error("restore into a different chain length must fail")
	}
}

// TestSlopesMatchChainSegments: the exported Slopes — the controller's
// drain-priority signal — must agree with the progress chart Chain
// builds internally: steeper first segments for more selective, cheaper
// prefixes.
func TestSlopesMatchChainSegments(t *testing.T) {
	slopes := Slopes(slide43Chain())
	if len(slopes) != 2 {
		t.Fatalf("len(Slopes) = %d, want 2", len(slopes))
	}
	// Op 0 drops 0.8 of its input for cost 1; op 1 drops everything for
	// cost 1. The chart's lower envelope gives op 0 the first segment.
	if slopes[0] <= 0 || slopes[1] <= 0 {
		t.Fatalf("slopes must be positive, got %v", slopes)
	}
	// A steeply selective cheap first op must out-rank a do-nothing op.
	flat := Slopes([]OpSpec{{Sel: 1, Cost: 1}, {Sel: 0, Cost: 1}})
	if slopes[0] <= flat[0] {
		t.Errorf("selective op slope %v must exceed pass-through slope %v", slopes[0], flat[0])
	}
}
