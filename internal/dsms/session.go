package dsms

// Session protocol (frame format v2) for fault-tolerant distributed
// evaluation. The v1 transport (transport.go) fail-stops on the first
// I/O error: one dropped TCP connection kills a standing query. The
// session layer adds what the 3-level architecture (slides 14, 54-55)
// needs to survive unreliable links between observation points and the
// high-level node: per-stream sequence numbers, a resume handshake, and
// in-band control frames (the punctuation-as-control-signal idea of
// slide 25 applied to the transport itself).
//
// Wire format. Every frame starts with a one-byte type:
//
//	client -> server
//	  'H' HELLO      uvarint len | streamID bytes | crc32(id)  (re)attach stream
//	  'D' DATA       uvarint seq | uvarint len | payload | crc32(seq,payload)
//	  'B' HEARTBEAT  (empty)                             liveness + ack request
//	  'E' EOS        uvarint finalSeq                    end of stream
//	server -> client
//	  'h' HELLOACK   uvarint lastSeq                     resume point
//	  'a' ACK        uvarint lastSeq                     cumulative ack
//	  'e' EOSACK     uvarint finalSeq                    stream complete
//
// Frame format v3 adds batched, schema-coded DATA (see tuple's batch
// codec for the payload layout) behind a version-negotiating handshake:
//
//	client -> server
//	  'W' HELLO3     uvarint ver | uvarint len | streamID | crc32(ver,id)
//	  'P' BATCH      uvarint firstSeq | uvarint count | uvarint len |
//	                 payload | crc32(firstSeq,payload)
//	server -> client
//	  'w' HELLO3ACK  uvarint grantedVer | uvarint lastSeq
//
// Sequence numbers still count tuples: a batch frame covers
// [firstSeq, firstSeq+count-1], so cumulative acks, resume and
// exactly-once dedupe are unchanged — a replayed batch that overlaps
// the applied prefix (reconnect-resume mid-batch) emits only its
// unseen suffix. A server that predates v3 treats 'W' as an unknown
// frame and drops the connection; the client interprets that as "speak
// v2" and redials with the old HELLO, so mixed-version deployments
// keep working. v2 'D' frames remain valid on a v3 connection.
//
// The protocol is strictly request/response for control frames (the
// server only writes when asked), so neither side needs a background
// reader and socket buffers cannot fill with unread acks. Sequence
// numbers start at 1 and are contiguous; the server applies frame
// seq == lastSeq+1, discards seq <= lastSeq as a duplicate (replay
// after reconnect), and treats a gap or a corrupt frame as a dead
// connection — the client redials, the HELLOACK tells it the last
// sequence the server applied, and it resends only the tail. Delivery
// is exactly-once per stream as long as the client's replay buffer
// covers the unacknowledged window (it syncs before the bound is hit).

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"

	"streamdb/internal/tuple"
)

// Frame type bytes (v2).
const (
	frameHello     = 'H'
	frameData      = 'D'
	frameHeartbeat = 'B'
	frameEOS       = 'E'
	frameHelloAck  = 'h'
	frameAck       = 'a'
	frameEOSAck    = 'e'
)

// Frame type bytes (v3).
const (
	frameHello3    = 'W'
	frameHello3Ack = 'w'
	frameBatch     = 'P'
)

// Wire protocol versions.
const (
	wireV2 = 2
	wireV3 = 3
)

// maxStreamID bounds the HELLO identifier so a corrupt length varint
// cannot trigger a huge allocation.
const maxStreamID = 256

// maxFramePayload bounds DATA payloads for the same reason.
const maxFramePayload = 16 << 20

// maxBatchTuples bounds the tuple count a BATCH frame may claim.
const maxBatchTuples = 1 << 20

// hello3CRC covers the requested version and the stream identifier.
func hello3CRC(ver uint64, id []byte) uint32 {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], ver)
	c := crc32.Update(0, crc32.IEEETable, buf[:n])
	return crc32.Update(c, crc32.IEEETable, id)
}

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

// dataCRC covers the sequence number and the payload, so corruption
// anywhere in a DATA frame (type byte aside) is detected.
func dataCRC(seq uint64, payload []byte) uint32 {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], seq)
	c := crc32.Update(0, crc32.IEEETable, buf[:n])
	return crc32.Update(c, crc32.IEEETable, payload)
}

// writeDataFrame appends one DATA frame to w.
func writeDataFrame(w *bufio.Writer, seq uint64, payload []byte) error {
	if err := w.WriteByte(frameData); err != nil {
		return err
	}
	if err := writeUvarint(w, seq); err != nil {
		return err
	}
	if err := writeUvarint(w, uint64(len(payload))); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], dataCRC(seq, payload))
	_, err := w.Write(crc[:])
	return err
}

// writeBatchFrame appends one v3 BATCH frame to w. The CRC covers the
// first sequence number and the payload, like a DATA frame's.
func writeBatchFrame(w *bufio.Writer, firstSeq, count uint64, payload []byte) error {
	if err := w.WriteByte(frameBatch); err != nil {
		return err
	}
	if err := writeUvarint(w, firstSeq); err != nil {
		return err
	}
	if err := writeUvarint(w, count); err != nil {
		return err
	}
	if err := writeUvarint(w, uint64(len(payload))); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], dataCRC(firstSeq, payload))
	_, err := w.Write(crc[:])
	return err
}

// writeSeqFrame writes a control frame carrying one uvarint.
func writeSeqFrame(w *bufio.Writer, typ byte, seq uint64) error {
	if err := w.WriteByte(typ); err != nil {
		return err
	}
	return writeUvarint(w, seq)
}

// readSeqFrame reads the expected control frame type and its uvarint,
// failing on any other frame.
func readSeqFrame(r *bufio.Reader, want byte) (uint64, error) {
	typ, err := r.ReadByte()
	if err != nil {
		return 0, err
	}
	if typ != want {
		return 0, fmt.Errorf("dsms: expected frame %q, got %q", want, typ)
	}
	return binary.ReadUvarint(r)
}

// SessionConfig tunes the server side of the session protocol.
type SessionConfig struct {
	// IdleTimeout closes a connection that delivers no frame for this
	// long (dead-peer detection); the session itself survives for the
	// client to resume. 0 = default 30s, negative = disabled.
	IdleTimeout time.Duration
	// Logf, when non-nil, receives session churn events (attach,
	// resume, complete, connection errors).
	Logf func(format string, args ...interface{})
	// MaxWireVersion caps the protocol version the server grants. 0 or
	// 3 = full v3; 2 emulates a server that predates batch frames (the
	// HELLO3 frame is treated as unknown and drops the connection,
	// exactly as an old binary would).
	MaxWireVersion int
	// ZeroCopy recycles batch decode arenas through a pool: the tuples
	// passed to emit are only valid for the duration of the call. Leave
	// false when the consumer retains tuples (windows, joins, buffers).
	ZeroCopy bool
	// InitialSeqs seeds newly attached sessions' last-applied sequence
	// numbers: the replay positions recovered from a checkpoint. After a
	// crash the restarted server answers each stream's resume handshake
	// at its checkpointed position, so clients replay exactly the tail
	// the checkpoint has not made durable.
	InitialSeqs map[string]uint64
	// DurableSeq, when set, caps every acknowledged sequence number
	// (HELLOACK, HELLO3ACK, heartbeat ACK) at the stream's durable floor
	// — typically the last committed checkpoint's position. The client
	// then retains everything past the floor in its replay buffer, which
	// is what makes a crash recoverable: the restarted server can roll
	// the stream back to the checkpoint and the client still holds the
	// frames to replay. Already-applied replays are discarded as
	// duplicates, so delivery stays exactly-once.
	DurableSeq func(streamID string) uint64
}

func (c *SessionConfig) maxWire() int {
	if c.MaxWireVersion == 0 {
		return wireV3
	}
	return c.MaxWireVersion
}

func (c *SessionConfig) idle() time.Duration {
	switch {
	case c.IdleTimeout < 0:
		return 0
	case c.IdleTimeout == 0:
		return 30 * time.Second
	default:
		return c.IdleTimeout
	}
}

// SessionStats aggregates server-side protocol counters.
type SessionStats struct {
	Sessions   int64 // distinct streams attached
	Reconnects int64 // HELLOs for an already-known stream
	Frames     int64 // tuples applied (v2: one per DATA frame)
	Batches    int64 // v3 BATCH frames applied (at least one fresh tuple)
	Dupes      int64 // tuples discarded as replays
	Corrupt    int64 // frames rejected by CRC or parse failure
	Completed  int64 // streams that reached EOS
	V3Conns    int64 // connections negotiated to wire v3
}

// session is the durable per-stream state that outlives connections.
type session struct {
	mu        sync.Mutex
	id        string
	lastSeq   uint64
	dupes     int64
	completed bool
}

// SessionServer accepts reconnecting tuple streams and delivers each
// stream's tuples exactly once, in order.
type SessionServer struct {
	ln     net.Listener
	schema *tuple.Schema
	cfg    SessionConfig

	mu        sync.Mutex
	sessions  map[string]*session
	stats     SessionStats
	done      chan struct{}
	target    int
	emit      func(streamID string, t *tuple.Tuple)
	emitBatch func(streamID string, tuples []*tuple.Tuple, arena *tuple.Arena)
	arenas    *tuple.ArenaPool
}

// NewSessionServer wraps a listener; schema describes the tuples every
// stream carries.
func NewSessionServer(ln net.Listener, schema *tuple.Schema, cfg SessionConfig) *SessionServer {
	return &SessionServer{
		ln: ln, schema: schema, cfg: cfg,
		sessions: make(map[string]*session),
		done:     make(chan struct{}),
		arenas:   tuple.NewArenaPool(),
	}
}

// Stats returns a snapshot of the protocol counters.
func (s *SessionServer) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *SessionServer) logf(format string, args ...interface{}) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts connections until `streams` distinct streams have
// completed (EOS acknowledged), then returns. emit is called once per
// delivered tuple, in per-stream sequence order; calls for different
// streams may be concurrent.
func (s *SessionServer) Serve(streams int, emit func(streamID string, t *tuple.Tuple)) error {
	s.mu.Lock()
	s.target = streams
	s.emit = emit
	s.mu.Unlock()
	return s.serve(streams)
}

// ServeBatches is Serve with a batch-granular sink: v3 BATCH frames
// deliver their fresh tuples in one call, v2 DATA frames arrive as
// one-tuple slices. The slice is only valid for the duration of the
// call. Under SessionConfig.ZeroCopy the tuples alias the pooled decode
// arena passed alongside them: a sink that keeps them past the call
// must Retain the arena (and Release once done) or copy the tuples out
// before returning; arena is nil when the tuples are independently
// heap-allocated (v2 frames, ZeroCopy off) and no pinning is needed.
func (s *SessionServer) ServeBatches(streams int, emit func(streamID string, tuples []*tuple.Tuple, arena *tuple.Arena)) error {
	s.mu.Lock()
	s.target = streams
	s.emitBatch = emit
	s.mu.Unlock()
	return s.serve(streams)
}

func (s *SessionServer) serve(streams int) error {
	go func() {
		<-s.done
		s.ln.Close()
	}()
	var wg sync.WaitGroup
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.handle(conn)
		}()
	}
	wg.Wait()
	select {
	case <-s.done:
		return nil
	default:
		return fmt.Errorf("dsms: listener closed before %d streams completed", streams)
	}
}

// attach resolves (or creates) the session for a HELLO.
func (s *SessionServer) attach(id string) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		sess = &session{id: id, lastSeq: s.cfg.InitialSeqs[id]}
		s.sessions[id] = sess
		s.stats.Sessions++
		if sess.lastSeq > 0 {
			s.logf("dsms: session %q attached at checkpointed seq %d", id, sess.lastSeq)
		} else {
			s.logf("dsms: session %q attached", id)
		}
	} else {
		s.stats.Reconnects++
		s.logf("dsms: session %q resumed at seq %d", id, sess.lastSeq)
	}
	return sess
}

// ackFloor caps an acknowledged sequence number at the stream's
// durable floor, so clients keep un-checkpointed frames replayable.
func (s *SessionServer) ackFloor(sess *session, last uint64) uint64 {
	if s.cfg.DurableSeq == nil {
		return last
	}
	if d := s.cfg.DurableSeq(sess.id); d < last {
		return d
	}
	return last
}

// SessionSeqs snapshots every attached stream's last applied sequence
// number: the replay positions a checkpoint records in its metadata.
func (s *SessionServer) SessionSeqs() map[string]uint64 {
	s.mu.Lock()
	list := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		list = append(list, sess)
	}
	s.mu.Unlock()
	out := make(map[string]uint64, len(list))
	for _, sess := range list {
		sess.mu.Lock()
		out[sess.id] = sess.lastSeq
		sess.mu.Unlock()
	}
	return out
}

// complete records a finished stream, releasing Serve when the target
// count is reached.
func (s *SessionServer) complete(sess *session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Completed++
	s.logf("dsms: session %q complete at seq %d", sess.id, sess.lastSeq)
	if s.target > 0 && s.stats.Completed == int64(s.target) {
		close(s.done)
	}
}

func (s *SessionServer) countCorrupt() {
	s.mu.Lock()
	s.stats.Corrupt++
	s.mu.Unlock()
}

// handle runs one connection's frame loop. Any protocol violation,
// corrupt frame, or I/O error simply drops the connection: the session
// state survives and the client resumes on its next dial.
func (s *SessionServer) handle(conn net.Conn) {
	defer conn.Close()
	idle := s.cfg.idle()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var sess *session
	var payload []byte
	wire := wireV2
	var scratch [1]*tuple.Tuple // v2 frames into the batch sink
	for {
		if idle > 0 {
			conn.SetReadDeadline(time.Now().Add(idle))
		}
		typ, err := br.ReadByte()
		if err != nil {
			if sess != nil && err != io.EOF {
				s.logf("dsms: session %q connection lost: %v", sess.id, err)
			}
			return
		}
		switch typ {
		case frameHello:
			n, err := binary.ReadUvarint(br)
			if err != nil || n == 0 || n > maxStreamID {
				s.countCorrupt()
				return
			}
			idb := make([]byte, n)
			if _, err := io.ReadFull(br, idb); err != nil {
				s.countCorrupt()
				return
			}
			// The CRC keeps a corrupted HELLO from attaching a ghost
			// session: a flipped streamID byte would otherwise answer
			// HELLOACK 0 and accept replayed frames as fresh,
			// double-counting them into the merge.
			var crc [4]byte
			if _, err := io.ReadFull(br, crc[:]); err != nil ||
				binary.LittleEndian.Uint32(crc[:]) != crc32.ChecksumIEEE(idb) {
				s.countCorrupt()
				return
			}
			sess = s.attach(string(idb))
			sess.mu.Lock()
			last := sess.lastSeq
			sess.mu.Unlock()
			if err := writeSeqFrame(bw, frameHelloAck, s.ackFloor(sess, last)); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}

		case frameHello3:
			if s.cfg.maxWire() < wireV3 {
				// Emulate a pre-v3 binary: unknown frame, drop the
				// connection. The client falls back to the v2 HELLO.
				s.countCorrupt()
				return
			}
			ver, err := binary.ReadUvarint(br)
			if err != nil {
				s.countCorrupt()
				return
			}
			n, err := binary.ReadUvarint(br)
			if err != nil || n == 0 || n > maxStreamID {
				s.countCorrupt()
				return
			}
			idb := make([]byte, n)
			if _, err := io.ReadFull(br, idb); err != nil {
				s.countCorrupt()
				return
			}
			var crc [4]byte
			if _, err := io.ReadFull(br, crc[:]); err != nil ||
				binary.LittleEndian.Uint32(crc[:]) != hello3CRC(ver, idb) {
				s.countCorrupt()
				return
			}
			granted := uint64(wireV3)
			if ver < granted {
				granted = ver
			}
			sess = s.attach(string(idb))
			sess.mu.Lock()
			last := sess.lastSeq
			sess.mu.Unlock()
			if err := bw.WriteByte(frameHello3Ack); err != nil {
				return
			}
			if err := writeUvarint(bw, granted); err != nil {
				return
			}
			if err := writeUvarint(bw, s.ackFloor(sess, last)); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
			wire = int(granted)
			if wire >= wireV3 {
				s.mu.Lock()
				s.stats.V3Conns++
				s.mu.Unlock()
			}

		case frameBatch:
			if sess == nil || wire < wireV3 {
				s.countCorrupt()
				return
			}
			firstSeq, err := binary.ReadUvarint(br)
			if err != nil {
				s.countCorrupt()
				return
			}
			count, err := binary.ReadUvarint(br)
			if err != nil || count == 0 || count > maxBatchTuples {
				s.countCorrupt()
				return
			}
			ln, err := binary.ReadUvarint(br)
			if err != nil || ln > maxFramePayload {
				s.countCorrupt()
				return
			}
			if uint64(cap(payload)) < ln {
				payload = make([]byte, ln)
			}
			payload = payload[:ln]
			if _, err := io.ReadFull(br, payload); err != nil {
				s.countCorrupt()
				return
			}
			var crc [4]byte
			if _, err := io.ReadFull(br, crc[:]); err != nil {
				s.countCorrupt()
				return
			}
			if binary.LittleEndian.Uint32(crc[:]) != dataCRC(firstSeq, payload) {
				s.countCorrupt()
				return
			}
			if !s.applyBatch(sess, firstSeq, count, payload) {
				return
			}

		case frameData:
			if sess == nil {
				s.countCorrupt()
				return
			}
			seq, err := binary.ReadUvarint(br)
			if err != nil {
				s.countCorrupt()
				return
			}
			ln, err := binary.ReadUvarint(br)
			if err != nil || ln > maxFramePayload {
				s.countCorrupt()
				return
			}
			if uint64(cap(payload)) < ln {
				payload = make([]byte, ln)
			}
			payload = payload[:ln]
			if _, err := io.ReadFull(br, payload); err != nil {
				s.countCorrupt()
				return
			}
			var crc [4]byte
			if _, err := io.ReadFull(br, crc[:]); err != nil {
				s.countCorrupt()
				return
			}
			if binary.LittleEndian.Uint32(crc[:]) != dataCRC(seq, payload) {
				s.countCorrupt()
				return
			}
			if !s.apply(sess, seq, payload, &scratch) {
				return
			}

		case frameHeartbeat:
			if sess == nil {
				s.countCorrupt()
				return
			}
			sess.mu.Lock()
			last := sess.lastSeq
			sess.mu.Unlock()
			if err := writeSeqFrame(bw, frameAck, s.ackFloor(sess, last)); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}

		case frameEOS:
			final, err := binary.ReadUvarint(br)
			if err != nil || sess == nil {
				s.countCorrupt()
				return
			}
			sess.mu.Lock()
			complete := sess.lastSeq == final
			already := sess.completed
			if complete {
				sess.completed = true
			}
			sess.mu.Unlock()
			if !complete {
				// Frames are missing (lost to corruption on the old
				// connection): drop the connection so the client's
				// resume handshake triggers the resend.
				return
			}
			if err := writeSeqFrame(bw, frameEOSAck, final); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
			if !already {
				s.complete(sess)
			}
			return

		default:
			s.countCorrupt()
			return
		}
	}
}

// apply delivers one DATA frame into the session: exactly-once by
// sequence number. Returns false when the connection must drop (gap or
// undecodable tuple).
func (s *SessionServer) apply(sess *session, seq uint64, payload []byte, scratch *[1]*tuple.Tuple) bool {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	switch {
	case seq == sess.lastSeq+1:
		t, _, err := tuple.DecodeChecked(payload, s.schema)
		if err != nil {
			s.countCorrupt()
			return false
		}
		sess.lastSeq = seq
		s.mu.Lock()
		s.stats.Frames++
		emit := s.emit
		emitBatch := s.emitBatch
		s.mu.Unlock()
		if emitBatch != nil {
			scratch[0] = t
			emitBatch(sess.id, scratch[:], nil) // heap tuple: no arena to pin
			scratch[0] = nil
		} else if emit != nil {
			emit(sess.id, t)
		}
		return true
	case seq <= sess.lastSeq:
		sess.dupes++
		s.mu.Lock()
		s.stats.Dupes++
		s.mu.Unlock()
		return true
	default:
		// A gap means this connection lost frames; force a resume.
		s.countCorrupt()
		return false
	}
}

// applyBatch delivers one BATCH frame: tuples [firstSeq, firstSeq+
// count-1], exactly-once at tuple granularity. A batch fully behind the
// session's high-water mark is a replay; one that overlaps it (resume
// landed mid-batch) emits only the unseen suffix; a gap ahead of it
// forces a resume by dropping the connection.
func (s *SessionServer) applyBatch(sess *session, firstSeq, count uint64, payload []byte) bool {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	lastOfBatch := firstSeq + count - 1
	switch {
	case lastOfBatch <= sess.lastSeq:
		sess.dupes += int64(count)
		s.mu.Lock()
		s.stats.Dupes += int64(count)
		s.mu.Unlock()
		return true
	case firstSeq > sess.lastSeq+1:
		s.countCorrupt()
		return false
	}
	arena := &tuple.Arena{}
	var pooled *tuple.Arena // handed to the sink so it can Retain
	if s.cfg.ZeroCopy {
		pooled = s.arenas.Get()
		arena = pooled
		// Put drops only the server's reference: a sink that Retained
		// the arena keeps the decoded tuples alive past this frame.
		defer s.arenas.Put(pooled)
	}
	ts, _, err := tuple.DecodeBatchInto(payload, s.schema, arena)
	if err != nil || uint64(len(ts)) != count {
		s.countCorrupt()
		return false
	}
	skip := sess.lastSeq + 1 - firstSeq // already-applied prefix, 0..count-1
	sess.lastSeq = lastOfBatch
	sess.dupes += int64(skip)
	fresh := ts[skip:]
	s.mu.Lock()
	s.stats.Frames += int64(len(fresh))
	s.stats.Dupes += int64(skip)
	s.stats.Batches++
	emit := s.emit
	emitBatch := s.emitBatch
	s.mu.Unlock()
	if emitBatch != nil {
		emitBatch(sess.id, fresh, pooled)
	} else if emit != nil {
		for _, t := range fresh {
			emit(sess.id, t)
		}
	}
	return true
}
