// Package stream defines the stream abstraction: a potentially unbounded
// sequence of elements (slide 3), where each element is either a data
// tuple or a punctuation [TMSF03] (slide 28). It also provides sources,
// sinks and synthetic workload generators standing in for the paper's
// proprietary AT&T feeds (see DESIGN.md §2).
package stream

import (
	"fmt"
	"strings"

	"streamdb/internal/tuple"
)

// Element is one item of a stream: exactly one of Tuple or Punct is set.
type Element struct {
	Tuple *tuple.Tuple
	Punct *Punctuation
}

// Tup wraps a tuple as an element.
func Tup(t *tuple.Tuple) Element { return Element{Tuple: t} }

// Punct wraps a punctuation as an element.
func Punct(p *Punctuation) Element { return Element{Punct: p} }

// IsPunct reports whether the element is a punctuation.
func (e Element) IsPunct() bool { return e.Punct != nil }

// IsBarrier reports whether the element is a checkpoint barrier.
func (e Element) IsBarrier() bool { return e.Punct != nil && e.Punct.Barrier != 0 }

// Ts returns the element's position in stream order.
func (e Element) Ts() int64 {
	if e.Punct != nil {
		return e.Punct.Ts
	}
	return e.Tuple.Ts
}

// String renders the element.
func (e Element) String() string {
	if e.Punct != nil {
		return e.Punct.String()
	}
	return e.Tuple.String()
}

// PatternKind selects how one field of a punctuation matches.
type PatternKind uint8

// Field pattern kinds per Tucker et al. [TMSF03]: wildcard, constant and
// range patterns.
const (
	PatWildcard PatternKind = iota
	PatConst
	PatLE // matches values <= Val (the "end of processing up to V" form)
	PatRange
)

// Pattern matches one field of future tuples.
type Pattern struct {
	Kind    PatternKind
	Val, Hi tuple.Value
}

// Matches reports whether v satisfies the pattern.
func (p Pattern) Matches(v tuple.Value) bool {
	switch p.Kind {
	case PatWildcard:
		return true
	case PatConst:
		return v.Equal(p.Val)
	case PatLE:
		return !v.IsNull() && v.Compare(p.Val) <= 0
	case PatRange:
		return !v.IsNull() && v.Compare(p.Val) >= 0 && v.Compare(p.Hi) <= 0
	}
	return false
}

// Punctuation is an application-inserted assertion: "no tuple matching
// every field pattern will appear later in the stream" (slide 28). The
// common special case — progress punctuation on the ordering attribute —
// is a PatLE pattern on that field.
type Punctuation struct {
	// Ts is the punctuation's own position in the stream.
	Ts int64
	// Fields maps field index -> pattern. Unlisted fields are wildcards.
	Fields map[int]Pattern
	// Barrier, when nonzero, marks a checkpoint barrier for the given
	// epoch. Barriers are an engine-level control signal (Chandy-Lamport
	// style aligned snapshots): the execution layer intercepts them at
	// every node and they are never pushed into operators, so Fields is
	// always nil on a barrier.
	Barrier int64
}

// BarrierPunct builds the checkpoint barrier for an epoch. The
// execution layer emits one per source and forwards it through every
// split/merge/partition lane; operators never see it.
func BarrierPunct(epoch int64) *Punctuation {
	return &Punctuation{Barrier: epoch}
}

// ProgressPunct builds the standard "all tuples with ordering attribute
// <= ts have been seen" punctuation on field idx.
func ProgressPunct(ts int64, idx int, upTo tuple.Value) *Punctuation {
	return &Punctuation{Ts: ts, Fields: map[int]Pattern{idx: {Kind: PatLE, Val: upTo}}}
}

// EndGroupPunct builds a punctuation asserting a group's end: no more
// tuples with Fields[idx] == key (the auction-close idiom of slide 28).
func EndGroupPunct(ts int64, idx int, key tuple.Value) *Punctuation {
	return &Punctuation{Ts: ts, Fields: map[int]Pattern{idx: {Kind: PatConst, Val: key}}}
}

// Matches reports whether a tuple is covered by the punctuation, i.e.
// the punctuation promises no more tuples like t.
func (p *Punctuation) Matches(t *tuple.Tuple) bool {
	for i, pat := range p.Fields {
		if i >= len(t.Vals) || !pat.Matches(t.Vals[i]) {
			return false
		}
	}
	return true
}

// String renders the punctuation.
func (p *Punctuation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "punct@%d{", p.Ts)
	first := true
	for i, pat := range p.Fields {
		if !first {
			b.WriteString(", ")
		}
		first = false
		switch pat.Kind {
		case PatWildcard:
			fmt.Fprintf(&b, "%d:*", i)
		case PatConst:
			fmt.Fprintf(&b, "%d:=%s", i, pat.Val)
		case PatLE:
			fmt.Fprintf(&b, "%d:<=%s", i, pat.Val)
		case PatRange:
			fmt.Fprintf(&b, "%d:[%s,%s]", i, pat.Val, pat.Hi)
		}
	}
	b.WriteByte('}')
	return b.String()
}
