package query

import (
	"fmt"
	"strconv"
	"strings"

	"streamdb/internal/agg"
	"streamdb/internal/expr"
	"streamdb/internal/tuple"
)

// Catalog maps stream names to schemas; the analyzer resolves FROM
// items against it.
type Catalog struct {
	schemas map[string]*tuple.Schema
}

// NewCatalog builds an empty catalog.
func NewCatalog() *Catalog { return &Catalog{schemas: make(map[string]*tuple.Schema)} }

// Register adds or replaces a stream schema.
func (c *Catalog) Register(name string, s *tuple.Schema) { c.schemas[name] = s }

// Lookup resolves a stream name.
func (c *Catalog) Lookup(name string) (*tuple.Schema, bool) {
	s, ok := c.schemas[name]
	return s, ok
}

// boundStream is one FROM item resolved against the catalog.
type boundStream struct {
	item   FromItem
	schema *tuple.Schema
	offset int // column offset in the join-concatenated row
}

// binder resolves identifiers against one or two bound streams.
type binder struct {
	streams []*boundStream
	// aggCalls collects the aggregate calls registered by collectAggs;
	// each distinct call (by rendering) gets one output column.
	aggCalls []*CallExpr
	aggNames []string
	aggSpecs []agg.Spec
	approx   bool
}

func (b *binder) resolve(id *Ident) (expr.Expr, error) {
	var found expr.Expr
	matches := 0
	for _, s := range b.streams {
		if id.Qualifier != "" && id.Qualifier != s.item.Name() {
			continue
		}
		if i := s.schema.Index(id.Name); i >= 0 {
			matches++
			found = &expr.Col{Index: s.offset + i, Name: Render(id), Typ: s.schema.Fields[i].Kind}
		}
	}
	switch matches {
	case 0:
		return nil, fmt.Errorf("query: unknown column %s", Render(id))
	case 1:
		return found, nil
	default:
		return nil, fmt.Errorf("query: ambiguous column %s", Render(id))
	}
}

var sqlToBinOp = map[string]expr.BinOp{
	"+": expr.OpAdd, "-": expr.OpSub, "*": expr.OpMul, "/": expr.OpDiv, "%": expr.OpMod,
	"=": expr.OpEq, "<>": expr.OpNe, "<": expr.OpLt, "<=": expr.OpLe,
	">": expr.OpGt, ">=": expr.OpGe, "AND": expr.OpAnd, "OR": expr.OpOr,
}

// bind lowers an AST node to a typed expression. Aggregate calls are
// rejected unless allowAggs is set, in which case each becomes a column
// reference into the aggregation output (bound later by name).
func (b *binder) bind(n Node) (expr.Expr, error) {
	switch v := n.(type) {
	case *Ident:
		return b.resolve(v)
	case *NumLit:
		if v.IsFloat {
			f, err := strconv.ParseFloat(v.Text, 64)
			if err != nil {
				return nil, fmt.Errorf("query: bad number %q", v.Text)
			}
			return expr.Constant(tuple.Float(f)), nil
		}
		i, err := strconv.ParseInt(v.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("query: bad number %q", v.Text)
		}
		return expr.Constant(tuple.Int(i)), nil
	case *StrLit:
		return expr.Constant(tuple.String(v.Val)), nil
	case *BoolLit:
		return expr.Constant(tuple.Bool(v.Val)), nil
	case *NullLit:
		return expr.Constant(tuple.Null), nil
	case *NegExpr:
		e, err := b.bind(v.E)
		if err != nil {
			return nil, err
		}
		return &expr.Neg{E: e}, nil
	case *NotExpr:
		e, err := b.bind(v.E)
		if err != nil {
			return nil, err
		}
		if e.Kind() != tuple.KindBool {
			return nil, fmt.Errorf("query: NOT requires a boolean")
		}
		return &expr.Not{E: e}, nil
	case *IsNullExpr:
		e, err := b.bind(v.E)
		if err != nil {
			return nil, err
		}
		return &expr.IsNull{E: e, Negate: v.Negate}, nil
	case *BinExpr:
		l, err := b.bind(v.L)
		if err != nil {
			return nil, err
		}
		r, err := b.bind(v.R)
		if err != nil {
			return nil, err
		}
		op, ok := sqlToBinOp[v.Op]
		if !ok {
			return nil, fmt.Errorf("query: unknown operator %q", v.Op)
		}
		return expr.NewBin(op, l, r)
	case *CallExpr:
		if _, err := agg.Lookup(v.Name, b.approx); err == nil {
			// Aggregates are collected separately (collectAggs) and
			// rewritten to output-column references before binding.
			return nil, fmt.Errorf("query: aggregate %s not allowed here", v.Name)
		}
		args := make([]expr.Expr, len(v.Args))
		for i, a := range v.Args {
			e, err := b.bind(a)
			if err != nil {
				return nil, err
			}
			args[i] = e
		}
		return expr.NewCall(v.Name, args...)
	}
	return nil, fmt.Errorf("query: unsupported expression")
}

// bindAggCall registers a distinct aggregate call (deduplicated by
// rendering); its output column is named fn_<index> and later referenced
// via rewriteForOutput.
func (b *binder) bindAggCall(v *CallExpr, fn *agg.Func) error {
	key := strings.ToLower(Render(v))
	for _, prev := range b.aggCalls {
		if strings.ToLower(Render(prev)) == key {
			return nil
		}
	}
	var arg expr.Expr
	if v.Star {
		if fn.NeedsArg {
			return fmt.Errorf("query: %s(*) is not valid", fn.Name)
		}
	} else {
		if len(v.Args) != 1 {
			return fmt.Errorf("query: %s takes exactly one argument", fn.Name)
		}
		var err error
		inner := &binder{streams: b.streams} // no nested aggregates
		arg, err = inner.bind(v.Args[0])
		if err != nil {
			return err
		}
	}
	name := fmt.Sprintf("%s_%d", fn.Name, len(b.aggCalls))
	b.aggCalls = append(b.aggCalls, v)
	b.aggNames = append(b.aggNames, name)
	b.aggSpecs = append(b.aggSpecs, agg.Spec{Fn: fn, Arg: arg, Name: name})
	return nil
}

// BoundedMemory is the verdict of the [ABB+02] analysis (slides 35-36).
type BoundedMemory struct {
	OK      bool
	Reasons []string
}

// boundsFromWhere extracts per-column constant range constraints from
// the WHERE conjuncts: "length > 512 AND length < 1024" bounds length.
type rangeBound struct{ lower, upper bool }

func collectBounds(where Node, bounds map[string]*rangeBound) {
	be, ok := where.(*BinExpr)
	if !ok {
		return
	}
	if be.Op == "AND" {
		collectBounds(be.L, bounds)
		collectBounds(be.R, bounds)
		return
	}
	id, idLeft := be.L.(*Ident)
	num := false
	if _, isNum := be.R.(*NumLit); isNum {
		num = true
	}
	if !idLeft || !num {
		// Try the mirrored form: const op column.
		id2, idRight := be.R.(*Ident)
		if _, isNum := be.L.(*NumLit); isNum && idRight {
			id = id2
			// Mirror the operator.
			switch be.Op {
			case "<":
				be = &BinExpr{Op: ">", L: be.R, R: be.L}
			case "<=":
				be = &BinExpr{Op: ">=", L: be.R, R: be.L}
			case ">":
				be = &BinExpr{Op: "<", L: be.R, R: be.L}
			case ">=":
				be = &BinExpr{Op: "<=", L: be.R, R: be.L}
			}
		} else {
			return
		}
	}
	b := bounds[id.Name]
	if b == nil {
		b = &rangeBound{}
		bounds[id.Name] = b
	}
	switch be.Op {
	case "<", "<=":
		b.upper = true
	case ">", ">=":
		b.lower = true
	case "=":
		b.lower, b.upper = true, true
	}
}

// analyzeBoundedMemory applies the [ABB+02] criteria to an aggregate
// query: every grouping expression must range over a bounded domain,
// and no holistic aggregate may run over an unbounded attribute
// (slide 35). Windows do not rescue an unbounded group domain — the
// number of distinct groups within a window is still unbounded
// (slide 36's first example carries a window and is still rejected).
func analyzeBoundedMemory(q *Query, streams []*boundStream, groupASTs []Node, specs []agg.Spec) BoundedMemory {
	bounds := map[string]*rangeBound{}
	if q.Where != nil {
		collectBounds(q.Where, bounds)
	}

	var colBounded func(n Node) bool
	colBounded = func(n Node) bool {
		switch v := n.(type) {
		case *NumLit, *StrLit, *BoolLit, *NullLit:
			return true
		case *Ident:
			for _, s := range streams {
				if f, ok := s.schema.Field(v.Name); ok &&
					(v.Qualifier == "" || v.Qualifier == s.item.Name()) {
					if f.Bounded || f.Kind == tuple.KindBool {
						return true
					}
				}
			}
			if b := bounds[v.Name]; b != nil && b.lower && b.upper {
				return true
			}
			return false
		case *BinExpr:
			if v.Op == "/" || v.Op == "%" {
				// x / c and x % c with bounded x stay bounded; x % c is
				// bounded for any x when c is constant.
				if _, isConst := v.R.(*NumLit); isConst && v.Op == "%" {
					return true
				}
			}
			return colBounded(v.L) && colBounded(v.R)
		case *NegExpr:
			return colBounded(v.E)
		case *CallExpr:
			for _, a := range v.Args {
				if !colBounded(a) {
					return false
				}
			}
			return !v.Star
		}
		return false
	}

	verdict := BoundedMemory{OK: true}
	for i, g := range groupASTs {
		if !colBounded(g) {
			verdict.OK = false
			verdict.Reasons = append(verdict.Reasons,
				fmt.Sprintf("grouping expression %d (%s) ranges over an unbounded domain", i, Render(g)))
		}
	}
	for _, spec := range specs {
		if spec.Fn.Class != agg.Holistic || q.Approx {
			continue
		}
		if spec.Arg == nil {
			continue
		}
		// A holistic aggregate over an unbounded attribute needs the
		// whole multiset.
		verdict.OK = false
		verdict.Reasons = append(verdict.Reasons,
			fmt.Sprintf("holistic aggregate %s requires unbounded state (use WITH APPROX for a synopsis)", spec.Fn.Name))
	}
	if verdict.OK {
		verdict.Reasons = append(verdict.Reasons, "all grouping attributes bounded; no exact holistic aggregates")
	}
	return verdict
}

// Streamable reports whether an aggregate query's result can itself be
// emitted as a stream in arrival order: true when the grouping
// attributes include the stream's ordering attribute [JMS95] (slide 35)
// or a monotone function of it (time bucketing).
func streamable(groupASTs []Node, streams []*boundStream) bool {
	for _, g := range groupASTs {
		if mentionsOrdering(g, streams) {
			return true
		}
	}
	return false
}

func mentionsOrdering(n Node, streams []*boundStream) bool {
	switch v := n.(type) {
	case *Ident:
		for _, s := range streams {
			if i := s.schema.OrderingIndex(); i >= 0 && s.schema.Fields[i].Name == v.Name {
				return true
			}
		}
	case *BinExpr:
		// time/60 is monotone in time when the divisor is constant.
		if v.Op == "/" {
			if _, isConst := v.R.(*NumLit); isConst {
				return mentionsOrdering(v.L, streams)
			}
		}
	}
	return false
}
