package query

import (
	"fmt"

	"streamdb/internal/dsms"
	"streamdb/internal/expr"
	"streamdb/internal/window"
)

// Decompose splits a single-stream aggregate query across the 3-level
// architecture (slide 54: "how do we decompose a declarative (SQL)
// query?" — "Gigascope does some automatic decomposition"). The WHERE
// filter and a bounded-slot partial aggregation run at the low level;
// group merging runs at the high level. Requirements: one stream, GROUP
// BY with only distributive/algebraic aggregates, no HAVING (a HAVING
// can only be evaluated on final groups; apply it downstream of the
// high level).
//
// slots sizes the low-level group table; the time bucket comes from the
// query's window (tumbling windows only), defaulting to 60 seconds.
func Decompose(text string, cat *Catalog, slots int) (*dsms.Decomposition, error) {
	q, err := Parse(text)
	if err != nil {
		return nil, err
	}
	if len(q.From) != 1 {
		return nil, fmt.Errorf("query: decomposition needs a single stream")
	}
	if q.Having != nil {
		return nil, fmt.Errorf("query: HAVING cannot be decomposed; evaluate it above the high level")
	}
	if q.Distinct {
		return nil, fmt.Errorf("query: DISTINCT cannot be decomposed")
	}
	sch, ok := cat.Lookup(q.From[0].Stream)
	if !ok {
		return nil, fmt.Errorf("query: unknown stream %q", q.From[0].Stream)
	}
	streams := []*boundStream{{item: q.From[0], schema: sch}}

	b := &binder{streams: streams}
	var pred expr.Expr
	if q.Where != nil {
		e, err := b.bind(q.Where)
		if err != nil {
			return nil, err
		}
		pred = e
	}

	groupNames := make([]string, len(q.GroupBy))
	groupExprs := make([]expr.Expr, len(q.GroupBy))
	for i, gi := range q.GroupBy {
		e, err := b.bind(gi.Expr)
		if err != nil {
			return nil, err
		}
		groupExprs[i] = e
		groupNames[i] = groupItemName(gi, i)
	}

	aggBinder := &binder{streams: streams, approx: q.Approx}
	for _, it := range q.Select {
		if it.Star {
			return nil, fmt.Errorf("query: * is not valid in a decomposed aggregate")
		}
		if err := collectAggs(it.Expr, aggBinder); err != nil {
			return nil, err
		}
	}
	if len(aggBinder.aggSpecs) == 0 {
		return nil, fmt.Errorf("query: decomposition needs at least one aggregate")
	}

	bucketLen := int64(60_000_000_000) // 60 virtual seconds
	if q.From[0].HasWindow {
		w := q.From[0].Window
		switch {
		case w.Kind == window.KindTime && !w.Landmark && w.Slide == w.Range:
			bucketLen = w.Range
		case w.Kind == window.KindNone:
			// unbounded: keep the default bucket for periodic emission
		default:
			return nil, fmt.Errorf("query: only tumbling windows decompose (got %s)", w)
		}
	}
	return dsms.NewDecomposition(sch, pred, groupExprs, groupNames,
		aggBinder.aggSpecs, slots, bucketLen)
}
