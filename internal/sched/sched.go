// Package sched implements memory-based operator scheduling [BBDM03]
// (slides 42-43): a discrete-time simulator for operator chains with
// declared selectivities and per-tuple costs, under pluggable scheduling
// policies — FIFO, RoundRobin, Greedy, and Chain.
//
// The simulator reproduces the tutorial's worked example exactly: two
// operators (selectivity 0.2 then 0), one tuple arriving per time unit,
// one operator-invocation per time unit of CPU. Backlog is measured in
// memory units where a tuple occupies the product of the selectivities
// already applied to it — the progress-chart currency of the Chain
// paper.
package sched

import (
	"fmt"
	"math"
)

// OpSpec declares one operator of a chain.
type OpSpec struct {
	// Sel is the operator's selectivity: output tuples per input tuple.
	Sel float64
	// Cost is the CPU time units needed to process one tuple.
	Cost float64
}

// Policy selects, at each scheduling step, which operator to run next.
type Policy interface {
	Name() string
	// Pick returns the index of the operator to run, given the number
	// of tuples queued before each operator and the tuples' arrival
	// order; -1 means idle. queues[i] counts tuples waiting before
	// operator i; oldest[i] is the arrival sequence of the head tuple
	// (math.MaxInt64 when empty).
	Pick(s *Sim) int
}

// Sim is the discrete-time chain simulator. Tuples flow through
// operators 0..n-1 in order; operator i's output (probabilistically a
// fraction Sel of its input, simulated deterministically as fractional
// tuples) queues before operator i+1.
//
// Fractional tuples: following the Chain paper's fluid analysis, a tuple
// that has passed operators with selectivities s1..sk occupies s1*...*sk
// memory units and is dropped entirely when the product reaches zero.
type Sim struct {
	specs  []OpSpec
	sizes  []float64 // memory units of a tuple queued before op i
	queues [][]qtuple
	policy Policy
	now    float64
	busy   float64 // CPU busy until this time
	seq    int64

	// Backlog series: total memory at each integer tick, recorded
	// before processing that tick's work.
	Ticks   []float64
	Backlog []float64
	// Processed counts operator invocations.
	Processed int64
	// Emitted counts tuples (fractions) leaving the chain.
	Emitted float64
	// PeakBacklog is the high-water mark across all recorded ticks.
	PeakBacklog float64
}

type qtuple struct {
	seq  int64
	frac float64 // surviving fraction of the original tuple
}

// NewSim builds a simulator for the given chain and policy.
func NewSim(specs []OpSpec, policy Policy) (*Sim, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("sched: empty chain")
	}
	sizes := make([]float64, len(specs))
	prod := 1.0
	for i, sp := range specs {
		if sp.Sel < 0 || sp.Sel > 1 {
			return nil, fmt.Errorf("sched: selectivity %v out of [0,1]", sp.Sel)
		}
		if sp.Cost <= 0 {
			return nil, fmt.Errorf("sched: cost must be positive")
		}
		sizes[i] = prod
		prod *= sp.Sel
	}
	return &Sim{
		specs:  specs,
		sizes:  sizes,
		queues: make([][]qtuple, len(specs)),
		policy: policy,
	}, nil
}

// QueueLens reports tuples waiting before each operator.
func (s *Sim) QueueLens() []int {
	out := make([]int, len(s.queues))
	for i, q := range s.queues {
		out[i] = len(q)
	}
	return out
}

// OldestSeq reports the arrival sequence of the head tuple before each
// operator (MaxInt64 when empty); FIFO keys off it.
func (s *Sim) OldestSeq() []int64 {
	out := make([]int64, len(s.queues))
	for i, q := range s.queues {
		if len(q) == 0 {
			out[i] = math.MaxInt64
		} else {
			out[i] = q[0].seq
		}
	}
	return out
}

// Specs exposes the chain description to policies.
func (s *Sim) Specs() []OpSpec { return s.specs }

// Sizes exposes the per-stage memory units to policies.
func (s *Sim) Sizes() []float64 { return s.sizes }

// TotalMemory sums queue backlog in memory units.
func (s *Sim) TotalMemory() float64 {
	// A queued tuple's size is the product of the selectivities already
	// applied to it, carried in frac (sizes[] duplicates this per-stage
	// for policy use; using frac keeps partially-filtered tuples exact).
	total := 0.0
	for _, q := range s.queues {
		for _, t := range q {
			total += t.frac
		}
	}
	return total
}

// Arrive enqueues n tuples before the first operator.
func (s *Sim) Arrive(n int) {
	for k := 0; k < n; k++ {
		s.seq++
		s.queues[0] = append(s.queues[0], qtuple{seq: s.seq, frac: 1})
	}
}

// step runs one operator invocation (cost units of CPU) chosen by the
// policy; returns false when every queue is empty.
func (s *Sim) step(budget *float64) bool {
	i := s.policy.Pick(s)
	if i < 0 || i >= len(s.queues) || len(s.queues[i]) == 0 {
		return false
	}
	cost := s.specs[i].Cost
	if *budget < cost {
		return false // not enough CPU left this tick
	}
	*budget -= cost
	t := s.queues[i][0]
	s.queues[i] = s.queues[i][1:]
	s.Processed++
	out := qtuple{seq: t.seq, frac: t.frac * s.specs[i].Sel}
	if out.frac <= 1e-12 {
		return true // tuple filtered out entirely
	}
	if i == len(s.queues)-1 {
		s.Emitted += out.frac
		return true
	}
	s.queues[i+1] = append(s.queues[i+1], out)
	return true
}

// Run simulates ticks time units: at each integer tick, arrivals[t]
// tuples arrive (0 beyond the slice), the backlog is recorded, and one
// time unit of CPU is spent per the policy. The recorded series matches
// slide 43's table: backlog is sampled after arrivals, before service.
func (s *Sim) Run(ticks int, arrivals []int) {
	for t := 0; t < ticks; t++ {
		if t < len(arrivals) {
			s.Arrive(arrivals[t])
		}
		m := s.TotalMemory()
		s.Ticks = append(s.Ticks, float64(t))
		s.Backlog = append(s.Backlog, m)
		if m > s.PeakBacklog {
			s.PeakBacklog = m
		}
		budget := 1.0
		for s.step(&budget) {
		}
	}
}

// FIFO processes tuples strictly in arrival order: the head tuple is
// pushed through its next operator before any younger tuple advances.
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "FIFO" }

// Pick implements Policy.
func (FIFO) Pick(s *Sim) int {
	oldest := s.OldestSeq()
	best, bestSeq := -1, int64(math.MaxInt64)
	for i, seq := range oldest {
		if seq < bestSeq {
			best, bestSeq = i, seq
		}
	}
	return best
}

// RoundRobin services non-empty queues cyclically.
type RoundRobin struct{ next int }

// Name implements Policy.
func (*RoundRobin) Name() string { return "RoundRobin" }

// Pick implements Policy.
func (r *RoundRobin) Pick(s *Sim) int {
	lens := s.QueueLens()
	for k := 0; k < len(lens); k++ {
		i := (r.next + k) % len(lens)
		if lens[i] > 0 {
			r.next = i + 1
			return i
		}
	}
	return -1
}

// Greedy always runs the operator with the greatest memory reduction per
// unit cost among non-empty queues (the locally optimal heuristic of
// slide 43).
type Greedy struct{}

// Name implements Policy.
func (Greedy) Name() string { return "Greedy" }

// Pick implements Policy.
func (Greedy) Pick(s *Sim) int {
	lens := s.QueueLens()
	best := -1
	bestGain := math.Inf(-1)
	for i := range lens {
		if lens[i] == 0 {
			continue
		}
		// Running op i turns size[i] into size[i]*sel: reduction per cost.
		gain := s.sizes[i] * (1 - s.specs[i].Sel) / s.specs[i].Cost
		if gain > bestGain {
			best, bestGain = i, gain
		}
	}
	return best
}

// Chain is the optimal-memory policy of [BBDM03]: operators are grouped
// by the lower envelope of the progress chart (cumulative cost vs
// remaining size); at each step the tuple lying on the steepest envelope
// segment is advanced, ties broken by arrival order.
type Chain struct {
	slopes []float64 // envelope slope of the segment starting at stage i
	built  bool
}

// Name implements Policy.
func (*Chain) Name() string { return "Chain" }

func (c *Chain) build(s *Sim) {
	c.slopes = Slopes(s.Specs())
	c.built = true
}

// Slopes computes the Chain policy's lower-envelope slopes from a chain
// description: slopes[i] is the steepest memory drop per unit cost
// achievable starting at stage i on the progress chart (cumulative cost
// vs remaining tuple size). Higher slope = higher drain priority; the
// adaptive runtime uses these to order which backlogged operators get
// capacity first under pressure.
func Slopes(specs []OpSpec) []float64 {
	n := len(specs)
	// Progress chart points: (cumulative cost, size) for stages 0..n.
	cost := make([]float64, n+1)
	size := make([]float64, n+1)
	size[0] = 1
	prod := 1.0
	for i := 0; i < n; i++ {
		cost[i+1] = cost[i] + specs[i].Cost
		prod *= specs[i].Sel
		size[i+1] = prod
	}
	// Lower envelope: from each stage, the steepest drop achievable.
	slopes := make([]float64, n)
	for i := 0; i < n; i++ {
		best := 0.0
		for j := i + 1; j <= n; j++ {
			drop := (size[i] - size[j]) / (cost[j] - cost[i])
			if drop > best {
				best = drop
			}
		}
		slopes[i] = best
	}
	return slopes
}

// Pick implements Policy.
func (c *Chain) Pick(s *Sim) int {
	if !c.built {
		c.build(s)
	}
	lens := s.QueueLens()
	oldest := s.OldestSeq()
	best := -1
	bestSlope := math.Inf(-1)
	var bestSeq int64 = math.MaxInt64
	for i := range lens {
		if lens[i] == 0 {
			continue
		}
		sl := c.slopes[i]
		if sl > bestSlope || (sl == bestSlope && oldest[i] < bestSeq) {
			best, bestSlope, bestSeq = i, sl, oldest[i]
		}
	}
	return best
}
