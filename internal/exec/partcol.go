// Columnar key-partitioned joins: batch-native routing for the
// key-partition lane.
//
// The row-mode router (runKeyPartitioned) materializes every column
// batch into elements at the splitter, so a columnar pipeline collapses
// to rows the moment a partitioned join appears. This lane keeps the
// batch shape end-to-end:
//
//   - the splitter hashes a batch's key column once on arrival
//     (ops.ColPartitionable.PartitionHashCol) and queues the batch
//     behind the same timestamp-aware port merge as the row lane;
//   - releasing routes row INDEXES: each replica's task accumulates
//     (batch, row) references over the same retained batch — zero data
//     movement on split. Punctuations (always row-shaped) broadcast as
//     task boundaries exactly as before;
//   - workers run ProcessColSpan over contiguous same-batch runs,
//     collecting dense output batches plus per-row span offsets;
//   - the sequence-restoring merge reassembles output spans column-wise
//     (Batch.AppendSpan) into pooled batches for downstream edges.
//
// The release order, the synthesized-watermark rule, the global data
// sequence numbers and the barrier protocol are copied from the row
// lane unchanged, so outputs are byte-identical to it — and checkpoint
// sections are too: the splitter snapshot materializes still-queued
// batch rows into elements, producing the same bytes the row splitter
// would emit at the same cut, which keeps row- and columnar-mode
// checkpoints interchangeable.

package exec

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"streamdb/internal/ckpt"
	"streamdb/internal/ops"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

// colPartTask is one routed run of the merged input for a single join
// replica: parallel arrays where bs[i] == nil marks a row element
// (elems[i]: punctuation, barrier, or restored element) and a non-nil
// bs[i] marks physical row rows[i] of that batch. The task holds one
// batch reference per contiguous (batch, port) run; the worker drops it
// after processing the run.
type colPartTask struct {
	elems []stream.Element
	bs    []*stream.Batch
	rows  []int32
	ports []uint8
	seqs  []uint64
	resc  *rescaleOp // live re-split request (no data when set)
}

// colPartReply carries one task's outputs back to the merger:
// out rows [ends[i-1], ends[i]) are the output span of data sequence
// seqs[i]. Flush replies carry row-shaped flush output instead.
type colPartReply struct {
	worker  int
	flush   bool
	barrier bool
	bar     stream.Element
	seqs    []uint64
	ends    []int32
	out     *stream.Batch
	outs    []stream.Element
}

// colPQEntry is one port-merge queue entry: either a single row element
// (b == nil) or a column batch with its per-live-row partition hashes.
// rows aliases the batch's selection vector (nil = dense); pos is the
// next unreleased row.
type colPQEntry struct {
	e    stream.Element
	b    *stream.Batch
	rows []int32
	hs   []uint64
	pos  int
}

func (ent *colPQEntry) n() int {
	if ent.b == nil {
		return 1
	}
	if ent.rows != nil {
		return len(ent.rows)
	}
	return ent.b.Rows()
}

func (ent *colPQEntry) row(i int) int32 {
	if ent.rows != nil {
		return ent.rows[i]
	}
	return int32(i)
}

func (r *concRun) runKeyPartitionedCol(id NodeID, n *node, cp ops.ColPartitionable, wg *sync.WaitGroup) {
	defer wg.Done()
	p := r.poolWidth()
	workCh := make([]chan colPartTask, p)
	for i := range workCh {
		workCh[i] = make(chan colPartTask, 2)
	}
	mergeCh := make(chan colPartReply, 2*p)
	var crashed atomic.Bool
	outSchema := n.op.OutSchema()

	var workWG sync.WaitGroup
	for k := 0; k < p; k++ {
		workWG.Add(1)
		go func(k int) {
			defer workWG.Done()
			op := cp.ClonePartition()
			r.restoreOp(repName(id, k), op)
			outPool := stream.NewColPool(outSchema, r.opts.BatchSize)
			for t := range workCh[k] {
				if t.resc != nil {
					op = r.applyRescale(t.resc, k, id, n, op,
						func() ops.Operator { return cp.ClonePartition() }, &crashed)
					continue
				}
				out := outPool.Get()
				seqs := make([]uint64, 0, len(t.ports))
				ends := make([]int32, 0, len(t.ports))
				var bar stream.Element
				i := 0
				if !crashed.Load() {
					func() {
						defer func() {
							if rec := recover(); rec != nil {
								r.g.recordPanic(id, n, rec)
								crashed.Store(true)
							}
						}()
						cop := op.(ops.ColPartitionable)
						for i < len(t.ports) {
							if t.bs[i] == nil {
								if e := t.elems[i]; e.IsBarrier() {
									if r.ctl != nil {
										r.ctl.addSnap(e.Punct.Barrier, repName(id, k), op)
									}
									bar = e
									i++
									continue
								}
								op.Push(int(t.ports[i]), t.elems[i], func(o stream.Element) {
									out.AppendRow(o.Tuple)
								})
								if t.seqs[i] != noSeq {
									seqs = append(seqs, t.seqs[i])
									ends = append(ends, int32(out.Rows()))
								}
								i++
								continue
							}
							// Contiguous same-(batch, port) run: one span call.
							b, port := t.bs[i], t.ports[i]
							jj := i + 1
							for jj < len(t.ports) && t.bs[jj] == b && t.ports[jj] == port {
								jj++
							}
							ends = cop.ProcessColSpan(int(port), b, t.rows[i:jj], out, ends)
							seqs = append(seqs, t.seqs[i:jj]...)
							b.Release() // the task's reference for this run
							i = jj
						}
					}()
				}
				// After a crash the remaining sequence numbers still need
				// empty spans (the merge must not stall) and the remaining
				// batch references still need dropping.
				for i < len(t.ports) {
					if t.bs[i] == nil {
						if t.seqs[i] != noSeq {
							seqs = append(seqs, t.seqs[i])
							ends = append(ends, int32(out.Rows()))
						}
						i++
						continue
					}
					b, port := t.bs[i], t.ports[i]
					jj := i + 1
					for jj < len(t.ports) && t.bs[jj] == b && t.ports[jj] == port {
						jj++
					}
					for x := i; x < jj; x++ {
						seqs = append(seqs, t.seqs[x])
						ends = append(ends, int32(out.Rows()))
					}
					b.Release()
					i = jj
				}
				mergeCh <- colPartReply{worker: k, seqs: seqs, ends: ends, out: out}
				if bar.Punct != nil {
					mergeCh <- colPartReply{worker: k, barrier: true, bar: bar}
				}
				r.sampleMem(id, op)
			}
			fout := r.pool.Get()
			if !crashed.Load() {
				func() {
					defer func() {
						if rec := recover(); rec != nil {
							r.g.recordPanic(id, n, rec)
							crashed.Store(true)
						}
					}()
					op.Flush(func(o stream.Element) { fout = append(fout, o) })
				}()
			}
			r.sampleMemNow(id, op)
			mergeCh <- colPartReply{worker: k, flush: true, outs: fout}
		}(k)
	}
	go func() {
		workWG.Wait()
		close(mergeCh)
	}()

	// Splitter: the row lane's timestamp-aware port merge and hash
	// routing, releasing batch row spans instead of elements.
	go func() {
		var qs [2]struct {
			q    []colPQEntry
			head int
		}
		headTs := func(pt int) (int64, bool) {
			pq := &qs[pt]
			if pq.head >= len(pq.q) {
				return 0, false
			}
			ent := &pq.q[pq.head]
			if ent.b == nil {
				return ent.e.Ts(), true
			}
			return ent.b.Ts[ent.row(ent.pos)], true
		}
		popEntry := func(pt int) {
			pq := &qs[pt]
			pq.q[pq.head] = colPQEntry{}
			pq.head++
			if pq.head == len(pq.q) {
				pq.q, pq.head = pq.q[:0], 0
			}
		}
		pw := [2]int64{math.MinInt64, math.MinInt64}
		maxTs := [2]int64{math.MinInt64, math.MinInt64}
		synthed := [2]int64{math.MinInt64, math.MinInt64}
		var seq uint64
		act := r.activeWidth(id)
		var hashRamp []int32
		open := make([]colPartTask, p)
		addElem := func(k, port int, e stream.Element, s uint64) {
			t := &open[k]
			if t.ports == nil {
				t.elems = make([]stream.Element, 0, r.opts.BatchSize)
				t.bs = make([]*stream.Batch, 0, r.opts.BatchSize)
				t.rows = make([]int32, 0, r.opts.BatchSize)
				t.ports = make([]uint8, 0, r.opts.BatchSize)
				t.seqs = make([]uint64, 0, r.opts.BatchSize)
			}
			t.elems = append(t.elems, e)
			t.bs = append(t.bs, nil)
			t.rows = append(t.rows, 0)
			t.ports = append(t.ports, uint8(port))
			t.seqs = append(t.seqs, s)
		}
		flushTask := func(k int) {
			if len(open[k].ports) == 0 {
				return
			}
			workCh[k] <- open[k]
			open[k] = colPartTask{}
		}
		broadcast := func(port int, e stream.Element) {
			// Active replicas only: idle workers' state (watermarks
			// included) is rebuilt wholesale when a re-split brings them in.
			for k := 0; k < act; k++ {
				addElem(k, port, e, noSeq)
				flushTask(k)
			}
		}
		// doRescale mirrors the row lane: quiesce, snapshot all replicas,
		// restore each active replica's slice of the key space at the new
		// width, then route over the new active set.
		doRescale := func(want int) {
			for k := 0; k < p; k++ {
				flushTask(k)
			}
			rs := &rescaleOp{sections: make([][]byte, p), newAct: want, ready: make(chan struct{})}
			rs.snapWG.Add(p)
			for k := 0; k < p; k++ {
				workCh[k] <- colPartTask{resc: rs}
			}
			rs.snapWG.Wait()
			close(rs.ready)
			act = want
			atomic.StoreInt32(&r.adapt.actP[id], int32(want))
			n.stats.Replicas = want
			n.stats.Rescales++
		}
		routeElem := func(port int, e stream.Element) {
			n.stats.In++
			if e.IsPunct() {
				if e.Punct.Ts > synthed[port] {
					synthed[port] = e.Punct.Ts
				}
				broadcast(port, e)
				return
			}
			ts := e.Tuple.Ts
			if ts < maxTs[port] && maxTs[port] > synthed[port] {
				synthed[port] = maxTs[port]
				broadcast(port, stream.Punct(&stream.Punctuation{Ts: maxTs[port]}))
			} else if ts > maxTs[port] {
				maxTs[port] = ts
			}
			k := int(cp.PartitionHash(port, e.Tuple) % uint64(act))
			n.stats.Routed[k]++
			addElem(k, port, e, seq)
			seq++
			if len(open[k].ports) >= r.opts.BatchSize {
				flushTask(k)
			}
		}
		routeRow := func(port int, ent *colPQEntry, idx int) {
			n.stats.In++
			r32 := ent.row(idx)
			ts := ent.b.Ts[r32]
			if ts < maxTs[port] && maxTs[port] > synthed[port] {
				// Late row: restore the implicit watermark, exactly as the
				// row lane does. The broadcast flushes every open task;
				// the run loop below simply keeps appending to fresh ones.
				synthed[port] = maxTs[port]
				broadcast(port, stream.Punct(&stream.Punctuation{Ts: maxTs[port]}))
			} else if ts > maxTs[port] {
				maxTs[port] = ts
			}
			k := int(ent.hs[idx] % uint64(act))
			n.stats.Routed[k]++
			t := &open[k]
			if t.ports == nil {
				t.elems = make([]stream.Element, 0, r.opts.BatchSize)
				t.bs = make([]*stream.Batch, 0, r.opts.BatchSize)
				t.rows = make([]int32, 0, r.opts.BatchSize)
				t.ports = make([]uint8, 0, r.opts.BatchSize)
				t.seqs = make([]uint64, 0, r.opts.BatchSize)
			}
			if l := len(t.bs); l == 0 || t.bs[l-1] != ent.b || t.ports[l-1] != uint8(port) {
				ent.b.Retain() // one task reference per contiguous run
			}
			t.elems = append(t.elems, stream.Element{})
			t.bs = append(t.bs, ent.b)
			t.rows = append(t.rows, r32)
			t.ports = append(t.ports, uint8(port))
			t.seqs = append(t.seqs, seq)
			seq++
			if len(t.ports) >= r.opts.BatchSize {
				flushTask(k)
			}
		}
		// releaseHead routes a maximal prefix of the head entry whose
		// timestamps satisfy the release bound (strict: ts < limit,
		// otherwise ts <= limit). The head is known releasable, so at
		// least one element always routes — progress is guaranteed.
		releaseHead := func(pt int, limit int64, strict bool) {
			ent := &qs[pt].q[qs[pt].head]
			if ent.b == nil {
				routeElem(pt, ent.e)
				popEntry(pt)
				return
			}
			nn := ent.n()
			for ent.pos < nn {
				ts := ent.b.Ts[ent.row(ent.pos)]
				if strict {
					if ts >= limit {
						break
					}
				} else if ts > limit {
					break
				}
				routeRow(pt, ent, ent.pos)
				ent.pos++
			}
			if ent.pos == nn {
				ent.b.Release() // the splitter's queue reference
				popEntry(pt)
			}
		}
		release := func(closed bool) {
			for {
				t0, ok0 := headTs(0)
				t1, ok1 := headTs(1)
				switch {
				case ok0 && ok1:
					// Same interleave as the row lane: smaller head
					// timestamp first, ties to port 0. Releasing a run is
					// exact because the bounding head of the other port
					// does not move while this port routes.
					if t1 < t0 {
						releaseHead(1, t0, true)
					} else {
						releaseHead(0, t1, false)
					}
				case ok0:
					if !closed && t0 > pw[1] {
						return
					}
					limit := pw[1]
					if closed {
						limit = math.MaxInt64
					}
					releaseHead(0, limit, false)
				case ok1:
					if !closed && t1 > pw[0] {
						return
					}
					limit := pw[0]
					if closed {
						limit = math.MaxInt64
					}
					releaseHead(1, limit, false)
				default:
					return
				}
			}
		}
		enqueueCol := func(port int, b *stream.Batch) {
			nr := b.N()
			hs := make([]uint64, nr)
			hrows := b.Sel
			if hrows == nil {
				if cap(hashRamp) < nr {
					hashRamp = make([]int32, nr)
				}
				hrows = hashRamp[:nr]
				for i := range hrows {
					hrows[i] = int32(i)
				}
			}
			cp.PartitionHashCol(port, b, hrows, hs)
			qs[port].q = append(qs[port].q, colPQEntry{b: b, rows: b.Sel, hs: hs})
		}
		if r.restore != nil {
			// Restored in-flight elements re-enter as row entries; the
			// section bytes are shared with the row lane, so either mode
			// restores the other's cut.
			if data := r.restore.Section(splitName(id)); data != nil {
				dec := ckpt.NewDecoder(data)
				for pt := 0; pt < 2; pt++ {
					cnt := int(dec.Uvarint())
					for i := 0; i < cnt; i++ {
						qs[pt].q = append(qs[pt].q, colPQEntry{e: dec.Element()})
					}
				}
				for pt := 0; pt < 2; pt++ {
					pw[pt] = dec.Varint()
					maxTs[pt] = dec.Varint()
					synthed[pt] = dec.Varint()
				}
				if dec.Err() != nil {
					r.restoreFailed(fmt.Errorf("exec: restore %s: %w", splitName(id), dec.Err()))
				}
			}
		}
		var snapRow tuple.Tuple
		var snapVals []tuple.Value
		snapshotQueues := func(epoch int64) {
			// Byte-identical to the row splitter's section: still-queued
			// batch rows are materialized into elements for encoding.
			enc := &ckpt.Encoder{}
			for pt := 0; pt < 2; pt++ {
				total := 0
				for i := qs[pt].head; i < len(qs[pt].q); i++ {
					ent := &qs[pt].q[i]
					total += ent.n() - ent.pos
				}
				enc.Uvarint(uint64(total))
				for i := qs[pt].head; i < len(qs[pt].q); i++ {
					ent := &qs[pt].q[i]
					if ent.b == nil {
						enc.Element(ent.e)
						continue
					}
					if cap(snapVals) < len(ent.b.Cols) {
						snapVals = make([]tuple.Value, len(ent.b.Cols))
					}
					snapRow.Vals = snapVals[:len(ent.b.Cols)]
					for x := ent.pos; x < ent.n(); x++ {
						ent.b.GatherRow(int(ent.row(x)), &snapRow)
						enc.Element(stream.Tup(&snapRow))
					}
				}
			}
			for pt := 0; pt < 2; pt++ {
				enc.Varint(pw[pt])
				enc.Varint(maxTs[pt])
				enc.Varint(synthed[pt])
			}
			r.ctl.addBytes(epoch, splitName(id), enc.Bytes())
		}
		kbars := 0
		for m := range r.chans[id] {
			if r.adapt != nil {
				if want := int(atomic.LoadInt32(&r.adapt.wantP[id])); want != act && want >= 1 && want <= p {
					doRescale(want)
				}
			}
			if m.col != nil {
				atomic.AddInt64(&r.pending[id], -int64(m.col.N()))
				n.stats.Batches++
				if m.col.N() == 0 {
					m.col.Release()
					continue
				}
				enqueueCol(m.port, m.col)
				release(false)
				continue
			}
			atomic.AddInt64(&r.pending[id], -int64(len(m.elems)))
			for _, e := range m.elems {
				if e.IsBarrier() {
					kbars++
					if kbars == r.inw[id] {
						kbars = 0
						release(false)
						if r.ctl != nil {
							snapshotQueues(e.Punct.Barrier)
						}
						for k := 0; k < p; k++ {
							addElem(k, m.port, e, noSeq)
							flushTask(k)
						}
					}
					continue
				}
				if e.IsPunct() && e.Punct.Ts > pw[m.port] {
					pw[m.port] = e.Punct.Ts
				}
				qs[m.port].q = append(qs[m.port].q, colPQEntry{e: e})
			}
			r.pool.Put(m.elems)
			release(false)
		}
		release(true)
		for k := 0; k < p; k++ {
			flushTask(k)
		}
		for _, c := range workCh {
			close(c)
		}
	}()

	// Merger: restore global data-sequence order, reassembling output
	// spans column-wise into pooled batches.
	w := r.newEdgeWriter(n.out, id)
	mpool := stream.NewColPool(outSchema, r.opts.BatchSize)
	var cur *stream.Batch
	flushCur := func() {
		if cur == nil {
			return
		}
		b := cur
		cur = nil
		w.addBatch(b) // addBatch releases empty batches itself
	}
	type colRep struct {
		out  *stream.Batch
		left int
	}
	type colSpan struct {
		rep    *colRep
		lo, hi int32
	}
	deliver := func(s colSpan) {
		if s.hi > s.lo {
			if cur == nil {
				cur = mpool.Get()
			}
			cur.AppendSpan(s.rep.out, int(s.lo), int(s.hi))
			n.stats.Out += int64(s.hi - s.lo)
			if cur.Rows() >= r.opts.BatchSize {
				flushCur()
			}
		}
		s.rep.left--
		if s.rep.left == 0 {
			s.rep.out.Release()
		}
	}
	held := make(map[uint64]colSpan)
	var next uint64
	flushes := make([][]stream.Element, p)
	kmbar := 0
	for rep := range mergeCh {
		if rep.barrier {
			kmbar++
			if kmbar == p {
				kmbar = 0
				flushCur() // the barrier must not overtake merged output
				w.add(rep.bar)
			}
			continue
		}
		if rep.flush {
			flushes[rep.worker] = rep.outs
			continue
		}
		if len(rep.seqs) == 0 {
			rep.out.Release()
			continue
		}
		rp := &colRep{out: rep.out, left: len(rep.seqs)}
		var lo int32
		for i, s := range rep.seqs {
			sp := colSpan{rep: rp, lo: lo, hi: rep.ends[i]}
			lo = rep.ends[i]
			if s != next {
				held[s] = sp
				continue
			}
			deliver(sp)
			next++
			for {
				h, ok := held[next]
				if !ok {
					break
				}
				delete(held, next)
				deliver(h)
				next++
			}
		}
	}
	for len(held) > 0 {
		h, ok := held[next]
		if !ok {
			break
		}
		delete(held, next)
		deliver(h)
		next++
	}
	flushCur()
	for _, fo := range flushes {
		if fo == nil {
			continue
		}
		for _, e := range fo {
			n.stats.Out++
			w.add(e)
		}
		r.pool.Put(fo)
	}
	w.flush()
	r.closeDownstream(n.out)
}
