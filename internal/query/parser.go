package query

import (
	"fmt"
	"strconv"

	"streamdb/internal/stream"
	"streamdb/internal/window"
)

// Parse turns query text into an AST.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	q.Text = src
	return q, nil
}

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("query: %s (near position %d in %q)",
		fmt.Sprintf(format, args...), p.cur().pos, p.src)
}

func (p *parser) acceptKw(kw string) bool {
	if p.cur().kind == tokKeyword && p.cur().text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %s", kw)
	}
	return nil
}

func (p *parser) acceptSym(s string) bool {
	if p.cur().kind == tokSymbol && p.cur().text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSym(s string) error {
	if !p.acceptSym(s) {
		return p.errf("expected %q", s)
	}
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	q.Distinct = p.acceptKw("DISTINCT")

	// Select list.
	for {
		if p.acceptSym("*") {
			q.Select = append(q.Select, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKw("AS") {
				if p.cur().kind != tokIdent {
					return nil, p.errf("expected alias after AS")
				}
				item.As = p.next().text
			}
			q.Select = append(q.Select, item)
		}
		if !p.acceptSym(",") {
			break
		}
	}

	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	for {
		fi, err := p.parseFromItem()
		if err != nil {
			return nil, err
		}
		q.From = append(q.From, fi)
		if !p.acceptSym(",") {
			break
		}
	}
	if len(q.From) > 2 {
		return nil, p.errf("at most two streams per query (binary joins, slide 32)")
	}

	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			gi := GroupItem{Expr: e}
			if p.acceptKw("AS") {
				if p.cur().kind != tokIdent {
					return nil, p.errf("expected alias after AS")
				}
				gi.As = p.next().text
			}
			q.GroupBy = append(q.GroupBy, gi)
			if !p.acceptSym(",") {
				break
			}
		}
	}
	if p.acceptKw("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Having = e
	}
	if p.acceptKw("WITH") {
		if err := p.expectKw("APPROX"); err != nil {
			return nil, err
		}
		q.Approx = true
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("unexpected trailing input %q", p.cur().text)
	}
	return q, nil
}

func (p *parser) parseFromItem() (FromItem, error) {
	var fi FromItem
	if p.cur().kind != tokIdent {
		return fi, p.errf("expected stream name")
	}
	fi.Stream = p.next().text
	if p.acceptSym("[") {
		spec, err := p.parseWindow()
		if err != nil {
			return fi, err
		}
		fi.Window = spec
		fi.HasWindow = true
		if err := p.expectSym("]"); err != nil {
			return fi, err
		}
	}
	if p.acceptKw("AS") {
		if p.cur().kind != tokIdent {
			return fi, p.errf("expected alias after AS")
		}
		fi.Alias = p.next().text
	} else if p.cur().kind == tokIdent {
		fi.Alias = p.next().text
	}
	return fi, nil
}

// parseDuration reads a number with an optional time unit, returning
// virtual nanoseconds. Bare numbers are seconds, matching the
// tutorial's "[window T]" notation.
func (p *parser) parseDuration() (int64, error) {
	if p.cur().kind != tokNumber {
		return 0, p.errf("expected duration")
	}
	f, err := strconv.ParseFloat(p.next().text, 64)
	if err != nil {
		return 0, p.errf("bad duration: %v", err)
	}
	unit := float64(stream.Second)
	if p.cur().kind == tokKeyword {
		switch p.cur().text {
		case "NS":
			unit = 1
			p.pos++
		case "MS":
			unit = 1e6
			p.pos++
		case "SECOND", "SECONDS":
			unit = float64(stream.Second)
			p.pos++
		case "MINUTE", "MINUTES":
			unit = 60 * float64(stream.Second)
			p.pos++
		}
	}
	return int64(f * unit), nil
}

func (p *parser) parseWindow() (window.Spec, error) {
	switch {
	case p.acceptKw("UNBOUNDED"):
		return window.Spec{}, nil
	case p.acceptKw("PUNCTUATED"):
		// Data-dependent windows [TMSF03]: groups close when a
		// punctuation covering them arrives (the auction idiom of
		// slide 28); otherwise state flushes at end-of-stream.
		return window.Punctuated(), nil
	case p.acceptKw("ROWS"):
		if p.cur().kind != tokNumber {
			return window.Spec{}, p.errf("expected row count")
		}
		n, err := strconv.ParseInt(p.next().text, 10, 64)
		if err != nil || n <= 0 {
			return window.Spec{}, p.errf("bad row count")
		}
		return window.Rows(n), nil
	case p.acceptKw("LANDMARK"):
		if err := p.expectKw("SLIDE"); err != nil {
			return window.Spec{}, err
		}
		slide, err := p.parseDuration()
		if err != nil {
			return window.Spec{}, err
		}
		return window.Landmark(slide), nil
	case p.acceptKw("RANGE"):
		rng, err := p.parseDuration()
		if err != nil {
			return window.Spec{}, err
		}
		slide := rng
		if p.acceptKw("SLIDE") {
			slide, err = p.parseDuration()
			if err != nil {
				return window.Spec{}, err
			}
		}
		spec := window.Time(rng, slide)
		return spec, spec.Validate()
	}
	return window.Spec{}, p.errf("expected window specification")
}

// Expression grammar (precedence climbing):
//
//	or   := and (OR and)*
//	and  := not (AND not)*
//	not  := NOT not | cmp
//	cmp  := add ((= | <> | < | <= | > | >=) add | IS [NOT] NULL)?
//	add  := mul ((+ | -) mul)*
//	mul  := unary ((* | / | %) unary)*
//	unary := - unary | prim
//	prim := literal | ident[.ident] | call | ( or )
func (p *parser) parseExpr() (Node, error) { return p.parseOr() }

func (p *parser) parseOr() (Node, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Node, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Node, error) {
	if p.acceptKw("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Node, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.acceptKw("IS") {
		neg := p.acceptKw("NOT")
		if err := p.expectKw("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{E: l, Negate: neg}, nil
	}
	for _, op := range []string{"<=", ">=", "<>", "=", "<", ">"} {
		if p.acceptSym(op) {
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &BinExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdd() (Node, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSym("+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: "+", L: l, R: r}
		case p.acceptSym("-"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMul() (Node, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptSym("*"):
			op = "*"
		case p.acceptSym("/"):
			op = "/"
		case p.acceptSym("%"):
			op = "%"
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Node, error) {
	if p.acceptSym("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &NegExpr{E: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Node, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.pos++
		isFloat := false
		for _, c := range t.text {
			if c == '.' {
				isFloat = true
			}
		}
		return &NumLit{Text: t.text, IsFloat: isFloat}, nil
	case tokString:
		p.pos++
		return &StrLit{Val: t.text}, nil
	case tokKeyword:
		switch t.text {
		case "TRUE":
			p.pos++
			return &BoolLit{Val: true}, nil
		case "FALSE":
			p.pos++
			return &BoolLit{Val: false}, nil
		case "NULL":
			p.pos++
			return &NullLit{}, nil
		}
		return nil, p.errf("unexpected keyword %s", t.text)
	case tokIdent:
		p.pos++
		name := t.text
		// Function or aggregate call.
		if p.acceptSym("(") {
			call := &CallExpr{Name: name}
			if p.acceptSym("*") {
				call.Star = true
				if err := p.expectSym(")"); err != nil {
					return nil, err
				}
				return call, nil
			}
			if p.acceptSym(")") {
				return call, nil
			}
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.acceptSym(",") {
					break
				}
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		// Qualified column.
		if p.acceptSym(".") {
			if p.cur().kind != tokIdent {
				return nil, p.errf("expected column after %q.", name)
			}
			return &Ident{Qualifier: name, Name: p.next().text}, nil
		}
		return &Ident{Name: name}, nil
	case tokSymbol:
		if t.text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected token %q", t.text)
}
