package expr

// PR 8 adds direct-comparison specializations for the EQ/NE masks on
// INT and FLOAT (equality is the dominant residual shape in joins).
// The broad kernel grid already covers Eq/Ne; these tests pin the
// subtle cell — NaN — explicitly, because a naive `x == lit` loop
// would silently diverge from EvalBool: the generic comparator orders
// by `<`/`>` and reports "equal" (0) when neither holds, so a NaN cell
// PASSES Eq and FAILS Ne against every literal, the opposite of IEEE.

import (
	"math"
	"testing"

	"streamdb/internal/tuple"
)

func eqNeKernel(t *testing.T, op BinOp, lit tuple.Value) ColumnKernel {
	t.Helper()
	e, err := NewBin(op, MustColumn(fastSch, "f"), Constant(lit))
	if err != nil {
		t.Fatal(err)
	}
	k := CompileKernel(e, fastSch.Arity())
	if k == nil {
		t.Fatalf("no kernel compiled for f %v %s", op, lit)
	}
	return k
}

func TestKernelEqNeNaNExact(t *testing.T) {
	mk := func(vals ...tuple.Value) *tuple.Tuple { return tuple.New(0, vals...) }
	rows := []*tuple.Tuple{
		mk(tuple.Time(0), tuple.Int(1), tuple.Uint(1), tuple.Float(7)),
		mk(tuple.Time(1), tuple.Int(2), tuple.Uint(2), tuple.Float(math.NaN())),
		mk(tuple.Time(2), tuple.Int(3), tuple.Uint(3), tuple.Float(-7)),
		mk(tuple.Time(3), tuple.Int(4), tuple.Uint(4), tuple.Float(math.Inf(1))),
		mk(tuple.Time(4), tuple.Int(5), tuple.Uint(5), tuple.Float(0)),
	}
	cols, ts := kernelBatch(rows)
	for _, lit := range []tuple.Value{
		tuple.Float(7), tuple.Float(math.NaN()), tuple.Float(math.Inf(1)), tuple.Float(0),
		tuple.Int(7), // mixed-kind literal still specializes via AsFloat
	} {
		for _, op := range []BinOp{OpEq, OpNe} {
			kern := eqNeKernel(t, op, lit)
			for _, sel := range [][]int32{nil, {0, 1, 3}} {
				got := kern(cols, ts, sel, nil)
				want := wantSel(mustBin(t, op, MustColumn(fastSch, "f"), Constant(lit)), rows, sel)
				if !selEqual(got, want) {
					t.Errorf("f %v %s sel=%v: kernel %v, EvalBool %v", op, lit, sel != nil, got, want)
				}
			}
		}
	}
	// Pin the convention itself, not just agreement: the NaN cell (row 1)
	// survives Eq and is dropped by Ne for any non-NaN literal.
	eq := eqNeKernel(t, OpEq, tuple.Float(7))
	ne := eqNeKernel(t, OpNe, tuple.Float(7))
	if got := eq(cols, ts, nil, nil); !selEqual(got, []int32{0, 1}) {
		t.Errorf("Eq 7 over NaN batch = %v, want [0 1] (NaN passes Eq)", got)
	}
	if got := ne(cols, ts, nil, nil); !selEqual(got, []int32{2, 3, 4}) {
		t.Errorf("Ne 7 over NaN batch = %v, want [2 3 4] (NaN fails Ne)", got)
	}
	// A NaN literal compares "equal" to every cell under the ordered
	// convention: Eq keeps all rows, Ne keeps none.
	eqNaN := eqNeKernel(t, OpEq, tuple.Float(math.NaN()))
	neNaN := eqNeKernel(t, OpNe, tuple.Float(math.NaN()))
	if got := eqNaN(cols, ts, nil, nil); !selEqual(got, []int32{0, 1, 2, 3, 4}) {
		t.Errorf("Eq NaN = %v, want all rows", got)
	}
	if got := neNaN(cols, ts, nil, nil); len(got) != 0 {
		t.Errorf("Ne NaN = %v, want none", got)
	}
}

// TestKernelEqNeIntExtremes: the INT specialization compares raw signed
// payloads directly; the extremes must agree with EvalBool, including
// against literals of other integral kinds where the generic path
// promotes carefully around wraparound.
func TestKernelEqNeIntExtremes(t *testing.T) {
	mk := func(vals ...tuple.Value) *tuple.Tuple { return tuple.New(0, vals...) }
	rows := []*tuple.Tuple{
		mk(tuple.Time(0), tuple.Int(math.MaxInt64), tuple.Uint(0), tuple.Float(0)),
		mk(tuple.Time(1), tuple.Int(math.MinInt64), tuple.Uint(0), tuple.Float(0)),
		mk(tuple.Time(2), tuple.Int(-1), tuple.Uint(0), tuple.Float(0)),
		mk(tuple.Time(3), tuple.Int(0), tuple.Uint(0), tuple.Float(0)),
		mk(tuple.Time(4), tuple.Int(1), tuple.Uint(0), tuple.Float(0)),
	}
	cols, ts := kernelBatch(rows)
	for _, lit := range []tuple.Value{
		tuple.Int(math.MaxInt64), tuple.Int(math.MinInt64), tuple.Int(-1), tuple.Int(0),
		tuple.Uint(math.MaxUint64), tuple.Uint(1 << 63), tuple.Time(-1),
	} {
		for _, op := range []BinOp{OpEq, OpNe} {
			e := mustBin(t, op, MustColumn(fastSch, "i"), Constant(lit))
			kern := CompileKernel(e, fastSch.Arity())
			if kern == nil {
				t.Fatalf("no kernel for i %v %s", op, lit)
			}
			got := kern(cols, ts, nil, nil)
			want := wantSel(e, rows, nil)
			if !selEqual(got, want) {
				t.Errorf("i %v %s: kernel %v, EvalBool %v", op, lit, got, want)
			}
		}
	}
}
