package dsms

// Session protocol (frame format v2) for fault-tolerant distributed
// evaluation. The v1 transport (transport.go) fail-stops on the first
// I/O error: one dropped TCP connection kills a standing query. The
// session layer adds what the 3-level architecture (slides 14, 54-55)
// needs to survive unreliable links between observation points and the
// high-level node: per-stream sequence numbers, a resume handshake, and
// in-band control frames (the punctuation-as-control-signal idea of
// slide 25 applied to the transport itself).
//
// Wire format. Every frame starts with a one-byte type:
//
//	client -> server
//	  'H' HELLO      uvarint len | streamID bytes | crc32(id)  (re)attach stream
//	  'D' DATA       uvarint seq | uvarint len | payload | crc32(seq,payload)
//	  'B' HEARTBEAT  (empty)                             liveness + ack request
//	  'E' EOS        uvarint finalSeq                    end of stream
//	server -> client
//	  'h' HELLOACK   uvarint lastSeq                     resume point
//	  'a' ACK        uvarint lastSeq                     cumulative ack
//	  'e' EOSACK     uvarint finalSeq                    stream complete
//
// The protocol is strictly request/response for control frames (the
// server only writes when asked), so neither side needs a background
// reader and socket buffers cannot fill with unread acks. Sequence
// numbers start at 1 and are contiguous; the server applies frame
// seq == lastSeq+1, discards seq <= lastSeq as a duplicate (replay
// after reconnect), and treats a gap or a corrupt frame as a dead
// connection — the client redials, the HELLOACK tells it the last
// sequence the server applied, and it resends only the tail. Delivery
// is exactly-once per stream as long as the client's replay buffer
// covers the unacknowledged window (it syncs before the bound is hit).

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"

	"streamdb/internal/tuple"
)

// Frame type bytes (v2).
const (
	frameHello     = 'H'
	frameData      = 'D'
	frameHeartbeat = 'B'
	frameEOS       = 'E'
	frameHelloAck  = 'h'
	frameAck       = 'a'
	frameEOSAck    = 'e'
)

// maxStreamID bounds the HELLO identifier so a corrupt length varint
// cannot trigger a huge allocation.
const maxStreamID = 256

// maxFramePayload bounds DATA payloads for the same reason.
const maxFramePayload = 16 << 20

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

// dataCRC covers the sequence number and the payload, so corruption
// anywhere in a DATA frame (type byte aside) is detected.
func dataCRC(seq uint64, payload []byte) uint32 {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], seq)
	c := crc32.Update(0, crc32.IEEETable, buf[:n])
	return crc32.Update(c, crc32.IEEETable, payload)
}

// writeDataFrame appends one DATA frame to w.
func writeDataFrame(w *bufio.Writer, seq uint64, payload []byte) error {
	if err := w.WriteByte(frameData); err != nil {
		return err
	}
	if err := writeUvarint(w, seq); err != nil {
		return err
	}
	if err := writeUvarint(w, uint64(len(payload))); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], dataCRC(seq, payload))
	_, err := w.Write(crc[:])
	return err
}

// writeSeqFrame writes a control frame carrying one uvarint.
func writeSeqFrame(w *bufio.Writer, typ byte, seq uint64) error {
	if err := w.WriteByte(typ); err != nil {
		return err
	}
	return writeUvarint(w, seq)
}

// readSeqFrame reads the expected control frame type and its uvarint,
// failing on any other frame.
func readSeqFrame(r *bufio.Reader, want byte) (uint64, error) {
	typ, err := r.ReadByte()
	if err != nil {
		return 0, err
	}
	if typ != want {
		return 0, fmt.Errorf("dsms: expected frame %q, got %q", want, typ)
	}
	return binary.ReadUvarint(r)
}

// SessionConfig tunes the server side of the session protocol.
type SessionConfig struct {
	// IdleTimeout closes a connection that delivers no frame for this
	// long (dead-peer detection); the session itself survives for the
	// client to resume. 0 = default 30s, negative = disabled.
	IdleTimeout time.Duration
	// Logf, when non-nil, receives session churn events (attach,
	// resume, complete, connection errors).
	Logf func(format string, args ...interface{})
}

func (c *SessionConfig) idle() time.Duration {
	switch {
	case c.IdleTimeout < 0:
		return 0
	case c.IdleTimeout == 0:
		return 30 * time.Second
	default:
		return c.IdleTimeout
	}
}

// SessionStats aggregates server-side protocol counters.
type SessionStats struct {
	Sessions   int64 // distinct streams attached
	Reconnects int64 // HELLOs for an already-known stream
	Frames     int64 // DATA frames applied
	Dupes      int64 // DATA frames discarded as replays
	Corrupt    int64 // frames rejected by CRC or parse failure
	Completed  int64 // streams that reached EOS
}

// session is the durable per-stream state that outlives connections.
type session struct {
	mu        sync.Mutex
	id        string
	lastSeq   uint64
	dupes     int64
	completed bool
}

// SessionServer accepts reconnecting tuple streams and delivers each
// stream's tuples exactly once, in order.
type SessionServer struct {
	ln     net.Listener
	schema *tuple.Schema
	cfg    SessionConfig

	mu       sync.Mutex
	sessions map[string]*session
	stats    SessionStats
	done     chan struct{}
	target   int
	emit     func(streamID string, t *tuple.Tuple)
}

// NewSessionServer wraps a listener; schema describes the tuples every
// stream carries.
func NewSessionServer(ln net.Listener, schema *tuple.Schema, cfg SessionConfig) *SessionServer {
	return &SessionServer{
		ln: ln, schema: schema, cfg: cfg,
		sessions: make(map[string]*session),
		done:     make(chan struct{}),
	}
}

// Stats returns a snapshot of the protocol counters.
func (s *SessionServer) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *SessionServer) logf(format string, args ...interface{}) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts connections until `streams` distinct streams have
// completed (EOS acknowledged), then returns. emit is called once per
// delivered tuple, in per-stream sequence order; calls for different
// streams may be concurrent.
func (s *SessionServer) Serve(streams int, emit func(streamID string, t *tuple.Tuple)) error {
	s.mu.Lock()
	s.target = streams
	s.emit = emit
	s.mu.Unlock()
	go func() {
		<-s.done
		s.ln.Close()
	}()
	var wg sync.WaitGroup
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.handle(conn)
		}()
	}
	wg.Wait()
	select {
	case <-s.done:
		return nil
	default:
		return fmt.Errorf("dsms: listener closed before %d streams completed", streams)
	}
}

// attach resolves (or creates) the session for a HELLO.
func (s *SessionServer) attach(id string) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		sess = &session{id: id}
		s.sessions[id] = sess
		s.stats.Sessions++
		s.logf("dsms: session %q attached", id)
	} else {
		s.stats.Reconnects++
		s.logf("dsms: session %q resumed at seq %d", id, sess.lastSeq)
	}
	return sess
}

// complete records a finished stream, releasing Serve when the target
// count is reached.
func (s *SessionServer) complete(sess *session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Completed++
	s.logf("dsms: session %q complete at seq %d", sess.id, sess.lastSeq)
	if s.target > 0 && s.stats.Completed == int64(s.target) {
		close(s.done)
	}
}

func (s *SessionServer) countCorrupt() {
	s.mu.Lock()
	s.stats.Corrupt++
	s.mu.Unlock()
}

// handle runs one connection's frame loop. Any protocol violation,
// corrupt frame, or I/O error simply drops the connection: the session
// state survives and the client resumes on its next dial.
func (s *SessionServer) handle(conn net.Conn) {
	defer conn.Close()
	idle := s.cfg.idle()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var sess *session
	var payload []byte
	for {
		if idle > 0 {
			conn.SetReadDeadline(time.Now().Add(idle))
		}
		typ, err := br.ReadByte()
		if err != nil {
			if sess != nil && err != io.EOF {
				s.logf("dsms: session %q connection lost: %v", sess.id, err)
			}
			return
		}
		switch typ {
		case frameHello:
			n, err := binary.ReadUvarint(br)
			if err != nil || n == 0 || n > maxStreamID {
				s.countCorrupt()
				return
			}
			idb := make([]byte, n)
			if _, err := io.ReadFull(br, idb); err != nil {
				s.countCorrupt()
				return
			}
			// The CRC keeps a corrupted HELLO from attaching a ghost
			// session: a flipped streamID byte would otherwise answer
			// HELLOACK 0 and accept replayed frames as fresh,
			// double-counting them into the merge.
			var crc [4]byte
			if _, err := io.ReadFull(br, crc[:]); err != nil ||
				binary.LittleEndian.Uint32(crc[:]) != crc32.ChecksumIEEE(idb) {
				s.countCorrupt()
				return
			}
			sess = s.attach(string(idb))
			sess.mu.Lock()
			last := sess.lastSeq
			sess.mu.Unlock()
			if err := writeSeqFrame(bw, frameHelloAck, last); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}

		case frameData:
			if sess == nil {
				s.countCorrupt()
				return
			}
			seq, err := binary.ReadUvarint(br)
			if err != nil {
				s.countCorrupt()
				return
			}
			ln, err := binary.ReadUvarint(br)
			if err != nil || ln > maxFramePayload {
				s.countCorrupt()
				return
			}
			if uint64(cap(payload)) < ln {
				payload = make([]byte, ln)
			}
			payload = payload[:ln]
			if _, err := io.ReadFull(br, payload); err != nil {
				s.countCorrupt()
				return
			}
			var crc [4]byte
			if _, err := io.ReadFull(br, crc[:]); err != nil {
				s.countCorrupt()
				return
			}
			if binary.LittleEndian.Uint32(crc[:]) != dataCRC(seq, payload) {
				s.countCorrupt()
				return
			}
			if !s.apply(sess, seq, payload) {
				return
			}

		case frameHeartbeat:
			if sess == nil {
				s.countCorrupt()
				return
			}
			sess.mu.Lock()
			last := sess.lastSeq
			sess.mu.Unlock()
			if err := writeSeqFrame(bw, frameAck, last); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}

		case frameEOS:
			final, err := binary.ReadUvarint(br)
			if err != nil || sess == nil {
				s.countCorrupt()
				return
			}
			sess.mu.Lock()
			complete := sess.lastSeq == final
			already := sess.completed
			if complete {
				sess.completed = true
			}
			sess.mu.Unlock()
			if !complete {
				// Frames are missing (lost to corruption on the old
				// connection): drop the connection so the client's
				// resume handshake triggers the resend.
				return
			}
			if err := writeSeqFrame(bw, frameEOSAck, final); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
			if !already {
				s.complete(sess)
			}
			return

		default:
			s.countCorrupt()
			return
		}
	}
}

// apply delivers one DATA frame into the session: exactly-once by
// sequence number. Returns false when the connection must drop (gap or
// undecodable tuple).
func (s *SessionServer) apply(sess *session, seq uint64, payload []byte) bool {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	switch {
	case seq == sess.lastSeq+1:
		t, _, err := tuple.DecodeChecked(payload, s.schema)
		if err != nil {
			s.countCorrupt()
			return false
		}
		sess.lastSeq = seq
		s.mu.Lock()
		s.stats.Frames++
		emit := s.emit
		s.mu.Unlock()
		if emit != nil {
			emit(sess.id, t)
		}
		return true
	case seq <= sess.lastSeq:
		sess.dupes++
		s.mu.Lock()
		s.stats.Dupes++
		s.mu.Unlock()
		return true
	default:
		// A gap means this connection lost frames; force a resume.
		s.countCorrupt()
		return false
	}
}
