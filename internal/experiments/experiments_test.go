package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// Small scale keeps the full suite fast while preserving the shapes.
const testScale = Scale(0.05)

func cell(t *testing.T, tb *Table, row, col int) string {
	t.Helper()
	if row >= len(tb.Rows) || col >= len(tb.Rows[row]) {
		t.Fatalf("%s: no cell (%d,%d):\n%s", tb.ID, row, col, tb)
	}
	return tb.Rows[row][col]
}

func num(t *testing.T, tb *Table, row, col int) float64 {
	t.Helper()
	s := cell(t, tb, row, col)
	s = strings.TrimSuffix(s, "x")
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q not numeric:\n%s", tb.ID, row, col, s, tb)
	}
	return f
}

func TestE1Shape(t *testing.T) {
	tb := E1WindowJoinRegimes(testScale)
	// Rows: 0 cpu/hash, 1 cpu/inl, 2 mem/hash, 3 mem/inl.
	if num(t, tb, 0, 2) <= num(t, tb, 1, 2) {
		t.Errorf("CPU-limited: hash output %v <= inl %v", num(t, tb, 0, 2), num(t, tb, 1, 2))
	}
	if num(t, tb, 3, 2) <= num(t, tb, 2, 2) {
		t.Errorf("memory-limited: inl output %v <= hash %v", num(t, tb, 3, 2), num(t, tb, 2, 2))
	}
}

func TestE2Shape(t *testing.T) {
	tb := E2BoundedMemoryAgg(testScale)
	unbounded, bounded := num(t, tb, 0, 2), num(t, tb, 1, 2)
	if bounded > 511 {
		t.Errorf("bounded query exceeded domain: %v groups", bounded)
	}
	if unbounded < 5*bounded {
		t.Errorf("unbounded %v not clearly larger than bounded %v", unbounded, bounded)
	}
}

func TestE3Shape(t *testing.T) {
	tb := E3RateBasedPlans(testScale)
	// First row is the best plan (fast first): predicted 5, second 0.5.
	if p := num(t, tb, 0, 1); p != 5 {
		t.Errorf("best predicted = %v, want 5", p)
	}
	if p := num(t, tb, 1, 1); p != 0.5 {
		t.Errorf("worst predicted = %v, want 0.5", p)
	}
	// Simulation within 20% of prediction.
	for row := 0; row < 2; row++ {
		pred, sim := num(t, tb, row, 1), num(t, tb, row, 2)
		if sim < pred*0.8 || sim > pred*1.2 {
			t.Errorf("row %d: simulated %v vs predicted %v", row, sim, pred)
		}
	}
}

func TestE4Shape(t *testing.T) {
	tb := E4SchedulingBacklog(testScale)
	// Slide-43 series exact.
	if got := cell(t, tb, 0, 3); got != "1.0,1.2,2.0,2.2,3.0" {
		t.Errorf("FIFO series = %s", got)
	}
	if got := cell(t, tb, 1, 3); got != "1.0,1.2,1.4,1.6,1.8" {
		t.Errorf("Greedy series = %s", got)
	}
	// Bursty: Greedy and Chain peaks <= FIFO peak.
	fifoPeak := num(t, tb, 2, 2)
	for row := 4; row <= 5; row++ {
		if num(t, tb, row, 2) > fifoPeak {
			t.Errorf("row %d peak %v > FIFO %v", row, num(t, tb, row, 2), fifoPeak)
		}
	}
}

func TestE5Shape(t *testing.T) {
	tb := E5LoadShedding(testScale)
	// Rows alternate random/semantic per drop rate; semantic recall = 1.
	for i := 0; i < len(tb.Rows); i += 2 {
		semRecall := num(t, tb, i+1, 3)
		if semRecall != 1 {
			t.Errorf("semantic recall at %s = %v", cell(t, tb, i+1, 0), semRecall)
		}
	}
	// At the highest drop rate random's recall is below semantic's.
	last := len(tb.Rows) - 2
	if num(t, tb, last, 3) > num(t, tb, last+1, 3) {
		t.Errorf("random recall %v > semantic %v at high drop",
			num(t, tb, last, 3), num(t, tb, last+1, 3))
	}
}

func TestE6Shape(t *testing.T) {
	tb := E6P2PDetection(testScale)
	ratio := num(t, tb, 2, 3)
	if ratio < 2.2 || ratio > 4 {
		t.Errorf("payload/port ratio = %v, want ~3", ratio)
	}
	// Payload finds essentially all true P2P bytes.
	if pct := num(t, tb, 2, 2); pct < 95 {
		t.Errorf("payload found only %v%% of true P2P", pct)
	}
}

func TestE7Shape(t *testing.T) {
	tb := E7RTTMonitoring(testScale)
	// Recall increases with window size, approaching 1.
	prev := -1.0
	for row := range tb.Rows {
		r := num(t, tb, row, 3)
		if r < prev-0.02 {
			t.Errorf("recall decreased: row %d %v after %v", row, r, prev)
		}
		prev = r
	}
	if prev < 0.95 {
		t.Errorf("final recall = %v", prev)
	}
}

func TestE8Shape(t *testing.T) {
	tb := E8PartialAggregation(testScale)
	// Reduction factor grows with slot count; evictions fall.
	for row := 1; row < len(tb.Rows); row++ {
		if num(t, tb, row, 3) < num(t, tb, row-1, 3) {
			t.Errorf("reduction not monotone at row %d", row)
		}
		if num(t, tb, row, 4) > num(t, tb, row-1, 4) {
			t.Errorf("evictions not monotone at row %d", row)
		}
	}
	// Final group count identical across configurations (correctness).
	finals := cell(t, tb, 0, 5)
	for row := 1; row < len(tb.Rows); row++ {
		if cell(t, tb, row, 5) != finals {
			t.Errorf("final groups differ across slot sizes")
		}
	}
}

func TestE9Shape(t *testing.T) {
	tb := E9SynopsisAccuracy(testScale)
	first, last := 0, len(tb.Rows)-1
	// Errors shrink as memory grows (allow small noise at tiny scale).
	for col := 1; col <= 4; col++ {
		if num(t, tb, last, col) > num(t, tb, first, col)+1 {
			t.Errorf("col %d error grew with memory: %v -> %v",
				col, num(t, tb, first, col), num(t, tb, last, col))
		}
	}
}

func TestE10Shape(t *testing.T) {
	tb := E10SystemProfiles(testScale)
	if len(tb.Rows) != 5 {
		t.Fatalf("profiles = %d", len(tb.Rows))
	}
	names := []string{"Aurora", "Gigascope", "Hancock", "STREAM", "Telegraph"}
	for i, n := range names {
		if cell(t, tb, i, 0) != n {
			t.Errorf("row %d = %s, want %s", i, cell(t, tb, i, 0), n)
		}
	}
	// Aurora sheds (dropped% above the pure-filter rate); others don't drop beyond the filter.
	aurora := num(t, tb, 0, 3)
	gigascope := num(t, tb, 1, 3)
	if aurora <= gigascope {
		t.Errorf("Aurora dropped %v <= Gigascope %v", aurora, gigascope)
	}
}

func TestE11Shape(t *testing.T) {
	tb := E11XJoinSpill(testScale, t.TempDir())
	for row := range tb.Rows {
		if cell(t, tb, row, 2) != "true" {
			t.Errorf("budget %s: output not exact", cell(t, tb, row, 0))
		}
	}
	// Smallest budget spills; largest doesn't.
	if num(t, tb, 0, 3) == 0 {
		t.Error("small budget did not spill")
	}
	if num(t, tb, len(tb.Rows)-1, 3) != 0 {
		t.Error("large budget spilled")
	}
}

func TestE12Shape(t *testing.T) {
	tb := E12WindowVariants(testScale)
	shifting := num(t, tb, 0, 1)
	sliding := num(t, tb, 1, 1)
	// range/slide = 5: sliding emits ~5x shifting's results.
	if sliding < 3*shifting {
		t.Errorf("sliding %v not ~5x shifting %v", sliding, shifting)
	}
}

func TestE13Shape(t *testing.T) {
	tb := E13BlockIO(testScale, t.TempDir(), t.TempDir())
	if num(t, tb, 0, 3) != 0 {
		t.Errorf("merge strategy seeks = %v", num(t, tb, 0, 3))
	}
	if num(t, tb, 1, 3) == 0 {
		t.Error("random strategy performed no seeks")
	}
}

func TestE13FraudShape(t *testing.T) {
	tb := E13FraudDetection(testScale, t.TempDir())
	// Day 4 (after fraud start + signature history): full recall.
	lastDay := len(tb.Rows) - 1
	if r := num(t, tb, lastDay, 4); r != 1 {
		t.Errorf("day-4 recall = %v:\n%s", r, tb)
	}
	// No alerts on day 0-1 (no fraud yet).
	for day := 0; day <= 1; day++ {
		if num(t, tb, day, 2) != 0 {
			t.Errorf("day %d true positives before fraud", day)
		}
	}
}

func TestE14Shape(t *testing.T) {
	tb := E14MultiQuerySharing(testScale)
	// Selection sharing saving grows with query count: rows 0,2,4.
	s4 := num(t, tb, 0, 2)
	s64 := num(t, tb, 4, 2)
	if s64 != s4 {
		t.Errorf("shared select work should be constant: %v vs %v", s4, s64)
	}
	u4, u64 := num(t, tb, 0, 3), num(t, tb, 4, 3)
	if u64 <= u4 {
		t.Error("unshared work did not grow with query count")
	}
}

func TestE15Shape(t *testing.T) {
	tb := E15DistributedFilters(testScale)
	// Row 0 is precision 0: messages == updates.
	if cell(t, tb, 0, 1) != cell(t, tb, 0, 2) {
		t.Errorf("exact mode filtered messages: %s vs %s", cell(t, tb, 0, 1), cell(t, tb, 0, 2))
	}
	// Messages fall as precision loosens; bound always respected.
	for row := 1; row < len(tb.Rows); row++ {
		if num(t, tb, row, 2) > num(t, tb, row-1, 2) {
			t.Errorf("messages increased at row %d", row)
		}
		if cell(t, tb, row, 5) != "true" {
			t.Errorf("precision bound violated at row %d", row)
		}
	}
}

func TestE16Shape(t *testing.T) {
	tb := E16EddyAdaptivity(testScale)
	// Phase 2: eddy evals/tuple below fixed plan's.
	eddyP2 := num(t, tb, 2, 2)
	fixedP2 := num(t, tb, 3, 2)
	if eddyP2 >= fixedP2 {
		t.Errorf("phase 2: eddy %v >= fixed %v", eddyP2, fixedP2)
	}
	// Same survivors (answer correctness) per phase.
	for _, base := range []int{0, 2} {
		if cell(t, tb, base, 3) != cell(t, tb, base+1, 3) {
			t.Errorf("survivor mismatch in phase starting at row %d", base)
		}
	}
}

func TestE17Shape(t *testing.T) {
	tb := E17FaultTolerance(testScale)
	if len(tb.Rows) != 8 {
		t.Fatalf("E17 rows = %d, want 8 (4 drop rates x wirebatch {1,16})", len(tb.Rows))
	}
	// Every row — fault-free and faulty, per-tuple and batched wire —
	// must report results byte-identical to the zero-fault baseline
	// (exactly-once).
	for row := range tb.Rows {
		if got := cell(t, tb, row, 7); got != "true" {
			t.Errorf("drop=%s wirebatch=%s: exact = %s (exactly-once violated)",
				cell(t, tb, row, 0), cell(t, tb, row, 1), got)
		}
	}
	// Faults actually happened at the highest drop rate on both wires.
	for _, row := range []int{len(tb.Rows) - 2, len(tb.Rows) - 1} {
		if num(t, tb, row, 3) == 0 {
			t.Errorf("no reconnects at drop=%s wirebatch=%s",
				cell(t, tb, row, 0), cell(t, tb, row, 1))
		}
	}
}

func TestE5ControllerShape(t *testing.T) {
	tb := E5Controller()
	// Final steps: offered 500 under capacity 1000 -> rate decays toward 0.
	last := num(t, tb, len(tb.Rows)-1, 2)
	if last > 0.4 {
		t.Errorf("controller did not relax: %v", last)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "X", Title: "t", Header: []string{"a", "bb"}}
	tb.AddRow(1, 2.5)
	tb.Notes = append(tb.Notes, "n")
	s := tb.String()
	for _, want := range []string{"== X", "a", "bb", "2.5", "note: n"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestScaleFloor(t *testing.T) {
	if Scale(0.0001).N(1000) != 100 {
		t.Error("scale floor broken")
	}
	if Scale(1).N(1000) != 1000 {
		t.Error("identity scale broken")
	}
}

func TestE18Shape(t *testing.T) {
	tb := E18BatchedExecution(testScale)
	// Every configuration must be byte-identical to the batch=1 run.
	for row := range tb.Rows {
		if got := cell(t, tb, row, 5); got != "true" {
			t.Errorf("batch=%s replicas=%s: exact = %s (batching changed results)",
				cell(t, tb, row, 0), cell(t, tb, row, 1), got)
		}
	}
	// Throughput at batch=64 must beat element-at-a-time. The margin is
	// kept loose here (full margins are asserted by the benchmarks) so
	// the shape test stays robust on loaded CI hosts.
	if b1, b64 := num(t, tb, 0, 3), num(t, tb, 2, 3); b64 < b1 {
		t.Errorf("batch=64 throughput %v below batch=1 %v", b64, b1)
	}
}

func TestE19Shape(t *testing.T) {
	tb := E19PaneAggregation(testScale)
	if len(tb.Rows) != 5 {
		t.Fatalf("E19 rows = %d, want 5", len(tb.Rows))
	}
	// Every path — panes under Run, batched, and partial-replicated —
	// must be byte-identical to the legacy deterministic run.
	for row := range tb.Rows {
		if got := cell(t, tb, row, 6); got != "true" {
			t.Errorf("path=%s batch=%s replicas=%s: exact = %s (pane path changed results)",
				cell(t, tb, row, 0), cell(t, tb, row, 1), cell(t, tb, row, 2), got)
		}
	}
	// The pane path must not be slower than legacy on a range = 64·slide
	// window; the full >= 5x margin is asserted by BenchmarkAblationPanes,
	// the shape test stays loose for noisy CI hosts.
	if legacy, panes := num(t, tb, 1, 4), num(t, tb, 3, 4); panes < legacy {
		t.Errorf("pane throughput %v below legacy %v at batch=64", panes, legacy)
	}
}

func TestE20Shape(t *testing.T) {
	tb := E20PartitionedJoins(testScale)
	if len(tb.Rows) != 6 {
		t.Fatalf("E20 rows = %d, want 6", len(tb.Rows))
	}
	// Every partitioned run must be byte-identical to its serial twin.
	for row := range tb.Rows {
		if got := cell(t, tb, row, 7); got != "true" {
			t.Errorf("method=%s path=%s: exact = %s (partitioning changed results)",
				cell(t, tb, row, 0), cell(t, tb, row, 1), got)
		}
	}
	// Rows alternate (serial, partitioned) per method: hash probes must
	// be unchanged by partitioning (a bucket holds one key's candidates
	// either way), INL probes must drop (each replica scans only its key
	// slice of the window).
	if s, p := num(t, tb, 0, 4), num(t, tb, 1, 4); p != s {
		t.Errorf("hash/hash probes: partitioned %v != serial %v", p, s)
	}
	if s, p := num(t, tb, 2, 4), num(t, tb, 3, 4); p >= s {
		t.Errorf("inl/inl probes: partitioned %v not below serial %v", p, s)
	}
	if s, p := num(t, tb, 4, 4), num(t, tb, 5, 4); p >= s {
		t.Errorf("asym probes: partitioned %v not below serial %v", p, s)
	}
}

func TestE21Shape(t *testing.T) {
	tb := E21TransportWire(testScale)
	if len(tb.Rows) != 5 {
		t.Fatalf("E21 rows = %d, want 5", len(tb.Rows))
	}
	// Every wire variant must deliver the identical tuple sequence.
	for row := range tb.Rows {
		if got := cell(t, tb, row, 6); got != "true" {
			t.Errorf("wire=%s batch=%s: exact = %s (framing changed delivery)",
				cell(t, tb, row, 0), cell(t, tb, row, 1), got)
		}
	}
	// Bytes/tuple must shrink >= 30% for v3 batch=64 vs v2; this is a
	// deterministic property of the encodings, unlike throughput (which
	// only the benchmarks assert, to stay robust on loaded CI hosts).
	v2bpt, v3bpt := num(t, tb, 0, 3), num(t, tb, 3, 3)
	if v3bpt > 0.7*v2bpt {
		t.Errorf("v3 batch=64 bytes/tuple %v not >=30%% below v2 %v", v3bpt, v2bpt)
	}
	// Batching must not be slower than per-tuple framing. Individual
	// rows swing on a loaded single-core host, so compare v2 against the
	// best batched row.
	v2 := num(t, tb, 0, 4)
	best := 0.0
	for row := 2; row < len(tb.Rows); row++ {
		if v := num(t, tb, row, 4); v > best {
			best = v
		}
	}
	if best < v2 {
		t.Errorf("best batched throughput %v below v2 %v", best, v2)
	}
}

func TestE22Shape(t *testing.T) {
	tb := E22CrashRecovery(testScale, t.TempDir())
	// Rows: reference, three kills, recovered.
	if len(tb.Rows) != 5 {
		t.Fatalf("E22 rows = %d, want 5:\n%s", len(tb.Rows), tb)
	}
	last := len(tb.Rows) - 1
	if got := cell(t, tb, last, 0); got != "recovered" {
		t.Fatalf("final phase = %q, want recovered:\n%s", got, tb)
	}
	if got := cell(t, tb, last, 6); got != "true" {
		t.Errorf("exact = %s (output not byte-identical across crashes):\n%s", got, tb)
	}
	if lost := num(t, tb, last, 5); lost != 0 {
		t.Errorf("lost = %v outputs across crashes", lost)
	}
	// At least one kill must land past a committed checkpoint with
	// outputs in flight, or the replay-suppression path went untested.
	if dupes := num(t, tb, last, 4); dupes == 0 {
		t.Logf("warning: no duplicate outputs suppressed (kills landed before any output raced a checkpoint)")
	}
	if epochs := num(t, tb, last, 3); epochs < 3 {
		t.Errorf("only %v checkpoint epochs committed; interval too coarse to exercise recovery", epochs)
	}
}

func TestE25Shape(t *testing.T) {
	tb := E25AdaptiveOverload(testScale)
	// Rows: 0 static p=1, 1 static p=ceiling, 2 adaptive.
	if d := num(t, tb, 0, 2); d != 100 {
		t.Errorf("static config delivered %v%%, want 100 (backpressure, not loss)", d)
	}
	if q := num(t, tb, 2, 3); q < 90 {
		t.Errorf("adaptive QoS-weighted output = %v%%, want >= 90", q)
	}
	if aq, sq := num(t, tb, 2, 4), num(t, tb, 0, 4); aq > sq {
		t.Errorf("adaptive max queue %v exceeds static %v: controller failed to bound queues", aq, sq)
	}
	identity := false
	for _, n := range tb.Notes {
		if strings.Contains(n, "byte-identical") && strings.HasSuffix(n, "true") {
			identity = true
		}
	}
	if !identity {
		t.Error("below-capacity adaptive run not byte-identical to the serial engine")
	}
}

func TestE26Shape(t *testing.T) {
	tb := E26SharedQueries(testScale)
	// Rows: queries 1, 16, 64, 256. Columns: 0 queries, 5 evalSaving,
	// 9 identical.
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4:\n%s", len(tb.Rows), tb)
	}
	for r := range tb.Rows {
		if got := cell(t, tb, r, 9); got != "true" {
			t.Errorf("row %d (queries=%s): shared outputs not byte-identical to per-query deployment:\n%s",
				r, cell(t, tb, r, 0), tb)
		}
	}
	// The acceptance floor: >= 5x work reduction at 256 queries.
	if s := num(t, tb, 3, 5); s < 5 {
		t.Errorf("eval saving at 256 queries = %vx, want >= 5x:\n%s", s, tb)
	}
	// Savings must grow with query count (near-flat shared per-batch cost).
	if s16, s256 := num(t, tb, 1, 5), num(t, tb, 3, 5); s256 <= s16 {
		t.Errorf("eval saving did not grow with query count: 16 -> %vx, 256 -> %vx", s16, s256)
	}
	churn := false
	for _, n := range tb.Notes {
		if strings.Contains(n, "register/drop") && strings.HasSuffix(n, "true") {
			churn = true
		}
	}
	if !churn {
		t.Error("mid-run register/drop disturbed co-resident outputs")
	}
}
