package ops

import (
	"fmt"

	"streamdb/internal/expr"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
	"streamdb/internal/window"
)

// JoinMethod selects how one side's window is probed [KNV03] (slide 33):
// a hash index (O(1) probes, extra memory) or indexed nested loops over
// the window buffer (no index memory, O(window) probes).
type JoinMethod uint8

// Join methods. The asymmetric combination — hash on one side, nested
// loops on the other — is the key observation of [KNV03]: "asymmetric
// join processing has advantages if arrival rates differ".
const (
	JoinHash JoinMethod = iota
	JoinNestedLoop
)

// String names the method.
func (m JoinMethod) String() string {
	if m == JoinHash {
		return "hash"
	}
	return "inl"
}

// sideState is one input's window state.
type sideState struct {
	method JoinMethod
	buf    window.Buffer
	// index maps key hash -> tuples, maintained only for JoinHash.
	index map[uint64][]*tuple.Tuple
	key   []int
	// maxTuples caps the stored window for memory-limited operation;
	// 0 = unlimited. Overflow evicts the oldest tuple (a form of load
	// shedding on join state).
	maxTuples int
	stored    int
	evicted   int64
	order     []*tuple.Tuple // FIFO of live tuples for eviction/expiry bookkeeping
}

func (s *sideState) insert(t *tuple.Tuple) {
	if s.maxTuples > 0 && s.stored >= s.maxTuples {
		s.evictOldest()
	}
	s.buf.Insert(t)
	s.order = append(s.order, t)
	s.stored++
	if s.index != nil {
		h := t.Key(s.key)
		s.index[h] = append(s.index[h], t)
	}
}

func (s *sideState) evictOldest() {
	if len(s.order) == 0 {
		return
	}
	old := s.order[0]
	s.order = s.order[1:]
	s.stored--
	s.evicted++
	s.dropFromIndex(old)
	// The ring buffer itself drops lazily via invalidate; for row
	// buffers eviction happens inside Insert. To keep Each consistent
	// with the index we rebuild from order for time buffers only when
	// eviction is active (maxTuples > 0): rebuild is O(window) but
	// eviction is the rare, memory-pressure path.
	if tb, ok := s.buf.(*window.TimeBuffer); ok {
		tb.Reset()
		for _, t := range s.order {
			tb.Insert(t)
		}
	}
}

func (s *sideState) dropFromIndex(t *tuple.Tuple) {
	if s.index == nil {
		return
	}
	h := t.Key(s.key)
	bucket := s.index[h]
	for i, bt := range bucket {
		if bt == t {
			bucket[i] = bucket[len(bucket)-1]
			s.index[h] = bucket[:len(bucket)-1]
			break
		}
	}
	if len(s.index[h]) == 0 {
		delete(s.index, h)
	}
}

// invalidate expires tuples older than now-Range (slide 32: "invalidate
// all expired tuples in A's window").
func (s *sideState) invalidate(now int64) int {
	n := s.buf.Invalidate(now)
	for i := 0; i < n; i++ {
		old := s.order[i]
		s.dropFromIndex(old)
	}
	if n > 0 {
		s.order = s.order[n:]
		s.stored -= n
	}
	return n
}

func (s *sideState) memSize() int {
	n := s.buf.MemSize()
	if s.index != nil {
		n += 48 * len(s.index) // bucket overhead
	}
	return n
}

// WindowJoin is the binary sliding-window join of [KNV03] (slides
// 30-33). A new tuple on one input probes the opposite window, is
// inserted into its own window, and expired tuples are invalidated.
// Each side's probe method is chosen independently, enabling the
// asymmetric configurations of slide 33.
type WindowJoin struct {
	name     string
	out      *tuple.Schema
	sides    [2]*sideState
	residual expr.Expr // evaluated over concatenated (left, right) tuples
	probes   int64     // tuple comparisons performed (CPU cost proxy)
	emitted  int64
	received [2]int64
	leftSch  *tuple.Schema
	rightSch *tuple.Schema
}

// JoinConfig configures one side of a WindowJoin.
type JoinConfig struct {
	Window window.Spec
	Method JoinMethod
	// Key lists this side's equijoin column indexes. Must have the
	// same length on both sides; may be empty for a pure
	// nested-loops theta join (both methods must then be NestedLoop).
	Key []int
	// MaxTuples caps the stored window (0 = unlimited).
	MaxTuples int
}

// NewWindowJoin builds a window join. residual may be nil; it is
// evaluated against the concatenation of (left, right) tuples.
func NewWindowJoin(name string, left, right *tuple.Schema, lcfg, rcfg JoinConfig, residual expr.Expr) (*WindowJoin, error) {
	if len(lcfg.Key) != len(rcfg.Key) {
		return nil, fmt.Errorf("ops: join key arity mismatch: %d vs %d", len(lcfg.Key), len(rcfg.Key))
	}
	if len(lcfg.Key) == 0 && (lcfg.Method == JoinHash || rcfg.Method == JoinHash) {
		return nil, fmt.Errorf("ops: hash join requires equijoin keys")
	}
	for i := range lcfg.Key {
		lk := left.Fields[lcfg.Key[i]].Kind
		rk := right.Fields[rcfg.Key[i]].Kind
		if lk.Numeric() != rk.Numeric() || (!lk.Numeric() && lk != rk) {
			return nil, fmt.Errorf("ops: join key %d type mismatch: %s vs %s", i, lk, rk)
		}
	}
	if residual != nil && residual.Kind() != tuple.KindBool {
		return nil, fmt.Errorf("ops: join residual must be boolean")
	}
	mk := func(cfg JoinConfig) *sideState {
		st := &sideState{
			method:    cfg.Method,
			buf:       window.NewBuffer(cfg.Window),
			key:       cfg.Key,
			maxTuples: cfg.MaxTuples,
		}
		if cfg.Method == JoinHash {
			st.index = make(map[uint64][]*tuple.Tuple)
		}
		return st
	}
	j := &WindowJoin{
		name:     name,
		out:      left.Concat(right),
		leftSch:  left,
		rightSch: right,
		residual: residual,
	}
	j.sides[0] = mk(lcfg)
	j.sides[1] = mk(rcfg)
	return j, nil
}

// NewSymmetricHashJoin builds the classic symmetric hash join [WA91]
// (slide 31): hash on both sides, unbounded windows.
func NewSymmetricHashJoin(name string, left, right *tuple.Schema, leftKey, rightKey []int) (*WindowJoin, error) {
	return NewWindowJoin(name, left, right,
		JoinConfig{Window: window.Spec{}, Method: JoinHash, Key: leftKey},
		JoinConfig{Window: window.Spec{}, Method: JoinHash, Key: rightKey},
		nil)
}

// Name implements Operator.
func (j *WindowJoin) Name() string { return j.name }

// OutSchema implements Operator.
func (j *WindowJoin) OutSchema() *tuple.Schema { return j.out }

// NumInputs implements Operator.
func (j *WindowJoin) NumInputs() int { return 2 }

// Push implements Operator. Port 0 is the left input.
func (j *WindowJoin) Push(port int, e stream.Element, emit Emit) {
	if port < 0 || port > 1 {
		return
	}
	me, opp := j.sides[port], j.sides[1-port]
	if e.IsPunct() {
		// A progress promise on this input lets the opposite window
		// discard tuples that can no longer join with future arrivals.
		opp.invalidate(e.Punct.Ts)
		return
	}
	t := e.Tuple
	j.received[port]++

	// 1. Invalidate expired tuples in the opposite window.
	opp.invalidate(t.Ts)

	// 2. Probe the opposite window.
	switch opp.method {
	case JoinHash:
		h := t.Key(me.key)
		for _, cand := range opp.index[h] {
			j.probes++
			if cand.KeyEqual(t, opp.key, me.key) {
				j.tryEmit(port, t, cand, emit)
			}
		}
	case JoinNestedLoop:
		opp.buf.Each(func(cand *tuple.Tuple) bool {
			j.probes++
			if len(me.key) == 0 || cand.KeyEqual(t, opp.key, me.key) {
				j.tryEmit(port, t, cand, emit)
			}
			return true
		})
	}

	// 3. Insert into own window.
	me.insert(t)
}

// tryEmit applies the residual predicate and emits the concatenated
// output in (left, right) field order regardless of arrival port.
func (j *WindowJoin) tryEmit(port int, arrived, matched *tuple.Tuple, emit Emit) {
	var out *tuple.Tuple
	if port == 0 {
		out = arrived.Concat(matched)
	} else {
		out = matched.Concat(arrived)
	}
	if j.residual != nil && !expr.EvalBool(j.residual, out) {
		return
	}
	j.emitted++
	emit(stream.Tup(out))
}

// Flush implements Operator.
func (j *WindowJoin) Flush(Emit) {}

// MemSize implements Operator.
func (j *WindowJoin) MemSize() int {
	return 128 + j.sides[0].memSize() + j.sides[1].memSize()
}

// Probes returns the number of tuple comparisons performed: the CPU-cost
// proxy experiment E1 sweeps.
func (j *WindowJoin) Probes() int64 { return j.probes }

// Emitted returns the number of join results produced.
func (j *WindowJoin) Emitted() int64 { return j.emitted }

// Evicted returns tuples dropped by the memory cap on each side.
func (j *WindowJoin) Evicted() (left, right int64) {
	return j.sides[0].evicted, j.sides[1].evicted
}

// WindowSizes reports the live tuple count per side.
func (j *WindowJoin) WindowSizes() (left, right int) {
	return j.sides[0].buf.Len(), j.sides[1].buf.Len()
}

// Selectivity implements Costs (observed).
func (j *WindowJoin) Selectivity() float64 {
	in := j.received[0] + j.received[1]
	if in == 0 {
		return 1
	}
	return float64(j.emitted) / float64(in)
}

// UnitCost implements Costs: average probes per input tuple.
func (j *WindowJoin) UnitCost() float64 {
	in := j.received[0] + j.received[1]
	if in == 0 {
		return 1
	}
	c := float64(j.probes) / float64(in)
	if c < 1 {
		return 1
	}
	return c
}
