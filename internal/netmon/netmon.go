// Package netmon is the Gigascope-style network monitoring substrate
// (slides 10-13, 48): layered protocol schemas defined at the packet
// level, and synthetic trace generators that stand in for the AT&T
// backbone taps the tutorial's applications ran on (see DESIGN.md §2).
//
// Three generators cover the tutorial's applications:
//
//   - NewPacketTrace: general TCP/UDP traffic with payloads, including
//     P2P sessions that spread across well-known and ephemeral ports —
//     the workload of the P2P-detection case study (slide 10).
//   - NewHandshakeTrace: TCP SYN and SYN-ACK streams with configurable
//     round-trip times — the web client performance monitor (slides
//     11, 13).
//   - NewFlowTrace: NetFlow-style flow records aggregated from packets,
//     the baseline the payload inspector is compared against.
package netmon

import (
	"math/rand"

	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

// Layered protocol schemas (slide 12): each level inherits the fields
// of the level below, the way GSQL's PROTOCOL definitions do.

// IPv4Schema is the layer-3 schema.
func IPv4Schema(name string) *tuple.Schema {
	return tuple.NewSchema(name,
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "srcIP", Kind: tuple.KindIP},
		tuple.Field{Name: "destIP", Kind: tuple.KindIP},
		tuple.Field{Name: "protocol", Kind: tuple.KindUint, Bounded: true},
		tuple.Field{Name: "ttl", Kind: tuple.KindUint, Bounded: true},
		tuple.Field{Name: "len", Kind: tuple.KindUint},
	)
}

// TCPSchema is the layer-4 TCP schema: IPv4 plus ports, flags and the
// application payload (layers 5-7 packet data, slide 12).
func TCPSchema(name string) *tuple.Schema {
	return tuple.NewSchema(name,
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "srcIP", Kind: tuple.KindIP},
		tuple.Field{Name: "destIP", Kind: tuple.KindIP},
		tuple.Field{Name: "protocol", Kind: tuple.KindUint, Bounded: true},
		tuple.Field{Name: "ttl", Kind: tuple.KindUint, Bounded: true},
		tuple.Field{Name: "len", Kind: tuple.KindUint},
		tuple.Field{Name: "srcPort", Kind: tuple.KindUint},
		tuple.Field{Name: "destPort", Kind: tuple.KindUint},
		tuple.Field{Name: "syn", Kind: tuple.KindBool, Bounded: true},
		tuple.Field{Name: "ack", Kind: tuple.KindBool, Bounded: true},
		tuple.Field{Name: "payload", Kind: tuple.KindString},
	)
}

// FlowSchema is the NetFlow-style record schema.
func FlowSchema(name string) *tuple.Schema {
	return tuple.NewSchema(name,
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "srcIP", Kind: tuple.KindIP},
		tuple.Field{Name: "destIP", Kind: tuple.KindIP},
		tuple.Field{Name: "srcPort", Kind: tuple.KindUint},
		tuple.Field{Name: "destPort", Kind: tuple.KindUint},
		tuple.Field{Name: "packets", Kind: tuple.KindUint},
		tuple.Field{Name: "bytes", Kind: tuple.KindUint},
	)
}

// P2P protocol constants for the slide-10 experiment.
var (
	// P2PKeywords are the application-layer markers payload inspection
	// searches for.
	P2PKeywords = []string{"BitTorrent protocol", "GNUTELLA CONNECT", "eDonkey"}
	// P2PWellKnownPorts are the registered P2P ports a port-based
	// classifier (NetFlow, slide 10's "previous approach") looks at.
	P2PWellKnownPorts = []uint64{6881, 6346, 4662}
)

// TraceConfig parameterizes the packet generator.
type TraceConfig struct {
	Seed     int64
	Rate     float64 // packets/sec
	AddrPool int
	// P2PFraction is the fraction of packets belonging to P2P sessions.
	P2PFraction float64
	// P2PKnownPortFraction is the fraction of P2P packets using a
	// well-known P2P port; the rest hide on ephemeral ports, which is
	// why port-based classification undercounts ~3x (slide 10).
	P2PKnownPortFraction float64
}

// PacketTrace generates a TCP packet stream per the config.
type PacketTrace struct {
	cfg    TraceConfig
	rng    *rand.Rand
	sch    *tuple.Schema
	arr    stream.Arrival
	now    int64
	srcGen stream.ValueGen
	dstGen stream.ValueGen

	// Ground truth for evaluating classifiers.
	TrueP2PPackets int64
	TrueP2PBytes   int64
	TotalPackets   int64
}

// NewPacketTrace builds the generator.
func NewPacketTrace(cfg TraceConfig) *PacketTrace {
	if cfg.Rate <= 0 {
		cfg.Rate = 10000
	}
	if cfg.AddrPool <= 0 {
		cfg.AddrPool = 1000
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &PacketTrace{
		cfg:    cfg,
		rng:    rng,
		sch:    TCPSchema("TCP"),
		arr:    stream.PoissonArrival{Rate: cfg.Rate, Rng: rng},
		srcGen: stream.ZipfIP(rng, 1.2, cfg.AddrPool),
		dstGen: stream.ZipfIP(rng, 1.2, cfg.AddrPool),
	}
}

// Schema implements stream.Source.
func (p *PacketTrace) Schema() *tuple.Schema { return p.sch }

// Next implements stream.Source.
func (p *PacketTrace) Next() (stream.Element, bool) {
	p.now = p.arr.Next(p.now)
	p.TotalPackets++
	isP2P := p.rng.Float64() < p.cfg.P2PFraction
	length := uint64(40 + p.rng.Intn(1461))
	var srcPort, destPort uint64
	payload := httpPayloads[p.rng.Intn(len(httpPayloads))]
	if isP2P {
		kw := P2PKeywords[p.rng.Intn(len(P2PKeywords))]
		payload = kw + filler[:p.rng.Intn(len(filler))]
		if p.rng.Float64() < p.cfg.P2PKnownPortFraction {
			destPort = P2PWellKnownPorts[p.rng.Intn(len(P2PWellKnownPorts))]
		} else {
			destPort = uint64(10000 + p.rng.Intn(50000)) // ephemeral
		}
		srcPort = uint64(10000 + p.rng.Intn(50000))
		p.TrueP2PPackets++
		p.TrueP2PBytes += int64(length)
	} else {
		destPort = []uint64{80, 443, 25, 53}[p.rng.Intn(4)]
		srcPort = uint64(10000 + p.rng.Intn(50000))
	}
	t := tuple.New(p.now,
		tuple.Time(p.now),
		p.srcGen(),
		p.dstGen(),
		tuple.Uint(6),
		tuple.Uint(uint64(32+p.rng.Intn(96))),
		tuple.Uint(length),
		tuple.Uint(srcPort),
		tuple.Uint(destPort),
		tuple.Bool(false),
		tuple.Bool(true),
		tuple.String(payload),
	)
	return stream.Tup(t), true
}

var httpPayloads = []string{
	"GET /index.html HTTP/1.1\r\nHost: example.com",
	"HTTP/1.1 200 OK\r\nContent-Type: text/html",
	"POST /api/v1/metrics HTTP/1.1\r\nHost: collector",
	"EHLO mail.example.com",
}

const filler = " xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"

// HandshakeConfig parameterizes the SYN / SYN-ACK generator.
type HandshakeConfig struct {
	Seed int64
	// Rate is new connections per second.
	Rate float64
	// RTTMu, RTTSigma parameterize the lognormal RTT in seconds.
	RTTMu, RTTSigma float64
	// LossProb is the probability a SYN never gets a SYN-ACK.
	LossProb float64
	// Servers is the server address pool size.
	Servers int
}

// HandshakeTrace produces two correlated streams: tcp_syn and
// tcp_syn_ack (slide 13's RTT query inputs). Both are timestamp-ordered.
type HandshakeTrace struct {
	Syn stream.Source
	Ack stream.Source
	// TrueRTTs holds the ground-truth RTT (in virtual ns) of every
	// answered handshake, for accuracy evaluation.
	TrueRTTs []int64
}

// SynSchema is the schema shared by both handshake streams.
func SynSchema(name string) *tuple.Schema {
	return tuple.NewSchema(name,
		tuple.Field{Name: "tstmp", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "srcIP", Kind: tuple.KindIP},
		tuple.Field{Name: "destIP", Kind: tuple.KindIP},
		tuple.Field{Name: "srcPort", Kind: tuple.KindUint},
		tuple.Field{Name: "destPort", Kind: tuple.KindUint},
	)
}

// NewHandshakeTrace synthesizes n handshakes.
func NewHandshakeTrace(cfg HandshakeConfig, n int) *HandshakeTrace {
	if cfg.Rate <= 0 {
		cfg.Rate = 1000
	}
	if cfg.Servers <= 0 {
		cfg.Servers = 50
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	arr := stream.PoissonArrival{Rate: cfg.Rate, Rng: rng}
	rtt := stream.LognormalFloat(rng, cfg.RTTMu, cfg.RTTSigma)

	synSch := SynSchema("tcp_syn")
	ackSch := SynSchema("tcp_syn_ack")
	var syns, acks []stream.Element
	var truth []int64
	now := int64(0)
	for i := 0; i < n; i++ {
		now = arr.Next(now)
		client := tuple.IP(uint32(10<<24) + uint32(rng.Intn(1<<20)))
		server := tuple.IP(uint32(192<<24|168<<16) + uint32(rng.Intn(cfg.Servers)))
		cport := tuple.Uint(uint64(10000 + rng.Intn(50000)))
		sport := tuple.Uint(443)
		syns = append(syns, stream.Tup(tuple.New(now,
			tuple.Time(now), client, server, cport, sport)))
		if rng.Float64() < cfg.LossProb {
			continue
		}
		r, _ := rtt().AsFloat()
		rttNs := int64(r * float64(stream.Second))
		if rttNs < 1 {
			rttNs = 1
		}
		ackTs := now + rttNs
		// SYN-ACK swaps the endpoints (slide 13's join predicate).
		acks = append(acks, stream.Tup(tuple.New(ackTs,
			tuple.Time(ackTs), server, client, sport, cport)))
		truth = append(truth, rttNs)
	}
	stream.SortByTs(acks)
	return &HandshakeTrace{
		Syn:      stream.FromElements(synSch, syns...),
		Ack:      stream.FromElements(ackSch, acks...),
		TrueRTTs: truth,
	}
}

// FlowTrace aggregates a packet source into NetFlow-style flow records
// keyed by 5-tuple, flushed when idle for the timeout. This is the
// "previous approach" baseline of slide 10.
type FlowTrace struct {
	sch     *tuple.Schema
	src     stream.Source
	timeout int64
	flows   map[uint64]*flowState
	pending []stream.Element
	done    bool
}

type flowState struct {
	first, last        int64
	srcIP, destIP      tuple.Value
	srcPort, destPort  tuple.Value
	packets, byteCount uint64
}

// NewFlowTrace builds the aggregator over a TCP packet source.
func NewFlowTrace(src stream.Source, timeout int64) *FlowTrace {
	return &FlowTrace{
		sch: FlowSchema("Flows"), src: src, timeout: timeout,
		flows: make(map[uint64]*flowState),
	}
}

// Schema implements stream.Source.
func (f *FlowTrace) Schema() *tuple.Schema { return f.sch }

// Next implements stream.Source.
func (f *FlowTrace) Next() (stream.Element, bool) {
	for {
		if len(f.pending) > 0 {
			e := f.pending[0]
			f.pending = f.pending[1:]
			return e, true
		}
		if f.done {
			return stream.Element{}, false
		}
		e, ok := f.src.Next()
		if !ok {
			f.done = true
			for _, fs := range f.flows {
				f.pending = append(f.pending, f.emit(fs))
			}
			f.flows = nil
			stream.SortByTs(f.pending)
			continue
		}
		if e.IsPunct() {
			continue
		}
		t := e.Tuple
		key := t.Key([]int{1, 2, 6, 7})
		fs, exists := f.flows[key]
		if exists && t.Ts-fs.last > f.timeout {
			f.pending = append(f.pending, f.emit(fs))
			delete(f.flows, key)
			exists = false
		}
		if !exists {
			fs = &flowState{
				first: t.Ts,
				srcIP: t.Vals[1], destIP: t.Vals[2],
				srcPort: t.Vals[6], destPort: t.Vals[7],
			}
			f.flows[key] = fs
		}
		fs.last = t.Ts
		fs.packets++
		b, _ := t.Vals[5].AsUint()
		fs.byteCount += b
	}
}

func (f *FlowTrace) emit(fs *flowState) stream.Element {
	return stream.Tup(tuple.New(fs.last,
		tuple.Time(fs.last), fs.srcIP, fs.destIP, fs.srcPort, fs.destPort,
		tuple.Uint(fs.packets), tuple.Uint(fs.byteCount)))
}
