package ops

// Rescale support: rebuilding a key-partitioned replica set at a new
// width P' from the Snapshot sections of the old replicas. The engine
// quiesces the old replicas at a punctuation-aligned safe point,
// snapshots each one, and hands every new replica the full section set;
// RestorePartition keeps exactly the tuples whose partition hash maps
// to the new replica under hash % P'. Because all tuples of one key
// lived in one old replica and land in one new replica, per-key state
// and per-probe match order survive the re-split exactly (for streams
// whose per-key timestamps are monotone; otherwise output is
// multiset-identical).

import (
	"fmt"
	"os"
	"sort"

	"streamdb/internal/ckpt"
	"streamdb/internal/tuple"
)

// StateRescaler is implemented by key-partitionable operators whose
// replica state can be redistributed to a different partition count.
// sections holds one Snapshot per old replica (nil/empty entries are
// skipped); the receiver becomes replica k of p. Fold-once counters
// (probes, emitted, spills, ...) are assigned in full to replica 0 so
// replica-sum invariants survive the rescale.
type StateRescaler interface {
	KeyPartitionable
	RestorePartition(sections [][]byte, k, p int) error
}

// wjSection is one old replica's decoded WindowJoin snapshot.
type wjSection struct {
	probes, emitted  int64
	received         [2]int64
	tuples           [2][]*tuple.Tuple
	wm, lastIns      [2]int64
	sorted           [2]bool
	pendingWM        [2]int
	expired, evicted [2]int64
}

// RestorePartition implements StateRescaler on a freshly built
// WindowJoin (normally a ClonePartition of the parent).
func (j *WindowJoin) RestorePartition(sections [][]byte, k, p int) error {
	if p <= 0 || k < 0 || k >= p {
		return fmt.Errorf("ops: rescale %s: replica %d of %d", j.name, k, p)
	}
	if j.sides[0].fifo.Len() != 0 || j.sides[1].fifo.Len() != 0 {
		return fmt.Errorf("ops: rescale %s: window not empty", j.name)
	}
	schemas := [2]*tuple.Schema{j.leftSch, j.rightSch}
	var secs []wjSection
	for si, raw := range sections {
		if len(raw) == 0 {
			continue
		}
		dec := ckpt.NewDecoder(raw)
		var sec wjSection
		sec.probes = dec.Varint()
		sec.emitted = dec.Varint()
		sec.received[0] = dec.Varint()
		sec.received[1] = dec.Varint()
		for i := 0; i < 2; i++ {
			sec.tuples[i] = dec.TupleBatch(schemas[i])
			sec.wm[i] = dec.Varint()
			sec.sorted[i] = dec.Bool()
			sec.lastIns[i] = dec.Varint()
			sec.pendingWM[i] = dec.Int()
			sec.expired[i] = dec.Varint()
			sec.evicted[i] = dec.Varint()
		}
		if err := dec.Err(); err != nil {
			return fmt.Errorf("ops: rescale %s: section %d: %w", j.name, si, err)
		}
		secs = append(secs, sec)
	}
	if len(secs) == 0 {
		return nil
	}
	for i, s := range j.sides {
		// Gather this replica's share of every old window, then merge by
		// timestamp. The sort is stable over section-concatenation order,
		// so each key's internal order (one section) is preserved.
		var mine []*tuple.Tuple
		for _, sec := range secs {
			for _, t := range sec.tuples[i] {
				if j.PartitionHash(i, t)%uint64(p) == uint64(k) {
					mine = append(mine, t)
				}
			}
		}
		sort.SliceStable(mine, func(a, b int) bool { return mine[a].Ts < mine[b].Ts })
		for _, t := range mine {
			s.fifo.Push(t)
			if s.index != nil {
				h := s.hashOf(t)
				s.index[h] = append(s.index[h], t)
			}
		}
		// Watermarks advanced in lockstep across old replicas (punctuation
		// broadcast); max is exact when equal and safe when not.
		s.wm = secs[0].wm[i]
		s.sorted = true
		s.lastIns = secs[0].lastIns[i]
		s.pendingWM = 0
		for _, sec := range secs {
			if sec.wm[i] > s.wm {
				s.wm = sec.wm[i]
			}
			if sec.lastIns[i] > s.lastIns {
				s.lastIns = sec.lastIns[i]
			}
			s.sorted = s.sorted && sec.sorted[i]
			s.pendingWM += sec.pendingWM[i]
		}
		if k == 0 {
			for _, sec := range secs {
				s.expired += sec.expired[i]
				s.evicted += sec.evicted[i]
			}
		}
	}
	if k == 0 {
		for _, sec := range secs {
			j.probes += sec.probes
			j.emitted += sec.emitted
			j.received[0] += sec.received[0]
			j.received[1] += sec.received[1]
		}
	}
	return nil
}

// RestorePartition implements StateRescaler on a freshly built XJoin of
// identical configuration (nparts, budget, keys). Old replicas' arrival
// sequences are kept as-is: tuples that can key-match always came from
// the same old replica, so the residency-interval dedup rule of the
// cleanup phase still compares sequences from one counter.
func (x *XJoin) RestorePartition(sections [][]byte, k, p int) error {
	if p <= 0 || k < 0 || k >= p {
		return fmt.Errorf("ops: rescale %s: replica %d of %d", x.name, k, p)
	}
	schemas := [2]*tuple.Schema{x.leftSch, x.rightSch}
	any := false
	allCleaned := true
	for si, raw := range sections {
		if len(raw) == 0 {
			continue
		}
		dec := ckpt.NewDecoder(raw)
		seq := dec.Varint()
		dec.Int() // inMem: recomputed below from kept tuples
		if n := dec.Int(); n != x.nparts {
			return fmt.Errorf("ops: rescale %s: section %d has %d partitions, operator has %d", x.name, si, n, x.nparts)
		}
		emitted := dec.Varint()
		spills := dec.Varint()
		spilledTs := dec.Varint()
		dec.Varint() // diskBytes: recomputed by respill below
		cleaned := dec.Bool()
		for s := 0; s < 2; s++ {
			for pi := 0; pi < x.nparts; pi++ {
				mem, err := decodeXTuples(dec, schemas[s])
				if err != nil {
					return fmt.Errorf("ops: rescale %s: section %d: %w", x.name, si, err)
				}
				disk, err := decodeXTuples(dec, schemas[s])
				if err != nil {
					return fmt.Errorf("ops: rescale %s: section %d: %w", x.name, si, err)
				}
				part := x.parts[s][pi]
				for _, xt := range mem {
					if xt.t.Key(x.keys[s])%uint64(p) == uint64(k) {
						part.mem = append(part.mem, xt)
						x.inMem++
					}
				}
				var keepDisk []xtuple
				for _, xt := range disk {
					if xt.t.Key(x.keys[s])%uint64(p) == uint64(k) {
						keepDisk = append(keepDisk, xt)
					}
				}
				if len(keepDisk) > 0 {
					if err := x.respillMore(part, keepDisk); err != nil {
						return fmt.Errorf("ops: rescale %s: %w", x.name, err)
					}
				}
			}
		}
		if err := dec.Err(); err != nil {
			return fmt.Errorf("ops: rescale %s: section %d: %w", x.name, si, err)
		}
		if seq > x.seq {
			x.seq = seq
		}
		allCleaned = allCleaned && cleaned
		if k == 0 {
			x.emitted += emitted
			x.spills += spills
			x.spilledTs += spilledTs
		}
		any = true
	}
	if any {
		x.cleaned = allCleaned
	}
	return nil
}

// respillMore appends restored disk-phase tuples to a partition's spill
// file, creating it on first use (a rescale may merge disk phases from
// several old replicas into one partition).
func (x *XJoin) respillMore(part *xpart, disk []xtuple) error {
	if part.file == nil {
		f, err := os.CreateTemp(x.dir, "part")
		if err != nil {
			return err
		}
		part.file = f
	}
	var buf []byte
	for _, xt := range disk {
		buf = appendXTuple(buf, xt)
	}
	if _, err := part.file.Write(buf); err != nil {
		return err
	}
	part.n += int64(len(disk))
	x.diskBytes += int64(len(buf))
	return nil
}
