// Package expr implements the scalar expression language used throughout
// streamdb: in WHERE predicates, SELECT lists, GROUP BY expressions such
// as Gigascope's time/60 window buckets (slide 37), and HAVING clauses.
//
// Expressions are immutable trees evaluated against a single tuple (or a
// pair of concatenated tuples for join predicates). Evaluation is
// allocation-free for numeric expressions.
package expr

import (
	"fmt"
	"strings"

	"streamdb/internal/tuple"
)

// Expr is a scalar expression evaluated against one tuple.
type Expr interface {
	// Eval computes the expression over t. NULL propagates: any NULL
	// operand yields NULL (except IS NULL and boolean three-valued logic).
	Eval(t *tuple.Tuple) tuple.Value
	// Kind reports the static result type given the input schema binding
	// established at Bind time.
	Kind() tuple.Kind
	// Columns appends the column indexes the expression reads to dst.
	Columns(dst []int) []int
	// String renders the expression in SQL-ish syntax.
	String() string
}

// Col reads one attribute by position.
type Col struct {
	Index int
	Name  string
	Typ   tuple.Kind
}

// Column constructs a bound column reference.
func Column(s *tuple.Schema, name string) (*Col, error) {
	i := s.Index(name)
	if i < 0 {
		return nil, fmt.Errorf("expr: unknown column %q in %s", name, s.Name)
	}
	return &Col{Index: i, Name: name, Typ: s.Fields[i].Kind}, nil
}

// MustColumn is Column for statically-known names; it panics on error.
func MustColumn(s *tuple.Schema, name string) *Col {
	c, err := Column(s, name)
	if err != nil {
		panic(err)
	}
	return c
}

// Eval implements Expr.
func (c *Col) Eval(t *tuple.Tuple) tuple.Value { return t.Vals[c.Index] }

// Kind implements Expr.
func (c *Col) Kind() tuple.Kind { return c.Typ }

// Columns implements Expr.
func (c *Col) Columns(dst []int) []int { return append(dst, c.Index) }

func (c *Col) String() string { return c.Name }

// Lit is a constant.
type Lit struct{ Val tuple.Value }

// Constant wraps a value as an expression.
func Constant(v tuple.Value) *Lit { return &Lit{Val: v} }

// Eval implements Expr.
func (l *Lit) Eval(*tuple.Tuple) tuple.Value { return l.Val }

// Kind implements Expr.
func (l *Lit) Kind() tuple.Kind { return l.Val.Kind }

// Columns implements Expr.
func (l *Lit) Columns(dst []int) []int { return dst }

func (l *Lit) String() string {
	if l.Val.Kind == tuple.KindString {
		return "'" + l.Val.Str() + "'"
	}
	return l.Val.String()
}

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operator kinds: arithmetic, comparison, boolean.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var binOpNames = [...]string{"+", "-", "*", "/", "%", "=", "<>", "<", "<=", ">", ">=", "AND", "OR"}

// String returns the SQL spelling of the operator.
func (o BinOp) String() string { return binOpNames[o] }

// Comparison reports whether the operator yields BOOL from two scalars.
func (o BinOp) Comparison() bool { return o >= OpEq && o <= OpGe }

// Bin is a binary expression.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// NewBin constructs a type-checked binary expression.
func NewBin(op BinOp, l, r Expr) (*Bin, error) {
	lk, rk := l.Kind(), r.Kind()
	switch {
	case op <= OpMod:
		if !lk.Numeric() || !rk.Numeric() {
			return nil, fmt.Errorf("expr: %s requires numeric operands, got %s %s", op, lk, rk)
		}
	case op.Comparison():
		if lk.Numeric() != rk.Numeric() && lk != tuple.KindNull && rk != tuple.KindNull {
			return nil, fmt.Errorf("expr: cannot compare %s with %s", lk, rk)
		}
	default: // AND/OR
		if lk != tuple.KindBool || rk != tuple.KindBool {
			return nil, fmt.Errorf("expr: %s requires boolean operands, got %s %s", op, lk, rk)
		}
	}
	return &Bin{Op: op, L: l, R: r}, nil
}

// Eval implements Expr.
func (b *Bin) Eval(t *tuple.Tuple) tuple.Value {
	// Three-valued logic shortcuts for AND/OR.
	if b.Op == OpAnd || b.Op == OpOr {
		l := b.L.Eval(t)
		if lb, ok := l.AsBool(); ok {
			if b.Op == OpAnd && !lb {
				return tuple.Bool(false)
			}
			if b.Op == OpOr && lb {
				return tuple.Bool(true)
			}
		}
		r := b.R.Eval(t)
		if rb, ok := r.AsBool(); ok {
			if b.Op == OpAnd && !rb {
				return tuple.Bool(false)
			}
			if b.Op == OpOr && rb {
				return tuple.Bool(true)
			}
			if l.IsNull() {
				return tuple.Null
			}
			return tuple.Bool(rb)
		}
		return tuple.Null
	}

	l, r := b.L.Eval(t), b.R.Eval(t)
	if l.IsNull() || r.IsNull() {
		return tuple.Null
	}
	if b.Op.Comparison() {
		switch b.Op {
		case OpEq:
			return tuple.Bool(l.Equal(r))
		case OpNe:
			return tuple.Bool(!l.Equal(r))
		case OpLt:
			return tuple.Bool(l.Compare(r) < 0)
		case OpLe:
			return tuple.Bool(l.Compare(r) <= 0)
		case OpGt:
			return tuple.Bool(l.Compare(r) > 0)
		default:
			return tuple.Bool(l.Compare(r) >= 0)
		}
	}
	// Arithmetic. Promote to float if either side is float.
	if l.Kind == tuple.KindFloat || r.Kind == tuple.KindFloat {
		a, _ := l.AsFloat()
		c, _ := r.AsFloat()
		switch b.Op {
		case OpAdd:
			return tuple.Float(a + c)
		case OpSub:
			return tuple.Float(a - c)
		case OpMul:
			return tuple.Float(a * c)
		case OpDiv:
			if c == 0 {
				return tuple.Null
			}
			return tuple.Float(a / c)
		default:
			if c == 0 {
				return tuple.Null
			}
			return tuple.Float(float64(int64(a) % int64(c)))
		}
	}
	a, _ := l.AsInt()
	c, _ := r.AsInt()
	switch b.Op {
	case OpAdd:
		return tuple.Int(a + c)
	case OpSub:
		return tuple.Int(a - c)
	case OpMul:
		return tuple.Int(a * c)
	case OpDiv:
		if c == 0 {
			return tuple.Null
		}
		return tuple.Int(a / c)
	default:
		if c == 0 {
			return tuple.Null
		}
		return tuple.Int(a % c)
	}
}

// Kind implements Expr.
func (b *Bin) Kind() tuple.Kind {
	if b.Op.Comparison() || b.Op == OpAnd || b.Op == OpOr {
		return tuple.KindBool
	}
	if b.L.Kind() == tuple.KindFloat || b.R.Kind() == tuple.KindFloat {
		return tuple.KindFloat
	}
	return tuple.KindInt
}

// Columns implements Expr.
func (b *Bin) Columns(dst []int) []int { return b.R.Columns(b.L.Columns(dst)) }

func (b *Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Not negates a boolean expression.
type Not struct{ E Expr }

// Eval implements Expr.
func (n *Not) Eval(t *tuple.Tuple) tuple.Value {
	v := n.E.Eval(t)
	b, ok := v.AsBool()
	if !ok {
		return tuple.Null
	}
	return tuple.Bool(!b)
}

// Kind implements Expr.
func (n *Not) Kind() tuple.Kind { return tuple.KindBool }

// Columns implements Expr.
func (n *Not) Columns(dst []int) []int { return n.E.Columns(dst) }

func (n *Not) String() string { return "NOT " + n.E.String() }

// Neg negates a numeric expression.
type Neg struct{ E Expr }

// Eval implements Expr.
func (n *Neg) Eval(t *tuple.Tuple) tuple.Value {
	v := n.E.Eval(t)
	switch v.Kind {
	case tuple.KindFloat:
		return tuple.Float(-v.Fl())
	case tuple.KindInt, tuple.KindUint, tuple.KindTime:
		i, _ := v.AsInt()
		return tuple.Int(-i)
	}
	return tuple.Null
}

// Kind implements Expr.
func (n *Neg) Kind() tuple.Kind {
	if n.E.Kind() == tuple.KindFloat {
		return tuple.KindFloat
	}
	return tuple.KindInt
}

// Columns implements Expr.
func (n *Neg) Columns(dst []int) []int { return n.E.Columns(dst) }

func (n *Neg) String() string { return "-" + n.E.String() }

// IsNull tests for NULL (never returns NULL itself).
type IsNull struct {
	E      Expr
	Negate bool
}

// Eval implements Expr.
func (i *IsNull) Eval(t *tuple.Tuple) tuple.Value {
	return tuple.Bool(i.E.Eval(t).IsNull() != i.Negate)
}

// Kind implements Expr.
func (i *IsNull) Kind() tuple.Kind { return tuple.KindBool }

// Columns implements Expr.
func (i *IsNull) Columns(dst []int) []int { return i.E.Columns(dst) }

func (i *IsNull) String() string {
	if i.Negate {
		return i.E.String() + " IS NOT NULL"
	}
	return i.E.String() + " IS NULL"
}

// Call is a scalar function application. Functions are pure; the registry
// in funcs.go provides the builtin set (string matching for Gigascope
// payload inspection, time bucketing, external-table lookups).
type Call struct {
	Fn   *Func
	Args []Expr
}

// NewCall constructs a type-checked function call.
func NewCall(name string, args ...Expr) (*Call, error) {
	fn, ok := LookupFunc(name)
	if !ok {
		return nil, fmt.Errorf("expr: unknown function %q", name)
	}
	if fn.Arity >= 0 && len(args) != fn.Arity {
		return nil, fmt.Errorf("expr: %s takes %d arguments, got %d", name, fn.Arity, len(args))
	}
	return &Call{Fn: fn, Args: args}, nil
}

// Eval implements Expr.
func (c *Call) Eval(t *tuple.Tuple) tuple.Value {
	args := make([]tuple.Value, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.Eval(t)
	}
	return c.Fn.Apply(args)
}

// Kind implements Expr.
func (c *Call) Kind() tuple.Kind { return c.Fn.Result }

// Columns implements Expr.
func (c *Call) Columns(dst []int) []int {
	for _, a := range c.Args {
		dst = a.Columns(dst)
	}
	return dst
}

func (c *Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return c.Fn.Name + "(" + strings.Join(parts, ", ") + ")"
}

// EvalBool evaluates a predicate with SQL semantics: NULL counts as false.
func EvalBool(e Expr, t *tuple.Tuple) bool {
	b, ok := e.Eval(t).AsBool()
	return ok && b
}

// Selectivity estimates the fraction of tuples from sample that satisfy
// pred; the rate-based optimizer (slide 40) uses it when rates must be
// estimated rather than declared.
func Selectivity(pred Expr, sample []*tuple.Tuple) float64 {
	if len(sample) == 0 {
		return 1
	}
	pass := 0
	for _, t := range sample {
		if EvalBool(pred, t) {
			pass++
		}
	}
	return float64(pass) / float64(len(sample))
}
