package ckpt

import (
	"testing"
)

// FuzzCheckpointDecode hardens the recovery path: a checkpoint payload
// is exactly what a crashed process leaves on disk, so arbitrary (torn,
// bit-flipped, adversarial) bytes must decode to a clean error — never
// a panic — and anything that does decode must re-encode stably.
func FuzzCheckpointDecode(f *testing.F) {
	f.Add(testCheckpoint(1).Encode())
	f.Add(testCheckpoint(1 << 40).Encode())
	f.Add((&Checkpoint{Epoch: 2}).Encode())
	empty := &Checkpoint{Epoch: 3}
	empty.Add("", []byte{})
	f.Add(empty.Encode())
	f.Add([]byte{})
	f.Add([]byte("SDC1"))
	f.Add([]byte("SDC1\x00\x00\xff\xff\xff\xff\xff\xff\xff\xff\xff\x7f"))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeCheckpoint(data)
		if err != nil {
			return
		}
		// Semantic round trip: the decoded checkpoint must survive its
		// own encoding (input varints may be non-minimal, so byte
		// equality is not required).
		re := c.Encode()
		c2, err := DecodeCheckpoint(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if c2.Epoch != c.Epoch || c2.OutSeq != c.OutSeq ||
			len(c2.Sections) != len(c.Sections) || len(c2.Meta) != len(c.Meta) {
			t.Fatalf("round trip changed checkpoint: %+v vs %+v", c, c2)
		}
		for i := range c.Sections {
			if c2.Sections[i].Name != c.Sections[i].Name ||
				string(c2.Sections[i].Data) != string(c.Sections[i].Data) {
				t.Fatalf("round trip changed section %d", i)
			}
		}
	})
}
