package ops

// StateRescaler contract tests: a replica set re-split from P to P'
// through Snapshot + RestorePartition must keep processing as if no
// rescale had happened — the union of the new replicas' outputs equals
// the unpartitioned reference's output multiset, folded counters
// survive on replica 0, and malformed rescales are rejected before any
// state is mutated.

import (
	"fmt"
	"math/rand"
	"testing"

	"streamdb/internal/ckpt"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
	"streamdb/internal/window"
)

// rescaleStep is one interleaved input element: port 0 or 1.
type rescaleStep struct {
	port int
	t    *tuple.Tuple
}

func rescaleTrace(n int, keys uint32, seed int64) []rescaleStep {
	rng := rand.New(rand.NewSource(seed))
	steps := make([]rescaleStep, n)
	for i := range steps {
		steps[i] = rescaleStep{
			port: rng.Intn(2),
			t:    ab(int64(i), uint32(rng.Int31n(int32(keys)))),
		}
	}
	return steps
}

// runResc drives a set of replicas through an interleaved trace: data
// hashed to hash%len(reps), punctuations broadcast. Returns per-replica
// output multisets merged into one.
func runResc(kp KeyPartitionable, reps []Operator, steps []rescaleStep, out map[string]int) {
	p := uint64(len(reps))
	for _, s := range steps {
		k := kp.PartitionHash(s.port, s.t) % p
		reps[k].Push(s.port, stream.Tup(s.t), func(e stream.Element) {
			if !e.IsPunct() {
				out[e.Tuple.String()]++
			}
		})
	}
}

func TestWindowJoinRescaleMultisetEquivalence(t *testing.T) {
	steps := rescaleTrace(2000, 8, 21)
	collect := func(m map[string]int) func(stream.Element) {
		return func(e stream.Element) {
			if !e.IsPunct() {
				m[e.Tuple.String()]++
			}
		}
	}

	// Reference: one unpartitioned join over the full trace.
	ref := runJoin(t, JoinHash, JoinHash, window.Time(64, 64), window.Time(64, 64))
	refOut := map[string]int{}
	for _, s := range steps {
		ref.Push(s.port, stream.Tup(s.t), collect(refOut))
	}
	ref.Flush(collect(refOut))
	if len(refOut) == 0 {
		t.Fatal("reference join produced nothing")
	}

	for _, shape := range []struct{ oldP, newP int }{{2, 3}, {3, 2}, {4, 1}, {1, 4}} {
		label := fmt.Sprintf("%d->%d", shape.oldP, shape.newP)
		parent := runJoin(t, JoinHash, JoinHash, window.Time(64, 64), window.Time(64, 64))
		got := map[string]int{}

		olds := make([]Operator, shape.oldP)
		for k := range olds {
			olds[k] = parent.ClonePartition()
		}
		runResc(parent, olds, steps[:1000], got)

		// The rescale: snapshot every old replica, restore each new one.
		sections := make([][]byte, shape.oldP)
		for k, op := range olds {
			enc := &ckpt.Encoder{}
			if err := op.(ckpt.Snapshotter).Snapshot(enc); err != nil {
				t.Fatalf("%s: snapshot replica %d: %v", label, k, err)
			}
			sections[k] = enc.Bytes()
		}
		news := make([]Operator, shape.newP)
		for k := range news {
			news[k] = parent.ClonePartition()
			if err := news[k].(StateRescaler).RestorePartition(sections, k, shape.newP); err != nil {
				t.Fatalf("%s: restore replica %d: %v", label, k, err)
			}
		}
		runResc(parent, news, steps[1000:], got)
		for _, op := range news {
			op.Flush(collect(got))
		}

		if len(got) != len(refOut) {
			t.Fatalf("%s: %d distinct rows, want %d", label, len(got), len(refOut))
		}
		for k, v := range refOut {
			if got[k] != v {
				t.Errorf("%s: row %q count %d, want %d", label, k, got[k], v)
			}
		}
		// Fold-once counters land on replica 0: the replica-sum must cover
		// the whole run exactly once.
		var emitted int64
		for _, op := range news {
			emitted += op.(*WindowJoin).Emitted()
		}
		if emitted != ref.Emitted() {
			t.Errorf("%s: replica-sum Emitted = %d, want %d", label, emitted, ref.Emitted())
		}
	}
}

func TestXJoinRescaleMultisetEquivalence(t *testing.T) {
	steps := rescaleTrace(1500, 6, 33)
	a, b := joinSchemas()
	mk := func() *XJoin {
		// A tiny budget forces the disk phase, so the rescale moves both
		// in-memory and spilled tuples.
		x, err := NewXJoin("rx", a, b, []int{1}, []int{1}, 4, 96, nil, t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return x
	}
	collect := func(m map[string]int) func(stream.Element) {
		return func(e stream.Element) {
			if !e.IsPunct() {
				m[e.Tuple.String()]++
			}
		}
	}
	ref := mk()
	refOut := map[string]int{}
	for _, s := range steps {
		ref.Push(s.port, stream.Tup(s.t), collect(refOut))
	}
	ref.Flush(collect(refOut))
	if len(refOut) == 0 {
		t.Fatal("reference xjoin produced nothing")
	}

	parent := mk()
	got := map[string]int{}
	olds := make([]Operator, 2)
	for k := range olds {
		olds[k] = parent.ClonePartition()
	}
	runResc(parent, olds, steps[:700], got)
	sections := make([][]byte, 2)
	for k, op := range olds {
		enc := &ckpt.Encoder{}
		if err := op.(ckpt.Snapshotter).Snapshot(enc); err != nil {
			t.Fatalf("snapshot replica %d: %v", k, err)
		}
		sections[k] = enc.Bytes()
	}
	news := make([]Operator, 3)
	for k := range news {
		news[k] = parent.ClonePartition()
		if err := news[k].(StateRescaler).RestorePartition(sections, k, 3); err != nil {
			t.Fatalf("restore replica %d: %v", k, err)
		}
	}
	runResc(parent, news, steps[700:], got)
	for _, op := range news {
		op.Flush(collect(got))
	}
	if len(got) != len(refOut) {
		t.Fatalf("rescaled xjoin: %d distinct rows, want %d", len(got), len(refOut))
	}
	for k, v := range refOut {
		if got[k] != v {
			t.Errorf("row %q: count %d, want %d", k, got[k], v)
		}
	}
}

func TestRescaleRejectsMalformed(t *testing.T) {
	j := runJoin(t, JoinHash, JoinHash, window.Time(10, 10), window.Time(10, 10))
	if err := j.RestorePartition(nil, 2, 2); err == nil {
		t.Error("k >= p must fail")
	}
	if err := j.RestorePartition(nil, 0, 0); err == nil {
		t.Error("p == 0 must fail")
	}
	// Restoring into a replica that already holds window state would
	// silently double tuples; it must refuse.
	emit := func(stream.Element) {}
	j.Push(0, stream.Tup(ab(1, 1)), emit)
	donor := runJoin(t, JoinHash, JoinHash, window.Time(10, 10), window.Time(10, 10))
	donor.Push(0, stream.Tup(ab(2, 2)), emit)
	enc := &ckpt.Encoder{}
	if err := donor.Snapshot(enc); err != nil {
		t.Fatal(err)
	}
	if err := j.RestorePartition([][]byte{enc.Bytes()}, 0, 1); err == nil {
		t.Error("restore into a non-empty window must fail")
	}
}
