// Checkpointing: durable, aligned snapshots of a running graph.
//
// Serial mode (Graph.Run/Pump) is quiescent between Pump calls, so the
// caller drives checkpoints directly: SnapshotInto captures every
// operator section plus per-source replay positions, RestoreFrom plays
// them back into a freshly built graph of the same shape and fast-
// forwards the sources.
//
// Concurrent mode (RunWith with RunOptions.Checkpoint) aligns the cut
// with barrier punctuations, Chandy-Lamport style specialized to the
// engine's source-pause discipline: when a source has fed Every
// elements it asks the coordinator for the pending epoch, emits a
// barrier punctuation (always the last element of its batch — the
// edge writer flushes on punctuations) and blocks until the epoch
// resolves. Each node counts barriers from its input writers; on the
// last one it snapshots its state at that exact logical position and
// forwards a single barrier downstream. The three parallel lanes
// participate without losing exactness: replicated (stateless) lanes
// thread the barrier through the order-restoring merge, partial-
// aggregation lanes snapshot all P replicas plus the combiner and the
// merger's in-flight release queues, and key-partitioned lanes
// snapshot the splitter's port queues and every join replica. The
// sink-side consumer records the output count at the cut (OutSeq), the
// coordinator assembles the sections and commits them to the ckpt
// store, and the sources resume. Barriers never enter operators and
// never reach the user sink.
//
// Any source exhaustion, node failure, or snapshot error aborts the
// pending epoch and disables further checkpoints for the run — the
// last committed generation stays valid, which is the recovery
// contract.

package exec

import (
	"fmt"
	"sync"

	"streamdb/internal/ckpt"
)

// CheckpointConfig enables aligned checkpoints in RunWith.
type CheckpointConfig struct {
	// Store receives committed checkpoints.
	Store *ckpt.Store
	// Every is the per-source element interval between barriers.
	Every int64
	// OnCommit, when set, observes every epoch resolution: err is nil
	// for a durable commit, non-nil for an aborted epoch. Called with
	// coordinator state held — it must not call back into the engine.
	OnCommit func(epoch int64, err error)
	// Meta is merged into every checkpoint's replay metadata (e.g.
	// session stream sequence numbers captured by the caller).
	Meta func() map[string]uint64
}

func sectionName(id int) string { return fmt.Sprintf("n%d", id) }

// SnapshotInto captures the serial engine's state: one section per
// node (empty for operators without checkpointable state) and the
// per-source element counts for replay. The graph must be quiescent —
// between Pump calls, before Finish.
func (g *Graph) SnapshotInto(c *ckpt.Checkpoint) error {
	for id, n := range g.nodes {
		enc := &ckpt.Encoder{}
		if s, ok := n.op.(ckpt.Snapshotter); ok {
			if err := s.Snapshot(enc); err != nil {
				return fmt.Errorf("exec: snapshot node %d (%s): %w", id, n.op.Name(), err)
			}
		}
		data := enc.Bytes()
		if data == nil {
			data = []byte{}
		}
		c.Add(sectionName(id), data)
	}
	if c.Meta == nil {
		c.Meta = make(map[string]uint64, len(g.sources)+1)
	}
	c.Meta["par"] = 0
	for i, s := range g.sources {
		c.Meta[fmt.Sprintf("src%d", i)] = uint64(s.count)
	}
	return nil
}

// Checkpoint snapshots the quiescent serial graph and commits it as
// the given epoch. outSeq is the number of sink outputs the caller has
// delivered so far; extra metadata (e.g. transport sequence numbers)
// is merged into the checkpoint's replay positions.
func (g *Graph) Checkpoint(store *ckpt.Store, epoch, outSeq int64, extraMeta map[string]uint64) error {
	c := &ckpt.Checkpoint{Epoch: epoch, OutSeq: outSeq}
	if err := g.SnapshotInto(c); err != nil {
		return err
	}
	for k, v := range extraMeta {
		c.Meta[k] = v
	}
	return store.Commit(c)
}

// RestoreFrom plays a serial-engine checkpoint back into a freshly
// built graph of identical shape: every checkpointable operator's
// section is decoded, and each source is fast-forwarded past the
// elements the checkpointed run had already consumed.
func (g *Graph) RestoreFrom(c *ckpt.Checkpoint) error {
	if c.Meta["par"] != 0 {
		return fmt.Errorf("exec: checkpoint was taken by the concurrent engine (parallelism %d), not serial", c.Meta["par"])
	}
	for id, n := range g.nodes {
		s, ok := n.op.(ckpt.Snapshotter)
		if !ok {
			continue
		}
		if err := c.RestoreSection(sectionName(id), s); err != nil {
			return fmt.Errorf("exec: node %d (%s): %w", id, n.op.Name(), err)
		}
	}
	for i, s := range g.sources {
		n := int64(c.Meta[fmt.Sprintf("src%d", i)])
		for k := int64(0); k < n; k++ {
			if _, ok := s.src.Next(); !ok {
				return fmt.Errorf("exec: source %d exhausted after %d of %d replay elements", i, k, n)
			}
		}
		s.count = n
	}
	return nil
}

// ckptCtl coordinates one RunWith invocation's barrier epochs: sources
// join a pending epoch and block, nodes and lanes deposit their state
// sections, the sink consumer reports the output cut, and when the
// expected pieces are all in the epoch commits and the sources resume.
type ckptCtl struct {
	store    *ckpt.Store
	every    int64
	onCommit func(int64, error)
	metaFn   func() map[string]uint64
	baseMeta map[string]uint64
	// needSections/needSink are fixed once lanes are spawned, before
	// any source can reach a barrier.
	needSections int
	needSink     int

	mu       sync.Mutex
	cond     *sync.Cond
	next     int64
	pending  *pendingEpoch
	disabled bool
}

type pendingEpoch struct {
	epoch    int64
	c        *ckpt.Checkpoint
	sections int
	sinkDone bool
}

func newCkptCtl(cfg *CheckpointConfig, baseMeta map[string]uint64, firstEpoch int64) *ckptCtl {
	ctl := &ckptCtl{
		store:    cfg.Store,
		every:    cfg.Every,
		onCommit: cfg.OnCommit,
		metaFn:   cfg.Meta,
		baseMeta: baseMeta,
		next:     firstEpoch,
	}
	ctl.cond = sync.NewCond(&ctl.mu)
	return ctl
}

// barrier is called by a source that reached its element quota: the
// first caller opens the next epoch, later callers join it. Returns
// ok=false when checkpointing is disabled.
func (ctl *ckptCtl) barrier() (int64, bool) {
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	if ctl.disabled {
		return 0, false
	}
	if ctl.pending == nil {
		ctl.next++
		meta := make(map[string]uint64, len(ctl.baseMeta)+4)
		for k, v := range ctl.baseMeta {
			meta[k] = v
		}
		ctl.pending = &pendingEpoch{
			epoch: ctl.next,
			c:     &ckpt.Checkpoint{Epoch: ctl.next, Meta: meta},
		}
	}
	return ctl.pending.epoch, true
}

// sourceMeta records one source's replay position at its barrier.
func (ctl *ckptCtl) sourceMeta(epoch int64, key string, count uint64) {
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	if p := ctl.pending; p != nil && p.epoch == epoch {
		p.c.Meta[key] = count
	}
}

// wait blocks the source until its epoch commits or aborts.
func (ctl *ckptCtl) wait(epoch int64) {
	ctl.mu.Lock()
	for ctl.pending != nil && ctl.pending.epoch == epoch {
		ctl.cond.Wait()
	}
	ctl.mu.Unlock()
}

// addSnap encodes one operator's section into the pending epoch; a
// Snapshot error aborts the epoch. Operators without checkpointable
// state contribute an empty section, keeping the expected-section
// count purely structural.
func (ctl *ckptCtl) addSnap(epoch int64, name string, op interface{}) {
	enc := &ckpt.Encoder{}
	if s, ok := op.(ckpt.Snapshotter); ok {
		if err := s.Snapshot(enc); err != nil {
			ctl.abort(epoch, err)
			return
		}
	}
	ctl.addBytes(epoch, name, enc.Bytes())
}

// addBytes deposits a raw section (lane in-flight state).
func (ctl *ckptCtl) addBytes(epoch int64, name string, data []byte) {
	if data == nil {
		data = []byte{}
	}
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	p := ctl.pending
	if p == nil || p.epoch != epoch {
		return // stale: the epoch was aborted
	}
	p.c.Add(name, data)
	p.sections++
	ctl.maybeCommit()
}

// sinkCut records the sink output count at the barrier.
func (ctl *ckptCtl) sinkCut(epoch, outSeq int64) {
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	p := ctl.pending
	if p == nil || p.epoch != epoch {
		return
	}
	p.c.OutSeq = outSeq
	p.sinkDone = true
	ctl.maybeCommit()
}

// maybeCommit commits the pending epoch once every expected piece has
// arrived. Called with mu held.
func (ctl *ckptCtl) maybeCommit() {
	p := ctl.pending
	if p == nil || p.sections != ctl.needSections {
		return
	}
	if ctl.needSink > 0 && !p.sinkDone {
		return
	}
	if ctl.metaFn != nil {
		for k, v := range ctl.metaFn() {
			p.c.Meta[k] = v
		}
	}
	err := ctl.store.Commit(p.c)
	ctl.pending = nil
	if ctl.onCommit != nil {
		ctl.onCommit(p.epoch, err)
	}
	ctl.cond.Broadcast()
}

// abort kills the pending epoch (snapshot failure) and disables
// further checkpoints for the run.
func (ctl *ckptCtl) abort(epoch int64, err error) {
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	p := ctl.pending
	if p == nil || p.epoch != epoch {
		return
	}
	ctl.pending = nil
	ctl.disabled = true
	if ctl.onCommit != nil {
		ctl.onCommit(epoch, err)
	}
	ctl.cond.Broadcast()
}

// shutdown disables checkpointing (source exhausted, node failed); a
// pending epoch is aborted so no waiting source deadlocks.
func (ctl *ckptCtl) shutdown(err error) {
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	ctl.disabled = true
	if p := ctl.pending; p != nil {
		ctl.pending = nil
		if ctl.onCommit != nil {
			ctl.onCommit(p.epoch, err)
		}
		ctl.cond.Broadcast()
	}
}

func boolMeta(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Lane section names: plain nodes use "n<id>", replica k of a
// parallel lane "n<id>.r<k>", the key-partition splitter's in-flight
// port queues "n<id>.split", the partial-aggregation combiner
// "n<id>.comb" and its merger's release queues "n<id>.pmerge".
func repName(id NodeID, k int) string        { return fmt.Sprintf("n%d.r%d", id, k) }
func splitName(id NodeID) string             { return fmt.Sprintf("n%d.split", id) }
func combName(id NodeID) string              { return fmt.Sprintf("n%d.comb", id) }
func pmergeName(id NodeID) string            { return fmt.Sprintf("n%d.pmerge", id) }
func srcKey(i int) string                    { return fmt.Sprintf("src%d", i) }
func (r *concRun) nodeName(id NodeID) string { return sectionName(int(id)) }

// validateRestore rejects checkpoints taken under a different engine
// configuration: section names and counts depend on the lane layout,
// which Parallelism and PartitionJoins determine.
func (r *concRun) validateRestore() error {
	if got, want := r.restore.Meta["par"], uint64(r.opts.Parallelism); got != want {
		return fmt.Errorf("exec: checkpoint parallelism %d, run has %d (serial is 0)", got, want)
	}
	if got, want := r.restore.Meta["pj"], boolMeta(r.opts.PartitionJoins); got != want {
		return fmt.Errorf("exec: checkpoint PartitionJoins=%d, run has %d", got, want)
	}
	return nil
}

// restoreOp plays one section back into a lane-local operator; a
// failure is recorded against the run and halts it (continuing with
// partially restored state would silently corrupt results).
func (r *concRun) restoreOp(name string, op interface{}) {
	if r.restore == nil {
		return
	}
	s, ok := op.(ckpt.Snapshotter)
	if !ok {
		return
	}
	if err := r.restore.RestoreSection(name, s); err != nil {
		r.restoreFailed(err)
	}
}

func (r *concRun) restoreFailed(err error) {
	r.g.failMu.Lock()
	r.g.failed = append(r.g.failed, NodeFailure{Node: -1, Op: "checkpoint-restore", Panic: err})
	r.g.failMu.Unlock()
	r.g.halted.Store(true)
}
