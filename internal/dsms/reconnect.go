package dsms

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"net"
	"sync"
	"time"

	"streamdb/internal/tuple"
)

// ErrWriterClosed is returned by Send after Close.
var ErrWriterClosed = errors.New("dsms: writer closed")

// ReconnectConfig tunes the client side of the session protocol.
type ReconnectConfig struct {
	// StreamID names this stream to the server; reconnects under the
	// same ID resume the same session. Required.
	StreamID string
	// Dial opens a connection to the high-level node. Required.
	Dial func() (net.Conn, error)
	// MaxAttempts bounds consecutive failed connection attempts (and
	// reconnect-retry rounds per operation) before Send/Flush/Close
	// give up. 0 = default 8.
	MaxAttempts int
	// BaseBackoff is the first retry delay; it doubles per attempt up
	// to MaxBackoff, with ±50% jitter. Defaults 10ms / 1s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Timeout is the per-operation write/read deadline. 0 = default 5s.
	Timeout time.Duration
	// AckEvery is the sync cadence: after this many tuples the writer
	// flushes, heartbeats, and waits for a cumulative ack — which makes
	// it the bound on the in-memory replay buffer. 0 = default 64.
	AckEvery int
	// Seed drives the backoff jitter (deterministic tests). 0 = 1.
	Seed int64
	// Schema enables wire protocol v3: schema-coded batch frames,
	// negotiated at HELLO time. nil keeps the writer on v2 (per-tuple
	// self-describing frames). Required for SendBatch and WireBatch.
	Schema *tuple.Schema
	// WireVersion caps negotiation: 0 = highest supported (v3 when
	// Schema is set), 2 = force v2 even with a schema.
	WireVersion int
	// WireBatch > 1 coalesces consecutive Sends into schema-coded
	// batch frames of up to this many tuples (requires Schema). A
	// partially filled batch is flushed by FlushInterval, by Flush or
	// Close, or by reaching the AckEvery cadence.
	WireBatch int
	// FlushInterval bounds how long a partially filled auto-batch may
	// wait for more tuples. 0 = default 5ms; negative = size-only
	// flushing (tests, bulk loads).
	FlushInterval time.Duration
}

func (c *ReconnectConfig) fill() ReconnectConfig {
	out := *c
	if out.MaxAttempts <= 0 {
		out.MaxAttempts = 8
	}
	if out.BaseBackoff <= 0 {
		out.BaseBackoff = 10 * time.Millisecond
	}
	if out.MaxBackoff <= 0 {
		out.MaxBackoff = time.Second
	}
	if out.Timeout <= 0 {
		out.Timeout = 5 * time.Second
	}
	if out.AckEvery <= 0 {
		out.AckEvery = 64
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if out.FlushInterval == 0 {
		out.FlushInterval = 5 * time.Millisecond
	}
	if out.WireBatch > 1 && out.Schema == nil {
		out.WireBatch = 0 // batching needs the schema; degrade quietly
	}
	return out
}

// ReconnectStats counts the client's protocol activity.
type ReconnectStats struct {
	Sent        int64 // distinct tuples accepted by Send/SendBatch
	Resent      int64 // replayed tuples after reconnects
	Reconnects  int64 // successful re-dials after a failure
	Syncs       int64 // heartbeat/ack round trips
	Bytes       int64 // frame bytes written (including replays)
	MaxBuffered int   // high-water mark of the replay buffer, in tuples
	// RecoveryNanos accumulates time from a detected connection
	// failure to the completed resume handshake; divide by Reconnects
	// for mean recovery latency.
	RecoveryNanos int64
}

// pendingFrame is one unacknowledged wire frame. count == 0 marks a v2
// per-tuple DATA frame carrying sequence seq; count > 0 marks a v3
// BATCH frame spanning [seq, seq+count-1].
type pendingFrame struct {
	seq     uint64
	count   int
	payload []byte
}

// span reports how many tuples the frame covers.
func (f *pendingFrame) span() int {
	if f.count > 0 {
		return f.count
	}
	return 1
}

// ReconnectWriter is a fault-tolerant replacement for Writer: it ships
// tuples under the session protocol, rides out connection loss with
// dial retry + exponential backoff + jitter, bounds every network
// operation with a deadline, and keeps unacknowledged frames in a
// bounded replay buffer keyed by sequence number so that after the
// resume handshake the server sees each tuple exactly once.
//
// It is safe for concurrent use; sequence numbers are assigned under
// the writer's lock in Send order.
type ReconnectWriter struct {
	cfg ReconnectConfig

	mu            sync.Mutex
	rng           *rand.Rand
	conn          net.Conn
	bw            *bufio.Writer
	br            *bufio.Reader
	nextSeq       uint64
	buffer        []pendingFrame // unacked frames, ascending seq
	sinceSync     int
	closed        bool
	everConnected bool
	failedAt      time.Time // when the current outage began (zero = healthy)
	stats         ReconnectStats

	// v3 negotiation state.
	wire    int  // version of the current connection (0 = none yet)
	forceV2 bool // sticky downgrade after the v3 handshake was rejected
	v3Fails int  // consecutive v3 handshake failures before any success

	// Auto-batching state (WireBatch > 1).
	open       []*tuple.Tuple // tuples not yet framed
	flushTimer *time.Timer
	asyncErr   error // failure from a timer-driven flush
}

// NewReconnectWriter builds a writer; the first connection is dialed
// lazily on the first Send.
func NewReconnectWriter(cfg ReconnectConfig) (*ReconnectWriter, error) {
	if cfg.StreamID == "" {
		return nil, errors.New("dsms: ReconnectConfig.StreamID required")
	}
	if cfg.Dial == nil {
		return nil, errors.New("dsms: ReconnectConfig.Dial required")
	}
	f := cfg.fill()
	return &ReconnectWriter{cfg: f, rng: rand.New(rand.NewSource(f.Seed))}, nil
}

// Stats returns a snapshot of the client counters.
func (w *ReconnectWriter) Stats() ReconnectStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// Buffered reports unacknowledged tuples currently held for replay
// (open auto-batch tuples not yet framed are excluded).
func (w *ReconnectWriter) Buffered() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bufferedTuplesLocked()
}

func (w *ReconnectWriter) bufferedTuplesLocked() int {
	n := 0
	for i := range w.buffer {
		n += w.buffer[i].span()
	}
	return n
}

// NegotiatedWire reports the wire version of the current connection
// (0 before the first handshake, then 2 or 3).
func (w *ReconnectWriter) NegotiatedWire() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.wire
}

// useV3Locked reports whether the writer should frame new tuples for
// wire v3 (and attempt the v3 handshake on the next dial).
func (w *ReconnectWriter) useV3Locked() bool {
	return w.cfg.Schema != nil && w.cfg.WireVersion != wireV2 && !w.forceV2
}

// takeAsyncErrLocked surfaces a failure from a timer-driven flush on
// the next foreground operation.
func (w *ReconnectWriter) takeAsyncErrLocked() error {
	err := w.asyncErr
	w.asyncErr = nil
	return err
}

// Send transmits one tuple, transparently reconnecting and replaying on
// failure. With WireBatch > 1 the tuple is coalesced into an open batch
// instead of hitting the wire immediately. It returns an error only
// when connection attempts are exhausted (the link is down for good) or
// the writer is closed.
func (w *ReconnectWriter) Send(t *tuple.Tuple) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrWriterClosed
	}
	if err := w.takeAsyncErrLocked(); err != nil {
		return err
	}
	if w.cfg.WireBatch > 1 {
		w.open = append(w.open, t)
		w.stats.Sent++
		if len(w.open) >= w.cfg.WireBatch {
			return w.flushOpenLocked()
		}
		w.armTimerLocked()
		return nil
	}
	w.stats.Sent++
	var one [1]*tuple.Tuple
	one[0] = t
	return w.enqueueLocked(one[:])
}

// SendBatch transmits a batch of tuples as one v3 frame (one sequence
// span, one CRC, one length header), falling back to per-tuple frames
// on a v2 connection. Requires ReconnectConfig.Schema.
func (w *ReconnectWriter) SendBatch(tuples []*tuple.Tuple) error {
	if len(tuples) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrWriterClosed
	}
	if w.cfg.Schema == nil {
		return errors.New("dsms: SendBatch requires ReconnectConfig.Schema")
	}
	if err := w.takeAsyncErrLocked(); err != nil {
		return err
	}
	// Preserve Send/SendBatch ordering: frame the open auto-batch first.
	if err := w.flushOpenLocked(); err != nil {
		return err
	}
	w.stats.Sent += int64(len(tuples))
	return w.enqueueLocked(tuples)
}

// enqueueLocked assigns sequence numbers, frames the tuples (one batch
// frame on v3, per-tuple frames otherwise), appends them to the replay
// buffer, writes them out, and runs the ack cadence.
func (w *ReconnectWriter) enqueueLocked(tuples []*tuple.Tuple) error {
	first := w.nextSeq + 1
	start := len(w.buffer)
	if w.useV3Locked() && w.cfg.Schema != nil {
		payload, err := tuple.AppendEncodeBatch(nil, w.cfg.Schema, tuples)
		if err != nil {
			return err
		}
		w.buffer = append(w.buffer, pendingFrame{seq: first, count: len(tuples), payload: payload})
	} else {
		for i, t := range tuples {
			w.buffer = append(w.buffer, pendingFrame{seq: first + uint64(i), payload: tuple.AppendEncode(nil, t)})
		}
	}
	w.nextSeq += uint64(len(tuples))
	if n := w.bufferedTuplesLocked(); n > w.stats.MaxBuffered {
		w.stats.MaxBuffered = n
	}
	if w.conn == nil {
		// connectLocked replays the whole buffer, including these frames.
		if err := w.connectLocked(); err != nil {
			return err
		}
	} else {
		for i := start; i < len(w.buffer); i++ {
			if err := w.writeFrameLocked(&w.buffer[i]); err != nil {
				// The frames stay in the replay buffer; the reconnect
				// replays everything unacknowledged before returning.
				w.failLocked()
				if err := w.connectLocked(); err != nil {
					return err
				}
				break
			}
		}
	}
	w.sinceSync += len(tuples)
	if w.sinceSync >= w.cfg.AckEvery {
		return w.withRetryLocked("sync", w.syncOnceLocked)
	}
	return nil
}

// flushOpenLocked frames the open auto-batch, if any.
func (w *ReconnectWriter) flushOpenLocked() error {
	if len(w.open) == 0 {
		return nil
	}
	tuples := w.open
	err := w.enqueueLocked(tuples)
	// enqueueLocked copied the tuples into encoded payloads; the
	// accumulation slice can be reused.
	w.open = w.open[:0]
	for i := range tuples {
		tuples[i] = nil
	}
	return err
}

// armTimerLocked schedules a deadline flush for a partially filled
// auto-batch so low-rate streams are not delayed indefinitely.
func (w *ReconnectWriter) armTimerLocked() {
	if w.cfg.FlushInterval <= 0 || w.flushTimer != nil {
		return
	}
	w.flushTimer = time.AfterFunc(w.cfg.FlushInterval, func() {
		w.mu.Lock()
		defer w.mu.Unlock()
		w.flushTimer = nil
		if w.closed || len(w.open) == 0 {
			return
		}
		if err := w.flushOpenLocked(); err != nil && w.asyncErr == nil {
			w.asyncErr = err
		}
	})
}

// Flush pushes buffered frames to the wire and waits for the server to
// acknowledge everything sent so far.
func (w *ReconnectWriter) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrWriterClosed
	}
	if err := w.takeAsyncErrLocked(); err != nil {
		return err
	}
	if err := w.flushOpenLocked(); err != nil {
		return err
	}
	if w.conn == nil && len(w.buffer) == 0 && !w.everConnected {
		return nil
	}
	return w.withRetryLocked("flush", w.syncOnceLocked)
}

// Close completes the stream: it delivers any unacknowledged frames,
// performs the EOS handshake (so the server knows the stream is whole),
// and closes the connection.
func (w *ReconnectWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrWriterClosed
	}
	if w.flushTimer != nil {
		w.flushTimer.Stop()
		w.flushTimer = nil
	}
	if err := w.takeAsyncErrLocked(); err != nil {
		w.closed = true
		return err
	}
	if err := w.flushOpenLocked(); err != nil {
		w.closed = true
		return err
	}
	w.closed = true
	if err := w.withRetryLocked("EOS", w.eosLocked); err != nil {
		return err
	}
	w.conn.Close()
	w.conn, w.bw, w.br = nil, nil, nil
	return nil
}

// withRetryLocked runs op over a healthy connection, reconnecting and
// retrying on failure. Each round's reconnect is itself bounded by
// MaxAttempts consecutive dial failures, so a dead link terminates.
func (w *ReconnectWriter) withRetryLocked(what string, op func() error) error {
	var lastErr error
	for round := 0; round < w.cfg.MaxAttempts; round++ {
		if w.conn == nil {
			if err := w.connectLocked(); err != nil {
				return err
			}
		}
		if err := op(); err != nil {
			lastErr = err
			w.failLocked()
			continue
		}
		return nil
	}
	return fmt.Errorf("dsms: %s: %s failed after %d rounds: %w",
		w.cfg.StreamID, what, w.cfg.MaxAttempts, lastErr)
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// writeFrameLocked writes one pending frame (DATA or BATCH) with a
// write deadline, counting the wire bytes.
func (w *ReconnectWriter) writeFrameLocked(f *pendingFrame) error {
	w.conn.SetWriteDeadline(time.Now().Add(w.cfg.Timeout))
	if f.count > 0 {
		if err := writeBatchFrame(w.bw, f.seq, uint64(f.count), f.payload); err != nil {
			return err
		}
		w.stats.Bytes += int64(1 + uvarintLen(f.seq) + uvarintLen(uint64(f.count)) +
			uvarintLen(uint64(len(f.payload))) + len(f.payload) + 4)
		return nil
	}
	if err := writeDataFrame(w.bw, f.seq, f.payload); err != nil {
		return err
	}
	w.stats.Bytes += int64(1 + uvarintLen(f.seq) +
		uvarintLen(uint64(len(f.payload))) + len(f.payload) + 4)
	return nil
}

// syncOnceLocked flushes, heartbeats, and consumes the cumulative ack,
// trimming the replay buffer.
func (w *ReconnectWriter) syncOnceLocked() error {
	w.conn.SetWriteDeadline(time.Now().Add(w.cfg.Timeout))
	if err := w.bw.WriteByte(frameHeartbeat); err != nil {
		return err
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	w.conn.SetReadDeadline(time.Now().Add(w.cfg.Timeout))
	acked, err := readSeqFrame(w.br, frameAck)
	if err != nil {
		return err
	}
	w.trimLocked(acked)
	w.sinceSync = 0
	w.stats.Syncs++
	return nil
}

// eosLocked runs the end-of-stream handshake on the current connection.
func (w *ReconnectWriter) eosLocked() error {
	w.conn.SetWriteDeadline(time.Now().Add(w.cfg.Timeout))
	if err := writeSeqFrame(w.bw, frameEOS, w.nextSeq); err != nil {
		return err
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	w.conn.SetReadDeadline(time.Now().Add(w.cfg.Timeout))
	final, err := readSeqFrame(w.br, frameEOSAck)
	if err != nil {
		return err
	}
	if final != w.nextSeq {
		return fmt.Errorf("dsms: EOS acked %d, want %d", final, w.nextSeq)
	}
	w.trimLocked(final)
	return nil
}

// trimLocked drops replay-buffer frames whose whole sequence span is
// acknowledged. Acks land on frame boundaries (the server applies a
// batch atomically), so a frame is either fully acked or fully kept.
func (w *ReconnectWriter) trimLocked(seq uint64) {
	i := 0
	for i < len(w.buffer) && w.buffer[i].seq+uint64(w.buffer[i].span())-1 <= seq {
		i++
	}
	if i > 0 {
		w.buffer = append(w.buffer[:0], w.buffer[i:]...)
	}
}

// failLocked tears down the current connection and starts the outage
// clock for recovery-latency accounting.
func (w *ReconnectWriter) failLocked() {
	if w.conn != nil {
		w.conn.Close()
		w.conn = nil
	}
	w.bw, w.br = nil, nil
	if w.failedAt.IsZero() {
		w.failedAt = time.Now()
	}
}

// connectLocked dials with exponential backoff + jitter, performs the
// resume handshake (v3 when configured, falling back to v2 when the
// server rejects it), trims the replay buffer to the server's last
// applied sequence, and replays the rest.
func (w *ReconnectWriter) connectLocked() error {
	resuming := w.everConnected
	var lastErr error
	for attempt := 0; attempt < w.cfg.MaxAttempts; attempt++ {
		if attempt > 0 || !w.failedAt.IsZero() {
			w.sleepBackoff(attempt)
		}
		conn, err := w.cfg.Dial()
		if err != nil {
			lastErr = err
			continue
		}
		bw := bufio.NewWriter(conn)
		br := bufio.NewReader(conn)
		var last uint64
		wire := wireV2
		if w.useV3Locked() {
			granted, lastSeq, err := handshake3(conn, bw, br, w.cfg.StreamID, w.cfg.Timeout)
			if err != nil {
				conn.Close()
				lastErr = err
				// A server that predates v3 drops the connection on the
				// unknown HELLO3 frame, which reads back as EOF — but so
				// does a transient network fault. Downgrade only before
				// v3 ever succeeded, and only after two consecutive
				// rejections, so flaky links don't silently lose
				// batching while true v2-only peers are detected within
				// two dials.
				if w.wire == 0 {
					w.v3Fails++
					if w.v3Fails >= 2 {
						w.forceV2 = true
						w.convertBufferLocked()
					}
				}
				continue
			}
			w.v3Fails = 0
			if granted >= wireV3 {
				wire = wireV3
			} else {
				// The server answered HELLO3 but capped the version.
				w.forceV2 = true
				w.convertBufferLocked()
			}
			last = lastSeq
		} else {
			last, err = handshake(conn, bw, br, w.cfg.StreamID, w.cfg.Timeout)
			if err != nil {
				conn.Close()
				lastErr = err
				continue
			}
		}
		w.conn, w.bw, w.br = conn, bw, br
		w.wire = wire
		w.trimLocked(last)
		// Replay the unacknowledged tail. A failure here burns the
		// same attempt budget.
		if err := w.replayLocked(resuming); err != nil {
			conn.Close()
			w.conn, w.bw, w.br = nil, nil, nil
			lastErr = err
			continue
		}
		if !w.failedAt.IsZero() {
			w.stats.RecoveryNanos += time.Since(w.failedAt).Nanoseconds()
			w.failedAt = time.Time{}
			w.stats.Reconnects++
		}
		w.everConnected = true
		return nil
	}
	return fmt.Errorf("dsms: %s: connect failed after %d attempts: %w",
		w.cfg.StreamID, w.cfg.MaxAttempts, lastErr)
}

// convertBufferLocked re-frames buffered v3 batch frames as per-tuple
// v2 DATA frames, preserving sequence numbers, so a downgrade does not
// strand unacknowledged tuples.
func (w *ReconnectWriter) convertBufferLocked() {
	if w.cfg.Schema == nil {
		return
	}
	anyBatch := false
	for i := range w.buffer {
		if w.buffer[i].count > 0 {
			anyBatch = true
			break
		}
	}
	if !anyBatch {
		return
	}
	out := make([]pendingFrame, 0, len(w.buffer))
	var a tuple.Arena
	for _, f := range w.buffer {
		if f.count == 0 {
			out = append(out, f)
			continue
		}
		ts, _, err := tuple.DecodeBatchInto(f.payload, w.cfg.Schema, &a)
		if err != nil {
			// Re-decoding our own encoding cannot fail; keep the frame
			// rather than drop tuples if it somehow does.
			out = append(out, f)
			continue
		}
		for i, t := range ts {
			out = append(out, pendingFrame{seq: f.seq + uint64(i), payload: tuple.AppendEncode(nil, t)})
		}
		a.Reset()
	}
	w.buffer = out
}

// replayLocked rewrites every buffered frame on the fresh connection.
func (w *ReconnectWriter) replayLocked(countResent bool) error {
	for i := range w.buffer {
		if err := w.writeFrameLocked(&w.buffer[i]); err != nil {
			return err
		}
		if countResent {
			w.stats.Resent += int64(w.buffer[i].span())
		}
	}
	return nil
}

// sleepBackoff waits base*2^attempt capped at max, jittered ±50%.
func (w *ReconnectWriter) sleepBackoff(attempt int) {
	d := w.cfg.BaseBackoff << uint(attempt)
	if d > w.cfg.MaxBackoff || d <= 0 {
		d = w.cfg.MaxBackoff
	}
	jitter := 0.5 + w.rng.Float64() // 0.5x .. 1.5x
	time.Sleep(time.Duration(float64(d) * jitter))
}

// handshake3 sends HELLO3 requesting wire v3 and returns the granted
// version and the server's resume point. A pre-v3 server drops the
// connection instead of answering.
func handshake3(conn net.Conn, bw *bufio.Writer, br *bufio.Reader, id string, timeout time.Duration) (granted int, last uint64, err error) {
	conn.SetWriteDeadline(time.Now().Add(timeout))
	if err := bw.WriteByte(frameHello3); err != nil {
		return 0, 0, err
	}
	if err := writeUvarint(bw, wireV3); err != nil {
		return 0, 0, err
	}
	if err := writeUvarint(bw, uint64(len(id))); err != nil {
		return 0, 0, err
	}
	if _, err := bw.WriteString(id); err != nil {
		return 0, 0, err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], hello3CRC(wireV3, []byte(id)))
	if _, err := bw.Write(crc[:]); err != nil {
		return 0, 0, err
	}
	if err := bw.Flush(); err != nil {
		return 0, 0, err
	}
	conn.SetReadDeadline(time.Now().Add(timeout))
	typ, err := br.ReadByte()
	if err != nil {
		return 0, 0, err
	}
	if typ != frameHello3Ack {
		return 0, 0, fmt.Errorf("dsms: expected frame %q, got %q", frameHello3Ack, typ)
	}
	g, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, 0, err
	}
	last, err = binary.ReadUvarint(br)
	if err != nil {
		return 0, 0, err
	}
	return int(g), last, nil
}

// handshake sends HELLO and returns the server's resume point.
func handshake(conn net.Conn, bw *bufio.Writer, br *bufio.Reader, id string, timeout time.Duration) (uint64, error) {
	conn.SetWriteDeadline(time.Now().Add(timeout))
	if err := bw.WriteByte(frameHello); err != nil {
		return 0, err
	}
	if err := writeUvarint(bw, uint64(len(id))); err != nil {
		return 0, err
	}
	if _, err := bw.WriteString(id); err != nil {
		return 0, err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE([]byte(id)))
	if _, err := bw.Write(crc[:]); err != nil {
		return 0, err
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	conn.SetReadDeadline(time.Now().Add(timeout))
	return readSeqFrame(br, frameHelloAck)
}
