// Multi-query stream processing (slide 45): many standing queries over
// the same streams share work. Part 1 runs 100 monitoring queries
// through ONE shared fan-out node on the engine's columnar lane — each
// batch is scanned once per distinct predicate and every query receives
// a selection-vector view of the same retained batch, zero data
// movement per subscriber. Part 2 shares one physical sliding-window
// join among queries with different window sizes [HFAE03], routing the
// join's output batches by a compiled timestamp-distance kernel.
package main

import (
	"fmt"
	"log"

	"streamdb/internal/exec"
	"streamdb/internal/expr"
	"streamdb/internal/optimizer/share"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

func main() {
	sch := stream.TrafficSchema("Traffic")
	length := expr.MustColumn(sch, "length")
	proto := expr.MustColumn(sch, "protocol")

	// Part 1: 100 monitoring queries, but only 5 distinct predicates —
	// the shared node compiles each into a selection-vector kernel and
	// evaluates it once per column batch.
	ss := share.NewSharedSelect("monitors", sch)
	matched := make([]int, 100)
	for q := 0; q < 100; q++ {
		var pred expr.Expr
		switch q % 5 {
		case 0:
			pred, _ = expr.NewBin(expr.OpGt, length, expr.Constant(tuple.Int(1200)))
		case 1:
			pred, _ = expr.NewBin(expr.OpLt, length, expr.Constant(tuple.Int(100)))
		case 2:
			pred, _ = expr.NewBin(expr.OpEq, proto, expr.Constant(tuple.Int(17)))
		case 3:
			pred, _ = expr.NewBin(expr.OpEq, proto, expr.Constant(tuple.Int(6)))
		default:
			pred, _ = expr.NewBin(expr.OpGt, length, expr.Constant(tuple.Int(600)))
		}
		qq := q
		_, err := ss.RegisterSinks(pred, share.Sinks{
			Row: func(stream.Element) { matched[qq]++ },
			// Columnar fast lane: a borrowed view over the shared batch,
			// matches counted straight off the selection vector.
			Col: func(b *stream.Batch) { matched[qq] += b.N() },
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	g := exec.NewGraph(func(stream.Element) {})
	si := g.AddSource(stream.Limit(stream.NewTrafficStream(5, 50000, 500), 100000))
	fid, err := g.AddSharedFanOut(ss)
	if err != nil {
		log.Fatal(err)
	}
	if err := g.ConnectSource(si, fid, 0); err != nil {
		log.Fatal(err)
	}
	g.RunWith(-1, exec.RunOptions{Columnar: true, BatchSize: 256})
	st := g.Stats(fid)
	fmt.Printf("selection sharing: 100 queries, %d distinct predicates, %d kernel nodes\n",
		ss.DistinctPredicates(), ss.KernelNodes())
	fmt.Printf("  row evaluations: %d shared vs %d unshared (%.0fx saving)\n",
		st.SharedEvals, st.NaiveEvals, float64(st.NaiveEvals)/float64(st.SharedEvals))
	fmt.Printf("  example outputs: q0 matched %d tuples, q2 matched %d\n\n", matched[0], matched[2])

	// Part 2: five correlation queries joining the same two streams on
	// destIP, with windows from 1s to 16s, served by ONE join sized for
	// the largest window. Input arrives as column batches; the join's
	// output batches are routed to subscribers by a compiled
	// |ts_l - ts_r| <= w kernel per distinct window.
	a := tuple.NewSchema("A",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "destIP", Kind: tuple.KindIP},
	)
	b := tuple.NewSchema("B",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "destIP", Kind: tuple.KindIP},
	)
	results := make([]int, 5)
	var queries []share.JoinQuery
	for q := 0; q < 5; q++ {
		win := int64(1<<uint(q)) * stream.Second
		qq := q
		queries = append(queries, share.JoinQuery{
			Window: win,
			Sink:   func(stream.Element) { results[qq]++ },
			Col:    func(ob *stream.Batch) { results[qq] += ob.N() },
		})
	}
	sj, err := share.NewSharedWindowJoin("sj", a, b, []int{1}, []int{1}, queries)
	if err != nil {
		log.Fatal(err)
	}
	genA := stream.Limit(stream.NewTrafficStream(6, 2000, 50), 20000)
	genB := stream.Limit(stream.NewTrafficStream(7, 200, 50), 2000)
	poolA := stream.NewColPool(a, 256)
	poolB := stream.NewColPool(b, 256)
	curA, curB := poolA.Get(), poolB.Get()
	flush := func(port int) {
		if port == 0 && curA.Rows() > 0 {
			sj.ProcessBatch(0, curA, nil, nil)
			curA = poolA.Get()
		}
		if port == 1 && curB.Rows() > 0 {
			sj.ProcessBatch(1, curB, nil, nil)
			curB = poolB.Get()
		}
	}
	toAB := func(e stream.Element) *tuple.Tuple {
		t := e.Tuple
		return tuple.New(t.Ts, t.Vals[0], t.Vals[2])
	}
	for {
		ea, okA := genA.Next()
		if okA && !ea.IsPunct() {
			curA.AppendRow(toAB(ea))
			if curA.Rows() >= 256 {
				flush(0)
			}
		}
		eb, okB := genB.Next()
		if okB && !eb.IsPunct() {
			curB.AppendRow(toAB(eb))
			if curB.Rows() >= 256 {
				flush(1)
			}
		}
		if !okA && !okB {
			break
		}
	}
	flush(0)
	flush(1)
	curA.Release()
	curB.Release()
	probes, routed := sj.Stats()
	fmt.Println("shared window join: 5 queries, windows 1s..16s, one state store")
	for q, r := range results {
		fmt.Printf("  query %d (window %2ds): %7d results\n", q, 1<<uint(q), r)
	}
	fmt.Printf("  probes by shared join: %d (routed %d results); per-query deployment would probe ~%.0f\n",
		probes, routed, sj.UnsharedProbeEstimate())
}
