// Pane-based sliding-window aggregation: each tuple updates exactly one
// slide-aligned pane's group table, and a window's result is produced at
// close time by folding its constituent panes' fixed-arity partials via
// Partializable.MergePartial. This turns the per-tuple cost of a sliding
// window with overlap factor Range/Slide from O(Range/Slide) state
// updates into O(1) — the low-level/high-level aggregation split of
// slides 34-37 applied *inside* one operator, with panes playing the
// LFTA role and the window fold the HFTA role.
//
// The same partial-record plumbing doubles as the engine's intra-operator
// parallelism hook: a pane-path GroupBy can be cloned into N partial
// replicas (ClonePartial) whose outputs a PaneCombiner merges back into
// the exact single-copy result stream (see exec.RunWith).

package agg

import (
	"fmt"
	"math"
	"sort"

	"streamdb/internal/expr"
	"streamdb/internal/ops"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
	"streamdb/internal/window"
)

// allPartializable reports whether every aggregate ships fixed-arity
// partials — the precondition for sharing pane sub-aggregates. Holistic
// states (median, count distinct, ...) do not.
func allPartializable(aggs []Spec) bool {
	for _, a := range aggs {
		if _, ok := a.Fn.New().(Partializable); !ok {
			return false
		}
	}
	return true
}

// paneTable is one pane's group table: partial accumulators for the
// slide-aligned interval [start, start+Slide).
type paneTable struct {
	groupTable
	start int64
}

// resettable is implemented by accumulator states that can restore the
// fresh (Fn.New) state in place, enabling pane recycling. Unexported on
// purpose: only in-package states participate.
type resettable interface{ reset() }

// resetStates resets every state in place and reports whether all of
// them support it; groups whose states cannot reset are simply dropped
// to the garbage collector.
func resetStates(states []State) bool {
	for _, st := range states {
		r, ok := st.(resettable)
		if !ok {
			return false
		}
		r.reset()
	}
	return true
}

// recycleGroups empties tbl for reuse: resettable groups go onto the
// freelist, hash chains keep their map cells and capacity so the next
// fill allocates nothing.
func recycleGroups(tbl *groupTable, free *[]*group) {
	for h, chain := range tbl.groups {
		for i, grp := range chain {
			if len(*free) < 1<<14 && resetStates(grp.states) {
				*free = append(*free, grp)
			}
			chain[i] = nil
		}
		tbl.groups[h] = chain[:0]
	}
	for i := range tbl.cache {
		// Recycled groups are reused by other tables; a stale dense-cache
		// pointer here would resurrect them (see colfold.go).
		tbl.cache[i] = nil
	}
	tbl.n = 0
}

// UsesPanes reports whether the operator runs the pane path.
func (g *GroupBy) UsesPanes() bool { return g.paneAsn != nil }

// DisablePanes forces the legacy per-window path (ablation and
// equivalence testing). Must be called before the first Push.
func (g *GroupBy) DisablePanes() *GroupBy {
	if g.paneAsn != nil {
		g.paneAsn = nil
		g.panes, g.paneWins, g.lastPane = nil, nil, nil
		g.assigner = window.NewAssigner(g.spec)
	}
	return g
}

// foldPane routes a tuple into its single pane. A pane is created on
// first touch, at which point it registers every still-open window
// instance it contributes to — since a pane holds at least one tuple,
// the registry is exactly the set of open window instances the legacy
// path would have materialized. Contributions to windows that already
// closed (late tuples) go to legacy-style side tables instead: folding
// them through panes would wrongly resurrect the original (already
// emitted) pane data alongside the late data.
func (g *GroupBy) foldPane(t *tuple.Tuple) {
	p := g.locatePane(t.Ts)
	if p == nil {
		// Every window covering this tuple has closed already.
		g.foldLateClosed(t)
		return
	}
	g.fold(&p.groupTable, t)
	if t.Ts < g.watermark {
		g.foldLateClosed(t)
	}
}

// locatePane resolves a timestamp to its open pane, creating (or
// recycling) the pane and registering its window instances on first
// touch; nil means every covering window has retired and the tuple must
// take the late-side-table path. Shared by the row fold (foldPane) and
// the columnar fold (colfold.go).
func (g *GroupBy) locatePane(ts int64) *paneTable {
	p := g.lastPane
	if p == nil || ts < p.start || ts >= p.end {
		id := g.paneAsn.Pane(ts)
		if g.paneAsn.Retired(id.Start, g.watermark) {
			return nil
		}
		p = g.panes[id.Start]
		if p == nil {
			if n := len(g.paneFree); n > 0 {
				// Recycled pane: empty group table with warm chains.
				p = g.paneFree[n-1]
				g.paneFree = g.paneFree[:n-1]
				p.start, p.end = id.Start, id.End
			} else {
				p = &paneTable{
					groupTable: groupTable{end: id.End, groups: make(map[uint64][]*group)},
					start:      id.Start,
				}
			}
			g.panes[id.Start] = p
			g.paneAsn.Windows(id.Start, func(w window.ID) bool {
				if w.End <= g.watermark {
					return true // closed: late side tables handle it
				}
				if _, ok := g.paneWins[w.Start]; !ok {
					g.paneWins[w.Start] = w.End
					if w.End < g.paneNext {
						g.paneNext = w.End
					}
				}
				return true
			})
		}
		g.lastPane = p
	}
	return p
}

// foldLateClosed folds a late tuple into re-opened legacy tables for
// the covering windows that have already closed; they re-emit at the
// next advance with only the late contributions — exactly the legacy
// path's behaviour. Covering windows still open receive the tuple
// through its pane.
func (g *GroupBy) foldLateClosed(t *tuple.Tuple) {
	g.paneAsn.Windows(g.paneAsn.Pane(t.Ts).Start, func(w window.ID) bool {
		if w.End > g.watermark {
			return true // open: covered by the pane fold
		}
		tbl, ok := g.windows[w.Start]
		if !ok {
			tbl = &groupTable{end: w.End, groups: make(map[uint64][]*group)}
			g.windows[w.Start] = tbl
		}
		g.fold(tbl, t)
		return true
	})
}

// advancePanes emits every registered window whose end has passed, then
// retires panes no open window will reference again. Open windows never
// lose panes: a pane of window [ws, ws+Range) retires only once the
// watermark reaches paneStart+Range >= ws+Range, which closes the
// window first.
func (g *GroupBy) advancePanes(now int64, emit ops.Emit) {
	// Fast exit on the per-tuple path: nothing can be due before the
	// earliest open window end, and late-reopened side tables force the
	// full scan.
	if now < g.paneNext && len(g.windows) == 0 {
		return
	}
	next := int64(math.MaxInt64)
	due := g.dueBuf[:0]
	for ws, we := range g.paneWins {
		if we <= now {
			due = append(due, ws)
		} else if we < next {
			next = we
		}
	}
	g.paneNext = next
	for ws, tbl := range g.windows {
		if tbl.end <= now {
			due = append(due, ws)
		}
	}
	g.dueBuf = due
	if len(due) == 0 {
		return
	}
	// Deterministic output order across runs. A window start appears in
	// at most one of the two maps: paneWins holds open windows,
	// g.windows late-reopened (already closed) ones.
	sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
	for _, ws := range due {
		if tbl, ok := g.windows[ws]; ok {
			if g.partial {
				g.emitPartialTable(ws, tbl, emit)
			} else {
				g.emitTable(tbl, emit)
			}
			delete(g.windows, ws)
			continue
		}
		g.emitPaneWindow(ws, g.paneWins[ws], emit)
		delete(g.paneWins, ws)
	}
	for ps, p := range g.panes {
		if g.paneAsn.Retired(ps, now) {
			if g.lastPane == p {
				g.lastPane = nil
			}
			delete(g.panes, ps)
			recycleGroups(&p.groupTable, &g.groupFree)
			if len(g.paneFree) < 256 {
				g.paneFree = append(g.paneFree, p)
			}
		}
	}
}

// emitPaneWindow finalizes one window by folding its panes' partials.
func (g *GroupBy) emitPaneWindow(ws, we int64, emit ops.Emit) {
	tbl := g.combineWindow(ws, we, nil)
	if g.partial {
		g.emitPartialTable(ws, tbl, emit)
		return
	}
	g.emitTable(tbl, emit)
}

// combineWindow folds the partials of every pane constituting window
// [ws, we) into per-group result states, visiting panes oldest first
// (the deterministic fold order). bounds, when non-nil, restricts the
// fold to groups matching a punctuation's patterns.
func (g *GroupBy) combineWindow(ws, we int64, bounds []keyBound) *groupTable {
	tbl := g.combTbl
	if tbl == nil {
		tbl = &groupTable{groups: make(map[uint64][]*group)}
		g.combTbl = tbl
	}
	// Reclaim the previous close's out-groups; their keys alias pane
	// groups and are only ever replaced, never written through.
	recycleGroups(tbl, &g.combFree)
	tbl.end = we
	g.paneAsn.Panes(window.ID{Start: ws, End: we}, func(ps int64) bool {
		p := g.panes[ps]
		if p == nil {
			return true
		}
		for h, chain := range p.groups {
			// The pane map's key is fold's chain hash: no recompute.
			for _, pg := range chain {
				if bounds != nil && !matchBounds(pg.keys, bounds) {
					continue
				}
				var out *group
				for _, cand := range tbl.groups[h] {
					if keysEqual(cand.keys, pg.keys) {
						out = cand
						break
					}
				}
				if out == nil {
					if n := len(g.combFree); n > 0 {
						out = g.combFree[n-1]
						g.combFree = g.combFree[:n-1]
					} else {
						states := make([]State, len(g.aggs))
						for i, a := range g.aggs {
							states[i] = a.Fn.New()
						}
						out = &group{states: states}
					}
					// Keys are immutable values: share the pane group's
					// slice.
					out.keys = pg.keys
					tbl.groups[h] = append(tbl.groups[h], out)
					tbl.n++
				}
				for i := range g.aggs {
					// In-process panes merge states directly (no
					// serialization); the MergePartial wire form is for
					// the replica path. States of the same Fn merge
					// without error, but fall back through the partial
					// encoding if one ever refuses.
					if out.states[i].Merge(pg.states[i]) != nil {
						_ = out.states[i].(Partializable).MergePartial(
							pg.states[i].(Partializable).PartialVals())
					}
				}
			}
		}
		return true
	})
	return tbl
}

// closeGroupsPanes is the pane path of closeGroups: for every open
// window (ascending start), fold the punctuation-matched groups from its
// panes and emit them with end = the punctuation's timestamp; then
// release the matched groups' pane state.
func (g *GroupBy) closeGroupsPanes(end int64, bounds []keyBound, emit ops.Emit) {
	var starts []int64
	for ws := range g.paneWins {
		starts = append(starts, ws)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for _, ws := range starts {
		tbl := g.combineWindow(ws, g.paneWins[ws], bounds)
		if tbl.n == 0 {
			continue
		}
		tbl.end = end
		if g.partial {
			g.emitPartialTable(ws, tbl, emit)
		} else {
			g.emitTable(tbl, emit)
		}
	}
	for _, p := range g.panes {
		p.removeMatching(bounds)
	}
	// Late-reopened windows keep legacy side tables; close matching
	// groups there too.
	var lateStarts []int64
	for ws := range g.windows {
		lateStarts = append(lateStarts, ws)
	}
	sort.Slice(lateStarts, func(i, j int) bool { return lateStarts[i] < lateStarts[j] })
	for _, ws := range lateStarts {
		tbl := g.windows[ws]
		done := tbl.removeMatching(bounds)
		if len(done) == 0 {
			continue
		}
		sortGroups(done)
		late := &groupTable{end: end, groups: map[uint64][]*group{0: done}, n: len(done)}
		if g.partial {
			g.emitPartialTable(ws, late, emit)
		} else {
			for _, grp := range done {
				g.emitGroup(end, grp, emit)
			}
		}
	}
}

// flushPanes emits every registered window (and late-reopened side
// table) and clears pane state.
func (g *GroupBy) flushPanes(emit ops.Emit) {
	var starts []int64
	for ws := range g.paneWins {
		starts = append(starts, ws)
	}
	for ws := range g.windows {
		starts = append(starts, ws)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for _, ws := range starts {
		if tbl, ok := g.windows[ws]; ok {
			if g.partial {
				g.emitPartialTable(ws, tbl, emit)
			} else {
				g.emitTable(tbl, emit)
			}
			delete(g.windows, ws)
			continue
		}
		g.emitPaneWindow(ws, g.paneWins[ws], emit)
		delete(g.paneWins, ws)
	}
	g.panes = make(map[int64]*paneTable)
	g.lastPane = nil
	g.paneNext = math.MaxInt64
}

// ---- Partial-replica mode -------------------------------------------

// emitProgress forwards watermark progress to the downstream combiner,
// throttled to slide-boundary crossings so the per-tuple path stays
// punctuation-free. Every window end is a slide multiple (Range is a
// multiple of Slide), so the throttled mark still releases exactly the
// windows the replica has emitted.
func (g *GroupBy) emitProgress(emit ops.Emit) {
	if !g.partial {
		return
	}
	if m := (g.watermark / g.spec.Slide) * g.spec.Slide; m > g.partialMark {
		g.partialMark = m
		emit(stream.Punct(&stream.Punctuation{Ts: m}))
	}
}

// partialSchema is the wire schema of partial-replica output:
// [wend, wstart, keys..., flattened partial columns]. wstart
// disambiguates punctuation-closed group records from different windows
// sharing the same close timestamp.
func (g *GroupBy) partialSchema() *tuple.Schema {
	fields := make([]tuple.Field, 0, 2+len(g.groupBy)+len(g.aggs)*2)
	fields = append(fields,
		tuple.Field{Name: "wend", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "wstart", Kind: tuple.KindTime})
	for i, ge := range g.groupBy {
		fields = append(fields, tuple.Field{Name: g.groupName[i], Kind: ge.Kind()})
	}
	for _, a := range g.aggs {
		p := a.Fn.New().(Partializable)
		for j, k := range p.PartialKinds() {
			fields = append(fields, tuple.Field{Name: fmt.Sprintf("%s#%d", a.Name, j), Kind: k})
		}
	}
	return tuple.NewSchema(g.name+".partial", fields...)
}

// emitPartialTable serializes a combined window table as partial
// records for the downstream PaneCombiner.
func (g *GroupBy) emitPartialTable(ws int64, tbl *groupTable, emit ops.Emit) {
	grps := make([]*group, 0, tbl.n)
	for _, chain := range tbl.groups {
		grps = append(grps, chain...)
	}
	sortGroups(grps)
	for _, grp := range grps {
		vals := make([]tuple.Value, 0, 2+len(grp.keys)+len(grp.states)*2)
		vals = append(vals, tuple.Time(tbl.end), tuple.Time(ws))
		vals = append(vals, grp.keys...)
		for _, st := range grp.states {
			vals = append(vals, st.(Partializable).PartialVals()...)
		}
		g.emitted++
		emit(stream.Tup(tuple.New(tbl.end, vals...)))
	}
}

// CanPartial implements ops.PartialAggregable: the engine may run this
// operator as N partial-emitting replicas plus a final combiner only on
// the pane path, where every aggregate ships fixed-arity partials.
func (g *GroupBy) CanPartial() bool { return g.paneAsn != nil && !g.partial }

// ClonePartial implements ops.PartialAggregable: a fresh replica that
// emits partial records and progress punctuations instead of final
// rows. HAVING stays with the combiner, which sees merged totals.
func (g *GroupBy) ClonePartial() ops.Operator {
	return &GroupBy{
		name: g.name, groupBy: g.groupBy, groupName: g.groupName,
		keyCols: g.keyCols, aggs: g.aggs, spec: g.spec,
		out:      g.partialSchema(),
		windows:  make(map[int64]*groupTable),
		scratch:  make([]tuple.Value, 0, len(g.groupBy)),
		paneAsn:  g.paneAsn,
		panes:    make(map[int64]*paneTable),
		paneWins: make(map[int64]int64),
		paneNext: math.MaxInt64,
		partial:  true,
	}
}

// Combiner implements ops.PartialAggregable: the node that merges the
// replicas' partial records back into the single-copy result stream.
func (g *GroupBy) Combiner() ops.Operator {
	return &PaneCombiner{
		name: g.name + ".combine", nkeys: len(g.groupBy),
		aggs: g.aggs, having: g.having, out: g.out,
		groups: make(map[uint64][]*cgroup),
	}
}

// PaneCombiner merges partial records produced by ClonePartial replicas:
// it re-groups on (window end, window start, keys), folds the
// fixed-arity partials, and finalizes windows as the merged watermark
// passes their ends — the high-level half of the two-level aggregation
// split (slide 37), here applied to intra-operator parallelism.
type PaneCombiner struct {
	name      string
	nkeys     int
	aggs      []Spec
	having    expr.Expr
	out       *tuple.Schema
	groups    map[uint64][]*cgroup
	n         int
	watermark int64
	emitted   int64
	mergeErrs int64
}

type cgroup struct {
	end, start int64
	keys       []tuple.Value
	states     []State
}

// Name implements ops.Operator.
func (c *PaneCombiner) Name() string { return c.name }

// OutSchema implements ops.Operator.
func (c *PaneCombiner) OutSchema() *tuple.Schema { return c.out }

// NumInputs implements ops.Operator.
func (c *PaneCombiner) NumInputs() int { return 1 }

// Push implements ops.Operator.
func (c *PaneCombiner) Push(_ int, e stream.Element, emit ops.Emit) {
	if e.IsPunct() {
		c.finalize(e.Punct.Ts, emit)
		return
	}
	t := e.Tuple
	end, _ := t.Vals[0].AsTime()
	start, _ := t.Vals[1].AsTime()
	keys := t.Vals[2 : 2+c.nkeys]
	h := (uint64(end)*1099511628211 ^ uint64(start)) * 1099511628211
	for _, k := range keys {
		h ^= k.Hash()
		h *= 1099511628211
	}
	var grp *cgroup
	for _, cand := range c.groups[h] {
		if cand.end == end && cand.start == start && keysEqual(cand.keys, keys) {
			grp = cand
			break
		}
	}
	if grp == nil {
		grp = &cgroup{
			end: end, start: start,
			keys:   append([]tuple.Value(nil), keys...),
			states: make([]State, len(c.aggs)),
		}
		for i, a := range c.aggs {
			grp.states[i] = a.Fn.New()
		}
		c.groups[h] = append(c.groups[h], grp)
		c.n++
	}
	off := 2 + c.nkeys
	for i := range c.aggs {
		st := grp.states[i].(Partializable)
		arity := len(st.PartialKinds())
		if err := st.MergePartial(t.Vals[off : off+arity]); err != nil {
			c.mergeErrs++
		}
		off += arity
	}
}

// finalize emits every group whose window has closed by now.
func (c *PaneCombiner) finalize(now int64, emit ops.Emit) {
	if now <= c.watermark {
		return
	}
	c.watermark = now
	c.emitUpTo(now, emit)
}

// emitUpTo releases groups with end <= now in (end, start, keys) order —
// the cumulative emission order of the single-copy operator.
func (c *PaneCombiner) emitUpTo(now int64, emit ops.Emit) {
	var due []*cgroup
	for h, chain := range c.groups {
		keep := chain[:0]
		for _, grp := range chain {
			if grp.end <= now {
				due = append(due, grp)
				c.n--
			} else {
				keep = append(keep, grp)
			}
		}
		if len(keep) == 0 {
			delete(c.groups, h)
		} else {
			c.groups[h] = keep
		}
	}
	sort.Slice(due, func(i, j int) bool {
		a, b := due[i], due[j]
		if a.end != b.end {
			return a.end < b.end
		}
		if a.start != b.start {
			return a.start < b.start
		}
		for k := range a.keys {
			if cv := a.keys[k].Compare(b.keys[k]); cv != 0 {
				return cv < 0
			}
		}
		return false
	})
	for _, grp := range due {
		vals := make([]tuple.Value, 0, 1+len(grp.keys)+len(grp.states))
		vals = append(vals, tuple.Time(grp.end))
		vals = append(vals, grp.keys...)
		for _, st := range grp.states {
			vals = append(vals, st.Result())
		}
		out := tuple.New(grp.end, vals...)
		if c.having != nil && !expr.EvalBool(c.having, out) {
			continue
		}
		c.emitted++
		emit(stream.Tup(out))
	}
}

// Flush implements ops.Operator.
func (c *PaneCombiner) Flush(emit ops.Emit) {
	c.emitUpTo(math.MaxInt64, emit)
}

// MemSize implements ops.Operator.
func (c *PaneCombiner) MemSize() int {
	n := 96
	for _, chain := range c.groups {
		for _, grp := range chain {
			n += 48
			for _, k := range grp.keys {
				n += k.MemSize()
			}
			for _, st := range grp.states {
				n += st.MemSize()
			}
		}
	}
	return n
}

// Emitted reports final rows produced.
func (c *PaneCombiner) Emitted() int64 { return c.emitted }

// MergeErrors reports partial records that failed to merge (malformed
// input, e.g. a stream not produced by matching replicas).
func (c *PaneCombiner) MergeErrors() int64 { return c.mergeErrs }
