package ckpt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
)

// Snapshotter is implemented by every operator that participates in
// checkpoints. Snapshot writes the operator's complete logical state;
// Restore reads it back into a freshly constructed operator of the
// same shape. A Snapshot error aborts the checkpoint epoch (some state
// is legitimately non-serializable, e.g. approximate synopses).
type Snapshotter interface {
	Snapshot(enc *Encoder) error
	Restore(dec *Decoder) error
}

// Section is one named piece of a checkpoint: typically one operator's
// state, keyed by its node identity in the graph.
type Section struct {
	Name string
	Data []byte
}

// Checkpoint is one consistent cut of a running query: the epoch that
// produced it, every operator's state section, per-source replay
// positions, and the count of sink outputs already delivered (so
// recovery can suppress duplicates for exactly-once delivery).
type Checkpoint struct {
	// Epoch is the barrier epoch, strictly increasing per store.
	Epoch int64
	// Meta carries replay positions: source element counts keyed by
	// "src<i>" for pull sources, or session stream IDs mapped to their
	// last applied sequence number for the distributed tier.
	Meta map[string]uint64
	// OutSeq counts sink outputs delivered before the cut.
	OutSeq int64
	// Sections holds the per-operator state.
	Sections []Section
}

// Section returns the named section's payload, or nil.
func (c *Checkpoint) Section(name string) []byte {
	for i := range c.Sections {
		if c.Sections[i].Name == name {
			return c.Sections[i].Data
		}
	}
	return nil
}

// Add appends a section.
func (c *Checkpoint) Add(name string, data []byte) {
	c.Sections = append(c.Sections, Section{Name: name, Data: data})
}

// RestoreSection decodes the named section into the Snapshotter,
// failing if the section is absent or leaves undecoded bytes (a
// shape mismatch between the snapshot and the rebuilt operator).
func (c *Checkpoint) RestoreSection(name string, s Snapshotter) error {
	data := c.Section(name)
	if data == nil {
		return fmt.Errorf("ckpt: checkpoint has no section %q", name)
	}
	dec := NewDecoder(data)
	if err := s.Restore(dec); err != nil {
		return fmt.Errorf("ckpt: restore %q: %w", name, err)
	}
	if err := dec.Err(); err != nil {
		return fmt.Errorf("ckpt: restore %q: %w", name, err)
	}
	if dec.Remaining() != 0 {
		return fmt.Errorf("ckpt: restore %q: %d trailing bytes (operator shape mismatch)",
			name, dec.Remaining())
	}
	return nil
}

// checkpoint payload format (the body the store's manifest CRCs):
//
//	magic "SDC1"
//	varint epoch | varint outSeq
//	uvarint nmeta | per entry: string key, uvarint value   (sorted)
//	uvarint nsections | per section:
//	  string name | uvarint len | bytes | crc32(name+bytes)
//
// The per-section CRC is deliberate redundancy on top of the store's
// whole-payload CRC: a decode failure names the operator at fault.

var ckptMagic = []byte("SDC1")

// Encode serializes the checkpoint payload.
func (c *Checkpoint) Encode() []byte {
	buf := append([]byte(nil), ckptMagic...)
	buf = binary.AppendVarint(buf, c.Epoch)
	buf = binary.AppendVarint(buf, c.OutSeq)
	keys := make([]string, 0, len(c.Meta))
	for k := range c.Meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
		buf = binary.AppendUvarint(buf, c.Meta[k])
	}
	buf = binary.AppendUvarint(buf, uint64(len(c.Sections)))
	for _, s := range c.Sections {
		buf = binary.AppendUvarint(buf, uint64(len(s.Name)))
		buf = append(buf, s.Name...)
		buf = binary.AppendUvarint(buf, uint64(len(s.Data)))
		buf = append(buf, s.Data...)
		crc := crc32.ChecksumIEEE([]byte(s.Name))
		crc = crc32.Update(crc, crc32.IEEETable, s.Data)
		buf = binary.LittleEndian.AppendUint32(buf, crc)
	}
	return buf
}

// DecodeCheckpoint parses a checkpoint payload, validating magic and
// every per-section CRC.
func DecodeCheckpoint(buf []byte) (*Checkpoint, error) {
	if len(buf) < len(ckptMagic) || string(buf[:len(ckptMagic)]) != string(ckptMagic) {
		return nil, fmt.Errorf("ckpt: bad checkpoint magic")
	}
	d := NewDecoder(buf[len(ckptMagic):])
	c := &Checkpoint{Epoch: d.Varint(), OutSeq: d.Varint()}
	nmeta := d.Uvarint()
	if nmeta > uint64(len(buf)) {
		return nil, fmt.Errorf("ckpt: meta count %d exceeds buffer", nmeta)
	}
	if nmeta > 0 {
		c.Meta = make(map[string]uint64, nmeta)
		for i := uint64(0); i < nmeta && d.Err() == nil; i++ {
			k := d.String()
			c.Meta[k] = d.Uvarint()
		}
	}
	nsec := d.Uvarint()
	if nsec > uint64(len(buf)) {
		return nil, fmt.Errorf("ckpt: section count %d exceeds buffer", nsec)
	}
	for i := uint64(0); i < nsec && d.Err() == nil; i++ {
		name := d.String()
		data := d.BytesField()
		if d.Err() != nil {
			break
		}
		if d.off+4 > len(d.buf) {
			return nil, fmt.Errorf("ckpt: truncated section CRC")
		}
		got := binary.LittleEndian.Uint32(d.buf[d.off:])
		d.off += 4
		want := crc32.ChecksumIEEE([]byte(name))
		want = crc32.Update(want, crc32.IEEETable, data)
		if got != want {
			return nil, fmt.Errorf("ckpt: section %q CRC mismatch", name)
		}
		c.Add(name, data)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("ckpt: %d trailing bytes after checkpoint", d.Remaining())
	}
	return c, nil
}
