package stream

import (
	"testing"

	"streamdb/internal/tuple"
)

func batchEl(ts int64) Element {
	return Tup(tuple.New(ts, tuple.Time(ts), tuple.Int(ts)))
}

func TestBatchPoolRecyclesAndZeroes(t *testing.T) {
	p := NewBatchPool(8)
	if p.Size() != 8 {
		t.Fatalf("Size = %d, want 8", p.Size())
	}
	b := p.Get()
	if len(b) != 0 || cap(b) < 8 {
		t.Fatalf("Get: len=%d cap=%d, want empty with cap >= 8", len(b), cap(b))
	}
	b = append(b, batchEl(1), batchEl(2))
	backing := b[:cap(b)]
	p.Put(b)
	// The recycled buffer must not pin the tuples it carried.
	for i := range backing {
		if backing[i].Tuple != nil || backing[i].Punct != nil {
			t.Fatalf("slot %d not zeroed on Put", i)
		}
	}
	b2 := p.Get()
	if len(b2) != 0 {
		t.Fatalf("recycled batch not empty: len=%d", len(b2))
	}
}

func TestBatchPoolMinimumSize(t *testing.T) {
	p := NewBatchPool(0)
	if p.Size() != 1 {
		t.Fatalf("Size = %d, want clamped to 1", p.Size())
	}
	p.Put(nil) // zero-cap batches are dropped, not pooled
	if b := p.Get(); cap(b) < 1 {
		t.Fatalf("Get after Put(nil): cap=%d", cap(b))
	}
}

func TestSliceSourceNextBatch(t *testing.T) {
	sch := tuple.NewSchema("S",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "v", Kind: tuple.KindInt},
	)
	var elems []Element
	for i := int64(0); i < 10; i++ {
		elems = append(elems, batchEl(i))
	}
	src := FromElements(sch, elems...)
	bulk, ok := interface{}(src).(BulkSource)
	if !ok {
		t.Fatal("SliceSource must implement BulkSource")
	}
	var got []Element
	got, more := bulk.NextBatch(got, 4)
	if len(got) != 4 || !more {
		t.Fatalf("first chunk: len=%d more=%v, want 4 true", len(got), more)
	}
	got, more = bulk.NextBatch(got, 100)
	if len(got) != 10 || more {
		t.Fatalf("second chunk: len=%d more=%v, want 10 false", len(got), more)
	}
	for i, e := range got {
		if e.Ts() != int64(i) {
			t.Fatalf("element %d has ts %d (order broken)", i, e.Ts())
		}
	}
	if _, more := bulk.NextBatch(nil, 1); more {
		t.Fatal("exhausted source reported more")
	}
}

// NextBatch and Next must be freely interleavable: the engine may mix
// peeked single reads with bulk fills.
func TestSliceSourceNextBatchInterleaved(t *testing.T) {
	sch := tuple.NewSchema("S",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "v", Kind: tuple.KindInt},
	)
	var elems []Element
	for i := int64(0); i < 6; i++ {
		elems = append(elems, batchEl(i))
	}
	src := FromElements(sch, elems...)
	e, ok := src.Next()
	if !ok || e.Ts() != 0 {
		t.Fatalf("Next: %v %v", e, ok)
	}
	chunk, _ := src.NextBatch(nil, 3)
	if len(chunk) != 3 || chunk[0].Ts() != 1 {
		t.Fatalf("NextBatch after Next: len=%d first=%d, want 3 1", len(chunk), chunk[0].Ts())
	}
	e, ok = src.Next()
	if !ok || e.Ts() != 4 {
		t.Fatalf("Next after NextBatch: ts=%d ok=%v, want 4 true", e.Ts(), ok)
	}
}
