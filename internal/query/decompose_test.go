package query

import (
	"math"
	"math/rand"
	"testing"

	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

func TestDecomposeEndToEndMatchesDirectQuery(t *testing.T) {
	cat := testCatalog()
	const sql = `select srcIP, count(*) as c, sum(length) as s
		from Traffic [range 60] where protocol = 6 group by srcIP`

	d, err := Decompose(sql, cat, 64)
	if err != nil {
		t.Fatal(err)
	}

	// Workload shared by both evaluations.
	rng := rand.New(rand.NewSource(77))
	var tuples []*tuple.Tuple
	for i := 0; i < 5000; i++ {
		ts := int64(i) * stream.Second / 20
		proto := uint64(6)
		if rng.Intn(4) == 0 {
			proto = 17
		}
		tuples = append(tuples, trafficTuple(ts, uint32(rng.Intn(100)), 9, proto, uint64(rng.Intn(1500))))
	}

	// Direct evaluation through the ordinary planner.
	direct := map[uint64][2]float64{} // srcIP -> (count, sum) across windows
	rows, _, err := Run(sql, cat,
		map[string]stream.Source{"Traffic": stream.FromTuples(cat.schemas["Traffic"], tuples...)}, -1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		ip, _ := r.Vals[0].AsUint()
		c, _ := r.Vals[1].AsInt()
		s, _ := r.Vals[2].AsFloat()
		cur := direct[ip]
		direct[ip] = [2]float64{cur[0] + float64(c), cur[1] + s}
	}

	// Decomposed evaluation: 2 low-level nodes partition the stream.
	high, err := d.NewHighLevel("hfta")
	if err != nil {
		t.Fatal(err)
	}
	decomposed := map[uint64][2]float64{}
	emitFinal := func(e stream.Element) {
		tp := e.Tuple
		ip, _ := tp.Vals[1].AsUint()
		c, _ := tp.Vals[2].AsInt()
		s, _ := tp.Vals[3].AsFloat()
		cur := decomposed[ip]
		decomposed[ip] = [2]float64{cur[0] + float64(c), cur[1] + s}
	}
	emitPartial := func(e stream.Element) { high.Push(0, e, emitFinal) }
	l0, err := d.NewLowLevel("n0")
	if err != nil {
		t.Fatal(err)
	}
	l1, err := d.NewLowLevel("n1")
	if err != nil {
		t.Fatal(err)
	}
	for i, tp := range tuples {
		if i%2 == 0 {
			l0.Push(stream.Tup(tp), emitPartial)
		} else {
			l1.Push(stream.Tup(tp), emitPartial)
		}
	}
	l0.Flush(emitPartial)
	l1.Flush(emitPartial)
	high.Flush(emitFinal)

	if len(decomposed) != len(direct) {
		t.Fatalf("groups: decomposed %d vs direct %d", len(decomposed), len(direct))
	}
	for ip, want := range direct {
		got := decomposed[ip]
		if got[0] != want[0] || math.Abs(got[1]-want[1]) > 1e-6 {
			t.Fatalf("srcIP %d: decomposed %v vs direct %v", ip, got, want)
		}
	}
}

func TestDecomposeRejections(t *testing.T) {
	cat := testCatalog()
	bad := []string{
		"select * from Traffic",                                                  // no aggregates
		"select count(*) from S, A where S.srcIP = A.destIP",                     // two streams
		"select srcIP, count(*) from Traffic group by srcIP having count(*) > 1", // HAVING
		"select median(length) from Traffic group by protocol",                   // holistic
		"select count(*) from Traffic [range 60 slide 10] group by srcIP",        // sliding window
		"select count(*) from Nowhere group by x",                                // unknown stream
		"select count(nosuchcol) from Traffic group by srcIP",                    // binding
		"select count(*) from Traffic group by nosuchcol",                        // group binding
		"not sql at all",
	}
	for _, sql := range bad {
		if _, err := Decompose(sql, cat, 64); err == nil {
			t.Errorf("decomposed %q", sql)
		}
	}
}

func TestDecomposeApproxStillRejectsNonMergeable(t *testing.T) {
	cat := testCatalog()
	// Approximate holistic states do not merge; decomposition must
	// reject them too.
	if _, err := Decompose(
		"select median(length) from Traffic group by protocol with approx",
		cat, 64); err == nil {
		t.Error("approx median decomposed")
	}
}

func TestDecomposeDefaultsAndWindowBucket(t *testing.T) {
	cat := testCatalog()
	d, err := Decompose("select count(*) from Traffic [range 10] group by srcIP", cat, 16)
	if err != nil {
		t.Fatal(err)
	}
	if d.PartialSchema().Index("bucket") != 0 {
		t.Error("partial schema missing bucket")
	}
	// Unbounded query still decomposes with the default bucket.
	if _, err := Decompose("select count(*) from Traffic group by srcIP", cat, 16); err != nil {
		t.Errorf("unbounded decomposition failed: %v", err)
	}
}
