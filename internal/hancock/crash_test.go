package hancock

// Crash-recovery regressions for the persistent signature store: the
// on-disk states a killed process can leave behind (torn trailing
// record, orphaned .tmp from a crash between write and rename) must
// never corrupt reads, and the next MergeUpdate must restore a fully
// clean generation. These are the same torn-write shapes the ckpt
// store's manifest protocol defends against; SigStore relies on
// fixed-size records plus rename atomicity instead.

import (
	"os"
	"path/filepath"
	"testing"
)

func storeWithDays(t *testing.T, dir string, days ...map[uint64]DayStats) *SigStore {
	t.Helper()
	s, err := NewSigStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range days {
		if err := s.MergeUpdate(0.5, d); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func collectAll(t *testing.T, s *SigStore) map[uint64]Signature {
	t.Helper()
	out := map[uint64]Signature{}
	err := s.All(func(k uint64, sig Signature) bool {
		out[k] = sig
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestTornTrailingRecordIgnored simulates a process killed while
// appending: the data file ends in a partial record. Reads must treat
// the torn tail as end-of-file (fixed-size records make the floor
// unambiguous), Get must still find every intact record, and the next
// merge must rewrite a clean file that includes the re-applied update.
func TestTornTrailingRecordIgnored(t *testing.T) {
	dir := t.TempDir()
	day := map[uint64]DayStats{1: {Calls: 10, DurSum: 100}, 5: {Calls: 5, DurSum: 50}, 9: {Calls: 9, DurSum: 90}}
	s := storeWithDays(t, dir, day)

	path := filepath.Join(dir, "signatures.dat")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear mid-record: 3 intact records + half of a fourth.
	torn := append(append([]byte(nil), raw...), raw[:recordSize/2]...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	if n, err := s.Len(); err != nil || n != 3 {
		t.Fatalf("Len on torn file = %d, %v; want 3", n, err)
	}
	if sig, ok, err := s.Get(5); err != nil || !ok || sig.Calls == 0 {
		t.Fatalf("Get(5) on torn file = %+v, %v, %v", sig, ok, err)
	}
	got := collectAll(t, s)
	if len(got) != 3 {
		t.Fatalf("All on torn file visited %d records, want 3", len(got))
	}

	// Recovery: the crashed day is re-applied; the merge pass streams
	// only intact records and rewrites a clean generation.
	if err := s.MergeUpdate(0.5, map[uint64]DayStats{5: {Calls: 2, DurSum: 20}}); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size()%recordSize != 0 {
		t.Fatalf("rewritten file size %d not a whole number of records", info.Size())
	}
	if got := collectAll(t, s); len(got) != 3 {
		t.Fatalf("after recovery merge: %d records, want 3", len(got))
	}
}

// TestCrashBeforeRenameKeepsOldGeneration simulates a kill between the
// temp-file write and the rename: the orphaned .tmp must not shadow or
// corrupt the committed file, and a retried merge must succeed and
// clean it up.
func TestCrashBeforeRenameKeepsOldGeneration(t *testing.T) {
	dir := t.TempDir()
	day1 := map[uint64]DayStats{1: {Calls: 10, DurSum: 100}, 2: {Calls: 20, DurSum: 200}}
	s := storeWithDays(t, dir, day1)
	before := collectAll(t, s)

	// The crashed merge got as far as writing a (possibly partial)
	// .tmp but never renamed it.
	tmp := filepath.Join(dir, "signatures.dat.tmp")
	if err := os.WriteFile(tmp, make([]byte, recordSize+7), 0o644); err != nil {
		t.Fatal(err)
	}

	// Reopen as a restarted process would: the committed generation is
	// untouched by the orphan.
	s2, err := NewSigStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := collectAll(t, s2); len(got) != len(before) {
		t.Fatalf("orphaned .tmp changed visible records: %d, want %d", len(got), len(before))
	}

	// Retrying the interrupted day overwrites the orphan and commits.
	if err := s2.MergeUpdate(0.5, map[uint64]DayStats{3: {Calls: 30, DurSum: 300}}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("orphaned .tmp survived a successful merge: %v", err)
	}
	got := collectAll(t, s2)
	if len(got) != 3 {
		t.Fatalf("after retried merge: %d records, want 3", len(got))
	}
	if _, ok := got[3]; !ok {
		t.Fatal("retried day's key missing after recovery")
	}
}
