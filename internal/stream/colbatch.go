package stream

import (
	"sync"
	"sync/atomic"

	"streamdb/internal/tuple"
)

// Columnar batches: the vectorized counterpart of []Element edge
// batches. A Batch holds one contiguous run of data tuples decomposed
// into column vectors — Cols[c][r] is field c of row r, Ts[r] its
// timestamp — plus an optional selection vector Sel listing the row
// indexes that are still live (nil = all rows). Filters refine Sel
// instead of materializing survivors, so a chain of selections touches
// only the selection vector; rows are materialized back into tuples
// only at boundaries that need them (row-path operators, the sink).
//
// Batches never carry punctuations: a punctuation (and therefore a
// checkpoint barrier) always travels the row path, which keeps the
// engine's flush-on-punct and barrier-alignment invariants intact
// without the columnar path knowing about either.
//
// Ownership is reference-counted. A producer hands its reference to
// the consumer with the batch; fan-out retains once per extra
// consumer; Release returns the storage to its ColPool when the last
// reference drops. A batch is only mutated (Sel refined in place) by a
// holder of the sole reference — shared batches are refined through
// WithSel views that alias the columns and hold a reference on the
// parent.

// Batch is a column-oriented run of data tuples.
type Batch struct {
	Schema *tuple.Schema
	Cols   [][]tuple.Value // Cols[c][r]: field c of row r
	Ts     []int64         // timestamps, parallel to the column rows
	Sel    []int32         // live row indexes, ascending; nil = all rows

	refs   atomic.Int32
	pool   *ColPool
	parent *Batch  // non-nil for WithSel views: storage owner
	selArr []int32 // pooled selection backing, len 0, cap == pool size
}

// Rows reports the physical row count (ignoring the selection vector).
func (b *Batch) Rows() int { return len(b.Ts) }

// N reports the live row count: len(Sel) when a selection vector is
// present, the physical row count otherwise.
func (b *Batch) N() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return len(b.Ts)
}

// Retain adds a reference. Each reference must be dropped with Release.
func (b *Batch) Retain() { b.refs.Add(1) }

// Release drops one reference; the last drop returns pooled storage to
// its ColPool (zeroed first, so pooled columns do not pin decoded
// strings) and unpins the parent of a view.
func (b *Batch) Release() {
	if b.refs.Add(-1) != 0 {
		return
	}
	if b.parent != nil {
		p := b.parent
		b.parent = nil
		p.Release()
		return
	}
	if b.pool != nil {
		b.pool.put(b)
	}
}

// Exclusive reports whether the caller holds the only reference to a
// batch that owns its storage — the precondition for refining Sel in
// place or reusing SelBuf.
func (b *Batch) Exclusive() bool { return b.parent == nil && b.refs.Load() == 1 }

// SelBuf returns the batch's pooled selection backing (length 0).
// Only the sole owner of the batch may use it (see Exclusive).
func (b *Batch) SelBuf() []int32 {
	if b.selArr == nil {
		b.selArr = make([]int32, 0, len(b.Ts))
	}
	return b.selArr[:0]
}

// WithSel builds a view of b with a different selection vector: the
// view aliases the columns and timestamps, holds a reference on b, and
// owns only its Sel. The caller keeps (and must still Release) its own
// reference on b.
func (b *Batch) WithSel(sel []int32) *Batch {
	b.Retain()
	v := &Batch{Schema: b.Schema, Cols: b.Cols, Ts: b.Ts, Sel: sel, parent: b}
	v.refs.Store(1)
	return v
}

// AppendRow transposes one tuple onto the end of the batch. The tuple's
// values are copied; it is not retained.
func (b *Batch) AppendRow(t *tuple.Tuple) {
	b.Ts = append(b.Ts, t.Ts)
	for i := range b.Cols {
		b.Cols[i] = append(b.Cols[i], t.Vals[i])
	}
}

// GatherRow copies row r (a physical index) into dst, whose Vals must
// already have length len(Cols). The row stays valid independently of
// the batch only as long as dst's backing array does.
func (b *Batch) GatherRow(r int, dst *tuple.Tuple) {
	dst.Ts = b.Ts[r]
	for c := range b.Cols {
		dst.Vals[c] = b.Cols[c][r]
	}
}

// AppendSpan bulk-appends physical rows [lo, hi) of src (the selection
// vector, if any, is ignored — span producers emit dense batches) onto
// the end of b: the reassembly primitive of the columnar sequence-
// restoring merge, which stitches per-replica output spans back into
// batches with one copy per column instead of one per value.
func (b *Batch) AppendSpan(src *Batch, lo, hi int) {
	if hi <= lo {
		return
	}
	b.Ts = append(b.Ts, src.Ts[lo:hi]...)
	for c := range b.Cols {
		b.Cols[c] = append(b.Cols[c], src.Cols[c][lo:hi]...)
	}
}

// AppendRows materializes the live rows as fresh heap-owned tuples
// appended to dst: one backing array for all values and one for all
// tuple headers, so the cost is two allocations per batch regardless
// of row count. The result does not alias the batch.
func (b *Batch) AppendRows(dst []Element) []Element {
	n := b.N()
	if n == 0 {
		return dst
	}
	arity := len(b.Cols)
	vals := make([]tuple.Value, n*arity)
	tups := make([]tuple.Tuple, n)
	emitRow := func(i, r int) {
		tv := vals[i*arity : (i+1)*arity : (i+1)*arity]
		for c := range b.Cols {
			tv[c] = b.Cols[c][r]
		}
		tups[i] = tuple.Tuple{Ts: b.Ts[r], Vals: tv}
		dst = append(dst, Tup(&tups[i]))
	}
	if b.Sel != nil {
		for i, r := range b.Sel {
			emitRow(i, int(r))
		}
	} else {
		for r := 0; r < len(b.Ts); r++ {
			emitRow(r, r)
		}
	}
	return dst
}

// ColPool recycles columnar batches of a common schema and target row
// capacity, the columnar analogue of BatchPool.
type ColPool struct {
	schema *tuple.Schema
	size   int
	pool   sync.Pool
}

// NewColPool builds a pool of batches for the given schema with the
// given target row capacity (minimum 1).
func NewColPool(s *tuple.Schema, size int) *ColPool {
	if size < 1 {
		size = 1
	}
	p := &ColPool{schema: s, size: size}
	arity := s.Arity()
	p.pool.New = func() interface{} {
		b := &Batch{
			Schema: s,
			Cols:   make([][]tuple.Value, arity),
			Ts:     make([]int64, 0, size),
			selArr: make([]int32, 0, size),
		}
		for i := range b.Cols {
			b.Cols[i] = make([]tuple.Value, 0, size)
		}
		return b
	}
	return p
}

// Size reports the target row capacity.
func (p *ColPool) Size() int { return p.size }

// Schema reports the schema every pooled batch carries.
func (p *ColPool) Schema() *tuple.Schema { return p.schema }

// Get returns an empty batch holding one reference.
func (p *ColPool) Get() *Batch {
	b := p.pool.Get().(*Batch)
	b.pool = p
	b.refs.Store(1)
	return b
}

// put zeroes and recycles a batch whose last reference dropped.
func (p *ColPool) put(b *Batch) {
	for c := range b.Cols {
		col := b.Cols[c]
		for i := range col {
			col[i] = tuple.Value{}
		}
		b.Cols[c] = col[:0]
	}
	b.Ts = b.Ts[:0]
	b.Sel = nil
	p.pool.Put(b)
}

// ColSource is implemented by sources that can deliver columnar batches
// directly — e.g. a transport decoding schema-coded frames — skipping
// the row materialization a BulkSource would force. The caller owns the
// returned batch's reference. A nil batch with more=true means
// "momentarily idle"; the contract otherwise mirrors BulkSource.
type ColSource interface {
	Source
	NextColBatch(max int) (b *Batch, more bool)
}
