package hancock

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// SigStore is the persistent signature collection (slide 49: "support
// for custom scalable persistent data structures"). Records are
// fixed-size (key + signature), kept sorted by line number in a single
// data file.
//
// Two update strategies implement the I/O contrast the tutorial draws
// (slides 6, 21, 56):
//
//   - MergeUpdate: block processing — sort the day's updates, stream
//     the old file and the updates through a sequential merge into a
//     new file. Pure sequential I/O, O(store + updates) bytes.
//   - RandomUpdate: per-element processing — binary-search each update's
//     record via ReadAt and write it back via WriteAt. One seek per
//     update, the pattern that made the pre-Hancock C code "I/O
//     intensive" (slide 6).
//
// Both maintain identical logical contents; IOStats records the cost
// difference experiment E13 reports.
type SigStore struct {
	path  string
	Stats IOStats
}

// IOStats counts simulated and real I/O operations.
type IOStats struct {
	SeqReadBytes   int64
	SeqWriteBytes  int64
	RandReadBytes  int64
	RandWriteBytes int64
	Seeks          int64
}

// recordSize is the on-disk record: 8-byte key + 4 float64 fields +
// days int32 + padding.
const recordSize = 8 + 4*8 + 8

// NewSigStore creates or opens a store rooted at dir.
func NewSigStore(dir string) (*SigStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("hancock: %w", err)
	}
	s := &SigStore{path: filepath.Join(dir, "signatures.dat")}
	if _, err := os.Stat(s.path); os.IsNotExist(err) {
		if err := os.WriteFile(s.path, nil, 0o644); err != nil {
			return nil, fmt.Errorf("hancock: %w", err)
		}
	}
	return s, nil
}

func encodeRecord(buf []byte, key uint64, sig Signature) {
	binary.LittleEndian.PutUint64(buf[0:], key)
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(sig.OutTF))
	binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(sig.OutIntl))
	binary.LittleEndian.PutUint64(buf[24:], math.Float64bits(sig.Calls))
	binary.LittleEndian.PutUint64(buf[32:], math.Float64bits(sig.AvgDur))
	binary.LittleEndian.PutUint32(buf[40:], uint32(sig.Days))
	binary.LittleEndian.PutUint32(buf[44:], 0)
}

func decodeRecord(buf []byte) (uint64, Signature) {
	key := binary.LittleEndian.Uint64(buf[0:])
	return key, Signature{
		OutTF:   math.Float64frombits(binary.LittleEndian.Uint64(buf[8:])),
		OutIntl: math.Float64frombits(binary.LittleEndian.Uint64(buf[16:])),
		Calls:   math.Float64frombits(binary.LittleEndian.Uint64(buf[24:])),
		AvgDur:  math.Float64frombits(binary.LittleEndian.Uint64(buf[32:])),
		Days:    int32(binary.LittleEndian.Uint32(buf[40:])),
	}
}

// Len returns the number of stored signatures.
func (s *SigStore) Len() (int, error) {
	info, err := os.Stat(s.path)
	if err != nil {
		return 0, err
	}
	return int(info.Size() / recordSize), nil
}

// Get fetches one signature by key (binary search on the sorted file).
func (s *SigStore) Get(key uint64) (Signature, bool, error) {
	f, err := os.Open(s.path)
	if err != nil {
		return Signature{}, false, err
	}
	defer f.Close()
	n, err := s.Len()
	if err != nil {
		return Signature{}, false, err
	}
	buf := make([]byte, recordSize)
	lo, hi := 0, n-1
	for lo <= hi {
		mid := (lo + hi) / 2
		if _, err := f.ReadAt(buf, int64(mid)*recordSize); err != nil {
			return Signature{}, false, err
		}
		s.Stats.Seeks++
		s.Stats.RandReadBytes += recordSize
		k, sig := decodeRecord(buf)
		switch {
		case k == key:
			return sig, true, nil
		case k < key:
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
	return Signature{}, false, nil
}

// MergeUpdate applies a day's statistics with a sequential merge pass:
// the Hancock way. alpha is the blend weight.
func (s *SigStore) MergeUpdate(alpha float64, day map[uint64]DayStats) error {
	keys := make([]uint64, 0, len(day))
	for k := range day {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	in, err := os.Open(s.path)
	if err != nil {
		return err
	}
	defer in.Close()
	tmp := s.path + ".tmp"
	out, err := os.Create(tmp)
	if err != nil {
		return err
	}
	r := bufio.NewReader(in)
	w := bufio.NewWriter(out)
	rbuf := make([]byte, recordSize)
	wbuf := make([]byte, recordSize)

	writeRec := func(key uint64, sig Signature) error {
		encodeRecord(wbuf, key, sig)
		s.Stats.SeqWriteBytes += recordSize
		_, err := w.Write(wbuf)
		return err
	}

	ki := 0
	var pendingOld *struct {
		key uint64
		sig Signature
	}
	readOld := func() (uint64, Signature, bool, error) {
		if pendingOld != nil {
			p := *pendingOld
			pendingOld = nil
			return p.key, p.sig, true, nil
		}
		if _, err := readFull(r, rbuf); err != nil {
			return 0, Signature{}, false, nil // EOF
		}
		s.Stats.SeqReadBytes += recordSize
		k, sig := decodeRecord(rbuf)
		return k, sig, true, nil
	}

	for {
		k, sig, ok, _ := readOld()
		if !ok {
			break
		}
		// Emit all new keys smaller than the old record's key.
		for ki < len(keys) && keys[ki] < k {
			var fresh Signature
			fresh.Update(alpha, day[keys[ki]])
			if err := writeRec(keys[ki], fresh); err != nil {
				return err
			}
			ki++
		}
		if ki < len(keys) && keys[ki] == k {
			sig.Update(alpha, day[keys[ki]])
			ki++
		}
		if err := writeRec(k, sig); err != nil {
			return err
		}
	}
	for ki < len(keys) {
		var fresh Signature
		fresh.Update(alpha, day[keys[ki]])
		if err := writeRec(keys[ki], fresh); err != nil {
			return err
		}
		ki++
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, s.path)
}

func readFull(r *bufio.Reader, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := r.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// RandomUpdate applies a day's statistics with per-record random I/O:
// the pre-Hancock baseline. Keys absent from the store are collected
// and appended with a final merge (in-place insertion into a sorted
// file is not possible), still charging a seek per probe.
func (s *SigStore) RandomUpdate(alpha float64, day map[uint64]DayStats) error {
	f, err := os.OpenFile(s.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	n, err := s.Len()
	if err != nil {
		f.Close()
		return err
	}
	buf := make([]byte, recordSize)
	missing := make(map[uint64]DayStats)
	for key, d := range day {
		// Binary search with ReadAt: one seek per probe.
		lo, hi := 0, n-1
		found := -1
		for lo <= hi {
			mid := (lo + hi) / 2
			if _, err := f.ReadAt(buf, int64(mid)*recordSize); err != nil {
				f.Close()
				return err
			}
			s.Stats.Seeks++
			s.Stats.RandReadBytes += recordSize
			k, _ := decodeRecord(buf)
			switch {
			case k == key:
				found = mid
				lo = hi + 1
			case k < key:
				lo = mid + 1
			default:
				hi = mid - 1
			}
		}
		if found < 0 {
			missing[key] = d
			continue
		}
		_, sig := decodeRecord(buf)
		sig.Update(alpha, d)
		encodeRecord(buf, key, sig)
		if _, err := f.WriteAt(buf, int64(found)*recordSize); err != nil {
			f.Close()
			return err
		}
		s.Stats.Seeks++
		s.Stats.RandWriteBytes += recordSize
	}
	if err := f.Close(); err != nil {
		return err
	}
	if len(missing) > 0 {
		return s.MergeUpdate(alpha, missing)
	}
	return nil
}

// All streams every stored signature in key order.
func (s *SigStore) All(visit func(key uint64, sig Signature) bool) error {
	f, err := os.Open(s.path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	buf := make([]byte, recordSize)
	for {
		if _, err := readFull(r, buf); err != nil {
			return nil // EOF
		}
		s.Stats.SeqReadBytes += recordSize
		k, sig := decodeRecord(buf)
		if !visit(k, sig) {
			return nil
		}
	}
}
