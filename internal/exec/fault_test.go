package exec

// Panic isolation: an operator crash must become a reported node
// failure, never a process crash or (in concurrent mode) a deadlock.

import (
	"sync/atomic"
	"testing"
	"time"

	"streamdb/internal/ops"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

// panicOp forwards elements until it has seen `after` of them, then
// panics on every subsequent push (and on Flush if panicOnFlush).
type panicOp struct {
	name         string
	after        int64
	seen         int64
	panicOnFlush bool
}

func (p *panicOp) Name() string             { return p.name }
func (p *panicOp) OutSchema() *tuple.Schema { return sch }
func (p *panicOp) NumInputs() int           { return 1 }
func (p *panicOp) MemSize() int             { return 0 }
func (p *panicOp) Push(_ int, e stream.Element, emit ops.Emit) {
	if atomic.AddInt64(&p.seen, 1) > p.after {
		panic("operator bug: invariant violated")
	}
	emit(e)
}
func (p *panicOp) Flush(ops.Emit) {
	if p.panicOnFlush {
		panic("flush bug")
	}
}

func elems(n int) []stream.Element {
	out := make([]stream.Element, n)
	for i := range out {
		out[i] = el(int64(i), int64(i))
	}
	return out
}

func TestRunFailFastOnPanic(t *testing.T) {
	var got int64
	g := NewGraph(func(stream.Element) { got++ })
	src := g.AddSource(stream.FromElements(sch, elems(10)...))
	n := g.AddOp(&panicOp{name: "bad", after: 3})
	if err := g.ConnectSource(src, n, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.ConnectOut(n); err != nil {
		t.Fatal(err)
	}
	g.Run(-1)
	if err := g.Err(); err == nil {
		t.Fatal("panic not reported as node failure")
	}
	if got != 3 {
		t.Errorf("outputs after fail-fast = %d, want 3", got)
	}
	if st := g.Stats(n); st.Panics != 1 {
		t.Errorf("Panics = %d, want 1", st.Panics)
	}
	fs := g.Failures()
	if len(fs) != 1 || fs[0].Op != "bad" || fs[0].Stack == "" {
		t.Errorf("failures = %+v", fs)
	}
}

func TestRunDegradeKeepsHealthyBranch(t *testing.T) {
	// Two parallel branches off one source; one panics. Under Degrade
	// the healthy branch must deliver everything.
	var healthy, total int64
	g := NewGraph(func(e stream.Element) {
		total++
		if v, _ := e.Tuple.Vals[1].AsInt(); v >= 0 {
			healthy++
		}
	})
	g.SetFailurePolicy(Degrade)
	src := g.AddSource(stream.FromElements(sch, elems(20)...))
	bad := g.AddOp(&panicOp{name: "bad", after: 5})
	good := g.AddOp(mustSelect(t, -1)) // passes everything
	for _, n := range []NodeID{bad, good} {
		if err := g.ConnectSource(src, n, 0); err != nil {
			t.Fatal(err)
		}
		if err := g.ConnectOut(n); err != nil {
			t.Fatal(err)
		}
	}
	consumed := g.Run(-1)
	if consumed != 20 {
		t.Errorf("consumed = %d, want 20 (degrade must not stop the run)", consumed)
	}
	if err := g.Err(); err == nil {
		t.Fatal("failure not reported under Degrade")
	}
	// bad emitted 5 before crashing; good emitted all 20.
	if total != 25 {
		t.Errorf("outputs = %d, want 25", total)
	}
	if st := g.Stats(bad); st.Panics != 1 {
		t.Errorf("Panics = %d", st.Panics)
	}
}

func TestRunDegradeFlushPanic(t *testing.T) {
	g := NewGraph(nil)
	g.SetFailurePolicy(Degrade)
	src := g.AddSource(stream.FromElements(sch, elems(3)...))
	n := g.AddOp(&panicOp{name: "bad", after: 100, panicOnFlush: true})
	if err := g.ConnectSource(src, n, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.ConnectOut(n); err != nil {
		t.Fatal(err)
	}
	g.Run(-1)
	if err := g.Err(); err == nil {
		t.Fatal("flush panic not reported")
	}
	if st := g.Stats(n); st.Panics != 1 {
		t.Errorf("Panics = %d", st.Panics)
	}
}

// fanOp emits k copies of every input: an amplifier to overload the
// pending-work deque.
type fanOp struct{ k int }

func (f *fanOp) Name() string             { return "fan" }
func (f *fanOp) OutSchema() *tuple.Schema { return sch }
func (f *fanOp) NumInputs() int           { return 1 }
func (f *fanOp) MemSize() int             { return 0 }
func (f *fanOp) Flush(ops.Emit)           {}
func (f *fanOp) Push(_ int, e stream.Element, emit ops.Emit) {
	for i := 0; i < f.k; i++ {
		emit(e)
	}
}

func TestWorkCapTailDropWithPanickingOperator(t *testing.T) {
	// Overload (SetWorkCap tail-drop) interacting with a panicking
	// operator under Degrade: the run must complete, drops must be
	// counted, and emitted elements must either reach the sink or be
	// accounted as dropped — nothing vanishes silently.
	var out int64
	g := NewGraph(func(stream.Element) { out++ })
	g.SetFailurePolicy(Degrade)
	g.SetWorkCap(4)
	const n = 50
	src := g.AddSource(stream.FromElements(sch, elems(n)...))
	fan := g.AddOp(&fanOp{k: 8})
	bad := g.AddOp(&panicOp{name: "bad", after: 20})
	good := g.AddOp(mustSelect(t, -1))
	if err := g.ConnectSource(src, fan, 0); err != nil {
		t.Fatal(err)
	}
	for _, id := range []NodeID{bad, good} {
		if err := g.Connect(fan, id, 0); err != nil {
			t.Fatal(err)
		}
		if err := g.ConnectOut(id); err != nil {
			t.Fatal(err)
		}
	}
	consumed := g.Run(-1)
	if consumed != n {
		t.Errorf("consumed = %d, want %d (degrade must not stop the run)", consumed, n)
	}
	if g.Dropped() == 0 {
		t.Error("work cap never tripped; overload not exercised")
	}
	if g.Err() == nil {
		t.Fatal("panic not recorded")
	}
	if st := g.Stats(bad); st.Panics != 1 {
		t.Errorf("bad.Panics = %d", st.Panics)
	}
	stGood, stBad := g.Stats(good), g.Stats(bad)
	// Every element emitted by the two branches either reached the
	// sink or was tail-dropped (Dropped also covers op-bound drops, so
	// this is an inequality).
	if out+g.Dropped() < stGood.Out+stBad.Out {
		t.Errorf("sink %d + dropped %d < emitted %d: elements vanished",
			out, g.Dropped(), stGood.Out+stBad.Out)
	}
	if stGood.Out == 0 {
		t.Error("healthy branch produced nothing")
	}
}

// runConcurrentWithTimeout fails the test if the run deadlocks.
func runConcurrentWithTimeout(t *testing.T, g *Graph, d time.Duration) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		g.RunConcurrent(-1, 8)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatal("RunConcurrent deadlocked after operator panic")
	}
}

func TestRunConcurrentPanicNoDeadlock(t *testing.T) {
	// A crashed middle operator used to leave its input channel
	// unconsumed: upstream writers blocked forever and wg.Wait hung.
	var out int64
	g := NewGraph(func(stream.Element) { atomic.AddInt64(&out, 1) })
	src := g.AddSource(stream.FromElements(sch, elems(5000)...))
	mid := g.AddOp(&panicOp{name: "mid", after: 10})
	down := g.AddOp(mustSelect(t, -1))
	if err := g.ConnectSource(src, mid, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(mid, down, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.ConnectOut(down); err != nil {
		t.Fatal(err)
	}
	runConcurrentWithTimeout(t, g, 10*time.Second)
	if err := g.Err(); err == nil {
		t.Fatal("panic not reported as node failure")
	}
	if st := g.Stats(mid); st.Panics != 1 {
		t.Errorf("Panics = %d, want 1", st.Panics)
	}
}

func TestRunConcurrentDegradeCompletesHealthyBranch(t *testing.T) {
	var out int64
	g := NewGraph(func(stream.Element) { atomic.AddInt64(&out, 1) })
	g.SetFailurePolicy(Degrade)
	const n = 2000
	src := g.AddSource(stream.FromElements(sch, elems(n)...))
	bad := g.AddOp(&panicOp{name: "bad", after: 4})
	good := g.AddOp(mustSelect(t, -1))
	for _, id := range []NodeID{bad, good} {
		if err := g.ConnectSource(src, id, 0); err != nil {
			t.Fatal(err)
		}
		if err := g.ConnectOut(id); err != nil {
			t.Fatal(err)
		}
	}
	runConcurrentWithTimeout(t, g, 10*time.Second)
	if g.Err() == nil {
		t.Fatal("failure not reported")
	}
	// Healthy branch sees every element despite the sibling crash.
	if st := g.Stats(good); st.Out != n {
		t.Errorf("healthy branch delivered %d, want %d", st.Out, n)
	}
}
