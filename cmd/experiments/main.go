// Command experiments regenerates every figure, table and worked
// example of the tutorial (the E1-E26 index in DESIGN.md) and prints
// them in paper shape.
//
// Usage:
//
//	experiments [-scale 1.0] [-only E4,E6]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"streamdb/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale factor (1.0 = full size)")
	only := flag.String("only", "", "comma-separated experiment IDs to run (default all)")
	flag.Parse()

	s := experiments.Scale(*scale)
	tmp := func() string {
		d, err := os.MkdirTemp("", "streamdb-exp")
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return d
	}

	runs := []struct {
		id string
		fn func() *experiments.Table
	}{
		{"E1", func() *experiments.Table { return experiments.E1WindowJoinRegimes(s) }},
		{"E2", func() *experiments.Table { return experiments.E2BoundedMemoryAgg(s) }},
		{"E3", func() *experiments.Table { return experiments.E3RateBasedPlans(s) }},
		{"E4", func() *experiments.Table { return experiments.E4SchedulingBacklog(s) }},
		{"E5", func() *experiments.Table { return experiments.E5LoadShedding(s) }},
		{"E5b", experiments.E5Controller},
		{"E6", func() *experiments.Table { return experiments.E6P2PDetection(s) }},
		{"E7", func() *experiments.Table { return experiments.E7RTTMonitoring(s) }},
		{"E8", func() *experiments.Table { return experiments.E8PartialAggregation(s) }},
		{"E9", func() *experiments.Table { return experiments.E9SynopsisAccuracy(s) }},
		{"E10", func() *experiments.Table { return experiments.E10SystemProfiles(s) }},
		{"E11", func() *experiments.Table { return experiments.E11XJoinSpill(s, tmp()) }},
		{"E12", func() *experiments.Table { return experiments.E12WindowVariants(s) }},
		{"E13", func() *experiments.Table { return experiments.E13BlockIO(s, tmp(), tmp()) }},
		{"E13b", func() *experiments.Table { return experiments.E13FraudDetection(s, tmp()) }},
		{"E14", func() *experiments.Table { return experiments.E14MultiQuerySharing(s) }},
		{"E15", func() *experiments.Table { return experiments.E15DistributedFilters(s) }},
		{"E16", func() *experiments.Table { return experiments.E16EddyAdaptivity(s) }},
		{"E17", func() *experiments.Table { return experiments.E17FaultTolerance(s) }},
		{"E18", func() *experiments.Table { return experiments.E18BatchedExecution(s) }},
		{"E19", func() *experiments.Table { return experiments.E19PaneAggregation(s) }},
		{"E20", func() *experiments.Table { return experiments.E20PartitionedJoins(s) }},
		{"E21", func() *experiments.Table { return experiments.E21TransportWire(s) }},
		{"E22", func() *experiments.Table { return experiments.E22CrashRecovery(s, tmp()) }},
		{"E25", func() *experiments.Table { return experiments.E25AdaptiveOverload(s) }},
		{"E26", func() *experiments.Table { return experiments.E26SharedQueries(s) }},
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	for _, r := range runs {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		fmt.Println(r.fn())
	}
}
