// Quickstart: register a stream, run windowed continuous queries, and
// inspect the planner's bounded-memory analysis — the minimal tour of
// the public API.
package main

import (
	"fmt"
	"log"

	"streamdb"
	"streamdb/internal/stream"
)

func main() {
	eng := streamdb.New()

	// 1. Declare a stream schema. The ordering attribute is the
	// timestamp the windows are defined over.
	traffic := streamdb.NewSchema("Traffic",
		streamdb.Field{Name: "time", Kind: streamdb.KindTime, Ordering: true},
		streamdb.Field{Name: "srcIP", Kind: streamdb.KindIP},
		streamdb.Field{Name: "destIP", Kind: streamdb.KindIP},
		streamdb.Field{Name: "protocol", Kind: streamdb.KindUint, Bounded: true},
		streamdb.Field{Name: "length", Kind: streamdb.KindUint},
	)
	eng.RegisterSchema("Traffic", traffic)

	// 2. Bind a source: here 50k packets of synthetic backbone traffic
	// at 10k packets/sec of virtual time.
	eng.SetSource("Traffic", stream.Limit(stream.NewTrafficStream(1, 10000, 200), 50000))

	// 3. A filtered projection (slide 29).
	res, err := eng.Query(`select ip4(srcIP) as src, length
		from Traffic where protocol = 6 and length > 1400`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("large TCP packets: %d\n", len(res.Rows))

	// 4. A windowed grouped aggregate with HAVING (slides 13, 34): top
	// talkers per second.
	eng.SetSource("Traffic", stream.Limit(stream.NewTrafficStream(1, 10000, 200), 50000))
	res, err = eng.Query(`select tb, ip4(srcIP) as src, count(*) as pkts, sum(length) as bytes
		from Traffic [range 1]
		group by time/1000000000 as tb, srcIP
		having count(*) > 200`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-second top talkers (count > 200):")
	fmt.Print(res.Format())

	// 5. The planner's static analysis (slides 35-36): ask whether a
	// query is executable in bounded memory before running it.
	for _, sql := range []string{
		"select length, count(*) from Traffic [range 60] where length > 512 group by length",
		"select length, count(*) from Traffic [range 60] where length > 512 and length < 1024 group by length",
		"select protocol, median(length) from Traffic [range 60] group by protocol",
		"select protocol, median(length) from Traffic [range 60] group by protocol with approx",
	} {
		plan, err := eng.Compile(sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nbounded-memory=%v  %s\n", plan.Bounded.OK, sql)
	}
}
