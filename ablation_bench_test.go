package streamdb

// Ablation benchmarks for the design decisions called out in
// DESIGN.md §5: execution mode (virtual-time scheduler vs goroutines
// and channels), join-state invalidation strategy, and GK-vs-sampling
// for quantiles.

import (
	"fmt"
	"sync/atomic"
	"testing"

	"streamdb/internal/agg"
	"streamdb/internal/exec"
	"streamdb/internal/expr"
	"streamdb/internal/ops"
	"streamdb/internal/optimizer/share"
	"streamdb/internal/stream"
	"streamdb/internal/synopsis"
	"streamdb/internal/tuple"
	"streamdb/internal/window"
)

func filterGraph(b *testing.B, sink exec.Sink, n int) *exec.Graph {
	b.Helper()
	g := exec.NewGraph(sink)
	sch := stream.TrafficSchema("Traffic")
	src := g.AddSource(stream.Limit(stream.NewTrafficStream(1, 1e6, 1000), n))
	pred, err := expr.NewBin(expr.OpGt, expr.MustColumn(sch, "length"), expr.Constant(tuple.Int(512)))
	if err != nil {
		b.Fatal(err)
	}
	sel, err := ops.NewSelect("sel", sch, pred, -1, 1)
	if err != nil {
		b.Fatal(err)
	}
	id := g.AddOp(sel)
	if err := g.ConnectSource(src, id, 0); err != nil {
		b.Fatal(err)
	}
	if err := g.ConnectOut(id); err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkAblationEngineSequential measures the deterministic
// virtual-time engine's per-tuple overhead.
func BenchmarkAblationEngineSequential(b *testing.B) {
	var n int64
	g := filterGraph(b, func(stream.Element) { n++ }, b.N)
	b.ResetTimer()
	g.Run(-1)
	if b.N > 1000 && n == 0 {
		b.Fatal("no output")
	}
}

// BenchmarkAblationEngineConcurrent measures the goroutine/channel
// engine on the same pipeline.
func BenchmarkAblationEngineConcurrent(b *testing.B) {
	var n int64
	g := filterGraph(b, func(stream.Element) { atomic.AddInt64(&n, 1) }, b.N)
	b.ResetTimer()
	g.RunConcurrent(-1, 256)
	if b.N > 1000 && atomic.LoadInt64(&n) == 0 {
		b.Fatal("no output")
	}
}

// replayElems materializes a traffic stream once so the benchmarks
// below measure engine overhead, not tuple generation (the generator
// alone costs ~340 ns/element — more than the batched engine itself).
func replayElems(b *testing.B, n int) (*tuple.Schema, []stream.Element) {
	b.Helper()
	sch := stream.TrafficSchema("Traffic")
	elems := stream.Drain(stream.Limit(stream.NewTrafficStream(1, 1e6, 1000), n), -1)
	if len(elems) != n {
		b.Fatalf("generated %d elements, want %d", len(elems), n)
	}
	return sch, elems
}

func replayFilterGraph(b *testing.B, sch *tuple.Schema, elems []stream.Element, sink exec.Sink) *exec.Graph {
	b.Helper()
	g := exec.NewGraph(sink)
	src := g.AddSource(stream.FromElements(sch, elems...))
	pred, err := expr.NewBin(expr.OpGt, expr.MustColumn(sch, "length"), expr.Constant(tuple.Int(512)))
	if err != nil {
		b.Fatal(err)
	}
	sel, err := ops.NewSelect("sel", sch, pred, -1, 1)
	if err != nil {
		b.Fatal(err)
	}
	id := g.AddOp(sel)
	if err := g.ConnectSource(src, id, 0); err != nil {
		b.Fatal(err)
	}
	if err := g.ConnectOut(id); err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkAblationBatchSize isolates the micro-batching win: the same
// source -> select -> sink pipeline at batch sizes 1 (element-at-a-time
// semantics) through 256. Throughput is reported as elems/s over the
// replayed input.
func BenchmarkAblationBatchSize(b *testing.B) {
	const nElems = 200000
	sch, elems := replayElems(b, nElems)
	for _, bs := range []int{1, 8, 64, 256} {
		b.Run(fmtBatch("batch", bs), func(b *testing.B) {
			var n int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g := replayFilterGraph(b, sch, elems, func(stream.Element) { n++ })
				g.RunWith(-1, exec.RunOptions{BatchSize: bs})
			}
			b.StopTimer()
			b.ReportMetric(float64(nElems)*float64(b.N)/b.Elapsed().Seconds(), "elems/s")
			if n == 0 {
				b.Fatal("no output")
			}
		})
	}
}

// BenchmarkAblationParallelSelect replicates the selection operator
// N-ways (order-restoring merge included). On a single-core host this
// measures the replication machinery's overhead rather than a speedup;
// the predicate is made deliberately costly so the split/merge tax is
// amortized the way a real deployment would see it.
func BenchmarkAblationParallelSelect(b *testing.B) {
	const nElems = 100000
	sch, elems := replayElems(b, nElems)
	for _, par := range []int{1, 2, 4} {
		b.Run(fmtBatch("replicas", par), func(b *testing.B) {
			var n int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g := exec.NewGraph(func(stream.Element) { n++ })
				src := g.AddSource(stream.FromElements(sch, elems...))
				// protocol = 6 AND length > 512 AND length <= 1200:
				// three compiled comparisons per tuple.
				p1, _ := expr.NewBin(expr.OpEq, expr.MustColumn(sch, "protocol"), expr.Constant(tuple.Uint(6)))
				p2, _ := expr.NewBin(expr.OpGt, expr.MustColumn(sch, "length"), expr.Constant(tuple.Int(512)))
				p3, _ := expr.NewBin(expr.OpLe, expr.MustColumn(sch, "length"), expr.Constant(tuple.Int(1200)))
				p12, _ := expr.NewBin(expr.OpAnd, p1, p2)
				pred, _ := expr.NewBin(expr.OpAnd, p12, p3)
				sel, err := ops.NewSelect("sel", sch, pred, -1, 1)
				if err != nil {
					b.Fatal(err)
				}
				id := g.AddOp(sel)
				if err := g.ConnectSource(src, id, 0); err != nil {
					b.Fatal(err)
				}
				if err := g.ConnectOut(id); err != nil {
					b.Fatal(err)
				}
				g.RunWith(-1, exec.RunOptions{BatchSize: 64, Parallelism: par})
			}
			b.StopTimer()
			b.ReportMetric(float64(nElems)*float64(b.N)/b.Elapsed().Seconds(), "elems/s")
			if n == 0 {
				b.Fatal("no output")
			}
		})
	}
}

func fmtBatch(prefix string, n int) string {
	return fmt.Sprintf("%s%d", prefix, n)
}

// colReplaySource replays pre-transposed column batches, standing in
// for a columnar transport (the v3 wire decodes straight into pooled
// batches). Like decode output, each batch is handed out exclusively
// owned — operators refine its selection vector in place, and the
// engine's final Release is a no-op on the unpooled replay storage, so
// the data survives across b.N iterations.
type colReplaySource struct {
	sch     *tuple.Schema
	batches []*stream.Batch
	at      int
}

func (c *colReplaySource) Schema() *tuple.Schema { return c.sch }
func (c *colReplaySource) Next() (stream.Element, bool) {
	return stream.Element{}, false
}
func (c *colReplaySource) NextColBatch(int) (*stream.Batch, bool) {
	if c.at >= len(c.batches) {
		return nil, false
	}
	b := c.batches[c.at]
	c.at++
	b.Sel = nil // undo the previous iteration's in-place refinement
	b.Retain()
	return b, c.at < len(c.batches)
}

// transposeElems builds the columnar replay image of elems once, so the
// benchmark measures operator and engine cost, not transposition.
func transposeElems(b *testing.B, sch *tuple.Schema, elems []stream.Element, bs int) []*stream.Batch {
	b.Helper()
	var batches []*stream.Batch
	mk := func() *stream.Batch {
		cb := &stream.Batch{Schema: sch, Ts: make([]int64, 0, bs), Cols: make([][]tuple.Value, sch.Arity())}
		for c := range cb.Cols {
			cb.Cols[c] = make([]tuple.Value, 0, bs)
		}
		return cb
	}
	cur := mk()
	for _, e := range elems {
		cur.AppendRow(e.Tuple)
		if cur.Rows() == bs {
			batches = append(batches, cur)
			cur = mk()
		}
	}
	if cur.Rows() > 0 {
		batches = append(batches, cur)
	}
	return batches
}

// BenchmarkAblationColumnar is the row-vs-columnar ablation (DESIGN.md
// §12): the same pipelines run element-at-a-time through the row engine
// and batch-at-a-time through column vectors with selection-vector
// kernels. "filter" is the 3-way AND selection of the parallel-select
// ablation; "paneagg" chains that filter into a pane-based sliding
// GroupBy, so the columnar lane exercises the kernel, the batch edges,
// and the columnar fold (dense key cache + typed update loops)
// end-to-end. Both lanes replay identical pre-built input.
func BenchmarkAblationColumnar(b *testing.B) {
	// Per-stage input sizes. The filter ablation stays cache-resident
	// (64k rows) so it measures per-row execution cost — the thing the
	// columnar engine changes — not DRAM streaming bandwidth (identical
	// for both lanes). The pane-agg ablation doubles that: its window
	// span (below) then retires panes mid-run, so the fold is measured
	// in steady state (recycled groups) rather than all-warmup.
	const nFilter = 1 << 16
	const nAgg = 1 << 17
	const bs = 256
	sch := tuple.NewSchema("B",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "g", Kind: tuple.KindInt},
		tuple.Field{Name: "v", Kind: tuple.KindFloat},
	)
	elems := make([]stream.Element, nAgg)
	for i := range elems {
		// 256 tuples per tick, 64 groups, v decorrelated from g so the
		// predicates below see per-conjunct (not degenerate) selectivity.
		ts := int64(i) / 256
		v := float64((i*31)%997) / 8
		elems[i] = stream.Tup(tuple.New(ts, tuple.Time(ts), tuple.Int(int64(i%64)), tuple.Float(v)))
	}
	batches := transposeElems(b, sch, elems, bs)
	// mkPred builds the 3-way AND of comparisons the parallel-select
	// ablation uses (compiled fast lane on the row path, refinement
	// kernels on the columnar path). vLo/vHi tune selectivity: the filter
	// ablation keeps few survivors (scan-dominated, the columnar showcase)
	// while the pane-agg ablation keeps most rows so the fold does the
	// work.
	mkPred := func(b *testing.B, vLo, vHi float64) expr.Expr {
		b.Helper()
		p1, err := expr.NewBin(expr.OpGe, expr.MustColumn(sch, "g"), expr.Constant(tuple.Int(8)))
		if err != nil {
			b.Fatal(err)
		}
		p2, err := expr.NewBin(expr.OpLt, expr.MustColumn(sch, "v"), expr.Constant(tuple.Float(vHi)))
		if err != nil {
			b.Fatal(err)
		}
		p3, err := expr.NewBin(expr.OpGe, expr.MustColumn(sch, "v"), expr.Constant(tuple.Float(vLo)))
		if err != nil {
			b.Fatal(err)
		}
		p12, err := expr.NewBin(expr.OpAnd, p1, p2)
		if err != nil {
			b.Fatal(err)
		}
		p, err := expr.NewBin(expr.OpAnd, p12, p3)
		if err != nil {
			b.Fatal(err)
		}
		return p
	}
	mkGroupBy := func(b *testing.B) *agg.GroupBy {
		b.Helper()
		var aggs []agg.Spec
		for _, name := range []string{"sum", "count", "avg"} {
			f, err := agg.Lookup(name, false)
			if err != nil {
				b.Fatal(err)
			}
			s := agg.Spec{Fn: f, Name: name}
			if name != "count" {
				s.Arg = expr.MustColumn(sch, "v")
			}
			aggs = append(aggs, s)
		}
		gb, err := agg.NewGroupBy("q", sch,
			[]expr.Expr{expr.MustColumn(sch, "g")}, []string{"g"},
			aggs, window.Time(256, 64), nil)
		if err != nil {
			b.Fatal(err)
		}
		if !gb.UsesPanes() {
			b.Fatal("pane path not selected")
		}
		return gb
	}
	addSource := func(b *testing.B, g *exec.Graph, columnar bool, n int) int {
		b.Helper()
		if columnar {
			return g.AddSource(&colReplaySource{sch: sch, batches: batches[:n/bs]})
		}
		return g.AddSource(stream.FromElements(sch, elems[:n]...))
	}
	for _, agg := range []bool{false, true} {
		stage := "filter"
		if agg {
			stage = "paneagg"
		}
		for _, columnar := range []bool{false, true} {
			mode := "row"
			if columnar {
				mode = "columnar"
			}
			nElems := nFilter
			if agg {
				nElems = nAgg
			}
			b.Run(stage+"/"+mode, func(b *testing.B) {
				var n int64
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					g := exec.NewGraph(func(stream.Element) { n++ })
					src := addSource(b, g, columnar, nElems)
					// ~10% survivors for the pure filter (scan-dominated);
					// ~80% feeding the aggregate, so the pane-agg ablation
					// is dominated by the fold it measures.
					vLo, vHi := 2.0, 15.0
					if agg {
						vLo, vHi = 2.0, 120.0
					}
					sel, err := ops.NewSelect("sel", sch, mkPred(b, vLo, vHi), -1, 1)
					if err != nil {
						b.Fatal(err)
					}
					last := g.AddOp(sel)
					if err := g.ConnectSource(src, last, 0); err != nil {
						b.Fatal(err)
					}
					if agg {
						gid := g.AddOp(mkGroupBy(b))
						if err := g.Connect(last, gid, 0); err != nil {
							b.Fatal(err)
						}
						last = gid
					}
					if err := g.ConnectOut(last); err != nil {
						b.Fatal(err)
					}
					opts := exec.RunOptions{BatchSize: bs, Columnar: columnar, ChanCap: 64}
					if columnar {
						// Columnar-aware sink: survivors are counted off
						// the batch, never materialized into rows.
						opts.ColSink = func(cb *stream.Batch) { n += int64(cb.N()) }
					}
					g.RunWith(-1, opts)
				}
				b.StopTimer()
				b.ReportMetric(float64(nElems)*float64(b.N)/b.Elapsed().Seconds(), "elems/s")
				if n == 0 {
					b.Fatal("no output")
				}
			})
		}
	}
}

// BenchmarkAblationJoinInvalidation compares the lazy ring-buffer
// invalidation against a worst-case small window, isolating expiry
// cost (DESIGN.md: "hash windows with lazy invalidation").
func BenchmarkAblationJoinInvalidation(b *testing.B) {
	for _, cfg := range []struct {
		name string
		win  int64
	}{
		{"wideWindow", 1 << 40},
		{"narrowWindow", 1000},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			a := tuple.NewSchema("A",
				tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
				tuple.Field{Name: "k", Kind: tuple.KindInt})
			bb := tuple.NewSchema("B",
				tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
				tuple.Field{Name: "k", Kind: tuple.KindInt})
			j, err := ops.NewWindowJoin("j", a, bb,
				ops.JoinConfig{Window: window.Tumbling(cfg.win), Method: ops.JoinHash, Key: []int{1}},
				ops.JoinConfig{Window: window.Tumbling(cfg.win), Method: ops.JoinHash, Key: []int{1}},
				nil)
			if err != nil {
				b.Fatal(err)
			}
			emit := func(stream.Element) {}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ts := int64(i) * 10
				t := tuple.New(ts, tuple.Time(ts), tuple.Int(int64(i%1000)))
				j.Push(i&1, stream.Tup(t), emit)
			}
		})
	}
}

// BenchmarkAblationPartitionedJoin measures the key-partitioned join
// lane (DESIGN.md §9): an indexed-nested-loop window join behind the
// hash-split router at P ∈ {1, 2, 4, 8} partitions over key domains of
// 4, 1k, and 1M. INL probe cost is O(live window), and partitioning
// shrinks each replica's window to ~1/P of the serial one, so the
// speedup is algorithmic — probe-work reduction, not core count — and
// shows on a single-core host. keys4 caps the win at 4 partitions
// (hash skew: only 4 distinct routes exist); keys1M measures router and
// merge overhead when matches are rare.
func BenchmarkAblationPartitionedJoin(b *testing.B) {
	const nPerPort = 8192
	a := tuple.NewSchema("A",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "k", Kind: tuple.KindInt})
	bb := tuple.NewSchema("B",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "k", Kind: tuple.KindInt})
	mkElems := func(keys, salt int64) ([]stream.Element, []stream.Element) {
		lr := [2][]stream.Element{}
		for port := int64(0); port < 2; port++ {
			elems := make([]stream.Element, nPerPort)
			for i := range elems {
				ts := 2*int64(i) + port
				k := (int64(i)*2654435761 + salt + port) % keys
				elems[i] = stream.Tup(tuple.New(ts, tuple.Time(ts), tuple.Int(k)))
			}
			lr[port] = elems
		}
		return lr[0], lr[1]
	}
	for _, keys := range []int64{4, 1000, 1000000} {
		// Each side holds ~rng/2 live tuples at steady state. The
		// low-cardinality cell gets a smaller window: with 4 keys every
		// probe matches ~1/4 of the window, so output volume (not probe
		// work) is quadratic in window size and would swamp the cell.
		rng := int64(4096)
		if keys == 4 {
			rng = 1024
		}
		left, right := mkElems(keys, keys)
		for _, p := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("keys%d/P%d", keys, p), func(b *testing.B) {
				var n int64
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					g := exec.NewGraph(func(stream.Element) { n++ })
					sl := g.AddSource(stream.FromElements(a, left...))
					sr := g.AddSource(stream.FromElements(bb, right...))
					j, err := ops.NewWindowJoin("j", a, bb,
						ops.JoinConfig{Window: window.Time(rng, rng), Method: ops.JoinNestedLoop, Key: []int{1}},
						ops.JoinConfig{Window: window.Time(rng, rng), Method: ops.JoinNestedLoop, Key: []int{1}},
						nil)
					if err != nil {
						b.Fatal(err)
					}
					id := g.AddOp(j)
					if err := g.ConnectSource(sl, id, 0); err != nil {
						b.Fatal(err)
					}
					if err := g.ConnectSource(sr, id, 1); err != nil {
						b.Fatal(err)
					}
					if err := g.ConnectOut(id); err != nil {
						b.Fatal(err)
					}
					g.RunWith(-1, exec.RunOptions{
						BatchSize: 64, Parallelism: p,
						ForceParallelism: true, PartitionJoins: true,
					})
				}
				b.StopTimer()
				b.ReportMetric(float64(2*nPerPort)*float64(b.N)/b.Elapsed().Seconds(), "elems/s")
				if keys < 1000000 && n == 0 {
					b.Fatal("no join output")
				}
			})
		}
	}
}

// BenchmarkAblationColumnarJoin reruns the partitioned-join workload
// with hash windows on both sides and toggles RunOptions.Columnar:
// same hash-split router and seq-restoring merge, but the columnar
// lane hashes the key column once per batch at the splitter, routes
// row-index spans that share the retained batch, bulk-inserts run
// segments into the window, and probes whole selection vectors with
// column-wise gather into arena batches (DESIGN.md §13). Sources
// replay pre-transposed batches and the sink is columnar-aware, so
// the row/columnar delta is engine + operator cost, not
// transposition. The win is per-tuple overhead elimination — hashing,
// routing, window insert, probe dispatch — so it compounds with
// partition width instead of competing with it.
func BenchmarkAblationColumnarJoin(b *testing.B) {
	const nPerPort = 8192
	const bs = 64
	a := tuple.NewSchema("A",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "k", Kind: tuple.KindInt})
	bb := tuple.NewSchema("B",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "k", Kind: tuple.KindInt})
	mkElems := func(keys, salt int64) ([]stream.Element, []stream.Element) {
		lr := [2][]stream.Element{}
		for port := int64(0); port < 2; port++ {
			elems := make([]stream.Element, nPerPort)
			for i := range elems {
				ts := 2*int64(i) + port
				k := (int64(i)*2654435761 + salt + port) % keys
				elems[i] = stream.Tup(tuple.New(ts, tuple.Time(ts), tuple.Int(k)))
			}
			lr[port] = elems
		}
		return lr[0], lr[1]
	}
	for _, keys := range []int64{4, 1000, 1000000} {
		// Same cardinality grid and window sizing as the row-lane
		// partitioned-join ablation so the two benches stay comparable.
		rng := int64(4096)
		if keys == 4 {
			rng = 1024
		}
		left, right := mkElems(keys, keys)
		lb := transposeElems(b, a, left, bs)
		rb := transposeElems(b, bb, right, bs)
		for _, p := range []int{1, 2, 4} {
			for _, columnar := range []bool{false, true} {
				mode := "row"
				if columnar {
					mode = "columnar"
				}
				b.Run(fmt.Sprintf("keys%d/P%d/%s", keys, p, mode), func(b *testing.B) {
					var n int64
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						g := exec.NewGraph(func(stream.Element) { n++ })
						var sl, sr int
						if columnar {
							sl = g.AddSource(&colReplaySource{sch: a, batches: lb})
							sr = g.AddSource(&colReplaySource{sch: bb, batches: rb})
						} else {
							sl = g.AddSource(stream.FromElements(a, left...))
							sr = g.AddSource(stream.FromElements(bb, right...))
						}
						j, err := ops.NewWindowJoin("j", a, bb,
							ops.JoinConfig{Window: window.Time(rng, rng), Method: ops.JoinHash, Key: []int{1}},
							ops.JoinConfig{Window: window.Time(rng, rng), Method: ops.JoinHash, Key: []int{1}},
							nil)
						if err != nil {
							b.Fatal(err)
						}
						id := g.AddOp(j)
						if err := g.ConnectSource(sl, id, 0); err != nil {
							b.Fatal(err)
						}
						if err := g.ConnectSource(sr, id, 1); err != nil {
							b.Fatal(err)
						}
						if err := g.ConnectOut(id); err != nil {
							b.Fatal(err)
						}
						opts := exec.RunOptions{
							BatchSize: bs, Parallelism: p,
							ForceParallelism: true, PartitionJoins: true,
							Columnar: columnar,
						}
						if columnar {
							// Columnar-aware sink: join output batches are
							// counted off the batch, never materialized.
							opts.ColSink = func(cb *stream.Batch) { n += int64(cb.N()) }
						}
						g.RunWith(-1, opts)
					}
					b.StopTimer()
					b.ReportMetric(float64(2*nPerPort)*float64(b.N)/b.Elapsed().Seconds(), "elems/s")
					if keys < 1000000 && n == 0 {
						b.Fatal("no join output")
					}
				})
			}
		}
	}
}

// BenchmarkAblationPanes compares pane-based sliding-window aggregation
// against the legacy per-window path on a range = 64·slide sliding
// sum/count/avg (DESIGN.md §8). Legacy folds every tuple into all 64
// covering windows; panes fold it into exactly one slide-aligned pane
// and merge fixed-arity partials at window close, so both per-tuple
// time and allocations should drop by more than an order of magnitude.
func BenchmarkAblationPanes(b *testing.B) {
	const groups = 64
	sch := tuple.NewSchema("B",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "g", Kind: tuple.KindInt},
		tuple.Field{Name: "v", Kind: tuple.KindFloat},
	)
	mk := func(b *testing.B, panes bool) *agg.GroupBy {
		b.Helper()
		var aggs []agg.Spec
		for _, name := range []string{"sum", "count", "avg"} {
			f, err := agg.Lookup(name, false)
			if err != nil {
				b.Fatal(err)
			}
			s := agg.Spec{Fn: f, Name: name}
			if name != "count" {
				s.Arg = expr.MustColumn(sch, "v")
			}
			aggs = append(aggs, s)
		}
		gb, err := agg.NewGroupBy("q", sch,
			[]expr.Expr{expr.MustColumn(sch, "g")}, []string{"g"},
			aggs, window.Time(640, 10), nil)
		if err != nil {
			b.Fatal(err)
		}
		if !panes {
			gb.DisablePanes()
		} else if !gb.UsesPanes() {
			b.Fatal("pane path not selected")
		}
		return gb
	}
	// Pre-built stream so the measurement is operator cost, not tuple
	// construction: 64 tuples per time tick (packet-rate density), so
	// each slide-10 pane aggregates 640 tuples — the regime pane
	// sharing is built for.
	const nElems = 1 << 19
	elems := make([]stream.Element, nElems)
	for i := range elems {
		ts := int64(i) / 64
		elems[i] = stream.Tup(tuple.New(ts, tuple.Time(ts), tuple.Int(int64(i%groups)), tuple.Float(float64(i%64)/4)))
	}
	for _, panes := range []bool{true, false} {
		name := "legacy"
		if panes {
			name = "panes"
		}
		b.Run(name, func(b *testing.B) {
			emit := func(stream.Element) {}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gb := mk(b, panes)
				for _, e := range elems {
					gb.Push(0, e, emit)
				}
				gb.Flush(emit)
			}
			b.ReportMetric(float64(nElems)*float64(b.N)/b.Elapsed().Seconds(), "elems/s")
		})
	}
}

// BenchmarkAblationQuantiles compares GK against reservoir sampling at
// the same memory budget (DESIGN.md: "GK quantiles vs sampling").
func BenchmarkAblationQuantiles(b *testing.B) {
	b.Run("gk", func(b *testing.B) {
		gk := synopsis.NewGK(0.01)
		for i := 0; i < b.N; i++ {
			gk.Add(float64(i % 100000))
		}
		if _, ok := gk.Query(0.5); !ok && b.N > 0 {
			b.Fatal("no quantile")
		}
	})
	b.Run("reservoir", func(b *testing.B) {
		r := synopsis.NewReservoir(1000, 1)
		for i := 0; i < b.N; i++ {
			r.Add(tuple.Float(float64(i % 100000)))
		}
		if _, ok := r.EstimateQuantile(0.5); !ok && b.N > 0 {
			b.Fatal("no quantile")
		}
	})
}

// BenchmarkAblationAdaptive prices the adaptive controller against the
// static engine on the same below-capacity pipelines: an unpaced replay
// keeps every queue near-full or near-empty by engine rhythm alone, the
// controller ticks at its default cadence, and — because adaptation
// only reads atomics the engine already maintains and the workloads
// never cross the shedding threshold — the two configurations should
// sit within noise of each other. The adaptive join cell additionally
// carries the live-rescale machinery (quiesce/snapshot/restore protocol
// compiled in, splitter re-checking wantP per message), so it bounds
// the standing tax of making a key-partitioned replica set re-splittable.
func BenchmarkAblationAdaptive(b *testing.B) {
	const nElems = 200000
	sch, elems := replayElems(b, nElems)
	// Three select cells: static p=1 (the plain lane), static p=2 (the
	// replication lane the adaptive pool ceiling also engages), and
	// adaptive with ceiling 2. The controller's own tax is the
	// static-p2 -> adaptive delta; the static-p1 -> static-p2 delta is
	// the pre-existing price of the seq-tagged replication merge.
	for _, cell := range []struct {
		mode  string
		par   int
		adapt bool
	}{{"static", 1, false}, {"static-p2", 2, false}, {"adaptive", 1, true}} {
		cell := cell
		b.Run("select/"+cell.mode, func(b *testing.B) {
			var n int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g := replayFilterGraph(b, sch, elems, func(stream.Element) { n++ })
				opts := exec.RunOptions{BatchSize: 64,
					Parallelism: cell.par, ForceParallelism: true}
				if cell.adapt {
					opts.Adapt = &exec.AdaptConfig{MaxParallelism: 2}
				}
				g.RunWith(-1, opts)
			}
			b.StopTimer()
			b.ReportMetric(float64(nElems)*float64(b.N)/b.Elapsed().Seconds(), "elems/s")
			if n == 0 {
				b.Fatal("no output")
			}
		})
	}

	const nPerPort = 8192
	a := tuple.NewSchema("A",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "k", Kind: tuple.KindInt})
	bb := tuple.NewSchema("B",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "k", Kind: tuple.KindInt})
	mk := func(port int64) []stream.Element {
		elems := make([]stream.Element, nPerPort)
		for i := range elems {
			ts := 2*int64(i) + port
			k := (int64(i)*2654435761 + port) % 1000
			elems[i] = stream.Tup(tuple.New(ts, tuple.Time(ts), tuple.Int(k)))
		}
		return elems
	}
	left, right := mk(0), mk(1)
	for _, adaptive := range []bool{false, true} {
		mode := "static"
		if adaptive {
			mode = "adaptive"
		}
		b.Run("partjoin/"+mode, func(b *testing.B) {
			var n int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g := exec.NewGraph(func(stream.Element) { n++ })
				sl := g.AddSource(stream.FromElements(a, left...))
				sr := g.AddSource(stream.FromElements(bb, right...))
				j, err := ops.NewWindowJoin("j", a, bb,
					ops.JoinConfig{Window: window.Time(4096, 4096), Method: ops.JoinHash, Key: []int{1}},
					ops.JoinConfig{Window: window.Time(4096, 4096), Method: ops.JoinHash, Key: []int{1}},
					nil)
				if err != nil {
					b.Fatal(err)
				}
				id := g.AddOp(j)
				if err := g.ConnectSource(sl, id, 0); err != nil {
					b.Fatal(err)
				}
				if err := g.ConnectSource(sr, id, 1); err != nil {
					b.Fatal(err)
				}
				if err := g.ConnectOut(id); err != nil {
					b.Fatal(err)
				}
				opts := exec.RunOptions{
					BatchSize: 64, Parallelism: 2,
					ForceParallelism: true, PartitionJoins: true,
				}
				if adaptive {
					opts.Parallelism = 1
					opts.Adapt = &exec.AdaptConfig{MaxParallelism: 2}
				}
				g.RunWith(-1, opts)
			}
			b.StopTimer()
			b.ReportMetric(float64(2*nPerPort)*float64(b.N)/b.Elapsed().Seconds(), "elems/s")
			if n == 0 {
				b.Fatal("no join output")
			}
		})
	}
}

// sharedSelectPreds builds the standing-query predicate fleet for the
// shared-execution ablation: nq queries drawn round-robin from 32
// distinct templates over the traffic schema — simple comparisons,
// mirrored spellings, and AND-conjunctions sharing a leading conjunct
// so the shared node's canonical dedupe and prefix factoring both
// engage. Canonical conjunct order is lexical by rendering, so the
// common conjuncts are chosen to sort before their per-query
// refinements ("(length > 900)" < "(time > ...)"); refinement
// timestamps are spread across [ts0, ts1], the trace's span.
func sharedSelectPreds(b *testing.B, sch *tuple.Schema, nq int, ts0, ts1 int64) []expr.Expr {
	b.Helper()
	length := expr.MustColumn(sch, "length")
	tcol := expr.MustColumn(sch, "time")
	lit := func(n int64) expr.Expr { return expr.Constant(tuple.Int(n)) }
	bin := func(op expr.BinOp, l, r expr.Expr) expr.Expr {
		e, err := expr.NewBin(op, l, r)
		if err != nil {
			b.Fatal(err)
		}
		return e
	}
	templates := make([]expr.Expr, 32)
	for k := range templates {
		th := int64(100 + 40*k)
		after := bin(expr.OpGt, tcol,
			expr.Constant(tuple.Time(ts0+(ts1-ts0)*int64(k/4+1)/10)))
		switch k % 4 {
		case 0:
			templates[k] = bin(expr.OpGt, length, lit(th))
		case 1:
			templates[k] = bin(expr.OpLt, lit(th), length) // mirrored spelling
		case 2: // 8 queries sharing leading conjunct length > 900
			templates[k] = bin(expr.OpAnd, bin(expr.OpGt, length, lit(900)), after)
		default: // 8 queries sharing leading conjunct length < 300
			templates[k] = bin(expr.OpAnd, bin(expr.OpLt, length, lit(300)), after)
		}
	}
	preds := make([]expr.Expr, nq)
	for q := range preds {
		preds[q] = templates[q%len(templates)]
	}
	return preds
}

// BenchmarkAblationSharedSelect is the multi-query sharing ablation
// (DESIGN.md §15): nq standing queries over one traffic stream, run
// unshared (one dedicated Select per query re-scanning every batch) vs
// shared (one SharedSelect evaluating each distinct predicate once per
// batch and fanning out selection-vector views). Per-query sinks just
// count matches, so the measurement isolates predicate evaluation and
// fan-out — the costs sharing changes. Throughput is source elems/s:
// at high query counts the shared lane's near-flat per-batch cost is
// the headline.
func BenchmarkAblationSharedSelect(b *testing.B) {
	const nElems = 1 << 15
	const bs = 256
	sch, raw := replayElems(b, nElems)
	elems := raw[:0:0]
	for _, e := range raw {
		if !e.IsPunct() {
			elems = append(elems, e)
		}
	}
	batches := transposeElems(b, sch, elems, bs)
	ts0, ts1 := elems[0].Ts(), elems[len(elems)-1].Ts()
	for _, nq := range []int{1, 16, 256, 1024} {
		preds := sharedSelectPreds(b, sch, nq, ts0, ts1)
		b.Run(fmt.Sprintf("queries=%d/unshared", nq), func(b *testing.B) {
			sels := make([]*ops.Select, nq)
			for q, p := range preds {
				sel, err := ops.NewSelect(fmt.Sprintf("q%d", q), sch, p, -1, 1)
				if err != nil {
					b.Fatal(err)
				}
				sels[q] = sel
			}
			var n int64
			emitB := func(ob *stream.Batch) {
				n += int64(ob.N())
				ob.Release()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, cb := range batches {
					for _, sel := range sels {
						cb.Retain()
						sel.ProcessBatch(0, cb, emitB, nil)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(elems))*float64(b.N)/b.Elapsed().Seconds(), "elems/s")
			if n == 0 {
				b.Fatal("no output")
			}
		})
		b.Run(fmt.Sprintf("queries=%d/shared", nq), func(b *testing.B) {
			ss := share.NewSharedSelect("ss", sch)
			var n int64
			for _, p := range preds {
				_, err := ss.RegisterSinks(p, share.Sinks{
					Row: func(stream.Element) { n++ },
					Col: func(ob *stream.Batch) { n += int64(ob.N()) },
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, cb := range batches {
					cb.Retain()
					ss.ProcessBatch(0, cb, nil, nil)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(elems))*float64(b.N)/b.Elapsed().Seconds(), "elems/s")
			if n == 0 {
				b.Fatal("no output")
			}
		})
	}
}
