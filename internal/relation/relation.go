// Package relation is the DBMS level of the tutorial's 3-level
// architecture (slides 14-15): resource-rich persistent relations that
// data stream systems populate, used to "audit query results of the
// data stream system" and to answer one-time queries.
//
// It also provides CQL's relation-to-stream operators (slide 25's
// "queries produce relations or streams"): IStream, DStream and RStream
// turn a changing relation back into a stream.
package relation

import (
	"fmt"
	"sort"
	"sync"

	"streamdb/internal/expr"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

// Table is an in-memory relation: a bag of tuples under a schema.
type Table struct {
	mu     sync.RWMutex
	schema *tuple.Schema
	rows   []*tuple.Tuple
}

// NewTable builds an empty table.
func NewTable(schema *tuple.Schema) *Table { return &Table{schema: schema} }

// Schema returns the table's schema.
func (t *Table) Schema() *tuple.Schema { return t.schema }

// Insert appends one row after arity checking.
func (t *Table) Insert(row *tuple.Tuple) error {
	if len(row.Vals) != t.schema.Arity() {
		return fmt.Errorf("relation: arity %d != schema %d", len(row.Vals), t.schema.Arity())
	}
	t.mu.Lock()
	t.rows = append(t.rows, row)
	t.mu.Unlock()
	return nil
}

// Len returns the row count.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Scan visits every row; the visit function must not retain the slice.
func (t *Table) Scan(visit func(*tuple.Tuple) bool) {
	t.mu.RLock()
	rows := t.rows
	t.mu.RUnlock()
	for _, r := range rows {
		if !visit(r) {
			return
		}
	}
}

// Select returns rows satisfying the predicate (one-time query).
func (t *Table) Select(pred expr.Expr) []*tuple.Tuple {
	var out []*tuple.Tuple
	t.Scan(func(r *tuple.Tuple) bool {
		if pred == nil || expr.EvalBool(pred, r) {
			out = append(out, r)
		}
		return true
	})
	return out
}

// Delete removes rows satisfying the predicate, returning how many.
func (t *Table) Delete(pred expr.Expr) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	kept := t.rows[:0]
	removed := 0
	for _, r := range t.rows {
		if pred != nil && expr.EvalBool(pred, r) {
			removed++
		} else {
			kept = append(kept, r)
		}
	}
	for i := len(kept); i < len(t.rows); i++ {
		t.rows[i] = nil
	}
	t.rows = kept
	return removed
}

// Source exposes a snapshot of the table as a finite, timestamp-ordered
// stream: the bridge that lets one-time (transient) queries run through
// the same query processor (slide 19: data stream systems "support
// persistent and transient queries").
func (t *Table) Source() stream.Source {
	t.mu.RLock()
	snap := make([]*tuple.Tuple, len(t.rows))
	copy(snap, t.rows)
	t.mu.RUnlock()
	sort.SliceStable(snap, func(i, j int) bool { return snap[i].Ts < snap[j].Ts })
	return stream.FromTuples(t.schema, snap...)
}

// Sink returns an Emit-compatible function appending stream results to
// the table: the stream-in relation-out shape of Hancock (slide 18) and
// the "identify what data to populate in database" role of slide 15.
func (t *Table) Sink() func(stream.Element) {
	return func(e stream.Element) {
		if !e.IsPunct() {
			_ = t.Insert(e.Tuple)
		}
	}
}

// DB is a named collection of tables.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewDB builds an empty database.
func NewDB() *DB { return &DB{tables: make(map[string]*Table)} }

// Create adds a table; it errors if the name exists.
func (db *DB) Create(name string, schema *tuple.Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; ok {
		return nil, fmt.Errorf("relation: table %q exists", name)
	}
	t := NewTable(schema)
	db.tables[name] = t
	return t, nil
}

// Table fetches a table by name.
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	return t, ok
}

// Names lists table names sorted.
func (db *DB) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// StreamKind selects a relation-to-stream operator (CQL).
type StreamKind int

// Relation-to-stream kinds: IStream emits rows inserted since the last
// snapshot, DStream rows deleted, RStream the full relation each tick.
const (
	IStream StreamKind = iota
	DStream
	RStream
)

// Streamer converts successive relation snapshots into a stream
// following CQL's multiset-difference semantics.
type Streamer struct {
	kind StreamKind
	prev map[string]*fpEntry
}

type fpEntry struct {
	count  int
	sample *tuple.Tuple
}

// NewStreamer builds a relation-to-stream converter.
func NewStreamer(kind StreamKind) *Streamer {
	return &Streamer{kind: kind, prev: map[string]*fpEntry{}}
}

func fingerprint(t *tuple.Tuple) string {
	// Fingerprint on values only: the multiset identity must ignore the
	// tuple's position so re-snapshotted rows compare equal.
	c := *t
	c.Ts = 0
	return c.String()
}

// Snapshot observes the relation at time ts and returns the stream
// elements the operator emits for that instant: inserted rows
// (IStream), deleted rows (DStream), or all rows (RStream).
func (s *Streamer) Snapshot(ts int64, tbl *Table) []stream.Element {
	cur := map[string]*fpEntry{}
	var rows []*tuple.Tuple
	tbl.Scan(func(r *tuple.Tuple) bool {
		fp := fingerprint(r)
		e := cur[fp]
		if e == nil {
			e = &fpEntry{sample: r}
			cur[fp] = e
		}
		e.count++
		rows = append(rows, r)
		return true
	})
	emitAt := func(r *tuple.Tuple) stream.Element {
		c := r.Clone()
		c.Ts = ts
		return stream.Tup(c)
	}
	var out []stream.Element
	switch s.kind {
	case RStream:
		for _, r := range rows {
			out = append(out, emitAt(r))
		}
	case IStream:
		for fp, e := range cur {
			prevN := 0
			if p := s.prev[fp]; p != nil {
				prevN = p.count
			}
			for i := 0; i < e.count-prevN; i++ {
				out = append(out, emitAt(e.sample))
			}
		}
	case DStream:
		for fp, p := range s.prev {
			curN := 0
			if e := cur[fp]; e != nil {
				curN = e.count
			}
			for i := 0; i < p.count-curN; i++ {
				out = append(out, emitAt(p.sample))
			}
		}
	}
	s.prev = cur
	return out
}
