// Package window implements the window mechanisms of slides 26-28: the
// device that "extracts a finite relation from an infinite stream".
//
// Three families are provided:
//
//   - Spec: the declarative description attached to a stream in a query
//     ("Traffic [RANGE 60 SECONDS SLIDE 10 SECONDS]").
//   - Buffer: the physical tuple store used by window joins — insertion
//     at the tail, invalidation of expired tuples (slide 32).
//   - Assigner: the mapping tuple -> window instances used by windowed
//     group-by aggregation; covers sliding, shifting (tumbling) and
//     agglomerative (landmark) windows (slide 27).
//
// Punctuation-based windows (slide 28) are data-dependent and handled by
// PunctBuffer.
package window

import (
	"fmt"

	"streamdb/internal/tuple"
)

// Kind selects the window family.
type Kind uint8

// Window kinds. KindTime windows are defined on the ordering attribute;
// KindRows on tuple counts; KindPunct on punctuation marks (slide 26:
// "windows based on ordering attributes, on tuple counts, on explicit
// markers").
const (
	KindNone Kind = iota
	KindTime
	KindRows
	KindPunct
)

// Spec declares a window over a stream.
type Spec struct {
	Kind Kind
	// Range is the window length: timestamp units for KindTime, tuple
	// count for KindRows.
	Range int64
	// Slide is the emission period. Slide == Range gives a shifting
	// (tumbling) window; Slide < Range a sliding window. Ignored for
	// KindRows buffers used by joins.
	Slide int64
	// Landmark marks an agglomerative window: it grows from the stream
	// start (or last reset) and Range is ignored (slide 27).
	Landmark bool
	// PartitionBy optionally partitions the window by key attributes
	// before applying Range/Slide ("variants: partitioning tuples in a
	// window", slide 26).
	PartitionBy []string
}

// Time returns a sliding time window spec.
func Time(rng, slide int64) Spec { return Spec{Kind: KindTime, Range: rng, Slide: slide} }

// Tumbling returns a shifting (tumbling) time window spec.
func Tumbling(rng int64) Spec { return Spec{Kind: KindTime, Range: rng, Slide: rng} }

// Rows returns a tuple-count window spec.
func Rows(n int64) Spec { return Spec{Kind: KindRows, Range: n, Slide: 1} }

// Landmark returns an agglomerative window spec that emits every slide.
func Landmark(slide int64) Spec { return Spec{Kind: KindTime, Slide: slide, Landmark: true} }

// Punctuated returns a punctuation-based window spec.
func Punctuated() Spec { return Spec{Kind: KindPunct} }

// Validate checks internal consistency.
func (s Spec) Validate() error {
	switch s.Kind {
	case KindNone, KindPunct:
		return nil
	case KindTime:
		if s.Landmark {
			if s.Slide <= 0 {
				return fmt.Errorf("window: landmark window needs positive slide")
			}
			return nil
		}
		if s.Range <= 0 || s.Slide <= 0 {
			return fmt.Errorf("window: time window needs positive range and slide")
		}
		if s.Slide > s.Range {
			return fmt.Errorf("window: slide %d exceeds range %d (tuples would be dropped)", s.Slide, s.Range)
		}
	case KindRows:
		if s.Range <= 0 {
			return fmt.Errorf("window: row window needs positive count")
		}
	}
	return nil
}

// String renders the spec in query syntax.
func (s Spec) String() string {
	switch {
	case s.Kind == KindNone:
		return "[UNBOUNDED]"
	case s.Kind == KindPunct:
		return "[PUNCTUATED]"
	case s.Kind == KindRows:
		return fmt.Sprintf("[ROWS %d]", s.Range)
	case s.Landmark:
		return fmt.Sprintf("[LANDMARK SLIDE %d]", s.Slide)
	case s.Slide == s.Range:
		return fmt.Sprintf("[RANGE %d]", s.Range)
	default:
		return fmt.Sprintf("[RANGE %d SLIDE %d]", s.Range, s.Slide)
	}
}

// Buffer is the physical window state used by join operators: tuples
// enter at the tail and are invalidated when out of scope [KNV03]
// (slide 32: "invalidate all expired tuples in A's window").
type Buffer interface {
	// Insert appends a tuple (timestamps must be non-decreasing).
	Insert(t *tuple.Tuple)
	// Invalidate drops tuples no longer in scope at time now and
	// returns how many were dropped.
	Invalidate(now int64) int
	// Each visits live tuples oldest-first; return false to stop.
	Each(f func(*tuple.Tuple) bool)
	// Len reports the number of live tuples.
	Len() int
	// MemSize reports the approximate bytes held.
	MemSize() int
}

// NewBuffer builds the buffer matching a spec. Landmark and punctuated
// specs keep everything until explicitly reset; KindNone is unbounded.
func NewBuffer(s Spec) Buffer {
	switch s.Kind {
	case KindRows:
		return NewRowBuffer(int(s.Range))
	case KindTime:
		if s.Landmark {
			return NewTimeBuffer(0)
		}
		return NewTimeBuffer(s.Range)
	default:
		return NewTimeBuffer(0)
	}
}

// TimeBuffer holds tuples within Range of the current time. Range 0
// means unbounded (landmark). Implementation: a growable ring so that
// both Insert and Invalidate are amortized O(1) — the "lazy
// invalidation" design the DESIGN.md ablation refers to.
type TimeBuffer struct {
	rng   int64
	ring  []*tuple.Tuple
	head  int // index of oldest
	count int
	bytes int
}

// NewTimeBuffer builds a time-range buffer.
func NewTimeBuffer(rng int64) *TimeBuffer {
	return &TimeBuffer{rng: rng, ring: make([]*tuple.Tuple, 16)}
}

// Insert implements Buffer.
func (b *TimeBuffer) Insert(t *tuple.Tuple) {
	if b.count == len(b.ring) {
		grown := make([]*tuple.Tuple, 2*len(b.ring))
		for i := 0; i < b.count; i++ {
			grown[i] = b.ring[(b.head+i)%len(b.ring)]
		}
		b.ring = grown
		b.head = 0
	}
	b.ring[(b.head+b.count)%len(b.ring)] = t
	b.count++
	b.bytes += t.MemSize()
}

// Invalidate implements Buffer: drops tuples with Ts <= now - Range.
func (b *TimeBuffer) Invalidate(now int64) int {
	if b.rng <= 0 {
		return 0
	}
	cutoff := now - b.rng
	dropped := 0
	for b.count > 0 {
		old := b.ring[b.head]
		if old.Ts > cutoff {
			break
		}
		b.bytes -= old.MemSize()
		b.ring[b.head] = nil
		b.head = (b.head + 1) % len(b.ring)
		b.count--
		dropped++
	}
	return dropped
}

// Each implements Buffer.
func (b *TimeBuffer) Each(f func(*tuple.Tuple) bool) {
	for i := 0; i < b.count; i++ {
		if !f(b.ring[(b.head+i)%len(b.ring)]) {
			return
		}
	}
}

// Len implements Buffer.
func (b *TimeBuffer) Len() int { return b.count }

// MemSize implements Buffer.
func (b *TimeBuffer) MemSize() int { return b.bytes }

// Reset empties the buffer (landmark window reset).
func (b *TimeBuffer) Reset() {
	for i := range b.ring {
		b.ring[i] = nil
	}
	b.head, b.count, b.bytes = 0, 0, 0
}

// RowBuffer keeps the most recent N tuples (count-based window).
type RowBuffer struct {
	ring  []*tuple.Tuple
	head  int
	count int
	bytes int
}

// NewRowBuffer builds an N-row buffer.
func NewRowBuffer(n int) *RowBuffer {
	if n <= 0 {
		n = 1
	}
	return &RowBuffer{ring: make([]*tuple.Tuple, n)}
}

// Insert implements Buffer; inserting into a full buffer evicts the
// oldest tuple.
func (b *RowBuffer) Insert(t *tuple.Tuple) {
	if b.count == len(b.ring) {
		old := b.ring[b.head]
		b.bytes -= old.MemSize()
		b.ring[b.head] = t
		b.head = (b.head + 1) % len(b.ring)
	} else {
		b.ring[(b.head+b.count)%len(b.ring)] = t
		b.count++
	}
	b.bytes += t.MemSize()
}

// Invalidate implements Buffer; row windows expire only by arrival, so
// this is a no-op returning 0.
func (b *RowBuffer) Invalidate(int64) int { return 0 }

// Each implements Buffer.
func (b *RowBuffer) Each(f func(*tuple.Tuple) bool) {
	for i := 0; i < b.count; i++ {
		if !f(b.ring[(b.head+i)%len(b.ring)]) {
			return
		}
	}
}

// Len implements Buffer.
func (b *RowBuffer) Len() int { return b.count }

// MemSize implements Buffer.
func (b *RowBuffer) MemSize() int { return b.bytes }
