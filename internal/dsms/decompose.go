package dsms

import (
	"fmt"

	"streamdb/internal/agg"
	"streamdb/internal/expr"
	"streamdb/internal/ops"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

// Decomposition splits one aggregate query across the 3-level
// architecture (slide 54: "which sub-queries are evaluated by which
// level?"): each low-level node runs a filter plus a bounded-slot
// partial aggregation (data reduction at the observation point,
// slide 15); the high-level node merges the partial records into final
// results.
type Decomposition struct {
	filter     expr.Expr
	groupBy    []expr.Expr
	groupNames []string
	aggs       []agg.Spec
	slots      int
	bucketLen  int64
	inSchema   *tuple.Schema
	proto      *agg.PartialAgg // prototype for schema derivation
}

// NewDecomposition validates and builds a decomposition. filter may be
// nil. Every aggregate must be distributive or algebraic — the same
// restriction Gigascope's LFTA imposes (slide 37).
func NewDecomposition(in *tuple.Schema, filter expr.Expr, groupBy []expr.Expr, groupNames []string, aggs []agg.Spec, slots int, bucketLen int64) (*Decomposition, error) {
	if filter != nil && filter.Kind() != tuple.KindBool {
		return nil, fmt.Errorf("dsms: filter must be boolean")
	}
	proto, err := agg.NewPartialAgg("lfta", in, groupBy, groupNames, aggs, slots, bucketLen)
	if err != nil {
		return nil, err
	}
	return &Decomposition{
		filter: filter, groupBy: groupBy, groupNames: groupNames,
		aggs: aggs, slots: slots, bucketLen: bucketLen, inSchema: in,
		proto: proto,
	}, nil
}

// PartialSchema is the wire schema between levels.
func (d *Decomposition) PartialSchema() *tuple.Schema { return d.proto.OutSchema() }

// NewLowLevel builds one observation point's operator pipeline: it
// consumes raw tuples and emits partial-aggregate records.
type LowLevel struct {
	filter  *ops.Select
	partial *agg.PartialAgg
	// Columnar scratch: survivors of the filter kernel are gathered one
	// row at a time into colRow for the partial fold.
	colRow  tuple.Tuple
	colVals []tuple.Value
	// Reduction statistics.
	RawIn       int64
	PartialsOut int64
}

// NewLowLevel instantiates the low-level pipeline (one per node).
func (d *Decomposition) NewLowLevel(name string) (*LowLevel, error) {
	partial, err := agg.NewPartialAgg(name, d.inSchema, d.groupBy, d.groupNames, d.aggs, d.slots, d.bucketLen)
	if err != nil {
		return nil, err
	}
	ll := &LowLevel{partial: partial}
	if d.filter != nil {
		sel, err := ops.NewSelect(name+"_filter", d.inSchema, d.filter, -1, 1)
		if err != nil {
			return nil, err
		}
		ll.filter = sel
	}
	return ll, nil
}

// Push processes one raw element, forwarding partial records to emit.
func (l *LowLevel) Push(e stream.Element, emit ops.Emit) {
	l.RawIn++
	count := func(out stream.Element) {
		l.PartialsOut++
		emit(out)
	}
	if l.filter != nil {
		l.filter.Push(0, e, func(passed stream.Element) {
			l.partial.Push(0, passed, count)
		})
		return
	}
	l.partial.Push(0, e, count)
}

// PushBatch processes a column batch of raw tuples: the filter runs its
// selection-vector kernel straight over the columns (rejected tuples are
// never materialized as rows), and each survivor is gathered into a
// scratch row for the partial fold. Consumes the caller's batch
// reference; partial records leave through emit. Equivalent to calling
// Push for every row in order.
func (l *LowLevel) PushBatch(b *stream.Batch, emit ops.Emit) {
	l.RawIn += int64(b.N())
	count := func(out stream.Element) {
		l.PartialsOut++
		emit(out)
	}
	fold := func(fb *stream.Batch) {
		if cap(l.colVals) < len(fb.Cols) {
			l.colVals = make([]tuple.Value, len(fb.Cols))
		}
		l.colRow.Vals = l.colVals[:len(fb.Cols)]
		row := func(r int) {
			fb.GatherRow(r, &l.colRow)
			// PartialAgg copies keys and aggregate inputs by value, so
			// the scratch row can be reused immediately.
			l.partial.Push(0, stream.Tup(&l.colRow), count)
		}
		if fb.Sel != nil {
			for _, r := range fb.Sel {
				row(int(r))
			}
		} else {
			for r := 0; r < fb.Rows(); r++ {
				row(r)
			}
		}
		fb.Release()
	}
	if l.filter != nil {
		l.filter.ProcessBatch(0, b, fold, count)
		return
	}
	fold(b)
}

// Flush drains remaining partial state.
func (l *LowLevel) Flush(emit ops.Emit) {
	l.partial.Flush(func(out stream.Element) {
		l.PartialsOut++
		emit(out)
	})
}

// ReductionFactor reports raw tuples per emitted partial record: the
// data reduction the architecture exists to provide (slide 14
// "(voluminous) streams-in, (data reduced) streams-out").
func (l *LowLevel) ReductionFactor() float64 {
	if l.PartialsOut == 0 {
		return 0
	}
	return float64(l.RawIn) / float64(l.PartialsOut)
}

// NewHighLevel builds the merging aggregator all nodes feed.
func (d *Decomposition) NewHighLevel(name string) (*agg.FinalAgg, error) {
	return agg.NewFinalAgg(name, d.proto)
}
