package ckpt

import "streamdb/internal/stream"

// RecoverySink suppresses the sink outputs a restarted query re-emits.
// A checkpoint records OutSeq, the number of outputs delivered before
// the cut; if the process died after delivering more (outputs race
// ahead of checkpoints), replay regenerates the overlap. Wrapping the
// real sink in a RecoverySink with skip = delivered - OutSeq turns
// at-least-once replay into exactly-once delivery: the overlap is
// counted as duplicates and dropped, everything after flows through.
//
// This requires the replayed output order to match the original run —
// true for the serial engine and for single-output-writer concurrent
// graphs, whose sink order is deterministic.
type RecoverySink struct {
	sink      func(stream.Element)
	skip      int64
	dupes     int64
	delivered int64
}

// NewRecoverySink wraps sink, dropping the first skip non-barrier
// outputs.
func NewRecoverySink(sink func(stream.Element), skip int64) *RecoverySink {
	if skip < 0 {
		skip = 0
	}
	return &RecoverySink{sink: sink, skip: skip}
}

// Push implements the sink: replayed duplicates are dropped and
// counted, fresh outputs forwarded.
func (r *RecoverySink) Push(e stream.Element) {
	if r.skip > 0 {
		r.skip--
		r.dupes++
		return
	}
	r.delivered++
	r.sink(e)
}

// Dupes reports suppressed duplicate outputs.
func (r *RecoverySink) Dupes() int64 { return r.dupes }

// Delivered reports outputs forwarded to the real sink.
func (r *RecoverySink) Delivered() int64 { return r.delivered }
