package stream

import (
	"math/rand"
	"testing"
	"testing/quick"

	"streamdb/internal/tuple"
)

var ts = tuple.NewSchema("S",
	tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
	tuple.Field{Name: "v", Kind: tuple.KindInt},
)

func el(t int64, v int64) Element {
	return Tup(tuple.New(t, tuple.Time(t), tuple.Int(v)))
}

func TestElementBasics(t *testing.T) {
	e := el(5, 1)
	if e.IsPunct() || e.Ts() != 5 {
		t.Errorf("element = %v", e)
	}
	p := Punct(ProgressPunct(7, 0, tuple.Time(7)))
	if !p.IsPunct() || p.Ts() != 7 {
		t.Errorf("punct = %v", p)
	}
}

func TestPunctuationMatching(t *testing.T) {
	p := ProgressPunct(10, 0, tuple.Time(10))
	if !p.Matches(tuple.New(5, tuple.Time(5), tuple.Int(1))) {
		t.Error("progress punct must cover ts=5")
	}
	if p.Matches(tuple.New(11, tuple.Time(11), tuple.Int(1))) {
		t.Error("progress punct must not cover ts=11")
	}
	g := EndGroupPunct(10, 1, tuple.Int(42))
	if !g.Matches(tuple.New(99, tuple.Time(99), tuple.Int(42))) {
		t.Error("group punct must cover key=42")
	}
	if g.Matches(tuple.New(99, tuple.Time(99), tuple.Int(43))) {
		t.Error("group punct must not cover key=43")
	}
	r := &Punctuation{Ts: 0, Fields: map[int]Pattern{1: {Kind: PatRange, Val: tuple.Int(1), Hi: tuple.Int(3)}}}
	if !r.Matches(tuple.New(0, tuple.Time(0), tuple.Int(2))) || r.Matches(tuple.New(0, tuple.Time(0), tuple.Int(4))) {
		t.Error("range pattern broken")
	}
	w := &Punctuation{Ts: 0, Fields: map[int]Pattern{1: {Kind: PatWildcard}}}
	if !w.Matches(tuple.New(0, tuple.Time(0), tuple.Int(999))) {
		t.Error("wildcard pattern broken")
	}
	// Out-of-range field index never matches.
	oob := &Punctuation{Ts: 0, Fields: map[int]Pattern{9: {Kind: PatWildcard}}}
	if oob.Matches(tuple.New(0, tuple.Time(0), tuple.Int(1))) {
		t.Error("out-of-range pattern matched")
	}
}

func TestSliceSource(t *testing.T) {
	s := FromElements(ts, el(1, 10), el(2, 20))
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	got := Drain(s, -1)
	if len(got) != 2 || got[0].Ts() != 1 || got[1].Ts() != 2 {
		t.Errorf("Drain = %v", got)
	}
	if _, ok := s.Next(); ok {
		t.Error("exhausted source returned an element")
	}
	s.Reset()
	if e, ok := s.Next(); !ok || e.Ts() != 1 {
		t.Error("Reset did not rewind")
	}
}

func TestLimitAndDrainTuples(t *testing.T) {
	s := FromElements(ts, el(1, 1), Punct(ProgressPunct(1, 0, tuple.Time(1))), el(2, 2), el(3, 3))
	if got := Drain(Limit(FromElements(ts, el(1, 1), el(2, 2), el(3, 3)), 2), -1); len(got) != 2 {
		t.Errorf("Limit drain = %d", len(got))
	}
	tups := DrainTuples(s)
	if len(tups) != 3 {
		t.Errorf("DrainTuples = %d, want 3 (punct dropped)", len(tups))
	}
}

func TestMergeOrders(t *testing.T) {
	a := FromElements(ts, el(1, 1), el(4, 4), el(9, 9))
	b := FromElements(ts, el(2, 2), el(3, 3), el(10, 10))
	got := Drain(Merge(a, b), -1)
	if len(got) != 6 {
		t.Fatalf("merge len = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Ts() < got[i-1].Ts() {
			t.Fatalf("merge out of order at %d: %v", i, got)
		}
	}
}

func TestMergeTieBreaksBySourceIndex(t *testing.T) {
	a := FromElements(ts, el(5, 100))
	b := FromElements(ts, el(5, 200))
	got := Drain(Merge(a, b), -1)
	if v, _ := got[0].Tuple.Vals[1].AsInt(); v != 100 {
		t.Errorf("tie broke to source 1 first: %v", got)
	}
}

func TestMergeProperty(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		mk := func(zs []uint16) Source {
			elems := make([]Element, len(zs))
			sorted := append([]uint16(nil), zs...)
			for i := 1; i < len(sorted); i++ {
				for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
					sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
				}
			}
			for i, z := range sorted {
				elems[i] = el(int64(z), int64(z))
			}
			return FromElements(ts, elems...)
		}
		got := Drain(Merge(mk(xs), mk(ys)), -1)
		if len(got) != len(xs)+len(ys) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].Ts() < got[i-1].Ts() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUniformArrival(t *testing.T) {
	a := UniformArrival{Rate: 10}
	t1 := a.Next(0)
	t2 := a.Next(t1)
	if t1 != Second/10 || t2 != 2*Second/10 {
		t.Errorf("arrivals = %d, %d", t1, t2)
	}
}

func TestPoissonArrivalMeanRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := PoissonArrival{Rate: 100, Rng: rng}
	var now int64
	n := 10000
	for i := 0; i < n; i++ {
		now = a.Next(now)
	}
	rate := float64(n) / (float64(now) / float64(Second))
	if rate < 90 || rate > 110 {
		t.Errorf("poisson empirical rate = %.1f, want ~100", rate)
	}
}

func TestBurstyArrival(t *testing.T) {
	b := &BurstyArrival{OnRate: 1000, OnLen: Second, OffLen: 9 * Second}
	var now int64
	var stamps []int64
	for i := 0; i < 3000; i++ {
		now = b.Next(now)
		stamps = append(stamps, now)
	}
	// Arrivals must be strictly increasing and exhibit gaps >= OffLen.
	gaps := 0
	for i := 1; i < len(stamps); i++ {
		if stamps[i] <= stamps[i-1] {
			t.Fatalf("non-increasing arrivals at %d", i)
		}
		if stamps[i]-stamps[i-1] >= 9*Second {
			gaps++
		}
	}
	if gaps == 0 {
		t.Error("bursty arrival produced no off-period gaps")
	}
}

func TestGeneratorOrderingAttribute(t *testing.T) {
	g := NewTrafficStream(7, 1000, 100)
	prev := int64(-1)
	for i := 0; i < 500; i++ {
		e, ok := g.Next()
		if !ok {
			t.Fatal("generator ended")
		}
		if e.Ts() <= prev {
			t.Fatalf("timestamps not increasing: %d after %d", e.Ts(), prev)
		}
		prev = e.Ts()
		tm, ok := e.Tuple.Vals[0].AsTime()
		if !ok || tm != e.Ts() {
			t.Fatal("ordering attribute diverges from tuple Ts")
		}
		if p, _ := e.Tuple.Vals[3].AsUint(); p != 6 && p != 17 {
			t.Fatalf("protocol = %d", p)
		}
		if l, _ := e.Tuple.Vals[4].AsUint(); l < 40 || l > 1500 {
			t.Fatalf("length = %d", l)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewTrafficStream(42, 1000, 50)
	b := NewTrafficStream(42, 1000, 50)
	for i := 0; i < 100; i++ {
		ea, _ := a.Next()
		eb, _ := b.Next()
		if ea.String() != eb.String() {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, ea, eb)
		}
	}
}

func TestMeasurementStream(t *testing.T) {
	g := NewMeasurementStream(3, 4, 100)
	seen := map[int64]bool{}
	for i := 0; i < 400; i++ {
		e, _ := g.Next()
		id, _ := e.Tuple.Vals[1].AsInt()
		if id < 0 || id > 3 {
			t.Fatalf("sensor id = %d", id)
		}
		seen[id] = true
	}
	if len(seen) != 4 {
		t.Errorf("only %d sensors observed", len(seen))
	}
}

func TestStatsAndTap(t *testing.T) {
	var st Stats
	src := Tap(FromElements(ts, el(0, 1), el(Second, 2), el(2*Second, 3)), &st)
	Drain(src, -1)
	if st.Count != 3 {
		t.Errorf("Count = %d", st.Count)
	}
	if r := st.Rate(); r < 0.99 || r > 1.01 {
		t.Errorf("Rate = %v, want ~1", r)
	}
	var empty Stats
	if empty.Rate() != 0 {
		t.Error("empty Rate != 0")
	}
}

func TestWithProgressPunctuation(t *testing.T) {
	src := FromElements(ts, el(1, 1), el(Second+1, 2), el(2*Second+2, 3))
	out := Drain(WithProgressPunctuation(src, Second), -1)
	var puncts, tuples int
	for _, e := range out {
		if e.IsPunct() {
			puncts++
			// Punctuation must precede any tuple with a later ts.
		} else {
			tuples++
		}
	}
	if tuples != 3 || puncts != 2 {
		t.Errorf("tuples=%d puncts=%d, want 3 and 2", tuples, puncts)
	}
	// Punctuations are emitted before the tuple that triggered them.
	for i, e := range out {
		if e.IsPunct() && i+1 < len(out) && out[i+1].Ts() < e.Ts() {
			t.Errorf("punct at %d emitted after covered tuple", i)
		}
	}
}

func TestValueGens(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	u := UniformInt(rng, 10, 20)
	for i := 0; i < 100; i++ {
		v, _ := u().AsInt()
		if v < 10 || v > 20 {
			t.Fatalf("uniform out of range: %d", v)
		}
	}
	z := ZipfInt(rng, 1.5, 1000)
	counts := map[int64]int{}
	for i := 0; i < 5000; i++ {
		v, _ := z().AsInt()
		counts[v]++
	}
	if counts[0] < counts[500] {
		t.Error("zipf not skewed toward small values")
	}
	ln := LognormalFloat(rng, 0, 0.5)
	for i := 0; i < 100; i++ {
		v, _ := ln().AsFloat()
		if v <= 0 {
			t.Fatal("lognormal <= 0")
		}
	}
	if s, _ := ConstStr("x")().AsString(); s != "x" {
		t.Error("ConstStr broken")
	}
}
