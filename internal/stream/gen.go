package stream

import (
	"math"
	"math/rand"

	"streamdb/internal/tuple"
)

// This file holds the synthetic workload generators that substitute for
// the tutorial's proprietary feeds (DESIGN.md §2). All generators are
// deterministic given a seed, and emit virtual-nanosecond timestamps so
// experiments replay identically.

// Second is one virtual second in timestamp units.
const Second = int64(1e9)

// Arrival models an arrival process: Next returns the timestamp of the
// following arrival given the previous one.
type Arrival interface {
	Next(prev int64) int64
}

// UniformArrival spaces arrivals exactly 1/Rate seconds apart.
type UniformArrival struct {
	Rate float64 // tuples per second
}

// Next implements Arrival.
func (u UniformArrival) Next(prev int64) int64 {
	return prev + int64(float64(Second)/u.Rate)
}

// PoissonArrival draws exponential inter-arrival times with the given
// mean rate.
type PoissonArrival struct {
	Rate float64
	Rng  *rand.Rand
}

// Next implements Arrival.
func (p PoissonArrival) Next(prev int64) int64 {
	gap := p.Rng.ExpFloat64() / p.Rate
	return prev + int64(gap*float64(Second)) + 1
}

// BurstyArrival alternates between an "on" period at OnRate and a silent
// "off" period, the bursty regime that motivates memory-based
// optimization (slide 42: "when streams are bursty, tuple backlog
// between operators may increase").
type BurstyArrival struct {
	OnRate   float64 // tuples/sec while bursting
	OnLen    int64   // burst length in timestamp units
	OffLen   int64   // gap length in timestamp units
	phaseEnd int64
	inBurst  bool
	initDone bool
}

// Next implements Arrival.
func (b *BurstyArrival) Next(prev int64) int64 {
	if !b.initDone {
		b.inBurst = true
		b.phaseEnd = prev + b.OnLen
		b.initDone = true
	}
	next := prev + int64(float64(Second)/b.OnRate)
	for next >= b.phaseEnd {
		if b.inBurst {
			next = b.phaseEnd + b.OffLen
			b.phaseEnd += b.OffLen
			b.inBurst = false
		} else {
			b.inBurst = true
			b.phaseEnd = next + b.OnLen
		}
	}
	return next
}

// ValueGen produces one attribute value per call.
type ValueGen func() tuple.Value

// UniformInt yields integers uniform in [lo, hi].
func UniformInt(rng *rand.Rand, lo, hi int64) ValueGen {
	return func() tuple.Value { return tuple.Int(lo + rng.Int63n(hi-lo+1)) }
}

// ZipfInt yields integers 0..n-1 with Zipf skew s (>1). Heavy-hitter
// workloads (slide 38's "having count(*) > φ|S|") use high skew.
func ZipfInt(rng *rand.Rand, s float64, n uint64) ValueGen {
	z := rand.NewZipf(rng, s, 1, n-1)
	return func() tuple.Value { return tuple.Int(int64(z.Uint64())) }
}

// ZipfIP yields IPv4 addresses from a Zipf-weighted pool, modelling the
// skewed address mix of backbone traffic.
func ZipfIP(rng *rand.Rand, s float64, pool int) ValueGen {
	z := rand.NewZipf(rng, s, 1, uint64(pool-1))
	base := uint32(10 << 24) // 10.0.0.0/8
	return func() tuple.Value {
		return tuple.IP(base + uint32(z.Uint64()))
	}
}

// NormalFloat yields Gaussian floats.
func NormalFloat(rng *rand.Rand, mean, stddev float64) ValueGen {
	return func() tuple.Value { return tuple.Float(mean + stddev*rng.NormFloat64()) }
}

// LognormalFloat yields lognormal floats (RTT-like latency values).
func LognormalFloat(rng *rand.Rand, mu, sigma float64) ValueGen {
	return func() tuple.Value { return tuple.Float(math.Exp(mu + sigma*rng.NormFloat64())) }
}

// ConstStr yields a fixed string.
func ConstStr(s string) ValueGen {
	v := tuple.String(s)
	return func() tuple.Value { return v }
}

// Generator synthesizes an unbounded stream: each tuple's timestamp comes
// from the arrival process and each attribute from its ValueGen. The
// ordering attribute (if the schema declares one) is overwritten with the
// arrival timestamp, keeping the stream consistent with its declared
// order.
type Generator struct {
	schema  *tuple.Schema
	arrival Arrival
	gens    []ValueGen
	now     int64
	ordIdx  int
}

// NewGenerator builds a generator. gens must have one entry per schema
// field; entries may be nil for the ordering attribute.
func NewGenerator(schema *tuple.Schema, arrival Arrival, gens []ValueGen) *Generator {
	if len(gens) != schema.Arity() {
		panic("stream: generator arity mismatch")
	}
	return &Generator{schema: schema, arrival: arrival, gens: gens, ordIdx: schema.OrderingIndex()}
}

// Schema implements Source.
func (g *Generator) Schema() *tuple.Schema { return g.schema }

// Next implements Source.
func (g *Generator) Next() (Element, bool) {
	g.now = g.arrival.Next(g.now)
	vals := make([]tuple.Value, len(g.gens))
	for i, gen := range g.gens {
		if i == g.ordIdx || gen == nil {
			vals[i] = tuple.Time(g.now)
			continue
		}
		vals[i] = gen()
	}
	return Tup(tuple.New(g.now, vals...)), true
}

// MeasurementSchema is the generic sensor/measurement stream schema
// (slide 3: "measurement data streams monitor evolution of entity
// states").
func MeasurementSchema(name string) *tuple.Schema {
	return tuple.NewSchema(name,
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "sensor", Kind: tuple.KindInt, Bounded: true},
		tuple.Field{Name: "value", Kind: tuple.KindFloat},
	)
}

// NewMeasurementStream generates readings from nsensors sensors at the
// aggregate rate, values drifting as independent random walks.
func NewMeasurementStream(seed int64, nsensors int, rate float64) *Generator {
	rng := rand.New(rand.NewSource(seed))
	state := make([]float64, nsensors)
	for i := range state {
		state[i] = 20 + 5*rng.NormFloat64()
	}
	schema := MeasurementSchema("Measurements")
	which := 0
	return NewGenerator(schema, PoissonArrival{Rate: rate, Rng: rng}, []ValueGen{
		nil,
		func() tuple.Value { which = rng.Intn(nsensors); return tuple.Int(int64(which)) },
		func() tuple.Value {
			state[which] += 0.1 * rng.NormFloat64()
			return tuple.Float(state[which])
		},
	})
}

// TrafficSchema is the running example schema of slides 29-36:
// Traffic(time, srcIP, destIP, protocol, length).
func TrafficSchema(name string) *tuple.Schema {
	return tuple.NewSchema(name,
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "srcIP", Kind: tuple.KindIP},
		tuple.Field{Name: "destIP", Kind: tuple.KindIP},
		tuple.Field{Name: "protocol", Kind: tuple.KindUint, Bounded: true},
		tuple.Field{Name: "length", Kind: tuple.KindUint},
	)
}

// NewTrafficStream generates the Traffic stream: Zipf addresses, TCP/UDP
// mix, packet lengths in [40, 1500].
func NewTrafficStream(seed int64, rate float64, addrPool int) *Generator {
	rng := rand.New(rand.NewSource(seed))
	src := ZipfIP(rng, 1.2, addrPool)
	dst := ZipfIP(rng, 1.2, addrPool)
	return NewGenerator(TrafficSchema("Traffic"), PoissonArrival{Rate: rate, Rng: rng}, []ValueGen{
		nil,
		src,
		dst,
		func() tuple.Value {
			if rng.Float64() < 0.8 {
				return tuple.Uint(6) // TCP
			}
			return tuple.Uint(17) // UDP
		},
		func() tuple.Value { return tuple.Uint(uint64(40 + rng.Intn(1461))) },
	})
}

// WithProgressPunctuation interleaves progress punctuations on the
// ordering attribute every interval of stream time, enabling blocking
// operators downstream (slide 28).
func WithProgressPunctuation(src Source, interval int64) Source {
	ordIdx := src.Schema().OrderingIndex()
	var pending *Element
	nextPunct := interval
	return &FuncSource{Sch: src.Schema(), Fn: func() (Element, bool) {
		if pending != nil {
			e := *pending
			pending = nil
			return e, true
		}
		e, ok := src.Next()
		if !ok {
			return Element{}, false
		}
		if !e.IsPunct() && e.Ts() >= nextPunct {
			p := Punct(ProgressPunct(nextPunct, ordIdx, tuple.Time(nextPunct)))
			pending = &e
			nextPunct += interval
			return p, true
		}
		return e, ok
	}}
}
