package query

import (
	"fmt"
	"strings"

	"streamdb/internal/window"
)

// The AST mirrors the query surface before schema binding. Expressions
// are untyped here; the analyzer binds them against stream schemas into
// internal/expr trees.

// Node is an unbound expression node.
type Node interface{ render(b *strings.Builder) }

// Ident is a (possibly qualified) column reference.
type Ident struct {
	Qualifier string // stream name or alias; empty if unqualified
	Name      string
}

func (n *Ident) render(b *strings.Builder) {
	if n.Qualifier != "" {
		b.WriteString(n.Qualifier)
		b.WriteByte('.')
	}
	b.WriteString(n.Name)
}

// NumLit is an integer or float literal.
type NumLit struct {
	Text    string
	IsFloat bool
}

func (n *NumLit) render(b *strings.Builder) { b.WriteString(n.Text) }

// StrLit is a string literal.
type StrLit struct{ Val string }

func (n *StrLit) render(b *strings.Builder) { fmt.Fprintf(b, "'%s'", n.Val) }

// BoolLit is TRUE/FALSE.
type BoolLit struct{ Val bool }

func (n *BoolLit) render(b *strings.Builder) { fmt.Fprintf(b, "%v", n.Val) }

// NullLit is NULL.
type NullLit struct{}

func (n *NullLit) render(b *strings.Builder) { b.WriteString("NULL") }

// BinExpr is a binary operation; Op uses SQL spellings.
type BinExpr struct {
	Op   string
	L, R Node
}

func (n *BinExpr) render(b *strings.Builder) {
	b.WriteByte('(')
	n.L.render(b)
	b.WriteByte(' ')
	b.WriteString(n.Op)
	b.WriteByte(' ')
	n.R.render(b)
	b.WriteByte(')')
}

// NotExpr is boolean negation.
type NotExpr struct{ E Node }

func (n *NotExpr) render(b *strings.Builder) {
	b.WriteString("NOT ")
	n.E.render(b)
}

// NegExpr is numeric negation.
type NegExpr struct{ E Node }

func (n *NegExpr) render(b *strings.Builder) {
	b.WriteByte('-')
	n.E.render(b)
}

// IsNullExpr is IS [NOT] NULL.
type IsNullExpr struct {
	E      Node
	Negate bool
}

func (n *IsNullExpr) render(b *strings.Builder) {
	n.E.render(b)
	if n.Negate {
		b.WriteString(" IS NOT NULL")
	} else {
		b.WriteString(" IS NULL")
	}
}

// CallExpr is a function or aggregate application; Star marks agg(*).
type CallExpr struct {
	Name string
	Args []Node
	Star bool
}

func (n *CallExpr) render(b *strings.Builder) {
	b.WriteString(n.Name)
	b.WriteByte('(')
	if n.Star {
		b.WriteByte('*')
	}
	for i, a := range n.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		a.render(b)
	}
	b.WriteByte(')')
}

// Render prints a node as query text.
func Render(n Node) string {
	var b strings.Builder
	n.render(&b)
	return b.String()
}

// SelectItem is one SELECT-list entry.
type SelectItem struct {
	Expr Node
	As   string
	Star bool // bare * select-list
}

// FromItem is one stream reference with its window.
type FromItem struct {
	Stream string
	Alias  string
	Window window.Spec
	// HasWindow distinguishes an explicit [UNBOUNDED] from no spec.
	HasWindow bool
}

// Name returns the binding name (alias or stream name).
func (f FromItem) Name() string {
	if f.Alias != "" {
		return f.Alias
	}
	return f.Stream
}

// GroupItem is one GROUP BY entry, optionally named (GSQL's
// "group by time/60 as tb", slide 37).
type GroupItem struct {
	Expr Node
	As   string
}

// Query is a parsed statement.
type Query struct {
	Distinct bool
	Select   []SelectItem
	From     []FromItem
	Where    Node // nil if absent
	GroupBy  []GroupItem
	Having   Node // nil if absent
	Approx   bool // WITH APPROX: use synopsis-backed holistic aggregates
	Text     string
}
