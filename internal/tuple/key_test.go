package tuple

import "testing"

// TestKey1CrossKindAgreement: the fast single-column lane must hash
// numerically equal Int/Uint/Time values identically, because a join
// may carry the key as KindInt on one side and KindTime on the other
// and the two ports share one hash space.
func TestKey1CrossKindAgreement(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 42, 1 << 40, -1 << 40} {
		a := New(0, Int(v)).Key1(0)
		b := New(0, Time(v)).Key1(0)
		if a != b {
			t.Errorf("Key1(Int(%d)) = %x, Key1(Time(%d)) = %x", v, a, v, b)
		}
		if v >= 0 {
			c := New(0, Uint(uint64(v))).Key1(0)
			if a != c {
				t.Errorf("Key1(Int(%d)) = %x, Key1(Uint(%d)) = %x", v, a, v, c)
			}
		}
	}
}

// TestKey1Avalanche: sequential key values must not land in sequential
// hash values — the fast lane feeds modulo-style bucket selection, so a
// raw identity hash would degenerate into per-bucket key clustering.
func TestKey1Avalanche(t *testing.T) {
	const n = 1 << 12
	seen := make(map[uint64]int64, n)
	lowBits := make(map[uint64]int, 8)
	for i := int64(0); i < n; i++ {
		h := New(0, Int(i)).Key1(0)
		if prev, dup := seen[h]; dup {
			t.Fatalf("Key1 collision between Int(%d) and Int(%d)", prev, i)
		}
		seen[h] = i
		lowBits[h%8]++
	}
	for b := uint64(0); b < 8; b++ {
		// A perfectly even split is n/8 = 512; allow a generous band.
		if c := lowBits[b]; c < n/16 || c > n/4 {
			t.Errorf("bucket %d holds %d of %d sequential keys: low bits not mixed", b, c, n)
		}
	}
}

// TestFastKeyKindGates pins the kinds admitted to the fast lane. Float
// must stay out (Float(2) equals Int(2) but stores an IEEE payload);
// String and Bytes hash by content, not payload.
func TestFastKeyKindGates(t *testing.T) {
	for _, k := range []Kind{KindInt, KindUint, KindTime} {
		if !FastKeyKind(k) {
			t.Errorf("FastKeyKind(%v) = false, want true", k)
		}
	}
	for _, k := range []Kind{KindFloat, KindString, KindBool, KindIP, KindNull} {
		if FastKeyKind(k) {
			t.Errorf("FastKeyKind(%v) = true, want false", k)
		}
	}
}
