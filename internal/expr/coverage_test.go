package expr

import (
	"testing"

	"streamdb/internal/tuple"
)

func TestNodeMetadata(t *testing.T) {
	a := MustColumn(testSchema, "a")
	flag := MustColumn(testSchema, "flag")

	not := &Not{E: flag}
	if not.Kind() != tuple.KindBool || not.String() != "NOT flag" {
		t.Errorf("Not metadata: %v %q", not.Kind(), not.String())
	}
	if cols := not.Columns(nil); len(cols) != 1 || cols[0] != 4 {
		t.Errorf("Not.Columns = %v", cols)
	}

	neg := &Neg{E: a}
	if neg.Kind() != tuple.KindInt || neg.String() != "-a" {
		t.Errorf("Neg int metadata: %v %q", neg.Kind(), neg.String())
	}
	negf := &Neg{E: MustColumn(testSchema, "b")}
	if negf.Kind() != tuple.KindFloat {
		t.Errorf("Neg float kind = %v", negf.Kind())
	}
	if cols := neg.Columns(nil); len(cols) != 1 || cols[0] != 1 {
		t.Errorf("Neg.Columns = %v", cols)
	}

	isn := &IsNull{E: a}
	if isn.Kind() != tuple.KindBool || isn.String() != "a IS NULL" {
		t.Errorf("IsNull metadata: %v %q", isn.Kind(), isn.String())
	}
	isnn := &IsNull{E: a, Negate: true}
	if isnn.String() != "a IS NOT NULL" {
		t.Errorf("IsNull negate string = %q", isnn.String())
	}
	if cols := isn.Columns(nil); len(cols) != 1 {
		t.Errorf("IsNull.Columns = %v", cols)
	}

	lit := Constant(tuple.Int(5))
	if cols := lit.Columns(nil); len(cols) != 0 {
		t.Errorf("Lit.Columns = %v", cols)
	}

	call, err := NewCall("contains", MustColumn(testSchema, "s"), Constant(tuple.String("x")))
	if err != nil {
		t.Fatal(err)
	}
	if cols := call.Columns(nil); len(cols) != 1 || cols[0] != 3 {
		t.Errorf("Call.Columns = %v", cols)
	}
}

func TestMustColumnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustColumn did not panic on a bad name")
		}
	}()
	MustColumn(testSchema, "nosuchcolumn")
}

func TestEvalEdgeCases(t *testing.T) {
	tup := row(0, 4, 2.5, "", true)
	a := MustColumn(testSchema, "a")
	b := MustColumn(testSchema, "b")

	// Float modulo and float division by zero.
	mod, _ := NewBin(expBinOpMod(), a, b)
	if v := mod.Eval(tup); !v.Equal(tuple.Float(0)) {
		t.Errorf("4 %% 2.5 (int mod) = %v", v)
	}
	divz, _ := NewBin(OpDiv, a, Constant(tuple.Float(0)))
	if v := divz.Eval(tup); !v.IsNull() {
		t.Errorf("float div by zero = %v, want NULL", v)
	}
	modz, _ := NewBin(OpMod, a, Constant(tuple.Float(0)))
	if v := modz.Eval(tup); !v.IsNull() {
		t.Errorf("float mod by zero = %v, want NULL", v)
	}
	// Neg of a non-numeric value is NULL.
	negs := &Neg{E: Constant(tuple.String("x"))}
	if v := negs.Eval(tup); !v.IsNull() {
		t.Errorf("neg of string = %v", v)
	}
	// Not of a non-boolean is NULL.
	nots := &Not{E: Constant(tuple.Null)}
	if v := nots.Eval(tup); !v.IsNull() {
		t.Errorf("NOT NULL = %v", v)
	}
	// Float comparison branches.
	lt, _ := NewBin(OpLt, b, Constant(tuple.Float(3)))
	if !EvalBool(lt, tup) {
		t.Error("2.5 < 3 false")
	}
	ge, _ := NewBin(OpGe, b, b)
	if !EvalBool(ge, tup) {
		t.Error("b >= b false")
	}
}

// expBinOpMod avoids a typo-prone constant reference in the test above.
func expBinOpMod() BinOp { return OpMod }

func TestMax64(t *testing.T) {
	if max64(3, 5) != 5 || max64(5, 3) != 5 {
		t.Error("max64 broken")
	}
}

func TestTbFunctionZeroWidth(t *testing.T) {
	c, err := NewCall("tb", Constant(tuple.Int(100)), Constant(tuple.Int(0)))
	if err != nil {
		t.Fatal(err)
	}
	if v := c.Eval(nil); !v.IsNull() {
		t.Errorf("tb with zero width = %v, want NULL", v)
	}
}

func TestFloorAndCoalesceAllNull(t *testing.T) {
	fl, _ := NewCall("floor", Constant(tuple.String("x")))
	if v := fl.Eval(nil); !v.IsNull() {
		t.Errorf("floor of string = %v", v)
	}
	co, _ := NewCall("coalesce", Constant(tuple.Null), Constant(tuple.Null))
	if v := co.Eval(nil); !v.IsNull() {
		t.Errorf("coalesce of NULLs = %v", v)
	}
}
