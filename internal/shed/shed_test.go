package shed

import (
	"math"
	"testing"

	"streamdb/internal/expr"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

var sch = tuple.NewSchema("S",
	tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
	tuple.Field{Name: "v", Kind: tuple.KindInt},
)

func el(ts, v int64) stream.Element {
	return stream.Tup(tuple.New(ts, tuple.Time(ts), tuple.Int(v)))
}

func TestRandomShedsApproximatelyRate(t *testing.T) {
	r, err := NewRandom("shed", sch, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	passed := 0
	emit := func(stream.Element) { passed++ }
	n := 20000
	for i := 0; i < n; i++ {
		r.Push(0, el(int64(i), int64(i)), emit)
	}
	got := 1 - float64(passed)/float64(n)
	if math.Abs(got-0.3) > 0.02 {
		t.Errorf("empirical drop rate = %v, want ~0.3", got)
	}
	if r.Dropped() != int64(n-passed) {
		t.Errorf("Dropped = %d, want %d", r.Dropped(), n-passed)
	}
}

func TestRandomZeroAndFullRates(t *testing.T) {
	r, _ := NewRandom("shed", sch, 0, 1)
	passed := 0
	emit := func(stream.Element) { passed++ }
	for i := 0; i < 100; i++ {
		r.Push(0, el(int64(i), 0), emit)
	}
	if passed != 100 {
		t.Errorf("rate 0 dropped tuples: %d", passed)
	}
	r.SetRate(1)
	for i := 0; i < 100; i++ {
		r.Push(0, el(int64(i), 0), emit)
	}
	if passed != 100 {
		t.Errorf("rate 1 passed tuples: %d", passed)
	}
	// SetRate clamps.
	r.SetRate(-5)
	if r.Rate() != 0 {
		t.Error("negative rate not clamped")
	}
	r.SetRate(5)
	if r.Rate() != 1 {
		t.Error("rate > 1 not clamped")
	}
}

func TestRandomPassesPunctuation(t *testing.T) {
	r, _ := NewRandom("shed", sch, 1, 1)
	got := 0
	r.Push(0, stream.Punct(stream.ProgressPunct(1, 0, tuple.Time(1))), func(stream.Element) { got++ })
	if got != 1 {
		t.Error("punctuation shed")
	}
}

func TestRandomValidation(t *testing.T) {
	if _, err := NewRandom("s", sch, -0.1, 1); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := NewRandom("s", sch, 1.1, 1); err == nil {
		t.Error("rate > 1 accepted")
	}
}

func TestSemanticKeepsPredicateTuples(t *testing.T) {
	// Keep v >= 90 (the heavy hitters a fraud query cares about); drop
	// everything else with probability 1.
	keep, _ := expr.NewBin(expr.OpGe, expr.MustColumn(sch, "v"), expr.Constant(tuple.Int(90)))
	s, err := NewSemantic("sem", sch, keep, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	emit := func(e stream.Element) {
		v, _ := e.Tuple.Vals[1].AsInt()
		got = append(got, v)
	}
	for i := int64(0); i < 100; i++ {
		s.Push(0, el(i, i), emit)
	}
	if len(got) != 10 {
		t.Fatalf("kept %d tuples, want 10", len(got))
	}
	for _, v := range got {
		if v < 90 {
			t.Errorf("kept v=%d below threshold", v)
		}
	}
	in, out, kept := s.Stats()
	if in != 100 || out != 10 || kept != 10 {
		t.Errorf("stats = %d, %d, %d", in, out, kept)
	}
}

func TestSemanticPartialRate(t *testing.T) {
	keep, _ := expr.NewBin(expr.OpGe, expr.MustColumn(sch, "v"), expr.Constant(tuple.Int(90)))
	s, _ := NewSemantic("sem", sch, keep, 0.5, 2)
	passed := 0
	emit := func(stream.Element) { passed++ }
	for i := int64(0); i < 10000; i++ {
		s.Push(0, el(i, i%100), emit)
	}
	// 10% always kept + ~45% of the rest.
	frac := float64(passed) / 10000
	if math.Abs(frac-0.55) > 0.02 {
		t.Errorf("pass fraction = %v, want ~0.55", frac)
	}
	s.SetRate(2) // clamps to 1
	s.SetRate(-1)
}

func TestSemanticValidation(t *testing.T) {
	if _, err := NewSemantic("s", sch, nil, 0.5, 1); err == nil {
		t.Error("nil predicate accepted")
	}
	if _, err := NewSemantic("s", sch, expr.MustColumn(sch, "v"), 0.5, 1); err == nil {
		t.Error("non-boolean predicate accepted")
	}
	keep, _ := expr.NewBin(expr.OpGe, expr.MustColumn(sch, "v"), expr.Constant(tuple.Int(0)))
	if _, err := NewSemantic("s", sch, keep, 2, 1); err == nil {
		t.Error("rate > 1 accepted")
	}
}

func TestSemanticPassesPunctuation(t *testing.T) {
	keep, _ := expr.NewBin(expr.OpGe, expr.MustColumn(sch, "v"), expr.Constant(tuple.Int(0)))
	s, _ := NewSemantic("sem", sch, keep, 1, 1)
	got := 0
	s.Push(0, stream.Punct(stream.ProgressPunct(1, 0, tuple.Time(1))), func(stream.Element) { got++ })
	if got != 1 {
		t.Error("punctuation shed")
	}
}

type fakeShedder struct{ rate float64 }

func (f *fakeShedder) SetRate(r float64) { f.rate = r }

func TestControllerTracksOverload(t *testing.T) {
	fs := &fakeShedder{}
	c, err := NewController(fs, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Offered 200/sec against capacity 100: drop half.
	if got := c.Observe(200); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("drop = %v, want 0.5", got)
	}
	if fs.rate != c.Rate() {
		t.Error("controller did not push rate to shedder")
	}
	// Underload: rate falls back to 0.
	if got := c.Observe(50); got != 0 {
		t.Errorf("drop under capacity = %v, want 0", got)
	}
}

func TestControllerSmoothing(t *testing.T) {
	fs := &fakeShedder{}
	c, _ := NewController(fs, 100, 0.5)
	r1 := c.Observe(200) // target 0.5, smoothed: 0.25
	if math.Abs(r1-0.25) > 1e-9 {
		t.Errorf("first observation = %v, want 0.25", r1)
	}
	r2 := c.Observe(200)
	if r2 <= r1 || r2 > 0.5 {
		t.Errorf("smoothing not converging: %v then %v", r1, r2)
	}
}

func TestControllerValidation(t *testing.T) {
	fs := &fakeShedder{}
	if _, err := NewController(fs, 0, 0.5); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewController(fs, 10, 0); err == nil {
		t.Error("zero alpha accepted")
	}
	if _, err := NewController(fs, 10, 1.5); err == nil {
		t.Error("alpha > 1 accepted")
	}
}
