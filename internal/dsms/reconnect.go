package dsms

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"net"
	"sync"
	"time"

	"streamdb/internal/tuple"
)

// ErrWriterClosed is returned by Send after Close.
var ErrWriterClosed = errors.New("dsms: writer closed")

// ReconnectConfig tunes the client side of the session protocol.
type ReconnectConfig struct {
	// StreamID names this stream to the server; reconnects under the
	// same ID resume the same session. Required.
	StreamID string
	// Dial opens a connection to the high-level node. Required.
	Dial func() (net.Conn, error)
	// MaxAttempts bounds consecutive failed connection attempts (and
	// reconnect-retry rounds per operation) before Send/Flush/Close
	// give up. 0 = default 8.
	MaxAttempts int
	// BaseBackoff is the first retry delay; it doubles per attempt up
	// to MaxBackoff, with ±50% jitter. Defaults 10ms / 1s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Timeout is the per-operation write/read deadline. 0 = default 5s.
	Timeout time.Duration
	// AckEvery is the sync cadence: after this many sends the writer
	// flushes, heartbeats, and waits for a cumulative ack — which makes
	// it the bound on the in-memory replay buffer. 0 = default 64.
	AckEvery int
	// Seed drives the backoff jitter (deterministic tests). 0 = 1.
	Seed int64
}

func (c *ReconnectConfig) fill() ReconnectConfig {
	out := *c
	if out.MaxAttempts <= 0 {
		out.MaxAttempts = 8
	}
	if out.BaseBackoff <= 0 {
		out.BaseBackoff = 10 * time.Millisecond
	}
	if out.MaxBackoff <= 0 {
		out.MaxBackoff = time.Second
	}
	if out.Timeout <= 0 {
		out.Timeout = 5 * time.Second
	}
	if out.AckEvery <= 0 {
		out.AckEvery = 64
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	return out
}

// ReconnectStats counts the client's protocol activity.
type ReconnectStats struct {
	Sent        int64 // distinct tuples accepted by Send
	Resent      int64 // replayed frames after reconnects
	Reconnects  int64 // successful re-dials after a failure
	Syncs       int64 // heartbeat/ack round trips
	MaxBuffered int   // high-water mark of the replay buffer
	// RecoveryNanos accumulates time from a detected connection
	// failure to the completed resume handshake; divide by Reconnects
	// for mean recovery latency.
	RecoveryNanos int64
}

type pendingFrame struct {
	seq     uint64
	payload []byte
}

// ReconnectWriter is a fault-tolerant replacement for Writer: it ships
// tuples under the session protocol, rides out connection loss with
// dial retry + exponential backoff + jitter, bounds every network
// operation with a deadline, and keeps unacknowledged frames in a
// bounded replay buffer keyed by sequence number so that after the
// resume handshake the server sees each tuple exactly once.
//
// It is safe for concurrent use; sequence numbers are assigned under
// the writer's lock in Send order.
type ReconnectWriter struct {
	cfg ReconnectConfig

	mu            sync.Mutex
	rng           *rand.Rand
	conn          net.Conn
	bw            *bufio.Writer
	br            *bufio.Reader
	nextSeq       uint64
	buffer        []pendingFrame // unacked frames, ascending seq
	sinceSync     int
	closed        bool
	everConnected bool
	failedAt      time.Time // when the current outage began (zero = healthy)
	stats         ReconnectStats
}

// NewReconnectWriter builds a writer; the first connection is dialed
// lazily on the first Send.
func NewReconnectWriter(cfg ReconnectConfig) (*ReconnectWriter, error) {
	if cfg.StreamID == "" {
		return nil, errors.New("dsms: ReconnectConfig.StreamID required")
	}
	if cfg.Dial == nil {
		return nil, errors.New("dsms: ReconnectConfig.Dial required")
	}
	f := cfg.fill()
	return &ReconnectWriter{cfg: f, rng: rand.New(rand.NewSource(f.Seed))}, nil
}

// Stats returns a snapshot of the client counters.
func (w *ReconnectWriter) Stats() ReconnectStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// Buffered reports unacknowledged frames currently held for replay.
func (w *ReconnectWriter) Buffered() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.buffer)
}

// Send transmits one tuple, transparently reconnecting and replaying on
// failure. It returns an error only when connection attempts are
// exhausted (the link is down for good) or the writer is closed.
func (w *ReconnectWriter) Send(t *tuple.Tuple) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrWriterClosed
	}
	w.nextSeq++
	seq := w.nextSeq
	payload := tuple.AppendEncode(nil, t)
	w.buffer = append(w.buffer, pendingFrame{seq: seq, payload: payload})
	if n := len(w.buffer); n > w.stats.MaxBuffered {
		w.stats.MaxBuffered = n
	}
	w.stats.Sent++
	if w.conn == nil {
		// connectLocked replays the whole buffer, including this frame.
		if err := w.connectLocked(); err != nil {
			return err
		}
	} else if err := w.writeDataLocked(seq, payload); err != nil {
		// The frame stays in the replay buffer; the reconnect replays
		// it (and everything else unacknowledged) before returning.
		w.failLocked()
		if err := w.connectLocked(); err != nil {
			return err
		}
	}
	w.sinceSync++
	if w.sinceSync >= w.cfg.AckEvery {
		return w.withRetryLocked("sync", w.syncOnceLocked)
	}
	return nil
}

// Flush pushes buffered frames to the wire and waits for the server to
// acknowledge everything sent so far.
func (w *ReconnectWriter) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrWriterClosed
	}
	if w.conn == nil && len(w.buffer) == 0 && !w.everConnected {
		return nil
	}
	return w.withRetryLocked("flush", w.syncOnceLocked)
}

// Close completes the stream: it delivers any unacknowledged frames,
// performs the EOS handshake (so the server knows the stream is whole),
// and closes the connection.
func (w *ReconnectWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrWriterClosed
	}
	w.closed = true
	if err := w.withRetryLocked("EOS", w.eosLocked); err != nil {
		return err
	}
	w.conn.Close()
	w.conn, w.bw, w.br = nil, nil, nil
	return nil
}

// withRetryLocked runs op over a healthy connection, reconnecting and
// retrying on failure. Each round's reconnect is itself bounded by
// MaxAttempts consecutive dial failures, so a dead link terminates.
func (w *ReconnectWriter) withRetryLocked(what string, op func() error) error {
	var lastErr error
	for round := 0; round < w.cfg.MaxAttempts; round++ {
		if w.conn == nil {
			if err := w.connectLocked(); err != nil {
				return err
			}
		}
		if err := op(); err != nil {
			lastErr = err
			w.failLocked()
			continue
		}
		return nil
	}
	return fmt.Errorf("dsms: %s: %s failed after %d rounds: %w",
		w.cfg.StreamID, what, w.cfg.MaxAttempts, lastErr)
}

// writeDataLocked writes one DATA frame with a write deadline.
func (w *ReconnectWriter) writeDataLocked(seq uint64, payload []byte) error {
	w.conn.SetWriteDeadline(time.Now().Add(w.cfg.Timeout))
	return writeDataFrame(w.bw, seq, payload)
}

// syncOnceLocked flushes, heartbeats, and consumes the cumulative ack,
// trimming the replay buffer.
func (w *ReconnectWriter) syncOnceLocked() error {
	w.conn.SetWriteDeadline(time.Now().Add(w.cfg.Timeout))
	if err := w.bw.WriteByte(frameHeartbeat); err != nil {
		return err
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	w.conn.SetReadDeadline(time.Now().Add(w.cfg.Timeout))
	acked, err := readSeqFrame(w.br, frameAck)
	if err != nil {
		return err
	}
	w.trimLocked(acked)
	w.sinceSync = 0
	w.stats.Syncs++
	return nil
}

// eosLocked runs the end-of-stream handshake on the current connection.
func (w *ReconnectWriter) eosLocked() error {
	w.conn.SetWriteDeadline(time.Now().Add(w.cfg.Timeout))
	if err := writeSeqFrame(w.bw, frameEOS, w.nextSeq); err != nil {
		return err
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	w.conn.SetReadDeadline(time.Now().Add(w.cfg.Timeout))
	final, err := readSeqFrame(w.br, frameEOSAck)
	if err != nil {
		return err
	}
	if final != w.nextSeq {
		return fmt.Errorf("dsms: EOS acked %d, want %d", final, w.nextSeq)
	}
	w.trimLocked(final)
	return nil
}

// trimLocked drops replay-buffer frames up to and including seq.
func (w *ReconnectWriter) trimLocked(seq uint64) {
	i := 0
	for i < len(w.buffer) && w.buffer[i].seq <= seq {
		i++
	}
	if i > 0 {
		w.buffer = append(w.buffer[:0], w.buffer[i:]...)
	}
}

// failLocked tears down the current connection and starts the outage
// clock for recovery-latency accounting.
func (w *ReconnectWriter) failLocked() {
	if w.conn != nil {
		w.conn.Close()
		w.conn = nil
	}
	w.bw, w.br = nil, nil
	if w.failedAt.IsZero() {
		w.failedAt = time.Now()
	}
}

// connectLocked dials with exponential backoff + jitter, performs the
// HELLO/HELLOACK resume handshake, trims the replay buffer to the
// server's last applied sequence, and replays the rest.
func (w *ReconnectWriter) connectLocked() error {
	resuming := w.everConnected
	var lastErr error
	for attempt := 0; attempt < w.cfg.MaxAttempts; attempt++ {
		if attempt > 0 || !w.failedAt.IsZero() {
			w.sleepBackoff(attempt)
		}
		conn, err := w.cfg.Dial()
		if err != nil {
			lastErr = err
			continue
		}
		bw := bufio.NewWriter(conn)
		br := bufio.NewReader(conn)
		last, err := handshake(conn, bw, br, w.cfg.StreamID, w.cfg.Timeout)
		if err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		w.conn, w.bw, w.br = conn, bw, br
		w.trimLocked(last)
		// Replay the unacknowledged tail. A failure here burns the
		// same attempt budget.
		if err := w.replayLocked(resuming); err != nil {
			conn.Close()
			w.conn, w.bw, w.br = nil, nil, nil
			lastErr = err
			continue
		}
		if !w.failedAt.IsZero() {
			w.stats.RecoveryNanos += time.Since(w.failedAt).Nanoseconds()
			w.failedAt = time.Time{}
			w.stats.Reconnects++
		}
		w.everConnected = true
		return nil
	}
	return fmt.Errorf("dsms: %s: connect failed after %d attempts: %w",
		w.cfg.StreamID, w.cfg.MaxAttempts, lastErr)
}

// replayLocked rewrites every buffered frame on the fresh connection.
func (w *ReconnectWriter) replayLocked(countResent bool) error {
	for _, f := range w.buffer {
		if err := w.writeDataLocked(f.seq, f.payload); err != nil {
			return err
		}
		if countResent {
			w.stats.Resent++
		}
	}
	return nil
}

// sleepBackoff waits base*2^attempt capped at max, jittered ±50%.
func (w *ReconnectWriter) sleepBackoff(attempt int) {
	d := w.cfg.BaseBackoff << uint(attempt)
	if d > w.cfg.MaxBackoff || d <= 0 {
		d = w.cfg.MaxBackoff
	}
	jitter := 0.5 + w.rng.Float64() // 0.5x .. 1.5x
	time.Sleep(time.Duration(float64(d) * jitter))
}

// handshake sends HELLO and returns the server's resume point.
func handshake(conn net.Conn, bw *bufio.Writer, br *bufio.Reader, id string, timeout time.Duration) (uint64, error) {
	conn.SetWriteDeadline(time.Now().Add(timeout))
	if err := bw.WriteByte(frameHello); err != nil {
		return 0, err
	}
	if err := writeUvarint(bw, uint64(len(id))); err != nil {
		return 0, err
	}
	if _, err := bw.WriteString(id); err != nil {
		return 0, err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE([]byte(id)))
	if _, err := bw.Write(crc[:]); err != nil {
		return 0, err
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	conn.SetReadDeadline(time.Now().Add(timeout))
	return readSeqFrame(br, frameHelloAck)
}
