// Package agg implements stream aggregation (slides 34-38): the
// distributive / algebraic / holistic aggregate taxonomy, windowed
// group-by with HAVING, approximate holistic aggregates backed by
// synopses, and Gigascope's two-level partial aggregation (slide 37).
package agg

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"streamdb/internal/synopsis"
	"streamdb/internal/tuple"
)

// Class is the aggregate taxonomy of slide 34.
type Class uint8

// Aggregate classes: distributive aggregates (sum, count, min, max)
// merge by combining partials; algebraic aggregates (avg) merge via a
// fixed-size intermediate; holistic aggregates (median, count-distinct)
// need the whole multiset — or a synopsis — and are the bounded-memory
// troublemakers of [ABB+02].
const (
	Distributive Class = iota
	Algebraic
	Holistic
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Distributive:
		return "distributive"
	case Algebraic:
		return "algebraic"
	default:
		return "holistic"
	}
}

// State is one group's accumulator.
type State interface {
	Add(v tuple.Value)
	// Merge folds another state of the same function into this one.
	// Holistic exact states support it (by keeping everything);
	// synopsis-backed states may return an error.
	Merge(o State) error
	Result() tuple.Value
	MemSize() int
}

// Func describes an aggregate function.
type Func struct {
	Name  string
	Class Class
	// Result maps the argument kind to the result kind.
	Result func(arg tuple.Kind) tuple.Kind
	// New creates a fresh accumulator.
	New func() State
	// NeedsArg is false only for count(*).
	NeedsArg bool
}

// Lookup resolves an aggregate function by name. The approx flag selects
// synopsis-backed variants of the holistic functions (slide 38: "use
// summary structures").
func Lookup(name string, approx bool) (*Func, error) {
	switch strings.ToLower(name) {
	case "count":
		return &Func{Name: "count", Class: Distributive, NeedsArg: false,
			Result: func(tuple.Kind) tuple.Kind { return tuple.KindInt },
			New:    func() State { return &countState{} }}, nil
	case "sum":
		return &Func{Name: "sum", Class: Distributive, NeedsArg: true,
			Result: func(tuple.Kind) tuple.Kind { return tuple.KindFloat },
			New:    func() State { return &sumState{} }}, nil
	case "min":
		return &Func{Name: "min", Class: Distributive, NeedsArg: true,
			Result: func(k tuple.Kind) tuple.Kind { return k },
			New:    func() State { return &minmaxState{min: true} }}, nil
	case "max":
		return &Func{Name: "max", Class: Distributive, NeedsArg: true,
			Result: func(k tuple.Kind) tuple.Kind { return k },
			New:    func() State { return &minmaxState{} }}, nil
	case "avg":
		return &Func{Name: "avg", Class: Algebraic, NeedsArg: true,
			Result: func(tuple.Kind) tuple.Kind { return tuple.KindFloat },
			New:    func() State { return &avgState{} }}, nil
	case "stddev":
		return &Func{Name: "stddev", Class: Algebraic, NeedsArg: true,
			Result: func(tuple.Kind) tuple.Kind { return tuple.KindFloat },
			New:    func() State { return &stddevState{} }}, nil
	case "count_distinct", "countdistinct":
		f := &Func{Name: "count_distinct", Class: Holistic, NeedsArg: true,
			Result: func(tuple.Kind) tuple.Kind { return tuple.KindInt }}
		if approx {
			f.New = func() State { return &fmState{fm: synopsis.NewFM(64)} }
		} else {
			f.New = func() State { return &distinctState{seen: map[uint64]int64{}} }
		}
		return f, nil
	case "median":
		f := &Func{Name: "median", Class: Holistic, NeedsArg: true,
			Result: func(tuple.Kind) tuple.Kind { return tuple.KindFloat }}
		if approx {
			f.New = func() State { return &gkState{gk: synopsis.NewGK(0.01)} }
		} else {
			f.New = func() State { return &medianState{} }
		}
		return f, nil
	}
	return nil, fmt.Errorf("agg: unknown aggregate %q", name)
}

type countState struct{ n int64 }

func (s *countState) Add(tuple.Value) { s.n++ }
func (s *countState) Merge(o State) error {
	s.n += o.(*countState).n
	return nil
}
func (s *countState) Result() tuple.Value { return tuple.Int(s.n) }
func (s *countState) MemSize() int        { return 8 }
func (s *countState) reset()              { s.n = 0 }

type sumState struct {
	sum float64
	any bool
}

func (s *sumState) Add(v tuple.Value) {
	if f, ok := v.AsFloat(); ok {
		s.sum += f
		s.any = true
	}
}
func (s *sumState) Merge(o State) error {
	os := o.(*sumState)
	s.sum += os.sum
	s.any = s.any || os.any
	return nil
}
func (s *sumState) Result() tuple.Value {
	if !s.any {
		return tuple.Null
	}
	return tuple.Float(s.sum)
}
func (s *sumState) MemSize() int { return 16 }
func (s *sumState) reset()       { s.sum, s.any = 0, false }

type minmaxState struct {
	min  bool
	best tuple.Value
}

func (s *minmaxState) Add(v tuple.Value) {
	if v.IsNull() {
		return
	}
	if s.best.IsNull() {
		s.best = v
		return
	}
	c := v.Compare(s.best)
	if (s.min && c < 0) || (!s.min && c > 0) {
		s.best = v
	}
}
func (s *minmaxState) Merge(o State) error {
	s.Add(o.(*minmaxState).best)
	return nil
}
func (s *minmaxState) Result() tuple.Value { return s.best }
func (s *minmaxState) MemSize() int        { return 8 + s.best.MemSize() }
func (s *minmaxState) reset()              { s.best = tuple.Null }

type avgState struct {
	sum float64
	n   int64
}

func (s *avgState) Add(v tuple.Value) {
	if f, ok := v.AsFloat(); ok {
		s.sum += f
		s.n++
	}
}
func (s *avgState) Merge(o State) error {
	os := o.(*avgState)
	s.sum += os.sum
	s.n += os.n
	return nil
}
func (s *avgState) Result() tuple.Value {
	if s.n == 0 {
		return tuple.Null
	}
	return tuple.Float(s.sum / float64(s.n))
}
func (s *avgState) MemSize() int { return 16 }
func (s *avgState) reset()       { s.sum, s.n = 0, 0 }

type stddevState struct {
	sum, sq float64
	n       int64
}

func (s *stddevState) Add(v tuple.Value) {
	if f, ok := v.AsFloat(); ok {
		s.sum += f
		s.sq += f * f
		s.n++
	}
}
func (s *stddevState) Merge(o State) error {
	os := o.(*stddevState)
	s.sum += os.sum
	s.sq += os.sq
	s.n += os.n
	return nil
}
func (s *stddevState) Result() tuple.Value {
	if s.n < 2 {
		return tuple.Null
	}
	mean := s.sum / float64(s.n)
	variance := s.sq/float64(s.n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return tuple.Float(math.Sqrt(variance))
}
func (s *stddevState) MemSize() int { return 24 }
func (s *stddevState) reset()       { s.sum, s.sq, s.n = 0, 0, 0 }

// distinctState is exact count-distinct: memory grows with cardinality,
// exactly the unbounded-memory hazard of slide 36.
type distinctState struct{ seen map[uint64]int64 }

func (s *distinctState) Add(v tuple.Value) {
	if !v.IsNull() {
		s.seen[v.Hash()]++
	}
}
func (s *distinctState) Merge(o State) error {
	for h, c := range o.(*distinctState).seen {
		s.seen[h] += c
	}
	return nil
}
func (s *distinctState) Result() tuple.Value { return tuple.Int(int64(len(s.seen))) }
func (s *distinctState) MemSize() int        { return 48 + 16*len(s.seen) }

// fmState is Flajolet-Martin approximate count-distinct: bounded memory.
type fmState struct{ fm *synopsis.FM }

func (s *fmState) Add(v tuple.Value) {
	if !v.IsNull() {
		s.fm.Add(v)
	}
}
func (s *fmState) Merge(o State) error {
	return fmt.Errorf("agg: approximate count_distinct states do not merge")
}
func (s *fmState) Result() tuple.Value { return tuple.Int(int64(s.fm.Estimate())) }
func (s *fmState) MemSize() int        { return s.fm.MemSize() }

// medianState is exact median: keeps every value.
type medianState struct{ vals []float64 }

func (s *medianState) Add(v tuple.Value) {
	if f, ok := v.AsFloat(); ok {
		s.vals = append(s.vals, f)
	}
}
func (s *medianState) Merge(o State) error {
	s.vals = append(s.vals, o.(*medianState).vals...)
	return nil
}
func (s *medianState) Result() tuple.Value {
	if len(s.vals) == 0 {
		return tuple.Null
	}
	v := append([]float64(nil), s.vals...)
	sort.Float64s(v)
	return tuple.Float(v[len(v)/2])
}
func (s *medianState) MemSize() int { return 24 + 8*len(s.vals) }

// gkState is Greenwald-Khanna approximate median: bounded memory.
type gkState struct{ gk *synopsis.GK }

func (s *gkState) Add(v tuple.Value) {
	if f, ok := v.AsFloat(); ok {
		s.gk.Add(f)
	}
}
func (s *gkState) Merge(o State) error {
	return fmt.Errorf("agg: approximate median states do not merge")
}
func (s *gkState) Result() tuple.Value {
	m, ok := s.gk.Query(0.5)
	if !ok {
		return tuple.Null
	}
	return tuple.Float(m)
}
func (s *gkState) MemSize() int { return s.gk.MemSize() }
