package experiments

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"streamdb/internal/dsms"
	"streamdb/internal/query"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

// E17FaultTolerance is the chaos experiment for the fault-tolerant
// distributed tier: low-level nodes ship partial aggregates to a
// high-level node over connections that drop, stall mid-frame, and
// corrupt bytes at increasing rates. The claim under test is the one
// production engines are measured by (Fragkoulis et al.): injected
// faults cost only recovery latency and retransmission — the final
// merged results stay byte-identical to the zero-fault run
// (exactly-once partial aggregation), because the session protocol
// resumes from the last acknowledged sequence number instead of
// double-counting or losing partials.
func E17FaultTolerance(scale Scale) *Table {
	t := &Table{
		ID:    "E17",
		Title: "fault-tolerant distributed evaluation: accuracy + recovery vs drop rate",
		Header: []string{"dropRate", "wirebatch", "frames", "reconnects", "resent", "dupes",
			"meanRecovery", "exact"},
	}

	const nodes = 2
	n := scale.N(40000) // raw tuples per low-level node

	cat := query.NewCatalog()
	cat.Register("Traffic", stream.TrafficSchema("Traffic"))
	d, err := query.Decompose(`select srcIP, count(*) as pkts, sum(length) as bytes
		from Traffic [range 60] where length > 512 group by srcIP`, cat, 4096)
	if err != nil {
		panic(err)
	}

	var baseline []byte
	for _, rate := range []float64{0, 0.02, 0.05, 0.10} {
		// wirebatch 1 ships v2 per-tuple DATA frames; 16 ships v3
		// schema-coded batch frames. Exactly-once must hold for both.
		for _, wirebatch := range []int{1, 16} {
			fp, frames, cs, ss := runChaosSession(d, nodes, n, rate, wirebatch)
			if baseline == nil {
				baseline = fp
			}
			exact := string(fp) == string(baseline)
			recovery := "-"
			if cs.Reconnects > 0 {
				recovery = fmt.Sprintf("%.1fms",
					float64(cs.RecoveryNanos)/float64(cs.Reconnects)/1e6)
			}
			t.AddRow(fmt.Sprintf("%.0f%%", rate*100), wirebatch, frames, cs.Reconnects,
				cs.Resent, ss.Dupes, recovery, exact)
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: reconnects and resends grow with the drop rate; results stay byte-identical to the zero-fault run (exactly-once)",
		"wirebatch>1 rows negotiate wire v3 and replay at batch granularity; resume may land mid-batch, counted under dupes",
		"drops/stalls/corruption injected client-side per write with a per-node deterministic seed")
	return t
}

// runChaosSession runs one low->high session set under injected faults
// and returns the fingerprint of the sorted final rows, the partial
// frames shipped, and the summed client + server stats.
func runChaosSession(d *dsms.Decomposition, nodes, n int, dropRate float64, wirebatch int) (fingerprint []byte, frames int64, cs dsms.ReconnectStats, ss dsms.SessionStats) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer ln.Close()
	addr := ln.Addr().String()
	srv := dsms.NewSessionServer(ln, d.PartialSchema(), dsms.SessionConfig{
		IdleTimeout: 10 * time.Second,
	})

	high, err := d.NewHighLevel("hfta")
	if err != nil {
		panic(err)
	}
	var mu sync.Mutex
	var finals []*tuple.Tuple
	emitFinal := func(e stream.Element) { finals = append(finals, e.Tuple) }
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- srv.Serve(nodes, func(_ string, tp *tuple.Tuple) {
			mu.Lock()
			high.Push(0, stream.Tup(tp), emitFinal)
			mu.Unlock()
		})
	}()

	var wg sync.WaitGroup
	var statsMu sync.Mutex
	for node := 0; node < nodes; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			dials := 0
			cfg := dsms.ReconnectConfig{
				StreamID: fmt.Sprintf("low-%d", node),
				Dial: func() (net.Conn, error) {
					c, err := net.Dial("tcp", addr)
					if err != nil || dropRate == 0 {
						return c, err
					}
					dials++
					return dsms.InjectFaults(c, dsms.FaultConfig{
						Seed:        int64(node*10000 + dials),
						DropRate:    dropRate,
						PartialRate: dropRate / 4,
						CorruptRate: dropRate / 4,
					}), nil
				},
				AckEvery:    32,
				BaseBackoff: time.Millisecond,
				MaxBackoff:  20 * time.Millisecond,
				Timeout:     10 * time.Second,
				Seed:        int64(node + 1),
			}
			if wirebatch > 1 {
				cfg.Schema = d.PartialSchema()
				cfg.WireBatch = wirebatch
				cfg.FlushInterval = -1 // size-only: keep the run deterministic
			}
			w, err := dsms.NewReconnectWriter(cfg)
			if err != nil {
				panic(err)
			}
			ll, err := d.NewLowLevel("lfta")
			if err != nil {
				panic(err)
			}
			var sendErr error
			emit := func(e stream.Element) {
				if sendErr == nil {
					sendErr = w.Send(e.Tuple)
				}
			}
			src := stream.Limit(stream.NewTrafficStream(int64(node+1), 100000, 5000), n)
			for {
				e, ok := src.Next()
				if !ok {
					break
				}
				ll.Push(e, emit)
			}
			ll.Flush(emit)
			if sendErr != nil {
				panic(sendErr)
			}
			if err := w.Close(); err != nil {
				panic(err)
			}
			st := w.Stats()
			statsMu.Lock()
			frames += st.Sent
			cs.Resent += st.Resent
			cs.Reconnects += st.Reconnects
			cs.RecoveryNanos += st.RecoveryNanos
			statsMu.Unlock()
		}(node)
	}
	wg.Wait()
	if err := <-serveDone; err != nil {
		panic(err)
	}
	high.Push(0, stream.Punct(&stream.Punctuation{Ts: 1 << 62}), emitFinal)
	high.Flush(emitFinal)

	// Fingerprint the final rows independent of merge/flush order.
	rows := make([][]byte, len(finals))
	for i, f := range finals {
		rows[i] = tuple.AppendEncode(nil, f)
	}
	sort.Slice(rows, func(i, j int) bool { return string(rows[i]) < string(rows[j]) })
	for _, r := range rows {
		fingerprint = append(fingerprint, r...)
	}
	ss = srv.Stats()
	return fingerprint, frames, cs, ss
}
