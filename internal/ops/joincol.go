// Columnar joins: the batch-native fast path of WindowJoin and XJoin.
//
// The row path pays, per arriving tuple, a hash computation through
// tuple dispatch, a per-candidate KeyEqual walk, a Concat allocation
// per emitted pair and an EvalBool interpretation of the residual. The
// columnar path amortizes all four over a whole batch:
//
//   - the key column hashes in one splitmix sweep (tuple.HashColRows),
//     shared by probe and insert;
//   - equal-timestamp runs advance watermark/expiry bookkeeping once
//     per run (as colfold.go does for panes) and land in the window
//     FIFO via segment-sized bulk copies (window.Fifo.PushRun);
//   - matched pairs accumulate as (input row, candidate) references and
//     are gathered column-wise into a pooled output batch — no Concat
//     tuples; inserted rows themselves are carved from chunked slabs
//     (the window retains them, so they must be heap-owned, but a chunk
//     amortizes the allocation over ~1k rows);
//   - the residual predicate compiles once via expr.CompileKernel and
//     refines the gathered pairs as a selection vector, with survivors
//     compacted in place.
//
// Anything outside the fast envelope — rows-windows, MaxTuples caps,
// multi-column or non-fast-kind keys — gathers the batch and reruns the
// exact row path, so the columnar lane is semantically invisible: same
// outputs in the same order, same counters, and byte-identical
// checkpoint snapshots (the FIFO sees the same tuples in the same
// order; wm/sorted/lastIns/pendingWM advance identically because
// equal-timestamp repeats are no-ops in the row path too).

package ops

import (
	"math"

	"streamdb/internal/expr"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

// ColPartitionable marks KeyPartitionable operators whose replicas
// consume selection-vector spans of column batches natively, letting
// the key-partition router move whole batches: the splitter hashes the
// key column once per batch (PartitionHashCol), builds per-replica row
// spans over the same retained batch, and workers run ProcessColSpan
// instead of materializing rows.
type ColPartitionable interface {
	KeyPartitionable

	// PartitionHashCol writes PartitionHash of each listed row into the
	// parallel out slice (len(out) >= len(rows)). It must be a pure
	// function of the batch contents — the splitter calls it outside
	// the replica goroutines.
	PartitionHashCol(port int, b *stream.Batch, rows []int32, out []uint64)

	// ProcessColSpan pushes the listed rows of b through the operator,
	// appending join output rows densely to out and, per input row, the
	// cumulative output row count to ends (the sequence-restoring merge
	// maps each input row to its output span). Unlike ProcessBatch it
	// does NOT consume a reference on b: the caller owns batch
	// lifetime. Returns the extended ends slice.
	ProcessColSpan(port int, b *stream.Batch, rows []int32, out *stream.Batch, ends []int32) []int32
}

// WindowJoin columnar plan states.
const (
	colJoinNone = int8(iota) // not planned yet
	colJoinFast              // vectorized probe/insert straight off the columns
	colJoinRow               // gather each row, rerun the row path (envelope miss; permanent)
	colJoinCold              // demoted to the row path by the cold-probe heuristic; recheckable
)

// Cold-probe heuristic thresholds (colDecide). The vectorized probe
// pays slab materialization and a pairs pipeline per row; that only
// amortizes when probes actually match. On cold workloads — large
// high-cardinality windows where nearly every probe misses (the
// documented 1M-key no-match regression, 0.55x vs the row path) — the
// row path's bare hash-miss is cheaper, so instances demote themselves
// when the observed match rate collapses and re-promote on drift.
const (
	colDecideEvery   = 1024     // rows between match-rate re-evaluations
	colColdMinWindow = 1024     // smallest resident window that may demote
	colColdRate      = 1.0 / 64 // demote below this emitted-pairs-per-row rate
	colWarmRate      = 1.0 / 16 // promote back above this rate (hysteresis)
)

// colDecide re-evaluates the fast-vs-cold choice every colDecideEvery
// rows. Both paths maintain identical join state (the slab tuples land
// in the same FIFO and index), so flipping the plan mid-stream is
// semantically invisible; demoted batches are counted in colFallbacks
// like any other row rerouting.
func (j *WindowJoin) colDecide(rows int) {
	j.colRowsSince += int64(rows)
	if j.colRowsSince < colDecideEvery {
		return
	}
	rate := float64(j.emitted-j.colEmitMark) / float64(j.colRowsSince)
	j.colRowsSince = 0
	j.colEmitMark = j.emitted
	switch j.colPlan {
	case colJoinFast:
		if rate < colColdRate && j.sides[0].fifo.Len()+j.sides[1].fifo.Len() >= colColdMinWindow {
			j.colPlan = colJoinCold
		}
	case colJoinCold:
		if rate > colWarmRate {
			j.colPlan = colJoinFast
		}
	}
}

// colJoinScratch is the per-instance scratch of the columnar join path.
// All slices are reused across batches; none survive a call except as
// capacity.
type colJoinScratch struct {
	ramp   []int32
	hashes []uint64
	run    []*tuple.Tuple
	pairs  colPairs
	elems  []stream.Element
	slab   tupSlab
}

// colPairs accumulates the matched (input row, window candidate) pairs
// of one span and flushes them column-wise into an output batch.
type colPairs struct {
	rows  []int32        // index into the span's materialized tuples
	cands []*tuple.Tuple // matched window-resident tuple, parallel to rows
	ends  []int32        // cumulative pre-residual pair count per input row
	sel   []int32        // residual selection scratch
}

func (p *colPairs) reset() {
	p.rows = p.rows[:0]
	for k := range p.cands {
		p.cands[k] = nil // stale candidates must not pin expired tuples
	}
	p.cands = p.cands[:0]
	p.ends = p.ends[:0]
}

func (p *colPairs) add(row int32, cand *tuple.Tuple) {
	p.rows = append(p.rows, row)
	p.cands = append(p.cands, cand)
}

func (p *colPairs) closeRow() {
	p.ends = append(p.ends, int32(len(p.rows)))
}

// flush gathers the accumulated pairs onto the end of out in (left,
// right) field order — tups holds the arrived side, cands the matched
// side, port says which is which — applies the compiled residual kernel
// (nil = no residual) as an in-place selection refinement, compacts
// survivors, and appends per-input-row output offsets to ends when the
// caller tracks spans. Returns the surviving pair count and the
// extended ends. Output timestamps carry the later of the two inputs'
// timestamps, matching Tuple.Concat.
func (p *colPairs) flush(out *stream.Batch, port, leftArity int, tups []tuple.Tuple, kern expr.ColumnKernel, ends []int32) (int, []int32) {
	base := out.Rows()
	np := len(p.rows)
	if np > 0 {
		ra := len(out.Cols) - leftArity
		gatherTups := func(off, c int) {
			col := out.Cols[off+c]
			for _, pr := range p.rows {
				col = append(col, tups[pr].Vals[c])
			}
			out.Cols[off+c] = col
		}
		gatherCands := func(off, c int) {
			col := out.Cols[off+c]
			for _, cand := range p.cands {
				col = append(col, cand.Vals[c])
			}
			out.Cols[off+c] = col
		}
		if port == 0 {
			for c := 0; c < leftArity; c++ {
				gatherTups(0, c)
			}
			for c := 0; c < ra; c++ {
				gatherCands(leftArity, c)
			}
		} else {
			for c := 0; c < leftArity; c++ {
				gatherCands(0, c)
			}
			for c := 0; c < ra; c++ {
				gatherTups(leftArity, c)
			}
		}
		ts := out.Ts
		for k, pr := range p.rows {
			t := tups[pr].Ts
			if m := p.cands[k].Ts; m > t {
				t = m
			}
			ts = append(ts, t)
		}
		out.Ts = ts
	}
	if kern == nil || np == 0 {
		if ends != nil {
			for _, pe := range p.ends {
				ends = append(ends, int32(base)+pe)
			}
		}
		return np, ends
	}
	if cap(p.sel) < np {
		p.sel = make([]int32, np)
	}
	sel := p.sel[:np]
	for k := range sel {
		sel[k] = int32(base + k)
	}
	surv := kern(out.Cols, out.Ts, sel, sel[:0])
	if len(surv) < np {
		old := base + np
		for c := range out.Cols {
			col := out.Cols[c]
			w := base
			for _, r := range surv {
				col[w] = col[r]
				w++
			}
			for x := w; x < old; x++ {
				col[x] = tuple.Value{} // dropped pairs must not pin values in pooled storage
			}
			out.Cols[c] = col[:w]
		}
		tsArr := out.Ts
		w := base
		for _, r := range surv {
			tsArr[w] = tsArr[r]
			w++
		}
		out.Ts = tsArr[:w]
	}
	if ends != nil {
		si := 0
		for _, pe := range p.ends {
			for si < len(surv) && int(surv[si])-base < int(pe) {
				si++
			}
			ends = append(ends, int32(base+si))
		}
	}
	return len(surv), ends
}

// tupSlab carves window-retained tuples out of chunked slabs.
// Join state retains inserted tuples beyond the call, so unlike the
// aggregation fold the join path cannot gather into reused scratch —
// but it can amortize: one header chunk plus one values chunk serve
// many spans, which matters when partition routing interleaves ports
// and spans degenerate to a handful of rows each. A chunk stays live
// until every tuple carved from it expires; the FIFO windows expire in
// insertion order, so chunks retire roughly together and the overhang
// is bounded by one chunk.
type tupSlab struct {
	tups []tuple.Tuple
	vals []tuple.Value
}

const tupSlabRows = 1024

// materialize copies the listed batch rows into slab-owned tuples.
// The returned slice and the interior Vals never move: a fresh chunk
// is started instead of growing a full one.
func (s *tupSlab) materialize(b *stream.Batch, rows []int32) []tuple.Tuple {
	arity := len(b.Cols)
	n := len(rows)
	if cap(s.tups)-len(s.tups) < n || cap(s.vals)-len(s.vals) < n*arity {
		c := tupSlabRows
		if c < n {
			c = n
		}
		s.tups = make([]tuple.Tuple, 0, c)
		s.vals = make([]tuple.Value, 0, c*arity)
	}
	tups := s.tups[len(s.tups) : len(s.tups)+n]
	s.tups = s.tups[:len(s.tups)+n]
	for i, r := range rows {
		v0 := len(s.vals)
		s.vals = s.vals[:v0+arity]
		tv := s.vals[v0:len(s.vals):len(s.vals)]
		for c := range b.Cols {
			tv[c] = b.Cols[c][r]
		}
		tups[i] = tuple.Tuple{Ts: b.Ts[r], Vals: tv}
	}
	return tups
}

// rampRows returns the batch's live-row index list: Sel when present,
// otherwise a scratch-backed dense ramp.
func rampRows(b *stream.Batch, scratch *[]int32) []int32 {
	if b.Sel != nil {
		return b.Sel
	}
	n := b.Rows()
	if cap(*scratch) < n {
		*scratch = make([]int32, n)
	}
	rows := (*scratch)[:n]
	for i := range rows {
		rows[i] = int32(i)
	}
	return rows
}

// planColumnar decides once per instance whether batches take the
// vectorized path. The fast envelope: a single fast-kind key on both
// sides (fastKey established at construction) and pure time/landmark
// windows — rows-windows and MaxTuples caps interleave eviction with
// insertion per row, which the run-segmented insert cannot reproduce,
// so they gather and rerun the row path.
func (j *WindowJoin) planColumnar() {
	j.colPlan = colJoinRow
	if j.sides[0].fastKey < 0 || j.sides[1].fastKey < 0 {
		return
	}
	for s := 0; s < 2; s++ {
		if j.sides[s].rows != 0 || j.sides[s].maxTuples != 0 {
			return
		}
	}
	j.colPlan = colJoinFast
}

// ProcessBatch implements BatchOperator: the single-pipeline columnar
// entry point. The batch reference is consumed; join output leaves as
// one dense pooled batch through emitB.
func (j *WindowJoin) ProcessBatch(port int, b *stream.Batch, emitB EmitBatch, emit Emit) {
	if port < 0 || port > 1 {
		b.Release()
		return
	}
	if j.colPlan == colJoinNone {
		j.planColumnar()
	}
	if j.colPlan != colJoinFast {
		j.colFallbacks++
		elems := b.AppendRows(j.col.elems[:0])
		rows := 0
		for _, e := range elems {
			if !e.IsPunct() {
				rows++
			}
			j.Push(port, e, emit)
		}
		for i := range elems {
			elems[i] = stream.Element{}
		}
		j.col.elems = elems[:0]
		b.Release()
		if j.colPlan == colJoinCold {
			j.colDecide(rows)
		}
		return
	}
	rows := rampRows(b, &j.col.ramp)
	if len(rows) == 0 {
		b.Release()
		return
	}
	if j.colPool == nil {
		size := len(rows)
		if size < 64 {
			size = 64
		}
		j.colPool = stream.NewColPool(j.out, size)
	}
	out := j.colPool.Get()
	j.processColRows(port, b, rows, out, nil)
	j.colDecide(len(rows))
	b.Release()
	if out.Rows() > 0 {
		emitB(out)
	} else {
		out.Release()
	}
}

// ProcessColSpan implements ColPartitionable. The row plan still
// honors the span contract — gather each row, run the exact row path,
// record per-row output offsets — so partition replicas outside the
// fast envelope (multi-column or generic keys) keep working.
func (j *WindowJoin) ProcessColSpan(port int, b *stream.Batch, rows []int32, out *stream.Batch, ends []int32) []int32 {
	if j.colPlan == colJoinNone {
		j.planColumnar()
	}
	if j.colPlan == colJoinFast {
		if ends == nil {
			// nil tells processColRows to skip span tracking (the
			// ProcessBatch case); the span contract always tracks.
			ends = make([]int32, 0, len(rows))
		}
		ends = j.processColRows(port, b, rows, out, ends)
		j.colDecide(len(rows))
		return ends
	}
	j.colFallbacks++
	tups := j.col.slab.materialize(b, rows)
	emit := func(o stream.Element) { out.AppendRow(o.Tuple) }
	for i := range tups {
		j.Push(port, stream.Tup(&tups[i]), emit)
		ends = append(ends, int32(out.Rows()))
	}
	if j.colPlan == colJoinCold {
		j.colDecide(len(tups))
	}
	return ends
}

// processColRows is the vectorized core: hash the span's key column
// once, probe the opposite window per equal-timestamp run (watermark
// advance, nested-loop sweep and cutoff derivation happen once per
// run), insert the run in bulk, then gather and residual-refine the
// matched pairs column-wise. Probing a whole run before inserting it is
// exact because probes read only the opposite side's state and inserts
// touch only this side's.
func (j *WindowJoin) processColRows(port int, b *stream.Batch, rows []int32, out *stream.Batch, ends []int32) []int32 {
	me, opp := j.sides[port], j.sides[1-port]
	n := len(rows)
	j.received[port] += int64(n)

	if cap(j.col.hashes) < n {
		j.col.hashes = make([]uint64, n)
	}
	hashes := j.col.hashes[:n]
	tuple.HashColRows(b.Cols[me.fastKey], rows, hashes)

	tups := j.col.slab.materialize(b, rows)

	pairs := &j.col.pairs
	pairs.reset()
	run := j.col.run[:0]
	myKey, oppKey := me.key[0], opp.key[0]

	for i := 0; i < n; {
		ts := tups[i].Ts
		jj := i + 1
		for jj < n && tups[jj].Ts == ts {
			jj++
		}
		// Watermark bookkeeping once per run: the row path calls these
		// per tuple, but every call after the first at an equal
		// timestamp is a no-op, so wm/pendingWM/sweep state advance
		// identically.
		opp.advanceWM(ts)
		if opp.method == JoinNestedLoop {
			opp.sweep()
		}
		cutoff := opp.probeCutoff()
		switch opp.method {
		case JoinHash:
			for x := i; x < jj; x++ {
				if bucket := opp.index[hashes[x]]; bucket != nil {
					kv := tups[x].Vals[myKey]
					for _, cand := range bucket {
						if cand.Ts <= cutoff {
							continue // expired; physical sweep deferred
						}
						j.probes++
						if cand.Vals[oppKey].Equal(kv) {
							pairs.add(int32(x), cand)
						}
					}
				}
				pairs.closeRow()
			}
		case JoinNestedLoop:
			for x := i; x < jj; x++ {
				kv := tups[x].Vals[myKey]
				opp.fifo.Each(func(cand *tuple.Tuple) bool {
					if cand.Ts <= cutoff {
						return true
					}
					j.probes++
					if cand.Vals[oppKey].Equal(kv) {
						pairs.add(int32(x), cand)
					}
					return true
				})
				pairs.closeRow()
			}
		}
		// Run-segmented insert: the sorted-flip and lastIns bookkeeping
		// advance once (all timestamps in the run are equal), then the
		// FIFO takes the run in segment-sized chunks and the index
		// appends with the precomputed hashes.
		if me.sorted && ts < me.lastIns {
			me.sorted = false
			me.sweep()
		}
		me.lastIns = ts
		run = run[:0]
		for x := i; x < jj; x++ {
			run = append(run, &tups[x])
		}
		me.fifo.PushRun(run)
		if me.index != nil {
			for x := i; x < jj; x++ {
				me.indexInsert(hashes[x], &tups[x])
			}
		}
		i = jj
	}
	for k := range run {
		run[k] = nil
	}
	j.col.run = run[:0]

	kern := j.colKern
	if j.residual != nil && kern == nil {
		kern = expr.CompileKernel(j.residual, j.out.Arity())
		j.colKern = kern
	}
	emitted, ends := pairs.flush(out, port, j.leftSch.Arity(), tups, kern, ends)
	j.emitted += int64(emitted)
	return ends
}

// PartitionHashCol implements ColPartitionable with the same per-row
// hashes PartitionHash produces, fast lane included.
func (j *WindowJoin) PartitionHashCol(port int, b *stream.Batch, rows []int32, out []uint64) {
	s := j.sides[port]
	if s.fastKey >= 0 {
		tuple.HashColRows(b.Cols[s.fastKey], rows, out)
		return
	}
	tuple.HashColsRows(b.Cols, s.key, rows, out)
}

// ColFallbacks reports how many columnar batches/spans this operator
// rerouted through the row path (fast-envelope misses). After a
// partitioned run this is the fold of every replica's count.
func (j *WindowJoin) ColFallbacks() int64 { return j.colFallbacks }

// XJoin columnar path. XJoin's in-memory stage has no watermark or
// window-order bookkeeping, so every batch takes the vectorized lane:
// hash the key columns once (the generic FNV column walk matches
// Tuple.Key exactly, so multi-column keys vectorize too), probe the
// opposite in-memory partitions, and gather/refine pairs with the same
// machinery as WindowJoin. The spill protocol is untouched: inserts,
// budget checks and residency stamps run per row in arrival order.

// ProcessBatch implements BatchOperator.
func (x *XJoin) ProcessBatch(port int, b *stream.Batch, emitB EmitBatch, _ Emit) {
	if port < 0 || port > 1 {
		b.Release()
		return
	}
	rows := rampRows(b, &x.col.ramp)
	if len(rows) == 0 {
		b.Release()
		return
	}
	if x.colPool == nil {
		size := len(rows)
		if size < 64 {
			size = 64
		}
		x.colPool = stream.NewColPool(x.out, size)
	}
	out := x.colPool.Get()
	x.processColRows(port, b, rows, out, nil)
	b.Release()
	if out.Rows() > 0 {
		emitB(out)
	} else {
		out.Release()
	}
}

// ProcessColSpan implements ColPartitionable.
func (x *XJoin) ProcessColSpan(port int, b *stream.Batch, rows []int32, out *stream.Batch, ends []int32) []int32 {
	if ends == nil {
		ends = make([]int32, 0, len(rows))
	}
	return x.processColRows(port, b, rows, out, ends)
}

func (x *XJoin) processColRows(port int, b *stream.Batch, rows []int32, out *stream.Batch, ends []int32) []int32 {
	n := len(rows)
	if cap(x.col.hashes) < n {
		x.col.hashes = make([]uint64, n)
	}
	hashes := x.col.hashes[:n]
	tuple.HashColsRows(b.Cols, x.keys[port], rows, hashes)

	tups := x.col.slab.materialize(b, rows)

	pairs := &x.col.pairs
	pairs.reset()
	myKey, oppKey := x.keys[port], x.keys[1-port]
	for i := 0; i < n; i++ {
		t := &tups[i]
		x.seq++
		p := int(hashes[i] % uint64(x.nparts))
		for _, cand := range x.parts[1-port][p].mem {
			if cand.t.KeyEqual(t, oppKey, myKey) {
				pairs.add(int32(i), cand.t)
			}
		}
		pairs.closeRow()
		x.parts[port][p].mem = append(x.parts[port][p].mem, xtuple{t: t, ats: x.seq, dts: math.MaxInt64})
		x.inMem++
		if x.inMem > x.budget {
			x.spillLargest()
		}
	}

	kern := x.colKern
	if x.residual != nil && kern == nil {
		kern = expr.CompileKernel(x.residual, x.out.Arity())
		x.colKern = kern
	}
	emitted, ends := pairs.flush(out, port, x.leftSch.Arity(), tups, kern, ends)
	x.emitted += int64(emitted)
	return ends
}

// PartitionHashCol implements ColPartitionable, matching PartitionHash.
func (x *XJoin) PartitionHashCol(port int, b *stream.Batch, rows []int32, out []uint64) {
	tuple.HashColsRows(b.Cols, x.keys[port], rows, out)
}
