package streamdb

import (
	"fmt"

	"streamdb/internal/exec"
	"streamdb/internal/query"
	"streamdb/internal/stream"
)

// ContinuousQuery is a registered persistent query (slide 19:
// "persistent/continuous queries ... content-based filtering" in the
// Tapestry/NiagaraCQ lineage): elements are pushed in with Feed and
// results stream to the sink as soon as the operators produce them.
type ContinuousQuery struct {
	plan   *query.Plan
	graph  *exec.Graph
	queues map[string]*stream.Queue
	sink   func(*Tuple)
	closed bool
}

// RegisterContinuous compiles sql and installs it as a standing query.
// Each stream named in FROM gets a push-fed queue; results flow to sink
// incrementally on every Feed.
func (e *Engine) RegisterContinuous(sql string, sink func(*Tuple)) (*ContinuousQuery, error) {
	if sink == nil {
		return nil, fmt.Errorf("streamdb: continuous query needs a sink")
	}
	q, err := query.Parse(sql)
	if err != nil {
		return nil, err
	}
	plan, err := query.Compile(q, e.cat)
	if err != nil {
		return nil, err
	}
	cq := &ContinuousQuery{
		plan:   plan,
		queues: make(map[string]*stream.Queue),
		sink:   sink,
	}
	cq.graph = exec.NewGraph(func(el Element) {
		if !el.IsPunct() {
			sink(el.Tuple)
		}
	})
	sources := make(map[string]stream.Source)
	for _, fi := range q.From {
		sch, ok := e.cat.Lookup(fi.Stream)
		if !ok {
			return nil, fmt.Errorf("streamdb: unknown stream %q", fi.Stream)
		}
		qu := stream.NewQueue(sch)
		cq.queues[fi.Stream] = qu
		sources[fi.Stream] = qu
	}
	if err := plan.Build(cq.graph, sources); err != nil {
		return nil, err
	}
	return cq, nil
}

// Plan exposes the compiled plan (bounded-memory verdict, Explain).
func (cq *ContinuousQuery) Plan() *Plan { return cq.plan }

// Feed pushes one tuple into the named stream and runs the pipeline on
// everything currently available. Feeding multiple streams of a join:
// call Feed per arrival in timestamp order for deterministic results.
func (cq *ContinuousQuery) Feed(streamName string, t *Tuple) error {
	if cq.closed {
		return fmt.Errorf("streamdb: continuous query is closed")
	}
	qu, ok := cq.queues[streamName]
	if !ok {
		return fmt.Errorf("streamdb: query does not read stream %q", streamName)
	}
	qu.Feed(stream.Tup(t))
	cq.graph.Pump(-1)
	return nil
}

// Advance injects a progress punctuation on the named stream: "no more
// tuples with ordering attribute <= ts will arrive" (slide 28). Windowed
// aggregates close their due windows immediately.
func (cq *ContinuousQuery) Advance(streamName string, ts int64) error {
	if cq.closed {
		return fmt.Errorf("streamdb: continuous query is closed")
	}
	qu, ok := cq.queues[streamName]
	if !ok {
		return fmt.Errorf("streamdb: query does not read stream %q", streamName)
	}
	ord := qu.Schema().OrderingIndex()
	if ord < 0 {
		return fmt.Errorf("streamdb: stream %q has no ordering attribute", streamName)
	}
	qu.Feed(stream.Punct(stream.ProgressPunct(ts, ord, Time(ts))))
	cq.graph.Pump(-1)
	return nil
}

// Close ends the query: remaining state (open windows, unbounded
// aggregates) flushes to the sink. Further Feeds error.
func (cq *ContinuousQuery) Close() {
	if cq.closed {
		return
	}
	cq.closed = true
	cq.graph.Pump(-1)
	cq.graph.Finish()
}
