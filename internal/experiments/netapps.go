package experiments

import (
	"fmt"

	"streamdb/internal/netmon"
	"streamdb/internal/query"
	"streamdb/internal/stream"
)

// E6P2PDetection reproduces the slide-10 case study: payload-keyword
// inspection (Gigascope) identifies ~3x the P2P traffic that port-based
// classification (NetFlow) finds, because two thirds of P2P sessions
// avoid the well-known ports.
func E6P2PDetection(scale Scale) *Table {
	t := &Table{
		ID:     "E6",
		Title:  "P2P traffic detection: payload vs ports (slide 10)",
		Header: []string{"classifier", "p2pBytes", "ofTrue%", "vsPortBased"},
	}
	n := scale.N(100000)
	mkTrace := func() *netmon.PacketTrace {
		return netmon.NewPacketTrace(netmon.TraceConfig{
			Seed: 6, Rate: 50000, AddrPool: 500,
			P2PFraction: 0.3, P2PKnownPortFraction: 1.0 / 3.0,
		})
	}

	// Port-based classifier over NetFlow records (the "previous
	// approach"): flows whose destPort is a registered P2P port.
	portTrace := mkTrace()
	flows := netmon.NewFlowTrace(stream.Limit(portTrace, n), 30*stream.Second)
	cat := query.NewCatalog()
	cat.Register("Flows", flows.Schema())
	portSQL := `select destPort, sum(bytes) as b from Flows
		where destPort = 6881 or destPort = 6346 or destPort = 4662
		group by destPort`
	portRows, _, err := query.Run(portSQL, cat, map[string]stream.Source{"Flows": flows}, -1)
	if err != nil {
		panic(err)
	}
	var portBytes float64
	for _, r := range portRows {
		b, _ := r.Vals[1].AsFloat()
		portBytes += b
	}

	// Payload classifier over raw packets (the Gigascope approach):
	// keyword search in every TCP datagram.
	payTrace := mkTrace()
	cat2 := query.NewCatalog()
	cat2.Register("TCP", payTrace.Schema())
	paySQL := `select sum(len) as b from TCP
		where contains_any(payload, 'BitTorrent protocol|GNUTELLA CONNECT|eDonkey')
		group by protocol`
	payRows, _, err := query.Run(paySQL, cat2,
		map[string]stream.Source{"TCP": stream.Limit(payTrace, n)}, -1)
	if err != nil {
		panic(err)
	}
	var payBytes float64
	for _, r := range payRows {
		b, _ := r.Vals[0].AsFloat()
		payBytes += b
	}

	truth := float64(payTrace.TrueP2PBytes)
	t.AddRow("ground truth", fmt.Sprintf("%.0f", truth), 100.0, "")
	t.AddRow("port-based (NetFlow)", fmt.Sprintf("%.0f", portBytes),
		portBytes/truth*100, 1.0)
	ratio := 0.0
	if portBytes > 0 {
		ratio = payBytes / portBytes
	}
	t.AddRow("payload keywords (GSQL)", fmt.Sprintf("%.0f", payBytes),
		payBytes/truth*100, ratio)
	t.Notes = append(t.Notes,
		`expected shape: payload inspection "identified 3 times more traffic as P2P than Netflow" (slide 10)`)
	return t
}
