package dsms

// Wire-level ablation benchmarks for the v3 protocol: raw transport
// throughput and bytes/tuple for v2 per-tuple frames vs v3 schema-coded
// batches on the netmon Traffic schema, and the steady-state batch
// decode path (which must not allocate per tuple).

import (
	"net"
	"testing"

	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

// benchTuples materializes n Traffic tuples once per process.
func benchTuples(n int) []*tuple.Tuple {
	ts := make([]*tuple.Tuple, 0, n)
	src := stream.Limit(stream.NewTrafficStream(11, 100000, 2000), n)
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		if !e.IsPunct() {
			ts = append(ts, e.Tuple)
		}
	}
	return ts
}

// runRawFraming ships b.N tuples over a loopback TCP pair through the
// raw framed transport (no session protocol) and reports tuples/s and
// bytes/tuple.
func runRawFraming(b *testing.B, batch int) {
	sch := stream.TrafficSchema("Traffic")
	ts := benchTuples(4096)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	connCh := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			panic(err)
		}
		connCh <- c
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	server := <-connCh
	defer client.Close()
	defer server.Close()

	var w *Writer
	var r *Reader
	if batch > 1 {
		w, r = NewBatchWriter(client, sch), NewBatchReader(server, sch)
	} else {
		w, r = NewWriter(client), NewReader(server, sch)
	}
	drained := make(chan int64, 1)
	go func() {
		if batch > 1 {
			dst := make([]stream.Element, 0, 1024)
			for {
				out, more := r.NextBatch(dst[:0], 1024)
				_ = out
				if !more {
					break
				}
			}
		} else {
			for {
				if _, ok := r.Next(); !ok {
					break
				}
			}
		}
		drained <- r.Received
	}()

	b.ResetTimer()
	b.ReportAllocs()
	if batch > 1 {
		for sent := 0; sent < b.N; {
			n := batch
			if rem := b.N - sent; n > rem {
				n = rem
			}
			if n > len(ts) {
				n = len(ts)
			}
			if err := w.SendBatch(ts[:n]); err != nil {
				b.Fatal(err)
			}
			sent += n
		}
	} else {
		for i := 0; i < b.N; i++ {
			if err := w.Send(ts[i%len(ts)]); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	got := <-drained
	b.StopTimer()
	if got != int64(b.N) {
		b.Fatalf("reader drained %d tuples, want %d", got, b.N)
	}
	b.ReportMetric(float64(w.Bytes)/float64(b.N), "bytes/tuple")
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
}

// BenchmarkRawFraming isolates frame encode/decode with both wires
// behind the same bufio buffering. The encodings are within ~2x here;
// the protocol-level win (BenchmarkTransportWire) comes from amortizing
// the session layer's per-frame lock, CRC, sequence, and flush.
func BenchmarkRawFraming(b *testing.B) {
	b.Run("v2/pertuple", func(b *testing.B) { runRawFraming(b, 1) })
	b.Run("v3/batch64", func(b *testing.B) { runRawFraming(b, 64) })
	b.Run("v3/batch256", func(b *testing.B) { runRawFraming(b, 256) })
}

// BenchmarkTransportWire measures the wire the distributed tier
// actually runs: the full session protocol (HELLO, sequencing, CRCs,
// acks every 4096 tuples) end to end over loopback TCP, v2 per-tuple
// frames vs v3 schema-coded batches.
func BenchmarkTransportWire(b *testing.B) {
	run := func(b *testing.B, v3 bool, batch int) {
		ts := benchTuples(4096)
		addr, _, wait := benchServer(b)
		cfg := ReconnectConfig{
			StreamID: "s1",
			Dial:     func() (net.Conn, error) { return net.Dial("tcp", addr) },
			AckEvery: 4096,
		}
		if v3 {
			cfg.Schema = stream.TrafficSchema("Traffic")
			cfg.WireBatch = batch
			cfg.FlushInterval = -1
		}
		w, err := NewReconnectWriter(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := w.Send(ts[i%len(ts)]); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		got := wait()
		b.StopTimer()
		if got != int64(b.N) {
			b.Fatalf("server applied %d tuples, want %d", got, b.N)
		}
		b.ReportMetric(float64(w.Stats().Bytes)/float64(b.N), "bytes/tuple")
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
	}
	b.Run("v2/pertuple", func(b *testing.B) { run(b, false, 1) })
	b.Run("v3/batch16", func(b *testing.B) { run(b, true, 16) })
	b.Run("v3/batch64", func(b *testing.B) { run(b, true, 64) })
	b.Run("v3/batch256", func(b *testing.B) { run(b, true, 256) })
}

// benchServer starts a counting session server; wait blocks for stream
// completion and returns the tuples applied.
func benchServer(b *testing.B) (addr string, srv *SessionServer, wait func() int64) {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ln.Close() })
	srv = NewSessionServer(ln, stream.TrafficSchema("Traffic"), SessionConfig{})
	var count int64
	done := make(chan error, 1)
	go func() {
		done <- srv.ServeBatches(1, func(_ string, tuples []*tuple.Tuple, _ *tuple.Arena) {
			count += int64(len(tuples))
		})
	}()
	return ln.Addr().String(), srv, func() int64 {
		if err := <-done; err != nil {
			b.Fatal(err)
		}
		return count
	}
}

// BenchmarkDecodeBatch isolates the pooled zero-copy decode: steady
// state must allocate nothing per tuple (ReportAllocs shows 0
// allocs/op once the arena is warm).
func BenchmarkDecodeBatch(b *testing.B) {
	sch := stream.TrafficSchema("Traffic")
	ts := benchTuples(64)
	buf, err := tuple.AppendEncodeBatch(nil, sch, ts)
	if err != nil {
		b.Fatal(err)
	}
	a := &tuple.Arena{}
	if _, _, err := tuple.DecodeBatchInto(buf, sch, a); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Reset()
		out, _, err := tuple.DecodeBatchInto(buf, sch, a)
		if err != nil || len(out) != len(ts) {
			b.Fatal("decode failed")
		}
	}
	b.ReportMetric(float64(len(ts)), "tuples/op")
}
