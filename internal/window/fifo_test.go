package window

import (
	"testing"

	"streamdb/internal/tuple"
)

func TestFifoOrderAndLen(t *testing.T) {
	f := NewFifo()
	const n = 3*fifoSegLen + 17 // span several segments
	for i := 0; i < n; i++ {
		f.Push(tuple.New(int64(i), tuple.Int(int64(i))))
	}
	if f.Len() != n {
		t.Fatalf("Len = %d, want %d", f.Len(), n)
	}
	want := int64(0)
	f.Each(func(tp *tuple.Tuple) bool {
		if tp.Ts != want {
			t.Fatalf("Each order: got ts %d, want %d", tp.Ts, want)
		}
		want++
		return true
	})
	if want != n {
		t.Fatalf("Each visited %d, want %d", want, n)
	}
	for i := 0; i < n; i++ {
		if f.Front().Ts != int64(i) {
			t.Fatalf("Front = %d, want %d", f.Front().Ts, i)
		}
		if got := f.PopFront(); got.Ts != int64(i) {
			t.Fatalf("PopFront = %d, want %d", got.Ts, i)
		}
	}
	if f.Len() != 0 || f.Front() != nil || f.PopFront() != nil {
		t.Error("empty fifo misbehaves")
	}
}

func TestFifoInterleavedPushPop(t *testing.T) {
	f := NewFifo()
	next, popped := int64(0), int64(0)
	// Sliding-window usage pattern: push a few, pop a few, forever. The
	// freelist should keep this at a handful of live segments.
	for round := 0; round < 500; round++ {
		for i := 0; i < 7; i++ {
			f.Push(tuple.New(next, tuple.Int(next)))
			next++
		}
		for i := 0; i < 7 && f.Len() > 3; i++ {
			got := f.PopFront()
			if got.Ts != popped {
				t.Fatalf("pop order: got %d, want %d", got.Ts, popped)
			}
			popped++
		}
	}
	// Drain and check FIFO order held to the end.
	for f.Len() > 0 {
		got := f.PopFront()
		if got.Ts != popped {
			t.Fatalf("drain order: got %d, want %d", got.Ts, popped)
		}
		popped++
	}
	if popped != next {
		t.Fatalf("popped %d of %d", popped, next)
	}
	if f.MemSize() < 0 {
		t.Error("MemSize negative")
	}
}

func TestFifoEachEarlyStop(t *testing.T) {
	f := NewFifo()
	for i := 0; i < 10; i++ {
		f.Push(tuple.New(int64(i), tuple.Int(int64(i))))
	}
	seen := 0
	f.Each(func(*tuple.Tuple) bool {
		seen++
		return seen < 4
	})
	if seen != 4 {
		t.Errorf("early stop visited %d, want 4", seen)
	}
}
