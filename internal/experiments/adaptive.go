package experiments

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"streamdb/internal/exec"
	"streamdb/internal/expr"
	"streamdb/internal/ops"
	"streamdb/internal/shed"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

// E25 workload: a netmon deep-inspection pipeline driven past capacity.
// Packets(time, srcIP, prio, length) with Zipf-skewed sources; prio 3
// marks the operator-designated high-QoS flows (10% of traffic carrying
// ~92% of the QoS weight via e25Weight).

func e25Schema() *tuple.Schema {
	return tuple.NewSchema("Packets",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "srcIP", Kind: tuple.KindIP},
		tuple.Field{Name: "prio", Kind: tuple.KindInt},
		tuple.Field{Name: "length", Kind: tuple.KindInt},
	)
}

// e25Weight is the QoS utility of delivering one packet record: the
// slide-44 value-based loss model, collapsed to two tiers.
func e25Weight(prio int64) int64 {
	if prio >= 3 {
		return 100
	}
	return 1
}

func e25Trace(n int, seed int64) []stream.Element {
	rng := rand.New(rand.NewSource(seed))
	src := stream.ZipfIP(rng, 1.2, 4096)
	elems := make([]stream.Element, n)
	for i := range elems {
		prio := int64(rng.Intn(3))
		if rng.Intn(10) == 0 {
			prio = 3
		}
		elems[i] = stream.Tup(tuple.New(int64(i),
			tuple.Time(int64(i)), src(), tuple.Int(prio),
			tuple.Int(int64(40+rng.Intn(1461)))))
	}
	return elems
}

// inspectOp is the expensive stage: a deep-packet-inspection stand-in
// that burns a calibrated amount of CPU per tuple. It is stateless and
// Replicable, so the adaptive controller may scale it, and it declares
// Costs so Chain slopes and the rate model see its weight.
type inspectOp struct {
	name string
	sch  *tuple.Schema
	spin int
	acc  uint64 // defeats dead-code elimination of the spin loop
}

func (o *inspectOp) Name() string             { return o.name }
func (o *inspectOp) OutSchema() *tuple.Schema { return o.sch }
func (o *inspectOp) NumInputs() int           { return 1 }
func (o *inspectOp) MemSize() int             { return 64 }
func (o *inspectOp) Flush(ops.Emit)           {}
func (o *inspectOp) Selectivity() float64     { return 1 }
func (o *inspectOp) UnitCost() float64        { return float64(o.spin) }
func (o *inspectOp) Clone() ops.Operator {
	return &inspectOp{name: o.name, sch: o.sch, spin: o.spin}
}

func (o *inspectOp) Push(_ int, e stream.Element, emit ops.Emit) {
	if !e.IsPunct() {
		h := uint64(e.Tuple.Ts) | 1
		for i := 0; i < o.spin; i++ {
			h ^= h << 13
			h ^= h >> 7
			h ^= h << 17
		}
		o.acc += h
	}
	emit(e)
}

// e25Calibrate measures the single-replica capacity of an inspect stage
// (tuples/second) by timing the spin kernel directly.
func e25Calibrate(spin int) float64 {
	o := &inspectOp{spin: spin}
	emit := func(stream.Element) {}
	e := stream.Tup(tuple.New(1, tuple.Time(1), tuple.Int(0), tuple.Int(0)))
	const m = 4096
	start := time.Now()
	for i := 0; i < m; i++ {
		o.Push(0, e, emit)
	}
	per := time.Since(start).Seconds() / m
	return 1 / per
}

// pacedSource replays a trace against a wall-clock arrival schedule:
// element i is released no earlier than due[i] after the first Next.
// When the engine backpressures (Next called late), release is
// immediate — the schedule models the network, not the engine.
type pacedSource struct {
	sch   *tuple.Schema
	elems []stream.Element
	due   []time.Duration
	pos   int
	start time.Time
}

func (p *pacedSource) Schema() *tuple.Schema { return p.sch }

func (p *pacedSource) Next() (stream.Element, bool) {
	if p.pos >= len(p.elems) {
		return stream.Element{}, false
	}
	if p.pos == 0 {
		p.start = time.Now()
	}
	if d := p.due[p.pos] - time.Since(p.start); d > 0 {
		time.Sleep(d)
	}
	e := p.elems[p.pos]
	p.pos++
	return e, true
}

// e25Ramp builds the arrival schedule: the first quarter arrives at
// low×cap tuples/s, the middle half ramps linearly to high×cap, the
// last quarter holds at high×cap. cap is the whole engine's capacity
// (single-replica rate × pool ceiling), so high=2.5 is 2.5x what even
// a fully replicated static configuration can absorb.
func e25Ramp(n int, capacity, low, high float64) []time.Duration {
	due := make([]time.Duration, n)
	var t float64
	for i := 0; i < n; i++ {
		frac := float64(i) / float64(n)
		mult := low
		switch {
		case frac >= 0.75:
			mult = high
		case frac >= 0.25:
			mult = low + (high-low)*(frac-0.25)/0.5
		}
		t += 1 / (mult * capacity)
		due[i] = time.Duration(t * float64(time.Second))
	}
	return due
}

// E25AdaptiveOverload ramps the Zipf netmon load from half of engine
// capacity to 2.5x and compares static configurations of the
// concurrent engine against the adaptive runtime (batch retuning +
// live replication + QoS shedding). Static configurations deliver
// everything but diverge: backpressure stalls the paced source, so the
// run takes a multiple of the offered schedule (lag) and every result
// is correspondingly late. The adaptive engine holds lag near 1.0 by
// growing the inspect stage to the pool ceiling and then shedding
// low-priority packets, keeping >=90% of the QoS-weighted output.
// Below capacity the controller never sheds, so the adaptive run stays
// byte-identical to the serial engine (checked as a note).
func E25AdaptiveOverload(scale Scale) *Table {
	t := &Table{
		ID:     "E25",
		Title:  "adaptive runtime under a Zipf overload ramp (0.5x -> 2.5x capacity)",
		Header: []string{"config", "lag", "delivered%", "qos%", "maxQ", "repl", "shed%"},
	}

	maxP := runtime.GOMAXPROCS(0)
	if maxP > 4 {
		maxP = 4
	}
	const spin = 20000
	singleCap := e25Calibrate(spin)
	capacity := singleCap * float64(maxP)

	n := scale.N(40000)
	elems := e25Trace(n, 25)
	var offeredW int64
	for _, e := range elems {
		offeredW += e25Weight(int64(e.Tuple.Vals[2].Raw()))
	}
	sch := e25Schema()

	build := func(due []time.Duration, elems []stream.Element, sink func(stream.Element)) (*exec.Graph, exec.NodeID, exec.NodeID) {
		g := exec.NewGraph(sink)
		src := g.AddSource(&pacedSource{sch: sch, elems: elems, due: due})
		keep, err := expr.NewBin(expr.OpGt,
			expr.MustColumn(sch, "prio"), expr.Constant(tuple.Int(2)))
		if err != nil {
			panic(err)
		}
		sh, err := shed.NewSemantic("qos-shed", sch, keep, 0, 99)
		if err != nil {
			panic(err)
		}
		shID := g.AddOp(sh)
		inspID := g.AddOp(&inspectOp{name: "inspect", sch: sch, spin: spin})
		if err := g.ConnectSource(src, shID, 0); err != nil {
			panic(err)
		}
		if err := g.Connect(shID, inspID, 0); err != nil {
			panic(err)
		}
		if err := g.ConnectOut(inspID); err != nil {
			panic(err)
		}
		return g, shID, inspID
	}

	due := e25Ramp(n, capacity, 0.5, 2.5)
	schedule := due[n-1].Seconds()

	run := func(label string, opts exec.RunOptions) {
		var delivered, qosW int64
		g, shID, inspID := build(due, elems, func(e stream.Element) {
			if !e.IsPunct() {
				delivered++
				qosW += e25Weight(int64(e.Tuple.Vals[2].Raw()))
			}
		})
		start := time.Now()
		g.RunWith(-1, opts)
		lag := time.Since(start).Seconds() / schedule
		ss, is := g.Stats(shID), g.Stats(inspID)
		t.AddRow(label,
			fmt.Sprintf("%.2fx", lag),
			fmt.Sprintf("%.1f", 100*float64(delivered)/float64(n)),
			fmt.Sprintf("%.1f", 100*float64(qosW)/float64(offeredW)),
			is.MaxQueue, is.Replicas,
			fmt.Sprintf("%.0f", 100*ss.ShedRate))
	}

	run("static p=1 b=64", exec.RunOptions{BatchSize: 64, Parallelism: 1})
	run(fmt.Sprintf("static p=%d b=64", maxP), exec.RunOptions{BatchSize: 64, Parallelism: maxP})
	run("adaptive", exec.RunOptions{BatchSize: 64, Parallelism: 1,
		Adapt: &exec.AdaptConfig{Interval: time.Millisecond, MaxParallelism: maxP}})

	// Below-capacity identity: the same pipeline paced at a steady 0.4x
	// capacity must produce byte-identical output under the adaptive
	// engine and the serial virtual-time engine — adaptation is pure
	// execution below the knee.
	bn := n / 8
	if bn < 256 {
		bn = 256
	}
	belowDue := e25Ramp(bn, capacity, 0.4, 0.4)
	belowElems := elems[:bn]
	capture := func(adaptive bool) []byte {
		var out []byte
		g, _, _ := build(belowDue, belowElems, func(e stream.Element) {
			if !e.IsPunct() {
				out = tuple.AppendEncode(out, e.Tuple)
			}
		})
		if adaptive {
			g.RunWith(-1, exec.RunOptions{BatchSize: 64, Parallelism: 1,
				Adapt: &exec.AdaptConfig{Interval: time.Millisecond, MaxParallelism: maxP}})
		} else {
			g.Run(-1)
		}
		return out
	}
	exact := bytes.Equal(capture(false), capture(true))

	t.Notes = append(t.Notes,
		fmt.Sprintf("engine capacity = %d replicas x %.3g tuples/s calibrated inspect rate; schedule = %.2gs of offered load", maxP, singleCap, schedule),
		"lag = wall time / offered schedule: 1.0 means the engine absorbed the ramp in real time; statics diverge toward offered/capacity",
		"qos%% = delivered QoS weight / offered (prio 3 carries weight 100, rest 1): the semantic shedder drops low-weight packets first",
		fmt.Sprintf("below capacity (steady 0.4x, %d tuples): adaptive output byte-identical to the serial engine: %v", bn, exact))
	return t
}
