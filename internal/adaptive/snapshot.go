package adaptive

// Checkpoint support (ckpt.Snapshotter) for the eddy. The routing
// state that matters across a restart or rescale is the learned
// ordering plus the decayed per-filter statistics: a restored eddy
// must keep routing tuples through the same order and keep adapting
// from the same observation counts, so the plan does not "forget"
// the distribution it already learned.

import (
	"fmt"
	"math"

	"streamdb/internal/ckpt"
)

// Snapshot implements ckpt.Snapshotter.
func (e *Eddy) Snapshot(enc *ckpt.Encoder) error {
	enc.Uvarint(uint64(len(e.filters)))
	for _, i := range e.order {
		enc.Uvarint(uint64(i))
	}
	for _, f := range e.filters {
		enc.Float64(f.seen)
		enc.Float64(f.passed)
	}
	enc.Varint(int64(e.since))
	enc.Varint(e.evals)
	enc.Varint(e.in)
	enc.Varint(e.out)
	return nil
}

// Restore implements ckpt.Snapshotter. The receiver must have been
// built with the same filter set (count and order of construction) as
// the snapshotted eddy; names are not persisted.
func (e *Eddy) Restore(dec *ckpt.Decoder) error {
	n := int(dec.Uvarint())
	order := make([]int, n)
	for k := range order {
		order[k] = int(dec.Uvarint())
	}
	seen := make([]float64, n)
	passed := make([]float64, n)
	for i := 0; i < n; i++ {
		seen[i] = dec.Float64()
		passed[i] = dec.Float64()
	}
	since := int(dec.Varint())
	evals := dec.Varint()
	in := dec.Varint()
	out := dec.Varint()
	if err := dec.Err(); err != nil {
		return err
	}
	if n != len(e.filters) {
		return fmt.Errorf("adaptive: restore: snapshot has %d filters, eddy has %d", n, len(e.filters))
	}
	used := make([]bool, n)
	for _, i := range order {
		if i < 0 || i >= n || used[i] {
			return fmt.Errorf("adaptive: restore: invalid filter order")
		}
		used[i] = true
	}
	for i, f := range e.filters {
		if math.IsNaN(seen[i]) || math.IsNaN(passed[i]) || seen[i] < 0 || passed[i] < 0 {
			return fmt.Errorf("adaptive: restore: invalid statistics for filter %s", f.Name)
		}
	}
	e.order = order
	for i, f := range e.filters {
		f.seen = seen[i]
		f.passed = passed[i]
	}
	e.since = since
	e.evals = evals
	e.in = in
	e.out = out
	return nil
}
