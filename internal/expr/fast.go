// Fast lane: common predicate shapes compiled into specialized closures.
//
// The per-tuple cost of Expr.Eval is dominated by interface dispatch and
// Value copying, which matters for selections sitting on the hottest
// path of the engine (every Traffic tuple crosses "protocol = 6 and
// length > 512"-shaped filters). CompilePredicate recognizes the shapes
// that appear in practice — Col cmp Lit over the numeric kinds, composed
// with AND/OR — and returns a closure that reads the column payload
// directly. Anything it does not recognize (or any tuple whose runtime
// kind deviates from the schema, e.g. NULLs) falls back to the generic
// evaluator, so the fast lane is semantically invisible.

package expr

import "streamdb/internal/tuple"

// Pred is a compiled predicate with EvalBool semantics (NULL = false).
type Pred func(*tuple.Tuple) bool

// CompileCols is the grouping-key analogue of CompilePredicate: when
// every expression is a bare column reference it returns the column
// indices, letting group-by operators read key values straight out of
// the tuple instead of paying an interface dispatch per key per tuple.
// Any computed expression disables the fast lane (nil). The indices
// reproduce Col.Eval exactly: key i of tuple t is t.Vals[idx[i]].
func CompileCols(exprs []Expr) []int {
	if len(exprs) == 0 {
		return nil
	}
	idx := make([]int, len(exprs))
	for i, e := range exprs {
		c, ok := e.(*Col)
		if !ok {
			return nil
		}
		idx[i] = c.Index
	}
	return idx
}

// CompilePredicate returns a specialized evaluator for e, or nil when
// the expression's shape has no fast lane. The returned closure is
// exactly equivalent to EvalBool(e, t) for every tuple.
func CompilePredicate(e Expr) Pred {
	switch x := e.(type) {
	case *Bin:
		if x.Op == OpAnd || x.Op == OpOr {
			l, r := CompilePredicate(x.L), CompilePredicate(x.R)
			if l == nil || r == nil {
				return nil
			}
			// EvalBool three-valued logic degenerates to Go && / ||:
			// any NULL operand already evaluates to false in the
			// operand closures, and false AND null = false,
			// null AND true = null->false, null OR true = true all
			// agree with the short-circuited two-valued forms.
			if x.Op == OpAnd {
				return func(t *tuple.Tuple) bool { return l(t) && r(t) }
			}
			return func(t *tuple.Tuple) bool { return l(t) || r(t) }
		}
		if !x.Op.Comparison() {
			return nil
		}
		if c, ok := x.L.(*Col); ok {
			if lit, ok := x.R.(*Lit); ok {
				return compileCmp(e, c, x.Op, lit.Val)
			}
		}
		if lit, ok := x.L.(*Lit); ok {
			if c, ok := x.R.(*Col); ok {
				return compileCmp(e, c, flipCmp(x.Op), lit.Val)
			}
		}
	case *Not:
		inner := CompilePredicate(x.E)
		if inner == nil {
			return nil
		}
		// NOT null = null -> false under EvalBool, and inner already
		// maps null operands to a full-expression fallback, so the
		// two-valued negation only wraps exact results.
		full := func(t *tuple.Tuple) bool { return EvalBool(e, t) }
		fastInner := compileExact(x.E)
		if fastInner == nil {
			return nil
		}
		return func(t *tuple.Tuple) bool {
			v, ok := fastInner(t)
			if !ok {
				return full(t)
			}
			return !v
		}
	}
	return nil
}

// exactPred evaluates a boolean expression when the fast lane applies;
// ok=false means "fall back to the generic evaluator" (kind mismatch,
// NULL, or any shape the compiler skipped).
type exactPred func(*tuple.Tuple) (val, ok bool)

// compileExact is CompilePredicate for contexts (NOT) that must
// distinguish "false" from "unknown, use the fallback". It covers
// comparisons in both operand orders plus AND/OR/NOT compositions of
// them, with exact three-valued semantics: a conjunction with one
// definite false operand is definitely false (and dually for OR) even
// when the other operand cannot be evaluated exactly, which is
// precisely the dominance rule of SQL's three-valued logic.
func compileExact(e Expr) exactPred {
	switch x := e.(type) {
	case *Bin:
		switch {
		case x.Op == OpAnd || x.Op == OpOr:
			l, r := compileExact(x.L), compileExact(x.R)
			if l == nil || r == nil {
				return nil
			}
			if x.Op == OpAnd {
				return func(t *tuple.Tuple) (bool, bool) {
					lv, lok := l(t)
					if lok && !lv {
						return false, true // false AND anything = false
					}
					rv, rok := r(t)
					if rok && !rv {
						return false, true // anything AND false = false
					}
					if lok && rok {
						return true, true
					}
					return false, false
				}
			}
			return func(t *tuple.Tuple) (bool, bool) {
				lv, lok := l(t)
				if lok && lv {
					return true, true // true OR anything = true
				}
				rv, rok := r(t)
				if rok && rv {
					return true, true // anything OR true = true
				}
				if lok && rok {
					return false, true
				}
				return false, false
			}
		case x.Op.Comparison():
			if c, ok := x.L.(*Col); ok {
				if lit, ok := x.R.(*Lit); ok {
					return compileRawCmp(c, x.Op, lit.Val)
				}
			}
			if lit, ok := x.L.(*Lit); ok {
				if c, ok := x.R.(*Col); ok {
					return compileRawCmp(c, flipCmp(x.Op), lit.Val)
				}
			}
		}
	case *Not:
		inner := compileExact(x.E)
		if inner == nil {
			return nil
		}
		return func(t *tuple.Tuple) (bool, bool) {
			v, ok := inner(t)
			if !ok {
				return false, false
			}
			return !v, true
		}
	}
	return nil
}

// flipCmp mirrors a comparison so `lit op col` becomes `col op' lit`.
func flipCmp(op BinOp) BinOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	}
	return op // Eq, Ne are symmetric
}

// cmpMask encodes which comparison outcomes (-1, 0, +1) satisfy an
// operator as a 3-bit mask indexed by sign+1.
func cmpMask(op BinOp) uint8 {
	switch op {
	case OpEq:
		return 0b010
	case OpNe:
		return 0b101
	case OpLt:
		return 0b001
	case OpLe:
		return 0b011
	case OpGt:
		return 0b100
	default: // OpGe
		return 0b110
	}
}

// compileCmp builds the full fast predicate for `col op lit`, falling
// back to evaluating whole (the original expression) when the runtime
// value kind deviates from the schema.
func compileCmp(whole Expr, c *Col, op BinOp, lit tuple.Value) Pred {
	raw := compileRawCmp(c, op, lit)
	if raw == nil {
		return nil
	}
	return func(t *tuple.Tuple) bool {
		v, ok := raw(t)
		if !ok {
			return EvalBool(whole, t)
		}
		return v
	}
}

// compileRawCmp builds the kind-specialized comparison, or nil when the
// (column kind, literal kind) pair has no fast lane. The specializations
// reproduce tuple.Value.compareNumeric exactly for the covered pairs:
//
//   - any FLOAT operand compares via AsFloat on both sides, where
//     INT/TIME convert signed and UINT converts unsigned;
//   - otherwise raw bits compare unsigned, except that a negative INT
//     sorts below every non-INT-negative value (TIME and UINT raw bits
//     are never treated as negative).
func compileRawCmp(c *Col, op BinOp, lit tuple.Value) exactPred {
	sign := compileSign(c.Typ, lit)
	if sign == nil {
		return nil
	}
	idx, colKind, mask := c.Index, c.Typ, cmpMask(op)
	return func(t *tuple.Tuple) (bool, bool) {
		if idx >= len(t.Vals) {
			return false, false
		}
		v := t.Vals[idx]
		if v.Kind != colKind {
			return false, false
		}
		return mask>>sign(v)&1 != 0, true
	}
}

func signedSign(x, l int64) uint8 {
	if x < l {
		return 0
	} else if x > l {
		return 2
	}
	return 1
}

func unsignedSign(x, l uint64) uint8 {
	if x < l {
		return 0
	} else if x > l {
		return 2
	}
	return 1
}

func floatSign(x, l float64) uint8 {
	// NaN falls through to 1 ("equal"), matching compareNumeric.
	if x < l {
		return 0
	} else if x > l {
		return 2
	}
	return 1
}

// compileSign builds the kind-specialized three-way comparison of a
// column value of kind colKind (already verified by the caller) against
// lit, returning the sign+1 in {0,1,2}; nil when the kind pair has no
// fast lane. Shared by the scalar fast lane and the column kernels.
func compileSign(colKind tuple.Kind, lit tuple.Value) func(v tuple.Value) uint8 {
	wrap := func(sign func(v tuple.Value) uint8) func(v tuple.Value) uint8 {
		return sign
	}
	switch colKind {
	case tuple.KindInt:
		switch lit.Kind {
		case tuple.KindInt:
			li := int64(lit.Raw())
			return wrap(func(v tuple.Value) uint8 { return signedSign(int64(v.Raw()), li) })
		case tuple.KindUint, tuple.KindTime:
			// The literal's raw bits are unsigned; a negative column
			// value sorts below them unconditionally.
			lu := lit.Raw()
			return wrap(func(v tuple.Value) uint8 {
				x := int64(v.Raw())
				if x < 0 {
					return 0
				}
				return unsignedSign(uint64(x), lu)
			})
		case tuple.KindFloat:
			lf := lit.Fl()
			return wrap(func(v tuple.Value) uint8 { return floatSign(float64(int64(v.Raw())), lf) })
		}
	case tuple.KindTime, tuple.KindUint:
		switch lit.Kind {
		case tuple.KindInt:
			li := int64(lit.Raw())
			if li < 0 {
				// Column raw bits are never Int-negative: always greater.
				return wrap(func(tuple.Value) uint8 { return 2 })
			}
			lu := uint64(li)
			return wrap(func(v tuple.Value) uint8 { return unsignedSign(v.Raw(), lu) })
		case tuple.KindUint, tuple.KindTime:
			lu := lit.Raw()
			return wrap(func(v tuple.Value) uint8 { return unsignedSign(v.Raw(), lu) })
		case tuple.KindFloat:
			lf := lit.Fl()
			if colKind == tuple.KindTime {
				// AsFloat converts TIME signed but UINT unsigned.
				return wrap(func(v tuple.Value) uint8 { return floatSign(float64(int64(v.Raw())), lf) })
			}
			return wrap(func(v tuple.Value) uint8 { return floatSign(float64(v.Raw()), lf) })
		}
	case tuple.KindFloat:
		lf, ok := lit.AsFloat()
		if !ok {
			return nil
		}
		return wrap(func(v tuple.Value) uint8 { return floatSign(v.Fl(), lf) })
	}
	return nil
}
