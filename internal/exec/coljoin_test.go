package exec

// Byte-equivalence matrix for the columnar join lane: a window join
// running columnar — batch-hashed splitter, ProcessColSpan replicas,
// span-reassembling merge — must reproduce the serial deterministic
// Run byte-for-byte across join methods, residuals, batch sizes and
// partition widths, with the same late tuples and punctuation-driven
// expiry the row-lane matrix uses. Checkpoints cut mid-stream through
// the columnar lane must restore exactly, in either mode: row-mode
// checkpoints restore into columnar runs and vice versa, because the
// splitter snapshot materializes queued batch rows into the row
// section format.

import (
	"fmt"
	"testing"

	"streamdb/internal/ckpt"
	"streamdb/internal/expr"
	"streamdb/internal/ops"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
	"streamdb/internal/window"
)

func TestColumnarJoinEquivalenceMatrix(t *testing.T) {
	methods := []struct {
		label  string
		lm, rm ops.JoinMethod
	}{
		{"hash", ops.JoinHash, ops.JoinHash},
		{"inl", ops.JoinNestedLoop, ops.JoinNestedLoop},
		{"asym", ops.JoinHash, ops.JoinNestedLoop},
	}
	matrix := []RunOptions{
		{BatchSize: 7, Parallelism: 1, ForceParallelism: true, PartitionJoins: true, Columnar: true},
		{BatchSize: 64, Parallelism: 2, ForceParallelism: true, PartitionJoins: true, Columnar: true},
		{BatchSize: 7, Parallelism: 4, ForceParallelism: true, PartitionJoins: true, Columnar: true},
		{BatchSize: 64, Parallelism: 4, ForceParallelism: true, PartitionJoins: true, Columnar: true},
	}
	left := pjStream(1200, 0, 6, 42)
	right := pjStream(1200, 1, 6, 99)
	for _, m := range methods {
		for _, residual := range []bool{false, true} {
			label := m.label
			if residual {
				label += "+residual"
			}
			_, base := runPartJoin(t, pjJoin(t, m.lm, m.rm, residual), left, right, nil)
			if len(base) == 0 {
				t.Fatalf("%s: serial baseline produced nothing", label)
			}
			for _, o := range matrix {
				o := o
				st, got := runPartJoin(t, pjJoin(t, m.lm, m.rm, residual), left, right, &o)
				sameSeq(t, fmt.Sprintf("%s/col/%+v", label, o), got, base)
				if st.Replicas != o.Parallelism {
					t.Errorf("%s/%+v: Replicas = %d, want %d", label, o, st.Replicas, o.Parallelism)
				}
				if st.Batches == 0 {
					t.Errorf("%s/%+v: Batches = 0, splitter never saw a column batch", label, o)
				}
				// INT keys are inside the fast envelope: no span may
				// have collapsed to the row path.
				if st.RowFallbacks != 0 {
					t.Errorf("%s/%+v: RowFallbacks = %d, want 0", label, o, st.RowFallbacks)
				}
			}
		}
	}
}

// Float keys hash by content, not payload, so they sit outside the
// fast single-column envelope: the columnar partition lane must still
// route batches (generic column hash) while the replicas gather spans
// back to the row path — observable through NodeStats.RowFallbacks.
var fkLeft = tuple.NewSchema("FL",
	tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
	tuple.Field{Name: "k", Kind: tuple.KindFloat},
	tuple.Field{Name: "lv", Kind: tuple.KindInt},
)

var fkRight = tuple.NewSchema("FR",
	tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
	tuple.Field{Name: "k", Kind: tuple.KindFloat},
	tuple.Field{Name: "rv", Kind: tuple.KindInt},
)

func fkRemap(elems []stream.Element) []stream.Element {
	out := make([]stream.Element, len(elems))
	for i, e := range elems {
		if e.IsPunct() {
			out[i] = e
			continue
		}
		tp := e.Tuple
		k, _ := tp.Vals[1].AsInt()
		out[i] = stream.Tup(tuple.New(tp.Ts, tp.Vals[0], tuple.Float(float64(k)), tp.Vals[2]))
	}
	return out
}

func TestColumnarJoinRowFallbackLane(t *testing.T) {
	left := fkRemap(pjStream(800, 0, 5, 7))
	right := fkRemap(pjStream(800, 1, 5, 8))
	mkJoin := func() *ops.WindowJoin {
		out := fkLeft.Concat(fkRight)
		res, err := expr.NewBin(expr.OpGt,
			expr.MustColumn(out, "lv"), expr.MustColumn(out, "rv"))
		if err != nil {
			t.Fatal(err)
		}
		j, err := ops.NewWindowJoin("fj", fkLeft, fkRight,
			ops.JoinConfig{Window: window.Time(64, 64), Method: ops.JoinHash, Key: []int{1}},
			ops.JoinConfig{Window: window.Time(32, 32), Method: ops.JoinHash, Key: []int{1}},
			res)
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	run := func(opts *RunOptions) (NodeStats, []string) {
		var got []string
		g := NewGraph(func(e stream.Element) { got = append(got, fmtElem(e)) })
		sl := g.AddSource(stream.FromElements(fkLeft, left...))
		sr := g.AddSource(stream.FromElements(fkRight, right...))
		n := g.AddOp(mkJoin())
		if err := g.ConnectSource(sl, n, 0); err != nil {
			t.Fatal(err)
		}
		if err := g.ConnectSource(sr, n, 1); err != nil {
			t.Fatal(err)
		}
		if err := g.ConnectOut(n); err != nil {
			t.Fatal(err)
		}
		if opts == nil {
			g.Run(-1)
		} else {
			g.RunWith(-1, *opts)
		}
		return g.Stats(n), got
	}
	_, base := run(nil)
	if len(base) == 0 {
		t.Fatal("serial baseline produced nothing")
	}
	opts := RunOptions{BatchSize: 32, Parallelism: 3, ForceParallelism: true, PartitionJoins: true, Columnar: true}
	st, got := run(&opts)
	sameSeq(t, "float-key fallback", got, base)
	if st.Batches == 0 {
		t.Error("Batches = 0: columnar lane not exercised")
	}
	if st.RowFallbacks == 0 {
		t.Error("RowFallbacks = 0: generic-key spans should gather to the row path")
	}
}

// TestColumnarJoinCheckpointResume cuts checkpoints mid-stream through
// the columnar join lane (E22-style), then restores — same mode and
// cross-mode in both directions. The splitter snapshot encodes queued
// batch rows in the row lane's element format, so the four cells must
// all stitch byte-identically to the uninterrupted baseline.
func TestColumnarJoinCheckpointResume(t *testing.T) {
	left := pjStream(2400, 0, 6, 11)
	right := pjStream(2400, 1, 6, 22)

	runJoin := func(maxElements int64, opts RunOptions, store *ckpt.Store, restore *ckpt.Checkpoint) ([]string, int) {
		var got []string
		commits := 0
		if store != nil {
			opts.Checkpoint = &CheckpointConfig{
				Store: store,
				Every: 307,
				OnCommit: func(epoch int64, err error) {
					if err == nil {
						commits++
					}
				},
			}
		}
		opts.Restore = restore
		j := pjJoin(t, ops.JoinHash, ops.JoinNestedLoop, true)
		g := NewGraph(func(e stream.Element) { got = append(got, fmtElem(e)) })
		sl := g.AddSource(stream.FromElements(pjLeft, left...))
		sr := g.AddSource(stream.FromElements(pjRight, right...))
		n := g.AddOp(j)
		if err := g.ConnectSource(sl, n, 0); err != nil {
			t.Fatal(err)
		}
		if err := g.ConnectSource(sr, n, 1); err != nil {
			t.Fatal(err)
		}
		if err := g.ConnectOut(n); err != nil {
			t.Fatal(err)
		}
		g.RunWith(maxElements, opts)
		if err := g.Err(); err != nil {
			t.Fatalf("join run failed: %v", err)
		}
		return got, commits
	}

	row := RunOptions{BatchSize: 16, Parallelism: 2, ForceParallelism: true, PartitionJoins: true}
	col := row
	col.Columnar = true

	base, _ := runJoin(-1, col, nil, nil)
	if len(base) == 0 {
		t.Fatal("baseline join produced nothing")
	}

	for _, tc := range []struct {
		label         string
		crash, resume RunOptions
	}{
		{"col_to_col", col, col},
		{"col_to_row", col, row},
		{"row_to_col", row, col},
	} {
		store := ckptStore(t)
		first, commits := runJoin(900, tc.crash, store, nil)
		if commits == 0 {
			t.Fatalf("%s: crash run committed no epochs", tc.label)
		}
		c, err := store.Latest()
		if err != nil || c == nil {
			t.Fatalf("%s: Latest: %v, %v", tc.label, c, err)
		}
		if int(c.OutSeq) > len(first) {
			t.Fatalf("%s: OutSeq %d beyond delivered %d", tc.label, c.OutSeq, len(first))
		}
		second, _ := runJoin(-1, tc.resume, store, c)
		got := append(append([]string{}, first[:c.OutSeq]...), second...)
		sameSeq(t, tc.label+" stitched", got, base)
	}
}

// TestColumnarXJoinMultisetEquivalence: XJoin under the columnar
// partition lane (multi-column generic hash, vectorized probe) keeps
// the row lane's multiset guarantee, spills included.
func TestColumnarXJoinMultisetEquivalence(t *testing.T) {
	left := pjStream(800, 0, 5, 3)
	right := pjStream(800, 1, 5, 4)
	run := func(opts *RunOptions) map[string]int {
		x, err := ops.NewXJoin("px", pjLeft, pjRight, []int{1}, []int{1}, 4, 64, nil, t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]int{}
		g := NewGraph(func(e stream.Element) {
			if !e.IsPunct() {
				got[e.Tuple.String()]++
			}
		})
		sl := g.AddSource(stream.FromElements(pjLeft, left...))
		sr := g.AddSource(stream.FromElements(pjRight, right...))
		n := g.AddOp(x)
		if err := g.ConnectSource(sl, n, 0); err != nil {
			t.Fatal(err)
		}
		if err := g.ConnectSource(sr, n, 1); err != nil {
			t.Fatal(err)
		}
		if err := g.ConnectOut(n); err != nil {
			t.Fatal(err)
		}
		if opts == nil {
			g.Run(-1)
		} else {
			g.RunWith(-1, *opts)
		}
		return got
	}
	base := run(nil)
	if len(base) == 0 {
		t.Fatal("serial XJoin produced nothing")
	}
	opts := RunOptions{BatchSize: 32, Parallelism: 4, ForceParallelism: true, PartitionJoins: true, Columnar: true}
	got := run(&opts)
	if len(got) != len(base) {
		t.Fatalf("columnar XJoin produced %d distinct rows, serial %d", len(got), len(base))
	}
	for k, c := range base {
		if got[k] != c {
			t.Fatalf("row %q: columnar count %d, serial %d", k, got[k], c)
		}
	}
}
