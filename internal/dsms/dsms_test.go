package dsms

import (
	"math"
	"math/rand"
	"net"
	"sync"
	"testing"

	"streamdb/internal/agg"
	"streamdb/internal/expr"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

var sch = tuple.NewSchema("S",
	tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
	tuple.Field{Name: "g", Kind: tuple.KindInt},
	tuple.Field{Name: "v", Kind: tuple.KindFloat},
)

func row(ts, g int64, v float64) stream.Element {
	return stream.Tup(tuple.New(ts, tuple.Time(ts), tuple.Int(g), tuple.Float(v)))
}

func TestTransportRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var got []*tuple.Tuple
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		r := NewReader(conn, sch)
		got = stream.DrainTuples(r)
		if r.Err != nil {
			t.Errorf("reader error: %v", r.Err)
		}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(conn)
	for i := int64(0); i < 100; i++ {
		if err := w.Send(tuple.New(i, tuple.Time(i), tuple.Int(i%5), tuple.Float(float64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if len(got) != 100 {
		t.Fatalf("received %d tuples", len(got))
	}
	if w.Sent != 100 || w.Bytes == 0 {
		t.Errorf("writer stats: %d, %d", w.Sent, w.Bytes)
	}
	if v, _ := got[99].Vals[2].AsFloat(); v != 99 {
		t.Errorf("payload corrupted: %v", got[99])
	}
}

func TestTransportSchemaMismatch(t *testing.T) {
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	defer ln.Close()
	errCh := make(chan error, 1)
	go func() {
		conn, _ := ln.Accept()
		r := NewReader(conn, sch)
		stream.DrainTuples(r)
		errCh <- r.Err
	}()
	conn, _ := net.Dial("tcp", ln.Addr().String())
	w := NewWriter(conn)
	w.Send(tuple.New(1, tuple.Int(1))) // wrong arity
	w.Close()
	if err := <-errCh; err == nil {
		t.Error("schema mismatch not detected")
	}
}

func mkDecomposition(t *testing.T) *Decomposition {
	t.Helper()
	cnt, _ := agg.Lookup("count", false)
	sum, _ := agg.Lookup("sum", false)
	filter, _ := expr.NewBin(expr.OpGe, expr.MustColumn(sch, "v"), expr.Constant(tuple.Int(0)))
	d, err := NewDecomposition(sch, filter,
		[]expr.Expr{expr.MustColumn(sch, "g")}, []string{"g"},
		[]agg.Spec{
			{Fn: cnt, Name: "cnt"},
			{Fn: sum, Arg: expr.MustColumn(sch, "v"), Name: "total"},
		}, 8, 1000)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDecompositionEndToEnd(t *testing.T) {
	// 3 low-level nodes partially aggregate disjoint slices; the high
	// level merges. The result must equal a direct global aggregation.
	d := mkDecomposition(t)
	high, err := d.NewHighLevel("hfta")
	if err != nil {
		t.Fatal(err)
	}
	var finals []*tuple.Tuple
	emitFinal := func(e stream.Element) { finals = append(finals, e.Tuple) }

	rng := rand.New(rand.NewSource(21))
	truth := map[int64]map[int64]float64{} // bucket -> group -> sum
	counts := map[int64]map[int64]int64{}
	var lows []*LowLevel
	for n := 0; n < 3; n++ {
		ll, err := d.NewLowLevel("lfta")
		if err != nil {
			t.Fatal(err)
		}
		lows = append(lows, ll)
	}
	for i := 0; i < 3000; i++ {
		ts := int64(i)
		g := rng.Int63n(30)
		v := rng.Float64() * 10
		node := lows[i%3]
		node.Push(row(ts, g, v), func(e stream.Element) { high.Push(0, e, emitFinal) })
		b := (ts / 1000) * 1000
		if truth[b] == nil {
			truth[b] = map[int64]float64{}
			counts[b] = map[int64]int64{}
		}
		truth[b][g] += v
		counts[b][g]++
	}
	for _, ll := range lows {
		ll.Flush(func(e stream.Element) { high.Push(0, e, emitFinal) })
		if ll.ReductionFactor() <= 1 {
			t.Errorf("no data reduction: %v", ll.ReductionFactor())
		}
	}
	high.Flush(emitFinal)

	want := 0
	for _, groups := range truth {
		want += len(groups)
	}
	if len(finals) != want {
		t.Fatalf("final rows = %d, want %d", len(finals), want)
	}
	for _, f := range finals {
		b, _ := f.Vals[0].AsTime()
		g, _ := f.Vals[1].AsInt()
		c, _ := f.Vals[2].AsInt()
		s, _ := f.Vals[3].AsFloat()
		if c != counts[b][g] || math.Abs(s-truth[b][g]) > 1e-6 {
			t.Fatalf("group %d@%d: got (%d, %v), want (%d, %v)", g, b, c, s, counts[b][g], truth[b][g])
		}
	}
}

func TestDecompositionOverTCP(t *testing.T) {
	// Full slide-55 shape: 2 low-level nodes ship partials over TCP to
	// a high-level listener.
	d := mkDecomposition(t)
	high, _ := d.NewHighLevel("hfta")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	const nodes = 2
	var mu sync.Mutex
	var finals []*tuple.Tuple
	var wg sync.WaitGroup
	wg.Add(nodes)
	go func() {
		for i := 0; i < nodes; i++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer wg.Done()
				r := NewReader(conn, d.PartialSchema())
				for {
					e, ok := r.Next()
					if !ok {
						return
					}
					mu.Lock()
					high.Push(0, e, func(out stream.Element) { finals = append(finals, out.Tuple) })
					mu.Unlock()
				}
			}(conn)
		}
	}()

	totalTuples := 0
	var sendWg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		sendWg.Add(1)
		go func(n int) {
			defer sendWg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			w := NewWriter(conn)
			ll, _ := d.NewLowLevel("lfta")
			emit := func(e stream.Element) { w.Send(e.Tuple) }
			for i := 0; i < 500; i++ {
				ll.Push(row(int64(i), int64(i%7), 1), emit)
			}
			ll.Flush(emit)
			w.Close()
		}(n)
	}
	sendWg.Wait()
	totalTuples = nodes * 500
	wg.Wait()
	high.Flush(func(out stream.Element) { finals = append(finals, out.Tuple) })

	// Sum of counts across finals must equal total raw tuples.
	var sum int64
	for _, f := range finals {
		c, _ := f.Vals[2].AsInt()
		sum += c
	}
	if sum != int64(totalTuples) {
		t.Errorf("distributed count = %d, want %d", sum, totalTuples)
	}
}

func TestDecompositionValidation(t *testing.T) {
	med, _ := agg.Lookup("median", false)
	if _, err := NewDecomposition(sch, nil, nil, nil,
		[]agg.Spec{{Fn: med, Arg: expr.MustColumn(sch, "v"), Name: "m"}}, 8, 0); err == nil {
		t.Error("holistic aggregate accepted for decomposition")
	}
	if _, err := NewDecomposition(sch, expr.MustColumn(sch, "v"), nil, nil, nil, 8, 0); err == nil {
		t.Error("non-boolean filter accepted")
	}
}

func TestAdaptiveFiltersPrecisionBound(t *testing.T) {
	const sites = 5
	c, err := NewCoordinator(sites, 10)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	vals := make([]float64, sites)
	for step := 0; step < 10000; step++ {
		i := rng.Intn(sites)
		vals[i] += rng.NormFloat64()
		c.Update(i, vals[i])
		if step%500 == 0 {
			c.Reallocate()
		}
		// The protocol invariant: estimate within precision of truth.
		if c.Error() > c.Precision+1e-9 {
			t.Fatalf("error %v exceeds precision %v at step %d", c.Error(), c.Precision, step)
		}
	}
	if c.Messages() >= c.TotalUpdates() {
		t.Errorf("no communication saving: %d msgs for %d updates", c.Messages(), c.TotalUpdates())
	}
}

func TestAdaptiveFiltersPrecisionSweep(t *testing.T) {
	// Looser precision must send fewer messages.
	run := func(precision float64) int64 {
		c, _ := NewCoordinator(4, precision)
		rng := rand.New(rand.NewSource(7))
		vals := make([]float64, 4)
		for step := 0; step < 5000; step++ {
			i := rng.Intn(4)
			vals[i] += rng.NormFloat64()
			c.Update(i, vals[i])
			if step%250 == 0 {
				c.Reallocate()
			}
		}
		return c.Messages()
	}
	tight := run(1)
	loose := run(100)
	if loose >= tight {
		t.Errorf("loose precision sent %d >= tight %d", loose, tight)
	}
	exact := run(0)
	if exact != 5000 {
		t.Errorf("precision 0 sent %d, want every update", exact)
	}
}

func TestCoordinatorValidation(t *testing.T) {
	if _, err := NewCoordinator(0, 1); err == nil {
		t.Error("zero sites accepted")
	}
	if _, err := NewCoordinator(2, -1); err == nil {
		t.Error("negative precision accepted")
	}
}

func TestReallocateShiftsBudget(t *testing.T) {
	c, _ := NewCoordinator(2, 10)
	// Site 0 churns; site 1 is quiet.
	v := 0.0
	for i := 0; i < 200; i++ {
		v += 3
		c.Update(0, v)
	}
	c.Update(1, 1)
	for i := 0; i < 5; i++ {
		c.Reallocate()
	}
	b := c.Bounds()
	if b[0] <= b[1] {
		t.Errorf("budget did not shift to the busy site: %v", b)
	}
	// Total budget conserved.
	if math.Abs(b[0]+b[1]-10) > 1e-9 {
		t.Errorf("budget not conserved: %v", b)
	}
}
