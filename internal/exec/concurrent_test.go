package exec

// Tests for the batched concurrent engine: batching must be
// semantically invisible (exact output equality with the
// element-at-a-time run), punctuation must never overtake or lag data
// across batch-flush boundaries, panic isolation must survive batching
// and replication, and the sink contract (serialized by default,
// sharded on request) must hold under the race detector.

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"streamdb/internal/agg"
	"streamdb/internal/expr"
	"streamdb/internal/ops"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
	"streamdb/internal/window"
)

// pipelineOutputs runs a Select -> Project chain over the given elements
// with the given options and returns the rendered output sequence.
func pipelineOutputs(t *testing.T, elems []stream.Element, opts RunOptions) []string {
	t.Helper()
	var got []string
	g := NewGraph(func(e stream.Element) { got = append(got, e.String()) })
	src := g.AddSource(stream.FromElements(sch, elems...))
	sel := g.AddOp(mustSelect(t, 10))
	outSch := tuple.NewSchema("P",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "v2", Kind: tuple.KindInt},
	)
	dbl, err := expr.NewBin(expr.OpMul, expr.MustColumn(sch, "v"), expr.Constant(tuple.Int(2)))
	if err != nil {
		t.Fatal(err)
	}
	proj, err := ops.NewProject("proj", outSch, []expr.Expr{expr.MustColumn(sch, "time"), dbl})
	if err != nil {
		t.Fatal(err)
	}
	pr := g.AddOp(proj)
	if err := g.ConnectSource(src, sel, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(sel, pr, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.ConnectOut(pr); err != nil {
		t.Fatal(err)
	}
	g.RunWith(-1, opts)
	return got
}

func TestBatchedMatchesUnbatchedExactOrder(t *testing.T) {
	var elems []stream.Element
	for i := int64(0); i < 1000; i++ {
		elems = append(elems, el(i, i%40))
		if i%100 == 99 {
			elems = append(elems, stream.Punct(stream.ProgressPunct(i, 0, tuple.Time(i))))
		}
	}
	base := pipelineOutputs(t, elems, RunOptions{BatchSize: 1})
	if len(base) == 0 {
		t.Fatal("baseline produced nothing")
	}
	for _, cfg := range []RunOptions{
		{BatchSize: 7},
		{BatchSize: 64},
		{BatchSize: 256},
		{BatchSize: 64, Parallelism: 4, ForceParallelism: true},
		{BatchSize: 1, Parallelism: 2, ForceParallelism: true},
	} {
		got := pipelineOutputs(t, elems, cfg)
		if len(got) != len(base) {
			t.Fatalf("%+v: %d outputs, want %d", cfg, len(got), len(base))
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("%+v: output %d = %s, want %s (order not restored)", cfg, i, got[i], base[i])
			}
		}
	}
}

// punctCheckOp verifies the batching invariant from the punctuation
// side: when a punctuation arrives, every tuple it covers that the
// source emitted before it must already have been seen — i.e. no data
// is held back in an upstream batch buffer while its covering
// punctuation advances.
type punctCheckOp struct {
	expectAt map[int64]int64 // punct ts -> tuples with Ts <= ts preceding it
	seen     int64
	errs     []string
}

func (p *punctCheckOp) Name() string             { return "punctcheck" }
func (p *punctCheckOp) OutSchema() *tuple.Schema { return sch }
func (p *punctCheckOp) NumInputs() int           { return 1 }
func (p *punctCheckOp) MemSize() int             { return 0 }
func (p *punctCheckOp) Flush(ops.Emit)           {}
func (p *punctCheckOp) Push(_ int, e stream.Element, emit ops.Emit) {
	if e.IsPunct() {
		want, ok := p.expectAt[e.Punct.Ts]
		if ok && p.seen < want {
			p.errs = append(p.errs, fmt.Sprintf(
				"punct@%d observed only %d of %d covered tuples", e.Punct.Ts, p.seen, want))
		}
		emit(e)
		return
	}
	p.seen++
	emit(e)
}

func TestPunctuationNeverOvertakesBatchedData(t *testing.T) {
	var elems []stream.Element
	expect := map[int64]int64{}
	var count int64
	for i := int64(0); i < 500; i++ {
		elems = append(elems, el(i, i))
		count++
		if i%37 == 36 { // punctuation lands mid-batch for every tested size
			elems = append(elems, stream.Punct(stream.ProgressPunct(i, 0, tuple.Time(i))))
			expect[i] = count
		}
	}
	for _, bs := range []int{1, 4, 64, 1000} {
		check := &punctCheckOp{expectAt: expect}
		g := NewGraph(nil)
		src := g.AddSource(stream.FromElements(sch, elems...))
		pass := g.AddOp(mustSelect(t, -1)) // upstream stage so batches cross an edge
		chk := g.AddOp(check)
		if err := g.ConnectSource(src, pass, 0); err != nil {
			t.Fatal(err)
		}
		if err := g.Connect(pass, chk, 0); err != nil {
			t.Fatal(err)
		}
		if err := g.ConnectOut(chk); err != nil {
			t.Fatal(err)
		}
		g.RunWith(-1, RunOptions{BatchSize: bs})
		for _, e := range check.errs {
			t.Errorf("batch=%d: %s", bs, e)
		}
		if check.seen != count {
			t.Errorf("batch=%d: saw %d tuples, want %d (EOS must flush open batches)", bs, check.seen, count)
		}
	}
}

// TestBatchedWindowAggMatchesDeterministic drives a windowed aggregate
// through batch-flush boundaries: per-window counts must match the
// deterministic engine whatever the batch size, proving a window flush
// never loses elements parked in an upstream buffer.
func TestBatchedWindowAggMatchesDeterministic(t *testing.T) {
	mk := func() (*Graph, *map[string]int) {
		got := map[string]int{}
		cnt, _ := agg.Lookup("count", false)
		gb, err := agg.NewGroupBy("g", sch, nil, nil,
			[]agg.Spec{{Fn: cnt, Name: "c"}}, window.Tumbling(100), nil)
		if err != nil {
			t.Fatal(err)
		}
		g := NewGraph(func(e stream.Element) { got[e.String()]++ })
		var elems []stream.Element
		for i := int64(0); i < 950; i++ {
			elems = append(elems, el(i, i%5))
		}
		src := g.AddSource(stream.WithProgressPunctuation(stream.FromElements(sch, elems...), 100))
		n := g.AddOp(gb)
		if err := g.ConnectSource(src, n, 0); err != nil {
			t.Fatal(err)
		}
		if err := g.ConnectOut(n); err != nil {
			t.Fatal(err)
		}
		return g, &got
	}
	gRef, ref := mk()
	gRef.Run(-1)
	if len(*ref) == 0 {
		t.Fatal("reference produced nothing")
	}
	for _, bs := range []int{1, 8, 64, 512} {
		g, got := mk()
		g.RunWith(-1, RunOptions{BatchSize: bs})
		if len(*got) != len(*ref) {
			t.Fatalf("batch=%d: %d distinct rows, want %d", bs, len(*got), len(*ref))
		}
		for k, v := range *ref {
			if (*got)[k] != v {
				t.Errorf("batch=%d: row %q count %d, want %d", bs, k, (*got)[k], v)
			}
		}
	}
}

// TestJoinPartitionsUnderParallelism: a two-input key-partitionable
// join is no longer skipped by the parallel lanes — it runs behind the
// hash-split router, and results stay the multiset of the unreplicated
// run (partjoin_test.go pins the stronger byte-identical property).
func TestJoinPartitionsUnderParallelism(t *testing.T) {
	a := tuple.NewSchema("A",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "k", Kind: tuple.KindInt},
	)
	b := tuple.NewSchema("B",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "k", Kind: tuple.KindInt},
	)
	run := func(opts RunOptions) int64 {
		var as, bs []stream.Element
		for i := int64(0); i < 300; i++ {
			as = append(as, stream.Tup(tuple.New(i, tuple.Time(i), tuple.Int(i%10))))
			bs = append(bs, stream.Tup(tuple.New(i, tuple.Time(i), tuple.Int(i%10))))
		}
		j, _ := ops.NewSymmetricHashJoin("shj", a, b, []int{1}, []int{1})
		var n int64
		g := NewGraph(func(stream.Element) { atomic.AddInt64(&n, 1) })
		sa := g.AddSource(stream.FromElements(a, as...))
		sb := g.AddSource(stream.FromElements(b, bs...))
		nj := g.AddOp(j)
		if err := g.ConnectSource(sa, nj, 0); err != nil {
			t.Fatal(err)
		}
		if err := g.ConnectSource(sb, nj, 1); err != nil {
			t.Fatal(err)
		}
		if err := g.ConnectOut(nj); err != nil {
			t.Fatal(err)
		}
		g.RunWith(-1, opts)
		if opts.Parallelism > 1 {
			st := g.Stats(nj)
			if st.Replicas != opts.Parallelism {
				t.Errorf("Replicas = %d, want %d", st.Replicas, opts.Parallelism)
			}
			var routed int64
			for _, c := range st.Routed {
				routed += c
			}
			if len(st.Routed) != opts.Parallelism || routed != 600 {
				t.Errorf("Routed = %v (sum %d), want %d replicas summing 600",
					st.Routed, routed, opts.Parallelism)
			}
		}
		return n
	}
	base := run(RunOptions{BatchSize: 1})
	repl := run(RunOptions{BatchSize: 64, Parallelism: 4, ForceParallelism: true})
	if base == 0 || base != repl {
		t.Errorf("join results: unbatched %d, batched+partitioned %d", base, repl)
	}
}

func TestConcurrentStatsSampled(t *testing.T) {
	var n int64
	g := NewGraph(func(stream.Element) { atomic.AddInt64(&n, 1) })
	var elems []stream.Element
	for i := int64(0); i < 5000; i++ {
		elems = append(elems, el(i, i))
	}
	src := g.AddSource(stream.FromElements(sch, elems...))
	d := g.AddOp(ops.NewDupElim("d", sch, []int{1}, 0))
	if err := g.ConnectSource(src, d, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.ConnectOut(d); err != nil {
		t.Fatal(err)
	}
	g.RunWith(-1, RunOptions{BatchSize: 64})
	st := g.Stats(d)
	if st.MaxQueue <= 0 {
		t.Errorf("MaxQueue = %d, want > 0 (concurrent path must sample queue depth)", st.MaxQueue)
	}
	if st.MaxMemory <= 0 {
		t.Errorf("MaxMemory = %d, want > 0 (concurrent path must sample operator memory)", st.MaxMemory)
	}
	if st.In != 5000 {
		t.Errorf("In = %d, want 5000", st.In)
	}
}

func TestReplicatedStatsCounted(t *testing.T) {
	var elems []stream.Element
	for i := int64(0); i < 2000; i++ {
		elems = append(elems, el(i, i%100))
	}
	g := NewGraph(nil)
	src := g.AddSource(stream.FromElements(sch, elems...))
	sel := g.AddOp(mustSelect(t, 49)) // passes v in 50..99: half the input
	if err := g.ConnectSource(src, sel, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.ConnectOut(sel); err != nil {
		t.Fatal(err)
	}
	g.RunWith(-1, RunOptions{BatchSize: 32, Parallelism: 4, ForceParallelism: true})
	st := g.Stats(sel)
	if st.In != 2000 {
		t.Errorf("In = %d, want 2000", st.In)
	}
	if st.Out != 1000 {
		t.Errorf("Out = %d, want 1000", st.Out)
	}
}

// TestSinkSerializedByDefault locks in the documented contract: in
// concurrent mode the graph sink is invoked from a single merger
// goroutine, so an unsynchronized sink closure is safe. The race
// detector enforces this when two branches write output concurrently.
func TestSinkSerializedByDefault(t *testing.T) {
	var got []int64 // deliberately unsynchronized
	g := NewGraph(func(e stream.Element) {
		v, _ := e.Tuple.Vals[1].AsInt()
		got = append(got, v)
	})
	var elems []stream.Element
	for i := int64(0); i < 3000; i++ {
		elems = append(elems, el(i, i))
	}
	src := g.AddSource(stream.FromElements(sch, elems...))
	b1 := g.AddOp(mustSelect(t, -1))
	b2 := g.AddOp(mustSelect(t, -1))
	for _, id := range []NodeID{b1, b2} {
		if err := g.ConnectSource(src, id, 0); err != nil {
			t.Fatal(err)
		}
		if err := g.ConnectOut(id); err != nil {
			t.Fatal(err)
		}
	}
	g.RunWith(-1, RunOptions{BatchSize: 16})
	if len(got) != 6000 {
		t.Errorf("sink received %d, want 6000", len(got))
	}
}

// TestSinkPerWriterShards: with SinkPerWriter each output-writing node
// gets a private sink called from one goroutine; per-branch order is
// the branch's emit order.
func TestSinkPerWriterShards(t *testing.T) {
	var elems []stream.Element
	for i := int64(0); i < 2000; i++ {
		elems = append(elems, el(i, i))
	}
	g := NewGraph(func(stream.Element) { t.Error("graph sink must be bypassed") })
	src := g.AddSource(stream.FromElements(sch, elems...))
	b1 := g.AddOp(mustSelect(t, -1))
	b2 := g.AddOp(mustSelect(t, 999)) // passes v in 1000..1999
	// One slice per shard, fixed before the run: each sink is invoked
	// from a single goroutine, so the appends need no synchronization,
	// but the shards must not share a container.
	shards := make([][]int64, 2)
	shardOf := map[NodeID]int{b1: 0, b2: 1}
	for _, id := range []NodeID{b1, b2} {
		if err := g.ConnectSource(src, id, 0); err != nil {
			t.Fatal(err)
		}
		if err := g.ConnectOut(id); err != nil {
			t.Fatal(err)
		}
	}
	g.RunWith(-1, RunOptions{
		BatchSize: 64,
		SinkPerWriter: func(id NodeID) Sink {
			slot := shardOf[id]
			return func(e stream.Element) {
				v, _ := e.Tuple.Vals[1].AsInt()
				shards[slot] = append(shards[slot], v)
			}
		},
	})
	if len(shards[0]) != 2000 {
		t.Errorf("branch 1 shard = %d, want 2000", len(shards[0]))
	}
	if len(shards[1]) != 1000 {
		t.Errorf("branch 2 shard = %d, want 1000", len(shards[1]))
	}
	for i := 1; i < len(shards[0]); i++ {
		if shards[0][i-1] >= shards[0][i] {
			t.Fatalf("branch 1 order violated at %d", i)
		}
	}
}

func TestBatchedDegradeIsolatesPanic(t *testing.T) {
	for _, par := range []int{1, 4} {
		var out int64
		g := NewGraph(func(stream.Element) { atomic.AddInt64(&out, 1) })
		g.SetFailurePolicy(Degrade)
		const n = 3000
		src := g.AddSource(stream.FromElements(sch, elems(n)...))
		bad := g.AddOp(&panicOp{name: "bad", after: 7})
		good := g.AddOp(mustSelect(t, -1))
		for _, id := range []NodeID{bad, good} {
			if err := g.ConnectSource(src, id, 0); err != nil {
				t.Fatal(err)
			}
			if err := g.ConnectOut(id); err != nil {
				t.Fatal(err)
			}
		}
		done := make(chan struct{})
		go func() {
			g.RunWith(-1, RunOptions{BatchSize: 64, Parallelism: par, ForceParallelism: true})
			close(done)
		}()
		select {
		case <-done:
		case <-timeoutC(t):
			t.Fatalf("par=%d: batched Degrade run deadlocked", par)
		}
		if g.Err() == nil {
			t.Fatalf("par=%d: failure not reported", par)
		}
		if st := g.Stats(good); st.Out != n {
			t.Errorf("par=%d: healthy branch delivered %d, want %d", par, st.Out, n)
		}
		if st := g.Stats(bad); st.Panics == 0 {
			t.Errorf("par=%d: no panic recorded", par)
		}
	}
}

func TestBatchedFailFastStopsSources(t *testing.T) {
	var out int64
	g := NewGraph(func(stream.Element) { atomic.AddInt64(&out, 1) })
	src := g.AddSource(stream.FromElements(sch, elems(50000)...))
	mid := g.AddOp(&panicOp{name: "mid", after: 10})
	down := g.AddOp(mustSelect(t, -1))
	if err := g.ConnectSource(src, mid, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(mid, down, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.ConnectOut(down); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		g.RunWith(-1, RunOptions{BatchSize: 64})
		close(done)
	}()
	select {
	case <-done:
	case <-timeoutC(t):
		t.Fatal("batched FailFast run deadlocked")
	}
	if g.Err() == nil {
		t.Fatal("panic not reported")
	}
}

// TestReplicatedDegradePanic: a panic inside a replica worker must be
// recorded, must not deadlock the splitter/merger machinery, and the
// run must terminate.
func TestReplicatedDegradePanic(t *testing.T) {
	var out int64
	g := NewGraph(func(stream.Element) { atomic.AddInt64(&out, 1) })
	g.SetFailurePolicy(Degrade)
	src := g.AddSource(stream.FromElements(sch, elems(4000)...))
	bad := g.AddOp(&panicSelect{after: 100})
	if err := g.ConnectSource(src, bad, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.ConnectOut(bad); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		g.RunWith(-1, RunOptions{BatchSize: 16, Parallelism: 4, ForceParallelism: true})
		close(done)
	}()
	select {
	case <-done:
	case <-timeoutC(t):
		t.Fatal("replicated Degrade run deadlocked after panic")
	}
	if g.Err() == nil {
		t.Fatal("replica panic not reported")
	}
	if st := g.Stats(bad); st.Panics == 0 {
		t.Error("no panic recorded on replicated node")
	}
}

// panicSelect is a Replicable operator whose clones panic after a
// number of pushes, exercising panic isolation inside replica workers.
type panicSelect struct {
	after int64
	seen  int64
}

func (p *panicSelect) Name() string             { return "panicsel" }
func (p *panicSelect) OutSchema() *tuple.Schema { return sch }
func (p *panicSelect) NumInputs() int           { return 1 }
func (p *panicSelect) MemSize() int             { return 0 }
func (p *panicSelect) Flush(ops.Emit)           {}
func (p *panicSelect) Clone() ops.Operator      { c := *p; c.seen = 0; return &c }
func (p *panicSelect) Push(_ int, e stream.Element, emit ops.Emit) {
	if atomic.AddInt64(&p.seen, 1) > p.after {
		panic("replica bug")
	}
	emit(e)
}

// timeoutC returns a channel closed after a deadline far beyond any
// healthy run of these graphs; selecting on it catches deadlocks.
func timeoutC(t *testing.T) <-chan time.Time {
	t.Helper()
	return time.After(10 * time.Second)
}
