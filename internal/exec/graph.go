// Package exec is the dataflow execution engine: it wires sources and
// operators into a graph and runs it, either deterministically in
// virtual time (arrival order across sources defined by timestamps) or
// concurrently with one goroutine per operator connected by channels.
//
// The deterministic mode is what the experiments use — the tutorial's
// figures depend on exact arrival interleavings (slides 41, 43). The
// concurrent mode is the throughput-oriented deployment shape and the
// substrate for the system-profile comparisons of slide 52.
package exec

import (
	"fmt"
	"sync"

	"streamdb/internal/ops"
	"streamdb/internal/stream"
)

// NodeID identifies an operator node in a graph.
type NodeID int

// Sink receives graph outputs.
type Sink func(stream.Element)

type edge struct {
	to   NodeID // -1 = graph output
	port int
}

type node struct {
	op    ops.Operator
	out   []edge
	stats NodeStats
}

// NodeStats is per-operator introspection (Aurora-style, slide 47).
type NodeStats struct {
	In, Out   int64
	MaxQueue  int
	MaxMemory int
}

type sourceNode struct {
	src    stream.Source
	out    []edge
	peeked *stream.Element
	done   bool
	count  int64
}

// Graph is a dataflow of sources and operators.
type Graph struct {
	sources []*sourceNode
	nodes   []*node
	sink    Sink
	// workCap bounds the pending-work deque in deterministic mode; 0 =
	// unbounded. When the cap is hit, the oldest pending element is
	// dropped (tail-drop under overload) and counted.
	workCap int
	dropped int64
}

// NewGraph builds an empty graph writing outputs to sink (may be nil).
func NewGraph(sink Sink) *Graph {
	if sink == nil {
		sink = func(stream.Element) {}
	}
	return &Graph{sink: sink}
}

// SetWorkCap bounds pending work (tuples queued between operators).
func (g *Graph) SetWorkCap(n int) { g.workCap = n }

// Dropped reports elements discarded by the work cap.
func (g *Graph) Dropped() int64 { return g.dropped }

// AddSource registers a stream source; connect it with ConnectSource.
func (g *Graph) AddSource(src stream.Source) int {
	g.sources = append(g.sources, &sourceNode{src: src})
	return len(g.sources) - 1
}

// AddOp registers an operator and returns its node ID.
func (g *Graph) AddOp(op ops.Operator) NodeID {
	g.nodes = append(g.nodes, &node{op: op})
	return NodeID(len(g.nodes) - 1)
}

// ConnectSource wires source si to input port of node to.
func (g *Graph) ConnectSource(si int, to NodeID, port int) error {
	if si < 0 || si >= len(g.sources) {
		return fmt.Errorf("exec: no source %d", si)
	}
	if err := g.checkPort(to, port); err != nil {
		return err
	}
	g.sources[si].out = append(g.sources[si].out, edge{to: to, port: port})
	return nil
}

// Connect wires node from's output to node to's input port.
func (g *Graph) Connect(from, to NodeID, port int) error {
	if int(from) < 0 || int(from) >= len(g.nodes) {
		return fmt.Errorf("exec: no node %d", from)
	}
	if err := g.checkPort(to, port); err != nil {
		return err
	}
	g.nodes[from].out = append(g.nodes[from].out, edge{to: to, port: port})
	return nil
}

// ConnectOut wires node from's output to the graph sink.
func (g *Graph) ConnectOut(from NodeID) error {
	if int(from) < 0 || int(from) >= len(g.nodes) {
		return fmt.Errorf("exec: no node %d", from)
	}
	g.nodes[from].out = append(g.nodes[from].out, edge{to: -1})
	return nil
}

func (g *Graph) checkPort(to NodeID, port int) error {
	if int(to) < 0 || int(to) >= len(g.nodes) {
		return fmt.Errorf("exec: no node %d", to)
	}
	if port < 0 || port >= g.nodes[to].op.NumInputs() {
		return fmt.Errorf("exec: node %s has no port %d", g.nodes[to].op.Name(), port)
	}
	return nil
}

// Stats returns a node's counters.
func (g *Graph) Stats(id NodeID) NodeStats { return g.nodes[id].stats }

// peek returns the source's next element without consuming it. Sources
// implementing stream.Resumable are not marked exhausted when they run
// dry: push-fed queues yield more elements after later Feed calls.
func (s *sourceNode) peek() (stream.Element, bool) {
	if s.done {
		return stream.Element{}, false
	}
	if s.peeked == nil {
		e, ok := s.src.Next()
		if !ok {
			if r, resumable := s.src.(stream.Resumable); !resumable || !r.Resumable() {
				s.done = true
			}
			return stream.Element{}, false
		}
		s.peeked = &e
	}
	return *s.peeked, true
}

func (s *sourceNode) take() stream.Element {
	e := *s.peeked
	s.peeked = nil
	s.count++
	return e
}

type work struct {
	to   NodeID
	port int
	e    stream.Element
}

// Run executes deterministically in virtual time: the next element
// processed is always the pending arrival with the smallest timestamp
// across sources (ties by source index), and each arrival is pushed
// through the graph to completion before the next is admitted. Stops
// after maxElements source elements (< 0 = until sources exhaust), then
// flushes every operator in insertion order. Returns elements consumed.
func (g *Graph) Run(maxElements int64) int64 {
	consumed := g.Pump(maxElements)
	g.Finish()
	return consumed
}

// Pump processes up to maxElements currently-available source elements
// (< 0 = until sources run dry) without flushing operators. Push-fed
// (resumable) sources can be replenished and pumped again — the
// mechanism behind persistent/continuous queries (slide 19).
func (g *Graph) Pump(maxElements int64) int64 {
	var consumed int64
	var queue []work
	for maxElements < 0 || consumed < maxElements {
		// Pick the earliest pending arrival.
		best := -1
		var bestTs int64
		for i, s := range g.sources {
			e, ok := s.peek()
			if !ok {
				continue
			}
			if best < 0 || e.Ts() < bestTs {
				best, bestTs = i, e.Ts()
			}
		}
		if best < 0 {
			break
		}
		src := g.sources[best]
		e := src.take()
		consumed++
		for _, ed := range src.out {
			queue = append(queue, work{to: ed.to, port: ed.port, e: e})
		}
		g.drain(&queue)
	}
	return consumed
}

// Finish flushes every operator (end-of-stream).
func (g *Graph) Finish() {
	var queue []work
	g.flush(&queue)
}

// drain processes pending work FIFO until empty.
func (g *Graph) drain(queue *[]work) {
	for len(*queue) > 0 {
		if g.workCap > 0 && len(*queue) > g.workCap {
			// Overload: tail-drop the oldest pending tuple.
			*queue = (*queue)[1:]
			g.dropped++
			continue
		}
		w := (*queue)[0]
		*queue = (*queue)[1:]
		g.dispatch(w, queue)
	}
}

func (g *Graph) dispatch(w work, queue *[]work) {
	if w.to < 0 {
		g.sink(w.e)
		return
	}
	n := g.nodes[w.to]
	n.stats.In++
	if l := len(*queue); l > n.stats.MaxQueue {
		n.stats.MaxQueue = l
	}
	n.op.Push(w.port, w.e, func(out stream.Element) {
		n.stats.Out++
		for _, ed := range n.out {
			*queue = append(*queue, work{to: ed.to, port: ed.port, e: out})
		}
	})
	if m := n.op.MemSize(); m > n.stats.MaxMemory {
		n.stats.MaxMemory = m
	}
}

// flush finalizes operators in insertion order (sources feed nodes in
// the order they were added, so insertion order is a valid topological
// order for graphs built front-to-back).
func (g *Graph) flush(queue *[]work) {
	for id := range g.nodes {
		n := g.nodes[id]
		n.op.Flush(func(out stream.Element) {
			n.stats.Out++
			for _, ed := range n.out {
				*queue = append(*queue, work{to: ed.to, port: ed.port, e: out})
			}
		})
		g.drain(queue)
	}
}

// RunConcurrent executes the graph with one goroutine per operator and
// buffered channels of the given capacity between them. Arrival order
// across different sources is not deterministic; use Run for
// experiments that depend on interleaving. Returns when all sources are
// exhausted and the pipeline has flushed. maxElements < 0 = unbounded.
func (g *Graph) RunConcurrent(maxElements int64, chanCap int) {
	if chanCap <= 0 {
		chanCap = 64
	}
	type msg struct {
		port int
		e    stream.Element
	}
	chans := make([]chan msg, len(g.nodes))
	for i := range chans {
		chans[i] = make(chan msg, chanCap)
	}
	var sinkMu sync.Mutex

	// Count writers per node so channels close exactly once.
	writers := make([]int, len(g.nodes))
	for _, s := range g.sources {
		for _, ed := range s.out {
			writers[ed.to]++
		}
	}
	for _, n := range g.nodes {
		for _, ed := range n.out {
			if ed.to >= 0 {
				writers[ed.to]++
			}
		}
	}
	var closeMu sync.Mutex
	closeOne := func(id NodeID) {
		closeMu.Lock()
		writers[id]--
		if writers[id] == 0 {
			close(chans[id])
		}
		closeMu.Unlock()
	}

	var wg sync.WaitGroup
	emitFor := func(n *node) ops.Emit {
		return func(out stream.Element) {
			for _, ed := range n.out {
				if ed.to < 0 {
					sinkMu.Lock()
					g.sink(out)
					sinkMu.Unlock()
				} else {
					chans[ed.to] <- msg{port: ed.port, e: out}
				}
			}
		}
	}
	for id := range g.nodes {
		n := g.nodes[id]
		wg.Add(1)
		go func(id NodeID, n *node) {
			defer wg.Done()
			emit := emitFor(n)
			for m := range chans[id] {
				n.stats.In++
				n.op.Push(m.port, m.e, func(out stream.Element) {
					n.stats.Out++
					emit(out)
				})
			}
			n.op.Flush(func(out stream.Element) {
				n.stats.Out++
				emit(out)
			})
			for _, ed := range n.out {
				if ed.to >= 0 {
					closeOne(ed.to)
				}
			}
		}(NodeID(id), n)
	}
	for _, s := range g.sources {
		wg.Add(1)
		go func(s *sourceNode) {
			defer wg.Done()
			var sent int64
			for maxElements < 0 || sent < maxElements {
				e, ok := s.src.Next()
				if !ok {
					break
				}
				sent++
				s.count++
				for _, ed := range s.out {
					chans[ed.to] <- msg{port: ed.port, e: e}
				}
			}
			for _, ed := range s.out {
				closeOne(ed.to)
			}
		}(s)
	}
	wg.Wait()
}
