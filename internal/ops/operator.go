// Package ops implements the physical stream operators of slides 29-33:
// per-element selection and projection, duplicate elimination, stream
// merge, the symmetric hash join [WA91], the windowed binary join in its
// hash and indexed-nested-loops variants [KNV03], and XJoin's
// memory-overflow processing [UF00].
//
// Operators are event-driven: the engine pushes one element at a time
// into a numbered input port and collects outputs via an emit callback.
// This keeps operators schedulable (slide 43's FIFO/Greedy/Chain policies
// need explicit queues between operators) and deterministic under
// virtual time.
package ops

import (
	"fmt"

	"streamdb/internal/expr"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

// Emit receives operator output elements.
type Emit func(stream.Element)

// Operator is an event-driven stream operator.
type Operator interface {
	// Name identifies the operator instance in plans and introspection.
	Name() string
	// OutSchema describes the output tuples.
	OutSchema() *tuple.Schema
	// NumInputs reports the number of input ports (1 or 2).
	NumInputs() int
	// Push processes one element arriving on the given port.
	Push(port int, e stream.Element, emit Emit)
	// Flush finalizes state at end-of-stream (e.g. closes open windows).
	Flush(emit Emit)
	// MemSize reports the operator's state footprint in bytes; the
	// memory-based optimizer and load shedder read it (slide 42).
	MemSize() int
}

// Costs optionally exposes an operator's unit cost and selectivity for
// rate-based optimization (slide 40). Operators that know their
// per-tuple cost implement it.
type Costs interface {
	// Selectivity is the expected output/input tuple ratio.
	Selectivity() float64
	// UnitCost is the relative per-tuple processing cost (1 = a simple
	// predicate evaluation).
	UnitCost() float64
}

// Replicable marks stateless operators the concurrent engine may
// transparently replicate N-ways for operator parallelism: per-tuple
// output depends only on that tuple, and Flush emits nothing. Clone
// returns an independent instance safe to drive from another goroutine
// (observation counters are per-clone).
type Replicable interface {
	Operator
	Clone() Operator
}

// KeyPartitionable marks equality-keyed two-input operators (joins) the
// concurrent engine may scale out by hash partitioning the key space: P
// replicas each own the slice hash(key) % P == k, a router sends every
// data element to the replica owning its key (both ports agree on the
// hash, so matching tuples always meet in the same replica) and
// broadcasts punctuations to all replicas. Contract: Push on a
// punctuation must emit nothing (progress signals drive state reclaim
// only), and the router may synthesize progress punctuations at
// timestamps already observed as data on the same port — sound for
// operators that treat every arrival's timestamp as an implicit
// watermark for the opposite window, which is exactly the [KNV03]
// invalidation rule. CanPartition gates the capability at the value
// level: a join whose state is global rather than per-key (a shared
// memory cap, a row-count window) must decline. PartitionHash returns
// the routing hash of a tuple arriving on the given port, reusing the
// operator's own key hash so router and index agree. ClonePartition
// returns an independent replica safe to drive from another goroutine;
// replicas fold their observation counters back into the original on
// Flush, so post-run introspection on the original stays meaningful.
type KeyPartitionable interface {
	Operator
	CanPartition() bool
	PartitionHash(port int, t *tuple.Tuple) uint64
	ClonePartition() Operator
}

// PartialAggregable marks stateful aggregation operators the concurrent
// engine may run as N partial-emitting replicas feeding one combiner
// node — the two-level (partial/final) aggregation split applied to
// intra-operator parallelism. CanPartial gates the capability at the
// value level: an operator type may implement the interface yet decline
// for configurations whose aggregates cannot ship fixed-arity partials.
// ClonePartial returns an independent replica emitting partial records
// plus progress punctuations; Combiner returns the node that merges the
// replicas' outputs into the exact single-copy result stream.
type PartialAggregable interface {
	Operator
	CanPartial() bool
	ClonePartial() Operator
	Combiner() Operator
}

// Select filters tuples by a predicate: a local per-element operator
// (slide 29). Punctuations pass through unchanged — a punctuation's
// promise survives filtering.
type Select struct {
	name string
	pred expr.Expr
	fast expr.Pred         // compiled fast lane; nil when the shape has no specialization
	kern expr.ColumnKernel // columnar kernel, compiled lazily (stateful: one per instance)
	sch  *tuple.Schema
	in   int64
	out  int64
	sel  float64 // declared selectivity estimate; <0 means "observe"
	cost float64
}

// NewSelect builds a filter. The declared selectivity seeds the
// rate-based optimizer; pass a negative value to use observed counts.
func NewSelect(name string, sch *tuple.Schema, pred expr.Expr, sel, cost float64) (*Select, error) {
	if pred.Kind() != tuple.KindBool {
		return nil, fmt.Errorf("ops: selection predicate must be boolean, got %s", pred.Kind())
	}
	if cost <= 0 {
		cost = 1
	}
	return &Select{name: name, sch: sch, pred: pred, fast: expr.CompilePredicate(pred), sel: sel, cost: cost}, nil
}

// Name implements Operator.
func (s *Select) Name() string { return s.name }

// OutSchema implements Operator.
func (s *Select) OutSchema() *tuple.Schema { return s.sch }

// NumInputs implements Operator.
func (s *Select) NumInputs() int { return 1 }

// Push implements Operator.
func (s *Select) Push(_ int, e stream.Element, emit Emit) {
	if e.IsPunct() {
		emit(e)
		return
	}
	s.in++
	var pass bool
	if s.fast != nil {
		pass = s.fast(e.Tuple)
	} else {
		pass = expr.EvalBool(s.pred, e.Tuple)
	}
	if pass {
		s.out++
		emit(e)
	}
}

// Flush implements Operator.
func (s *Select) Flush(Emit) {}

// MemSize implements Operator.
func (s *Select) MemSize() int { return 64 }

// Selectivity implements Costs: declared if provided, else observed.
func (s *Select) Selectivity() float64 {
	if s.sel >= 0 {
		return s.sel
	}
	if s.in == 0 {
		return 1
	}
	return float64(s.out) / float64(s.in)
}

// UnitCost implements Costs.
func (s *Select) UnitCost() float64 { return s.cost }

// Predicate returns the selection predicate (plan introspection).
func (s *Select) Predicate() expr.Expr { return s.pred }

// Clone implements Replicable: selection is stateless apart from its
// observation counters, which start fresh on the clone. The column
// kernel carries private scratch buffers, so the clone compiles its
// own on first use.
func (s *Select) Clone() Operator {
	c := *s
	c.in, c.out = 0, 0
	c.kern = nil
	return &c
}

// Project evaluates one expression per output field (slide 29,
// duplicate-preserving). The planner is responsible for including the
// ordering attribute when downstream operators need it [JMS95].
type Project struct {
	name  string
	exprs []expr.Expr
	sch   *tuple.Schema

	// Columnar path state (see batch.go).
	colIdx  []int // bare-column projection indexes; nil when any expr computes
	pool    *stream.ColPool
	srow    tuple.Tuple
	scratch []tuple.Value
}

// NewProject builds a projection. Output field i is exprs[i] named
// outSchema.Fields[i].
func NewProject(name string, out *tuple.Schema, exprs []expr.Expr) (*Project, error) {
	if len(exprs) != out.Arity() {
		return nil, fmt.Errorf("ops: projection has %d exprs for %d fields", len(exprs), out.Arity())
	}
	for i, e := range exprs {
		if e.Kind() != out.Fields[i].Kind && e.Kind() != tuple.KindNull {
			return nil, fmt.Errorf("ops: projection field %s is %s but expression yields %s",
				out.Fields[i].Name, out.Fields[i].Kind, e.Kind())
		}
	}
	return &Project{name: name, exprs: exprs, sch: out, colIdx: expr.CompileCols(exprs)}, nil
}

// Name implements Operator.
func (p *Project) Name() string { return p.name }

// OutSchema implements Operator.
func (p *Project) OutSchema() *tuple.Schema { return p.sch }

// NumInputs implements Operator.
func (p *Project) NumInputs() int { return 1 }

// Push implements Operator.
func (p *Project) Push(_ int, e stream.Element, emit Emit) {
	if e.IsPunct() {
		// Field patterns no longer line up after projection; forward
		// only the progress information (wildcards elsewhere).
		emit(stream.Punct(&stream.Punctuation{Ts: e.Punct.Ts}))
		return
	}
	vals := make([]tuple.Value, len(p.exprs))
	for i, ex := range p.exprs {
		vals[i] = ex.Eval(e.Tuple)
	}
	emit(stream.Tup(tuple.New(e.Tuple.Ts, vals...)))
}

// Flush implements Operator.
func (p *Project) Flush(Emit) {}

// MemSize implements Operator.
func (p *Project) MemSize() int { return 64 }

// Selectivity implements Costs.
func (p *Project) Selectivity() float64 { return 1 }

// UnitCost implements Costs.
func (p *Project) UnitCost() float64 { return float64(len(p.exprs)) }

// Clone implements Replicable: projection holds no per-tuple state.
// The columnar scratch row is per-instance; the clone grows its own.
func (p *Project) Clone() Operator {
	c := *p
	c.pool = nil
	c.srow = tuple.Tuple{}
	c.scratch = nil
	return &c
}

// DupElim is duplicate-eliminating projection, "like grouping"
// (slide 29): it tracks the keys seen in the current tumbling window and
// suppresses repeats. Window boundaries (by element time) reset state,
// keeping memory bounded for bounded windows.
type DupElim struct {
	name   string
	sch    *tuple.Schema
	keyIdx []int
	winLen int64 // 0 = whole stream (unbounded state!)
	winEnd int64
	seen   map[uint64][]*tuple.Tuple
	bytes  int
}

// NewDupElim builds a distinct operator over the given key fields with a
// tumbling window of winLen timestamp units (0 = unbounded).
func NewDupElim(name string, sch *tuple.Schema, keyIdx []int, winLen int64) *DupElim {
	return &DupElim{
		name: name, sch: sch, keyIdx: keyIdx, winLen: winLen,
		seen: make(map[uint64][]*tuple.Tuple),
	}
}

// Name implements Operator.
func (d *DupElim) Name() string { return d.name }

// OutSchema implements Operator.
func (d *DupElim) OutSchema() *tuple.Schema { return d.sch }

// NumInputs implements Operator.
func (d *DupElim) NumInputs() int { return 1 }

// Push implements Operator.
func (d *DupElim) Push(_ int, e stream.Element, emit Emit) {
	if e.IsPunct() {
		emit(e)
		return
	}
	t := e.Tuple
	if d.winLen > 0 {
		if t.Ts >= d.winEnd {
			d.seen = make(map[uint64][]*tuple.Tuple)
			d.bytes = 0
			d.winEnd = (t.Ts/d.winLen + 1) * d.winLen
		}
	}
	h := t.Key(d.keyIdx)
	for _, prev := range d.seen[h] {
		if prev.KeyEqual(t, d.keyIdx, d.keyIdx) {
			return // duplicate
		}
	}
	d.seen[h] = append(d.seen[h], t)
	d.bytes += t.MemSize()
	emit(e)
}

// Flush implements Operator.
func (d *DupElim) Flush(Emit) {}

// MemSize implements Operator.
func (d *DupElim) MemSize() int { return 64 + d.bytes }

// Union interleaves two streams with identical schemas (slide 13:
// "merging data streams"). Elements pass through in arrival order; the
// engine is responsible for arrival-order interleaving across ports.
type Union struct {
	name string
	sch  *tuple.Schema
}

// NewUnion builds a union operator.
func NewUnion(name string, sch *tuple.Schema) *Union {
	return &Union{name: name, sch: sch}
}

// Name implements Operator.
func (u *Union) Name() string { return u.name }

// OutSchema implements Operator.
func (u *Union) OutSchema() *tuple.Schema { return u.sch }

// NumInputs implements Operator.
func (u *Union) NumInputs() int { return 2 }

// Push implements Operator.
func (u *Union) Push(_ int, e stream.Element, emit Emit) {
	// A punctuation from one input does not bound the merged stream;
	// only tuples pass through. (A punctuation-correct union would
	// need to intersect promises across ports.)
	if e.IsPunct() {
		return
	}
	emit(e)
}

// Flush implements Operator.
func (u *Union) Flush(Emit) {}

// MemSize implements Operator.
func (u *Union) MemSize() int { return 32 }
