package tuple

import "testing"

// The column hash kernels feed the vectorized join build/probe and the
// batch-native partition router. They must agree bit-for-bit with the
// row-path hashes (Key1 for the single fast-kind key, Key for the
// general multi-column walk): the router computes hash%P once per
// batch, and the serial reference computes it per tuple — any
// divergence silently re-partitions keys and breaks the byte-
// equivalence matrices.

func hashColSchema() *Schema {
	return NewSchema("H",
		Field{Name: "time", Kind: KindTime, Ordering: true},
		Field{Name: "k", Kind: KindInt},
		Field{Name: "u", Kind: KindUint},
		Field{Name: "s", Kind: KindString},
	)
}

func hashColTuples() []*Tuple {
	vals := []int64{0, 1, -1, 42, -42, 1 << 40, -(1 << 40), 1<<63 - 1, -1 << 63}
	var out []*Tuple
	for i, v := range vals {
		out = append(out, New(int64(i),
			Time(int64(i)), Int(v), Uint(uint64(v)), String("s")))
	}
	// NULL and a deviating runtime kind in the key column.
	out = append(out,
		New(100, Time(100), Null, Uint(7), String("x")),
		New(101, Time(101), Float(2.5), Uint(8), String("y")),
	)
	return out
}

func TestHashColMatchesKey1(t *testing.T) {
	tuples := hashColTuples()
	col := make([]Value, len(tuples))
	for i, tp := range tuples {
		col[i] = tp.Vals[1]
	}
	out := make([]uint64, len(col))
	HashCol(col, out)
	for i, tp := range tuples {
		if want := tp.Key1(1); out[i] != want {
			t.Errorf("row %d (%s): HashCol %x, Key1 %x", i, col[i], out[i], want)
		}
	}
}

func TestHashColRowsMatchesKey1(t *testing.T) {
	tuples := hashColTuples()
	col := make([]Value, len(tuples))
	for i, tp := range tuples {
		col[i] = tp.Vals[1]
	}
	rows := []int32{0, 2, 3, 7, 8, 10}
	out := make([]uint64, len(rows))
	HashColRows(col, rows, out)
	for i, r := range rows {
		if want := tuples[r].Key1(1); out[i] != want {
			t.Errorf("sel %d row %d: HashColRows %x, Key1 %x", i, r, out[i], want)
		}
	}
}

func TestHashColsRowsMatchesKey(t *testing.T) {
	tuples := hashColTuples()
	sch := hashColSchema()
	cols := make([][]Value, sch.Arity())
	for c := range cols {
		cols[c] = make([]Value, len(tuples))
		for i, tp := range tuples {
			cols[c][i] = tp.Vals[c]
		}
	}
	rows := make([]int32, len(tuples))
	for i := range rows {
		rows[i] = int32(i)
	}
	for _, keys := range [][]int{{1}, {2}, {3}, {1, 2}, {3, 1}, {0, 1, 2, 3}} {
		out := make([]uint64, len(rows))
		HashColsRows(cols, keys, rows, out)
		for i, r := range rows {
			if want := tuples[r].Key(keys); out[i] != want {
				t.Errorf("keys %v row %d: HashColsRows %x, Key %x", keys, r, out[i], want)
			}
		}
	}
}
