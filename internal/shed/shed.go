// Package shed implements load shedding (slide 44): "when input stream
// rate exceeds system capacity a stream manager can shed load (tuples)".
// Both flavours the tutorial names are provided — random shedding, which
// drops uniformly, and semantic shedding, which drops by value so that
// the tuples most relevant to registered queries survive [TCZ+03].
// A feedback controller adjusts the drop rate to track a capacity
// target, in the spirit of Aurora's QoS-driven shedding (slide 47).
package shed

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"streamdb/internal/expr"
	"streamdb/internal/ops"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

// Random drops each tuple independently with probability Rate.
// Punctuations always pass: they carry progress, not load.
type Random struct {
	name string
	sch  *tuple.Schema
	// rate holds math.Float64bits of the drop rate; atomic so a runtime
	// controller can retune it while Push runs on another goroutine.
	rate    uint64
	rng     *rand.Rand
	seed    int64 // retained so checkpoints can reconstruct rng state
	draws   int64 // Float64 calls made; replayed on restore
	in, out int64
}

// NewRandom builds a random shedder dropping the given fraction.
func NewRandom(name string, sch *tuple.Schema, rate float64, seed int64) (*Random, error) {
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("shed: drop rate %v out of [0,1]", rate)
	}
	r := &Random{name: name, sch: sch, seed: seed, rng: rand.New(rand.NewSource(seed))}
	r.SetRate(rate)
	return r, nil
}

// Name implements ops.Operator.
func (r *Random) Name() string { return r.name }

// OutSchema implements ops.Operator.
func (r *Random) OutSchema() *tuple.Schema { return r.sch }

// NumInputs implements ops.Operator.
func (r *Random) NumInputs() int { return 1 }

// Push implements ops.Operator.
func (r *Random) Push(_ int, e stream.Element, emit ops.Emit) {
	if e.IsPunct() {
		emit(e)
		return
	}
	r.in++
	r.draws++
	if r.rng.Float64() < r.Rate() {
		return
	}
	r.out++
	emit(e)
}

// Flush implements ops.Operator.
func (r *Random) Flush(ops.Emit) {}

// MemSize implements ops.Operator.
func (r *Random) MemSize() int { return 64 }

// SetRate changes the drop rate (controller hook); safe to call
// concurrently with Push.
func (r *Random) SetRate(rate float64) {
	atomic.StoreUint64(&r.rate, math.Float64bits(clampRate(rate)))
}

// Rate returns the current drop rate.
func (r *Random) Rate() float64 { return math.Float64frombits(atomic.LoadUint64(&r.rate)) }

// Dropped reports how many tuples were shed.
func (r *Random) Dropped() int64 { return r.in - r.out }

// Semantic sheds by value: tuples satisfying Keep always pass; the rest
// are dropped with probability Rate. With Rate=1 this is a pure
// semantic filter — the "semantic load shedding" of slide 44, where the
// dropped tuples are those least useful to the standing queries.
type Semantic struct {
	name string
	sch  *tuple.Schema
	keep expr.Expr
	// rate holds math.Float64bits of the drop rate; atomic so a runtime
	// controller can retune it while Push runs on another goroutine.
	rate    uint64
	rng     *rand.Rand
	seed    int64 // retained so checkpoints can reconstruct rng state
	draws   int64 // Float64 calls made; replayed on restore
	in, out int64
	kept    int64
}

// NewSemantic builds a semantic shedder.
func NewSemantic(name string, sch *tuple.Schema, keep expr.Expr, rate float64, seed int64) (*Semantic, error) {
	if keep == nil || keep.Kind() != tuple.KindBool {
		return nil, fmt.Errorf("shed: keep predicate must be boolean")
	}
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("shed: drop rate %v out of [0,1]", rate)
	}
	s := &Semantic{name: name, sch: sch, keep: keep, seed: seed, rng: rand.New(rand.NewSource(seed))}
	s.SetRate(rate)
	return s, nil
}

// Name implements ops.Operator.
func (s *Semantic) Name() string { return s.name }

// OutSchema implements ops.Operator.
func (s *Semantic) OutSchema() *tuple.Schema { return s.sch }

// NumInputs implements ops.Operator.
func (s *Semantic) NumInputs() int { return 1 }

// Push implements ops.Operator.
func (s *Semantic) Push(_ int, e stream.Element, emit ops.Emit) {
	if e.IsPunct() {
		emit(e)
		return
	}
	s.in++
	if expr.EvalBool(s.keep, e.Tuple) {
		s.kept++
		s.out++
		emit(e)
		return
	}
	s.draws++
	if s.rng.Float64() < s.Rate() {
		return
	}
	s.out++
	emit(e)
}

// Flush implements ops.Operator.
func (s *Semantic) Flush(ops.Emit) {}

// MemSize implements ops.Operator.
func (s *Semantic) MemSize() int { return 96 }

// SetRate changes the drop rate for non-kept tuples; safe to call
// concurrently with Push.
func (s *Semantic) SetRate(rate float64) {
	atomic.StoreUint64(&s.rate, math.Float64bits(clampRate(rate)))
}

// Rate returns the current drop rate.
func (s *Semantic) Rate() float64 { return math.Float64frombits(atomic.LoadUint64(&s.rate)) }

func clampRate(rate float64) float64 {
	if rate < 0 || math.IsNaN(rate) {
		return 0
	}
	if rate > 1 {
		return 1
	}
	return rate
}

// Stats reports (input, output, kept-by-predicate) counts.
func (s *Semantic) Stats() (in, out, kept int64) { return s.in, s.out, s.kept }

// RateSetter is the controller's view of a shedder.
type RateSetter interface{ SetRate(float64) }

// Controller adjusts a shedder's drop rate so downstream load tracks a
// capacity target. Observe is called periodically with the offered rate
// (tuples/sec); the controller sets drop = max(0, 1 - capacity/offered),
// smoothed exponentially to avoid oscillation on bursty inputs.
type Controller struct {
	shedder  RateSetter
	capacity float64
	alpha    float64 // smoothing factor in (0,1]
	current  float64
}

// NewController builds a controller for the given capacity in
// tuples/sec. alpha is the exponential smoothing weight for new
// observations; 1 reacts instantly.
func NewController(s RateSetter, capacity, alpha float64) (*Controller, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("shed: capacity must be positive")
	}
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("shed: alpha must be in (0,1]")
	}
	return &Controller{shedder: s, capacity: capacity, alpha: alpha}, nil
}

// Observe feeds one offered-rate measurement and updates the shedder.
func (c *Controller) Observe(offered float64) float64 {
	target := 0.0
	if offered > c.capacity {
		target = 1 - c.capacity/offered
	}
	c.current = c.current + c.alpha*(target-c.current)
	c.shedder.SetRate(c.current)
	return c.current
}

// Rate returns the controller's current drop rate.
func (c *Controller) Rate() float64 { return c.current }
