package tuple

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Batch encoding (wire format v3). Where the self-describing per-tuple
// encoding of codec.go spends a kind byte per value and a full varint
// timestamp per tuple, the batch encoding is schema-coded: both ends
// agree on the schema (negotiated at HELLO time on the transport), so
// value kinds are implied by field position, NULLs are carried in a
// per-tuple bitmap, and timestamps are delta-varints exploiting the
// ordering attribute's monotonicity (slide 17; late tuples still work —
// deltas are signed). Layout:
//
//	uvarint count
//	per tuple:
//	  varint tsDelta            ts minus the previous tuple's ts (first
//	                            tuple: minus zero)
//	  null bitmap               ceil(arity/8) bytes, bit i set = NULL
//	  per non-NULL value, payload only, kind taken from the schema:
//	    FLOAT   8 bytes little-endian
//	    STRING  uvarint length + bytes
//	    TIME, when the field is the ordering attribute:
//	            varint of (value - tuple Ts) — the ordering attribute
//	            usually *is* the timestamp, making this one zero byte
//	    other   uvarint raw payload
//
// Decoding writes into a caller-owned Arena — one backing []Value and
// []Tuple per batch, recycled through an ArenaPool — so steady-state
// decode of string-free schemas is allocation-free.

// AppendEncodeBatch appends the schema-coded encoding of the batch to
// buf and returns the extended slice. Every tuple must conform to the
// schema: matching arity, and every non-NULL value of the declared
// kind.
func AppendEncodeBatch(buf []byte, s *Schema, tuples []*Tuple) ([]byte, error) {
	arity := s.Arity()
	bitmapLen := (arity + 7) / 8
	ordIdx := -1
	if i := s.OrderingIndex(); i >= 0 && s.Fields[i].Kind == KindTime {
		ordIdx = i
	}
	buf = binary.AppendUvarint(buf, uint64(len(tuples)))
	prev := int64(0)
	for _, t := range tuples {
		if len(t.Vals) != arity {
			return nil, fmt.Errorf("tuple: arity %d does not match schema %s", len(t.Vals), s)
		}
		buf = binary.AppendVarint(buf, t.Ts-prev)
		prev = t.Ts
		base := len(buf)
		for i := 0; i < bitmapLen; i++ {
			buf = append(buf, 0)
		}
		for i, v := range t.Vals {
			if v.Kind == KindNull {
				buf[base+i/8] |= 1 << (i % 8)
			}
		}
		for i, v := range t.Vals {
			if v.Kind == KindNull {
				continue
			}
			f := &s.Fields[i]
			if v.Kind != f.Kind {
				return nil, fmt.Errorf("tuple: field %s is %s, schema wants %s",
					f.Name, v.Kind, f.Kind)
			}
			switch f.Kind {
			case KindFloat:
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.f))
			case KindString:
				buf = binary.AppendUvarint(buf, uint64(len(v.s)))
				buf = append(buf, v.s...)
			default:
				if i == ordIdx {
					buf = binary.AppendVarint(buf, int64(v.num)-t.Ts)
				} else {
					buf = binary.AppendUvarint(buf, v.num)
				}
			}
		}
	}
	return buf, nil
}

// Arena owns the backing storage for decoded batches: one []Value and
// one []Tuple array shared by every tuple of the batch. Decoded tuples
// (and their Vals slices) alias the arena and stay valid until Reset.
// The zero Arena is ready to use; reusing one across batches makes
// steady-state decode allocation-free for string-free schemas (STRING
// payloads still copy out of the wire buffer — aliasing it would be
// unsafe once the transport reuses it).
//
// Pooled arenas are reference counted: ArenaPool.Get hands out an arena
// holding one reference, and a consumer that keeps the decoded tuples
// beyond the producer's emit call (e.g. a source queue feeding the
// engine) Retains it. Only the last Release zeroes the storage and
// returns the arena to its pool, so a retained batch is never
// invalidated by early reuse.
type Arena struct {
	vals   []Value
	tuples []Tuple
	ptrs   []*Tuple

	refs atomic.Int32
	home *ArenaPool
}

// Reset forgets everything decoded so far, keeping the backing arrays
// for reuse. Tuples handed out by earlier DecodeBatchInto calls are
// invalid (they will be overwritten) after Reset.
func (a *Arena) Reset() {
	a.vals = a.vals[:0]
	a.tuples = a.tuples[:0]
	a.ptrs = a.ptrs[:0]
}

// release zeroes the arena's storage so a pooled arena does not pin
// decoded strings against the garbage collector.
func (a *Arena) release() {
	vals := a.vals[:cap(a.vals)]
	for i := range vals {
		vals[i] = Value{}
	}
	tuples := a.tuples[:cap(a.tuples)]
	for i := range tuples {
		tuples[i] = Tuple{}
	}
	ptrs := a.ptrs[:cap(a.ptrs)]
	for i := range ptrs {
		ptrs[i] = nil
	}
	a.Reset()
}

// Retain adds a reference, pinning every tuple decoded into the arena
// until the matching Release.
func (a *Arena) Retain() { a.refs.Add(1) }

// Release drops one reference. The last release zeroes the storage and,
// for a pooled arena, makes it available for reuse; every tuple decoded
// into it becomes invalid at that point.
func (a *Arena) Release() {
	if a.refs.Add(-1) != 0 {
		return
	}
	a.release()
	if a.home != nil {
		a.home.pool.Put(a)
	}
}

// ArenaPool is a freelist of decode arenas. Get hands out an arena with
// one reference held by the caller; Put drops that reference, and the
// arena is only reused once every Retain has been matched by a Release.
type ArenaPool struct {
	pool sync.Pool
}

// NewArenaPool builds an arena freelist.
func NewArenaPool() *ArenaPool {
	p := &ArenaPool{}
	p.pool.New = func() interface{} { return new(Arena) }
	return p
}

// Get returns an empty arena holding one reference for the caller.
func (p *ArenaPool) Get() *Arena {
	a := p.pool.Get().(*Arena)
	a.home = p
	a.refs.Store(1)
	return a
}

// Put drops the caller's reference (Release). Unless a consumer still
// holds a Retain, every tuple previously decoded into the arena becomes
// invalid.
func (p *ArenaPool) Put(a *Arena) { a.Release() }

// growValues extends s by extra elements, reallocating only when the
// capacity is exhausted.
func growValues(s []Value, extra int) []Value {
	need := len(s) + extra
	if cap(s) >= need {
		return s[:need]
	}
	grown := make([]Value, need, 2*need)
	copy(grown, s)
	return grown
}

func growTuples(s []Tuple, extra int) []Tuple {
	need := len(s) + extra
	if cap(s) >= need {
		return s[:need]
	}
	grown := make([]Tuple, need, 2*need)
	copy(grown, s)
	return grown
}

func growPtrs(s []*Tuple, extra int) []*Tuple {
	need := len(s) + extra
	if cap(s) >= need {
		return s[:need]
	}
	grown := make([]*Tuple, need, 2*need)
	copy(grown, s)
	return grown
}

// DecodeBatchInto parses one batch from buf into the arena, returning
// the decoded tuples and the number of bytes consumed. The returned
// slice and every tuple in it alias the arena: they are valid until the
// arena is Reset (or returned to an ArenaPool). Decoding appends — an
// arena may accumulate several batches before a Reset. On error the
// arena is rolled back to its pre-call state.
func DecodeBatchInto(buf []byte, s *Schema, a *Arena) ([]*Tuple, int, error) {
	count64, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, 0, fmt.Errorf("tuple: truncated batch count")
	}
	off := n
	// Each tuple costs at least one delta byte, so count is bounded by
	// the buffer length; this keeps a corrupt count from sizing the
	// arena arbitrarily.
	if count64 > uint64(len(buf)) {
		return nil, 0, fmt.Errorf("tuple: batch count %d exceeds buffer", count64)
	}
	count := int(count64)
	arity := s.Arity()
	bitmapLen := (arity + 7) / 8
	ordIdx := -1
	if i := s.OrderingIndex(); i >= 0 && s.Fields[i].Kind == KindTime {
		ordIdx = i
	}

	valsBase := len(a.vals)
	tupBase := len(a.tuples)
	ptrBase := len(a.ptrs)
	a.vals = growValues(a.vals, count*arity)
	a.tuples = growTuples(a.tuples, count)
	a.ptrs = growPtrs(a.ptrs, count)
	fail := func(format string, args ...interface{}) ([]*Tuple, int, error) {
		a.vals = a.vals[:valsBase]
		a.tuples = a.tuples[:tupBase]
		a.ptrs = a.ptrs[:ptrBase]
		return nil, 0, fmt.Errorf(format, args...)
	}

	prev := int64(0)
	for t := 0; t < count; t++ {
		delta, n := binary.Varint(buf[off:])
		if n <= 0 {
			return fail("tuple: truncated batch timestamp %d", t)
		}
		off += n
		prev += delta
		if bitmapLen > len(buf)-off {
			return fail("tuple: truncated null bitmap %d", t)
		}
		bitmap := buf[off : off+bitmapLen]
		off += bitmapLen
		vals := a.vals[valsBase+t*arity : valsBase+(t+1)*arity : valsBase+(t+1)*arity]
		for i := 0; i < arity; i++ {
			if bitmap[i/8]&(1<<(i%8)) != 0 {
				vals[i] = Null
				continue
			}
			switch k := s.Fields[i].Kind; k {
			case KindNull:
				vals[i] = Null
			case KindFloat:
				if 8 > len(buf)-off {
					return fail("tuple: truncated float in batch tuple %d", t)
				}
				vals[i] = Float(math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])))
				off += 8
			case KindString:
				ln, n := binary.Uvarint(buf[off:])
				if n <= 0 {
					return fail("tuple: truncated string in batch tuple %d", t)
				}
				off += n
				if ln > uint64(len(buf)-off) {
					return fail("tuple: truncated string in batch tuple %d", t)
				}
				vals[i] = String(string(buf[off : off+int(ln)]))
				off += int(ln)
			default:
				if i == ordIdx {
					d, n := binary.Varint(buf[off:])
					if n <= 0 {
						return fail("tuple: truncated value in batch tuple %d", t)
					}
					off += n
					vals[i] = Value{Kind: k, num: uint64(d + prev)}
					continue
				}
				num, n := binary.Uvarint(buf[off:])
				if n <= 0 {
					return fail("tuple: truncated value in batch tuple %d", t)
				}
				off += n
				vals[i] = Value{Kind: k, num: num}
			}
		}
		a.tuples[tupBase+t] = Tuple{Ts: prev, Vals: vals}
		a.ptrs[ptrBase+t] = &a.tuples[tupBase+t]
	}
	return a.ptrs[ptrBase:], off, nil
}
