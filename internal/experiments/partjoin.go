package experiments

import (
	"fmt"
	"time"

	"streamdb/internal/exec"
	"streamdb/internal/ops"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
	"streamdb/internal/window"
)

// E20PartitionedJoins measures key-partitioned parallel execution of
// the [KNV03] window join on a 10:1 rate-asymmetric workload, for each
// probe-method configuration of slide 33: hash/hash, INL/INL, and the
// asymmetric pairing (INL on the fast side's window — no index
// maintenance on the hot insert path — hash on the slow side's window,
// which the fast stream probes constantly). Each method runs serially
// and as P=4 replicas behind the hash-split router; the partitioned
// output must be byte-identical to the serial run, and INL probe work
// must drop by ~P because every replica scans only its key slice of
// the window.
func E20PartitionedJoins(scale Scale) *Table {
	t := &Table{
		ID:     "E20",
		Title:  "key-partitioned window joins on a rate-asymmetric stream (slide 33 + scale-out)",
		Header: []string{"method", "path", "P", "elems", "probes", "elems/s", "speedup", "exact"},
	}
	a, b := joinSchemas()
	input := genJoinInput(202, scale.N(40000), 500)
	var lefts, rights []stream.Element
	for _, in := range input {
		if in.port == 0 {
			lefts = append(lefts, stream.Tup(in.t))
		} else {
			rights = append(rights, stream.Tup(in.t))
		}
	}
	n := len(input)
	// Average inter-arrival gap is ~500 ticks, so this range keeps a few
	// hundred fast-side tuples live — enough probe work for the INL
	// partitioning win to be visible over router overhead.
	win := window.Time(200000, 200000)

	run := func(lm, rm ops.JoinMethod, parallel int) (*ops.WindowJoin, []byte, float64) {
		j, err := ops.NewWindowJoin("j", a, b,
			ops.JoinConfig{Window: win, Method: lm, Key: []int{1}},
			ops.JoinConfig{Window: win, Method: rm, Key: []int{1}},
			nil)
		if err != nil {
			panic(err)
		}
		var out []byte
		g := exec.NewGraph(func(e stream.Element) {
			if !e.IsPunct() {
				out = tuple.AppendEncode(out, e.Tuple)
			}
		})
		sl := g.AddSource(stream.FromElements(a, lefts...))
		sr := g.AddSource(stream.FromElements(b, rights...))
		id := g.AddOp(j)
		if err := g.ConnectSource(sl, id, 0); err != nil {
			panic(err)
		}
		if err := g.ConnectSource(sr, id, 1); err != nil {
			panic(err)
		}
		if err := g.ConnectOut(id); err != nil {
			panic(err)
		}
		start := time.Now()
		if parallel <= 1 {
			g.Run(-1)
		} else {
			g.RunWith(-1, exec.RunOptions{
				BatchSize: 64, Parallelism: parallel,
				ForceParallelism: true, PartitionJoins: true,
			})
		}
		return j, out, float64(n) / time.Since(start).Seconds()
	}

	methods := []struct {
		label  string
		lm, rm ops.JoinMethod
	}{
		{"hash/hash", ops.JoinHash, ops.JoinHash},
		{"inl/inl", ops.JoinNestedLoop, ops.JoinNestedLoop},
		// Fast side (port 0, 10x rate) scanned by INL, slow side indexed.
		{"asym inl+hash", ops.JoinNestedLoop, ops.JoinHash},
	}
	for _, m := range methods {
		js, base, serialRate := run(m.lm, m.rm, 1)
		t.AddRow(m.label, "serial", 1, n, js.Probes(),
			fmt.Sprintf("%.3g", serialRate), "1.00x", true)
		jp, out, rate := run(m.lm, m.rm, 4)
		t.AddRow(m.label, "partitioned", 4, n, jp.Probes(),
			fmt.Sprintf("%.3g", rate), fmt.Sprintf("%.2fx", rate/serialRate),
			string(out) == string(base))
	}
	t.Notes = append(t.Notes,
		"exact = partitioned output byte-identical to the same method's serial run (timestamp-aware port merge + sequence-restoring output merge)",
		"probes on partitioned rows are the replicas' counters folded into the parent at Flush",
		"expected shape: INL probe counts drop by ~P under partitioning (each replica scans one key slice); hash probe counts are unchanged (a bucket already holds exactly one key's candidates)",
		"single-core hosts still gain on INL configurations: the speedup is probe-work reduction, not parallelism")
	return t
}
