package ops

import (
	"math/rand"
	"testing"

	"streamdb/internal/stream"
	"streamdb/internal/tuple"
	"streamdb/internal/window"
)

func mjSchema(name string) *tuple.Schema {
	return tuple.NewSchema(name,
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "k", Kind: tuple.KindInt},
	)
}

func mjInputs(n int, win window.Spec) []MJoinInput {
	ins := make([]MJoinInput, n)
	for i := range ins {
		ins[i] = MJoinInput{Schema: mjSchema(string(rune('A' + i))), Key: 1, Window: win}
	}
	return ins
}

func mjTuple(ts, k int64) *tuple.Tuple {
	return tuple.New(ts, tuple.Time(ts), tuple.Int(k))
}

func TestMJoinThreeWayBasic(t *testing.T) {
	m, err := NewMJoin("m3", mjInputs(3, window.Tumbling(1000)), nil, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	var out []*tuple.Tuple
	emit := func(e stream.Element) { out = append(out, e.Tuple) }
	m.Push(0, stream.Tup(mjTuple(1, 7)), emit)
	m.Push(1, stream.Tup(mjTuple(2, 7)), emit)
	if len(out) != 0 {
		t.Fatal("emitted before all inputs matched")
	}
	m.Push(2, stream.Tup(mjTuple(3, 7)), emit)
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
	// Fields in declaration order: A then B then C.
	got := out[0]
	if len(got.Vals) != 6 {
		t.Fatalf("arity = %d", len(got.Vals))
	}
	tsA, _ := got.Vals[0].AsTime()
	tsB, _ := got.Vals[2].AsTime()
	tsC, _ := got.Vals[4].AsTime()
	if tsA != 1 || tsB != 2 || tsC != 3 {
		t.Errorf("field order: %d, %d, %d", tsA, tsB, tsC)
	}
	if got.Ts != 3 {
		t.Errorf("result ts = %d", got.Ts)
	}
	// A second C tuple with the same key joins the existing pair.
	m.Push(2, stream.Tup(mjTuple(4, 7)), emit)
	if len(out) != 2 {
		t.Errorf("second combination not emitted")
	}
}

func TestMJoinCartesianCombinations(t *testing.T) {
	m, err := NewMJoin("m3", mjInputs(3, window.Tumbling(1000)), nil, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	emit := func(stream.Element) { count++ }
	// 2 tuples in A, 3 in B, then one C arrival: 2*3 = 6 combinations.
	m.Push(0, stream.Tup(mjTuple(1, 5)), emit)
	m.Push(0, stream.Tup(mjTuple(2, 5)), emit)
	m.Push(1, stream.Tup(mjTuple(3, 5)), emit)
	m.Push(1, stream.Tup(mjTuple(4, 5)), emit)
	m.Push(1, stream.Tup(mjTuple(5, 5)), emit)
	count = 0
	m.Push(2, stream.Tup(mjTuple(6, 5)), emit)
	if count != 6 {
		t.Errorf("combinations = %d, want 6", count)
	}
}

// refMJoin computes the expected 3-way result count: every (a, b, c)
// triple with equal keys where each pair is within the window at the
// LATEST member's arrival. With a shared tumbling window W and lazy
// expiry at arrival time, a triple forms iff at the last arrival the
// two earlier tuples are still in scope.
func TestMJoinMatchesTwoStageReference(t *testing.T) {
	// With unbounded windows the N-way join count must equal the
	// composition of two binary joins.
	rng := rand.New(rand.NewSource(33))
	type ev struct {
		port int
		k    int64
	}
	var evs []ev
	for i := 0; i < 600; i++ {
		evs = append(evs, ev{port: rng.Intn(3), k: rng.Int63n(8)})
	}
	m, err := NewMJoin("m3", mjInputs(3, window.Spec{}), nil, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	var mjCount int64
	emit := func(stream.Element) { mjCount++ }
	counts := [3]map[int64]int64{{}, {}, {}}
	var expected int64
	for i, e := range evs {
		ts := int64(i + 1)
		m.Push(e.port, stream.Tup(mjTuple(ts, e.k)), emit)
		// The arrival forms count[other1][k] * count[other2][k] triples.
		prod := int64(1)
		for p := 0; p < 3; p++ {
			if p != e.port {
				prod *= counts[p][e.k]
			}
		}
		expected += prod
		counts[e.port][e.k]++
	}
	if mjCount != expected {
		t.Errorf("mjoin = %d, reference = %d", mjCount, expected)
	}
}

func TestMJoinWindowExpiry(t *testing.T) {
	m, err := NewMJoin("m3", mjInputs(3, window.Tumbling(10)), nil, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	emit := func(stream.Element) { count++ }
	m.Push(0, stream.Tup(mjTuple(1, 7)), emit)
	m.Push(1, stream.Tup(mjTuple(2, 7)), emit)
	// C arrives far later: A and B expired.
	m.Push(2, stream.Tup(mjTuple(100, 7)), emit)
	if count != 0 {
		t.Errorf("expired tuples joined: %d", count)
	}
	sizes := m.WindowSizes()
	if sizes[0] != 0 || sizes[1] != 0 || sizes[2] != 1 {
		t.Errorf("window sizes = %v", sizes)
	}
}

func TestMJoinPunctuationInvalidates(t *testing.T) {
	m, err := NewMJoin("m2", mjInputs(2, window.Tumbling(10)), nil, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	emit := func(stream.Element) {}
	m.Push(0, stream.Tup(mjTuple(1, 7)), emit)
	m.Push(1, stream.Punct(stream.ProgressPunct(100, 0, tuple.Time(100))), emit)
	if sizes := m.WindowSizes(); sizes[0] != 0 {
		t.Errorf("punctuation did not expire: %v", sizes)
	}
}

func TestMJoinAdaptiveOrderReducesProbes(t *testing.T) {
	// One input has a tiny window, another a huge one. Probing the tiny
	// window first prunes non-matching arrivals cheaply.
	run := func(adaptive bool) int64 {
		ins := []MJoinInput{
			{Schema: mjSchema("BIG"), Key: 1, Window: window.Spec{}},
			{Schema: mjSchema("SMALL"), Key: 1, Window: window.Spec{}},
			{Schema: mjSchema("PROBE"), Key: 1, Window: window.Spec{}},
		}
		m, err := NewMJoin("m", ins, nil, adaptive, 64)
		if err != nil {
			t.Fatal(err)
		}
		emit := func(stream.Element) {}
		ts := int64(0)
		// Load BIG with many tuples of keys 0..99, SMALL with only key 0.
		for i := int64(0); i < 2000; i++ {
			ts++
			m.Push(0, stream.Tup(mjTuple(ts, i%100)), emit)
		}
		ts++
		m.Push(1, stream.Tup(mjTuple(ts, 0)), emit)
		// Now probe with arrivals on PROBE that mostly miss SMALL.
		before, _, _ := m.Stats()
		_ = before
		for i := int64(1); i < 500; i++ {
			ts++
			m.Push(2, stream.Tup(mjTuple(ts, i%100)), emit)
		}
		_, probes, _ := m.Stats()
		return probes
	}
	fixed := run(false)   // declaration order probes BIG first
	adaptive := run(true) // adapts to probe SMALL first
	if adaptive >= fixed {
		t.Errorf("adaptive probes %d >= fixed %d", adaptive, fixed)
	}
}

func TestMJoinValidation(t *testing.T) {
	if _, err := NewMJoin("m", mjInputs(1, window.Spec{}), nil, false, 0); err == nil {
		t.Error("single input accepted")
	}
	bad := mjInputs(2, window.Spec{})
	bad[1].Key = 9
	if _, err := NewMJoin("m", bad, nil, false, 0); err == nil {
		t.Error("key out of range accepted")
	}
	mixed := []MJoinInput{
		{Schema: mjSchema("A"), Key: 1, Window: window.Spec{}},
		{Schema: tuple.NewSchema("S",
			tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
			tuple.Field{Name: "k", Kind: tuple.KindString}), Key: 1, Window: window.Spec{}},
	}
	if _, err := NewMJoin("m", mixed, nil, false, 0); err == nil {
		t.Error("int/string key mix accepted")
	}
}

func TestMJoinStatsAndMemSize(t *testing.T) {
	m, err := NewMJoin("m", mjInputs(2, window.Spec{}), nil, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	emit := func(stream.Element) {}
	m.Push(0, stream.Tup(mjTuple(1, 1)), emit)
	m.Push(1, stream.Tup(mjTuple(2, 1)), emit)
	arr, probes, emitted := m.Stats()
	if arr != 2 || probes == 0 || emitted != 1 {
		t.Errorf("stats = %d, %d, %d", arr, probes, emitted)
	}
	if m.MemSize() <= 128 {
		t.Error("MemSize ignores state")
	}
	if m.NumInputs() != 2 || m.OutSchema().Arity() != 4 {
		t.Error("metadata broken")
	}
}
