package window

import "fmt"

// PaneAssigner implements pane-based (sub-aggregate sharing) window
// assignment: instead of mapping a tuple into every overlapping window
// instance, each tuple maps into exactly one slide-aligned *pane*
// [k*Slide, (k+1)*Slide), and a window instance is the disjoint union
// of Range/Slide consecutive panes. Distributive and algebraic
// aggregates accumulate one partial per pane (O(1) state updates per
// tuple) and a window's result is the fold of its panes' partials —
// the low-level/high-level split of Gigascope's two-level architecture
// (slides 34-37) applied inside a single operator.
//
// The decomposition is sound only when every window boundary is a pane
// boundary, i.e. Range is a multiple of Slide; PaneCompatible gates it.
type PaneAssigner struct {
	spec Spec
}

// PaneCompatible reports whether the spec's windows decompose into
// slide-aligned panes: a non-landmark time window whose range is a
// positive multiple of its slide. (Landmark windows are already O(1)
// per tuple — a single growing instance — and gain nothing from panes.
// A range that is not a multiple of the slide yields windows whose
// edges cut through panes, so pane partials cannot be shared.)
func PaneCompatible(spec Spec) bool {
	return spec.Kind == KindTime && !spec.Landmark &&
		spec.Slide > 0 && spec.Range > 0 && spec.Range%spec.Slide == 0
}

// NewPaneAssigner builds a pane assigner; the spec must be
// PaneCompatible.
func NewPaneAssigner(spec Spec) (*PaneAssigner, error) {
	if !PaneCompatible(spec) {
		return nil, fmt.Errorf("window: spec %s does not decompose into panes", spec)
	}
	return &PaneAssigner{spec: spec}, nil
}

// Spec returns the assigner's window spec.
func (p *PaneAssigner) Spec() Spec { return p.spec }

// Pane returns the single pane containing ts.
func (p *PaneAssigner) Pane(ts int64) ID {
	start := (ts / p.spec.Slide) * p.spec.Slide
	return ID{Start: start, End: start + p.spec.Slide}
}

// Windows visits the window instances that cover the pane starting at
// paneStart, newest first (matching Assigner.Assign's order), skipping
// instances that would start before the stream origin. Return false to
// stop.
func (p *PaneAssigner) Windows(paneStart int64, f func(ID) bool) {
	for start := paneStart; start > paneStart-p.spec.Range; start -= p.spec.Slide {
		if start < 0 {
			return
		}
		if !f(ID{Start: start, End: start + p.spec.Range}) {
			return
		}
	}
}

// Panes visits the pane start offsets constituting window w, oldest
// first — the deterministic fold order for combining partials.
func (p *PaneAssigner) Panes(w ID, f func(paneStart int64) bool) {
	for ps := w.Start; ps < w.End; ps += p.spec.Slide {
		if !f(ps) {
			return
		}
	}
}

// Retired reports whether the pane starting at paneStart can be
// dropped once time has advanced to watermark: its youngest covering
// window [paneStart, paneStart+Range) has closed.
func (p *PaneAssigner) Retired(paneStart, watermark int64) bool {
	return paneStart+p.spec.Range <= watermark
}
