package exec

// Byte-equivalence tests for the key-partitioned join lane: a window
// join running as P hash-split replicas behind the router must
// reproduce the serial deterministic Run byte-for-byte — same tuples,
// same order — across join methods, residual predicates, batch sizes,
// and partition widths, including late tuples and punctuation-driven
// expiry. The splitter's timestamp-aware port merge re-derives the
// serial interleave and the sequence-restoring output merge puts the
// replicas' results back in that order.

import (
	"fmt"
	"math/rand"
	"testing"

	"streamdb/internal/expr"
	"streamdb/internal/ops"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
	"streamdb/internal/window"
)

var pjLeft = tuple.NewSchema("L",
	tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
	tuple.Field{Name: "k", Kind: tuple.KindInt},
	tuple.Field{Name: "lv", Kind: tuple.KindInt},
)

var pjRight = tuple.NewSchema("R",
	tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
	tuple.Field{Name: "k", Kind: tuple.KindInt},
	tuple.Field{Name: "rv", Kind: tuple.KindInt},
)

// pjStream builds one port's input: mostly ordered, with occasional
// late tuples up to 28 ticks behind, duplicate keys drawn from a small
// domain, and periodic progress punctuations held 40 ticks behind the
// local maximum so stragglers never violate them. Port 0 uses even
// timestamps and port 1 odd, so the serial interleave has no cross-port
// ties and the merge order is forced by timestamps alone.
func pjStream(n int, port int64, keys int64, seed int64) []stream.Element {
	rng := rand.New(rand.NewSource(seed))
	var elems []stream.Element
	maxTs := int64(0)
	for i := 0; i < n; i++ {
		ts := maxTs + 2*rng.Int63n(4)
		if maxTs > 60 && rng.Int63n(16) == 0 {
			ts = maxTs - 2*rng.Int63n(15) // straggler, ≤28 behind
		}
		if ts > maxTs {
			maxTs = ts
		}
		elems = append(elems, stream.Tup(tuple.New(ts+port,
			tuple.Time(ts+port), tuple.Int(rng.Int63n(keys)), tuple.Int(int64(i)))))
		if i%61 == 60 && maxTs > 40 {
			p := maxTs + port - 40
			elems = append(elems, stream.Punct(stream.ProgressPunct(p, 0, tuple.Time(p))))
		}
	}
	return elems
}

func pjJoin(t *testing.T, lm, rm ops.JoinMethod, residual bool) *ops.WindowJoin {
	t.Helper()
	var res expr.Expr
	if residual {
		out := pjLeft.Concat(pjRight)
		r, err := expr.NewBin(expr.OpGt,
			expr.MustColumn(out, "lv"), expr.MustColumn(out, "rv"))
		if err != nil {
			t.Fatal(err)
		}
		res = r
	}
	j, err := ops.NewWindowJoin("pj", pjLeft, pjRight,
		ops.JoinConfig{Window: window.Time(64, 64), Method: lm, Key: []int{1}},
		ops.JoinConfig{Window: window.Time(32, 32), Method: rm, Key: []int{1}},
		res)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// runPartJoin drives (source 0, source 1) -> join -> sink; opts == nil
// uses the serial deterministic Run.
func runPartJoin(t *testing.T, j *ops.WindowJoin, left, right []stream.Element, opts *RunOptions) (NodeStats, []string) {
	t.Helper()
	var got []string
	g := NewGraph(func(e stream.Element) {
		if e.IsPunct() {
			got = append(got, fmt.Sprintf("punct@%d", e.Punct.Ts))
			return
		}
		got = append(got, fmt.Sprintf("%d|%s", e.Tuple.Ts, e.Tuple.String()))
	})
	sl := g.AddSource(stream.FromElements(pjLeft, left...))
	sr := g.AddSource(stream.FromElements(pjRight, right...))
	n := g.AddOp(j)
	if err := g.ConnectSource(sl, n, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.ConnectSource(sr, n, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.ConnectOut(n); err != nil {
		t.Fatal(err)
	}
	if opts == nil {
		g.Run(-1)
	} else {
		g.RunWith(-1, *opts)
	}
	return g.Stats(n), got
}

func pjData(elems []stream.Element) int64 {
	var n int64
	for _, e := range elems {
		if !e.IsPunct() {
			n++
		}
	}
	return n
}

// TestPartitionedJoinEquivalenceMatrix: every (method pair × residual ×
// RunOptions) cell must be byte-identical to the serial run of the same
// join. The asymmetric cell pairs a hash index with a nested-loop scan,
// the configuration [KNV03] motivates for rate-asymmetric inputs.
func TestPartitionedJoinEquivalenceMatrix(t *testing.T) {
	methods := []struct {
		label  string
		lm, rm ops.JoinMethod
	}{
		{"hash", ops.JoinHash, ops.JoinHash},
		{"inl", ops.JoinNestedLoop, ops.JoinNestedLoop},
		{"asym", ops.JoinHash, ops.JoinNestedLoop},
	}
	matrix := []RunOptions{
		{BatchSize: 7, Parallelism: 1, ForceParallelism: true, PartitionJoins: true},
		{BatchSize: 64, Parallelism: 2, ForceParallelism: true, PartitionJoins: true},
		{BatchSize: 7, Parallelism: 4, ForceParallelism: true, PartitionJoins: true},
		{BatchSize: 64, Parallelism: 4, ForceParallelism: true, PartitionJoins: true},
		// Note: the plain concurrent path without the router ({BatchSize:
		// 64} alone) is absent deliberately — it consumes the two input
		// edges in arbitrary interleave, and a TIME-windowed join's output
		// depends on cross-port arrival order. The router's timestamp-
		// aware port merge is precisely what restores determinism.
	}
	left := pjStream(1200, 0, 6, 42)
	right := pjStream(1200, 1, 6, 99)
	data := pjData(left) + pjData(right)
	for _, m := range methods {
		for _, residual := range []bool{false, true} {
			label := m.label
			if residual {
				label += "+residual"
			}
			_, base := runPartJoin(t, pjJoin(t, m.lm, m.rm, residual), left, right, nil)
			if len(base) == 0 {
				t.Fatalf("%s: serial baseline produced nothing", label)
			}
			for _, o := range matrix {
				o := o
				st, got := runPartJoin(t, pjJoin(t, m.lm, m.rm, residual), left, right, &o)
				sameSeq(t, fmt.Sprintf("%s/%+v", label, o), got, base)
				if o.PartitionJoins {
					if st.Replicas != o.Parallelism {
						t.Errorf("%s/%+v: Replicas = %d, want %d", label, o, st.Replicas, o.Parallelism)
					}
					var routed int64
					for _, c := range st.Routed {
						routed += c
					}
					if len(st.Routed) != o.Parallelism || routed != data {
						t.Errorf("%s/%+v: Routed = %v (sum %d), want %d replicas summing %d",
							label, o, st.Routed, routed, o.Parallelism, data)
					}
				}
			}
		}
	}
}

// TestPartitionedJoinFoldsStats: after a partitioned run the original
// operator's counters must cover the whole run (replicas fold at
// Flush), so introspection keeps working.
func TestPartitionedJoinFoldsStats(t *testing.T) {
	left := pjStream(600, 0, 4, 7)
	right := pjStream(600, 1, 4, 8)
	serial := pjJoin(t, ops.JoinHash, ops.JoinHash, false)
	_, base := runPartJoin(t, serial, left, right, nil)
	part := pjJoin(t, ops.JoinHash, ops.JoinHash, false)
	opts := RunOptions{BatchSize: 64, Parallelism: 4, ForceParallelism: true, PartitionJoins: true}
	_, got := runPartJoin(t, part, left, right, &opts)
	sameSeq(t, "fold", got, base)
	if part.Emitted() != serial.Emitted() || part.Emitted() == 0 {
		t.Errorf("folded Emitted = %d, want %d", part.Emitted(), serial.Emitted())
	}
	// Hash probes inspect exactly the matching bucket, so the folded
	// probe count matches the serial count; partitioning only splits the
	// buckets across replicas.
	if part.Probes() != serial.Probes() {
		t.Errorf("folded Probes = %d, want %d", part.Probes(), serial.Probes())
	}
	// Expired counts physical reclaims, and each replica's sweep strands
	// its own expired-behind-front stragglers at end of stream, so the
	// folded total tracks the serial count from below.
	sl, sr := serial.Expired()
	pl, pr := part.Expired()
	if pl+pr == 0 || pl > sl || pr > sr {
		t.Errorf("folded Expired = (%d, %d), want nonzero and <= serial (%d, %d)", pl, pr, sl, sr)
	}
}

// TestPartitionedXJoinMultisetEquivalence: XJoin's cleanup phase emits
// per-partition, so a partitioned run promises multiset equality rather
// than byte order. Spills are forced by a tiny budget to cover the
// replica cleanup path.
func TestPartitionedXJoinMultisetEquivalence(t *testing.T) {
	left := pjStream(800, 0, 5, 3)
	right := pjStream(800, 1, 5, 4)
	run := func(opts *RunOptions) map[string]int {
		x, err := ops.NewXJoin("px", pjLeft, pjRight, []int{1}, []int{1}, 4, 64, nil, t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]int{}
		g := NewGraph(func(e stream.Element) {
			if !e.IsPunct() {
				got[e.Tuple.String()]++
			}
		})
		sl := g.AddSource(stream.FromElements(pjLeft, left...))
		sr := g.AddSource(stream.FromElements(pjRight, right...))
		n := g.AddOp(x)
		if err := g.ConnectSource(sl, n, 0); err != nil {
			t.Fatal(err)
		}
		if err := g.ConnectSource(sr, n, 1); err != nil {
			t.Fatal(err)
		}
		if err := g.ConnectOut(n); err != nil {
			t.Fatal(err)
		}
		if opts == nil {
			g.Run(-1)
		} else {
			g.RunWith(-1, *opts)
		}
		return got
	}
	base := run(nil)
	if len(base) == 0 {
		t.Fatal("serial XJoin produced nothing")
	}
	opts := RunOptions{BatchSize: 32, Parallelism: 4, ForceParallelism: true, PartitionJoins: true}
	got := run(&opts)
	if len(got) != len(base) {
		t.Fatalf("partitioned XJoin: %d distinct rows, want %d", len(got), len(base))
	}
	for k, v := range base {
		if got[k] != v {
			t.Errorf("row %q: count %d, want %d", k, got[k], v)
		}
	}
}
