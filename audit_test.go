package streamdb

// Integration test for the 3-level architecture's DBMS role (slide 15):
// the stream system populates relations, and the resource-rich DBMS
// audits the stream system's answers by recomputing them one-time over
// the stored raw data.

import (
	"testing"

	"streamdb/internal/relation"
)

func TestDBMSAuditsStreamResults(t *testing.T) {
	eng := New()
	sch := trafficSchema()
	eng.RegisterSchema("Traffic", sch)

	// Raw feed captured into a relation while the stream query runs.
	db := relation.NewDB()
	rawTbl, err := db.Create("raw_traffic", sch)
	if err != nil {
		t.Fatal(err)
	}
	var tuples []*Tuple
	for i := int64(0); i < 1000; i++ {
		tp := NewTuple(i*Second/10,
			Time(i*Second/10), IP(uint32(i%8)), Uint(uint64(100+i%1400)))
		tuples = append(tuples, tp)
		if err := rawTbl.Insert(tp); err != nil {
			t.Fatal(err)
		}
	}

	// Continuous query result, also persisted to a relation
	// (stream-in, relation-out).
	eng.SetSource("Traffic", FromTuples(sch, tuples...))
	res, err := eng.Query(
		"select srcIP, count(*) as pkts from Traffic where length > 512 group by srcIP")
	if err != nil {
		t.Fatal(err)
	}
	resultTbl, err := db.Create("per_source", res.Schema)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if err := resultTbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}

	// Audit: one-time query over the STORED raw relation through the
	// same query processor (transient query, slide 19), compared with
	// the stream system's persisted answers.
	auditEng := New()
	auditEng.RegisterSchema("raw_traffic", sch)
	auditEng.SetSource("raw_traffic", rawTbl.Source())
	audit, err := auditEng.Query(
		"select srcIP, count(*) as pkts from raw_traffic where length > 512 group by srcIP")
	if err != nil {
		t.Fatal(err)
	}

	fromStream := map[uint64]int64{}
	resultTbl.Scan(func(r *Tuple) bool {
		ip, _ := r.Vals[0].AsUint()
		c, _ := r.Vals[1].AsInt()
		fromStream[ip] += c
		return true
	})
	fromAudit := map[uint64]int64{}
	for _, r := range audit.Rows {
		ip, _ := r.Vals[0].AsUint()
		c, _ := r.Vals[1].AsInt()
		fromAudit[ip] += c
	}
	if len(fromStream) == 0 || len(fromStream) != len(fromAudit) {
		t.Fatalf("group counts differ: stream %d vs audit %d", len(fromStream), len(fromAudit))
	}
	for ip, want := range fromAudit {
		if fromStream[ip] != want {
			t.Errorf("srcIP %d: stream %d vs audit %d", ip, fromStream[ip], want)
		}
	}
}

func TestRelationToStreamFeedsContinuousQuery(t *testing.T) {
	// IStream over a changing relation drives a standing query: the
	// CQL relation-to-stream composition (slide 25).
	eng := New()
	sch := trafficSchema()
	eng.RegisterSchema("Traffic", sch)
	var alerts int
	cq, err := eng.RegisterContinuous(
		"select * from Traffic where length > 1000",
		func(*Tuple) { alerts++ })
	if err != nil {
		t.Fatal(err)
	}
	tbl := relation.NewTable(sch)
	streamer := relation.NewStreamer(relation.IStream)

	insert := func(ts int64, length uint64) {
		tbl.Insert(NewTuple(ts, Time(ts), IP(1), Uint(length)))
	}
	insert(1, 50)
	insert(2, 1500)
	for _, el := range streamer.Snapshot(10, tbl) {
		if !el.IsPunct() {
			if err := cq.Feed("Traffic", el.Tuple); err != nil {
				t.Fatal(err)
			}
		}
	}
	if alerts != 1 {
		t.Fatalf("alerts = %d after first snapshot", alerts)
	}
	insert(3, 2000)
	for _, el := range streamer.Snapshot(20, tbl) {
		if !el.IsPunct() {
			cq.Feed("Traffic", el.Tuple)
		}
	}
	if alerts != 2 {
		t.Fatalf("alerts = %d after second snapshot (IStream must emit only the insertion)", alerts)
	}
	cq.Close()
}
