// Package synopsis implements the summary structures the tutorial's
// approximation sections rely on (slides 20, 38, 53): reservoir samples,
// histograms, sketches (Count-Min, AMS), distinct-count estimators
// (Flajolet-Martin) and quantile summaries (Greenwald-Khanna), plus the
// DGIM exponential histogram for sliding-window counts.
//
// All structures are deterministic given a seed, single-pass, and expose
// a MemSize so experiments can sweep the memory budget (experiment E9).
package synopsis

import (
	"math/rand"

	"streamdb/internal/tuple"
)

// Reservoir maintains a uniform random sample of fixed capacity over an
// unbounded stream (Vitter's Algorithm R).
type Reservoir struct {
	cap   int
	seen  int64
	items []tuple.Value
	rng   *rand.Rand
}

// NewReservoir builds a reservoir of the given capacity.
func NewReservoir(capacity int, seed int64) *Reservoir {
	if capacity <= 0 {
		capacity = 1
	}
	return &Reservoir{cap: capacity, rng: rand.New(rand.NewSource(seed))}
}

// Add offers one value to the sample.
func (r *Reservoir) Add(v tuple.Value) {
	r.seen++
	if len(r.items) < r.cap {
		r.items = append(r.items, v)
		return
	}
	if j := r.rng.Int63n(r.seen); j < int64(r.cap) {
		r.items[j] = v
	}
}

// Sample returns the current sample (shared slice; do not mutate).
func (r *Reservoir) Sample() []tuple.Value { return r.items }

// Seen returns how many values have been offered.
func (r *Reservoir) Seen() int64 { return r.seen }

// EstimateMean estimates the stream mean from the sample.
func (r *Reservoir) EstimateMean() float64 {
	if len(r.items) == 0 {
		return 0
	}
	sum := 0.0
	n := 0
	for _, v := range r.items {
		if f, ok := v.AsFloat(); ok {
			sum += f
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// EstimateQuantile estimates the q-quantile (0..1) from the sample.
func (r *Reservoir) EstimateQuantile(q float64) (tuple.Value, bool) {
	if len(r.items) == 0 {
		return tuple.Null, false
	}
	sorted := make([]tuple.Value, len(r.items))
	copy(sorted, r.items)
	// Insertion sort: reservoirs are small by construction.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].Compare(sorted[j-1]) < 0; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	idx := int(q * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx], true
}

// MemSize approximates the bytes held.
func (r *Reservoir) MemSize() int {
	n := 48
	for _, v := range r.items {
		n += v.MemSize()
	}
	return n
}

// Histogram is a fixed-range equi-width histogram over float values,
// supporting selectivity and range-count estimates (the classic
// synopsis of [BDF+97], slide 20).
type Histogram struct {
	lo, hi  float64
	buckets []int64
	total   int64
	under   int64
	over    int64
}

// NewHistogram builds an equi-width histogram over [lo, hi) with n
// buckets.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		n = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]int64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.buckets)))
		if i >= len(h.buckets) {
			i = len(h.buckets) - 1
		}
		h.buckets[i]++
	}
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// EstimateRange estimates how many observations fall in [a, b) assuming
// uniform spread within buckets.
func (h *Histogram) EstimateRange(a, b float64) float64 {
	if b <= a {
		return 0
	}
	w := (h.hi - h.lo) / float64(len(h.buckets))
	est := 0.0
	for i, c := range h.buckets {
		blo := h.lo + float64(i)*w
		bhi := blo + w
		ovl := minf(b, bhi) - maxf(a, blo)
		if ovl > 0 {
			est += float64(c) * ovl / w
		}
	}
	if a < h.lo {
		est += float64(h.under)
	}
	if b > h.hi {
		est += float64(h.over)
	}
	return est
}

// Selectivity estimates the fraction of observations in [a, b).
func (h *Histogram) Selectivity(a, b float64) float64 {
	if h.total == 0 {
		return 1
	}
	return h.EstimateRange(a, b) / float64(h.total)
}

// MemSize approximates the bytes held.
func (h *Histogram) MemSize() int { return 64 + 8*len(h.buckets) }

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
