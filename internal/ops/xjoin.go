package ops

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sync/atomic"

	"streamdb/internal/expr"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

// XJoin extends the symmetric hash join with memory-overflow processing
// [UF00] (slide 31): "overflowing inputs spilled to disk for later
// evaluation". State is hash-partitioned; when the in-memory tuple count
// exceeds the budget, the largest partition is flushed to a disk file.
// A cleanup phase at end-of-stream joins spilled tuples exactly once,
// using XJoin's arrival/departure interval rule to avoid duplicates:
// a pair was already joined in the memory phase iff the two tuples'
// residency intervals overlapped.
type XJoin struct {
	name      string
	out       *tuple.Schema
	leftSch   *tuple.Schema
	rightSch  *tuple.Schema
	keys      [2][]int
	residual  expr.Expr
	nparts    int
	budget    int // max in-memory tuples across both sides
	seq       int64
	inMem     int
	parts     [2][]*xpart
	dir       string
	emitted   int64
	spills    int64
	spilledTs int64 // tuples written to disk
	diskBytes int64
	cleaned   bool
	ownsDir   bool
	// parent is set on partition replicas: Stats counters fold into it
	// at the end of Flush's cleanup phase.
	parent *XJoin

	// Columnar state (joincol.go).
	colPool *stream.ColPool
	colKern expr.ColumnKernel
	col     colJoinScratch
}

type xtuple struct {
	t        *tuple.Tuple
	ats, dts int64 // residency interval [ats, dts)
}

type xpart struct {
	mem  []xtuple
	file *os.File
	n    int64 // tuples on disk
}

// NewXJoin builds an XJoin with the given equijoin keys, number of hash
// partitions, and in-memory tuple budget. Spill files live in dir
// (created with os.MkdirTemp when empty).
func NewXJoin(name string, left, right *tuple.Schema, leftKey, rightKey []int, nparts, budget int, residual expr.Expr, dir string) (*XJoin, error) {
	if len(leftKey) == 0 || len(leftKey) != len(rightKey) {
		return nil, fmt.Errorf("ops: xjoin requires matching equijoin keys")
	}
	if nparts <= 0 {
		nparts = 16
	}
	if budget <= 0 {
		budget = 1 << 16
	}
	ownsDir := false
	if dir == "" {
		d, err := os.MkdirTemp("", "xjoin")
		if err != nil {
			return nil, fmt.Errorf("ops: xjoin temp dir: %w", err)
		}
		dir = d
		ownsDir = true
	}
	x := &XJoin{
		name:     name,
		out:      left.Concat(right),
		leftSch:  left,
		rightSch: right,
		keys:     [2][]int{leftKey, rightKey},
		residual: residual,
		nparts:   nparts,
		budget:   budget,
		dir:      dir,
		ownsDir:  ownsDir,
	}
	for s := 0; s < 2; s++ {
		x.parts[s] = make([]*xpart, nparts)
		for p := range x.parts[s] {
			x.parts[s][p] = &xpart{}
		}
	}
	return x, nil
}

// Name implements Operator.
func (x *XJoin) Name() string { return x.name }

// OutSchema implements Operator.
func (x *XJoin) OutSchema() *tuple.Schema { return x.out }

// NumInputs implements Operator.
func (x *XJoin) NumInputs() int { return 2 }

// Push implements Operator (stage 1: memory-to-memory joining).
func (x *XJoin) Push(port int, e stream.Element, emit Emit) {
	if e.IsPunct() || port < 0 || port > 1 {
		return
	}
	t := e.Tuple
	x.seq++
	h := t.Key(x.keys[port])
	p := int(h % uint64(x.nparts))

	// Probe the opposite in-memory partition.
	for _, cand := range x.parts[1-port][p].mem {
		if cand.t.KeyEqual(t, x.keys[1-port], x.keys[port]) {
			x.emitPair(port, t, cand.t, emit)
		}
	}

	// Insert into own partition.
	x.parts[port][p].mem = append(x.parts[port][p].mem, xtuple{t: t, ats: x.seq, dts: math.MaxInt64})
	x.inMem++
	if x.inMem > x.budget {
		x.spillLargest()
	}
}

// spillLargest flushes the largest in-memory partition to its disk file,
// stamping departure times.
func (x *XJoin) spillLargest() {
	var best *xpart
	bestLen := 0
	for s := 0; s < 2; s++ {
		for _, p := range x.parts[s] {
			if len(p.mem) > bestLen {
				best, bestLen = p, len(p.mem)
			}
		}
	}
	if best == nil || bestLen == 0 {
		return
	}
	if best.file == nil {
		f, err := os.CreateTemp(x.dir, "part")
		if err != nil {
			// Disk unavailable: degrade by keeping tuples in memory.
			return
		}
		best.file = f
	}
	var buf []byte
	for _, xt := range best.mem {
		// The spill happens after processing arrival x.seq, so these
		// tuples were resident for every arrival <= x.seq: the
		// half-open residency interval ends at x.seq+1.
		xt.dts = x.seq + 1
		buf = binary.AppendVarint(buf, xt.ats)
		buf = binary.AppendVarint(buf, xt.dts)
		buf = tuple.AppendEncode(buf, xt.t)
		best.n++
	}
	if _, err := best.file.Write(buf); err != nil {
		best.n -= int64(len(best.mem))
		return
	}
	x.diskBytes += int64(len(buf))
	x.spilledTs += int64(len(best.mem))
	x.inMem -= len(best.mem)
	best.mem = best.mem[:0]
	x.spills++
}

func (x *XJoin) emitPair(port int, arrived, matched *tuple.Tuple, emit Emit) {
	var out *tuple.Tuple
	if port == 0 {
		out = arrived.Concat(matched)
	} else {
		out = matched.Concat(arrived)
	}
	if x.residual != nil && !expr.EvalBool(x.residual, out) {
		return
	}
	x.emitted++
	emit(stream.Tup(out))
}

// loadPart reads a partition's disk tuples back.
func (x *XJoin) loadPart(p *xpart) ([]xtuple, error) {
	if p.file == nil || p.n == 0 {
		return nil, nil
	}
	info, err := p.file.Stat()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, info.Size())
	if _, err := p.file.ReadAt(buf, 0); err != nil {
		return nil, err
	}
	var out []xtuple
	off := 0
	for off < len(buf) {
		ats, n := binary.Varint(buf[off:])
		if n <= 0 {
			return nil, fmt.Errorf("ops: corrupt spill file")
		}
		off += n
		dts, n := binary.Varint(buf[off:])
		if n <= 0 {
			return nil, fmt.Errorf("ops: corrupt spill file")
		}
		off += n
		t, n, err := tuple.Decode(buf[off:])
		if err != nil {
			return nil, err
		}
		off += n
		out = append(out, xtuple{t: t, ats: ats, dts: dts})
	}
	return out, nil
}

// Flush implements Operator: the cleanup phase (stage 3). For every
// partition it joins (disk ∪ memory) × (disk ∪ memory) pairs whose
// residency intervals did NOT overlap — overlapping pairs were already
// produced by the memory phase.
func (x *XJoin) Flush(emit Emit) {
	if x.cleaned {
		return
	}
	x.cleaned = true
	for p := 0; p < x.nparts; p++ {
		lp, rp := x.parts[0][p], x.parts[1][p]
		if lp.n == 0 && rp.n == 0 {
			continue // nothing spilled: memory phase was complete
		}
		ldisk, lerr := x.loadPart(lp)
		rdisk, rerr := x.loadPart(rp)
		if lerr != nil || rerr != nil {
			continue
		}
		lefts := append(ldisk, lp.mem...)
		rights := append(rdisk, rp.mem...)
		for _, lt := range lefts {
			for _, rt := range rights {
				if overlap(lt, rt) {
					continue // already joined in memory phase
				}
				if !lt.t.KeyEqual(rt.t, x.keys[0], x.keys[1]) {
					continue
				}
				out := lt.t.Concat(rt.t)
				if x.residual != nil && !expr.EvalBool(x.residual, out) {
					continue
				}
				x.emitted++
				emit(stream.Tup(out))
			}
		}
	}
	x.Close()
	if p := x.parent; p != nil {
		// Partition replica: fold counters into the original. Atomic
		// because sibling replicas flush concurrently; guarded by
		// `cleaned` above, so the fold happens once.
		atomic.AddInt64(&p.emitted, x.emitted)
		atomic.AddInt64(&p.spills, x.spills)
		atomic.AddInt64(&p.spilledTs, x.spilledTs)
		atomic.AddInt64(&p.diskBytes, x.diskBytes)
	}
}

// CanPartition implements KeyPartitionable: XJoin state is per-key
// throughout (hash partitions, spill files, residency intervals), and
// the cleanup phase makes each replica's output complete for its key
// slice, so key partitioning is always exact up to output order.
func (x *XJoin) CanPartition() bool { return true }

// PartitionHash implements KeyPartitionable with the same key hash the
// operator's own partitions use.
func (x *XJoin) PartitionHash(port int, t *tuple.Tuple) uint64 {
	return t.Key(x.keys[port])
}

// ClonePartition implements KeyPartitionable. Each replica gets its own
// spill directory and the full memory budget: the budget models one
// worker's memory, and replicas are exactly that.
func (x *XJoin) ClonePartition() Operator {
	c, err := NewXJoin(x.name, x.leftSch, x.rightSch, x.keys[0], x.keys[1],
		x.nparts, x.budget, x.residual, "")
	if err != nil {
		// Only temp-dir creation can fail here; surface it through the
		// engine's panic-isolation boundary.
		panic(fmt.Sprintf("ops: xjoin partition clone: %v", err))
	}
	c.parent = x
	return c
}

func overlap(a, b xtuple) bool {
	lo := a.ats
	if b.ats > lo {
		lo = b.ats
	}
	hi := a.dts
	if b.dts < hi {
		hi = b.dts
	}
	return lo < hi
}

// Close releases spill files (and the temp directory when XJoin
// created it).
func (x *XJoin) Close() {
	for s := 0; s < 2; s++ {
		for _, p := range x.parts[s] {
			if p.file != nil {
				name := p.file.Name()
				p.file.Close()
				os.Remove(name)
				p.file = nil
			}
		}
	}
	if x.ownsDir {
		os.Remove(x.dir)
		x.ownsDir = false
	}
}

// MemSize implements Operator.
func (x *XJoin) MemSize() int {
	n := 256
	for s := 0; s < 2; s++ {
		for _, p := range x.parts[s] {
			for _, xt := range p.mem {
				n += xt.t.MemSize() + 16
			}
		}
	}
	return n
}

// Stats reports XJoin introspection counters.
func (x *XJoin) Stats() (emitted, spills, spilledTuples, diskBytes int64) {
	return x.emitted, x.spills, x.spilledTs, x.diskBytes
}
