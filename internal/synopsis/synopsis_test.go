package synopsis

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"streamdb/internal/tuple"
)

func TestReservoirUniformity(t *testing.T) {
	// Feed 0..9999; sample mean should approximate the stream mean.
	r := NewReservoir(500, 1)
	for i := 0; i < 10000; i++ {
		r.Add(tuple.Float(float64(i)))
	}
	if r.Seen() != 10000 {
		t.Fatalf("Seen = %d", r.Seen())
	}
	if len(r.Sample()) != 500 {
		t.Fatalf("sample size = %d", len(r.Sample()))
	}
	mean := r.EstimateMean()
	if math.Abs(mean-4999.5) > 400 {
		t.Errorf("sample mean = %.1f, want ~4999.5", mean)
	}
	q, ok := r.EstimateQuantile(0.5)
	if !ok {
		t.Fatal("quantile failed")
	}
	med, _ := q.AsFloat()
	if math.Abs(med-5000) > 700 {
		t.Errorf("sample median = %.1f, want ~5000", med)
	}
}

func TestReservoirSmallStream(t *testing.T) {
	r := NewReservoir(10, 1)
	r.Add(tuple.Float(3))
	if len(r.Sample()) != 1 {
		t.Errorf("sample = %v", r.Sample())
	}
	if _, ok := NewReservoir(5, 1).EstimateQuantile(0.5); ok {
		t.Error("empty reservoir returned a quantile")
	}
	if NewReservoir(0, 1).cap != 1 {
		t.Error("capacity not clamped")
	}
}

func TestHistogramRangeEstimates(t *testing.T) {
	h := NewHistogram(0, 100, 20)
	for i := 0; i < 10000; i++ {
		h.Add(float64(i % 100))
	}
	if h.Total() != 10000 {
		t.Fatalf("Total = %d", h.Total())
	}
	// Uniform data: [0,50) holds half.
	est := h.EstimateRange(0, 50)
	if math.Abs(est-5000) > 100 {
		t.Errorf("EstimateRange(0,50) = %.0f, want ~5000", est)
	}
	if s := h.Selectivity(25, 75); math.Abs(s-0.5) > 0.02 {
		t.Errorf("Selectivity(25,75) = %.3f, want ~0.5", s)
	}
	if h.EstimateRange(10, 10) != 0 {
		t.Error("empty range nonzero")
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(-5)
	h.Add(15)
	h.Add(5)
	if est := h.EstimateRange(-10, 20); math.Abs(est-3) > 0.01 {
		t.Errorf("full range = %.2f, want 3", est)
	}
	if NewHistogram(0, 0, 0) == nil {
		t.Error("degenerate histogram nil")
	}
	if NewHistogram(5, 5, 3).hi <= 5 {
		t.Error("degenerate bounds not fixed")
	}
	var empty Histogram
	if (&empty).Total() != 0 {
		t.Error("empty total")
	}
	if s := NewHistogram(0, 1, 1).Selectivity(0, 1); s != 1 {
		t.Errorf("empty histogram selectivity = %v, want 1", s)
	}
}

func TestCountMinPointQueries(t *testing.T) {
	cm := NewCountMin(0.005, 0.01)
	rng := rand.New(rand.NewSource(2))
	truth := map[int64]uint64{}
	z := rand.NewZipf(rng, 1.3, 1, 9999)
	for i := 0; i < 100000; i++ {
		v := int64(z.Uint64())
		truth[v]++
		cm.Add(tuple.Int(v), 1)
	}
	if cm.Total() != 100000 {
		t.Fatalf("Total = %d", cm.Total())
	}
	// CM never underestimates, and overestimates by at most eps*N whp.
	slack := uint64(0.005 * 100000 * 2)
	for v, c := range truth {
		est := cm.Estimate(tuple.Int(v))
		if est < c {
			t.Fatalf("CM underestimated %d: %d < %d", v, est, c)
		}
		if est > c+slack {
			t.Errorf("CM overestimated %d: %d > %d+%d", v, est, c, slack)
		}
	}
}

func TestCountMinBytesBudget(t *testing.T) {
	cm := NewCountMinBytes(4096)
	if cm.MemSize() > 4096+64 {
		t.Errorf("MemSize %d exceeds budget", cm.MemSize())
	}
	tiny := NewCountMinBytes(1)
	tiny.Add(tuple.Int(1), 1)
	if tiny.Estimate(tuple.Int(1)) < 1 {
		t.Error("tiny sketch lost its count")
	}
}

func TestAMSSelfJoinSize(t *testing.T) {
	a := NewAMS(400)
	// 100 distinct values, 100 occurrences each: F2 = 100 * 100^2 = 1e6.
	for rep := 0; rep < 100; rep++ {
		for v := int64(0); v < 100; v++ {
			a.Add(tuple.Int(v))
		}
	}
	est := a.EstimateF2()
	if est < 0.5e6 || est > 1.5e6 {
		t.Errorf("F2 estimate = %.0f, want ~1e6", est)
	}
	if NewAMS(0).MemSize() <= 0 {
		t.Error("clamped AMS has no memory")
	}
}

func TestFMDistinctCount(t *testing.T) {
	f := NewFM(64)
	for i := int64(0); i < 50000; i++ {
		f.Add(tuple.Int(i % 5000)) // 5000 distinct
	}
	est := f.Estimate()
	if est < 3200 || est > 7500 {
		t.Errorf("FM estimate = %.0f, want ~5000", est)
	}
}

func TestFMMonotoneInDistincts(t *testing.T) {
	small, large := NewFM(64), NewFM(64)
	for i := int64(0); i < 100; i++ {
		small.Add(tuple.Int(i))
	}
	for i := int64(0); i < 100000; i++ {
		large.Add(tuple.Int(i))
	}
	if small.Estimate() >= large.Estimate() {
		t.Errorf("FM not increasing: %f >= %f", small.Estimate(), large.Estimate())
	}
}

func TestExpHistogramSlidingCount(t *testing.T) {
	const window = 1000
	e := NewExpHistogram(window, 8)
	// One event per tick for 10000 ticks: window always holds ~1000.
	for ts := int64(0); ts < 10000; ts++ {
		e.Add(ts)
	}
	est := e.Estimate(9999)
	if math.Abs(float64(est-window)) > window/8+1 {
		t.Errorf("DGIM estimate = %d, want ~%d", est, window)
	}
	// Space must be logarithmic-ish, far below the window size.
	if e.Buckets() > 200 {
		t.Errorf("DGIM uses %d buckets", e.Buckets())
	}
	// After a long silence the estimate must fall to 0.
	if got := e.Estimate(1_000_000); got != 0 {
		t.Errorf("estimate after expiry = %d", got)
	}
}

func TestExpHistogramErrorBoundProperty(t *testing.T) {
	f := func(gaps []uint8) bool {
		e := NewExpHistogram(500, 4)
		var ts int64
		var events []int64
		for _, g := range gaps {
			ts += int64(g%17) + 1
			e.Add(ts)
			events = append(events, ts)
		}
		if len(events) == 0 {
			return true
		}
		now := ts
		truth := int64(0)
		for _, et := range events {
			if et > now-500 {
				truth++
			}
		}
		est := e.Estimate(now)
		diff := est - truth
		if diff < 0 {
			diff = -diff
		}
		// DGIM error bound: half the oldest bucket ~ truth/k.
		return float64(diff) <= float64(truth)/4+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGKQuantiles(t *testing.T) {
	g := NewGK(0.01)
	rng := rand.New(rand.NewSource(3))
	n := 20000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 100
		g.Add(vals[i])
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		got, ok := g.Query(q)
		if !ok {
			t.Fatalf("Query(%v) failed", q)
		}
		// Verify rank error <= 2*eps*n (allowing both sides of the bound).
		rank := sort.SearchFloat64s(vals, got)
		wantRank := q * float64(n)
		if math.Abs(float64(rank)-wantRank) > 2*0.01*float64(n)+1 {
			t.Errorf("q=%v: rank %d, want %.0f±%.0f", q, rank, wantRank, 2*0.01*float64(n))
		}
	}
	// Space must be far below n.
	if g.Entries() > n/10 {
		t.Errorf("GK kept %d entries for %d items", g.Entries(), n)
	}
	if g.N() != int64(n) {
		t.Errorf("N = %d", g.N())
	}
}

func TestGKEdgeCases(t *testing.T) {
	g := NewGK(0.05)
	if _, ok := g.Query(0.5); ok {
		t.Error("empty GK returned a value")
	}
	g.Add(42)
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if v, ok := g.Query(q); !ok || v != 42 {
			t.Errorf("Query(%v) = %v, %v", q, v, ok)
		}
	}
	if NewGK(0).eps <= 0 {
		t.Error("eps not clamped")
	}
}

func TestSpaceSavingGuarantee(t *testing.T) {
	ss := NewSpaceSaving(20)
	// Two genuinely heavy values among uniform noise.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 10000; i++ {
		switch {
		case i%4 == 0:
			ss.Add(tuple.Int(1))
		case i%4 == 1:
			ss.Add(tuple.Int(2))
		default:
			ss.Add(tuple.Int(100 + rng.Int63n(5000)))
		}
	}
	hh := ss.Hitters(0.2)
	if len(hh) < 2 {
		t.Fatalf("hitters = %v", hh)
	}
	top := map[int64]bool{}
	for _, h := range hh[:2] {
		v, _ := h.Val.AsInt()
		top[v] = true
	}
	if !top[1] || !top[2] {
		t.Errorf("true heavy hitters missing: %v", hh)
	}
	if ss.N() != 10000 {
		t.Errorf("N = %d", ss.N())
	}
	// Counts are upper bounds: estimate >= truth for tracked heavies.
	for _, h := range hh[:2] {
		if h.Count < 2500 {
			t.Errorf("heavy hitter underestimated: %v", h)
		}
	}
}

func TestSpaceSavingEviction(t *testing.T) {
	ss := NewSpaceSaving(2)
	ss.Add(tuple.Int(1))
	ss.Add(tuple.Int(2))
	ss.Add(tuple.Int(3)) // evicts the min, inherits count 1 -> count 2, err 1
	if len(ss.counters) != 2 {
		t.Fatalf("counters = %d", len(ss.counters))
	}
	found := false
	for _, c := range ss.counters {
		if v, _ := c.val.AsInt(); v == 3 {
			found = true
			if c.count != 2 || c.err != 1 {
				t.Errorf("evict-insert counter = %+v", c)
			}
		}
	}
	if !found {
		t.Error("new value not tracked after eviction")
	}
}

func TestMemSizesPositive(t *testing.T) {
	structs := []interface{ MemSize() int }{
		NewReservoir(8, 1), NewHistogram(0, 1, 8), NewCountMin(0.1, 0.1),
		NewAMS(8), NewFM(8), NewExpHistogram(100, 4), NewGK(0.1), NewSpaceSaving(8),
	}
	for i, s := range structs {
		if s.MemSize() <= 0 {
			t.Errorf("struct %d MemSize = %d", i, s.MemSize())
		}
	}
}
