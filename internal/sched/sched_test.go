package sched

import (
	"math"
	"testing"
	"testing/quick"
)

// slide43Chain is the tutorial's worked example: two operators,
// selectivity 0.2 then 0, unit cost each.
func slide43Chain() []OpSpec {
	return []OpSpec{{Sel: 0.2, Cost: 1}, {Sel: 0, Cost: 1}}
}

func runPolicy(t *testing.T, p Policy, ticks int, arrivals []int) *Sim {
	t.Helper()
	s, err := NewSim(slide43Chain(), p)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(ticks, arrivals)
	return s
}

// TestSlide43ExactTable reproduces the FIFO-vs-Greedy backlog table on
// slide 43 exactly:
//
//	Time   Greedy  FIFO
//	0      1.0     1.0
//	1      1.2     1.2
//	2      1.4     2.0
//	3      1.6     2.2
//	4      1.8     3.0
func TestSlide43ExactTable(t *testing.T) {
	arrivals := []int{1, 1, 1, 1, 1}
	fifo := runPolicy(t, FIFO{}, 5, arrivals)
	greedy := runPolicy(t, Greedy{}, 5, arrivals)

	wantFIFO := []float64{1.0, 1.2, 2.0, 2.2, 3.0}
	wantGreedy := []float64{1.0, 1.2, 1.4, 1.6, 1.8}
	for i := range wantFIFO {
		if math.Abs(fifo.Backlog[i]-wantFIFO[i]) > 1e-9 {
			t.Errorf("FIFO[%d] = %v, want %v", i, fifo.Backlog[i], wantFIFO[i])
		}
		if math.Abs(greedy.Backlog[i]-wantGreedy[i]) > 1e-9 {
			t.Errorf("Greedy[%d] = %v, want %v", i, greedy.Backlog[i], wantGreedy[i])
		}
	}
}

func TestChainMatchesGreedyOnSlide43(t *testing.T) {
	// For a two-op chain with a steep first drop, Chain's envelope puts
	// both ops on distinct segments and behaves like Greedy.
	arrivals := []int{1, 1, 1, 1, 1}
	chain := runPolicy(t, &Chain{}, 5, arrivals)
	greedy := runPolicy(t, Greedy{}, 5, arrivals)
	for i := range greedy.Backlog {
		if math.Abs(chain.Backlog[i]-greedy.Backlog[i]) > 1e-9 {
			t.Errorf("Chain[%d] = %v, Greedy = %v", i, chain.Backlog[i], greedy.Backlog[i])
		}
	}
}

func TestChainBeatsGreedyOnConvexChart(t *testing.T) {
	// Chain's advantage appears when a cheap low-selectivity operator
	// hides behind an expensive high-selectivity one: the envelope sees
	// through the first op. Specs: op1 sel 0.9 cost 1, op2 sel 0 cost 1.
	// Greedy ranks op1 gain (1-0.9)/1 = 0.1 below op2 gain 0.9/1 only
	// when op2 has queued tuples; Chain treats op1+op2 as one segment of
	// slope 0.5 and drains in arrival order. Under a burst the peak
	// backlog of Chain must be <= Greedy's.
	specs := []OpSpec{{Sel: 0.9, Cost: 1}, {Sel: 0, Cost: 1}}
	arrivals := []int{4, 0, 0, 0, 0, 0, 0, 0}
	mk := func(p Policy) *Sim {
		s, err := NewSim(specs, p)
		if err != nil {
			t.Fatal(err)
		}
		s.Run(8, arrivals)
		return s
	}
	chain := mk(&Chain{})
	greedy := mk(Greedy{})
	if chain.PeakBacklog > greedy.PeakBacklog+1e-9 {
		t.Errorf("Chain peak %v > Greedy peak %v", chain.PeakBacklog, greedy.PeakBacklog)
	}
}

func TestAllPoliciesDrainEventually(t *testing.T) {
	arrivals := []int{3, 0, 1, 0, 2}
	for _, p := range []Policy{FIFO{}, Greedy{}, &Chain{}, &RoundRobin{}} {
		s, err := NewSim([]OpSpec{{Sel: 0.5, Cost: 1}, {Sel: 0.5, Cost: 1}}, p)
		if err != nil {
			t.Fatal(err)
		}
		s.Run(100, arrivals)
		if m := s.TotalMemory(); m != 0 {
			t.Errorf("%s: backlog %v after drain period", p.Name(), m)
		}
		// 6 arrivals, each passing 2 ops with sel 0.5: emitted = 6*0.25.
		if math.Abs(s.Emitted-1.5) > 1e-9 {
			t.Errorf("%s: emitted %v, want 1.5", p.Name(), s.Emitted)
		}
	}
}

func TestPoliciesProcessSameWorkDifferentMemory(t *testing.T) {
	// Under overload, all policies do the same total work (CPU-bound)
	// but hold different peak memory; Greedy/Chain <= FIFO.
	specs := []OpSpec{{Sel: 0.2, Cost: 1}, {Sel: 0.1, Cost: 1}}
	arrivals := make([]int, 50)
	for i := range arrivals {
		if i%4 == 0 {
			arrivals[i] = 3 // bursts at 0.75/tick average vs capacity 1 op/tick
		}
	}
	peak := map[string]float64{}
	for _, p := range []Policy{FIFO{}, Greedy{}, &Chain{}} {
		s, _ := NewSim(specs, p)
		s.Run(200, arrivals)
		peak[p.Name()] = s.PeakBacklog
	}
	if peak["Greedy"] > peak["FIFO"]+1e-9 {
		t.Errorf("Greedy peak %v > FIFO peak %v", peak["Greedy"], peak["FIFO"])
	}
	if peak["Chain"] > peak["FIFO"]+1e-9 {
		t.Errorf("Chain peak %v > FIFO peak %v", peak["Chain"], peak["FIFO"])
	}
}

func TestSimValidation(t *testing.T) {
	if _, err := NewSim(nil, FIFO{}); err == nil {
		t.Error("empty chain accepted")
	}
	if _, err := NewSim([]OpSpec{{Sel: 2, Cost: 1}}, FIFO{}); err == nil {
		t.Error("selectivity > 1 accepted")
	}
	if _, err := NewSim([]OpSpec{{Sel: 0.5, Cost: 0}}, FIFO{}); err == nil {
		t.Error("zero cost accepted")
	}
}

func TestCostBudgetLimitsWorkPerTick(t *testing.T) {
	// An operator costing 2 units processes one tuple every two ticks.
	s, _ := NewSim([]OpSpec{{Sel: 0, Cost: 2}}, FIFO{})
	s.Run(4, []int{2})
	// t=0: 2 arrive, no budget for cost-2 op? Budget 1 < 2: nothing runs.
	// Backlog stays 2 until... budget resets each tick and never reaches 2.
	if s.Processed != 0 {
		t.Errorf("processed %d tuples with insufficient per-tick budget", s.Processed)
	}
}

func TestFractionalMemoryAccounting(t *testing.T) {
	s, _ := NewSim(slide43Chain(), Greedy{})
	s.Arrive(1)
	if m := s.TotalMemory(); m != 1 {
		t.Fatalf("memory = %v", m)
	}
	budget := 1.0
	s.step(&budget)
	if m := s.TotalMemory(); math.Abs(m-0.2) > 1e-9 {
		t.Fatalf("memory after op1 = %v, want 0.2", m)
	}
	budget = 1.0
	s.step(&budget)
	if m := s.TotalMemory(); m != 0 {
		t.Fatalf("memory after op2 = %v, want 0", m)
	}
}

func TestGreedyNeverWorseThanFIFOPeakProperty(t *testing.T) {
	// Property over random bursty arrival patterns and 2-op chains with
	// decreasing sizes: Greedy's peak backlog <= FIFO's.
	f := func(pattern []uint8, selRaw uint8) bool {
		sel := float64(selRaw%9) / 10 // 0..0.8
		specs := []OpSpec{{Sel: sel, Cost: 1}, {Sel: 0, Cost: 1}}
		arrivals := make([]int, len(pattern))
		for i, p := range pattern {
			arrivals[i] = int(p % 3)
		}
		fs, _ := NewSim(specs, FIFO{})
		gs, _ := NewSim(specs, Greedy{})
		fs.Run(len(arrivals)+100, arrivals)
		gs.Run(len(arrivals)+100, arrivals)
		if gs.PeakBacklog > fs.PeakBacklog+1e-9 {
			return false
		}
		// Both must emit nothing (sel 0 final op) and drain fully.
		return fs.TotalMemory() == 0 && gs.TotalMemory() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPolicyNames(t *testing.T) {
	for _, p := range []Policy{FIFO{}, Greedy{}, &Chain{}, &RoundRobin{}} {
		if p.Name() == "" {
			t.Error("empty policy name")
		}
	}
}
