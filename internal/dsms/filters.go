package dsms

import (
	"fmt"
	"math"
)

// This file implements adaptive filters for continuous distributed
// aggregation [OJW03] (slide 55: "may not be feasible to bring all
// relevant data to a single site"). Each remote site tracks a numeric
// value; the coordinator continuously reports the sum within a
// user-specified precision bound. A site transmits only when its value
// leaves its locally-assigned bound interval; the coordinator divides
// the total error budget across sites and periodically reallocates it
// toward the sites that burn it fastest.

// Site is one distributed observation point.
type Site struct {
	value float64
	// bound is the half-width of the site's filter interval.
	bound  float64
	center float64
	// Updates counts local value changes; Sent counts transmissions.
	Updates int64
	Sent    int64
}

// Coordinator runs the adaptive-filter protocol.
type Coordinator struct {
	sites []*Site
	// Precision is the total error bound: the reported sum is within
	// ±Precision of the true sum.
	Precision float64
	estimate  []float64 // last reported value per site
	// shrink is the fraction of each bound reclaimed at reallocation.
	shrink float64
}

// NewCoordinator builds a coordinator over n sites with the given total
// precision bound. precision 0 means exact (every update transmits).
func NewCoordinator(n int, precision float64) (*Coordinator, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dsms: need at least one site")
	}
	if precision < 0 {
		return nil, fmt.Errorf("dsms: negative precision")
	}
	c := &Coordinator{
		Precision: precision,
		sites:     make([]*Site, n),
		estimate:  make([]float64, n),
		shrink:    0.1,
	}
	per := precision / float64(n)
	for i := range c.sites {
		c.sites[i] = &Site{bound: per}
	}
	return c, nil
}

// Update applies a new local value at site i; returns whether the site
// transmitted to the coordinator.
func (c *Coordinator) Update(i int, value float64) bool {
	s := c.sites[i]
	s.Updates++
	s.value = value
	if math.Abs(value-s.center) <= s.bound {
		return false // filtered: stays within the site's interval
	}
	// Out of bounds: transmit and re-center.
	s.center = value
	s.Sent++
	c.estimate[i] = value
	return true
}

// Estimate reports the coordinator's current sum estimate.
func (c *Coordinator) Estimate() float64 {
	sum := 0.0
	for _, v := range c.estimate {
		sum += v
	}
	return sum
}

// TrueSum reports the exact sum (ground truth for evaluation).
func (c *Coordinator) TrueSum() float64 {
	sum := 0.0
	for _, s := range c.sites {
		sum += s.value
	}
	return sum
}

// Error reports |estimate - truth|; by construction it never exceeds
// Precision.
func (c *Coordinator) Error() float64 {
	return math.Abs(c.Estimate() - c.TrueSum())
}

// Messages reports total transmissions across sites.
func (c *Coordinator) Messages() int64 {
	n := int64(0)
	for _, s := range c.sites {
		n += s.Sent
	}
	return n
}

// TotalUpdates reports total local updates (what a naive protocol
// would have transmitted).
func (c *Coordinator) TotalUpdates() int64 {
	n := int64(0)
	for _, s := range c.sites {
		n += s.Updates
	}
	return n
}

// Reallocate shifts error budget toward the sites that transmit most,
// the adaptive step of [OJW03]: each site's bound shrinks by the
// shrink fraction, and the reclaimed budget is granted to the sites
// with the highest recent send counts.
func (c *Coordinator) Reallocate() {
	if c.Precision == 0 || len(c.sites) == 1 {
		return
	}
	reclaimed := 0.0
	var totalSent int64
	for _, s := range c.sites {
		give := s.bound * c.shrink
		s.bound -= give
		reclaimed += give
		totalSent += s.Sent
	}
	if totalSent == 0 {
		// Nobody is streaming: spread evenly.
		per := reclaimed / float64(len(c.sites))
		for _, s := range c.sites {
			s.bound += per
		}
		return
	}
	for _, s := range c.sites {
		s.bound += reclaimed * float64(s.Sent) / float64(totalSent)
	}
}

// Bounds returns each site's current filter half-width.
func (c *Coordinator) Bounds() []float64 {
	out := make([]float64, len(c.sites))
	for i, s := range c.sites {
		out[i] = s.bound
	}
	return out
}
