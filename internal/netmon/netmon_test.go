package netmon

import (
	"strings"
	"testing"

	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

func TestSchemaLayering(t *testing.T) {
	ip := IPv4Schema("IP")
	tcp := TCPSchema("TCP")
	// TCP inherits every IPv4 field, in order (slide 12).
	for i, f := range ip.Fields {
		if tcp.Fields[i].Name != f.Name || tcp.Fields[i].Kind != f.Kind {
			t.Errorf("field %d: %v != %v", i, tcp.Fields[i], f)
		}
	}
	if tcp.Index("payload") < 0 || tcp.Index("srcPort") < 0 {
		t.Error("layer-4+ fields missing")
	}
	if FlowSchema("F").Index("bytes") < 0 {
		t.Error("flow schema incomplete")
	}
}

func TestPacketTraceGroundTruth(t *testing.T) {
	pt := NewPacketTrace(TraceConfig{Seed: 1, Rate: 10000, AddrPool: 100,
		P2PFraction: 0.3, P2PKnownPortFraction: 1.0 / 3.0})
	n := 20000
	var keywordHits, portHits int64
	payloadIdx := pt.Schema().Index("payload")
	portIdx := pt.Schema().Index("destPort")
	for i := 0; i < n; i++ {
		e, ok := pt.Next()
		if !ok {
			t.Fatal("trace ended")
		}
		pay, _ := e.Tuple.Vals[payloadIdx].AsString()
		for _, kw := range P2PKeywords {
			if strings.Contains(pay, kw) {
				keywordHits++
				break
			}
		}
		port, _ := e.Tuple.Vals[portIdx].AsUint()
		for _, p := range P2PWellKnownPorts {
			if port == p {
				portHits++
				break
			}
		}
	}
	if pt.TotalPackets != int64(n) {
		t.Fatalf("TotalPackets = %d", pt.TotalPackets)
	}
	// Keyword inspection finds all P2P; ports find ~1/3 (slide 10's 3x).
	if keywordHits != pt.TrueP2PPackets {
		t.Errorf("keyword hits %d != true %d", keywordHits, pt.TrueP2PPackets)
	}
	ratio := float64(keywordHits) / float64(portHits)
	if ratio < 2.4 || ratio > 3.8 {
		t.Errorf("payload/port ratio = %.2f, want ~3", ratio)
	}
	frac := float64(pt.TrueP2PPackets) / float64(n)
	if frac < 0.27 || frac > 0.33 {
		t.Errorf("p2p fraction = %.3f, want ~0.3", frac)
	}
}

func TestPacketTraceTimestampsIncrease(t *testing.T) {
	pt := NewPacketTrace(TraceConfig{Seed: 2})
	prev := int64(-1)
	for i := 0; i < 1000; i++ {
		e, _ := pt.Next()
		if e.Ts() <= prev {
			t.Fatal("timestamps not increasing")
		}
		prev = e.Ts()
	}
}

func TestHandshakeTraceJoinable(t *testing.T) {
	ht := NewHandshakeTrace(HandshakeConfig{Seed: 3, Rate: 1000,
		RTTMu: -3, RTTSigma: 0.5, LossProb: 0.1, Servers: 10}, 2000)
	syns := stream.DrainTuples(ht.Syn)
	acks := stream.DrainTuples(ht.Ack)
	if len(syns) != 2000 {
		t.Fatalf("syns = %d", len(syns))
	}
	if len(acks) != len(ht.TrueRTTs) {
		t.Fatalf("acks %d != truths %d", len(acks), len(ht.TrueRTTs))
	}
	lost := len(syns) - len(acks)
	if lost < 120 || lost > 280 {
		t.Errorf("lost = %d, want ~200", lost)
	}
	// Ack streams must be time-ordered for the window join.
	for i := 1; i < len(acks); i++ {
		if acks[i].Ts < acks[i-1].Ts {
			t.Fatal("acks out of order")
		}
	}
	// Every ack mirrors some syn's endpoints.
	type key struct{ a, b uint64 }
	synSet := map[key]bool{}
	for _, s := range syns {
		synSet[key{s.Vals[1].Raw(), s.Vals[3].Raw()}] = true
	}
	for _, a := range acks {
		if !synSet[key{a.Vals[2].Raw(), a.Vals[4].Raw()}] {
			t.Fatal("ack without matching syn endpoints")
		}
	}
}

func TestFlowTraceAggregates(t *testing.T) {
	// Build a tiny packet source by hand: two flows, one with a gap
	// exceeding the timeout so it splits.
	sch := TCPSchema("TCP")
	mk := func(ts int64, src, dst uint32, sp, dp, ln uint64) stream.Element {
		return stream.Tup(tuple.New(ts,
			tuple.Time(ts), tuple.IP(src), tuple.IP(dst), tuple.Uint(6), tuple.Uint(64),
			tuple.Uint(ln), tuple.Uint(sp), tuple.Uint(dp),
			tuple.Bool(false), tuple.Bool(true), tuple.String("x")))
	}
	src := stream.FromElements(sch,
		mk(1, 1, 2, 10, 80, 100),
		mk(2, 1, 2, 10, 80, 200),  // same flow
		mk(3, 5, 6, 11, 443, 50),  // second flow
		mk(500, 1, 2, 10, 80, 10), // first flow again after timeout: new record
	)
	ft := NewFlowTrace(src, 100)
	flows := stream.DrainTuples(ft)
	if len(flows) != 3 {
		t.Fatalf("flows = %d, want 3", len(flows))
	}
	totalBytes := uint64(0)
	totalPkts := uint64(0)
	for _, f := range flows {
		p, _ := f.Vals[5].AsUint()
		b, _ := f.Vals[6].AsUint()
		totalPkts += p
		totalBytes += b
	}
	if totalPkts != 4 || totalBytes != 360 {
		t.Errorf("aggregation lost data: pkts=%d bytes=%d", totalPkts, totalBytes)
	}
}

func TestFlowTraceReducesVolume(t *testing.T) {
	pt := NewPacketTrace(TraceConfig{Seed: 5, Rate: 100000, AddrPool: 20,
		P2PFraction: 0.2, P2PKnownPortFraction: 0.5})
	ft := NewFlowTrace(stream.Limit(pt, 20000), 10*stream.Second)
	flows := stream.DrainTuples(ft)
	if len(flows) == 0 || len(flows) >= 20000 {
		t.Errorf("flow records = %d packets = 20000: no reduction", len(flows))
	}
}
