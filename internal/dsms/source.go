package dsms

import (
	"sync"

	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

// SessionSource adapts a SessionServer into a stream.BulkSource: the
// batch frames the transport decodes feed exec.RunWith's batched
// engine directly, with no per-tuple re-batching in between. It runs
// ServeBatches on a background goroutine and hands whole frame batches
// across a bounded queue; NextBatch blocks until tuples arrive or every
// expected stream has completed.
type SessionSource struct {
	srv *SessionServer

	mu    sync.Mutex
	cond  *sync.Cond
	queue []stream.Element
	head  int
	bound int
	done  bool
	err   error
}

// NewSessionSource starts serving `streams` sessions from srv and
// exposes the delivered tuples (all streams interleaved in arrival
// order) as a bulk source. queueBound caps buffered elements between
// the transport and the engine (0 = default 65536); the transport
// blocks when the engine falls behind, pushing backpressure onto the
// session acks.
func NewSessionSource(srv *SessionServer, streams, queueBound int) *SessionSource {
	if queueBound <= 0 {
		queueBound = 65536
	}
	s := &SessionSource{srv: srv, bound: queueBound}
	s.cond = sync.NewCond(&s.mu)
	go func() {
		err := srv.ServeBatches(streams, s.feed)
		s.mu.Lock()
		s.done = true
		s.err = err
		s.cond.Broadcast()
		s.mu.Unlock()
	}()
	return s
}

// feed is the ServeBatches sink: it copies the batch into the queue
// (the transport's slice and arena are reused after the call returns).
func (s *SessionSource) feed(_ string, tuples []*tuple.Tuple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue)-s.head > s.bound {
		s.cond.Wait()
	}
	s.queue = stream.AppendTuples(s.queue, tuples)
	s.cond.Broadcast()
}

// Schema implements stream.Source.
func (s *SessionSource) Schema() *tuple.Schema { return s.srv.schema }

// Next implements stream.Source.
func (s *SessionSource) Next() (stream.Element, bool) {
	out := make([]stream.Element, 0, 1)
	out, _ = s.NextBatch(out, 1)
	if len(out) == 0 {
		return stream.Element{}, false
	}
	return out[0], true
}

// NextBatch implements stream.BulkSource. It blocks until at least one
// element is available (or every stream completed), then drains up to
// max already-queued elements without further blocking.
func (s *SessionSource) NextBatch(dst []stream.Element, max int) ([]stream.Element, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == s.head && !s.done {
		s.cond.Wait()
	}
	n := len(s.queue) - s.head
	if n > max {
		n = max
	}
	for _, e := range s.queue[s.head : s.head+n] {
		dst = append(dst, e)
	}
	// Zero and compact the consumed prefix so the queue neither pins
	// tuples nor grows without bound.
	for i := s.head; i < s.head+n; i++ {
		s.queue[i] = stream.Element{}
	}
	s.head += n
	if s.head == len(s.queue) {
		s.queue = s.queue[:0]
		s.head = 0
	}
	s.cond.Broadcast()
	return dst, len(s.queue) > s.head || !s.done
}

// Err reports the ServeBatches result once every stream has completed
// (nil while still serving).
func (s *SessionSource) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
