// Column kernels: the vectorized counterpart of the scalar fast lane.
//
// A ColumnKernel evaluates a boolean expression over a whole column
// run at once, writing the physical row indexes that pass into a
// selection vector. Comparisons against literals compile into tight
// per-kind loops over the column storage (no per-row interface
// dispatch, no Value copies beyond one load); AND composes kernels by
// sequential refinement of the selection vector, OR by an ascending
// merge-union of two child selections. Any row whose runtime kind
// deviates from the schema — and any expression shape without a
// specialized loop — falls through to a row-at-a-time gather +
// EvalBool, so kernels are exactly equivalent to EvalBool on every
// row, NULLs included.

package expr

import "streamdb/internal/tuple"

// ColumnKernel appends to dst the physical row indexes (drawn from sel,
// or 0..len(ts)-1 when sel is nil) whose row satisfies the compiled
// predicate under EvalBool semantics, and returns the extended slice.
// dst may alias sel for in-place refinement: kernels only append a row
// after reading it, so the write index never passes the read index.
//
// Kernels carry private scratch state (row-gather buffers, OR merge
// buffers) and are therefore single-goroutine: every operator clone
// must compile its own kernel.
type ColumnKernel func(cols [][]tuple.Value, ts []int64, sel []int32, dst []int32) []int32

// kernelEnv is the shared scratch of one compiled kernel tree: a
// reusable row for gather-and-eval fallbacks.
type kernelEnv struct {
	row  tuple.Tuple
	vals []tuple.Value
}

func newKernelEnv(arity int) *kernelEnv {
	env := &kernelEnv{vals: make([]tuple.Value, arity)}
	env.row.Vals = env.vals
	return env
}

// rowFallback evaluates one physical row the slow way: gather into the
// scratch row, then EvalBool.
type rowFallback func(cols [][]tuple.Value, ts []int64, r int) bool

func (env *kernelEnv) fallbackFor(e Expr) rowFallback {
	return func(cols [][]tuple.Value, ts []int64, r int) bool {
		env.row.Ts = ts[r]
		n := len(cols)
		if n > len(env.vals) {
			n = len(env.vals)
		}
		for c := 0; c < n; c++ {
			env.vals[c] = cols[c][r]
		}
		return EvalBool(e, &env.row)
	}
}

// CompileKernel compiles a boolean expression into a column kernel over
// rows of the given arity. It never returns nil: shapes without a
// specialized loop compile into the generic row-at-a-time kernel, so a
// batch operator can always run columnar.
func CompileKernel(e Expr, arity int) ColumnKernel {
	return compileKernelExpr(e, newKernelEnv(arity))
}

func compileKernelExpr(e Expr, env *kernelEnv) ColumnKernel {
	if b, ok := e.(*Bin); ok {
		switch {
		case b.Op == OpAnd:
			return andKernel(compileKernelExpr(b.L, env), compileKernelExpr(b.R, env))
		case b.Op == OpOr:
			return orKernel(compileKernelExpr(b.L, env), compileKernelExpr(b.R, env))
		case b.Op.Comparison():
			if c, ok := b.L.(*Col); ok {
				if lit, ok := b.R.(*Lit); ok {
					if k := cmpKernel(e, c, b.Op, lit.Val, env); k != nil {
						return k
					}
				}
			}
			if lit, ok := b.L.(*Lit); ok {
				if c, ok := b.R.(*Col); ok {
					if k := cmpKernel(e, c, flipCmp(b.Op), lit.Val, env); k != nil {
						return k
					}
				}
			}
		}
	}
	return rowKernel(e, env)
}

// rowKernel is the generic fallback: gather each row and evaluate. The
// scalar compiled predicate is still used when the shape has one (e.g.
// a NOT the column lane does not specialize).
func rowKernel(e Expr, env *kernelEnv) ColumnKernel {
	pred := CompilePredicate(e)
	eval := env.fallbackFor(e)
	if pred != nil {
		p := pred
		eval = func(cols [][]tuple.Value, ts []int64, r int) bool {
			env.row.Ts = ts[r]
			n := len(cols)
			if n > len(env.vals) {
				n = len(env.vals)
			}
			for c := 0; c < n; c++ {
				env.vals[c] = cols[c][r]
			}
			return p(&env.row)
		}
	}
	return func(cols [][]tuple.Value, ts []int64, sel []int32, dst []int32) []int32 {
		if sel == nil {
			for r := 0; r < len(ts); r++ {
				if eval(cols, ts, r) {
					dst = append(dst, int32(r))
				}
			}
			return dst
		}
		for _, ri := range sel {
			if eval(cols, ts, int(ri)) {
				dst = append(dst, ri)
			}
		}
		return dst
	}
}

// andKernel refines sequentially: the left kernel writes survivors into
// dst, the right kernel refines them in place.
func andKernel(l, r ColumnKernel) ColumnKernel {
	return func(cols [][]tuple.Value, ts []int64, sel []int32, dst []int32) []int32 {
		mid := l(cols, ts, sel, dst)
		return r(cols, ts, mid, mid[:0])
	}
}

// orKernel evaluates both children over the same input selection into
// private scratch vectors, then merge-unions the two ascending index
// lists into dst. The union only starts writing dst after both children
// finished reading sel, so dst aliasing sel stays safe.
func orKernel(l, r ColumnKernel) ColumnKernel {
	var lb, rb []int32
	return func(cols [][]tuple.Value, ts []int64, sel []int32, dst []int32) []int32 {
		lres := l(cols, ts, sel, lb[:0])
		lb = lres
		rres := r(cols, ts, sel, rb[:0])
		rb = rres
		i, j := 0, 0
		for i < len(lres) && j < len(rres) {
			a, b := lres[i], rres[j]
			switch {
			case a < b:
				dst = append(dst, a)
				i++
			case b < a:
				dst = append(dst, b)
				j++
			default:
				dst = append(dst, a)
				i++
				j++
			}
		}
		dst = append(dst, lres[i:]...)
		dst = append(dst, rres[j:]...)
		return dst
	}
}

// cmpKernel builds the columnar loop for `col op lit`. The three
// highest-traffic kind pairs get dedicated loops with the comparison
// inlined; every other supported pair runs the shared sign closure;
// unsupported pairs return nil (caller falls back to rowKernel).
func cmpKernel(whole Expr, c *Col, op BinOp, lit tuple.Value, env *kernelEnv) ColumnKernel {
	idx, colKind, mask := c.Index, c.Typ, cmpMask(op)
	fb := env.fallbackFor(whole)
	switch {
	case colKind == tuple.KindInt && lit.Kind == tuple.KindInt:
		return intCmpKernel(idx, mask, int64(lit.Raw()), fb)
	case (colKind == tuple.KindUint || colKind == tuple.KindTime) &&
		(lit.Kind == tuple.KindUint || lit.Kind == tuple.KindTime):
		return uintCmpKernel(idx, colKind, mask, lit.Raw(), fb)
	case (colKind == tuple.KindUint || colKind == tuple.KindTime) && lit.Kind == tuple.KindInt:
		li := int64(lit.Raw())
		if li < 0 {
			// Column raw bits are never Int-negative: always greater.
			sign := func(tuple.Value) uint8 { return 2 }
			return signCmpKernel(idx, colKind, mask, sign, fb)
		}
		return uintCmpKernel(idx, colKind, mask, uint64(li), fb)
	case colKind == tuple.KindFloat:
		lf, ok := lit.AsFloat()
		if !ok {
			return nil
		}
		return floatCmpKernel(idx, mask, lf, fb)
	default:
		sign := compileSign(colKind, lit)
		if sign == nil {
			return nil
		}
		return signCmpKernel(idx, colKind, mask, sign, fb)
	}
}

// b2u compiles to a flag-set (SETcc), keeping the comparison loops
// free of data-dependent branches.
func b2u(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// The comparison kernels keep their hot loops pure: no function call in
// the body (a row-fallback call in a mixed loop forces register spills
// across the whole loop, tripling its cost even when never taken). On
// the dense path the pure loop runs speculatively with a branchless
// `bad |= kind != k` accumulator riding along — reading Raw()/Fl() of a
// mis-kinded Value is safe (plain field loads), so a deviant row just
// discards the speculative output and re-runs the chunk through the
// mixed lane. On the sel path dst may alias sel (in-place refinement)
// and a failed speculation could not be rolled back, so the speculative
// loop writes into a kernel-private scratch instead and the survivors
// are copied into dst afterwards — sel is fully read by then, so the
// copy is alias-safe and the refinement stays a single pass over the
// column.

// growSel guarantees room for n more indexes in dst so the loops below
// can use the always-store/conditionally-advance idiom: write the row
// index unconditionally, bump the length only when the row passes. A
// mid-selectivity predicate mispredicts an append-if branch on nearly
// every row; the store is free.
func growSel(dst []int32, n int) []int32 {
	if cap(dst)-len(dst) < n {
		g := make([]int32, len(dst), len(dst)+n)
		copy(g, dst)
		return g
	}
	return dst
}

// intRunFn / floatRunFn pick the comparison loop for one kernel: the
// six comparison masks get loops whose pass bit is a direct comparison
// (or two, for float Eq/Ne); anything else keeps the generic
// mask-indexed sign loop.
type intRunFn func(col []tuple.Value, sel []int32, mask uint8, lit int64, dst []int32) ([]int32, bool)

type floatRunFn func(col []tuple.Value, sel []int32, mask uint8, lit float64, dst []int32) ([]int32, bool)

func intRunFor(mask uint8) intRunFn {
	switch mask {
	case 0b001: // Lt
		return intLtRun
	case 0b010: // Eq
		return intEqRun
	case 0b011: // Le
		return intLeRun
	case 0b100: // Gt
		return intGtRun
	case 0b101: // Ne
		return intNeRun
	case 0b110: // Ge
		return intGeRun
	}
	return intCmpRun
}

func floatRunFor(mask uint8) floatRunFn {
	switch mask {
	case 0b001: // Lt
		return floatLtRun
	case 0b010: // Eq
		return floatEqRun
	case 0b011: // Le
		return floatLeRun
	case 0b100: // Gt
		return floatGtRun
	case 0b101: // Ne
		return floatNeRun
	case 0b110: // Ge
		return floatGeRun
	}
	return floatCmpRun
}

func intCmpKernel(idx int, mask uint8, lit int64, fb rowFallback) ColumnKernel {
	var scratch []int32
	run := intRunFor(mask)
	return func(cols [][]tuple.Value, ts []int64, sel []int32, dst []int32) []int32 {
		col := cols[idx]
		var out []int32
		var ok bool
		if sel == nil {
			k0 := len(dst)
			out, ok = run(col, nil, mask, lit, dst)
			if ok {
				return out
			}
			dst = out[:k0]
		} else {
			out, ok = run(col, sel, mask, lit, scratch[:0])
			scratch = out[:0]
			if ok {
				return append(dst, out...)
			}
		}
		return cmpMixed(cols, ts, sel, dst, fb, func(r int32) uint8 {
			if col[r].Kind != tuple.KindInt {
				return 2
			}
			x := int64(col[r].Raw())
			return mask >> (1 + b2u(x > lit) - b2u(x < lit)) & 1
		})
	}
}

func intCmpRun(col []tuple.Value, sel []int32, mask uint8, lit int64, dst []int32) ([]int32, bool) {
	k := len(dst)
	var bad uint8
	if sel == nil {
		dst = growSel(dst, len(col))[:k+len(col)]
		for r := 0; r < len(col); r++ {
			bad |= b2u(col[r].Kind != tuple.KindInt)
			x := int64(col[r].Raw())
			dst[k] = int32(r)
			k += int(mask >> (1 + b2u(x > lit) - b2u(x < lit)) & 1)
		}
		return dst[:k], bad == 0
	}
	dst = growSel(dst, len(sel))[:k+len(sel)]
	for _, ri := range sel {
		bad |= b2u(col[ri].Kind != tuple.KindInt)
		x := int64(col[ri].Raw())
		dst[k] = ri
		k += int(mask >> (1 + b2u(x > lit) - b2u(x < lit)) & 1)
	}
	return dst[:k], bad == 0
}

func intLtRun(col []tuple.Value, sel []int32, _ uint8, lit int64, dst []int32) ([]int32, bool) {
	k := len(dst)
	var bad uint8
	if sel == nil {
		dst = growSel(dst, len(col))[:k+len(col)]
		for r := 0; r < len(col); r++ {
			bad |= b2u(col[r].Kind != tuple.KindInt)
			dst[k] = int32(r)
			k += int(b2u(int64(col[r].Raw()) < lit))
		}
		return dst[:k], bad == 0
	}
	dst = growSel(dst, len(sel))[:k+len(sel)]
	for _, ri := range sel {
		bad |= b2u(col[ri].Kind != tuple.KindInt)
		dst[k] = ri
		k += int(b2u(int64(col[ri].Raw()) < lit))
	}
	return dst[:k], bad == 0
}

func intLeRun(col []tuple.Value, sel []int32, _ uint8, lit int64, dst []int32) ([]int32, bool) {
	k := len(dst)
	var bad uint8
	if sel == nil {
		dst = growSel(dst, len(col))[:k+len(col)]
		for r := 0; r < len(col); r++ {
			bad |= b2u(col[r].Kind != tuple.KindInt)
			dst[k] = int32(r)
			k += int(b2u(int64(col[r].Raw()) <= lit))
		}
		return dst[:k], bad == 0
	}
	dst = growSel(dst, len(sel))[:k+len(sel)]
	for _, ri := range sel {
		bad |= b2u(col[ri].Kind != tuple.KindInt)
		dst[k] = ri
		k += int(b2u(int64(col[ri].Raw()) <= lit))
	}
	return dst[:k], bad == 0
}

func intGtRun(col []tuple.Value, sel []int32, _ uint8, lit int64, dst []int32) ([]int32, bool) {
	k := len(dst)
	var bad uint8
	if sel == nil {
		dst = growSel(dst, len(col))[:k+len(col)]
		for r := 0; r < len(col); r++ {
			bad |= b2u(col[r].Kind != tuple.KindInt)
			dst[k] = int32(r)
			k += int(b2u(int64(col[r].Raw()) > lit))
		}
		return dst[:k], bad == 0
	}
	dst = growSel(dst, len(sel))[:k+len(sel)]
	for _, ri := range sel {
		bad |= b2u(col[ri].Kind != tuple.KindInt)
		dst[k] = ri
		k += int(b2u(int64(col[ri].Raw()) > lit))
	}
	return dst[:k], bad == 0
}

func intGeRun(col []tuple.Value, sel []int32, _ uint8, lit int64, dst []int32) ([]int32, bool) {
	k := len(dst)
	var bad uint8
	if sel == nil {
		dst = growSel(dst, len(col))[:k+len(col)]
		for r := 0; r < len(col); r++ {
			bad |= b2u(col[r].Kind != tuple.KindInt)
			dst[k] = int32(r)
			k += int(b2u(int64(col[r].Raw()) >= lit))
		}
		return dst[:k], bad == 0
	}
	dst = growSel(dst, len(sel))[:k+len(sel)]
	for _, ri := range sel {
		bad |= b2u(col[ri].Kind != tuple.KindInt)
		dst[k] = ri
		k += int(b2u(int64(col[ri].Raw()) >= lit))
	}
	return dst[:k], bad == 0
}

func intEqRun(col []tuple.Value, sel []int32, _ uint8, lit int64, dst []int32) ([]int32, bool) {
	k := len(dst)
	var bad uint8
	if sel == nil {
		dst = growSel(dst, len(col))[:k+len(col)]
		for r := 0; r < len(col); r++ {
			bad |= b2u(col[r].Kind != tuple.KindInt)
			dst[k] = int32(r)
			k += int(b2u(int64(col[r].Raw()) == lit))
		}
		return dst[:k], bad == 0
	}
	dst = growSel(dst, len(sel))[:k+len(sel)]
	for _, ri := range sel {
		bad |= b2u(col[ri].Kind != tuple.KindInt)
		dst[k] = ri
		k += int(b2u(int64(col[ri].Raw()) == lit))
	}
	return dst[:k], bad == 0
}

func intNeRun(col []tuple.Value, sel []int32, _ uint8, lit int64, dst []int32) ([]int32, bool) {
	k := len(dst)
	var bad uint8
	if sel == nil {
		dst = growSel(dst, len(col))[:k+len(col)]
		for r := 0; r < len(col); r++ {
			bad |= b2u(col[r].Kind != tuple.KindInt)
			dst[k] = int32(r)
			k += int(b2u(int64(col[r].Raw()) != lit))
		}
		return dst[:k], bad == 0
	}
	dst = growSel(dst, len(sel))[:k+len(sel)]
	for _, ri := range sel {
		bad |= b2u(col[ri].Kind != tuple.KindInt)
		dst[k] = ri
		k += int(b2u(int64(col[ri].Raw()) != lit))
	}
	return dst[:k], bad == 0
}

func uintCmpKernel(idx int, colKind tuple.Kind, mask uint8, lit uint64, fb rowFallback) ColumnKernel {
	var scratch []int32
	return func(cols [][]tuple.Value, ts []int64, sel []int32, dst []int32) []int32 {
		col := cols[idx]
		var out []int32
		var ok bool
		if sel == nil {
			k0 := len(dst)
			out, ok = uintCmpRun(col, nil, colKind, mask, lit, dst)
			if ok {
				return out
			}
			dst = out[:k0]
		} else {
			out, ok = uintCmpRun(col, sel, colKind, mask, lit, scratch[:0])
			scratch = out[:0]
			if ok {
				return append(dst, out...)
			}
		}
		return cmpMixed(cols, ts, sel, dst, fb, func(r int32) uint8 {
			if col[r].Kind != colKind {
				return 2
			}
			x := col[r].Raw()
			return mask >> (1 + b2u(x > lit) - b2u(x < lit)) & 1
		})
	}
}

func uintCmpRun(col []tuple.Value, sel []int32, colKind tuple.Kind, mask uint8, lit uint64, dst []int32) ([]int32, bool) {
	k := len(dst)
	var bad uint8
	if sel == nil {
		dst = growSel(dst, len(col))[:k+len(col)]
		for r := 0; r < len(col); r++ {
			bad |= b2u(col[r].Kind != colKind)
			x := col[r].Raw()
			dst[k] = int32(r)
			k += int(mask >> (1 + b2u(x > lit) - b2u(x < lit)) & 1)
		}
		return dst[:k], bad == 0
	}
	dst = growSel(dst, len(sel))[:k+len(sel)]
	for _, ri := range sel {
		bad |= b2u(col[ri].Kind != colKind)
		x := col[ri].Raw()
		dst[k] = ri
		k += int(mask >> (1 + b2u(x > lit) - b2u(x < lit)) & 1)
	}
	return dst[:k], bad == 0
}

func floatCmpKernel(idx int, mask uint8, lit float64, fb rowFallback) ColumnKernel {
	var scratch []int32
	run := floatRunFor(mask)
	return func(cols [][]tuple.Value, ts []int64, sel []int32, dst []int32) []int32 {
		col := cols[idx]
		var out []int32
		var ok bool
		if sel == nil {
			k0 := len(dst)
			out, ok = run(col, nil, mask, lit, dst)
			if ok {
				return out
			}
			dst = out[:k0]
		} else {
			out, ok = run(col, sel, mask, lit, scratch[:0])
			scratch = out[:0]
			if ok {
				return append(dst, out...)
			}
		}
		return cmpMixed(cols, ts, sel, dst, fb, func(r int32) uint8 {
			if col[r].Kind != tuple.KindFloat {
				return 2
			}
			x := col[r].Fl()
			return mask >> (1 + b2u(x > lit) - b2u(x < lit)) & 1
		})
	}
}

// floatCmpRun: NaN compares neither below nor above, so the sign
// expression yields 1 ("equal"), matching floatSign and compareNumeric.
func floatCmpRun(col []tuple.Value, sel []int32, mask uint8, lit float64, dst []int32) ([]int32, bool) {
	k := len(dst)
	var bad uint8
	if sel == nil {
		dst = growSel(dst, len(col))[:k+len(col)]
		for r := 0; r < len(col); r++ {
			bad |= b2u(col[r].Kind != tuple.KindFloat)
			x := col[r].Fl()
			dst[k] = int32(r)
			k += int(mask >> (1 + b2u(x > lit) - b2u(x < lit)) & 1)
		}
		return dst[:k], bad == 0
	}
	dst = growSel(dst, len(sel))[:k+len(sel)]
	for _, ri := range sel {
		bad |= b2u(col[ri].Kind != tuple.KindFloat)
		x := col[ri].Fl()
		dst[k] = ri
		k += int(mask >> (1 + b2u(x > lit) - b2u(x < lit)) & 1)
	}
	return dst[:k], bad == 0
}

// The specialized float loops keep the NaN-counts-as-equal convention
// by construction: Lt/Gt use the direct comparison (false for NaN, and
// "equal" does not pass), Le/Ge use the negated opposite comparison
// (true for NaN, and "equal" passes), Eq/Ne combine both direct
// comparisons so a NaN cell — below nothing, above nothing — passes Eq
// and fails Ne, exactly like compareNumeric's sign 1. IEEE `NaN == x`
// is false, so a plain == here would silently diverge from EvalBool.

func floatLtRun(col []tuple.Value, sel []int32, _ uint8, lit float64, dst []int32) ([]int32, bool) {
	k := len(dst)
	var bad uint8
	if sel == nil {
		dst = growSel(dst, len(col))[:k+len(col)]
		for r := 0; r < len(col); r++ {
			bad |= b2u(col[r].Kind != tuple.KindFloat)
			dst[k] = int32(r)
			k += int(b2u(col[r].Fl() < lit))
		}
		return dst[:k], bad == 0
	}
	dst = growSel(dst, len(sel))[:k+len(sel)]
	for _, ri := range sel {
		bad |= b2u(col[ri].Kind != tuple.KindFloat)
		dst[k] = ri
		k += int(b2u(col[ri].Fl() < lit))
	}
	return dst[:k], bad == 0
}

func floatLeRun(col []tuple.Value, sel []int32, _ uint8, lit float64, dst []int32) ([]int32, bool) {
	k := len(dst)
	var bad uint8
	if sel == nil {
		dst = growSel(dst, len(col))[:k+len(col)]
		for r := 0; r < len(col); r++ {
			bad |= b2u(col[r].Kind != tuple.KindFloat)
			dst[k] = int32(r)
			k += 1 - int(b2u(col[r].Fl() > lit))
		}
		return dst[:k], bad == 0
	}
	dst = growSel(dst, len(sel))[:k+len(sel)]
	for _, ri := range sel {
		bad |= b2u(col[ri].Kind != tuple.KindFloat)
		dst[k] = ri
		k += 1 - int(b2u(col[ri].Fl() > lit))
	}
	return dst[:k], bad == 0
}

func floatGtRun(col []tuple.Value, sel []int32, _ uint8, lit float64, dst []int32) ([]int32, bool) {
	k := len(dst)
	var bad uint8
	if sel == nil {
		dst = growSel(dst, len(col))[:k+len(col)]
		for r := 0; r < len(col); r++ {
			bad |= b2u(col[r].Kind != tuple.KindFloat)
			dst[k] = int32(r)
			k += int(b2u(col[r].Fl() > lit))
		}
		return dst[:k], bad == 0
	}
	dst = growSel(dst, len(sel))[:k+len(sel)]
	for _, ri := range sel {
		bad |= b2u(col[ri].Kind != tuple.KindFloat)
		dst[k] = ri
		k += int(b2u(col[ri].Fl() > lit))
	}
	return dst[:k], bad == 0
}

func floatGeRun(col []tuple.Value, sel []int32, _ uint8, lit float64, dst []int32) ([]int32, bool) {
	k := len(dst)
	var bad uint8
	if sel == nil {
		dst = growSel(dst, len(col))[:k+len(col)]
		for r := 0; r < len(col); r++ {
			bad |= b2u(col[r].Kind != tuple.KindFloat)
			dst[k] = int32(r)
			k += 1 - int(b2u(col[r].Fl() < lit))
		}
		return dst[:k], bad == 0
	}
	dst = growSel(dst, len(sel))[:k+len(sel)]
	for _, ri := range sel {
		bad |= b2u(col[ri].Kind != tuple.KindFloat)
		dst[k] = ri
		k += 1 - int(b2u(col[ri].Fl() < lit))
	}
	return dst[:k], bad == 0
}

func floatEqRun(col []tuple.Value, sel []int32, _ uint8, lit float64, dst []int32) ([]int32, bool) {
	k := len(dst)
	var bad uint8
	if sel == nil {
		dst = growSel(dst, len(col))[:k+len(col)]
		for r := 0; r < len(col); r++ {
			bad |= b2u(col[r].Kind != tuple.KindFloat)
			x := col[r].Fl()
			dst[k] = int32(r)
			k += 1 - int(b2u(x < lit)|b2u(x > lit))
		}
		return dst[:k], bad == 0
	}
	dst = growSel(dst, len(sel))[:k+len(sel)]
	for _, ri := range sel {
		bad |= b2u(col[ri].Kind != tuple.KindFloat)
		x := col[ri].Fl()
		dst[k] = ri
		k += 1 - int(b2u(x < lit)|b2u(x > lit))
	}
	return dst[:k], bad == 0
}

func floatNeRun(col []tuple.Value, sel []int32, _ uint8, lit float64, dst []int32) ([]int32, bool) {
	k := len(dst)
	var bad uint8
	if sel == nil {
		dst = growSel(dst, len(col))[:k+len(col)]
		for r := 0; r < len(col); r++ {
			bad |= b2u(col[r].Kind != tuple.KindFloat)
			x := col[r].Fl()
			dst[k] = int32(r)
			k += int(b2u(x < lit) | b2u(x > lit))
		}
		return dst[:k], bad == 0
	}
	dst = growSel(dst, len(sel))[:k+len(sel)]
	for _, ri := range sel {
		bad |= b2u(col[ri].Kind != tuple.KindFloat)
		x := col[ri].Fl()
		dst[k] = ri
		k += int(b2u(x < lit) | b2u(x > lit))
	}
	return dst[:k], bad == 0
}

// cmpMixed is the slow lane for columns with at least one row whose
// runtime kind deviates from the schema: eval returns 0/1 for a
// conforming row and 2 to route the row through the fallback.
func cmpMixed(cols [][]tuple.Value, ts []int64, sel []int32, dst []int32, fb rowFallback, eval func(r int32) uint8) []int32 {
	push := func(r int32) {
		switch eval(r) {
		case 1:
			dst = append(dst, r)
		case 2:
			if fb(cols, ts, int(r)) {
				dst = append(dst, r)
			}
		}
	}
	if sel == nil {
		for r := 0; r < len(cols[0]); r++ {
			push(int32(r))
		}
		return dst
	}
	for _, ri := range sel {
		push(ri)
	}
	return dst
}

func signCmpKernel(idx int, colKind tuple.Kind, mask uint8, sign func(tuple.Value) uint8, fb rowFallback) ColumnKernel {
	return func(cols [][]tuple.Value, ts []int64, sel []int32, dst []int32) []int32 {
		col := cols[idx]
		if sel == nil {
			for r := 0; r < len(col); r++ {
				v := col[r]
				if v.Kind == colKind {
					if mask>>sign(v)&1 != 0 {
						dst = append(dst, int32(r))
					}
				} else if fb(cols, ts, r) {
					dst = append(dst, int32(r))
				}
			}
			return dst
		}
		for _, ri := range sel {
			v := col[ri]
			if v.Kind == colKind {
				if mask>>sign(v)&1 != 0 {
					dst = append(dst, ri)
				}
			} else if fb(cols, ts, int(ri)) {
				dst = append(dst, ri)
			}
		}
		return dst
	}
}
