// Package tuple defines the data model shared by every layer of streamdb:
// typed values, schemas, tuples, and the ordering-attribute machinery that
// stream operators rely on (Koudas & Srivastava, ICDE 2005, slides 16-17).
//
// Values are a tagged union rather than interface{} so that the per-tuple
// hot path (selection, hashing, aggregation) does not allocate.
package tuple

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the primitive types a stream attribute may take.
type Kind uint8

// The supported attribute kinds. KindIP is a 32-bit IPv4 address kept in a
// uint64 payload; KindTime is nanoseconds since the epoch, matching the
// virtual clock used by the execution engine.
const (
	KindNull Kind = iota
	KindInt
	KindUint
	KindFloat
	KindString
	KindBool
	KindIP
	KindTime
)

var kindNames = [...]string{
	KindNull:   "NULL",
	KindInt:    "INT",
	KindUint:   "UINT",
	KindFloat:  "FLOAT",
	KindString: "STRING",
	KindBool:   "BOOL",
	KindIP:     "IP",
	KindTime:   "TIME",
}

// String returns the SQL-style name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ParseKind converts a type name (as written in schema definitions) to a
// Kind. It accepts the names produced by Kind.String, case-insensitively.
func ParseKind(s string) (Kind, error) {
	switch strings.ToUpper(s) {
	case "NULL":
		return KindNull, nil
	case "INT", "INTEGER", "BIGINT":
		return KindInt, nil
	case "UINT", "UINTEGER":
		return KindUint, nil
	case "FLOAT", "DOUBLE", "REAL":
		return KindFloat, nil
	case "STRING", "VARCHAR", "TEXT":
		return KindString, nil
	case "BOOL", "BOOLEAN":
		return KindBool, nil
	case "IP", "IPV4":
		return KindIP, nil
	case "TIME", "TIMESTAMP":
		return KindTime, nil
	}
	return KindNull, fmt.Errorf("tuple: unknown type %q", s)
}

// Numeric reports whether values of this kind participate in arithmetic.
func (k Kind) Numeric() bool {
	switch k {
	case KindInt, KindUint, KindFloat, KindTime:
		return true
	}
	return false
}

// Value is a tagged union holding one attribute value. The zero Value is
// NULL. Exactly one payload field is meaningful, selected by Kind.
type Value struct {
	Kind Kind
	// num holds KindInt (as int64 bits), KindUint, KindIP, KindTime and
	// KindBool (0/1); f holds KindFloat; s holds KindString.
	num uint64
	f   float64
	s   string
}

// Null is the NULL value.
var Null = Value{}

// Int constructs an INT value.
func Int(v int64) Value { return Value{Kind: KindInt, num: uint64(v)} }

// Uint constructs a UINT value.
func Uint(v uint64) Value { return Value{Kind: KindUint, num: v} }

// Float constructs a FLOAT value.
func Float(v float64) Value { return Value{Kind: KindFloat, f: v} }

// String constructs a STRING value.
func String(v string) Value { return Value{Kind: KindString, s: v} }

// Bool constructs a BOOL value.
func Bool(v bool) Value {
	var n uint64
	if v {
		n = 1
	}
	return Value{Kind: KindBool, num: n}
}

// IP constructs an IP value from a 32-bit IPv4 address in host order.
func IP(v uint32) Value { return Value{Kind: KindIP, num: uint64(v)} }

// Time constructs a TIME value from nanoseconds since the epoch.
func Time(ns int64) Value { return Value{Kind: KindTime, num: uint64(ns)} }

// TimeOf constructs a TIME value from a time.Time.
func TimeOf(t time.Time) Value { return Time(t.UnixNano()) }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// AsInt returns the value as an int64. FLOAT is truncated; STRING fails.
func (v Value) AsInt() (int64, bool) {
	switch v.Kind {
	case KindInt, KindTime:
		return int64(v.num), true
	case KindUint, KindIP:
		return int64(v.num), true
	case KindFloat:
		return int64(v.f), true
	case KindBool:
		return int64(v.num), true
	}
	return 0, false
}

// AsUint returns the value as a uint64.
func (v Value) AsUint() (uint64, bool) {
	switch v.Kind {
	case KindUint, KindIP, KindBool, KindTime:
		return v.num, true
	case KindInt:
		if int64(v.num) < 0 {
			return 0, false
		}
		return v.num, true
	case KindFloat:
		if v.f < 0 {
			return 0, false
		}
		return uint64(v.f), true
	}
	return 0, false
}

// AsFloat returns the value as a float64.
func (v Value) AsFloat() (float64, bool) {
	switch v.Kind {
	case KindFloat:
		return v.f, true
	case KindInt, KindTime:
		return float64(int64(v.num)), true
	case KindUint, KindIP, KindBool:
		return float64(v.num), true
	}
	return 0, false
}

// AsString returns the value as a string; only STRING succeeds.
func (v Value) AsString() (string, bool) {
	if v.Kind == KindString {
		return v.s, true
	}
	return "", false
}

// AsBool returns the value as a bool; only BOOL succeeds.
func (v Value) AsBool() (bool, bool) {
	if v.Kind == KindBool {
		return v.num != 0, true
	}
	return false, false
}

// AsTime returns a TIME value as nanoseconds since the epoch.
func (v Value) AsTime() (int64, bool) {
	if v.Kind == KindTime {
		return int64(v.num), true
	}
	return 0, false
}

// Raw returns the raw numeric payload. It is meaningful for every kind
// except STRING and FLOAT and exists for hashing and encoding.
func (v Value) Raw() uint64 { return v.num }

// Str returns the raw string payload (empty unless Kind == KindString).
func (v Value) Str() string { return v.s }

// Fl returns the raw float payload (zero unless Kind == KindFloat).
func (v Value) Fl() float64 { return v.f }

// String renders the value for display.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(int64(v.num), 10)
	case KindUint:
		return strconv.FormatUint(v.num, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.num != 0 {
			return "true"
		}
		return "false"
	case KindIP:
		return FormatIPv4(uint32(v.num))
	case KindTime:
		return strconv.FormatInt(int64(v.num), 10)
	}
	return "?"
}

// FormatIPv4 renders a host-order IPv4 address in dotted-quad form.
func FormatIPv4(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// ParseIPv4 parses a dotted-quad IPv4 address into host order.
func ParseIPv4(s string) (uint32, error) {
	var parts [4]uint64
	rest := s
	for i := 0; i < 4; i++ {
		var seg string
		if i < 3 {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return 0, fmt.Errorf("tuple: bad IPv4 %q", s)
			}
			seg, rest = rest[:dot], rest[dot+1:]
		} else {
			seg = rest
		}
		n, err := strconv.ParseUint(seg, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("tuple: bad IPv4 %q", s)
		}
		parts[i] = n
	}
	return uint32(parts[0]<<24 | parts[1]<<16 | parts[2]<<8 | parts[3]), nil
}

// Equal reports deep equality of two values. Numeric values of different
// kinds compare by numeric value (1 == 1.0), matching SQL semantics.
// NULL equals nothing, including NULL.
func (v Value) Equal(o Value) bool {
	if v.Kind == KindNull || o.Kind == KindNull {
		return false
	}
	if v.Kind == KindString || o.Kind == KindString {
		return v.Kind == o.Kind && v.s == o.s
	}
	if v.Kind == KindBool || o.Kind == KindBool {
		return v.Kind == o.Kind && v.num == o.num
	}
	return v.compareNumeric(o) == 0
}

// Compare orders two values: -1, 0, +1. NULL sorts before everything.
// Values of incomparable kinds order by kind to give a stable total order.
func (v Value) Compare(o Value) int {
	if v.Kind == KindNull || o.Kind == KindNull {
		return int(boolTo(v.Kind != KindNull)) - int(boolTo(o.Kind != KindNull))
	}
	vn, on := v.Kind.Numeric(), o.Kind.Numeric()
	if vn && on {
		return v.compareNumeric(o)
	}
	if v.Kind != o.Kind {
		if v.Kind < o.Kind {
			return -1
		}
		return 1
	}
	switch v.Kind {
	case KindString:
		return strings.Compare(v.s, o.s)
	case KindBool:
		return int(v.num) - int(o.num)
	case KindIP:
		// Address order. Without this, sorting result rows by an IP
		// group key degrades to map iteration order.
		switch {
		case v.num < o.num:
			return -1
		case v.num > o.num:
			return 1
		}
	}
	return 0
}

func (v Value) compareNumeric(o Value) int {
	if v.Kind == KindFloat || o.Kind == KindFloat {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	// Both integral. Signed/unsigned cross-comparison must not wrap.
	if v.Kind == KindInt && int64(v.num) < 0 {
		if o.Kind == KindInt && int64(o.num) < 0 {
			switch {
			case int64(v.num) < int64(o.num):
				return -1
			case int64(v.num) > int64(o.num):
				return 1
			}
			return 0
		}
		return -1
	}
	if o.Kind == KindInt && int64(o.num) < 0 {
		return 1
	}
	switch {
	case v.num < o.num:
		return -1
	case v.num > o.num:
		return 1
	}
	return 0
}

func boolTo(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// Hash returns a 64-bit FNV-1a hash of the value, used by hash joins,
// group-by tables and sketches. Numerically equal values of different
// integral kinds hash identically.
func (v Value) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	switch v.Kind {
	case KindNull:
		mix(0)
	case KindString:
		mix(1)
		for i := 0; i < len(v.s); i++ {
			mix(v.s[i])
		}
	case KindFloat:
		// Hash integral floats as their integer value so 1.0 == 1 holds
		// for Equal implies equal hashes.
		if v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) && math.Abs(v.f) < math.MaxInt64 {
			return Int(int64(v.f)).Hash()
		}
		mix(2)
		bits := math.Float64bits(v.f)
		for i := 0; i < 8; i++ {
			mix(byte(bits >> (8 * i)))
		}
	case KindBool:
		mix(3)
		mix(byte(v.num))
	default: // integral kinds hash by numeric payload
		mix(4)
		for i := 0; i < 8; i++ {
			mix(byte(v.num >> (8 * i)))
		}
	}
	return h
}

// MemSize returns the approximate in-memory footprint of the value in
// bytes, used by the memory-based optimizer and load shedder.
func (v Value) MemSize() int {
	n := 24 // struct overhead approximation
	if v.Kind == KindString {
		n += len(v.s)
	}
	return n
}
