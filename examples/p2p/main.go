// P2P traffic detection: the Gigascope case study of slide 10. The
// same trace is classified two ways — by well-known ports over
// NetFlow-style records (the "previous approach") and by keyword search
// inside TCP payloads (the GSQL packet monitor). Payload inspection
// finds roughly 3x the traffic because most P2P sessions avoid the
// registered ports.
package main

import (
	"fmt"
	"log"

	"streamdb"
	"streamdb/internal/netmon"
	"streamdb/internal/stream"
)

const packets = 200000

func trace() *netmon.PacketTrace {
	return netmon.NewPacketTrace(netmon.TraceConfig{
		Seed:                 7,
		Rate:                 100000,
		AddrPool:             2000,
		P2PFraction:          0.3,
		P2PKnownPortFraction: 1.0 / 3.0,
	})
}

func main() {
	eng := streamdb.New()

	// Port-based classification over flow records.
	pt := trace()
	flows := netmon.NewFlowTrace(stream.Limit(pt, packets), 30*streamdb.Second)
	eng.RegisterSchema("Flows", flows.Schema())
	eng.SetSource("Flows", flows)
	res, err := eng.Query(`select destPort, sum(bytes) as bytes, count(*) as flows
		from Flows
		where destPort = 6881 or destPort = 6346 or destPort = 4662
		group by destPort`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("port-based classification (NetFlow):")
	fmt.Print(res.Format())
	var portBytes float64
	for _, r := range res.Rows {
		b, _ := r.Vals[1].AsFloat()
		portBytes += b
	}

	// Payload-keyword classification over raw packets (slide 10:
	// "search for P2P related keywords within each TCP datagram").
	pt2 := trace()
	eng.RegisterSchema("TCP", pt2.Schema())
	eng.SetSource("TCP", stream.Limit(pt2, packets))
	res, err = eng.Query(`select count(*) as pkts, sum(len) as bytes
		from TCP
		where contains_any(payload, 'BitTorrent protocol|GNUTELLA CONNECT|eDonkey')
		group by protocol`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("payload-keyword classification (GSQL):")
	fmt.Print(res.Format())
	var payBytes float64
	if len(res.Rows) > 0 {
		payBytes, _ = res.Rows[0].Vals[1].AsFloat()
	}

	fmt.Printf("\ntrue P2P bytes in trace: %d\n", pt2.TrueP2PBytes)
	fmt.Printf("payload found %.2fx the traffic port-based classification found\n",
		payBytes/portBytes)
}
