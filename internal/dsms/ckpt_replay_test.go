package dsms

// Crash-restart replay through the session protocol: a server that
// acknowledges only up to a durable checkpoint floor (DurableSeq) keeps
// clients holding the un-checkpointed tail in their replay buffers, so
// a restarted server seeded at the floor (InitialSeqs) receives exactly
// that tail again — no loss, no duplicates past the floor.

import (
	"bytes"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"streamdb/internal/tuple"
)

func TestSessionCrashRestartReplaysFromCheckpoint(t *testing.T) {
	const (
		ckptEvery  = 50  // checkpoint floor granularity (tuples)
		preCrash   = 137 // tuples sent before the crash
		total      = 300
		floorAtCut = 100 // preCrash/ckptEvery*ckptEvery
	)

	// Server A: acks capped at the moving checkpoint floor.
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var deliveredA atomic.Uint64
	var muA sync.Mutex
	var gotA []*tuple.Tuple
	srvA := NewSessionServer(lnA, sch, SessionConfig{
		DurableSeq: func(string) uint64 {
			return deliveredA.Load() / ckptEvery * ckptEvery
		},
	})
	go srvA.Serve(1, func(id string, tp *tuple.Tuple) {
		muA.Lock()
		gotA = append(gotA, tp)
		muA.Unlock()
		deliveredA.Add(1)
	})

	// Server B: the restart, seeded at the checkpointed floor.
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var muB sync.Mutex
	var gotB []*tuple.Tuple
	srvB := NewSessionServer(lnB, sch, SessionConfig{
		InitialSeqs: map[string]uint64{"s1": floorAtCut},
	})
	doneB := make(chan error, 1)
	go func() {
		doneB <- srvB.Serve(1, func(id string, tp *tuple.Tuple) {
			muB.Lock()
			gotB = append(gotB, tp)
			muB.Unlock()
		})
	}()

	var addr atomic.Value
	addr.Store(lnA.Addr().String())
	var connMu sync.Mutex
	var lastConn net.Conn
	w, err := NewReconnectWriter(ReconnectConfig{
		StreamID: "s1",
		Dial: func() (net.Conn, error) {
			c, err := net.Dial("tcp", addr.Load().(string))
			if err != nil {
				return nil, err
			}
			connMu.Lock()
			lastConn = c
			connMu.Unlock()
			return c, nil
		},
		AckEvery:    8,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		Timeout:     5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	sent := mkTuples(total)
	for _, tp := range sent[:preCrash] {
		if err := w.Send(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Let server A finish applying, so the checkpoint floor reaches
	// floorAtCut before the crash.
	deadline := time.Now().Add(5 * time.Second)
	for deliveredA.Load() < preCrash {
		if time.Now().After(deadline) {
			t.Fatalf("server A applied %d of %d", deliveredA.Load(), preCrash)
		}
		time.Sleep(time.Millisecond)
	}

	// Crash: server A vanishes, the client's connection dies, and every
	// reconnect from now on reaches the restarted server B.
	addr.Store(lnB.Addr().String())
	lnA.Close()
	connMu.Lock()
	lastConn.Close()
	connMu.Unlock()

	for _, tp := range sent[preCrash:] {
		if err := w.Send(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-doneB; err != nil {
		t.Fatalf("server B: %v", err)
	}

	// Server B must hold exactly the tail past the checkpoint floor:
	// the client's replay buffer still had floorAtCut+1..preCrash
	// because server A never acknowledged past the floor.
	muB.Lock()
	defer muB.Unlock()
	if len(gotB) != total-floorAtCut {
		t.Fatalf("server B delivered %d tuples, want %d", len(gotB), total-floorAtCut)
	}
	if !bytes.Equal(encodeAll(gotB), encodeAll(sent[floorAtCut:])) {
		t.Fatal("replayed tail differs from sent (loss or reorder across the crash)")
	}
	// Stitched delivery: A's checkpointed prefix + B's replayed tail is
	// the whole stream exactly once.
	muA.Lock()
	prefix := append([]*tuple.Tuple(nil), gotA[:floorAtCut]...)
	muA.Unlock()
	whole := append(prefix, gotB...)
	if !bytes.Equal(encodeAll(whole), encodeAll(sent)) {
		t.Fatal("checkpoint prefix + replayed tail != original stream")
	}
	if w.Stats().Reconnects == 0 {
		t.Error("client never reconnected; crash was not exercised")
	}
}
