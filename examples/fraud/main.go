// Fraud detection over call-detail streams: the Hancock application of
// slides 6-8. A signature program (iterate/event paradigm) folds each
// day's calls into per-line behavioural signatures held in a
// block-structured persistent store; days whose activity deviates from
// the blended signature raise alerts.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"streamdb/internal/hancock"
)

func main() {
	dir, err := os.MkdirTemp("", "fraud")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := hancock.GenConfig{
		Seed:               42,
		Lines:              20000,
		CallsPerLinePerDay: 3,
		FraudLines:         []int{1111, 7777, 15000},
		FraudStartDay:      4,
	}
	store, err := hancock.NewSigStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	const (
		alpha     = 0.3
		threshold = 50.0
	)

	for day := 0; day < 7; day++ {
		calls := hancock.GenerateDay(cfg, day)

		// The signature program of slide 8, expressed in the
		// iterate/event paradigm: accumulate per-line day statistics.
		stats := hancock.CollectDayStats(calls)

		// Score each active line against its stored signature.
		type alert struct {
			line  uint64
			score float64
		}
		var alerts []alert
		for line, d := range stats {
			sig, ok, err := store.Get(line)
			if err != nil {
				log.Fatal(err)
			}
			if !ok {
				continue // first sighting: no baseline yet
			}
			if s := sig.FraudScore(d); s > threshold {
				alerts = append(alerts, alert{line, s})
			}
		}
		sort.Slice(alerts, func(i, j int) bool { return alerts[i].score > alerts[j].score })

		// Blend the day into the store with one sequential merge pass —
		// the I/O discipline that motivated Hancock (slide 6). Alerted
		// lines are excluded so fraud does not get normalized into the
		// signature.
		alerted := map[uint64]bool{}
		for _, a := range alerts {
			alerted[a.line] = true
		}
		clean := make(map[uint64]hancock.DayStats, len(stats))
		for line, d := range stats {
			if !alerted[line] {
				clean[line] = d
			}
		}
		if err := store.MergeUpdate(alpha, clean); err != nil {
			log.Fatal(err)
		}

		fmt.Printf("day %d: %7d calls, %5d active lines, %d alerts",
			day, len(calls), len(stats), len(alerts))
		if len(alerts) > 0 {
			fmt.Print(" ->")
			for i, a := range alerts {
				if i == 5 {
					fmt.Print(" ...")
					break
				}
				fmt.Printf(" line %d (score %.0f)", a.line, a.score)
			}
		}
		fmt.Println()
	}

	n, _ := store.Len()
	fmt.Printf("\nsignature store: %d lines, sequential I/O %0.1f MB, %d seeks\n",
		n, float64(store.Stats.SeqReadBytes+store.Stats.SeqWriteBytes)/1e6, store.Stats.Seeks)
	fmt.Println("(fraud was injected on lines 1111, 7777, 15000 starting day 4)")
}
