package dsms

// Deterministic fault injection for the session protocol. The chaos
// wrapper sits between the client's framing layer and the real
// net.Conn, so the retry/resume path is exercised under test instead of
// trusted. All faults are driven by a seeded PRNG over the write path
// (the unreliable uplink of the 3-level architecture); the same seed
// and write sequence reproduces the same fault schedule.

import (
	"math/rand"
	"net"
	"sync"
	"syscall"
	"time"
)

// FaultConfig selects which faults to inject and how often. Rates are
// per-Write probabilities in [0, 1]; checks are applied in the order
// stall, corrupt, partial, drop.
type FaultConfig struct {
	Seed int64
	// DropRate cuts the connection (the write fails, the socket
	// closes, both directions die).
	DropRate float64
	// PartialRate writes a random prefix of the buffer, then cuts the
	// connection — a mid-frame (even mid-tuple) loss.
	PartialRate float64
	// CorruptRate flips one random byte of the written data.
	CorruptRate float64
	// StallRate sleeps Stall before the write (a write stall long
	// enough trips the sender's write deadline).
	StallRate float64
	Stall     time.Duration
}

// FaultStats counts injected faults.
type FaultStats struct {
	Writes   int64
	Drops    int64
	Partials int64
	Corrupts int64
	Stalls   int64
}

// FaultConn wraps a net.Conn, injecting deterministic faults on Write.
// Reads pass through (a cut connection fails both directions).
type FaultConn struct {
	net.Conn
	cfg FaultConfig

	mu      sync.Mutex
	rng     *rand.Rand
	dropped bool
	stats   FaultStats
}

// InjectFaults wraps conn with the given fault schedule.
func InjectFaults(conn net.Conn, cfg FaultConfig) *FaultConn {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &FaultConn{Conn: conn, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Stats returns a snapshot of the injected-fault counters.
func (f *FaultConn) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Write implements net.Conn with fault injection.
func (f *FaultConn) Write(b []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dropped {
		return 0, syscall.EPIPE
	}
	f.stats.Writes++
	if f.cfg.StallRate > 0 && f.rng.Float64() < f.cfg.StallRate {
		f.stats.Stalls++
		time.Sleep(f.cfg.Stall)
	}
	if f.cfg.CorruptRate > 0 && f.rng.Float64() < f.cfg.CorruptRate && len(b) > 0 {
		f.stats.Corrupts++
		corrupted := make([]byte, len(b))
		copy(corrupted, b)
		corrupted[f.rng.Intn(len(corrupted))] ^= 0xA5
		b = corrupted
	}
	if f.cfg.PartialRate > 0 && f.rng.Float64() < f.cfg.PartialRate && len(b) > 1 {
		f.stats.Partials++
		n, _ := f.Conn.Write(b[:1+f.rng.Intn(len(b)-1)])
		f.dropped = true
		f.Conn.Close()
		return n, syscall.ECONNRESET
	}
	if f.cfg.DropRate > 0 && f.rng.Float64() < f.cfg.DropRate {
		f.stats.Drops++
		f.dropped = true
		f.Conn.Close()
		return 0, syscall.ECONNRESET
	}
	return f.Conn.Write(b)
}
