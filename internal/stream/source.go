package stream

import (
	"sort"

	"streamdb/internal/tuple"
)

// Source produces a stream of elements. Next returns the next element and
// true, or a zero element and false when the stream ends. Unbounded
// generators never return false; finite replays do. Sources are the
// pull side of the engine: the execution layer drains them into operator
// queues according to arrival timestamps.
type Source interface {
	Schema() *tuple.Schema
	Next() (Element, bool)
}

// SliceSource replays a fixed slice of elements: the workhorse of tests
// and of trace-driven experiments.
type SliceSource struct {
	schema *tuple.Schema
	elems  []Element
	pos    int
}

// FromElements builds a finite source over the given elements.
func FromElements(s *tuple.Schema, elems ...Element) *SliceSource {
	return &SliceSource{schema: s, elems: elems}
}

// FromTuples builds a finite source over the given tuples.
func FromTuples(s *tuple.Schema, tuples ...*tuple.Tuple) *SliceSource {
	elems := make([]Element, len(tuples))
	for i, t := range tuples {
		elems[i] = Tup(t)
	}
	return &SliceSource{schema: s, elems: elems}
}

// Schema implements Source.
func (s *SliceSource) Schema() *tuple.Schema { return s.schema }

// Next implements Source.
func (s *SliceSource) Next() (Element, bool) {
	if s.pos >= len(s.elems) {
		return Element{}, false
	}
	e := s.elems[s.pos]
	s.pos++
	return e, true
}

// Reset rewinds the source for replay.
func (s *SliceSource) Reset() { s.pos = 0 }

// Len returns the total number of elements.
func (s *SliceSource) Len() int { return len(s.elems) }

// FuncSource adapts a closure to Source, for generators.
type FuncSource struct {
	Sch *tuple.Schema
	Fn  func() (Element, bool)
}

// Schema implements Source.
func (f *FuncSource) Schema() *tuple.Schema { return f.Sch }

// Next implements Source.
func (f *FuncSource) Next() (Element, bool) { return f.Fn() }

// Limit caps a source at n elements.
func Limit(src Source, n int) Source {
	remaining := n
	return &FuncSource{Sch: src.Schema(), Fn: func() (Element, bool) {
		if remaining <= 0 {
			return Element{}, false
		}
		remaining--
		return src.Next()
	}}
}

// Skip discards the first n elements of src: the recovery-side replay
// primitive. A checkpoint records how many elements each source had
// delivered at the barrier; rebuilding the graph over Skip(src, n)
// resumes the stream exactly after the snapshot's cut.
func Skip(src Source, n int64) Source {
	for ; n > 0; n-- {
		if _, ok := src.Next(); !ok {
			break
		}
	}
	return src
}

// Drain pulls at most limit elements from src (all if limit < 0).
func Drain(src Source, limit int) []Element {
	var out []Element
	for limit < 0 || len(out) < limit {
		e, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, e)
	}
	return out
}

// DrainTuples pulls every tuple from a finite source, dropping
// punctuations.
func DrainTuples(src Source) []*tuple.Tuple {
	var out []*tuple.Tuple
	for {
		e, ok := src.Next()
		if !ok {
			return out
		}
		if !e.IsPunct() {
			out = append(out, e.Tuple)
		}
	}
}

// Merge produces the timestamp-ordered union of several finite sources
// (slide 13: "merging data streams"). All sources must share a schema;
// each must itself be timestamp-ordered. Ties break by source index, so
// the merge is deterministic.
func Merge(srcs ...Source) Source {
	type head struct {
		e   Element
		src int
	}
	heads := make([]*head, len(srcs))
	primed := false
	prime := func() {
		for i, s := range srcs {
			if e, ok := s.Next(); ok {
				heads[i] = &head{e: e, src: i}
			}
		}
		primed = true
	}
	var sch *tuple.Schema
	if len(srcs) > 0 {
		sch = srcs[0].Schema()
	}
	return &FuncSource{Sch: sch, Fn: func() (Element, bool) {
		if !primed {
			prime()
		}
		best := -1
		for i, h := range heads {
			if h == nil {
				continue
			}
			if best < 0 || h.e.Ts() < heads[best].e.Ts() {
				best = i
			}
		}
		if best < 0 {
			return Element{}, false
		}
		out := heads[best].e
		if e, ok := srcs[best].Next(); ok {
			heads[best] = &head{e: e, src: best}
		} else {
			heads[best] = nil
		}
		return out, true
	}}
}

// SortByTs orders elements by timestamp in place (stable), used when
// generators emit per-entity bursts that must be interleaved.
func SortByTs(elems []Element) {
	sort.SliceStable(elems, func(i, j int) bool { return elems[i].Ts() < elems[j].Ts() })
}

// Stats accumulates simple observation statistics for a stream; the
// rate-based optimizer seeds its model from these (slide 40: "rates can
// be known and/or estimated").
type Stats struct {
	Count   int64
	FirstTs int64
	LastTs  int64
	Bytes   int64
}

// Observe folds one element into the statistics.
func (s *Stats) Observe(e Element) {
	if e.IsPunct() {
		return
	}
	if s.Count == 0 {
		s.FirstTs = e.Ts()
	}
	s.Count++
	s.LastTs = e.Ts()
	s.Bytes += int64(e.Tuple.MemSize())
}

// Rate returns the observed tuple rate in tuples per second of stream
// time (timestamps are virtual nanoseconds).
func (s *Stats) Rate() float64 {
	if s.Count < 2 || s.LastTs <= s.FirstTs {
		return 0
	}
	return float64(s.Count-1) / (float64(s.LastTs-s.FirstTs) / 1e9)
}

// Tap wraps a source, folding every element into stats as it passes.
func Tap(src Source, stats *Stats) Source {
	return &FuncSource{Sch: src.Schema(), Fn: func() (Element, bool) {
		e, ok := src.Next()
		if ok {
			stats.Observe(e)
		}
		return e, ok
	}}
}

// Resumable marks sources that may yield more elements after Next has
// returned false: push-fed queues backing persistent queries.
type Resumable interface {
	Resumable() bool
}

// Queue is a push-fed source: Feed appends elements, Next pops them.
// An empty queue is not end-of-stream — it reports Resumable, so an
// execution graph will poll it again after the next Feed. This is the
// ingestion point for persistent/continuous queries (slide 19).
type Queue struct {
	schema *tuple.Schema
	elems  []Element
	head   int
}

// NewQueue builds an empty push-fed source.
func NewQueue(s *tuple.Schema) *Queue { return &Queue{schema: s} }

// Feed appends one element.
func (q *Queue) Feed(e Element) {
	// Compact the consumed prefix occasionally to bound memory.
	if q.head > 64 && q.head*2 >= len(q.elems) {
		n := copy(q.elems, q.elems[q.head:])
		q.elems = q.elems[:n]
		q.head = 0
	}
	q.elems = append(q.elems, e)
}

// Schema implements Source.
func (q *Queue) Schema() *tuple.Schema { return q.schema }

// Next implements Source.
func (q *Queue) Next() (Element, bool) {
	if q.head >= len(q.elems) {
		return Element{}, false
	}
	e := q.elems[q.head]
	q.elems[q.head] = Element{}
	q.head++
	return e, true
}

// Resumable implements Resumable.
func (q *Queue) Resumable() bool { return true }

// Pending reports queued, unconsumed elements.
func (q *Queue) Pending() int { return len(q.elems) - q.head }
