package ops

import (
	"fmt"
	"math"
	"sync/atomic"

	"streamdb/internal/expr"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
	"streamdb/internal/window"
)

// JoinMethod selects how one side's window is probed [KNV03] (slide 33):
// a hash index (O(1) probes, extra memory) or indexed nested loops over
// the window buffer (no index memory, O(window) probes).
type JoinMethod uint8

// Join methods. The asymmetric combination — hash on one side, nested
// loops on the other — is the key observation of [KNV03]: "asymmetric
// join processing has advantages if arrival rates differ".
const (
	JoinHash JoinMethod = iota
	JoinNestedLoop
)

// String names the method.
func (m JoinMethod) String() string {
	if m == JoinHash {
		return "hash"
	}
	return "inl"
}

// sweepEvery bounds how long a sorted side defers its physical expiry
// sweep: at most this many watermark advances between sweeps, so hash
// buckets never accumulate more than a batch of expired-but-unswept
// tuples between punctuations.
const sweepEvery = 128

// bucketFreeCap bounds the per-side freelist of emptied index buckets.
const bucketFreeCap = 64

// sideState is one input's window state. Expiry is watermark-batched:
// every opposite-port event advances wm (the [KNV03] invalidation rule —
// any arrival's timestamp is a promise about the opposite window), and
// the physical sweep that pops expired tuples off the FIFO and out of
// the index runs only on punctuations, every sweepEvery advances, before
// a cap check, or when introspection needs exact counts. Expiry
// SEMANTICS are exact in every mode: probes skip candidates at or below
// wm - rng, so whether a tuple can still match depends only on (its
// timestamp, the watermark) — never on where the physical sweep
// happened to stop. That per-tuple rule is what lets key-partitioned
// replicas, each sweeping its own FIFO layout, stay byte-identical to
// the serial run. While inserts arrive in timestamp order (`sorted`),
// the deferred sweep reclaims everything: the expired set is precisely
// the FIFO prefix with Ts <= wm - rng. The first out-of-order insert
// flips the side to unsorted mode, which sweeps eagerly on every
// watermark advance but can only pop the expired prefix — an expired
// tuple parked behind a live front stays resident until the front
// drains, and the probe cutoff is what keeps it invisible meanwhile.
type sideState struct {
	method JoinMethod
	rng    int64 // time-window range; <= 0 means no time expiry
	rows   int   // row-count window; 0 = none
	fifo   *window.Fifo
	// index maps key hash -> tuples in insertion order, maintained only
	// for JoinHash. Emptied bucket slices are recycled via freeBuckets.
	index       map[uint64][]*tuple.Tuple
	freeBuckets [][]*tuple.Tuple
	key         []int
	fastKey     int // column for the tuple.Key1 fast lane; -1 = generic hash
	// maxTuples caps the stored window for memory-limited operation;
	// 0 = unlimited. Overflow evicts the oldest live tuple (a form of
	// load shedding on join state).
	maxTuples int
	wm        int64 // max opposite-port event timestamp seen
	sorted    bool
	lastIns   int64
	pendingWM int // watermark advances since the last sweep (sorted mode)
	expired   int64
	evicted   int64
}

func (s *sideState) hashOf(t *tuple.Tuple) uint64 {
	if s.fastKey >= 0 {
		return t.Key1(s.fastKey)
	}
	return t.Key(s.key)
}

// advanceWM raises the watermark from an opposite-port event.
func (s *sideState) advanceWM(ts int64) {
	if ts <= s.wm {
		return
	}
	s.wm = ts
	if s.rng <= 0 {
		return
	}
	if !s.sorted {
		s.sweep()
		return
	}
	s.pendingWM++
	if s.pendingWM >= sweepEvery {
		s.sweep()
	}
}

// probeCutoff returns the liveness cutoff probe candidates must exceed,
// or MinInt64 when every stored tuple must be probed (no time window,
// or no opposite-port event seen yet).
func (s *sideState) probeCutoff() int64 {
	if s.rng <= 0 || s.wm == math.MinInt64 {
		return math.MinInt64
	}
	return s.wm - s.rng
}

// sweep pops expired tuples off the FIFO front and out of the index
// (slide 32: "invalidate all expired tuples in A's window"), stopping at
// the first live tuple — the same greedy front-pop the serial engine
// performs per arrival, batched.
func (s *sideState) sweep() {
	s.pendingWM = 0
	if s.rng <= 0 || s.wm == math.MinInt64 {
		return
	}
	cutoff := s.wm - s.rng
	for {
		front := s.fifo.Front()
		if front == nil || front.Ts > cutoff {
			return
		}
		s.fifo.PopFront()
		s.dropFromIndex(front)
		s.expired++
	}
}

func (s *sideState) insert(t *tuple.Tuple) {
	if s.sorted && t.Ts < s.lastIns {
		// Out-of-order insert: the deferred-sweep invariant (expired ==
		// FIFO prefix) no longer holds from here on. Catch the physical
		// state up once, then sweep eagerly on every watermark advance.
		s.sorted = false
		s.sweep()
	}
	s.lastIns = t.Ts
	if s.maxTuples > 0 {
		// Expired tuples must not be charged to the cap: sweeping first
		// keeps `evicted` counting only live tuples genuinely shed, and
		// a tuple both expired and index-dropped in one punctuation
		// batch is accounted exactly once (as expired).
		s.sweep()
		if s.fifo.Len() >= s.maxTuples {
			old := s.fifo.PopFront()
			s.dropFromIndex(old)
			s.evicted++
		}
	}
	if s.rows > 0 {
		// Row-count window: the oldest tuple leaves the window by
		// definition — window semantics, not load shedding. Dropping it
		// from the index here fixes the stale-index hazard of keeping
		// ring-buffer eviction and index maintenance separate.
		for s.fifo.Len() >= s.rows {
			old := s.fifo.PopFront()
			s.dropFromIndex(old)
			s.expired++
		}
	}
	s.fifo.Push(t)
	if s.index != nil {
		s.indexInsert(s.hashOf(t), t)
	}
}

// indexInsert appends t to its hash bucket, recycling emptied buckets
// through the freelist. h must equal s.hashOf(t); the columnar path
// passes the batch-hashed value instead of recomputing it per row.
func (s *sideState) indexInsert(h uint64, t *tuple.Tuple) {
	if b, ok := s.index[h]; ok {
		s.index[h] = append(b, t)
	} else if n := len(s.freeBuckets); n > 0 {
		b = s.freeBuckets[n-1]
		s.freeBuckets = s.freeBuckets[:n-1]
		s.index[h] = append(b, t)
	} else {
		s.index[h] = append(make([]*tuple.Tuple, 0, 4), t)
	}
}

// dropFromIndex removes a tuple from its bucket, preserving bucket order
// (removals always target the oldest resident, so insertion order is the
// probe order of the serial engine at any sweep timing). Emptied buckets
// are recycled through the freelist.
func (s *sideState) dropFromIndex(t *tuple.Tuple) {
	if s.index == nil {
		return
	}
	h := s.hashOf(t)
	bucket := s.index[h]
	for i, bt := range bucket {
		if bt == t {
			copy(bucket[i:], bucket[i+1:])
			bucket[len(bucket)-1] = nil
			bucket = bucket[:len(bucket)-1]
			break
		}
	}
	if len(bucket) == 0 {
		delete(s.index, h)
		if cap(bucket) > 0 && len(s.freeBuckets) < bucketFreeCap {
			s.freeBuckets = append(s.freeBuckets, bucket)
		}
		return
	}
	s.index[h] = bucket
}

func (s *sideState) memSize() int {
	n := s.fifo.MemSize()
	if s.index != nil {
		n += 48 * len(s.index) // bucket overhead
	}
	return n
}

// WindowJoin is the binary sliding-window join of [KNV03] (slides
// 30-33). A new tuple on one input probes the opposite window, is
// inserted into its own window, and expired tuples are invalidated.
// Each side's probe method is chosen independently, enabling the
// asymmetric configurations of slide 33.
type WindowJoin struct {
	name     string
	out      *tuple.Schema
	sides    [2]*sideState
	residual expr.Expr // evaluated over concatenated (left, right) tuples
	probes   int64     // tuple comparisons performed (CPU cost proxy)
	emitted  int64
	received [2]int64
	leftSch  *tuple.Schema
	rightSch *tuple.Schema
	cfgs     [2]JoinConfig
	// parent is set on partition replicas: counters fold into it at
	// Flush so the original's introspection covers the whole run.
	parent *WindowJoin
	folded bool

	// Columnar state (joincol.go). colPlan gates the batch-native path
	// once per instance; colFallbacks counts batches/spans rerouted
	// through the row path, folded into the parent like the other
	// counters so the engine can surface fallback observability.
	colPlan      int8
	colPool      *stream.ColPool
	colKern      expr.ColumnKernel
	col          colJoinScratch
	colFallbacks int64
	// Cold-probe heuristic bookkeeping (joincol.go colDecide): rows seen
	// and emitted-counter mark since the last fast-vs-cold decision.
	colRowsSince int64
	colEmitMark  int64
}

// JoinConfig configures one side of a WindowJoin.
type JoinConfig struct {
	Window window.Spec
	Method JoinMethod
	// Key lists this side's equijoin column indexes. Must have the
	// same length on both sides; may be empty for a pure
	// nested-loops theta join (both methods must then be NestedLoop).
	Key []int
	// MaxTuples caps the stored window (0 = unlimited).
	MaxTuples int
}

// NewWindowJoin builds a window join. residual may be nil; it is
// evaluated against the concatenation of (left, right) tuples.
func NewWindowJoin(name string, left, right *tuple.Schema, lcfg, rcfg JoinConfig, residual expr.Expr) (*WindowJoin, error) {
	if len(lcfg.Key) != len(rcfg.Key) {
		return nil, fmt.Errorf("ops: join key arity mismatch: %d vs %d", len(lcfg.Key), len(rcfg.Key))
	}
	if len(lcfg.Key) == 0 && (lcfg.Method == JoinHash || rcfg.Method == JoinHash) {
		return nil, fmt.Errorf("ops: hash join requires equijoin keys")
	}
	for i := range lcfg.Key {
		lk := left.Fields[lcfg.Key[i]].Kind
		rk := right.Fields[rcfg.Key[i]].Kind
		if lk.Numeric() != rk.Numeric() || (!lk.Numeric() && lk != rk) {
			return nil, fmt.Errorf("ops: join key %d type mismatch: %s vs %s", i, lk, rk)
		}
	}
	if residual != nil && residual.Kind() != tuple.KindBool {
		return nil, fmt.Errorf("ops: join residual must be boolean")
	}
	// Fast key lane: a single Int/Uint/Time key column on BOTH sides may
	// hash by raw payload. Gating on both schemas at once is what keeps
	// the two sides' hash spaces aligned — per-side gating could pair a
	// payload hash with a generic hash and miss every match.
	fast := -1
	if len(lcfg.Key) == 1 &&
		tuple.FastKeyKind(left.Fields[lcfg.Key[0]].Kind) &&
		tuple.FastKeyKind(right.Fields[rcfg.Key[0]].Kind) {
		fast = 0
	}
	mk := func(cfg JoinConfig) *sideState {
		st := &sideState{
			method:    cfg.Method,
			fifo:      window.NewFifo(),
			key:       cfg.Key,
			fastKey:   -1,
			maxTuples: cfg.MaxTuples,
			wm:        math.MinInt64,
			sorted:    true,
			lastIns:   math.MinInt64,
		}
		if fast == 0 {
			st.fastKey = cfg.Key[0]
		}
		switch cfg.Window.Kind {
		case window.KindTime:
			if !cfg.Window.Landmark {
				st.rng = cfg.Window.Range
			}
		case window.KindRows:
			st.rows = int(cfg.Window.Range)
		}
		if cfg.Method == JoinHash {
			st.index = make(map[uint64][]*tuple.Tuple)
		}
		return st
	}
	j := &WindowJoin{
		name:     name,
		out:      left.Concat(right),
		leftSch:  left,
		rightSch: right,
		residual: residual,
		cfgs:     [2]JoinConfig{lcfg, rcfg},
	}
	j.sides[0] = mk(lcfg)
	j.sides[1] = mk(rcfg)
	return j, nil
}

// NewSymmetricHashJoin builds the classic symmetric hash join [WA91]
// (slide 31): hash on both sides, unbounded windows.
func NewSymmetricHashJoin(name string, left, right *tuple.Schema, leftKey, rightKey []int) (*WindowJoin, error) {
	return NewWindowJoin(name, left, right,
		JoinConfig{Window: window.Spec{}, Method: JoinHash, Key: leftKey},
		JoinConfig{Window: window.Spec{}, Method: JoinHash, Key: rightKey},
		nil)
}

// Name implements Operator.
func (j *WindowJoin) Name() string { return j.name }

// OutSchema implements Operator.
func (j *WindowJoin) OutSchema() *tuple.Schema { return j.out }

// NumInputs implements Operator.
func (j *WindowJoin) NumInputs() int { return 2 }

// Push implements Operator. Port 0 is the left input.
func (j *WindowJoin) Push(port int, e stream.Element, emit Emit) {
	if port < 0 || port > 1 {
		return
	}
	me, opp := j.sides[port], j.sides[1-port]
	if e.IsPunct() {
		// A progress promise on this input lets the opposite window
		// discard tuples that can no longer join with future arrivals:
		// punctuations drive the physical reclaim.
		opp.advanceWM(e.Punct.Ts)
		opp.sweep()
		return
	}
	t := e.Tuple
	j.received[port]++

	// 1. This arrival's timestamp invalidates the opposite window
	//    (watermark advance; the sweep itself may be deferred).
	opp.advanceWM(t.Ts)

	// 2. Probe the opposite window.
	switch opp.method {
	case JoinHash:
		if bucket := opp.index[me.hashOf(t)]; bucket != nil {
			cutoff := opp.probeCutoff()
			for _, cand := range bucket {
				if cand.Ts <= cutoff {
					continue // expired; physical sweep deferred
				}
				j.probes++
				if cand.KeyEqual(t, opp.key, me.key) {
					j.tryEmit(port, t, cand, emit)
				}
			}
		}
	case JoinNestedLoop:
		// The O(window) scan dominates; sweep first so it mostly walks
		// live tuples. The cutoff still applies: in unsorted mode the
		// sweep can strand expired tuples behind a live front, and
		// counting or matching those would make results depend on the
		// physical layout (which differs per partition replica).
		opp.sweep()
		cutoff := opp.probeCutoff()
		opp.fifo.Each(func(cand *tuple.Tuple) bool {
			if cand.Ts <= cutoff {
				return true
			}
			j.probes++
			if len(me.key) == 0 || cand.KeyEqual(t, opp.key, me.key) {
				j.tryEmit(port, t, cand, emit)
			}
			return true
		})
	}

	// 3. Insert into own window.
	me.insert(t)
}

// tryEmit applies the residual predicate and emits the concatenated
// output in (left, right) field order regardless of arrival port.
func (j *WindowJoin) tryEmit(port int, arrived, matched *tuple.Tuple, emit Emit) {
	var out *tuple.Tuple
	if port == 0 {
		out = arrived.Concat(matched)
	} else {
		out = matched.Concat(arrived)
	}
	if j.residual != nil && !expr.EvalBool(j.residual, out) {
		return
	}
	j.emitted++
	emit(stream.Tup(out))
}

// Flush implements Operator. A partition replica folds its counters
// into the parent here — Flush is each replica's single end-of-stream
// call, and the adds are atomic because sibling replicas flush
// concurrently.
func (j *WindowJoin) Flush(Emit) {
	p := j.parent
	if p == nil || j.folded {
		return
	}
	j.folded = true
	atomic.AddInt64(&p.probes, j.probes)
	atomic.AddInt64(&p.emitted, j.emitted)
	atomic.AddInt64(&p.colFallbacks, j.colFallbacks)
	for s := 0; s < 2; s++ {
		atomic.AddInt64(&p.received[s], j.received[s])
		atomic.AddInt64(&p.sides[s].expired, j.sides[s].expired)
		atomic.AddInt64(&p.sides[s].evicted, j.sides[s].evicted)
	}
}

// MemSize implements Operator.
func (j *WindowJoin) MemSize() int {
	return 128 + j.sides[0].memSize() + j.sides[1].memSize()
}

// CanPartition implements KeyPartitionable: key-partitioning is exact
// for equijoins whose per-side state is per-key — a global memory cap or
// a row-count window is shared state across keys and must decline.
func (j *WindowJoin) CanPartition() bool {
	return len(j.sides[0].key) > 0 &&
		j.sides[0].maxTuples == 0 && j.sides[1].maxTuples == 0 &&
		j.sides[0].rows == 0 && j.sides[1].rows == 0
}

// PartitionHash implements KeyPartitionable, reusing the side's own key
// hash (fast lane included) so router and index agree.
func (j *WindowJoin) PartitionHash(port int, t *tuple.Tuple) uint64 {
	return j.sides[port].hashOf(t)
}

// ClonePartition implements KeyPartitionable.
func (j *WindowJoin) ClonePartition() Operator {
	c, err := NewWindowJoin(j.name, j.leftSch, j.rightSch, j.cfgs[0], j.cfgs[1], j.residual)
	if err != nil {
		panic(err) // unreachable: the parent validated this config
	}
	c.parent = j
	return c
}

// Probes returns the number of tuple comparisons performed: the CPU-cost
// proxy experiment E1 sweeps. After a partitioned run this is the fold
// of every replica's count.
func (j *WindowJoin) Probes() int64 { return j.probes }

// Emitted returns the number of join results produced.
func (j *WindowJoin) Emitted() int64 { return j.emitted }

// Evicted returns tuples dropped by the memory cap on each side —
// genuine load shedding, distinct from window expiry (Expired).
func (j *WindowJoin) Evicted() (left, right int64) {
	return j.sides[0].evicted, j.sides[1].evicted
}

// Expired returns tuples that left each side's window by expiry (time
// passing or row-count displacement), as opposed to cap eviction.
func (j *WindowJoin) Expired() (left, right int64) {
	return j.sides[0].expired, j.sides[1].expired
}

// WindowSizes reports the live tuple count per side, forcing any
// deferred expiry sweep first so the counts are exact. Unlike the
// folded counters, sizes are per-instance: a partition replica's sizes
// describe only its key slice.
func (j *WindowJoin) WindowSizes() (left, right int) {
	j.sides[0].sweep()
	j.sides[1].sweep()
	return j.sides[0].fifo.Len(), j.sides[1].fifo.Len()
}

// Selectivity implements Costs (observed).
func (j *WindowJoin) Selectivity() float64 {
	in := j.received[0] + j.received[1]
	if in == 0 {
		return 1
	}
	return float64(j.emitted) / float64(in)
}

// UnitCost implements Costs: average probes per input tuple.
func (j *WindowJoin) UnitCost() float64 {
	in := j.received[0] + j.received[1]
	if in == 0 {
		return 1
	}
	c := float64(j.probes) / float64(in)
	if c < 1 {
		return 1
	}
	return c
}
