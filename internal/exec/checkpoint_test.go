package exec

// Checkpoint/recovery tests for both engines. The contract under test:
// a checkpoint taken at an aligned cut, played back into a freshly
// built graph of the same shape, resumes the run so that (prefix of
// the original run up to the checkpoint's OutSeq) + (restored run's
// output) is byte-identical to an uninterrupted run — across the plain
// node lane, the replicated lane, the partial-aggregation lane, and
// the key-partitioned join lane.

import (
	"fmt"
	"testing"

	"streamdb/internal/ckpt"
	"streamdb/internal/expr"
	"streamdb/internal/ops"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
	"streamdb/internal/window"
)

func ckptStore(t *testing.T) *ckpt.Store {
	t.Helper()
	s, err := ckpt.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// ckptPaneGraph builds source -> Select (Replicable) -> GroupBy
// (PartialAggregable) -> sink, exercising the stateless-replica lane
// and the partial-aggregation lane in one chain when Parallelism > 1.
func ckptPaneGraph(t *testing.T, elems []stream.Element, sink func(stream.Element)) *Graph {
	t.Helper()
	g := NewGraph(sink)
	src := g.AddSource(stream.FromElements(paneSch, elems...))
	pred, err := expr.NewBin(expr.OpGe,
		expr.MustColumn(paneSch, "v"), expr.Constant(tuple.Float(5)))
	if err != nil {
		t.Fatal(err)
	}
	sel, err := ops.NewSelect("keep", paneSch, pred, 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	ns := g.AddOp(sel)
	gb := paneGroupBy(t, window.Time(80, 20), []string{"sum", "count"}, true)
	ng := g.AddOp(gb)
	if err := g.ConnectSource(src, ns, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(ns, ng, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.ConnectOut(ng); err != nil {
		t.Fatal(err)
	}
	return g
}

func fmtElem(e stream.Element) string {
	if e.IsPunct() {
		return fmt.Sprintf("punct@%d", e.Punct.Ts)
	}
	return fmt.Sprintf("%d|%s", e.Tuple.Ts, e.Tuple.String())
}

// TestSerialCheckpointRestore drives the quiescent-graph path: pump
// half the input, commit a checkpoint, abandon the graph, rebuild,
// restore, and run to completion. The stitched output must be
// byte-identical to an uninterrupted run.
func TestSerialCheckpointRestore(t *testing.T) {
	elems := paneStream(3000, false)

	var base []string
	gb := ckptPaneGraph(t, elems, func(e stream.Element) { base = append(base, fmtElem(e)) })
	gb.Run(-1)
	if len(base) == 0 {
		t.Fatal("baseline produced nothing")
	}

	store := ckptStore(t)
	var first []string
	g1 := ckptPaneGraph(t, elems, func(e stream.Element) { first = append(first, fmtElem(e)) })
	g1.Pump(1700)
	if err := g1.Checkpoint(store, 1, int64(len(first)), map[string]uint64{"extra": 42}); err != nil {
		t.Fatal(err)
	}
	// g1 is abandoned here: the crash. Nothing after the Pump was flushed.

	c, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if c == nil || c.Epoch != 1 {
		t.Fatalf("Latest = %+v, want epoch 1", c)
	}
	if c.Meta["extra"] != 42 {
		t.Fatalf("extra meta = %d, want 42", c.Meta["extra"])
	}
	if c.OutSeq != int64(len(first)) {
		t.Fatalf("OutSeq = %d, want %d", c.OutSeq, len(first))
	}

	var second []string
	g2 := ckptPaneGraph(t, elems, func(e stream.Element) { second = append(second, fmtElem(e)) })
	if err := g2.RestoreFrom(c); err != nil {
		t.Fatal(err)
	}
	g2.Run(-1)

	got := append(append([]string{}, first...), second...)
	sameSeq(t, "serial stitched", got, base)
}

// TestSerialRestoreRejectsConcurrent: a checkpoint stamped by the
// concurrent engine must not restore into the serial engine.
func TestSerialRestoreRejectsConcurrent(t *testing.T) {
	elems := paneStream(200, false)
	g := ckptPaneGraph(t, elems, func(stream.Element) {})
	c := &ckpt.Checkpoint{Epoch: 1, Meta: map[string]uint64{"par": 2}}
	if err := g.RestoreFrom(c); err == nil {
		t.Fatal("RestoreFrom accepted a concurrent-engine checkpoint")
	}
}

// runWithCkpt runs a fresh pane graph with checkpointing enabled,
// returning the delivered output and the number of committed epochs.
func runWithCkpt(t *testing.T, elems []stream.Element, maxElements int64, opts RunOptions,
	store *ckpt.Store, every int64, restore *ckpt.Checkpoint) ([]string, int) {
	t.Helper()
	var got []string
	commits := 0
	opts.Checkpoint = &CheckpointConfig{
		Store: store,
		Every: every,
		OnCommit: func(epoch int64, err error) {
			if err == nil {
				commits++
			}
		},
	}
	opts.Restore = restore
	g := ckptPaneGraph(t, elems, func(e stream.Element) { got = append(got, fmtElem(e)) })
	g.RunWith(maxElements, opts)
	if err := g.Err(); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	return got, commits
}

// TestConcurrentCheckpointTransparent: enabling checkpoints must not
// change a single output byte, in any lane configuration.
func TestConcurrentCheckpointTransparent(t *testing.T) {
	elems := paneStream(3000, false)
	var base []string
	g := ckptPaneGraph(t, elems, func(e stream.Element) { base = append(base, fmtElem(e)) })
	g.Run(-1)

	for _, tc := range []struct {
		label string
		opts  RunOptions
	}{
		{"plain", RunOptions{BatchSize: 7}},
		{"batched", RunOptions{BatchSize: 64}},
		{"parallel", RunOptions{BatchSize: 32, Parallelism: 3, ForceParallelism: true}},
	} {
		got, commits := runWithCkpt(t, elems, -1, tc.opts, ckptStore(t), 271, nil)
		sameSeq(t, tc.label, got, base)
		if commits == 0 {
			t.Errorf("%s: no epochs committed", tc.label)
		}
	}
}

// TestConcurrentCheckpointResume is the crash drill for the concurrent
// engine: run with a low element cap (the "crash"), restore the last
// committed checkpoint into a fresh graph over the full input, and
// require prefix + resumed output == uninterrupted baseline.
func TestConcurrentCheckpointResume(t *testing.T) {
	elems := paneStream(3000, false)
	var base []string
	g := ckptPaneGraph(t, elems, func(e stream.Element) { base = append(base, fmtElem(e)) })
	g.Run(-1)
	if len(base) == 0 {
		t.Fatal("baseline produced nothing")
	}

	for _, tc := range []struct {
		label string
		opts  RunOptions
	}{
		{"plain", RunOptions{BatchSize: 7}},
		{"parallel", RunOptions{BatchSize: 32, Parallelism: 3, ForceParallelism: true}},
	} {
		store := ckptStore(t)
		first, commits := runWithCkpt(t, elems, 1100, tc.opts, store, 149, nil)
		if commits == 0 {
			t.Fatalf("%s: crash run committed no epochs", tc.label)
		}
		c, err := store.Latest()
		if err != nil {
			t.Fatal(err)
		}
		if c == nil {
			t.Fatalf("%s: no checkpoint recovered", tc.label)
		}
		if int(c.OutSeq) > len(first) {
			t.Fatalf("%s: OutSeq %d beyond delivered %d", tc.label, c.OutSeq, len(first))
		}
		second, _ := runWithCkpt(t, elems, -1, tc.opts, store, 149, c)
		got := append(append([]string{}, first[:c.OutSeq]...), second...)
		sameSeq(t, tc.label+" stitched", got, base)
	}
}

// TestConcurrentRestoreRejectsMismatch: a checkpoint taken at one
// parallelism must not restore into a run with another — the section
// layout differs.
func TestConcurrentRestoreRejectsMismatch(t *testing.T) {
	elems := paneStream(2000, false)
	store := ckptStore(t)
	opts := RunOptions{BatchSize: 32, Parallelism: 3, ForceParallelism: true}
	_, commits := runWithCkpt(t, elems, 1000, opts, store, 149, nil)
	if commits == 0 {
		t.Fatal("no epochs committed")
	}
	c, err := store.Latest()
	if err != nil || c == nil {
		t.Fatalf("Latest: %v, %v", c, err)
	}
	g := ckptPaneGraph(t, elems, func(stream.Element) {})
	g.RunWith(-1, RunOptions{BatchSize: 32, Parallelism: 2, ForceParallelism: true, Restore: c})
	failed := g.Failures()
	if len(failed) != 1 || failed[0].Op != "checkpoint-restore" {
		t.Fatalf("failures = %+v, want one checkpoint-restore rejection", failed)
	}
}

// TestPartitionedJoinCheckpointResume runs the crash drill through the
// key-partitioned join lane: two sources, hash-split replicas, the
// splitter's port-merge queues in the cut.
func TestPartitionedJoinCheckpointResume(t *testing.T) {
	left := pjStream(2400, 0, 6, 11)
	right := pjStream(2400, 1, 6, 22)

	runJoin := func(maxElements int64, opts RunOptions, store *ckpt.Store, restore *ckpt.Checkpoint) ([]string, int) {
		var got []string
		commits := 0
		if store != nil {
			opts.Checkpoint = &CheckpointConfig{
				Store: store,
				Every: 307,
				OnCommit: func(epoch int64, err error) {
					if err == nil {
						commits++
					}
				},
			}
		}
		opts.Restore = restore
		j := pjJoin(t, ops.JoinHash, ops.JoinHash, false)
		g := NewGraph(func(e stream.Element) { got = append(got, fmtElem(e)) })
		sl := g.AddSource(stream.FromElements(pjLeft, left...))
		sr := g.AddSource(stream.FromElements(pjRight, right...))
		n := g.AddOp(j)
		if err := g.ConnectSource(sl, n, 0); err != nil {
			t.Fatal(err)
		}
		if err := g.ConnectSource(sr, n, 1); err != nil {
			t.Fatal(err)
		}
		if err := g.ConnectOut(n); err != nil {
			t.Fatal(err)
		}
		g.RunWith(maxElements, opts)
		if err := g.Err(); err != nil {
			t.Fatalf("join run failed: %v", err)
		}
		return got, commits
	}

	opts := RunOptions{BatchSize: 16, Parallelism: 2, ForceParallelism: true, PartitionJoins: true}
	base, _ := runJoin(-1, opts, nil, nil)
	if len(base) == 0 {
		t.Fatal("baseline join produced nothing")
	}

	store := ckptStore(t)
	first, commits := runJoin(900, opts, store, nil)
	if commits == 0 {
		t.Fatal("crash run committed no epochs")
	}
	c, err := store.Latest()
	if err != nil || c == nil {
		t.Fatalf("Latest: %v, %v", c, err)
	}
	if int(c.OutSeq) > len(first) {
		t.Fatalf("OutSeq %d beyond delivered %d", c.OutSeq, len(first))
	}
	second, _ := runJoin(-1, opts, store, c)
	got := append(append([]string{}, first[:c.OutSeq]...), second...)
	sameSeq(t, "partitioned join stitched", got, base)
}
