package experiments

import (
	"fmt"
	"math/rand"

	"streamdb/internal/netmon"
	"streamdb/internal/ops"
	"streamdb/internal/query"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
	"streamdb/internal/window"
)

func joinSchemas() (*tuple.Schema, *tuple.Schema) {
	a := tuple.NewSchema("A",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "k", Kind: tuple.KindInt},
	)
	b := tuple.NewSchema("B",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "k", Kind: tuple.KindInt},
	)
	return a, b
}

// genJoinInput builds two interleaved key streams with a 10:1 rate
// asymmetry (slide 33: "asymmetric join processing has advantages if
// arrival rates differ").
func genJoinInput(seed int64, n int, keys int64) []struct {
	port int
	t    *tuple.Tuple
} {
	rng := rand.New(rand.NewSource(seed))
	var out []struct {
		port int
		t    *tuple.Tuple
	}
	ts := int64(0)
	for i := 0; i < n; i++ {
		ts += int64(rng.Intn(1000)) + 1
		port := 0
		if rng.Intn(11) == 0 { // right stream is 10x slower
			port = 1
		}
		k := rng.Int63n(keys)
		out = append(out, struct {
			port int
			t    *tuple.Tuple
		}{port, tuple.New(ts, tuple.Time(ts), tuple.Int(k))})
	}
	return out
}

// E1WindowJoinRegimes reproduces slide 33: hash joins win when CPU is
// the constraint, indexed nested loops win when memory is the
// constraint (the index overhead buys window capacity instead).
func E1WindowJoinRegimes(scale Scale) *Table {
	t := &Table{
		ID:     "E1",
		Title:  "window join method vs resource regime (slide 33)",
		Header: []string{"regime", "method", "output", "probes", "memoryB"},
	}
	a, b := joinSchemas()
	input := genJoinInput(101, scale.N(60000), 200)
	win := window.Tumbling(1 << 40) // effectively rate-bound by maxTuples
	const tupleBytes = 64
	const hashOverhead = 48

	run := func(method ops.JoinMethod, maxTuples int, probeBudget int64) (int64, int64, int) {
		j, err := ops.NewWindowJoin("j", a, b,
			ops.JoinConfig{Window: win, Method: method, Key: []int{1}, MaxTuples: maxTuples},
			ops.JoinConfig{Window: win, Method: method, Key: []int{1}, MaxTuples: maxTuples},
			nil)
		if err != nil {
			panic(err)
		}
		emit := func(stream.Element) {}
		for _, in := range input {
			if probeBudget > 0 && j.Probes() >= probeBudget {
				break
			}
			j.Push(in.port, stream.Tup(in.t), emit)
		}
		return j.Emitted(), j.Probes(), j.MemSize()
	}

	// CPU-limited: fixed probe budget, ample memory. Hash spends probes
	// only on matching candidates; INL burns them scanning.
	budget := int64(scale.N(200000))
	for _, m := range []ops.JoinMethod{ops.JoinHash, ops.JoinNestedLoop} {
		out, probes, mem := run(m, 0, budget)
		t.AddRow("CPU-limited", m.String(), out, probes, mem)
	}
	// Memory-limited: fixed byte budget; the hash index overhead costs
	// window capacity.
	memBudget := 4000 * tupleBytes
	hashCap := memBudget / (tupleBytes + hashOverhead)
	inlCap := memBudget / tupleBytes
	for _, cfg := range []struct {
		m   ops.JoinMethod
		cap int
	}{{ops.JoinHash, hashCap}, {ops.JoinNestedLoop, inlCap}} {
		out, probes, mem := run(cfg.m, cfg.cap, 0)
		t.AddRow("memory-limited", cfg.m.String(), out, probes, mem)
	}
	t.Notes = append(t.Notes,
		"expected shape: hash wins the CPU-limited regime, INL wins the memory-limited regime")
	return t
}

// E7RTTMonitoring reproduces the web-client latency monitor (slides
// 11, 13): the syn/syn-ack window join, validated against the
// generator's ground-truth RTTs, swept over window sizes.
func E7RTTMonitoring(scale Scale) *Table {
	t := &Table{
		ID:     "E7",
		Title:  "TCP RTT via syn/syn-ack windowed join (slides 11, 13)",
		Header: []string{"window(ms)", "handshakes", "matched", "recall", "meanRTT(ms)", "trueMean(ms)"},
	}
	n := scale.N(20000)
	for _, winMs := range []int64{100, 300, 30000} {
		ht := netmon.NewHandshakeTrace(netmon.HandshakeConfig{
			Seed: 7, Rate: 2000, RTTMu: -2.5, RTTSigma: 0.8, LossProb: 0.05, Servers: 40}, n)
		cat := query.NewCatalog()
		cat.Register("S", ht.Syn.Schema())
		cat.Register("A", ht.Ack.Schema())
		sql := fmt.Sprintf(`select S.tstmp, A.tstmp - S.tstmp as rtt
			from S [range %d ms], A [range %d ms]
			where S.srcIP = A.destIP and S.destIP = A.srcIP
			  and S.srcPort = A.destPort and S.destPort = A.srcPort`, winMs, winMs)
		rows, _, err := query.Run(sql, cat,
			map[string]stream.Source{"S": ht.Syn, "A": ht.Ack}, -1)
		if err != nil {
			panic(err)
		}
		var sum float64
		for _, r := range rows {
			rtt, _ := r.Vals[1].AsInt()
			sum += float64(rtt)
		}
		var truthSum float64
		for _, r := range ht.TrueRTTs {
			truthSum += float64(r)
		}
		mean := 0.0
		if len(rows) > 0 {
			mean = sum / float64(len(rows)) / 1e6
		}
		trueMean := 0.0
		if len(ht.TrueRTTs) > 0 {
			trueMean = truthSum / float64(len(ht.TrueRTTs)) / 1e6
		}
		recall := float64(len(rows)) / float64(len(ht.TrueRTTs))
		t.AddRow(winMs, n, len(rows), recall, mean, trueMean)
	}
	t.Notes = append(t.Notes,
		"expected shape: recall rises toward 1 as the window covers the RTT distribution's tail")
	return t
}

// E11XJoinSpill reproduces the XJoin behaviour of slide 31: the join
// survives memory overflow by spilling to disk, producing the exact
// result at every memory budget.
func E11XJoinSpill(scale Scale, dir string) *Table {
	t := &Table{
		ID:     "E11",
		Title:  "XJoin memory-overflow processing (slide 31)",
		Header: []string{"budget(tuples)", "output", "exact", "spills", "spilledTuples", "diskKB"},
	}
	a, b := joinSchemas()
	n := scale.N(20000)
	rng := rand.New(rand.NewSource(11))
	var lKeys, rKeys []int64
	for i := 0; i < n/2; i++ {
		lKeys = append(lKeys, rng.Int63n(500))
		rKeys = append(rKeys, rng.Int63n(500))
	}
	counts := map[int64]int64{}
	for _, k := range lKeys {
		counts[k]++
	}
	var exact int64
	for _, k := range rKeys {
		exact += counts[k]
	}

	for _, budget := range []int{256, 1024, 8192, 1 << 20} {
		x, err := ops.NewXJoin("x", a, b, []int{1}, []int{1}, 16, budget, nil, dir)
		if err != nil {
			panic(err)
		}
		var out int64
		emit := func(stream.Element) { out++ }
		for i := 0; i < len(lKeys) || i < len(rKeys); i++ {
			if i < len(lKeys) {
				x.Push(0, stream.Tup(tuple.New(int64(2*i), tuple.Time(int64(2*i)), tuple.Int(lKeys[i]))), emit)
			}
			if i < len(rKeys) {
				x.Push(1, stream.Tup(tuple.New(int64(2*i+1), tuple.Time(int64(2*i+1)), tuple.Int(rKeys[i]))), emit)
			}
		}
		x.Flush(emit)
		_, spills, spilled, diskBytes := x.Stats()
		t.AddRow(budget, out, out == exact, spills, spilled, diskBytes/1024)
	}
	t.Notes = append(t.Notes,
		"expected shape: identical (exact) output at every budget; disk traffic falls as memory grows")
	return t
}
