package experiments

import (
	"fmt"
	"time"

	"streamdb/internal/agg"
	"streamdb/internal/exec"
	"streamdb/internal/expr"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
	"streamdb/internal/window"
)

// E19PaneAggregation measures pane-based sliding-window aggregation
// against the legacy per-window path on a heavily overlapping window
// (range = 64 x slide), and checks that every configuration — the pane
// path under the deterministic engine, under batched execution, and as
// partial replicas feeding a combiner — produces output byte-identical
// to the legacy run. The expected shape: per-tuple work drops from
// O(range/slide) state updates to one pane update plus an amortized
// merge at window close, so pane throughput should sit well above
// legacy while results stay exact.
func E19PaneAggregation(scale Scale) *Table {
	t := &Table{
		ID:     "E19",
		Title:  "pane-based sliding aggregation: shared sub-aggregates vs per-window state",
		Header: []string{"path", "batch", "replicas", "elems", "elems/s", "speedup", "exact"},
	}

	sch := tuple.NewSchema("E19",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "g", Kind: tuple.KindInt},
		tuple.Field{Name: "v", Kind: tuple.KindFloat},
	)
	// 16 tuples per time tick; dyadic values keep float partial sums
	// exact under any association, so byte equality is meaningful.
	n := scale.N(100000)
	elems := make([]stream.Element, n)
	for i := range elems {
		ts := int64(i) / 16
		elems[i] = stream.Tup(tuple.New(ts, tuple.Time(ts),
			tuple.Int(int64(i%8)), tuple.Float(float64(i%64)/4)))
	}

	mkAgg := func(panes bool) *agg.GroupBy {
		var aggs []agg.Spec
		for _, name := range []string{"sum", "count", "avg"} {
			f, err := agg.Lookup(name, false)
			if err != nil {
				panic(err)
			}
			s := agg.Spec{Fn: f, Name: name}
			if name != "count" {
				s.Arg = expr.MustColumn(sch, "v")
			}
			aggs = append(aggs, s)
		}
		gb, err := agg.NewGroupBy("q", sch,
			[]expr.Expr{expr.MustColumn(sch, "g")}, []string{"g"},
			aggs, window.Time(640, 10), nil)
		if err != nil {
			panic(err)
		}
		if !panes {
			gb.DisablePanes()
		}
		return gb
	}

	run := func(panes bool, opts *exec.RunOptions) ([]byte, float64) {
		var out []byte
		g := exec.NewGraph(func(e stream.Element) {
			if !e.IsPunct() {
				out = tuple.AppendEncode(out, e.Tuple)
			}
		})
		src := g.AddSource(stream.FromElements(sch, elems...))
		id := g.AddOp(mkAgg(panes))
		if err := g.ConnectSource(src, id, 0); err != nil {
			panic(err)
		}
		if err := g.ConnectOut(id); err != nil {
			panic(err)
		}
		start := time.Now()
		if opts == nil {
			g.Run(-1)
		} else {
			g.RunWith(-1, *opts)
		}
		return out, float64(n) / time.Since(start).Seconds()
	}

	// Warmup pass supplies the reference bytes; speedups are reported
	// against the measured legacy row so the baseline isn't a cold run.
	baseline, _ := run(false, nil)
	var baseRate float64
	for _, cfg := range []struct {
		label           string
		panes           bool
		batch, parallel int
	}{
		{"legacy", false, 0, 0},
		{"legacy", false, 64, 0},
		{"panes", true, 0, 0},
		{"panes", true, 64, 0},
		{"panes+partial", true, 64, 3},
	} {
		var out []byte
		var rate float64
		if cfg.batch == 0 {
			out, rate = run(cfg.panes, nil)
		} else {
			out, rate = run(cfg.panes, &exec.RunOptions{
				BatchSize: cfg.batch, Parallelism: cfg.parallel,
				ForceParallelism: cfg.parallel > 1,
			})
		}
		if baseRate == 0 {
			baseRate = rate
		}
		exact := string(out) == string(baseline)
		t.AddRow(cfg.label, cfg.batch, cfg.parallel, n,
			fmt.Sprintf("%.3g", rate), fmt.Sprintf("%.2fx", rate/baseRate), exact)
	}
	t.Notes = append(t.Notes,
		"window Time(640, 10): every tuple belongs to 64 overlapping instances; legacy folds it into all 64, panes into exactly one slide-aligned pane",
		"exact = output byte-identical to the legacy deterministic run, including the partial-replica configuration (per-replica partials merged by a combiner)",
		"replicated rows on a single-core host price the split/combine machinery; parallel speedup requires multiple cores",
		"holistic aggregates (median, ...) route to the legacy path automatically: their partials are unbounded, the Gigascope low-level/high-level split's exclusion (slides 34-37)")
	return t
}
