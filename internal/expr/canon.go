package expr

import "sort"

// Canonical normalization of predicates, used wherever semantically
// equal expressions must share one physical evaluation: the multi-query
// sharing layer keys registered predicates on the canonical rendering,
// so `a AND b` / `b AND a` and `x > 5` / `5 < x` land on the same
// compiled kernel instead of defeating the dedupe.
//
// The rewrites preserve SQL three-valued semantics: comparisons are
// mirrored (flipCmp), and AND/OR operand reordering cannot change the
// result because both are commutative and associative under NULL
// propagation and the operands are pure.

// Canonical returns an equivalent expression in canonical form:
//
//   - comparisons with the literal on the left are mirrored so the
//     non-literal operand comes first (`5 < x` becomes `x > 5`);
//   - comparisons between two non-literals are mirrored, when needed,
//     so the lexically smaller rendering comes first (`b = a` becomes
//     `a = b`);
//   - AND and OR trees are flattened, their operands canonicalized,
//     deduplicated, and re-associated left-deep in lexical order.
//
// Canonical never mutates its argument; untouched subtrees are shared.
func Canonical(e Expr) Expr {
	switch x := e.(type) {
	case *Bin:
		switch {
		case x.Op == OpAnd || x.Op == OpOr:
			parts := flatten(x.Op, e, nil)
			for i, p := range parts {
				parts[i] = Canonical(p)
			}
			sort.SliceStable(parts, func(i, j int) bool {
				return parts[i].String() < parts[j].String()
			})
			// Dedupe identical operands: x AND x = x, x OR x = x.
			out := parts[:1]
			for _, p := range parts[1:] {
				if p.String() != out[len(out)-1].String() {
					out = append(out, p)
				}
			}
			acc := out[0]
			for _, p := range out[1:] {
				acc = &Bin{Op: x.Op, L: acc, R: p}
			}
			return acc
		case x.Op.Comparison():
			l, r := Canonical(x.L), Canonical(x.R)
			_, lLit := l.(*Lit)
			_, rLit := r.(*Lit)
			flip := false
			if lLit && !rLit {
				flip = true
			} else if lLit == rLit && l.String() > r.String() {
				flip = true
			}
			if flip {
				return &Bin{Op: flipCmp(x.Op), L: r, R: l}
			}
			return &Bin{Op: x.Op, L: l, R: r}
		default:
			return &Bin{Op: x.Op, L: Canonical(x.L), R: Canonical(x.R)}
		}
	case *Not:
		return &Not{E: Canonical(x.E)}
	case *Neg:
		return &Neg{E: Canonical(x.E)}
	case *IsNull:
		return &IsNull{E: Canonical(x.E), Negate: x.Negate}
	case *Call:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = Canonical(a)
		}
		return &Call{Fn: x.Fn, Args: args}
	}
	return e
}

// Conjuncts flattens the top-level AND tree of a predicate into its
// conjunct list (a non-AND expression is its own single conjunct).
// Applied to a Canonical expression the list comes out sorted, which is
// what gives AND predicates with a common leading conjunct a common
// prefix in the sharing layer's predicate trie.
func Conjuncts(e Expr) []Expr {
	return flatten(OpAnd, e, nil)
}

func flatten(op BinOp, e Expr, dst []Expr) []Expr {
	if b, ok := e.(*Bin); ok && b.Op == op {
		return flatten(op, b.R, flatten(op, b.L, dst))
	}
	return append(dst, e)
}
