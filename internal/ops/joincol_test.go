package ops

// Operator-level equivalence for the columnar join path: driving the
// same port interleave through Push (row reference) and through
// ProcessBatch/ProcessColSpan (columnar) must produce identical output
// sequences AND byte-identical checkpoint snapshots — the columnar
// plan is a pure execution change. The engine-level matrix
// (internal/exec/coljoin_test.go) covers routing; these tests control
// the interleave directly so every operator branch is attributable.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"streamdb/internal/ckpt"
	"streamdb/internal/expr"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
	"streamdb/internal/window"
)

var cjLeft = tuple.NewSchema("L",
	tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
	tuple.Field{Name: "k", Kind: tuple.KindInt},
	tuple.Field{Name: "lv", Kind: tuple.KindInt},
)

var cjRight = tuple.NewSchema("R",
	tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
	tuple.Field{Name: "k", Kind: tuple.KindInt},
	tuple.Field{Name: "rv", Kind: tuple.KindInt},
)

// cjUnit is one step of a controlled interleave: a run of same-port
// elements the columnar run may batch together.
type cjUnit struct {
	port  int
	elems []stream.Element
}

// cjUnits builds an adversarial interleave: alternating port runs of
// varied length, duplicate keys from a small domain, equal-timestamp
// runs, stragglers up to 28 ticks behind, and punctuations held 40
// ticks behind the local maximum (terminating their unit, as the
// engine's flush-on-punct does).
func cjUnits(n int, keys int64, seed int64) []cjUnit {
	rng := rand.New(rand.NewSource(seed))
	var units []cjUnit
	maxTs := [2]int64{}
	emitted := 0
	for emitted < n {
		port := rng.Intn(2)
		runLen := 1 + rng.Intn(9)
		u := cjUnit{port: port}
		ts := maxTs[port]
		for r := 0; r < runLen && emitted < n; r++ {
			if rng.Intn(3) != 0 { // equal-ts runs are the common case
				ts = maxTs[port] + 2*rng.Int63n(3)
			}
			if maxTs[port] > 60 && rng.Int63n(16) == 0 {
				ts = maxTs[port] - 2*rng.Int63n(15) // straggler, ≤28 behind
			}
			if ts > maxTs[port] {
				maxTs[port] = ts
			}
			u.elems = append(u.elems, stream.Tup(tuple.New(ts,
				tuple.Time(ts), tuple.Int(rng.Int63n(keys)), tuple.Int(int64(emitted)))))
			emitted++
		}
		units = append(units, u)
		if rng.Intn(8) == 0 && maxTs[port] > 40 {
			p := maxTs[port] - 40
			units = append(units, cjUnit{port: port, elems: []stream.Element{
				stream.Punct(stream.ProgressPunct(p, 0, tuple.Time(p))),
			}})
		}
	}
	return units
}

func cjJoin(t *testing.T, lm, rm JoinMethod, residual bool, maxTuples int) *WindowJoin {
	t.Helper()
	var res expr.Expr
	if residual {
		out := cjLeft.Concat(cjRight)
		r, err := expr.NewBin(expr.OpGt,
			expr.MustColumn(out, "lv"), expr.MustColumn(out, "rv"))
		if err != nil {
			t.Fatal(err)
		}
		res = r
	}
	j, err := NewWindowJoin("cj", cjLeft, cjRight,
		JoinConfig{Window: window.Time(64, 64), Method: lm, Key: []int{1}, MaxTuples: maxTuples},
		JoinConfig{Window: window.Time(32, 32), Method: rm, Key: []int{1}},
		res)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func cjFmt(e stream.Element) string {
	if e.IsPunct() {
		return fmt.Sprintf("punct@%d", e.Punct.Ts)
	}
	return fmt.Sprintf("%d|%s", e.Tuple.Ts, e.Tuple.String())
}

// cjRowRun drives units element-at-a-time through Push and returns the
// formatted output plus the final snapshot bytes.
func cjRowRun(t *testing.T, j *WindowJoin, units []cjUnit) ([]string, []byte) {
	t.Helper()
	var out []string
	emit := func(e stream.Element) { out = append(out, cjFmt(e)) }
	for _, u := range units {
		for _, e := range u.elems {
			j.Push(u.port, e, emit)
		}
	}
	enc := &ckpt.Encoder{}
	if err := j.Snapshot(enc); err != nil {
		t.Fatal(err)
	}
	return out, enc.Bytes()
}

// cjBatch transposes a run of row elements into a fresh batch holding
// one reference.
func cjBatch(sch *tuple.Schema, elems []stream.Element) *stream.Batch {
	b := &stream.Batch{Schema: sch, Cols: make([][]tuple.Value, sch.Arity())}
	for _, e := range elems {
		b.AppendRow(e.Tuple)
	}
	b.Retain()
	return b
}

// cjColRun drives the same units through ProcessBatch, splitting each
// unit into batches of at most bs rows (punctuations go through Push,
// as the engine's row lane for punctuations does).
func cjColRun(t *testing.T, j *WindowJoin, units []cjUnit, bs int) ([]string, []byte) {
	t.Helper()
	var out []string
	emit := func(e stream.Element) { out = append(out, cjFmt(e)) }
	emitB := func(b *stream.Batch) {
		var row tuple.Tuple
		row.Vals = make([]tuple.Value, len(b.Cols))
		for r := 0; r < b.Rows(); r++ {
			b.GatherRow(r, &row)
			out = append(out, cjFmt(stream.Tup(row.Clone())))
		}
		b.Release()
	}
	sch := [2]*tuple.Schema{cjLeft, cjRight}
	for _, u := range units {
		pend := 0
		flush := func(hi int) {
			if hi > pend {
				j.ProcessBatch(u.port, cjBatch(sch[u.port], u.elems[pend:hi]), emitB, emit)
				pend = hi
			}
		}
		for i, e := range u.elems {
			if e.IsPunct() {
				flush(i)
				j.Push(u.port, e, emit)
				pend = i + 1
				continue
			}
			if i+1-pend == bs {
				flush(i + 1)
			}
		}
		flush(len(u.elems))
	}
	enc := &ckpt.Encoder{}
	if err := j.Snapshot(enc); err != nil {
		t.Fatal(err)
	}
	return out, enc.Bytes()
}

func cjCompare(t *testing.T, label string, row, col []string, rowSnap, colSnap []byte) {
	t.Helper()
	if len(row) != len(col) {
		t.Fatalf("%s: row emitted %d, columnar %d", label, len(row), len(col))
	}
	for i := range row {
		if row[i] != col[i] {
			t.Fatalf("%s: output %d differs:\n  row: %s\n  col: %s", label, i, row[i], col[i])
		}
	}
	if !bytes.Equal(rowSnap, colSnap) {
		t.Fatalf("%s: snapshot bytes differ (row %d bytes, col %d bytes)",
			label, len(rowSnap), len(colSnap))
	}
}

func TestWindowJoinProcessBatchMatchesPush(t *testing.T) {
	methods := []struct {
		name   string
		lm, rm JoinMethod
	}{
		{"hash_hash", JoinHash, JoinHash},
		{"inl_inl", JoinNestedLoop, JoinNestedLoop},
		{"hash_inl", JoinHash, JoinNestedLoop},
	}
	for _, m := range methods {
		for _, residual := range []bool{false, true} {
			for _, bs := range []int{1, 7, 64} {
				label := fmt.Sprintf("%s/res=%v/bs=%d", m.name, residual, bs)
				units := cjUnits(600, 5, 42)
				row, rowSnap := cjRowRun(t, cjJoin(t, m.lm, m.rm, residual, 0), units)
				col, colSnap := cjColRun(t, cjJoin(t, m.lm, m.rm, residual, 0), units, bs)
				cjCompare(t, label, row, col, rowSnap, colSnap)
				if len(row) == 0 {
					t.Fatalf("%s: no output", label)
				}
			}
		}
	}
}

// TestWindowJoinProcessBatchRowFallback: MaxTuples is outside the fast
// envelope; ProcessBatch must gather and rerun the row path with
// identical results, and count the fallback.
func TestWindowJoinProcessBatchRowFallback(t *testing.T) {
	units := cjUnits(400, 4, 7)
	jr := cjJoin(t, JoinHash, JoinHash, false, 10)
	row, rowSnap := cjRowRun(t, jr, units)
	jc := cjJoin(t, JoinHash, JoinHash, false, 10)
	col, colSnap := cjColRun(t, jc, units, 16)
	cjCompare(t, "maxtuples-fallback", row, col, rowSnap, colSnap)
	if jc.ColFallbacks() == 0 {
		t.Error("row fallback not counted")
	}
	if jr.ColFallbacks() != 0 {
		t.Error("row run counted fallbacks")
	}
}

// TestWindowJoinProcessBatchSelVector: a batch arriving with a
// selection vector (refined upstream by a filter kernel) must join
// exactly its selected rows.
func TestWindowJoinProcessBatchSelVector(t *testing.T) {
	units := cjUnits(400, 5, 99)
	// Row reference: only every other element of each unit survives.
	var rowUnits []cjUnit
	for _, u := range units {
		ru := cjUnit{port: u.port}
		for i, e := range u.elems {
			if e.IsPunct() || i%2 == 0 {
				ru.elems = append(ru.elems, e)
			}
		}
		rowUnits = append(rowUnits, ru)
	}
	row, rowSnap := cjRowRun(t, cjJoin(t, JoinHash, JoinHash, true, 0), rowUnits)

	jc := cjJoin(t, JoinHash, JoinHash, true, 0)
	var out []string
	emit := func(e stream.Element) { out = append(out, cjFmt(e)) }
	emitB := func(b *stream.Batch) {
		var r tuple.Tuple
		r.Vals = make([]tuple.Value, len(b.Cols))
		for i := 0; i < b.Rows(); i++ {
			b.GatherRow(i, &r)
			out = append(out, cjFmt(stream.Tup(r.Clone())))
		}
		b.Release()
	}
	sch := [2]*tuple.Schema{cjLeft, cjRight}
	for _, u := range units {
		var data []stream.Element
		for _, e := range u.elems {
			if e.IsPunct() {
				continue
			}
			data = append(data, e)
		}
		if len(data) > 0 {
			b := cjBatch(sch[u.port], data)
			for i := 0; i < len(data); i += 2 {
				b.Sel = append(b.Sel, int32(i))
			}
			jc.ProcessBatch(u.port, b, emitB, emit)
		}
		for _, e := range u.elems {
			if e.IsPunct() {
				jc.Push(u.port, e, emit)
			}
		}
	}
	enc := &ckpt.Encoder{}
	if err := jc.Snapshot(enc); err != nil {
		t.Fatal(err)
	}
	cjCompare(t, "sel-vector", row, out, rowSnap, enc.Bytes())
}

// TestWindowJoinProcessColSpanEnds: the span API must attribute output
// rows to input rows exactly as per-row Push does — the partition
// merger relies on the cumulative ends to reassemble the serial order.
func TestWindowJoinProcessColSpanEnds(t *testing.T) {
	units := cjUnits(500, 5, 3)
	jr := cjJoin(t, JoinHash, JoinNestedLoop, true, 0)
	var perRow [][]string // output run per pushed element, row reference
	for _, u := range units {
		for _, e := range u.elems {
			var runOut []string
			jr.Push(u.port, e, func(o stream.Element) { runOut = append(runOut, cjFmt(o)) })
			if !e.IsPunct() {
				perRow = append(perRow, runOut)
			}
		}
	}

	jc := cjJoin(t, JoinHash, JoinNestedLoop, true, 0)
	pool := stream.NewColPool(jc.OutSchema(), 64)
	var colPerRow [][]string
	sch := [2]*tuple.Schema{cjLeft, cjRight}
	for _, u := range units {
		var data []stream.Element
		for _, e := range u.elems {
			if e.IsPunct() {
				jc.Push(u.port, e, func(stream.Element) {})
				continue
			}
			data = append(data, e)
		}
		if len(data) == 0 {
			continue
		}
		b := cjBatch(sch[u.port], data)
		rows := make([]int32, len(data))
		for i := range rows {
			rows[i] = int32(i)
		}
		out := pool.Get()
		ends := jc.ProcessColSpan(u.port, b, rows, out, nil)
		if len(ends) != len(rows) {
			t.Fatalf("ends length %d, want %d", len(ends), len(rows))
		}
		var row tuple.Tuple
		row.Vals = make([]tuple.Value, len(out.Cols))
		lo := int32(0)
		for _, hi := range ends {
			var runOut []string
			for r := lo; r < hi; r++ {
				out.GatherRow(int(r), &row)
				runOut = append(runOut, cjFmt(stream.Tup(row.Clone())))
			}
			colPerRow = append(colPerRow, runOut)
			lo = hi
		}
		out.Release()
		b.Release() // ProcessColSpan does not consume the reference
	}
	if len(perRow) != len(colPerRow) {
		t.Fatalf("row path %d data rows, span path %d", len(perRow), len(colPerRow))
	}
	total := 0
	for i := range perRow {
		if len(perRow[i]) != len(colPerRow[i]) {
			t.Fatalf("row %d: %d outputs vs %d", i, len(perRow[i]), len(colPerRow[i]))
		}
		for x := range perRow[i] {
			if perRow[i][x] != colPerRow[i][x] {
				t.Fatalf("row %d output %d: %q vs %q", i, x, perRow[i][x], colPerRow[i][x])
			}
		}
		total += len(perRow[i])
	}
	if total == 0 {
		t.Fatal("no join output attributed")
	}
}

// TestXJoinProcessBatchMatchesPush: the in-memory probe/insert loop and
// the spill decisions run per arrival in both paths, so output order
// and spill state must match exactly, including the cleanup phase.
func TestXJoinProcessBatchMatchesPush(t *testing.T) {
	mk := func() *XJoin {
		x, err := NewXJoin("x", cjLeft, cjRight, []int{1}, []int{1}, 4, 64, nil, t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return x
	}
	units := cjUnits(600, 6, 11)
	xr := mk()
	var row []string
	emitR := func(e stream.Element) { row = append(row, cjFmt(e)) }
	for _, u := range units {
		for _, e := range u.elems {
			xr.Push(u.port, e, emitR)
		}
	}
	xr.Flush(emitR)

	xc := mk()
	var col []string
	emitC := func(e stream.Element) { col = append(col, cjFmt(e)) }
	emitB := func(b *stream.Batch) {
		var r tuple.Tuple
		r.Vals = make([]tuple.Value, len(b.Cols))
		for i := 0; i < b.Rows(); i++ {
			b.GatherRow(i, &r)
			col = append(col, cjFmt(stream.Tup(r.Clone())))
		}
		b.Release()
	}
	sch := [2]*tuple.Schema{cjLeft, cjRight}
	for _, u := range units {
		var data []stream.Element
		for _, e := range u.elems {
			if e.IsPunct() {
				xc.Push(u.port, e, emitC)
				continue
			}
			data = append(data, e)
		}
		if len(data) > 0 {
			xc.ProcessBatch(u.port, cjBatch(sch[u.port], data), emitB, emitC)
		}
	}
	xc.Flush(emitC)

	if len(row) != len(col) {
		t.Fatalf("row emitted %d, columnar %d", len(row), len(col))
	}
	for i := range row {
		if row[i] != col[i] {
			t.Fatalf("output %d differs:\n  row: %s\n  col: %s", i, row[i], col[i])
		}
	}
	if len(row) == 0 {
		t.Fatal("no output")
	}
	_, spills, _, _ := xc.Stats()
	if spills == 0 {
		t.Fatal("budget never exceeded: spill path not exercised")
	}
}

// TestWindowJoinColdProbeHysteresis: the cold-probe heuristic must
// demote a join whose vectorized probes stop matching (the 1M-key
// no-match regression: a large resident window where every probe
// misses) to the row path, then promote it back when matches return —
// with output identical to a pure row-path run across both flips.
func TestWindowJoinColdProbeHysteresis(t *testing.T) {
	mk := func() *WindowJoin {
		j, err := NewWindowJoin("cold", cjLeft, cjRight,
			JoinConfig{Window: window.Time(1<<40, 1<<40), Method: JoinHash, Key: []int{1}},
			JoinConfig{Window: window.Time(1<<40, 1<<40), Method: JoinHash, Key: []int{1}},
			nil)
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	col, ref := mk(), mk()
	var got, want []string
	emit := func(e stream.Element) { got = append(got, cjFmt(e)) }
	emitB := func(b *stream.Batch) {
		var row tuple.Tuple
		row.Vals = make([]tuple.Value, len(b.Cols))
		for r := 0; r < b.Rows(); r++ {
			b.GatherRow(r, &row)
			got = append(got, cjFmt(stream.Tup(row.Clone())))
		}
		b.Release()
	}
	refEmit := func(e stream.Element) { want = append(want, cjFmt(e)) }
	sch := [2]*tuple.Schema{cjLeft, cjRight}
	feed := func(port int, elems []stream.Element) {
		const bs = 512
		for lo := 0; lo < len(elems); lo += bs {
			hi := lo + bs
			if hi > len(elems) {
				hi = len(elems)
			}
			col.ProcessBatch(port, cjBatch(sch[port], elems[lo:hi]), emitB, emit)
		}
		for _, e := range elems {
			ref.Push(port, e, refEmit)
		}
	}
	row := func(port int, ts, k int64) stream.Element {
		return stream.Tup(tuple.New(ts, tuple.Time(ts), tuple.Int(k), tuple.Int(ts)))
	}

	// Cold phase: left-only inserts with unique keys. No probe ever
	// matches, the resident window grows past colColdMinWindow, and the
	// first re-evaluation (colDecideEvery rows in) sees a zero match
	// rate: the plan must demote itself.
	const coldRows = colDecideEvery + 1024
	elems := make([]stream.Element, coldRows)
	for i := range elems {
		elems[i] = row(0, int64(i), int64(i))
	}
	feed(0, elems)
	if col.colPlan != colJoinCold {
		t.Fatalf("after %d matchless rows over a %d-tuple window: colPlan = %d, want colJoinCold",
			coldRows, coldRows, col.colPlan)
	}
	if col.ColFallbacks() == 0 {
		t.Error("demoted batches must be counted as columnar fallbacks")
	}

	// Warm phase: right-side probes that each match exactly one resident
	// left tuple (rate ~1 > colWarmRate). The next re-evaluation must
	// promote the plan back to the vectorized path.
	elems = elems[:0]
	for i := 0; i < colDecideEvery+1024; i++ {
		elems = append(elems, row(1, int64(coldRows+i), int64(i)))
	}
	feed(1, elems)
	if col.colPlan != colJoinFast {
		t.Fatalf("after matching probes: colPlan = %d, want colJoinFast", col.colPlan)
	}

	// Both flips must have been execution-only: output and emitted
	// counter identical to the uninterrupted row path.
	if len(got) != len(want) || len(want) == 0 {
		t.Fatalf("columnar emitted %d rows, row path %d (want equal, nonzero)", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output %d differs:\n  col: %s\n  row: %s", i, got[i], want[i])
		}
	}
	if col.Emitted() != ref.Emitted() {
		t.Errorf("Emitted = %d, want %d", col.Emitted(), ref.Emitted())
	}
}
