package synopsis

import (
	"sort"

	"streamdb/internal/tuple"
)

// GK is the Greenwald-Khanna epsilon-approximate quantile summary: the
// structure behind "quantile computation is part of Gigascope, and
// engineered to reduce drops" (slide 53). A query for quantile q returns
// a value whose rank is within eps*N of q*N, using O((1/eps) log(eps N))
// space, one pass, no randomization.
type GK struct {
	eps     float64
	n       int64
	entries []gkEntry // sorted by value
}

type gkEntry struct {
	v     float64
	g     int64 // rank(this) - rank(prev) lower-bound gap
	delta int64 // uncertainty
}

// NewGK builds a summary with the given rank error bound (e.g. 0.01).
func NewGK(eps float64) *GK {
	if eps <= 0 {
		eps = 0.001
	}
	return &GK{eps: eps}
}

// Add inserts one observation.
func (g *GK) Add(v float64) {
	g.n++
	i := sort.Search(len(g.entries), func(i int) bool { return g.entries[i].v >= v })
	var delta int64
	if i > 0 && i < len(g.entries) {
		delta = int64(2*g.eps*float64(g.n)) - 1
		if delta < 0 {
			delta = 0
		}
	}
	g.entries = append(g.entries, gkEntry{})
	copy(g.entries[i+1:], g.entries[i:])
	g.entries[i] = gkEntry{v: v, g: 1, delta: delta}
	if g.n%int64(1.0/(2.0*g.eps)) == 0 {
		g.compress()
	}
}

func (g *GK) compress() {
	threshold := int64(2 * g.eps * float64(g.n))
	// Merge adjacent entries whose combined uncertainty stays within
	// bounds, scanning from the end.
	for i := len(g.entries) - 2; i >= 1; i-- {
		e, next := g.entries[i], g.entries[i+1]
		if e.g+next.g+next.delta <= threshold {
			g.entries[i+1].g += e.g
			g.entries = append(g.entries[:i], g.entries[i+1:]...)
		}
	}
}

// Query returns the approximate q-quantile (q in [0,1]).
func (g *GK) Query(q float64) (float64, bool) {
	if g.n == 0 || len(g.entries) == 0 {
		return 0, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Return the last entry whose maximum possible rank stays within
	// eps*n of the target rank.
	target := int64(q * float64(g.n))
	bound := int64(g.eps * float64(g.n))
	var rmin int64
	prev := g.entries[0].v
	for _, e := range g.entries {
		rmin += e.g
		if rmin+e.delta > target+bound {
			return prev, true
		}
		prev = e.v
	}
	return prev, true
}

// N returns the number of observations.
func (g *GK) N() int64 { return g.n }

// Entries reports the summary size (space used).
func (g *GK) Entries() int { return len(g.entries) }

// MemSize approximates the bytes held.
func (g *GK) MemSize() int { return 40 + 24*len(g.entries) }

// SpaceSaving is the Metwally et al. heavy-hitters summary, answering
// slide 38's "select G, count(*) from S group by G having
// count(*) > phi*|S|" with bounded memory: any value with true frequency
// above N/k is guaranteed to be tracked.
type SpaceSaving struct {
	k        int
	n        int64
	counters map[uint64]*ssCounter
}

type ssCounter struct {
	val   tuple.Value
	count int64
	err   int64
}

// NewSpaceSaving builds a summary with k counters.
func NewSpaceSaving(k int) *SpaceSaving {
	if k <= 0 {
		k = 1
	}
	return &SpaceSaving{k: k, counters: make(map[uint64]*ssCounter, k)}
}

// Add observes one occurrence of v.
func (s *SpaceSaving) Add(v tuple.Value) {
	s.n++
	h := v.Hash()
	if c, ok := s.counters[h]; ok {
		c.count++
		return
	}
	if len(s.counters) < s.k {
		s.counters[h] = &ssCounter{val: v, count: 1}
		return
	}
	// Evict the minimum counter and inherit its count as error.
	var minH uint64
	var minC *ssCounter
	for h2, c := range s.counters {
		if minC == nil || c.count < minC.count {
			minH, minC = h2, c
		}
	}
	delete(s.counters, minH)
	s.counters[h] = &ssCounter{val: v, count: minC.count + 1, err: minC.count}
}

// HeavyHitter is one reported frequent value.
type HeavyHitter struct {
	Val   tuple.Value
	Count int64 // upper bound
	Err   int64 // overcount bound
}

// Hitters returns values whose estimated frequency exceeds phi*N,
// sorted by descending count.
func (s *SpaceSaving) Hitters(phi float64) []HeavyHitter {
	threshold := int64(phi * float64(s.n))
	var out []HeavyHitter
	for _, c := range s.counters {
		if c.count > threshold {
			out = append(out, HeavyHitter{Val: c.val, Count: c.count, Err: c.err})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Val.Compare(out[j].Val) < 0
	})
	return out
}

// N returns the number of observations.
func (s *SpaceSaving) N() int64 { return s.n }

// MemSize approximates the bytes held.
func (s *SpaceSaving) MemSize() int { return 48 + 64*len(s.counters) }
