package adaptive

import (
	"testing"

	"streamdb/internal/expr"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

var sch = tuple.NewSchema("S",
	tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
	tuple.Field{Name: "a", Kind: tuple.KindInt},
	tuple.Field{Name: "b", Kind: tuple.KindInt},
)

func row(ts, a, b int64) *tuple.Tuple {
	return tuple.New(ts, tuple.Time(ts), tuple.Int(a), tuple.Int(b))
}

func filt(t *testing.T, name, col string, threshold int64, cost float64) *Filter {
	t.Helper()
	pred, err := expr.NewBin(expr.OpLt, expr.MustColumn(sch, col), expr.Constant(tuple.Int(threshold)))
	if err != nil {
		t.Fatal(err)
	}
	return &Filter{Name: name, Pred: pred, Cost: cost}
}

func TestEddyFiltersCorrectly(t *testing.T) {
	// a < 50 AND b < 50: result must be order-independent.
	e, err := NewEddy([]*Filter{filt(t, "fa", "a", 50, 1), filt(t, "fb", "b", 50, 1)}, 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	pass := 0
	for i := int64(0); i < 100; i++ {
		if e.Process(row(i, i, 99-i)) {
			pass++
		}
	}
	// Both pass iff i < 50 && 99-i < 50 -> i in (49, 50): i = 50..49?
	// 99-i < 50 -> i > 49; i < 50: empty set.
	if pass != 0 {
		t.Errorf("pass = %d, want 0", pass)
	}
	in, out, evals := e.Stats()
	if in != 100 || out != 0 || evals == 0 {
		t.Errorf("stats = %d, %d, %d", in, out, evals)
	}
}

func TestEddyAdaptsToSelectivity(t *testing.T) {
	// Filter fa drops everything, fb drops nothing. After warmup the
	// eddy must run fa first.
	fa := filt(t, "fa", "a", 0, 1)    // a < 0: never true
	fb := filt(t, "fb", "b", 1000, 1) // always true
	e, err := NewEddy([]*Filter{fb, fa}, 0.5, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 200; i++ {
		e.Process(row(i, 5, 5))
	}
	if got := e.Order(); got[0] != "fa" {
		t.Errorf("order after adaptation = %v, want fa first", got)
	}
	// Evaluations must be near 1 per tuple once adapted, far below 2.
	_, _, evals := e.Stats()
	if evals > 300 {
		t.Errorf("evals = %d, want close to 220", evals)
	}
}

func TestEddyReAdaptsAfterDrift(t *testing.T) {
	// Selectivities swap mid-stream (experiment E16's scenario).
	fa := filt(t, "fa", "a", 50, 1)
	fb := filt(t, "fb", "b", 50, 1)
	e, err := NewEddy([]*Filter{fa, fb}, 0.5, 25)
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1: a always >= 50 (fa drops all), b < 50 (fb passes all).
	for i := int64(0); i < 500; i++ {
		e.Process(row(i, 99, 1))
	}
	if got := e.Order(); got[0] != "fa" {
		t.Fatalf("phase 1 order = %v", got)
	}
	// Phase 2: swap — fa passes all, fb drops all.
	for i := int64(0); i < 500; i++ {
		e.Process(row(i, 1, 99))
	}
	if got := e.Order(); got[0] != "fb" {
		t.Errorf("phase 2 order = %v, eddy did not re-adapt", got)
	}
}

func TestEddyChoosesCheapAmongEqualSelectivity(t *testing.T) {
	cheap := filt(t, "cheap", "a", 0, 1)
	costly := filt(t, "costly", "b", 0, 10)
	e, _ := NewEddy([]*Filter{costly, cheap}, 1, 10)
	for i := int64(0); i < 100; i++ {
		e.Process(row(i, 5, 5))
	}
	if got := e.Order(); got[0] != "cheap" {
		t.Errorf("order = %v, want cheap first", got)
	}
}

func TestEddyBeatsBadFixedPlan(t *testing.T) {
	mk := func(t *testing.T) []*Filter {
		return []*Filter{filt(t, "pass", "a", 1000, 1), filt(t, "drop", "b", 0, 1)}
	}
	eddy, _ := NewEddy(mk(t), 0.5, 20)
	fixed, _ := NewFixedPlan(mk(t)) // bad order: non-selective first
	for i := int64(0); i < 1000; i++ {
		eddy.Process(row(i, 1, 1))
		fixed.Process(row(i, 1, 1))
	}
	_, _, ee := eddy.Stats()
	_, _, fe := fixed.Stats()
	if ee >= fe {
		t.Errorf("eddy evals %d >= fixed evals %d", ee, fe)
	}
	// Same answers.
	eIn, eOut, _ := eddy.Stats()
	fIn, fOut, _ := fixed.Stats()
	if eIn != fIn || eOut != fOut {
		t.Errorf("answer mismatch: eddy %d/%d, fixed %d/%d", eOut, eIn, fOut, fIn)
	}
}

func TestEddyValidation(t *testing.T) {
	if _, err := NewEddy(nil, 0.5, 10); err == nil {
		t.Error("empty filters accepted")
	}
	f := filt(t, "f", "a", 1, 1)
	if _, err := NewEddy([]*Filter{f}, 0, 10); err == nil {
		t.Error("zero decay accepted")
	}
	if _, err := NewEddy([]*Filter{f}, 0.5, 0); err == nil {
		t.Error("zero rerank accepted")
	}
	bad := &Filter{Name: "bad", Pred: expr.MustColumn(sch, "a")}
	if _, err := NewEddy([]*Filter{bad}, 0.5, 10); err == nil {
		t.Error("non-boolean filter accepted")
	}
	if _, err := NewFixedPlan(nil); err == nil {
		t.Error("empty fixed plan accepted")
	}
}

func TestProcessElementPunctuation(t *testing.T) {
	e, _ := NewEddy([]*Filter{filt(t, "f", "a", 0, 1)}, 0.5, 10)
	p := stream.Punct(stream.ProgressPunct(1, 0, tuple.Time(1)))
	if _, ok := e.ProcessElement(p); !ok {
		t.Error("punctuation dropped")
	}
	if _, ok := e.ProcessElement(stream.Tup(row(1, 5, 5))); ok {
		t.Error("tuple passed a never-true filter")
	}
}
