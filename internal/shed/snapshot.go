package shed

// Checkpoint support (ckpt.Snapshotter) for the load shedders. A
// shedder's only hidden state is its PRNG position; the snapshot
// records the seed and the number of draws made, and restore replays
// that many draws against a fresh generator — cheap (one Float64 per
// shed decision so far) and exact, so a restored run sheds the very
// same tuples the original would have.

import (
	"fmt"
	"math/rand"

	"streamdb/internal/ckpt"
)

// Snapshot implements ckpt.Snapshotter.
func (r *Random) Snapshot(enc *ckpt.Encoder) error {
	enc.Varint(r.seed)
	enc.Varint(r.draws)
	enc.Float64(r.Rate())
	enc.Varint(r.in)
	enc.Varint(r.out)
	return nil
}

// Restore implements ckpt.Snapshotter.
func (r *Random) Restore(dec *ckpt.Decoder) error {
	seed := dec.Varint()
	draws := dec.Varint()
	r.SetRate(dec.Float64())
	r.in = dec.Varint()
	r.out = dec.Varint()
	if err := dec.Err(); err != nil {
		return err
	}
	if seed != r.seed {
		return fmt.Errorf("shed: restore %s: snapshot seed %d, operator seed %d", r.name, seed, r.seed)
	}
	r.rng = replayRNG(seed, draws)
	r.draws = draws
	return nil
}

// Snapshot implements ckpt.Snapshotter.
func (s *Semantic) Snapshot(enc *ckpt.Encoder) error {
	enc.Varint(s.seed)
	enc.Varint(s.draws)
	enc.Float64(s.Rate())
	enc.Varint(s.in)
	enc.Varint(s.out)
	enc.Varint(s.kept)
	return nil
}

// Restore implements ckpt.Snapshotter.
func (s *Semantic) Restore(dec *ckpt.Decoder) error {
	seed := dec.Varint()
	draws := dec.Varint()
	s.SetRate(dec.Float64())
	s.in = dec.Varint()
	s.out = dec.Varint()
	s.kept = dec.Varint()
	if err := dec.Err(); err != nil {
		return err
	}
	if seed != s.seed {
		return fmt.Errorf("shed: restore %s: snapshot seed %d, operator seed %d", s.name, seed, s.seed)
	}
	s.rng = replayRNG(seed, draws)
	s.draws = draws
	return nil
}

func replayRNG(seed, draws int64) *rand.Rand {
	rng := rand.New(rand.NewSource(seed))
	for i := int64(0); i < draws; i++ {
		rng.Float64()
	}
	return rng
}
