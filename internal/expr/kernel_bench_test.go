package expr

import (
	"testing"

	"streamdb/internal/tuple"
)

// BenchmarkKernelAndChain measures the compiled selection-vector
// kernels in isolation (single goroutine, no engine): the same 3-way
// AND of comparisons the columnar ablation pushes through the graph,
// over 256-row column chunks with in-place refinement.
func BenchmarkKernelAndChain(b *testing.B) {
	const n = 1 << 16
	const bs = 256
	sch := tuple.NewSchema("B",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "g", Kind: tuple.KindInt},
		tuple.Field{Name: "v", Kind: tuple.KindFloat},
	)
	type chunk struct {
		cols [][]tuple.Value
		ts   []int64
	}
	var chunks []chunk
	for base := 0; base < n; base += bs {
		c := chunk{cols: make([][]tuple.Value, 3), ts: make([]int64, bs)}
		for i := range c.cols {
			c.cols[i] = make([]tuple.Value, bs)
		}
		for i := 0; i < bs; i++ {
			idx := base + i
			ts := int64(idx) / 256
			c.ts[i] = ts
			c.cols[0][i] = tuple.Time(ts)
			c.cols[1][i] = tuple.Int(int64(idx % 64))
			c.cols[2][i] = tuple.Float(float64((idx*31)%997) / 8)
		}
		chunks = append(chunks, c)
	}
	mk := func(cn string, op BinOp, lit tuple.Value) Expr {
		e, err := NewBin(op, MustColumn(sch, cn), Constant(lit))
		if err != nil {
			b.Fatal(err)
		}
		return e
	}
	p12, err := NewBin(OpAnd, mk("g", OpGe, tuple.Int(8)), mk("v", OpLt, tuple.Float(15)))
	if err != nil {
		b.Fatal(err)
	}
	pred, err := NewBin(OpAnd, p12, mk("v", OpGe, tuple.Float(2)))
	if err != nil {
		b.Fatal(err)
	}
	kern := CompileKernel(pred, sch.Arity())
	if kern == nil {
		b.Fatal("no kernel compiled")
	}
	sel := make([]int32, 0, bs)
	var out int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range chunks {
			out += len(kern(c.cols, c.ts, nil, sel[:0]))
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "elems/s")
	if out == 0 {
		b.Fatal("no rows selected")
	}
}
