package streamdb

import (
	"strings"
	"testing"
)

func trafficSchema() *Schema {
	return NewSchema("Traffic",
		Field{Name: "time", Kind: KindTime, Ordering: true},
		Field{Name: "srcIP", Kind: KindIP},
		Field{Name: "length", Kind: KindUint},
	)
}

func engineWithData(t *testing.T) *Engine {
	t.Helper()
	eng := New()
	sch := trafficSchema()
	eng.RegisterSchema("Traffic", sch)
	var rows []*Tuple
	for i := int64(0); i < 100; i++ {
		rows = append(rows, NewTuple(i*Second,
			Time(i*Second), IP(uint32(i%4)), Uint(uint64(100+i*10))))
	}
	if err := eng.SetSource("Traffic", FromTuples(sch, rows...)); err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestEngineSelect(t *testing.T) {
	eng := engineWithData(t)
	res, err := eng.Query("select srcIP, length from Traffic where length > 1000")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 { // lengths 1010..1090
		t.Errorf("rows = %d", len(res.Rows))
	}
	if res.Schema.Fields[0].Name != "srcIP" {
		t.Errorf("schema = %s", res.Schema)
	}
}

func TestEngineAggregate(t *testing.T) {
	eng := engineWithData(t)
	res, err := eng.Query(
		"select srcIP, count(*) as cnt from Traffic [range 100] group by srcIP")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if c, _ := r.Vals[1].AsInt(); c != 25 {
			t.Errorf("count = %d, want 25", c)
		}
	}
}

func TestEngineErrors(t *testing.T) {
	eng := New()
	if err := eng.SetSource("Nope", nil); err == nil {
		t.Error("unregistered stream accepted")
	}
	if _, err := eng.Query("select * from Nowhere"); err == nil {
		t.Error("unknown stream accepted")
	}
	if _, err := eng.Compile("not sql"); err == nil {
		t.Error("garbage accepted")
	}
	eng.RegisterSchema("T", trafficSchema())
	if _, err := eng.Query("select * from T"); err == nil {
		t.Error("query without source accepted")
	}
}

func TestEngineQueryInto(t *testing.T) {
	eng := engineWithData(t)
	n := 0
	plan, err := eng.QueryInto("select * from Traffic", 10, func(*Tuple) { n++ })
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("sink received %d", n)
	}
	if plan == nil || plan.OutSchema == nil {
		t.Error("plan missing")
	}
}

func TestResultFormat(t *testing.T) {
	eng := engineWithData(t)
	res, err := eng.Query("select srcIP, length from Traffic where length = 100")
	if err != nil {
		t.Fatal(err)
	}
	out := res.Format()
	if !strings.Contains(out, "srcIP") || !strings.Contains(out, "(1 rows)") {
		t.Errorf("format output:\n%s", out)
	}
	if !strings.Contains(out, "0.0.0.0") {
		t.Errorf("IP not rendered:\n%s", out)
	}
}

func TestCompileExposesAnalysis(t *testing.T) {
	eng := New()
	eng.RegisterSchema("Traffic", trafficSchema())
	plan, err := eng.Compile("select length, count(*) from Traffic [range 60] where length > 512 group by length")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Bounded.OK {
		t.Error("unbounded grouping judged bounded")
	}
	if !strings.Contains(plan.Explain(), "bounded-memory: false") {
		t.Errorf("explain:\n%s", plan.Explain())
	}
}
