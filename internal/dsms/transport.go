// Package dsms implements the tutorial's end-to-end 3-level
// architecture (slides 14-15, 54-55): resource-limited low-level DSMS
// nodes at the observation points, a resource-rich high-level node, and
// a DBMS behind it. It provides query decomposition across levels
// (slide 54), a TCP transport for distributed evaluation (slide 55),
// and the adaptive-filter protocol for continuous distributed
// aggregation [OJW03].
package dsms

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

// Frame format: uvarint length + tuple encoding. A zero-length frame
// marks end-of-stream.

// Writer sends tuples over a connection.
type Writer struct {
	mu    sync.Mutex
	w     *bufio.Writer
	c     io.Closer
	buf   []byte
	Sent  int64
	Bytes int64
}

// NewWriter wraps a connection for tuple transport.
func NewWriter(conn net.Conn) *Writer {
	return &Writer{w: bufio.NewWriter(conn), c: conn}
}

// Send transmits one tuple.
func (w *Writer) Send(t *tuple.Tuple) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = tuple.AppendEncode(w.buf[:0], t)
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(w.buf)))
	if _, err := w.w.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := w.w.Write(w.buf); err != nil {
		return err
	}
	w.Sent++
	w.Bytes += int64(n + len(w.buf))
	return nil
}

// Close sends the end-of-stream frame and closes the connection.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	var hdr [1]byte // uvarint(0)
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	return w.c.Close()
}

// Flush pushes buffered frames to the wire.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.w.Flush()
}

// Reader receives tuples from a connection and implements
// stream.Source. Only an explicit zero-length frame is a clean
// end-of-stream: a connection that dies mid-stream (bare EOF, truncated
// frame, decode failure) sets Err, which callers must check via Close
// (or Err directly) after Next returns false — otherwise a dropped peer
// is indistinguishable from completion.
type Reader struct {
	r        *bufio.Reader
	c        io.Closer
	schema   *tuple.Schema
	buf      []byte
	done     bool
	Received int64
	Err      error
}

// NewReader wraps a connection; the schema describes the expected
// tuples (checked on decode).
func NewReader(conn net.Conn, schema *tuple.Schema) *Reader {
	return &Reader{r: bufio.NewReader(conn), c: conn, schema: schema}
}

// Schema implements stream.Source.
func (r *Reader) Schema() *tuple.Schema { return r.schema }

// Next implements stream.Source.
func (r *Reader) Next() (stream.Element, bool) {
	if r.done {
		return stream.Element{}, false
	}
	ln, err := binary.ReadUvarint(r.r)
	if err != nil {
		// EOF before the end-of-stream frame means the peer died
		// mid-stream; never report it as clean completion.
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return stream.Element{}, r.fail(fmt.Errorf("dsms: read frame header: %w", err))
	}
	if ln == 0 { // explicit end-of-stream frame
		r.done = true
		r.c.Close()
		return stream.Element{}, false
	}
	if uint64(cap(r.buf)) < ln {
		r.buf = make([]byte, ln)
	}
	buf := r.buf[:ln]
	if _, err := io.ReadFull(r.r, buf); err != nil {
		return stream.Element{}, r.fail(fmt.Errorf("dsms: read frame body: %w", err))
	}
	t, _, err := tuple.DecodeChecked(buf, r.schema)
	if err != nil {
		return stream.Element{}, r.fail(fmt.Errorf("dsms: %w", err))
	}
	r.Received++
	return stream.Tup(t), true
}

// fail records the first transport error and ends the stream; it
// returns false for use in Next's return.
func (r *Reader) fail(err error) bool {
	r.done = true
	r.c.Close()
	if r.Err == nil {
		r.Err = err
	}
	return false
}

// Close releases the connection and reports the first transport error,
// distinguishing a dropped peer from a clean end-of-stream. Safe to
// call after draining.
func (r *Reader) Close() error {
	if !r.done {
		r.done = true
		r.c.Close()
	}
	return r.Err
}
