package ops

import (
	"fmt"
	"sort"

	"streamdb/internal/expr"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
	"streamdb/internal/window"
)

// MJoin is an N-way sliding-window equijoin over a shared key, the
// multi-join of Golab & Özsu [GO03] referenced on slide 62 and the
// plan shape Viglas et al. optimize for output rate [VNB03]. All
// inputs join on one attribute each (e.g. destIP across N packet
// streams); an arriving tuple probes every other window and each full
// combination is emitted once.
//
// The probe order matters: probing the stream with the fewest expected
// matches first prunes the candidate set early. MJoin supports a fixed
// order or an adaptive order re-derived from observed window sizes
// (the [GO03] heuristic).
type MJoin struct {
	name     string
	inputs   []mjInput
	out      *tuple.Schema
	residual expr.Expr
	adaptive bool
	order    [][]int // probe order per arrival port
	probes   int64
	emitted  int64
	arrivals int64
	reorder  int64 // arrivals between order refreshes
}

type mjInput struct {
	schema *tuple.Schema
	key    int
	buf    window.Buffer
	index  map[uint64][]*tuple.Tuple
	fifo   []*tuple.Tuple
}

// MJoinInput declares one input stream.
type MJoinInput struct {
	Schema *tuple.Schema
	// Key is the join attribute's column index in this schema.
	Key int
	// Window bounds this input's state.
	Window window.Spec
}

// NewMJoin builds an N-way join (N >= 2). With adaptive true the probe
// order is re-derived from window sizes every reorderEvery arrivals;
// otherwise inputs are probed in declaration order. residual (may be
// nil) is evaluated over the concatenation of all inputs' fields in
// declaration order.
func NewMJoin(name string, inputs []MJoinInput, residual expr.Expr, adaptive bool, reorderEvery int) (*MJoin, error) {
	if len(inputs) < 2 {
		return nil, fmt.Errorf("ops: mjoin needs at least two inputs")
	}
	if reorderEvery <= 0 {
		reorderEvery = 256
	}
	m := &MJoin{name: name, adaptive: adaptive, reorder: int64(reorderEvery)}
	var outSchema *tuple.Schema
	var refKind tuple.Kind
	for i, in := range inputs {
		if in.Key < 0 || in.Key >= in.Schema.Arity() {
			return nil, fmt.Errorf("ops: mjoin input %d key out of range", i)
		}
		k := in.Schema.Fields[in.Key].Kind
		if i == 0 {
			refKind = k
			outSchema = in.Schema
		} else {
			if k.Numeric() != refKind.Numeric() || (!k.Numeric() && k != refKind) {
				return nil, fmt.Errorf("ops: mjoin input %d key kind %s incompatible with %s", i, k, refKind)
			}
			outSchema = outSchema.Concat(in.Schema)
		}
		m.inputs = append(m.inputs, mjInput{
			schema: in.Schema,
			key:    in.Key,
			buf:    window.NewBuffer(in.Window),
			index:  make(map[uint64][]*tuple.Tuple),
		})
	}
	if residual != nil && residual.Kind() != tuple.KindBool {
		return nil, fmt.Errorf("ops: mjoin residual must be boolean")
	}
	m.residual = residual
	m.out = outSchema
	m.order = make([][]int, len(inputs))
	m.buildOrders()
	return m, nil
}

// buildOrders computes, per arrival port, the order in which the other
// inputs are probed: ascending live window size (fewest candidates
// first). With adaptive off the declaration order is kept.
func (m *MJoin) buildOrders() {
	for port := range m.inputs {
		var others []int
		for j := range m.inputs {
			if j != port {
				others = append(others, j)
			}
		}
		if m.adaptive {
			sort.SliceStable(others, func(a, b int) bool {
				return m.inputs[others[a]].buf.Len() < m.inputs[others[b]].buf.Len()
			})
		}
		m.order[port] = others
	}
}

// Name implements Operator.
func (m *MJoin) Name() string { return m.name }

// OutSchema implements Operator.
func (m *MJoin) OutSchema() *tuple.Schema { return m.out }

// NumInputs implements Operator.
func (m *MJoin) NumInputs() int { return len(m.inputs) }

// Push implements Operator.
func (m *MJoin) Push(port int, e stream.Element, emit Emit) {
	if port < 0 || port >= len(m.inputs) {
		return
	}
	if e.IsPunct() {
		for i := range m.inputs {
			m.invalidate(i, e.Punct.Ts)
		}
		return
	}
	t := e.Tuple
	m.arrivals++
	if m.adaptive && m.arrivals%m.reorder == 0 {
		m.buildOrders()
	}
	// Expire state everywhere relative to the new arrival.
	for i := range m.inputs {
		if i != port {
			m.invalidate(i, t.Ts)
		}
	}
	h := t.Vals[m.inputs[port].key].Hash()
	kv := t.Vals[m.inputs[port].key]

	// Progressive probing: candidate lists per input, pruned in probe
	// order; abort as soon as one input has no match.
	cands := make([][]*tuple.Tuple, len(m.inputs))
	complete := true
	for _, j := range m.order[port] {
		in := &m.inputs[j]
		var matches []*tuple.Tuple
		for _, c := range in.index[h] {
			m.probes++
			if c.Vals[in.key].Equal(kv) {
				matches = append(matches, c)
			}
		}
		if len(matches) == 0 {
			complete = false
			break
		}
		cands[j] = matches
	}
	if complete {
		m.emitCombinations(port, t, cands, emit)
	}

	// Insert the arrival into its own window.
	in := &m.inputs[port]
	in.buf.Insert(t)
	in.fifo = append(in.fifo, t)
	in.index[h] = append(in.index[h], t)
}

// emitCombinations produces the cartesian product of the candidate
// lists with the arriving tuple in its slot, fields ordered by input
// declaration.
func (m *MJoin) emitCombinations(port int, arrived *tuple.Tuple, cands [][]*tuple.Tuple, emit Emit) {
	n := len(m.inputs)
	pick := make([]*tuple.Tuple, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			ts := int64(0)
			total := 0
			for _, p := range pick {
				if p.Ts > ts {
					ts = p.Ts
				}
				total += len(p.Vals)
			}
			vals := make([]tuple.Value, 0, total)
			for _, p := range pick {
				vals = append(vals, p.Vals...)
			}
			out := tuple.New(ts, vals...)
			if m.residual != nil && !expr.EvalBool(m.residual, out) {
				return
			}
			m.emitted++
			emit(stream.Tup(out))
			return
		}
		if i == port {
			pick[i] = arrived
			rec(i + 1)
			return
		}
		for _, c := range cands[i] {
			pick[i] = c
			rec(i + 1)
		}
	}
	rec(0)
}

func (m *MJoin) invalidate(i int, now int64) {
	in := &m.inputs[i]
	n := in.buf.Invalidate(now)
	for k := 0; k < n; k++ {
		old := in.fifo[k]
		h := old.Vals[in.key].Hash()
		bucket := in.index[h]
		for bi, bt := range bucket {
			if bt == old {
				bucket[bi] = bucket[len(bucket)-1]
				in.index[h] = bucket[:len(bucket)-1]
				break
			}
		}
		if len(in.index[h]) == 0 {
			delete(in.index, h)
		}
	}
	if n > 0 {
		in.fifo = in.fifo[n:]
	}
}

// Flush implements Operator.
func (m *MJoin) Flush(Emit) {}

// MemSize implements Operator.
func (m *MJoin) MemSize() int {
	n := 128
	for i := range m.inputs {
		n += m.inputs[i].buf.MemSize() + 48*len(m.inputs[i].index)
	}
	return n
}

// Stats reports (arrivals, probes, results).
func (m *MJoin) Stats() (arrivals, probes, emitted int64) {
	return m.arrivals, m.probes, m.emitted
}

// WindowSizes reports each input's live tuple count.
func (m *MJoin) WindowSizes() []int {
	out := make([]int, len(m.inputs))
	for i := range m.inputs {
		out[i] = m.inputs[i].buf.Len()
	}
	return out
}
