package rate

import (
	"math"
	"testing"
	"testing/quick"
)

func model3() MultiJoinModel {
	return MultiJoinModel{
		Rates:     []float64{1000, 10, 100},
		Windows:   []float64{10, 10, 10},
		MatchProb: 0.001,
	}
}

func TestMultiJoinValidate(t *testing.T) {
	if err := model3().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []MultiJoinModel{
		{Rates: []float64{1}, Windows: []float64{1}, MatchProb: 0.1},
		{Rates: []float64{1, 2}, Windows: []float64{1}, MatchProb: 0.1},
		{Rates: []float64{1, 0}, Windows: []float64{1, 1}, MatchProb: 0.1},
		{Rates: []float64{1, 1}, Windows: []float64{1, -1}, MatchProb: 0.1},
		{Rates: []float64{1, 1}, Windows: []float64{1, 1}, MatchProb: 0},
		{Rates: []float64{1, 1}, Windows: []float64{1, 1}, MatchProb: 1.5},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d validated", i)
		}
	}
}

func TestMultiJoinOutputRate(t *testing.T) {
	m := MultiJoinModel{
		Rates:     []float64{10, 20},
		Windows:   []float64{2, 3},
		MatchProb: 0.01,
	}
	// pop = 20, 60. Output = 10*(60*.01) + 20*(20*.01) = 6 + 4 = 10.
	if got := m.OutputRate(); math.Abs(got-10) > 1e-9 {
		t.Errorf("OutputRate = %v, want 10", got)
	}
	// Two-stream model must agree with the binary JoinModel.
	b := JoinModel{RateA: 10, RateB: 20, WindowA: 2, WindowB: 3,
		MatchProb: 0.01, CapacityProbes: math.Inf(1)}
	if math.Abs(m.OutputRate()-b.OutputRate()) > 1e-9 {
		t.Errorf("multi %v != binary %v", m.OutputRate(), b.OutputRate())
	}
}

func TestBestProbeOrdersAscendingPopulation(t *testing.T) {
	m := model3() // populations: 10000, 100, 1000
	orders := m.BestProbeOrders()
	// Arrivals on stream 0 probe 1 (pop 100) then 2 (pop 1000).
	if orders[0][0] != 1 || orders[0][1] != 2 {
		t.Errorf("orders[0] = %v", orders[0])
	}
	// Arrivals on stream 1 probe 2 then 0.
	if orders[1][0] != 2 || orders[1][1] != 0 {
		t.Errorf("orders[1] = %v", orders[1])
	}
}

func TestBestBeatsWorstProbeCost(t *testing.T) {
	m := model3()
	best := m.ProbeCost(m.BestProbeOrders())
	worst := m.ProbeCost(m.WorstProbeOrders())
	if best >= worst {
		t.Errorf("best cost %v >= worst %v", best, worst)
	}
	// Concrete check for stream 0's arrivals (rate 1000):
	// best: 100 + 100*.001*1000 = 200/arrival.
	// worst: 1000 + 1000*.001*100 = 1100/arrival.
	if best > worst/2 {
		t.Errorf("expected a large gap: best %v, worst %v", best, worst)
	}
}

func TestBestProbeOrderOptimalProperty(t *testing.T) {
	// Property: for 3-stream models, the ascending-population order has
	// cost <= both alternative orders for every arrival stream.
	f := func(r1, r2, r3, w1, w2, w3 uint16) bool {
		m := MultiJoinModel{
			Rates:     []float64{float64(r1%100) + 1, float64(r2%100) + 1, float64(r3%100) + 1},
			Windows:   []float64{float64(w1%20) + 1, float64(w2%20) + 1, float64(w3%20) + 1},
			MatchProb: 0.01,
		}
		best := m.ProbeCost(m.BestProbeOrders())
		perms := [][][]int{
			{{1, 2}, {0, 2}, {0, 1}},
			{{2, 1}, {2, 0}, {1, 0}},
		}
		for _, p := range perms {
			if m.ProbeCost(p) < best-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTrimWindowsForBudget(t *testing.T) {
	m := model3() // state = 10000 + 100 + 1000 = 11100
	if got := m.StateSize(); math.Abs(got-11100) > 1e-9 {
		t.Fatalf("StateSize = %v", got)
	}
	f := m.TrimWindowsForBudget(1110)
	if math.Abs(f-0.1) > 1e-9 {
		t.Errorf("scale = %v, want 0.1", f)
	}
	if got := m.StateSize(); math.Abs(got-1110) > 1e-6 {
		t.Errorf("trimmed state = %v", got)
	}
	// Already within budget: no-op.
	if f := m.TrimWindowsForBudget(1e9); f != 1 {
		t.Errorf("no-op trim = %v", f)
	}
}

func TestOutputPerProbeRatio(t *testing.T) {
	m := model3()
	want := m.OutputRate() / m.ProbeCost(m.BestProbeOrders())
	if got := m.OutputPerProbe(); math.Abs(got-want) > 1e-12 {
		t.Errorf("OutputPerProbe = %v, want %v", got, want)
	}
	if !(want > 0) {
		t.Errorf("figure of merit not positive: %v", want)
	}
}
