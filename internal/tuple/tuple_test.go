package tuple

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Int(-42), KindInt, "-42"},
		{Uint(42), KindUint, "42"},
		{Float(2.5), KindFloat, "2.5"},
		{String("hi"), KindString, "hi"},
		{Bool(true), KindBool, "true"},
		{Bool(false), KindBool, "false"},
		{IP(0x7f000001), KindIP, "127.0.0.1"},
		{Time(99), KindTime, "99"},
		{Null, KindNull, "NULL"},
	}
	for _, c := range cases {
		if c.v.Kind != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind, c.kind)
		}
		if got := c.v.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
	}
}

func TestValueNumericConversions(t *testing.T) {
	if n, ok := Float(3.9).AsInt(); !ok || n != 3 {
		t.Errorf("Float(3.9).AsInt() = %d, %v", n, ok)
	}
	if _, ok := String("x").AsInt(); ok {
		t.Error("String.AsInt() succeeded")
	}
	if _, ok := Int(-1).AsUint(); ok {
		t.Error("Int(-1).AsUint() succeeded")
	}
	if f, ok := Int(-7).AsFloat(); !ok || f != -7 {
		t.Errorf("Int(-7).AsFloat() = %v, %v", f, ok)
	}
	if b, ok := Bool(true).AsBool(); !ok || !b {
		t.Error("Bool(true).AsBool() failed")
	}
	if ns, ok := Time(123).AsTime(); !ok || ns != 123 {
		t.Error("Time(123).AsTime() failed")
	}
	if _, ok := Int(123).AsTime(); ok {
		t.Error("Int.AsTime() succeeded")
	}
}

func TestValueEqualCrossKind(t *testing.T) {
	if !Int(5).Equal(Uint(5)) {
		t.Error("Int(5) != Uint(5)")
	}
	if !Int(5).Equal(Float(5.0)) {
		t.Error("Int(5) != Float(5)")
	}
	if Int(5).Equal(Float(5.5)) {
		t.Error("Int(5) == Float(5.5)")
	}
	if Null.Equal(Null) {
		t.Error("NULL == NULL (SQL semantics: must be false)")
	}
	if String("a").Equal(String("b")) {
		t.Error("a == b")
	}
	if !String("a").Equal(String("a")) {
		t.Error("a != a")
	}
	if Int(-1).Equal(Uint(math.MaxUint64)) {
		t.Error("-1 == MaxUint64 (wraparound bug)")
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{Int(-1), Uint(0), -1},
		{Uint(0), Int(-1), 1},
		{Int(-5), Int(-2), -1},
		{Float(1.5), Int(2), -1},
		{Null, Int(0), -1},
		{Int(0), Null, 1},
		{Null, Null, 0},
		{String("a"), String("b"), -1},
		{Bool(false), Bool(true), -1},
		{Uint(math.MaxUint64), Int(math.MaxInt64), 1},
		// IPs order by address: group tables sorted on an IP key must
		// not degrade to map iteration order.
		{IP(0x0a000001), IP(0x0a000002), -1},
		{IP(0x0a000002), IP(0x0a000001), 1},
		{IP(0x0a000001), IP(0x0a000001), 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		return va.Compare(vb) == -vb.Compare(va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueHashEqualImpliesSameHash(t *testing.T) {
	f := func(n int64) bool {
		a, b, c := Int(n), Float(float64(n)), Uint(uint64(n))
		if float64(n) != math.Trunc(float64(n)) || int64(float64(n)) != n {
			return true // n not exactly representable; skip
		}
		if n >= 0 && a.Hash() != c.Hash() {
			return false
		}
		return a.Hash() == b.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	f := func(ip uint32) bool {
		got, err := ParseIPv4(FormatIPv4(ip))
		return err == nil && got == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	for _, bad := range []string{"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1..2.3"} {
		if _, err := ParseIPv4(bad); err == nil {
			t.Errorf("ParseIPv4(%q) succeeded", bad)
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range []Kind{KindNull, KindInt, KindUint, KindFloat, KindString, KindBool, KindIP, KindTime} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("blob"); err == nil {
		t.Error("ParseKind(blob) succeeded")
	}
	if k, err := ParseKind("integer"); err != nil || k != KindInt {
		t.Errorf("ParseKind(integer) = %v, %v", k, err)
	}
}

func TestSchemaBasics(t *testing.T) {
	s := NewSchema("Traffic",
		Field{Name: "time", Kind: KindTime, Ordering: true},
		Field{Name: "srcIP", Kind: KindIP},
		Field{Name: "len", Kind: KindUint},
	)
	if s.Arity() != 3 {
		t.Fatalf("arity = %d", s.Arity())
	}
	if i := s.Index("srcIP"); i != 1 {
		t.Errorf("Index(srcIP) = %d", i)
	}
	if i := s.Index("nope"); i != -1 {
		t.Errorf("Index(nope) = %d", i)
	}
	if i := s.OrderingIndex(); i != 0 {
		t.Errorf("OrderingIndex = %d", i)
	}
	if _, ok := s.Field("len"); !ok {
		t.Error("Field(len) missing")
	}
	want := "Traffic(time TIME ORDERING, srcIP IP, len UINT)"
	if s.String() != want {
		t.Errorf("String() = %q, want %q", s.String(), want)
	}
}

func TestSchemaProject(t *testing.T) {
	s := NewSchema("S", Field{Name: "a", Kind: KindInt}, Field{Name: "b", Kind: KindFloat})
	p, err := s.Project("b")
	if err != nil || p.Arity() != 1 || p.Fields[0].Name != "b" {
		t.Fatalf("Project(b) = %v, %v", p, err)
	}
	if _, err := s.Project("c"); err == nil {
		t.Error("Project(c) succeeded")
	}
}

func TestSchemaConcatDisambiguates(t *testing.T) {
	a := NewSchema("S", Field{Name: "tstmp", Kind: KindTime, Ordering: true}, Field{Name: "x", Kind: KindInt})
	b := NewSchema("A", Field{Name: "tstmp", Kind: KindTime, Ordering: true}, Field{Name: "y", Kind: KindInt})
	j := a.Concat(b)
	if j.Arity() != 4 {
		t.Fatalf("arity = %d", j.Arity())
	}
	if j.Index("A.tstmp") != 2 {
		t.Errorf("missing disambiguated field: %s", j)
	}
	if j.OrderingIndex() != 0 {
		t.Errorf("left ordering should survive, right must not: %s", j)
	}
}

func TestSchemaPanicsOnDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate field did not panic")
		}
	}()
	NewSchema("S", Field{Name: "a", Kind: KindInt}, Field{Name: "a", Kind: KindInt})
}

func TestTupleConcatTimestampAndClone(t *testing.T) {
	a := New(5, Int(1))
	b := New(9, Int(2))
	j := a.Concat(b)
	if j.Ts != 9 || len(j.Vals) != 2 {
		t.Fatalf("Concat = %v", j)
	}
	c := a.Clone()
	c.Vals[0] = Int(99)
	if v, _ := a.Vals[0].AsInt(); v != 1 {
		t.Error("Clone aliases values")
	}
}

func TestTupleKeyAndKeyEqual(t *testing.T) {
	a := New(0, Int(1), String("x"), Float(2))
	b := New(9, Int(1), String("x"), Float(3))
	if a.Key([]int{0, 1}) != b.Key([]int{0, 1}) {
		t.Error("equal keys hash differently")
	}
	if !a.KeyEqual(b, []int{0, 1}, []int{0, 1}) {
		t.Error("KeyEqual false on equal keys")
	}
	if a.KeyEqual(b, []int{2}, []int{2}) {
		t.Error("KeyEqual true on unequal keys")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	in := New(-77, Int(-5), Uint(5), Float(3.25), String("hello"), Bool(true), IP(0x01020304), Time(42), Null)
	buf := AppendEncode(nil, in)
	out, n, err := Decode(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("Decode: %v, n=%d len=%d", err, n, len(buf))
	}
	if out.Ts != in.Ts || len(out.Vals) != len(in.Vals) {
		t.Fatalf("round trip mismatch: %v vs %v", out, in)
	}
	for i := range in.Vals {
		if in.Vals[i].Kind != out.Vals[i].Kind {
			t.Errorf("val %d kind %v != %v", i, out.Vals[i].Kind, in.Vals[i].Kind)
		}
		if in.Vals[i].Kind != KindNull && !in.Vals[i].Equal(out.Vals[i]) {
			t.Errorf("val %d: %v != %v", i, out.Vals[i], in.Vals[i])
		}
	}
}

func TestCodecPropertyRoundTrip(t *testing.T) {
	f := func(ts int64, i int64, u uint64, fl float64, s string, b bool) bool {
		in := New(ts, Int(i), Uint(u), Float(fl), String(s), Bool(b))
		buf := AppendEncode(nil, in)
		out, n, err := Decode(buf)
		if err != nil || n != len(buf) || out.Ts != ts {
			return false
		}
		for k := range in.Vals {
			if in.Vals[k].Kind != out.Vals[k].Kind {
				return false
			}
		}
		gs, _ := out.Vals[3].AsString()
		gf := out.Vals[2].Fl()
		return gs == s && (gf == fl || (math.IsNaN(gf) && math.IsNaN(fl)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCodecTruncation(t *testing.T) {
	buf := AppendEncode(nil, New(1, Int(7), String("abcdef")))
	for i := 0; i < len(buf); i++ {
		if _, _, err := Decode(buf[:i]); err == nil {
			t.Errorf("Decode of %d-byte prefix succeeded", i)
		}
	}
}

func TestDecodeChecked(t *testing.T) {
	s := NewSchema("S", Field{Name: "a", Kind: KindInt}, Field{Name: "b", Kind: KindString})
	good := AppendEncode(nil, New(1, Int(1), String("x")))
	if _, _, err := DecodeChecked(good, s); err != nil {
		t.Errorf("good tuple rejected: %v", err)
	}
	badArity := AppendEncode(nil, New(1, Int(1)))
	if _, _, err := DecodeChecked(badArity, s); err == nil {
		t.Error("bad arity accepted")
	}
	badKind := AppendEncode(nil, New(1, Int(1), Int(2)))
	if _, _, err := DecodeChecked(badKind, s); err == nil {
		t.Error("bad kind accepted")
	}
	withNull := AppendEncode(nil, New(1, Null, String("x")))
	if _, _, err := DecodeChecked(withNull, s); err != nil {
		t.Errorf("NULL rejected: %v", err)
	}
}

func TestMemSize(t *testing.T) {
	small := New(0, Int(1)).MemSize()
	big := New(0, Int(1), String("this string occupies space")).MemSize()
	if big <= small {
		t.Errorf("MemSize not monotone: %d <= %d", big, small)
	}
}
