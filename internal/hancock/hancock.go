// Package hancock is the Hancock substrate (slides 6-8, 49): a
// stream-in relation-out signature system for transactional call-detail
// streams. It provides the callRec_t data model, a synthetic CDR
// generator with fraud injection (substituting for AT&T's proprietary
// call streams, DESIGN.md §2), the iterate/event signature-program
// paradigm of slide 8, blend-based signature evolution, and a
// block-oriented persistent signature store whose I/O behaviour the
// tutorial repeatedly emphasizes (slides 6, 21, 56).
package hancock

import (
	"math/rand"
	"sort"

	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

// CDR is the logical call record (slide 7's callRec_t).
type CDR struct {
	Origin       uint64 // calling line number
	Dialed       uint64
	ConnectTime  int64 // virtual ns
	Duration     int64 // seconds
	IsIncomplete bool
	IsIntl       bool
	IsTollFree   bool
}

// Schema renders CDRs as stream tuples for the query layer.
func Schema(name string) *tuple.Schema {
	return tuple.NewSchema(name,
		tuple.Field{Name: "connectTime", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "origin", Kind: tuple.KindUint},
		tuple.Field{Name: "dialed", Kind: tuple.KindUint},
		tuple.Field{Name: "duration", Kind: tuple.KindInt},
		tuple.Field{Name: "isIncomplete", Kind: tuple.KindBool, Bounded: true},
		tuple.Field{Name: "isIntl", Kind: tuple.KindBool, Bounded: true},
		tuple.Field{Name: "isTollFree", Kind: tuple.KindBool, Bounded: true},
	)
}

// Tuple converts a CDR to a stream tuple.
func (c *CDR) Tuple() *tuple.Tuple {
	return tuple.New(c.ConnectTime,
		tuple.Time(c.ConnectTime), tuple.Uint(c.Origin), tuple.Uint(c.Dialed),
		tuple.Int(c.Duration), tuple.Bool(c.IsIncomplete),
		tuple.Bool(c.IsIntl), tuple.Bool(c.IsTollFree))
}

// GenConfig parameterizes the CDR generator.
type GenConfig struct {
	Seed  int64
	Lines int // caller population
	// CallsPerLinePerDay is the mean; per-line rates are heavy-tailed.
	CallsPerLinePerDay float64
	// FraudLines lists line indexes whose behaviour shifts abruptly
	// mid-trace (international call bursts), the pattern the fraud
	// detector must catch (slide 6).
	FraudLines []int
	// FraudStartDay is the day fraud behaviour begins.
	FraudStartDay int
}

// Day is one virtual day in timestamp units.
const Day = 24 * 3600 * stream.Second

// GenerateDay synthesizes one day of CDRs, time-ordered.
func GenerateDay(cfg GenConfig, day int) []*CDR {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(day)*1009))
	fraud := make(map[int]bool, len(cfg.FraudLines))
	for _, l := range cfg.FraudLines {
		fraud[l] = true
	}
	var out []*CDR
	base := int64(day) * Day
	for line := 0; line < cfg.Lines; line++ {
		// Heavy-tailed per-line call volume, stable across days: a
		// line's habitual rate is part of its identity (the signature
		// assumes behavioural stability, slide 6).
		lineRng := rand.New(rand.NewSource(cfg.Seed*7919 + int64(line)))
		mean := cfg.CallsPerLinePerDay * (0.2 + lineRng.ExpFloat64())
		n := int(mean)
		if rng.Float64() < mean-float64(n) {
			n++
		}
		isFraud := fraud[line] && day >= cfg.FraudStartDay
		if isFraud {
			n += 20 + rng.Intn(20) // burst of activity
		}
		for k := 0; k < n; k++ {
			c := &CDR{
				Origin:      uint64(line),
				Dialed:      uint64(rng.Intn(cfg.Lines * 10)),
				ConnectTime: base + rng.Int63n(Day),
				Duration:    int64(30 + rng.Intn(600)),
			}
			switch {
			case isFraud && rng.Float64() < 0.7:
				c.IsIntl = true
				c.Duration = int64(600 + rng.Intn(3600))
			case rng.Float64() < 0.05:
				c.IsIntl = true
			case rng.Float64() < 0.15:
				c.IsTollFree = true
			}
			if rng.Float64() < 0.03 {
				c.IsIncomplete = true
			}
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ConnectTime < out[j].ConnectTime })
	return out
}

// Source adapts a day's CDRs to a stream source.
func Source(cdrs []*CDR) stream.Source {
	tuples := make([]*tuple.Tuple, len(cdrs))
	for i, c := range cdrs {
		tuples[i] = c.Tuple()
	}
	return stream.FromTuples(Schema("Calls"), tuples...)
}

// Signature is a per-line behavioural profile: the evolving state the
// Hancock program of slide 8 maintains. All rates are blended
// exponentially (slide 8's blend()).
type Signature struct {
	OutTF    float64 // toll-free seconds/day
	OutIntl  float64 // international seconds/day
	Calls    float64 // calls/day
	AvgDur   float64 // mean duration
	Days     int32   // observations blended in
	_padding int32
}

// Blend folds one day's observation into the signature with weight
// alpha (slide 8: "us.outTF = blend(cumSec.outTF, us.outTF)").
func Blend(alpha, today, sig float64) float64 {
	return alpha*today + (1-alpha)*sig
}

// DayStats is one line's raw activity for a day.
type DayStats struct {
	TFSeconds   float64
	IntlSeconds float64
	Calls       float64
	DurSum      float64
}

// Update blends a day of activity into the signature.
func (s *Signature) Update(alpha float64, d DayStats) {
	if s.Days == 0 {
		// First observation: adopt wholesale rather than blending with
		// the zero signature.
		s.OutTF = d.TFSeconds
		s.OutIntl = d.IntlSeconds
		s.Calls = d.Calls
		if d.Calls > 0 {
			s.AvgDur = d.DurSum / d.Calls
		}
		s.Days = 1
		return
	}
	s.OutTF = Blend(alpha, d.TFSeconds, s.OutTF)
	s.OutIntl = Blend(alpha, d.IntlSeconds, s.OutIntl)
	s.Calls = Blend(alpha, d.Calls, s.Calls)
	if d.Calls > 0 {
		s.AvgDur = Blend(alpha, d.DurSum/d.Calls, s.AvgDur)
	}
	s.Days++
}

// FraudScore measures how anomalous today's activity is against the
// signature: a ratio-based deviation over international volume and call
// count.
func (s *Signature) FraudScore(d DayStats) float64 {
	if s.Days == 0 {
		return 0
	}
	score := 0.0
	if d.IntlSeconds > 0 {
		score += d.IntlSeconds / (s.OutIntl + 60)
	}
	if d.Calls > 0 {
		score += d.Calls / (s.Calls + 1)
	}
	return score
}

// Events is the event-clause hierarchy of a Hancock signature program
// (slide 8): line_begin / call / line_end over a stream sorted by
// origin.
type Events struct {
	LineBegin func(line uint64)
	Call      func(c *CDR)
	LineEnd   func(line uint64)
}

// Iterate runs a signature program over one day's calls: the Hancock
// paradigm "iterate (over calls sortedby origin filteredby
// noIncomplete) { event ... }". The calls are re-sorted by origin (the
// multiple-passes-on-block processing of slide 21), the filter drops
// records (e.g. incomplete calls), and events fire per line group.
func Iterate(calls []*CDR, filter func(*CDR) bool, ev Events) {
	sorted := make([]*CDR, 0, len(calls))
	for _, c := range calls {
		if filter == nil || filter(c) {
			sorted = append(sorted, c)
		}
	}
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Origin < sorted[j].Origin })
	var cur uint64
	started := false
	for _, c := range sorted {
		if !started || c.Origin != cur {
			if started && ev.LineEnd != nil {
				ev.LineEnd(cur)
			}
			cur = c.Origin
			started = true
			if ev.LineBegin != nil {
				ev.LineBegin(cur)
			}
		}
		if ev.Call != nil {
			ev.Call(c)
		}
	}
	if started && ev.LineEnd != nil {
		ev.LineEnd(cur)
	}
}

// CollectDayStats runs the canonical signature program, producing
// per-line day statistics (the cumSec accumulation of slide 8).
func CollectDayStats(calls []*CDR) map[uint64]DayStats {
	stats := make(map[uint64]DayStats)
	var cum DayStats
	var line uint64
	Iterate(calls,
		func(c *CDR) bool { return !c.IsIncomplete }, // filteredby noIncomplete
		Events{
			LineBegin: func(l uint64) { line = l; cum = DayStats{} },
			Call: func(c *CDR) {
				cum.Calls++
				cum.DurSum += float64(c.Duration)
				if c.IsTollFree {
					cum.TFSeconds += float64(c.Duration)
				}
				if c.IsIntl {
					cum.IntlSeconds += float64(c.Duration)
				}
			},
			LineEnd: func(l uint64) { stats[line] = cum },
		})
	return stats
}
