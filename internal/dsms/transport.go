// Package dsms implements the tutorial's end-to-end 3-level
// architecture (slides 14-15, 54-55): resource-limited low-level DSMS
// nodes at the observation points, a resource-rich high-level node, and
// a DBMS behind it. It provides query decomposition across levels
// (slide 54), a TCP transport for distributed evaluation (slide 55),
// and the adaptive-filter protocol for continuous distributed
// aggregation [OJW03].
package dsms

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

// Frame format: uvarint length + tuple encoding. A zero-length frame
// marks end-of-stream. In batch mode (both ends constructed with
// NewBatchWriter/NewBatchReader) the frame body is the schema-coded
// batch encoding of tuple.AppendEncodeBatch instead; the two modes
// share the framing but are not self-discriminating, so both ends must
// agree — exactly like they already must agree on the schema.

// Writer sends tuples over a connection.
type Writer struct {
	mu     sync.Mutex
	w      *bufio.Writer
	c      io.Closer
	buf    []byte
	schema *tuple.Schema // non-nil = batch mode
	Sent   int64
	Bytes  int64
}

// NewWriter wraps a connection for tuple transport.
func NewWriter(conn net.Conn) *Writer {
	return &Writer{w: bufio.NewWriter(conn), c: conn}
}

// NewBatchWriter wraps a connection for schema-coded batch transport
// (frame body = batch encoding). The peer must use NewBatchReader with
// the same schema.
func NewBatchWriter(conn net.Conn, schema *tuple.Schema) *Writer {
	return &Writer{w: bufio.NewWriter(conn), c: conn, schema: schema}
}

// writeFrameLocked writes one length-prefixed frame from w.buf.
func (w *Writer) writeFrameLocked() error {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(w.buf)))
	if _, err := w.w.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := w.w.Write(w.buf); err != nil {
		return err
	}
	w.Bytes += int64(n + len(w.buf))
	return nil
}

// Send transmits one tuple.
func (w *Writer) Send(t *tuple.Tuple) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.schema != nil {
		var one [1]*tuple.Tuple
		one[0] = t
		return w.sendBatchLocked(one[:])
	}
	w.buf = tuple.AppendEncode(w.buf[:0], t)
	if err := w.writeFrameLocked(); err != nil {
		return err
	}
	w.Sent++
	return nil
}

// SendBatch transmits a batch of tuples under one lock acquisition. In
// batch mode the whole batch becomes a single schema-coded frame with
// one length header; in per-tuple mode it degrades to one frame per
// tuple (still one lock).
func (w *Writer) SendBatch(tuples []*tuple.Tuple) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.schema != nil {
		return w.sendBatchLocked(tuples)
	}
	for _, t := range tuples {
		w.buf = tuple.AppendEncode(w.buf[:0], t)
		if err := w.writeFrameLocked(); err != nil {
			return err
		}
		w.Sent++
	}
	return nil
}

func (w *Writer) sendBatchLocked(tuples []*tuple.Tuple) error {
	if len(tuples) == 0 {
		return nil
	}
	var err error
	w.buf, err = tuple.AppendEncodeBatch(w.buf[:0], w.schema, tuples)
	if err != nil {
		return err
	}
	if err := w.writeFrameLocked(); err != nil {
		return err
	}
	w.Sent += int64(len(tuples))
	return nil
}

// Close sends the end-of-stream frame and closes the connection.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	var hdr [1]byte // uvarint(0)
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	return w.c.Close()
}

// Flush pushes buffered frames to the wire.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.w.Flush()
}

// Reader receives tuples from a connection and implements
// stream.Source. Only an explicit zero-length frame is a clean
// end-of-stream: a connection that dies mid-stream (bare EOF, truncated
// frame, decode failure) sets Err, which callers must check via Close
// (or Err directly) after Next returns false — otherwise a dropped peer
// is indistinguishable from completion.
type Reader struct {
	r        *bufio.Reader
	c        io.Closer
	schema   *tuple.Schema
	buf      []byte
	done     bool
	batch    bool
	arena    *tuple.Arena
	pending  []*tuple.Tuple // decoded tuples of the current batch frame
	pos      int
	Received int64
	Err      error
	// ZeroCopy (batch mode) reuses the decode arena across frames:
	// tuples handed out become invalid once the next frame is read. Set
	// it only when every tuple is consumed before the next Next/NextBatch
	// call, e.g. when feeding a pipeline that copies or finishes with
	// elements batch by batch.
	ZeroCopy bool
}

// NewReader wraps a connection; the schema describes the expected
// tuples (checked on decode).
func NewReader(conn net.Conn, schema *tuple.Schema) *Reader {
	return &Reader{r: bufio.NewReader(conn), c: conn, schema: schema}
}

// NewBatchReader wraps a connection whose peer sends schema-coded batch
// frames (NewBatchWriter).
func NewBatchReader(conn net.Conn, schema *tuple.Schema) *Reader {
	return &Reader{r: bufio.NewReader(conn), c: conn, schema: schema, batch: true}
}

// Schema implements stream.Source.
func (r *Reader) Schema() *tuple.Schema { return r.schema }

// readFrame reads the next frame body into r.buf. It returns false at
// end-of-stream or error (recorded in r.Err).
func (r *Reader) readFrame() bool {
	ln, err := binary.ReadUvarint(r.r)
	if err != nil {
		// EOF before the end-of-stream frame means the peer died
		// mid-stream; never report it as clean completion.
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return r.fail(fmt.Errorf("dsms: read frame header: %w", err))
	}
	if ln == 0 { // explicit end-of-stream frame
		r.done = true
		r.c.Close()
		return false
	}
	if ln > maxFramePayload {
		// A corrupt length varint must not drive an unbounded
		// allocation below.
		return r.fail(fmt.Errorf("dsms: frame length %d exceeds limit %d", ln, maxFramePayload))
	}
	if uint64(cap(r.buf)) < ln {
		r.buf = make([]byte, ln)
	}
	r.buf = r.buf[:ln]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		return r.fail(fmt.Errorf("dsms: read frame body: %w", err))
	}
	return true
}

// fillBatch reads and decodes the next batch frame into r.pending.
func (r *Reader) fillBatch() bool {
	if !r.readFrame() {
		return false
	}
	if r.ZeroCopy && r.arena != nil {
		r.arena.Reset()
	} else {
		r.arena = &tuple.Arena{}
	}
	ts, _, err := tuple.DecodeBatchInto(r.buf, r.schema, r.arena)
	if err != nil {
		return r.fail(fmt.Errorf("dsms: %w", err))
	}
	r.pending, r.pos = ts, 0
	return true
}

// Next implements stream.Source.
func (r *Reader) Next() (stream.Element, bool) {
	if r.pos < len(r.pending) {
		t := r.pending[r.pos]
		r.pos++
		r.Received++
		return stream.Tup(t), true
	}
	if r.done {
		return stream.Element{}, false
	}
	if r.batch {
		for r.fillBatch() {
			if r.pos < len(r.pending) {
				t := r.pending[r.pos]
				r.pos++
				r.Received++
				return stream.Tup(t), true
			}
			// empty batch frame: keep reading
		}
		return stream.Element{}, false
	}
	if !r.readFrame() {
		return stream.Element{}, false
	}
	t, _, err := tuple.DecodeChecked(r.buf, r.schema)
	if err != nil {
		return stream.Element{}, r.fail(fmt.Errorf("dsms: %w", err))
	}
	r.Received++
	return stream.Tup(t), true
}

// NextBatch implements stream.BulkSource: it appends up to max elements
// to dst. The first tuple may block on the network; after that it only
// drains what is already decoded or buffered, so a slow peer yields
// short batches instead of stalling the pipeline.
func (r *Reader) NextBatch(dst []stream.Element, max int) ([]stream.Element, bool) {
	appended := 0
	for appended < max {
		if r.pos < len(r.pending) {
			n := len(r.pending) - r.pos
			if n > max-appended {
				n = max - appended
			}
			for _, t := range r.pending[r.pos : r.pos+n] {
				dst = append(dst, stream.Tup(t))
			}
			r.pos += n
			r.Received += int64(n)
			appended += n
			continue
		}
		if r.done {
			return dst, false
		}
		// Block for the first frame of the call; afterwards only
		// continue while bytes are already buffered. ZeroCopy stops at
		// one frame per call — reading another would reset the arena
		// under the elements already appended to dst.
		if appended > 0 && (r.ZeroCopy || r.r.Buffered() == 0) {
			return dst, true
		}
		if r.batch {
			if !r.fillBatch() {
				return dst, false
			}
		} else {
			if !r.readFrame() {
				return dst, false
			}
			t, _, err := tuple.DecodeChecked(r.buf, r.schema)
			if err != nil {
				r.fail(fmt.Errorf("dsms: %w", err))
				return dst, false
			}
			dst = append(dst, stream.Tup(t))
			r.Received++
			appended++
		}
	}
	return dst, r.pos < len(r.pending) || !r.done
}

// fail records the first transport error and ends the stream; it
// returns false for use in Next's return.
func (r *Reader) fail(err error) bool {
	r.done = true
	r.c.Close()
	if r.Err == nil {
		r.Err = err
	}
	return false
}

// Close releases the connection and reports the first transport error,
// distinguishing a dropped peer from a clean end-of-stream. Safe to
// call after draining.
func (r *Reader) Close() error {
	if !r.done {
		r.done = true
		r.c.Close()
	}
	return r.Err
}
