package experiments

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"

	"streamdb/internal/agg"
	"streamdb/internal/ckpt"
	"streamdb/internal/exec"
	"streamdb/internal/expr"
	"streamdb/internal/ops"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
	"streamdb/internal/window"
)

// E22CrashRecovery is the chaos experiment for durable operator-state
// checkpoints (DESIGN.md §11): a stateful two-operator query — window
// join feeding a pane-based sliding aggregation — is killed at three
// random points mid-stream and restarted from the latest committed
// checkpoint each time. A kill abandons the entire in-memory graph,
// which is durability-equivalent to SIGKILL: only the fsync'd
// checkpoint store survives. Recovery restores both operators' state,
// fast-forwards the sources to the cut, and wraps the sink in a
// RecoverySink that suppresses the replayed overlap (outputs delivered
// after the last checkpoint but before the kill). The claim under test
// is exactly-once output: across all crashes the delivered sequence
// must be byte-identical to an uninterrupted reference run — replayed
// duplicates counted and dropped, zero rows lost.
func E22CrashRecovery(scale Scale, dir string) *Table {
	t := &Table{
		ID:     "E22",
		Title:  "crash recovery from durable checkpoints: exactly-once output under injected kills",
		Header: []string{"phase", "elems", "outputs", "epoch", "dupes", "lost", "exact"},
	}

	n := scale.N(40000)
	input := genJoinInput(303, n, 200)
	a, b := joinSchemas()
	var lefts, rights []stream.Element
	for _, in := range input {
		if in.port == 0 {
			lefts = append(lefts, stream.Tup(in.t))
		} else {
			rights = append(rights, stream.Tup(in.t))
		}
	}

	// The same stateful plan for every incarnation: restore requires an
	// identical graph shape.
	win := window.Time(200000, 200000)
	build := func(sink func(stream.Element)) *exec.Graph {
		j, err := ops.NewWindowJoin("j", a, b,
			ops.JoinConfig{Window: win, Method: ops.JoinHash, Key: []int{1}},
			ops.JoinConfig{Window: win, Method: ops.JoinHash, Key: []int{1}},
			nil)
		if err != nil {
			panic(err)
		}
		jout := j.OutSchema()
		var aggs []agg.Spec
		for _, name := range []string{"count", "sum"} {
			f, err := agg.Lookup(name, false)
			if err != nil {
				panic(err)
			}
			s := agg.Spec{Fn: f, Name: name}
			if name != "count" {
				s.Arg = expr.MustColumn(jout, "B.k")
			}
			aggs = append(aggs, s)
		}
		gb, err := agg.NewGroupBy("g", jout,
			[]expr.Expr{expr.MustColumn(jout, "k")}, []string{"k"},
			aggs, window.Time(800000, 200000), nil)
		if err != nil {
			panic(err)
		}
		g := exec.NewGraph(sink)
		sl := g.AddSource(stream.FromElements(a, lefts...))
		sr := g.AddSource(stream.FromElements(b, rights...))
		jid := g.AddOp(j)
		gid := g.AddOp(gb)
		for _, err := range []error{
			g.ConnectSource(sl, jid, 0),
			g.ConnectSource(sr, jid, 1),
			g.Connect(jid, gid, 0),
			g.ConnectOut(gid),
		} {
			if err != nil {
				panic(err)
			}
		}
		return g
	}

	// Reference: one uninterrupted run.
	var baseCount int64
	var baseFP []byte
	ref := build(func(e stream.Element) {
		baseCount++
		if !e.IsPunct() {
			baseFP = tuple.AppendEncode(baseFP, e.Tuple)
		}
	})
	ref.Run(-1)
	if err := ref.Err(); err != nil {
		panic(err)
	}
	t.AddRow("reference", n, baseCount, "-", 0, 0, true)

	// Chaos: checkpoint every `every` consumed source elements, kill at
	// three pseudo-random points (never aligned with a checkpoint cut —
	// progress since the last commit must actually be lost and replayed).
	store, err := ckpt.Open(dir)
	if err != nil {
		panic(err)
	}
	every := int64(n/17 + 1)
	rng := rand.New(rand.NewSource(99))
	kills := make([]int64, 0, 3)
	for len(kills) < 3 {
		p := int64(n)/10 + rng.Int63n(int64(n)*8/10)
		if p%every != 0 {
			kills = append(kills, p)
		}
	}
	sort.Slice(kills, func(i, j int) bool { return kills[i] < kills[j] })

	var out []byte       // rows delivered externally, exactly once
	var delivered int64  // sink outputs delivered externally (incl. punctuations)
	var totalDupes int64 // replayed outputs suppressed across all restarts
	var epoch int64
	ki, attempt := 0, 0
	for {
		attempt++
		latest, err := store.Latest()
		if err != nil {
			panic(err)
		}
		deliver := func(e stream.Element) {
			delivered++
			if !e.IsPunct() {
				out = tuple.AppendEncode(out, e.Tuple)
			}
		}
		var g *exec.Graph
		var rs *ckpt.RecoverySink
		var start, startOut int64
		if latest == nil {
			g = build(deliver)
		} else {
			// Outputs race ahead of checkpoints: everything delivered
			// past the committed OutSeq will be re-emitted on replay and
			// must be suppressed for exactly-once delivery.
			rs = ckpt.NewRecoverySink(deliver, delivered-latest.OutSeq)
			g = build(rs.Push)
			if err := g.RestoreFrom(latest); err != nil {
				panic(err)
			}
			start = int64(latest.Meta["src0"] + latest.Meta["src1"])
			startOut = latest.OutSeq
			epoch = latest.Epoch
		}
		// Logical output position: committed cut plus everything this
		// incarnation has emitted (including suppressed duplicates).
		logical := func() int64 {
			if rs != nil {
				return startOut + rs.Dupes() + rs.Delivered()
			}
			return delivered
		}
		consumed := start
		killed := false
		for consumed < int64(n) {
			target := int64(n)
			if next := (consumed/every + 1) * every; next < target {
				target = next
			}
			if ki < len(kills) && kills[ki] < target {
				target = kills[ki]
			}
			g.Pump(target - consumed)
			consumed = target
			if ki < len(kills) && consumed == kills[ki] {
				// Crash: the in-memory graph is abandoned wholesale —
				// operator state, source positions, everything since the
				// last committed checkpoint is gone.
				ki++
				killed = true
				break
			}
			if consumed%every == 0 && consumed < int64(n) {
				epoch++
				if err := g.Checkpoint(store, epoch, logical(), nil); err != nil {
					panic(err)
				}
			}
		}
		if killed {
			d := int64(0)
			if rs != nil {
				d = rs.Dupes()
			}
			totalDupes += d
			t.AddRow(fmt.Sprintf("kill %d", attempt), consumed, logical(), epoch, d, "-", "-")
			continue
		}
		g.Finish()
		if err := g.Err(); err != nil {
			panic(err)
		}
		d := int64(0)
		if rs != nil {
			d = rs.Dupes()
		}
		totalDupes += d
		lost := baseCount - delivered
		exact := lost == 0 && bytes.Equal(out, baseFP)
		t.AddRow("recovered", n, delivered, epoch, totalDupes, lost, exact)
		break
	}
	t.Notes = append(t.Notes,
		"a kill abandons the whole in-memory graph — durability-equivalent to SIGKILL; only the fsync'd checkpoint store survives",
		"each restart restores join + aggregation state from the latest committed epoch and fast-forwards the sources to the cut",
		"dupes = outputs delivered after a checkpoint but before a kill, re-emitted on replay and suppressed by the RecoverySink",
		"exact = stitched output byte-identical to the uninterrupted reference run with zero rows lost")
	return t
}
