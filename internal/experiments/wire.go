package experiments

import (
	"fmt"
	"net"
	"sync"
	"time"

	"streamdb/internal/dsms"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

// E21TransportWire is the wire-protocol ablation for the distributed
// tier: the same netmon tuple stream shipped low->high over loopback
// with (a) the v2 per-tuple self-describing frames and (b) the v3
// schema-coded batch frames at increasing batch sizes. The claim under
// test is the Gigascope/GS-tool transfer argument: once both ends share
// the schema, the wire does not need to re-describe every value, and
// batching amortizes framing, locking, and checksums — so bytes/tuple
// and CPU/tuple both drop while the delivered tuple sequence stays
// byte-identical.
func E21TransportWire(scale Scale) *Table {
	t := &Table{
		ID:    "E21",
		Title: "wire protocol ablation: v2 per-tuple vs v3 schema-coded batches",
		Header: []string{"wire", "batch", "tuples", "bytes/tuple", "ktuples/s",
			"speedup", "exact"},
	}

	n := scale.N(100000)
	sent := make([]*tuple.Tuple, 0, n)
	src := stream.Limit(stream.NewTrafficStream(7, 100000, 2000), n)
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		if !e.IsPunct() {
			sent = append(sent, e.Tuple)
		}
	}
	baseline := fingerprintTuples(sent)

	configs := []struct {
		wire  string
		batch int
	}{
		{"v2", 1}, {"v3", 1}, {"v3", 16}, {"v3", 64}, {"v3", 256},
	}
	var v2PerTuple float64
	for _, c := range configs {
		elapsed, bytes, got := runWireSession(sent, c.wire == "v3", c.batch)
		perTuple := elapsed.Seconds() / float64(len(sent))
		if c.wire == "v2" {
			v2PerTuple = perTuple
		}
		t.AddRow(c.wire, c.batch, len(sent),
			float64(bytes)/float64(len(sent)),
			float64(len(sent))/elapsed.Seconds()/1e3,
			fmt.Sprintf("%.1fx", v2PerTuple/perTuple),
			string(fingerprintTuples(got)) == string(baseline))
	}
	t.Notes = append(t.Notes,
		"same loopback session protocol for every row (acks, CRCs, exactly-once); only the framing differs",
		"v3 batch=1 isolates the schema-coded encoding; larger batches add framing/lock/CRC amortization",
		"server decodes batches into pooled arenas: steady-state decode allocates nothing per tuple")
	return t
}

// runWireSession ships the tuples over one loopback session and returns
// the wall-clock send time, wire bytes written, and the delivered
// tuples.
func runWireSession(sent []*tuple.Tuple, v3 bool, batch int) (elapsed time.Duration, bytes int64, got []*tuple.Tuple) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer ln.Close()
	sch := stream.TrafficSchema("Traffic")
	srv := dsms.NewSessionServer(ln, sch, dsms.SessionConfig{
		IdleTimeout: 10 * time.Second,
	})
	var mu sync.Mutex
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- srv.Serve(1, func(_ string, tp *tuple.Tuple) {
			mu.Lock()
			got = append(got, tp)
			mu.Unlock()
		})
	}()

	cfg := dsms.ReconnectConfig{
		StreamID: "e21",
		Dial:     func() (net.Conn, error) { return net.Dial("tcp", ln.Addr().String()) },
		AckEvery: 4096,
		Timeout:  10 * time.Second,
	}
	if v3 {
		cfg.Schema = sch
		cfg.WireBatch = batch
		cfg.FlushInterval = -1
	}
	w, err := dsms.NewReconnectWriter(cfg)
	if err != nil {
		panic(err)
	}
	start := time.Now()
	for _, tp := range sent {
		if err := w.Send(tp); err != nil {
			panic(err)
		}
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	elapsed = time.Since(start)
	if err := <-serveDone; err != nil {
		panic(err)
	}
	return elapsed, w.Stats().Bytes, got
}

// fingerprintTuples encodes tuples in order into one byte string.
func fingerprintTuples(ts []*tuple.Tuple) []byte {
	var fp []byte
	for _, tp := range ts {
		fp = tuple.AppendEncode(fp, tp)
	}
	return fp
}
