package expr

import (
	"math"
	"strings"
	"sync"

	"streamdb/internal/tuple"
)

// Func is a pure scalar function. The tutorial's query examples rely on
// several: GSQL's external functions like f(destIP,'peerid.tbl')
// (slide 37), payload keyword matching for P2P detection (slide 10), and
// time bucketing (slide 13).
type Func struct {
	Name   string
	Arity  int // -1 for variadic
	Result tuple.Kind
	Apply  func(args []tuple.Value) tuple.Value
}

var (
	funcMu  sync.RWMutex
	funcReg = map[string]*Func{}
)

// RegisterFunc installs a function in the global registry, mirroring
// GSQL's "external functions" hook (slide 13). Re-registration replaces.
func RegisterFunc(f *Func) {
	funcMu.Lock()
	defer funcMu.Unlock()
	funcReg[strings.ToLower(f.Name)] = f
}

// LookupFunc finds a registered function by case-insensitive name.
func LookupFunc(name string) (*Func, bool) {
	funcMu.RLock()
	defer funcMu.RUnlock()
	f, ok := funcReg[strings.ToLower(name)]
	return f, ok
}

// LookupTable is the interface external lookup tables implement for the
// lookup() function (GSQL's hand-coded views / external relations).
type LookupTable interface {
	Lookup(key tuple.Value) (tuple.Value, bool)
}

var (
	tableMu sync.RWMutex
	tables  = map[string]LookupTable{}
)

// RegisterTable installs a named lookup table usable from queries as
// lookup(expr, 'name'), the analogue of f(destIP, 'peerid.tbl').
func RegisterTable(name string, t LookupTable) {
	tableMu.Lock()
	defer tableMu.Unlock()
	tables[name] = t
}

func nullIf(cond bool, v tuple.Value) tuple.Value {
	if cond {
		return tuple.Null
	}
	return v
}

func init() {
	RegisterFunc(&Func{Name: "abs", Arity: 1, Result: tuple.KindFloat,
		Apply: func(a []tuple.Value) tuple.Value {
			f, ok := a[0].AsFloat()
			return nullIf(!ok, tuple.Float(math.Abs(f)))
		}})
	RegisterFunc(&Func{Name: "sqrt", Arity: 1, Result: tuple.KindFloat,
		Apply: func(a []tuple.Value) tuple.Value {
			f, ok := a[0].AsFloat()
			return nullIf(!ok || f < 0, tuple.Float(math.Sqrt(f)))
		}})
	RegisterFunc(&Func{Name: "floor", Arity: 1, Result: tuple.KindInt,
		Apply: func(a []tuple.Value) tuple.Value {
			f, ok := a[0].AsFloat()
			return nullIf(!ok, tuple.Int(int64(math.Floor(f))))
		}})
	RegisterFunc(&Func{Name: "len", Arity: 1, Result: tuple.KindInt,
		Apply: func(a []tuple.Value) tuple.Value {
			s, ok := a[0].AsString()
			return nullIf(!ok, tuple.Int(int64(len(s))))
		}})
	RegisterFunc(&Func{Name: "lower", Arity: 1, Result: tuple.KindString,
		Apply: func(a []tuple.Value) tuple.Value {
			s, ok := a[0].AsString()
			return nullIf(!ok, tuple.String(strings.ToLower(s)))
		}})
	RegisterFunc(&Func{Name: "upper", Arity: 1, Result: tuple.KindString,
		Apply: func(a []tuple.Value) tuple.Value {
			s, ok := a[0].AsString()
			return nullIf(!ok, tuple.String(strings.ToUpper(s)))
		}})
	// contains(payload, 'keyword') — the Gigascope P2P detector's core:
	// "search for P2P related keywords within each TCP datagram".
	RegisterFunc(&Func{Name: "contains", Arity: 2, Result: tuple.KindBool,
		Apply: func(a []tuple.Value) tuple.Value {
			s, ok1 := a[0].AsString()
			sub, ok2 := a[1].AsString()
			return nullIf(!ok1 || !ok2, tuple.Bool(strings.Contains(s, sub)))
		}})
	// contains_any(payload, 'k1|k2|k3') — multi-keyword variant.
	RegisterFunc(&Func{Name: "contains_any", Arity: 2, Result: tuple.KindBool,
		Apply: func(a []tuple.Value) tuple.Value {
			s, ok1 := a[0].AsString()
			subs, ok2 := a[1].AsString()
			if !ok1 || !ok2 {
				return tuple.Null
			}
			for _, sub := range strings.Split(subs, "|") {
				if sub != "" && strings.Contains(s, sub) {
					return tuple.Bool(true)
				}
			}
			return tuple.Bool(false)
		}})
	// tb(time, width) — explicit time-bucket function, equivalent to the
	// GSQL idiom "group by time/60 as tb" (slides 13, 37).
	RegisterFunc(&Func{Name: "tb", Arity: 2, Result: tuple.KindInt,
		Apply: func(a []tuple.Value) tuple.Value {
			t, ok1 := a[0].AsInt()
			w, ok2 := a[1].AsInt()
			return nullIf(!ok1 || !ok2 || w <= 0, tuple.Int(t/max64(w, 1)))
		}})
	// lookup(key, 'table') — GSQL external-table function.
	RegisterFunc(&Func{Name: "lookup", Arity: 2, Result: tuple.KindString,
		Apply: func(a []tuple.Value) tuple.Value {
			name, ok := a[1].AsString()
			if !ok {
				return tuple.Null
			}
			tableMu.RLock()
			tbl, found := tables[name]
			tableMu.RUnlock()
			if !found {
				return tuple.Null
			}
			v, hit := tbl.Lookup(a[0])
			return nullIf(!hit, v)
		}})
	// ip4(a) — render an IP as dotted quad for output.
	RegisterFunc(&Func{Name: "ip4", Arity: 1, Result: tuple.KindString,
		Apply: func(a []tuple.Value) tuple.Value {
			u, ok := a[0].AsUint()
			return nullIf(!ok, tuple.String(tuple.FormatIPv4(uint32(u))))
		}})
	// coalesce(...) — first non-NULL argument.
	RegisterFunc(&Func{Name: "coalesce", Arity: -1, Result: tuple.KindNull,
		Apply: func(a []tuple.Value) tuple.Value {
			for _, v := range a {
				if !v.IsNull() {
					return v
				}
			}
			return tuple.Null
		}})
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
