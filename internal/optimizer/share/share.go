// Package share implements multi-query processing on streams
// (slide 45) as a batch-native shared execution layer: one scan of a
// stream serves every standing query that reads it. Registered
// predicates are canonicalized (expr.Canonical) and deduplicated into a
// conjunct trie; each trie node compiles to one selection-vector kernel
// (expr.CompileKernel) evaluated once per column batch, with AND
// predicates that share a leading conjunct refining their parent's
// selection vector instead of rescanning. Query fan-out is per-query
// selection vectors over the same refcounted batch — zero data movement
// per subscriber. SharedWindowJoin applies the same idea to sliding-
// window joins: one physical join sized to the largest registered
// window, its output batches routed by timestamp-distance kernels
// [HFAE03].
//
// SharedSelect and SharedWindowJoin implement ops.Operator and
// ops.BatchOperator, so they drop into exec graphs on both the row and
// columnar lanes. Registration and removal are safe under live traffic:
// every entry point takes the node's mutex, so register/drop
// interleaves between elements/batches and never disturbs co-resident
// queries.
package share

import (
	"fmt"
	"sort"
	"sync"

	"streamdb/internal/expr"
	"streamdb/internal/ops"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
	"streamdb/internal/window"
)

// Sinks is one query's output surface on a shared node. Row is
// required: it receives the query's row-lane output and every
// punctuation. Col, when set, is the columnar fast lane: it receives
// the query's batch output as a selection-vector view over the shared
// batch. The view is valid only for the duration of the call — the
// shared node releases it afterwards — so a sink that keeps it must
// Retain (and copy before the next batch arrives, since the selection
// storage is reused).
type Sinks struct {
	Row ops.Emit
	Col func(*stream.Batch)
}

// prefixNode is one conjunct in the shared predicate trie. A query
// whose canonical predicate is the conjunct list c1..ck subscribes at
// the node reached by walking c1..ck from the root; every prefix shared
// with another query is evaluated once for both.
type prefixNode struct {
	conj     expr.Expr
	key      string
	kern     expr.ColumnKernel // compiled lazily, per node
	parent   *prefixNode
	children []*prefixNode
	qids     []int // queries whose full predicate ends here, ascending

	// Per-batch scratch, reset after fan-out.
	sel       []int32
	view      *stream.Batch
	rows      []stream.Element
	rowsValid bool
}

func (n *prefixNode) child(c expr.Expr) *prefixNode {
	key := c.String()
	for _, ch := range n.children {
		if ch.key == key {
			return ch
		}
	}
	ch := &prefixNode{conj: c, key: key, parent: n}
	n.children = append(n.children, ch)
	return ch
}

type subscriber struct {
	id    int
	sinks Sinks
	node  *prefixNode
	nconj int64 // conjuncts in the full predicate: the naive-cost weight
}

// SharedSelect evaluates the predicates of every registered query over
// one stream with shared work: each distinct canonical conjunct is
// evaluated once per tuple (row lane) or once per batch (columnar
// lane), and results fan out to subscribers as refcounted
// selection-vector views. Per-query output is byte-identical to a
// per-query ops.Select deployment.
type SharedSelect struct {
	name string
	sch  *tuple.Schema

	mu       sync.Mutex
	root     prefixNode
	subs     []*subscriber // ascending by id
	byID     map[int]*subscriber
	nextID   int
	distinct int   // trie nodes holding >= 1 subscription
	nodes    int   // total trie nodes (kernels compiled)
	perTuple int64 // sum over live queries of their conjunct count
	evals    int64
	naive    int64 // evaluations an unshared deployment would perform

	matchBuf []int
}

// NewSharedSelect builds an empty shared selection over the schema.
func NewSharedSelect(name string, sch *tuple.Schema) *SharedSelect {
	return &SharedSelect{name: name, sch: sch, byID: make(map[int]*subscriber)}
}

// Register adds a query with its predicate and row sink, returning the
// query ID. IDs are assigned in ascending registration order and never
// reused.
func (s *SharedSelect) Register(pred expr.Expr, sink ops.Emit) (int, error) {
	return s.RegisterSinks(pred, Sinks{Row: sink})
}

// RegisterSinks adds a query with a full sink surface. The predicate is
// canonicalized before dedupe, so commuted conjunctions and mirrored
// comparisons share kernels with their equivalents. Safe to call while
// traffic flows: the query takes effect at the next element/batch
// boundary and co-resident queries are undisturbed.
func (s *SharedSelect) RegisterSinks(pred expr.Expr, sk Sinks) (int, error) {
	if pred.Kind() != tuple.KindBool {
		return 0, fmt.Errorf("share: predicate must be boolean")
	}
	if sk.Row == nil {
		return 0, fmt.Errorf("share: a row sink is required (Col is the optional fast lane)")
	}
	conjs := expr.Conjuncts(expr.Canonical(pred))
	s.mu.Lock()
	defer s.mu.Unlock()
	n := &s.root
	for _, c := range conjs {
		before := len(n.children)
		n = n.child(c)
		if len(n.parent.children) > before {
			s.nodes++
		}
	}
	if len(n.qids) == 0 {
		s.distinct++
	}
	qid := s.nextID
	s.nextID++
	sub := &subscriber{id: qid, sinks: sk, node: n, nconj: int64(len(conjs))}
	n.qids = append(n.qids, qid)
	s.subs = append(s.subs, sub)
	s.byID[qid] = sub
	s.perTuple += sub.nconj
	return qid, nil
}

// Drop removes a query. Trie nodes that no longer serve any
// subscription are pruned (and their kernels with them). Reports
// whether the ID was live. Safe under live traffic.
func (s *SharedSelect) Drop(qid int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	sub, ok := s.byID[qid]
	if !ok {
		return false
	}
	delete(s.byID, qid)
	i := sort.Search(len(s.subs), func(i int) bool { return s.subs[i].id >= qid })
	s.subs = append(s.subs[:i], s.subs[i+1:]...)
	n := sub.node
	for j, id := range n.qids {
		if id == qid {
			n.qids = append(n.qids[:j], n.qids[j+1:]...)
			break
		}
	}
	if len(n.qids) == 0 {
		s.distinct--
	}
	for n != &s.root && len(n.qids) == 0 && len(n.children) == 0 {
		p := n.parent
		for j, ch := range p.children {
			if ch == n {
				p.children = append(p.children[:j], p.children[j+1:]...)
				break
			}
		}
		s.nodes--
		n = p
	}
	s.perTuple -= sub.nconj
	return true
}

// Name implements ops.Operator.
func (s *SharedSelect) Name() string { return s.name }

// OutSchema implements ops.Operator. The shared node's per-query output
// carries the input schema; it emits nothing on its graph output edge.
func (s *SharedSelect) OutSchema() *tuple.Schema { return s.sch }

// NumInputs implements ops.Operator.
func (s *SharedSelect) NumInputs() int { return 1 }

// Flush implements ops.Operator; selection is stateless.
func (s *SharedSelect) Flush(ops.Emit) {}

// MemSize implements ops.Operator: trie scratch only.
func (s *SharedSelect) MemSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return (s.nodes + 1) * 96
}

// Push implements ops.Operator: the row lane. Punctuations fan out to
// every query's row sink in ascending query-ID order; data tuples walk
// the trie (each conjunct evaluated once, children skipped when a
// prefix fails) and are delivered to matching queries in ascending
// query-ID order.
func (s *SharedSelect) Push(_ int, e stream.Element, _ ops.Emit) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e.IsPunct() {
		for _, sub := range s.subs {
			sub.sinks.Row(e)
		}
		return
	}
	s.naive += s.perTuple
	matched := s.collect(&s.root, e.Tuple, s.matchBuf[:0])
	sort.Ints(matched)
	for _, qid := range matched {
		s.byID[qid].sinks.Row(e)
	}
	s.matchBuf = matched[:0]
}

// collect walks the trie for one tuple: a failing conjunct prunes its
// whole subtree, a passing terminal contributes its subscribers.
func (s *SharedSelect) collect(n *prefixNode, t *tuple.Tuple, matched []int) []int {
	for _, c := range n.children {
		s.evals++
		if !expr.EvalBool(c.conj, t) {
			continue
		}
		if len(c.qids) > 0 {
			matched = append(matched, c.qids...)
		}
		matched = s.collect(c, t, matched)
	}
	return matched
}

// ProcessBatch implements ops.BatchOperator: the columnar lane. Every
// trie node's kernel runs once over the batch — children take the
// parent's selection vector as input, so shared AND prefixes refine
// instead of rescanning — and each query receives a view of the same
// retained batch under its node's selection vector, in ascending
// query-ID order. Queries without a Col sink get the view's rows
// materialized once per node and replayed.
func (s *SharedSelect) ProcessBatch(_ int, b *stream.Batch, _ ops.EmitBatch, _ ops.Emit) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.naive += int64(b.N()) * s.perTuple
	s.evalChildren(&s.root, b, b.Sel)
	for _, sub := range s.subs {
		n := sub.node
		if len(n.sel) == 0 {
			continue
		}
		if n.view == nil {
			n.view = b.WithSel(n.sel)
		}
		if sub.sinks.Col != nil {
			sub.sinks.Col(n.view)
			continue
		}
		if !n.rowsValid {
			n.rows = n.view.AppendRows(n.rows[:0])
			n.rowsValid = true
		}
		for _, e := range n.rows {
			sub.sinks.Row(e)
		}
	}
	resetScratch(&s.root)
	b.Release()
}

// emptySel is the non-nil empty selection: kernel inputs distinguish
// nil (all rows) from empty (no rows), so an empty parent selection
// must never be passed down as nil.
var emptySel = []int32{}

func (s *SharedSelect) evalChildren(n *prefixNode, b *stream.Batch, sel []int32) {
	rows := int64(len(sel))
	if sel == nil {
		rows = int64(b.Rows())
	}
	for _, c := range n.children {
		s.evals += rows
		if c.kern == nil {
			c.kern = expr.CompileKernel(c.conj, s.sch.Arity())
		}
		c.sel = c.kern(b.Cols, b.Ts, sel, c.sel[:0])
		if len(c.children) > 0 {
			// Children refine this node's selection vector.
			ps := c.sel
			if ps == nil {
				ps = emptySel
			}
			s.evalChildren(c, b, ps)
		}
	}
}

func resetScratch(n *prefixNode) {
	if n.view != nil {
		n.view.Release()
		n.view = nil
	}
	n.rowsValid = false
	for _, c := range n.children {
		resetScratch(c)
	}
}

// Stats reports (shared evaluations performed, evaluations a per-query
// deployment would have performed). Both count conjunct evaluations ×
// tuples: the shared figure sums each trie node's actual input rows,
// the naive figure charges every query its full conjunct count per
// tuple.
func (s *SharedSelect) Stats() (shared, unshared int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evals, s.naive
}

// EvalStats mirrors Stats for the execution engine's NodeStats
// (SharedEvals / NaiveEvals).
func (s *SharedSelect) EvalStats() (shared, naive int64) { return s.Stats() }

// DistinctPredicates reports how many distinct full predicates are
// evaluated after canonical dedupe.
func (s *SharedSelect) DistinctPredicates() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.distinct
}

// KernelNodes reports the trie size: the number of compiled conjunct
// kernels. With common-prefix factoring this is at most — and for
// overlapping AND sets strictly less than — the total conjunct count of
// the distinct predicates.
func (s *SharedSelect) KernelNodes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nodes
}

// Queries reports the number of live registrations.
func (s *SharedSelect) Queries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// JoinQuery is one query's window requirement on a shared join.
type JoinQuery struct {
	// Window is the query's join window in timestamp units: a result
	// pair (a, b) belongs to the query iff |a.Ts - b.Ts| <= Window.
	Window int64
	// Sink receives the query's row-lane results and punctuations.
	Sink ops.Emit
	// Col, when set, receives columnar results as selection-vector
	// views over the shared output batch (same contract as Sinks.Col).
	Col func(*stream.Batch)
}

type joinSub struct {
	id    int
	q     JoinQuery
	group *winGroup
}

// winGroup shares distance routing between queries with equal windows:
// one compiled `dist <= w` kernel, one selection vector, one view.
type winGroup struct {
	win  int64
	kern expr.ColumnKernel
	refs int

	sel       []int32
	view      *stream.Batch
	rows      []stream.Element
	rowsValid bool
}

// SharedWindowJoin executes one physical sliding-window equijoin sized
// for the largest registered window and routes each result to exactly
// the queries whose window covers the pair's timestamp distance
// [HFAE03]. One state store and one probe per tuple serve all queries.
// On the columnar lane the PR 8 batch join produces output batches and
// routing happens per batch: pair distances are computed once into a
// scratch column, and per distinct window a compiled timestamp-distance
// kernel (`dist <= w`) selects that window's result span, fanned out as
// views over the shared output batch.
type SharedWindowJoin struct {
	name   string
	join   *ops.WindowJoin
	maxWin int64
	lIdx   int // index of left timestamp in the join output
	rIdx   int

	mu     sync.Mutex
	subs   []*joinSub // ascending by id
	byID   map[int]*joinSub
	nextID int
	groups map[int64]*winGroup
	routed int64

	dist     []tuple.Value
	distCols [][]tuple.Value
}

// NewSharedWindowJoin builds a shared join on the given key columns.
// queries must be non-empty; the physical window is sized to the
// maximum query window (later Register calls must fit under it).
func NewSharedWindowJoin(name string, left, right *tuple.Schema, leftKey, rightKey []int, queries []JoinQuery) (*SharedWindowJoin, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("share: no queries registered")
	}
	maxWin := int64(0)
	for _, q := range queries {
		if q.Window <= 0 {
			return nil, fmt.Errorf("share: query window must be positive")
		}
		if q.Window > maxWin {
			maxWin = q.Window
		}
	}
	j, err := ops.NewWindowJoin(name, left, right,
		ops.JoinConfig{Window: window.Tumbling(maxWin), Method: ops.JoinHash, Key: leftKey},
		ops.JoinConfig{Window: window.Tumbling(maxWin), Method: ops.JoinHash, Key: rightKey},
		nil)
	if err != nil {
		return nil, err
	}
	lOrd := left.OrderingIndex()
	rOrd := right.OrderingIndex()
	if lOrd < 0 || rOrd < 0 {
		return nil, fmt.Errorf("share: both inputs need ordering attributes")
	}
	s := &SharedWindowJoin{
		name: name, join: j, maxWin: maxWin,
		lIdx: lOrd, rIdx: left.Arity() + rOrd,
		byID:   make(map[int]*joinSub),
		groups: make(map[int64]*winGroup),
	}
	s.distCols = [][]tuple.Value{nil}
	for _, q := range queries {
		if _, err := s.register(q); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Register adds a query at runtime. Its window must fit the physical
// join (<= the max window the join was sized for). Safe under live
// traffic; co-resident queries are undisturbed.
func (s *SharedWindowJoin) Register(q JoinQuery) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.register(q)
}

func (s *SharedWindowJoin) register(q JoinQuery) (int, error) {
	if q.Window <= 0 {
		return 0, fmt.Errorf("share: query window must be positive")
	}
	if q.Window > s.maxWin {
		return 0, fmt.Errorf("share: window %d exceeds the physical join window %d", q.Window, s.maxWin)
	}
	if q.Sink == nil {
		return 0, fmt.Errorf("share: a row sink is required")
	}
	g := s.groups[q.Window]
	if g == nil {
		g = &winGroup{win: q.Window}
		s.groups[q.Window] = g
	}
	g.refs++
	qid := s.nextID
	s.nextID++
	sub := &joinSub{id: qid, q: q, group: g}
	s.subs = append(s.subs, sub)
	s.byID[qid] = sub
	return qid, nil
}

// Drop removes a query; its window group (and routing kernel) is freed
// when the last subscriber leaves. Reports whether the ID was live.
func (s *SharedWindowJoin) Drop(qid int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	sub, ok := s.byID[qid]
	if !ok {
		return false
	}
	delete(s.byID, qid)
	i := sort.Search(len(s.subs), func(i int) bool { return s.subs[i].id >= qid })
	s.subs = append(s.subs[:i], s.subs[i+1:]...)
	sub.group.refs--
	if sub.group.refs == 0 {
		delete(s.groups, sub.group.win)
	}
	return true
}

// Name implements ops.Operator.
func (s *SharedWindowJoin) Name() string { return s.name }

// OutSchema implements ops.Operator.
func (s *SharedWindowJoin) OutSchema() *tuple.Schema { return s.join.OutSchema() }

// NumInputs implements ops.Operator.
func (s *SharedWindowJoin) NumInputs() int { return 2 }

// MemSize implements ops.Operator.
func (s *SharedWindowJoin) MemSize() int { return s.join.MemSize() }

// Push implements ops.Operator: one element into the shared join
// (port 0 = left), results routed row-at-a-time by timestamp distance.
func (s *SharedWindowJoin) Push(port int, e stream.Element, _ ops.Emit) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.join.Push(port, e, s.routeRow)
}

// Flush implements ops.Operator.
func (s *SharedWindowJoin) Flush(ops.Emit) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.join.Flush(s.routeRow)
}

// ProcessBatch implements ops.BatchOperator: the batch flows through
// the columnar join; its output batches are distance-routed per window
// group. Results the join's plan demotes to the row path arrive through
// routeRow, preserving exact row/batch interleaving per query.
func (s *SharedWindowJoin) ProcessBatch(port int, b *stream.Batch, _ ops.EmitBatch, _ ops.Emit) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.join.ProcessBatch(port, b, s.routeBatch, s.routeRow)
}

func (s *SharedWindowJoin) routeRow(out stream.Element) {
	if out.IsPunct() {
		for _, sub := range s.subs {
			sub.q.Sink(out)
		}
		return
	}
	lts, _ := out.Tuple.Vals[s.lIdx].AsTime()
	rts, _ := out.Tuple.Vals[s.rIdx].AsTime()
	dist := lts - rts
	if dist < 0 {
		dist = -dist
	}
	for _, sub := range s.subs {
		if dist <= sub.q.Window {
			s.routed++
			sub.q.Sink(out)
		}
	}
}

func (s *SharedWindowJoin) routeBatch(ob *stream.Batch) {
	rows := ob.Rows()
	if cap(s.dist) < rows {
		s.dist = make([]tuple.Value, rows)
	}
	s.dist = s.dist[:rows]
	lcol, rcol := ob.Cols[s.lIdx], ob.Cols[s.rIdx]
	for r := 0; r < rows; r++ {
		lts, _ := lcol[r].AsTime()
		rts, _ := rcol[r].AsTime()
		d := lts - rts
		if d < 0 {
			d = -d
		}
		s.dist[r] = tuple.Int(d)
	}
	s.distCols[0] = s.dist
	for _, g := range s.groups {
		if g.kern == nil {
			pred := &expr.Bin{Op: expr.OpLe,
				L: &expr.Col{Index: 0, Name: "dist", Typ: tuple.KindInt},
				R: expr.Constant(tuple.Int(g.win))}
			g.kern = expr.CompileKernel(pred, 1)
		}
		g.sel = g.kern(s.distCols, ob.Ts, ob.Sel, g.sel[:0])
	}
	for _, sub := range s.subs {
		g := sub.group
		if len(g.sel) == 0 {
			continue
		}
		s.routed += int64(len(g.sel))
		if g.view == nil {
			g.view = ob.WithSel(g.sel)
		}
		if sub.q.Col != nil {
			sub.q.Col(g.view)
			continue
		}
		if !g.rowsValid {
			g.rows = g.view.AppendRows(g.rows[:0])
			g.rowsValid = true
		}
		for _, e := range g.rows {
			sub.q.Sink(e)
		}
	}
	for _, g := range s.groups {
		if g.view != nil {
			g.view.Release()
			g.view = nil
		}
		g.rowsValid = false
	}
	ob.Release()
}

// Stats reports (probes by the one shared join, results routed to
// queries). An unshared deployment performs len(queries) times the
// probes.
func (s *SharedWindowJoin) Stats() (probes, routed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.join.Probes(), s.routed
}

// EvalStats mirrors Stats for the execution engine's NodeStats: shared
// work is the one join's probes, naive work the per-query estimate.
func (s *SharedWindowJoin) EvalStats() (shared, naive int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	probes := s.join.Probes()
	total := 0.0
	for _, sub := range s.subs {
		total += float64(probes) * float64(sub.q.Window) / float64(s.maxWin)
	}
	return probes, int64(total)
}

// Queries reports the number of live registrations.
func (s *SharedWindowJoin) Queries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// UnsharedProbeEstimate returns the probes a per-query deployment would
// have spent, assuming each query's window holds a proportional share
// of the tuples the maximal window holds.
func (s *SharedWindowJoin) UnsharedProbeEstimate() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0.0
	for _, sub := range s.subs {
		total += float64(s.join.Probes()) * float64(sub.q.Window) / float64(s.maxWin)
	}
	return total
}
