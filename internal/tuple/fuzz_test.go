package tuple

import (
	"testing"
)

// valueEqual is Equal plus NULL==NULL, for round-trip comparisons (SQL
// Equal treats NULL as unequal to everything).
func valueEqual(a, b Value) bool {
	if a.Kind == KindNull || b.Kind == KindNull {
		return a.Kind == b.Kind
	}
	return a.Kind == b.Kind && a.Equal(b)
}

func FuzzDecode(f *testing.F) {
	// Seed corpus: valid encodings of representative tuples, plus known
	// tricky shapes (empty, truncated, huge-length string).
	seeds := []*Tuple{
		New(0),
		New(1, Int(-5), Uint(7), Bool(true)),
		New(1<<40, Time(1<<40), IP(0x7f000001), Float(3.25), String("payload")),
		New(-9, Null, String(""), Null),
	}
	for _, t := range seeds {
		f.Add(AppendEncode(nil, t))
	}
	f.Add([]byte{})
	f.Add([]byte{0x02, 0x01, byte(KindString), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f, 'x'})
	f.Fuzz(func(t *testing.T, data []byte) {
		tp, n, err := Decode(data)
		if err != nil {
			return
		}
		if n < 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Semantic round trip: re-encoding the decoded tuple and decoding
		// again must reproduce it (the input itself may use non-minimal
		// varints, so byte equality is not required).
		re := AppendEncode(nil, tp)
		tp2, n2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if n2 != len(re) {
			t.Fatalf("re-decode consumed %d of %d bytes", n2, len(re))
		}
		if tp2.Ts != tp.Ts || len(tp2.Vals) != len(tp.Vals) {
			t.Fatalf("round trip changed tuple: %v vs %v", tp, tp2)
		}
		for i := range tp.Vals {
			if !valueEqual(tp.Vals[i], tp2.Vals[i]) {
				t.Fatalf("round trip changed value %d: %v vs %v", i, tp.Vals[i], tp2.Vals[i])
			}
		}
	})
}

// fuzzSchemas are the schemas FuzzDecodeBatch exercises, selected by the
// first input byte so the fuzzer can explore all of them.
var fuzzSchemas = []*Schema{
	NewSchema("Traffic",
		Field{Name: "time", Kind: KindTime, Ordering: true},
		Field{Name: "srcIP", Kind: KindIP},
		Field{Name: "destIP", Kind: KindIP},
		Field{Name: "protocol", Kind: KindUint},
		Field{Name: "length", Kind: KindUint},
	),
	NewSchema("Strings",
		Field{Name: "time", Kind: KindTime, Ordering: true},
		Field{Name: "host", Kind: KindString},
		Field{Name: "score", Kind: KindFloat},
	),
	NewSchema("Empty"),
	NewSchema("Wide",
		Field{Name: "a", Kind: KindInt}, Field{Name: "b", Kind: KindInt},
		Field{Name: "c", Kind: KindBool}, Field{Name: "d", Kind: KindFloat},
		Field{Name: "e", Kind: KindString}, Field{Name: "f", Kind: KindUint},
		Field{Name: "g", Kind: KindIP}, Field{Name: "h", Kind: KindTime},
		Field{Name: "i", Kind: KindInt},
	),
}

func FuzzDecodeBatch(f *testing.F) {
	seed0, err := AppendEncodeBatch(nil, fuzzSchemas[0], []*Tuple{
		New(100, Time(100), IP(1), IP(2), Uint(6), Uint(40)),
		New(90, Time(90), Null, IP(3), Uint(17), Null),
	})
	if err != nil {
		f.Fatal(err)
	}
	seed1, err := AppendEncodeBatch(nil, fuzzSchemas[1], []*Tuple{
		New(5, Time(5), String("a"), Float(1.5)),
		New(5, Time(5), Null, Null),
		New(-3, Time(-3), String(""), Float(-0)),
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(byte(0), seed0)
	f.Add(byte(1), seed1)
	f.Add(byte(2), []byte{0})
	f.Add(byte(3), []byte{0x05, 0x00, 0x00})
	f.Add(byte(0), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, which byte, data []byte) {
		s := fuzzSchemas[int(which)%len(fuzzSchemas)]
		var a Arena
		tuples, n, err := DecodeBatchInto(data, s, &a)
		if err != nil {
			if len(a.vals) != 0 || len(a.tuples) != 0 || len(a.ptrs) != 0 {
				t.Fatal("arena not rolled back on error")
			}
			return
		}
		if n < 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Semantic round trip through the batch codec. NULL values decode
		// as Null regardless of the bitmap-vs-KindNull-field path, so the
		// re-encode is always legal.
		re, err := AppendEncodeBatch(nil, s, tuples)
		if err != nil {
			t.Fatalf("re-encode of decoded batch failed: %v", err)
		}
		var a2 Arena
		tuples2, n2, err := DecodeBatchInto(re, s, &a2)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if n2 != len(re) || len(tuples2) != len(tuples) {
			t.Fatalf("round trip changed batch shape: %d/%d tuples, %d/%d bytes",
				len(tuples2), len(tuples), n2, len(re))
		}
		for i := range tuples {
			if tuples2[i].Ts != tuples[i].Ts {
				t.Fatalf("tuple %d ts changed: %d vs %d", i, tuples[i].Ts, tuples2[i].Ts)
			}
			for j := range tuples[i].Vals {
				if !valueEqual(tuples[i].Vals[j], tuples2[i].Vals[j]) {
					t.Fatalf("tuple %d field %d changed: %v vs %v",
						i, j, tuples[i].Vals[j], tuples2[i].Vals[j])
				}
			}
		}
	})
}
