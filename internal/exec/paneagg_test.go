package exec

// Equivalence tests for pane-based aggregation under both engines: the
// pane path (and its partial-replicated form) must be byte-identical to
// the legacy per-window path for sliding, tumbling, landmark, and
// partitioned window specs across every PR 2 RunOptions combination,
// with holistic aggregates automatically routed to the legacy path.

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"streamdb/internal/agg"
	"streamdb/internal/expr"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
	"streamdb/internal/window"
)

var paneSch = tuple.NewSchema("A",
	tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
	tuple.Field{Name: "g", Kind: tuple.KindInt},
	tuple.Field{Name: "v", Kind: tuple.KindFloat},
)

func paneRow(ts, grp int64, v float64) stream.Element {
	return stream.Tup(tuple.New(ts, tuple.Time(ts), tuple.Int(grp), tuple.Float(v)))
}

// paneStream is a mostly-ordered stream of dyadic values (quarters, so
// float sums are exact under any association) with stragglers and
// periodic progress punctuations. Stragglers stay within the watermark's
// current slide-aligned pane: a tuple landing behind an already-closed
// window re-opens it, and the grouping of such re-emissions is
// inherently arrival-order-dependent under replication (each replica
// re-emits at its own next advance), so only the single-copy engines
// promise byte equivalence for those — see TestPaneDeepStragglers.
func paneStream(n int, deepStragglers bool) []stream.Element {
	rng := rand.New(rand.NewSource(1234))
	var elems []stream.Element
	ts, maxTs := int64(0), int64(0)
	for i := 0; i < n; i++ {
		ts = maxTs + rng.Int63n(5) - 1
		if !deepStragglers && ts < (maxTs/20)*20 {
			ts = (maxTs / 20) * 20
		}
		if ts < 0 {
			ts = 0
		}
		if ts > maxTs {
			maxTs = ts
		}
		elems = append(elems, paneRow(ts, rng.Int63n(4), float64(rng.Int63n(200))/4))
		if i%53 == 52 {
			elems = append(elems, stream.Punct(stream.ProgressPunct(maxTs, 0, tuple.Time(maxTs))))
		}
	}
	if deepStragglers {
		// Tuples far behind the watermark, re-opening closed windows.
		for _, back := range []int64{50, 130, 310} {
			elems = append(elems, paneRow(maxTs-back, 1, 0.25))
		}
		elems = append(elems, paneRow(maxTs, 2, 0.5))
	}
	return elems
}

func paneAggs(t *testing.T, names []string) []agg.Spec {
	t.Helper()
	var aggs []agg.Spec
	for _, name := range names {
		f, err := agg.Lookup(name, false)
		if err != nil {
			t.Fatal(err)
		}
		s := agg.Spec{Fn: f, Name: name}
		if name != "count" {
			s.Arg = expr.MustColumn(paneSch, "v")
		}
		aggs = append(aggs, s)
	}
	return aggs
}

func paneGroupBy(t *testing.T, spec window.Spec, names []string, panes bool) *agg.GroupBy {
	t.Helper()
	gb, err := agg.NewGroupBy("q", paneSch,
		[]expr.Expr{expr.MustColumn(paneSch, "g")}, []string{"g"},
		paneAggs(t, names), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !panes {
		gb.DisablePanes()
	}
	return gb
}

// runPaneGraph drives source -> GroupBy -> sink; opts == nil uses the
// deterministic single-threaded Run.
func runPaneGraph(t *testing.T, gb *agg.GroupBy, elems []stream.Element, opts *RunOptions) (NodeStats, []string) {
	t.Helper()
	var got []string
	g := NewGraph(func(e stream.Element) {
		if e.IsPunct() {
			got = append(got, fmt.Sprintf("punct@%d", e.Punct.Ts))
			return
		}
		got = append(got, fmt.Sprintf("%d|%s", e.Tuple.Ts, e.Tuple.String()))
	})
	src := g.AddSource(stream.FromElements(paneSch, elems...))
	n := g.AddOp(gb)
	if err := g.ConnectSource(src, n, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.ConnectOut(n); err != nil {
		t.Fatal(err)
	}
	if opts == nil {
		g.Run(-1)
	} else {
		g.RunWith(-1, *opts)
	}
	return g.Stats(n), got
}

func sameSeq(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d outputs, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: output %d = %s, want %s", label, i, got[i], want[i])
		}
	}
}

// The full PR 2 RunOptions matrix (batch sizes, replication with the
// order-restoring merge, partial replication with a combiner) must
// reproduce the legacy deterministic run byte-for-byte on every window
// shape.
func TestPaneEquivalenceRunMatrix(t *testing.T) {
	partitioned := window.Time(80, 20)
	partitioned.PartitionBy = []string{"g"}
	cases := []struct {
		label     string
		spec      window.Spec
		aggs      []string
		wantPanes bool
	}{
		{"sliding", window.Time(80, 20), []string{"sum", "count", "avg"}, true},
		{"deep sliding", window.Time(320, 20), []string{"sum", "count"}, true},
		{"tumbling", window.Tumbling(40), []string{"sum", "count", "min", "max"}, true},
		{"landmark", window.Landmark(40), []string{"sum", "count"}, false},
		{"partitioned", partitioned, []string{"sum", "count"}, true},
		{"holistic median", window.Time(80, 20), []string{"median", "sum"}, false},
	}
	matrix := []RunOptions{
		{BatchSize: 7},
		{BatchSize: 64},
		{BatchSize: 256},
		{BatchSize: 64, Parallelism: 4, ForceParallelism: true},
		{BatchSize: 1, Parallelism: 2, ForceParallelism: true},
	}
	elems := paneStream(4000, false)
	for _, c := range cases {
		gbLegacy := paneGroupBy(t, c.spec, c.aggs, false)
		_, base := runPaneGraph(t, gbLegacy, elems, nil)
		if len(base) == 0 {
			t.Fatalf("%s: legacy baseline produced nothing", c.label)
		}
		gbPane := paneGroupBy(t, c.spec, c.aggs, true)
		if gbPane.UsesPanes() != c.wantPanes {
			t.Fatalf("%s: UsesPanes = %v, want %v", c.label, gbPane.UsesPanes(), c.wantPanes)
		}
		_, got := runPaneGraph(t, gbPane, elems, nil)
		sameSeq(t, c.label+"/Run", got, base)
		for _, o := range matrix {
			o := o
			gb := paneGroupBy(t, c.spec, c.aggs, true)
			st, got := runPaneGraph(t, gb, elems, &o)
			sameSeq(t, fmt.Sprintf("%s/%+v", c.label, o), got, base)
			if o.Parallelism > 1 && c.wantPanes && st.Replicas != o.Parallelism {
				t.Errorf("%s/%+v: Replicas = %d, want %d", c.label, o, st.Replicas, o.Parallelism)
			}
		}
	}
}

// Partial replication must merge correctly when HAVING filters the
// combined result (the filter must see merged totals, not per-replica
// partials).
func TestPanePartialReplicationHaving(t *testing.T) {
	having := func(out *tuple.Schema) (expr.Expr, error) {
		c, err := expr.Column(out, "count")
		if err != nil {
			return nil, err
		}
		return expr.NewBin(expr.OpGt, c, expr.Constant(tuple.Int(3)))
	}
	mk := func(panes bool) *agg.GroupBy {
		gb, err := agg.NewGroupBy("q", paneSch,
			[]expr.Expr{expr.MustColumn(paneSch, "g")}, []string{"g"},
			paneAggs(t, []string{"sum", "count"}), window.Time(80, 20), having)
		if err != nil {
			t.Fatal(err)
		}
		if !panes {
			gb.DisablePanes()
		}
		return gb
	}
	elems := paneStream(3000, false)
	_, base := runPaneGraph(t, mk(false), elems, nil)
	opts := RunOptions{BatchSize: 32, Parallelism: 3, ForceParallelism: true}
	_, got := runPaneGraph(t, mk(true), elems, &opts)
	sameSeq(t, "partial+having", got, base)
}

// Deep stragglers land behind already-closed windows and re-open them.
// The single-copy engines (deterministic Run and batched RunWith) must
// stay byte-identical to legacy; partial replication is excluded here
// because the grouping of late re-emissions depends on which replica's
// advance observes the straggler first.
func TestPaneDeepStragglers(t *testing.T) {
	elems := paneStream(2000, true)
	_, base := runPaneGraph(t, paneGroupBy(t, window.Time(80, 20), []string{"sum", "count"}, false), elems, nil)
	if len(base) == 0 {
		t.Fatal("legacy baseline produced nothing")
	}
	_, got := runPaneGraph(t, paneGroupBy(t, window.Time(80, 20), []string{"sum", "count"}, true), elems, nil)
	sameSeq(t, "deep/Run", got, base)
	for _, o := range []RunOptions{{BatchSize: 7}, {BatchSize: 64}, {BatchSize: 256}} {
		o := o
		_, got := runPaneGraph(t, paneGroupBy(t, window.Time(80, 20), []string{"sum", "count"}, true), elems, &o)
		sameSeq(t, fmt.Sprintf("deep/%+v", o), got, base)
	}
}

// The engine must cap replication width at GOMAXPROCS unless forced,
// and record the decision in NodeStats.Replicas.
func TestParallelismCappedAtGOMAXPROCS(t *testing.T) {
	elems := paneStream(500, false)
	run := func(opts RunOptions) NodeStats {
		gb := paneGroupBy(t, window.Time(80, 20), []string{"sum", "count"}, true)
		st, _ := runPaneGraph(t, gb, elems, &opts)
		return st
	}
	want := runtime.GOMAXPROCS(0)
	if want > 16 {
		want = 16
	}
	st := run(RunOptions{BatchSize: 64, Parallelism: 16})
	if st.Replicas != want {
		t.Errorf("capped Replicas = %d, want min(16, GOMAXPROCS)=%d", st.Replicas, want)
	}
	st = run(RunOptions{BatchSize: 64, Parallelism: 3, ForceParallelism: true})
	if st.Replicas != 3 {
		t.Errorf("forced Replicas = %d, want 3", st.Replicas)
	}
	st = run(RunOptions{BatchSize: 64})
	if st.Replicas != 1 {
		t.Errorf("unreplicated Replicas = %d, want 1", st.Replicas)
	}
}
