package rate

import (
	"math"
	"testing"
	"testing/quick"
)

// slide41Ops is the tutorial's worked example: a slow selective operator
// (service rate 50 tuples/sec, selectivity 0.1) and a very fast operator
// (selectivity 0.1) over a 500 tuples/sec stream.
func slide41Ops() []Op {
	return []Op{
		{Name: "slow", Sel: 0.1, Capacity: 50},
		{Name: "fast", Sel: 0.1, Capacity: math.Inf(1)},
	}
}

func TestSlide41ExactRates(t *testing.T) {
	ops := slide41Ops()
	// Plan A: slow first. 500 -> min(500,50)*0.1 = 5 -> fast: 0.5.
	planA := ChainOutput(500, []Op{ops[0], ops[1]})
	if math.Abs(planA-0.5) > 1e-9 {
		t.Errorf("slow-first output = %v, want 0.5", planA)
	}
	// Plan B: fast first. 500 -> 50 -> min(50,50)*0.1 = 5.
	planB := ChainOutput(500, []Op{ops[1], ops[0]})
	if math.Abs(planB-5) > 1e-9 {
		t.Errorf("fast-first output = %v, want 5", planB)
	}
	if planB/planA != 10 {
		t.Errorf("improvement factor = %v, want 10", planB/planA)
	}
}

func TestBestPicksFastFirst(t *testing.T) {
	best, err := Best(500, slide41Ops())
	if err != nil {
		t.Fatal(err)
	}
	names := best.Names(slide41Ops())
	if names[0] != "fast" || names[1] != "slow" {
		t.Errorf("best order = %v", names)
	}
	if math.Abs(best.Output-5) > 1e-9 {
		t.Errorf("best output = %v", best.Output)
	}
}

func TestEnumerateCountsPermutations(t *testing.T) {
	ops := []Op{
		{Name: "a", Sel: 0.5, Capacity: 100},
		{Name: "b", Sel: 0.5, Capacity: 100},
		{Name: "c", Sel: 0.5, Capacity: 100},
	}
	plans, err := Enumerate(10, ops)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 6 {
		t.Errorf("plans = %d, want 3! = 6", len(plans))
	}
	// Sorted descending by output.
	for i := 1; i < len(plans); i++ {
		if plans[i].Output > plans[i-1].Output+1e-12 {
			t.Error("plans not sorted by output")
		}
	}
}

func TestEnumerateValidation(t *testing.T) {
	if _, err := Enumerate(10, nil); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := Enumerate(10, make([]Op, 9)); err == nil {
		t.Error("oversized set accepted")
	}
	if _, err := Enumerate(10, []Op{{Sel: 2, Capacity: 1}}); err == nil {
		t.Error("bad selectivity accepted")
	}
	if _, err := Enumerate(10, []Op{{Sel: 0.5, Capacity: 0}}); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestLeastCostDivergesFromRateBased(t *testing.T) {
	// A selective-but-slow operator first minimizes downstream work
	// (classic cost) yet throttles output; rate-based prefers the
	// opposite order. Construct such a case: op X sel 0.01 capacity 60,
	// op Y sel 0.9 capacity 1000, input 500/s.
	ops := []Op{
		{Name: "X", Sel: 0.01, Capacity: 60},
		{Name: "Y", Sel: 0.9, Capacity: 1000},
	}
	rateBest, _ := Best(500, ops)
	costBest, _ := LeastCost(500, ops)
	if rateBest.Names(ops)[0] != "Y" {
		t.Errorf("rate-based order = %v, want Y first", rateBest.Names(ops))
	}
	if costBest.Names(ops)[0] != "X" {
		t.Errorf("least-cost order = %v, want X first", costBest.Names(ops))
	}
	if rateBest.Output <= costBest.Output {
		t.Errorf("rate-based output %v not better than least-cost %v",
			rateBest.Output, costBest.Output)
	}
}

func TestChainOutputUnderCapacityIsOrderInsensitive(t *testing.T) {
	// Property: when no operator saturates, output = input * prod(sel)
	// in any order.
	f := func(s1, s2 uint8) bool {
		a := float64(s1%10) / 10
		b := float64(s2%10) / 10
		ops := []Op{
			{Sel: a, Capacity: 1e9},
			{Sel: b, Capacity: 1e9},
		}
		o1 := ChainOutput(100, ops)
		o2 := ChainOutput(100, []Op{ops[1], ops[0]})
		want := 100 * a * b
		return math.Abs(o1-want) < 1e-9 && math.Abs(o2-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChainCost(t *testing.T) {
	ops := slide41Ops()
	// Slow-first admits 50 of 500: utilization 1.0; fast costs nothing.
	c := ChainCost(500, []Op{ops[0], ops[1]})
	if math.Abs(c-1) > 1e-9 {
		t.Errorf("cost = %v, want 1", c)
	}
	// Fast-first: fast free, slow sees 50/s = full utilization.
	c2 := ChainCost(500, []Op{ops[1], ops[0]})
	if math.Abs(c2-1) > 1e-9 {
		t.Errorf("cost = %v, want 1", c2)
	}
}

func TestJoinModelOutputRate(t *testing.T) {
	m := JoinModel{RateA: 10, RateB: 20, WindowA: 2, WindowB: 3, MatchProb: 0.01, CapacityProbes: math.Inf(1)}
	// probes/sec = 10*20*3 + 20*10*2 = 600+400 = 1000; out = 10/s.
	if got := m.OutputRate(); math.Abs(got-10) > 1e-9 {
		t.Errorf("OutputRate = %v, want 10", got)
	}
	if got := m.StateSize(); math.Abs(got-80) > 1e-9 {
		t.Errorf("StateSize = %v, want 80", got)
	}
}

func TestJoinModelCPULimited(t *testing.T) {
	m := JoinModel{RateA: 10, RateB: 20, WindowA: 2, WindowB: 3, MatchProb: 0.01, CapacityProbes: 500}
	// Only half the probes happen: output halves.
	if got := m.OutputRate(); math.Abs(got-5) > 1e-9 {
		t.Errorf("CPU-limited OutputRate = %v, want 5", got)
	}
}

func TestJoinModelAsymmetry(t *testing.T) {
	// With asymmetric rates, shrinking the window on the fast stream
	// reduces state much more than shrinking the slow stream's window.
	fast := JoinModel{RateA: 1000, RateB: 10, WindowA: 10, WindowB: 10, MatchProb: 0.001, CapacityProbes: math.Inf(1)}
	shrinkA := fast
	shrinkA.WindowA = 1
	shrinkB := fast
	shrinkB.WindowB = 1
	if fast.StateSize()-shrinkA.StateSize() <= fast.StateSize()-shrinkB.StateSize() {
		t.Error("asymmetric window sizing has no effect")
	}
}
