package dsms

// Edge-case coverage for the v1 transport: the failure modes that used
// to be indistinguishable from clean end-of-stream.

import (
	"net"
	"sync"
	"testing"

	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

// pipeConn returns both ends of an in-process TCP connection.
func pipeConn(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			done <- nil
			return
		}
		done <- c
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	server = <-done
	if server == nil {
		t.Fatal("accept failed")
	}
	return client, server
}

func TestReaderCleanEOSHasNoError(t *testing.T) {
	client, server := pipeConn(t)
	w := NewWriter(client)
	if err := w.Send(tuple.New(1, tuple.Time(1), tuple.Int(2), tuple.Float(3))); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil { // sends the zero-length EOS frame
		t.Fatal(err)
	}
	r := NewReader(server, sch)
	if got := stream.DrainTuples(r); len(got) != 1 {
		t.Fatalf("got %d tuples", len(got))
	}
	if err := r.Close(); err != nil {
		t.Errorf("clean EOS reported error: %v", err)
	}
}

func TestReaderBareEOFIsTruncation(t *testing.T) {
	client, server := pipeConn(t)
	w := NewWriter(client)
	w.Send(tuple.New(1, tuple.Time(1), tuple.Int(2), tuple.Float(3)))
	w.Flush()
	client.Close() // die without the EOS frame

	r := NewReader(server, sch)
	if got := stream.DrainTuples(r); len(got) != 1 {
		t.Fatalf("got %d tuples", len(got))
	}
	if err := r.Close(); err == nil {
		t.Error("mid-stream connection loss reported as clean EOS")
	}
}

func TestReaderTruncatedFrameBody(t *testing.T) {
	client, server := pipeConn(t)
	// Header promises 100 bytes; deliver 3 and cut the connection
	// (mid-tuple connection cut).
	client.Write([]byte{100, 1, 2, 3})
	client.Close()

	r := NewReader(server, sch)
	if _, ok := r.Next(); ok {
		t.Fatal("truncated frame yielded a tuple")
	}
	if r.Err == nil {
		t.Error("truncated frame body reported as clean EOS")
	}
}

func TestReaderCorruptVarintHeader(t *testing.T) {
	client, server := pipeConn(t)
	// An over-long uvarint (11 continuation bytes) is invalid.
	client.Write([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80})
	client.Close()

	r := NewReader(server, sch)
	if _, ok := r.Next(); ok {
		t.Fatal("corrupt header yielded a tuple")
	}
	if r.Err == nil {
		t.Error("corrupt varint header reported as clean EOS")
	}
}

func TestReaderSchemaMismatchSurfacesThroughClose(t *testing.T) {
	client, server := pipeConn(t)
	w := NewWriter(client)
	w.Send(tuple.New(1, tuple.Int(1))) // wrong arity for sch
	w.Close()

	r := NewReader(server, sch)
	stream.DrainTuples(r)
	if err := r.Close(); err == nil {
		t.Error("schema mismatch not surfaced via Close")
	}
}

func TestWriterConcurrentSendClose(t *testing.T) {
	// Concurrent Send and Close must be race-free; late Sends may error
	// (connection closed) but must not corrupt or panic. Run with -race.
	client, server := pipeConn(t)
	w := NewWriter(client)
	go func() { // drain the server side so writes don't block
		buf := make([]byte, 4096)
		for {
			if _, err := server.Read(buf); err != nil {
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := w.Send(tuple.New(int64(i), tuple.Time(int64(i)), tuple.Int(int64(g)), tuple.Float(0))); err != nil {
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		w.Close()
	}()
	wg.Wait()
}

func TestReconnectWriterConcurrentSend(t *testing.T) {
	// The session writer must serialize concurrent Sends correctly:
	// every tuple delivered exactly once (in some order). Run with -race.
	addr, _, wait := testServer(t, 1, SessionConfig{})
	w, err := NewReconnectWriter(ReconnectConfig{
		StreamID: "s1",
		Dial:     func() (net.Conn, error) { return net.Dial("tcp", addr) },
		AckEvery: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, per = 4, 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := w.Send(tuple.New(int64(i), tuple.Time(int64(i)), tuple.Int(int64(g)), tuple.Float(float64(i)))); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := wait()["s1"]; len(got) != goroutines*per {
		t.Errorf("delivered %d, want %d", len(got), goroutines*per)
	}
}
