package ops

// Replicable contract: clones must behave identically to the original
// and be fully independent (observation counters per clone).

import (
	"testing"

	"streamdb/internal/expr"
	"streamdb/internal/tuple"
)

func TestSelectCloneIndependent(t *testing.T) {
	pred, _ := expr.NewBin(expr.OpGt, expr.MustColumn(trafficSch, "length"), expr.Constant(tuple.Int(512)))
	sel, err := NewSelect("sel", trafficSch, pred, -1, 1)
	if err != nil {
		t.Fatal(err)
	}
	var _ Replicable = sel
	collect(sel, traffic(1, 1, 100), traffic(2, 2, 600))
	c := sel.Clone().(*Select)
	if got := c.Selectivity(); got != 1 {
		t.Errorf("clone selectivity = %v, want 1 (fresh counters)", got)
	}
	out := collect(c, traffic(3, 3, 700), traffic(4, 4, 10))
	if len(out) != 1 {
		t.Fatalf("clone filtered wrong: %v", out)
	}
	// Driving the clone must not disturb the original's observations.
	if s := sel.Selectivity(); s != 0.5 {
		t.Errorf("original selectivity = %v, want 0.5", s)
	}
}

func TestProjectCloneIndependent(t *testing.T) {
	out := tuple.NewSchema("P",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "length", Kind: tuple.KindUint},
	)
	p, err := NewProject("p", out, []expr.Expr{
		expr.MustColumn(trafficSch, "time"), expr.MustColumn(trafficSch, "length"),
	})
	if err != nil {
		t.Fatal(err)
	}
	var _ Replicable = p
	c := p.Clone().(*Project)
	got := collect(c, traffic(1, 9, 42))
	if len(got) != 1 || got[0].Tuple.Vals[1].Raw() != 42 {
		t.Fatalf("clone projected wrong: %v", got)
	}
	if c.OutSchema() != p.OutSchema() {
		t.Error("clone must share the immutable schema")
	}
}
