package dsms

// Regression coverage for the ArenaPool/queue interaction (the
// columnar-execution PR's refcount fix): under SessionConfig.ZeroCopy
// the SessionSource queue holds tuples that alias pooled decode arenas.
// Before arenas were reference counted, applyBatch returned each arena
// to the pool as soon as the sink callback returned, so any batch still
// queued — the normal state whenever the engine stalls, e.g. while a
// checkpoint barrier drains in-flight edge batches — was zeroed and
// overwritten by the next frame's decode. These tests pin that down:
// the transport may decode arbitrarily many frames while nothing
// drains, and every queued tuple must still read back byte-identical.

import (
	"bytes"
	"net"
	"testing"
	"time"

	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

// zeroCopySource starts a ZeroCopy session server wrapped in a
// SessionSource with room for every tuple the test sends, so the
// transport never blocks on the drain the test is deliberately
// withholding.
func zeroCopySource(t *testing.T, bound int) (addr string, src *SessionSource) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	srv := NewSessionServer(ln, sch, SessionConfig{ZeroCopy: true})
	return ln.Addr().String(), NewSessionSource(srv, 1, bound)
}

// TestZeroCopyArenaPinnedWhileQueued: send many v3 batch frames into a
// deliberately stalled consumer, forcing the server through many arena
// Get/Put cycles while every decoded batch is still queued, then drain
// and require byte-identity with what was sent.
func TestZeroCopyArenaPinnedWhileQueued(t *testing.T) {
	addr, src := zeroCopySource(t, 10000)
	w, err := NewReconnectWriter(ReconnectConfig{
		StreamID:      "s1",
		Dial:          func() (net.Conn, error) { return net.Dial("tcp", addr) },
		Schema:        sch,
		WireBatch:     16,
		FlushInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sent := sendAll(t, w, 2000) // 125 frames, each its own arena cycle

	// Wait for the transport to finish feeding the (undrained) queue.
	deadline := time.Now().Add(10 * time.Second)
	for {
		src.mu.Lock()
		queued, done := len(src.queue)-src.head, src.done
		src.mu.Unlock()
		if done && queued == len(sent) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("transport stalled: %d of %d queued, done=%v", queued, len(sent), done)
		}
		time.Sleep(time.Millisecond)
	}
	src.mu.Lock()
	pinned := len(src.pins)
	src.mu.Unlock()
	if pinned == 0 {
		t.Fatal("no arenas pinned while batches are queued — zero-copy lost its refcounts")
	}

	// Only now does the "engine" resume: drain everything and compare.
	var got []*tuple.Tuple
	var out []stream.Element
	for {
		out, _ = src.NextBatch(out[:0], 64)
		if len(out) == 0 {
			break
		}
		for _, e := range out {
			got = append(got, e.Tuple)
		}
	}
	if !bytes.Equal(encodeAll(got), encodeAll(sent)) {
		t.Fatalf("queued tuples corrupted: %d delivered, %d sent", len(got), len(sent))
	}
	src.mu.Lock()
	leaked := len(src.pins)
	src.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d arena pins leaked after full drain", leaked)
	}
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestZeroCopyColBatchDrain: the same stall through the columnar lane —
// NextColBatch transposes the queued tuples into column batches (value
// copies), releasing the arena pins exactly as the row path does.
func TestZeroCopyColBatchDrain(t *testing.T) {
	addr, src := zeroCopySource(t, 10000)
	w, err := NewReconnectWriter(ReconnectConfig{
		StreamID:      "s1",
		Dial:          func() (net.Conn, error) { return net.Dial("tcp", addr) },
		Schema:        sch,
		WireBatch:     16,
		FlushInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sent := sendAll(t, w, 1000)

	var got []*tuple.Tuple
	for {
		b, more := src.NextColBatch(48)
		if b != nil {
			if len(b.Cols) != sch.Arity() {
				t.Fatalf("batch arity %d, want %d", len(b.Cols), sch.Arity())
			}
			for r := 0; r < b.Rows(); r++ {
				tp := tuple.New(b.Ts[r], b.Cols[0][r], b.Cols[1][r], b.Cols[2][r])
				got = append(got, tp)
			}
			b.Release()
		}
		if !more {
			break
		}
	}
	if !bytes.Equal(encodeAll(got), encodeAll(sent)) {
		t.Fatalf("columnar drain corrupted tuples: %d delivered, %d sent", len(got), len(sent))
	}
	src.mu.Lock()
	leaked := len(src.pins)
	src.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d arena pins leaked after columnar drain", leaked)
	}
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
}
