// Package share implements multi-query processing on streams
// (slide 45): sharing work between the select/project expressions of
// concurrent queries, and sharing sliding-window join state between
// queries that join the same streams with different windows [HFAE03].
package share

import (
	"fmt"

	"streamdb/internal/expr"
	"streamdb/internal/ops"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
	"streamdb/internal/window"
)

// SharedSelect evaluates a set of registered query predicates over one
// stream, evaluating each *distinct* predicate once per tuple and
// fanning the tuple out to every subscribed query. Queries registering
// a predicate with an identical rendering share its evaluation — the
// common-subexpression sharing of traditional multi-query optimization
// applied to streams.
type SharedSelect struct {
	name string
	sch  *tuple.Schema
	// preds holds the distinct predicates; queries maps each to the
	// subscribed query IDs.
	preds   []expr.Expr
	byKey   map[string]int
	subs    [][]int
	sinks   map[int]ops.Emit
	evals   int64
	naive   int64 // evaluations an unshared deployment would perform
	queries int
}

// NewSharedSelect builds an empty shared selection over the schema.
func NewSharedSelect(name string, sch *tuple.Schema) *SharedSelect {
	return &SharedSelect{
		name: name, sch: sch,
		byKey: make(map[string]int),
		sinks: make(map[int]ops.Emit),
	}
}

// Register adds a query with its predicate and output sink, returning
// the query ID.
func (s *SharedSelect) Register(pred expr.Expr, sink ops.Emit) (int, error) {
	if pred.Kind() != tuple.KindBool {
		return 0, fmt.Errorf("share: predicate must be boolean")
	}
	qid := s.queries
	s.queries++
	s.sinks[qid] = sink
	key := pred.String()
	i, ok := s.byKey[key]
	if !ok {
		i = len(s.preds)
		s.preds = append(s.preds, pred)
		s.subs = append(s.subs, nil)
		s.byKey[key] = i
	}
	s.subs[i] = append(s.subs[i], qid)
	return qid, nil
}

// Push evaluates the distinct predicates once and routes the tuple.
func (s *SharedSelect) Push(e stream.Element) {
	if e.IsPunct() {
		for _, sink := range s.sinks {
			sink(e)
		}
		return
	}
	s.naive += int64(s.queries)
	for i, p := range s.preds {
		s.evals++
		if expr.EvalBool(p, e.Tuple) {
			for _, qid := range s.subs[i] {
				s.sinks[qid](e)
			}
		}
	}
}

// Stats reports (shared evaluations performed, evaluations a per-query
// deployment would have performed).
func (s *SharedSelect) Stats() (shared, unshared int64) { return s.evals, s.naive }

// DistinctPredicates reports how many predicate instances are evaluated
// per tuple after sharing.
func (s *SharedSelect) DistinctPredicates() int { return len(s.preds) }

// JoinQuery is one query's window requirement on a shared join.
type JoinQuery struct {
	// Window is the query's join window in timestamp units: a result
	// pair (a, b) belongs to the query iff |a.Ts - b.Ts| <= Window.
	Window int64
	Sink   ops.Emit
}

// SharedWindowJoin executes one physical sliding-window equijoin sized
// for the largest registered window and routes each result to exactly
// the queries whose window covers the pair's timestamp distance
// [HFAE03]. One state store and one probe per tuple serve all queries.
type SharedWindowJoin struct {
	name    string
	join    *ops.WindowJoin
	queries []JoinQuery
	maxWin  int64
	lIdx    int // index of left timestamp in the join output
	rIdx    int
	probes  int64
	routed  int64
}

// NewSharedWindowJoin builds a shared join on the given key columns.
// queries must be non-empty; the physical window is the maximum query
// window.
func NewSharedWindowJoin(name string, left, right *tuple.Schema, leftKey, rightKey []int, queries []JoinQuery) (*SharedWindowJoin, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("share: no queries registered")
	}
	maxWin := int64(0)
	for _, q := range queries {
		if q.Window <= 0 {
			return nil, fmt.Errorf("share: query window must be positive")
		}
		if q.Window > maxWin {
			maxWin = q.Window
		}
	}
	j, err := ops.NewWindowJoin(name, left, right,
		ops.JoinConfig{Window: window.Tumbling(maxWin), Method: ops.JoinHash, Key: leftKey},
		ops.JoinConfig{Window: window.Tumbling(maxWin), Method: ops.JoinHash, Key: rightKey},
		nil)
	if err != nil {
		return nil, err
	}
	lOrd := left.OrderingIndex()
	rOrd := right.OrderingIndex()
	if lOrd < 0 || rOrd < 0 {
		return nil, fmt.Errorf("share: both inputs need ordering attributes")
	}
	return &SharedWindowJoin{
		name: name, join: j, queries: queries, maxWin: maxWin,
		lIdx: lOrd, rIdx: left.Arity() + rOrd,
	}, nil
}

// Push feeds one element into the shared join (port 0 = left).
func (s *SharedWindowJoin) Push(port int, e stream.Element) {
	s.join.Push(port, e, func(out stream.Element) {
		lts, _ := out.Tuple.Vals[s.lIdx].AsTime()
		rts, _ := out.Tuple.Vals[s.rIdx].AsTime()
		dist := lts - rts
		if dist < 0 {
			dist = -dist
		}
		for _, q := range s.queries {
			if dist <= q.Window {
				s.routed++
				q.Sink(out)
			}
		}
	})
}

// Stats reports (probes by the one shared join, results routed to
// queries). An unshared deployment performs len(queries) times the
// probes.
func (s *SharedWindowJoin) Stats() (probes, routed int64) {
	return s.join.Probes(), s.routed
}

// UnsharedProbeEstimate returns the probes a per-query deployment would
// have spent, assuming each query's window holds a proportional share
// of the tuples the maximal window holds.
func (s *SharedWindowJoin) UnsharedProbeEstimate() float64 {
	total := 0.0
	for _, q := range s.queries {
		total += float64(s.join.Probes()) * float64(q.Window) / float64(s.maxWin)
	}
	return total
}
