package agg

import (
	"fmt"
	"math/rand"
	"testing"

	"streamdb/internal/expr"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
	"streamdb/internal/window"
)

// newAggs builds a sum/count/avg/min specification over (g, v).
func newAggs(t *testing.T, names ...string) []Spec {
	t.Helper()
	var aggs []Spec
	for _, name := range names {
		f := mustFn(t, name, false)
		s := Spec{Fn: f, Name: name}
		if f.NeedsArg || name != "count" {
			s.Arg = expr.MustColumn(sch, "v")
		}
		aggs = append(aggs, s)
	}
	return aggs
}

func newPaneGroupBy(t *testing.T, spec window.Spec, aggs []Spec, having func(*tuple.Schema) (expr.Expr, error)) *GroupBy {
	t.Helper()
	g, err := NewGroupBy("q", sch,
		[]expr.Expr{expr.MustColumn(sch, "g")}, []string{"g"},
		aggs, spec, having)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// valueRepr is a byte-exact value representation: kind, raw payload
// bits, and the string form (which carries string payloads).
func valueRepr(v tuple.Value) string {
	return fmt.Sprintf("%d:%x:%s", v.Kind, v.Raw(), v.String())
}

func sameTuples(t *testing.T, label string, pane, legacy []*tuple.Tuple) {
	t.Helper()
	if len(pane) != len(legacy) {
		t.Fatalf("%s: pane emitted %d rows, legacy %d", label, len(pane), len(legacy))
	}
	for i := range pane {
		if pane[i].Ts != legacy[i].Ts {
			t.Fatalf("%s: row %d Ts = %d, legacy %d", label, i, pane[i].Ts, legacy[i].Ts)
		}
		if len(pane[i].Vals) != len(legacy[i].Vals) {
			t.Fatalf("%s: row %d arity %d, legacy %d", label, i, len(pane[i].Vals), len(legacy[i].Vals))
		}
		for j := range pane[i].Vals {
			a, b := valueRepr(pane[i].Vals[j]), valueRepr(legacy[i].Vals[j])
			if a != b {
				t.Fatalf("%s: row %d col %d = %s, legacy %s", label, i, j, a, b)
			}
		}
	}
}

// Path selection: panes require a pane-compatible window and
// partializable aggregates throughout.
func TestPanePathSelection(t *testing.T) {
	cases := []struct {
		label string
		spec  window.Spec
		aggs  []Spec
		want  bool
	}{
		{"sliding sum", window.Time(80, 20), newAggs(t, "sum", "count", "avg"), true},
		{"tumbling min/max", window.Tumbling(20), newAggs(t, "min", "max", "stddev"), true},
		{"holistic median", window.Time(80, 20), newAggs(t, "median"), false},
		{"mixed holistic", window.Time(80, 20), newAggs(t, "sum", "median"), false},
		{"range not multiple of slide", window.Time(25, 10), newAggs(t, "sum"), false},
		{"landmark", window.Landmark(20), newAggs(t, "sum"), false},
		{"unbounded", window.Spec{}, newAggs(t, "sum"), false},
	}
	for _, c := range cases {
		g := newPaneGroupBy(t, c.spec, c.aggs, nil)
		if got := g.UsesPanes(); got != c.want {
			t.Errorf("%s: UsesPanes = %v, want %v", c.label, got, c.want)
		}
	}
	g := newPaneGroupBy(t, window.Time(80, 20), newAggs(t, "sum"), nil)
	if g.DisablePanes(); g.UsesPanes() {
		t.Error("DisablePanes left the pane path active")
	}
}

// randomStream produces a shuffled-timestamp stream of dyadic values
// (quarters) so float partial sums are exact in any association, with
// periodic progress punctuations.
func randomStream(rng *rand.Rand, n int, maxTs int64, groups int64) []stream.Element {
	var elems []stream.Element
	ts := int64(0)
	for i := 0; i < n; i++ {
		// Mostly advancing time with occasional stragglers.
		ts += rng.Int63n(7) - 1
		if ts < 0 {
			ts = 0
		}
		if ts > maxTs {
			ts = maxTs
		}
		elems = append(elems, row(ts, rng.Int63n(groups), float64(rng.Int63n(400))/4))
		if i%37 == 36 {
			elems = append(elems, stream.Punct(stream.ProgressPunct(ts, 0, tuple.Time(ts))))
		}
	}
	return elems
}

// The pane path must be byte-identical to the legacy per-window path
// across sliding, tumbling, partitioned, and HAVING-filtered specs.
func TestPaneLegacyEquivalence(t *testing.T) {
	having := func(out *tuple.Schema) (expr.Expr, error) {
		c, err := expr.Column(out, "count")
		if err != nil {
			return nil, err
		}
		return expr.NewBin(expr.OpGt, c, expr.Constant(tuple.Int(2)))
	}
	partitioned := window.Time(80, 20)
	partitioned.PartitionBy = []string{"g"}
	cases := []struct {
		label  string
		spec   window.Spec
		aggs   []Spec
		having func(*tuple.Schema) (expr.Expr, error)
	}{
		{"sliding x4", window.Time(80, 20), newAggs(t, "sum", "count", "avg", "min", "max"), nil},
		{"tumbling", window.Tumbling(20), newAggs(t, "sum", "count", "stddev"), nil},
		{"deep sliding x16", window.Time(320, 20), newAggs(t, "sum", "count"), nil},
		{"partitioned", partitioned, newAggs(t, "sum", "count"), nil},
		{"having", window.Time(80, 20), newAggs(t, "sum", "count", "avg"), having},
	}
	for _, c := range cases {
		rng := rand.New(rand.NewSource(42))
		elems := randomStream(rng, 3000, 2000, 5)
		pane := newPaneGroupBy(t, c.spec, c.aggs, c.having)
		legacy := newPaneGroupBy(t, c.spec, c.aggs, c.having).DisablePanes()
		if !pane.UsesPanes() {
			t.Fatalf("%s: pane path not selected", c.label)
		}
		sameTuples(t, c.label, drainOp(pane, elems...), drainOp(legacy, elems...))
		if pane.Emitted() != legacy.Emitted() {
			t.Errorf("%s: pane Emitted %d, legacy %d", c.label, pane.Emitted(), legacy.Emitted())
		}
	}
}

// Holistic aggregates route to the legacy path automatically and still
// agree with an explicitly disabled twin.
func TestPaneHolisticFallbackEquivalence(t *testing.T) {
	aggs := newAggs(t, "median", "sum")
	a := newPaneGroupBy(t, window.Time(80, 20), aggs, nil)
	b := newPaneGroupBy(t, window.Time(80, 20), aggs, nil).DisablePanes()
	if a.UsesPanes() {
		t.Fatal("holistic aggregate took the pane path")
	}
	rng := rand.New(rand.NewSource(7))
	elems := randomStream(rng, 1500, 1200, 4)
	sameTuples(t, "median fallback", drainOp(a, elems...), drainOp(b, elems...))
}

// Punctuation-driven time advance: windows must close identically when
// time only moves via punctuations, and the output watermark (row
// timestamps at window ends) must be monotone.
func TestPanePunctuationAdvanceEquivalence(t *testing.T) {
	var elems []stream.Element
	rng := rand.New(rand.NewSource(99))
	for ts := int64(0); ts < 600; ts += 10 {
		// Tuples never advance past the punctuation-driven watermark.
		for i := 0; i < 5; i++ {
			elems = append(elems, row(ts+rng.Int63n(3), rng.Int63n(3), float64(rng.Int63n(100))/4))
		}
		elems = append(elems, stream.Punct(stream.ProgressPunct(ts+9, 0, tuple.Time(ts+9))))
	}
	for _, spec := range []window.Spec{window.Time(80, 20), window.Tumbling(40)} {
		pane := newPaneGroupBy(t, spec, newAggs(t, "sum", "count"), nil)
		legacy := newPaneGroupBy(t, spec, newAggs(t, "sum", "count"), nil).DisablePanes()
		po, lo := drainOp(pane, elems...), drainOp(legacy, elems...)
		sameTuples(t, spec.String(), po, lo)
		last := int64(-1)
		for i, r := range po {
			if r.Ts < last {
				t.Fatalf("%s: row %d Ts %d regressed below %d", spec, i, r.Ts, last)
			}
			last = r.Ts
		}
	}
}

// Data-dependent punctuations (close-group patterns) must release the
// same groups with the same results on both paths. Tumbling windows keep
// a single open instance so legacy emission order is deterministic.
func TestPaneCloseGroupsEquivalence(t *testing.T) {
	var elems []stream.Element
	rng := rand.New(rand.NewSource(5))
	for ts := int64(0); ts < 200; ts++ {
		elems = append(elems, row(ts, rng.Int63n(4), float64(rng.Int63n(40))/4))
		if ts == 57 || ts == 143 {
			// Group (g = ts%4) is finished: close it mid-window.
			elems = append(elems, stream.Punct(stream.EndGroupPunct(ts, 1, tuple.Int(ts%4))))
		}
	}
	pane := newPaneGroupBy(t, window.Tumbling(100), newAggs(t, "sum", "count"), nil)
	legacy := newPaneGroupBy(t, window.Tumbling(100), newAggs(t, "sum", "count"), nil).DisablePanes()
	sameTuples(t, "close-groups", drainOp(pane, elems...), drainOp(legacy, elems...))
}

// Late tuples re-open retired panes; both paths must re-emit the late
// window identically.
func TestPaneLateDataEquivalence(t *testing.T) {
	var elems []stream.Element
	for ts := int64(0); ts < 300; ts++ {
		elems = append(elems, row(ts, ts%3, float64(ts%16)/4))
	}
	// A straggler far behind the watermark.
	elems = append(elems, row(20, 1, 2.25))
	for ts := int64(300); ts < 400; ts++ {
		elems = append(elems, row(ts, ts%3, float64(ts%16)/4))
	}
	pane := newPaneGroupBy(t, window.Time(80, 20), newAggs(t, "sum", "count"), nil)
	legacy := newPaneGroupBy(t, window.Time(80, 20), newAggs(t, "sum", "count"), nil).DisablePanes()
	sameTuples(t, "late data", drainOp(pane, elems...), drainOp(legacy, elems...))
}

// MemSize and MaxGroups must stay meaningful on the pane path (panes
// hold one partial per group per pane, far fewer than per-window state).
func TestPaneAccounting(t *testing.T) {
	pane := newPaneGroupBy(t, window.Time(80, 20), newAggs(t, "sum"), nil)
	legacy := newPaneGroupBy(t, window.Time(80, 20), newAggs(t, "sum"), nil).DisablePanes()
	emit := func(stream.Element) {}
	for ts := int64(0); ts < 500; ts++ {
		e := row(ts, ts%4, 1)
		pane.Push(0, e, emit)
		legacy.Push(0, e, emit)
	}
	if pane.MaxGroups() == 0 || pane.MemSize() <= 128 {
		t.Errorf("pane accounting degenerate: MaxGroups=%d MemSize=%d", pane.MaxGroups(), pane.MemSize())
	}
	if pane.MaxGroups() > legacy.MaxGroups() {
		t.Errorf("pane MaxGroups %d exceeds legacy %d", pane.MaxGroups(), legacy.MaxGroups())
	}
	pane.Flush(emit)
	legacy.Flush(emit)
	if pane.Emitted() != legacy.Emitted() {
		t.Errorf("pane Emitted %d, legacy %d", pane.Emitted(), legacy.Emitted())
	}
}
