package agg

import (
	"testing"

	"streamdb/internal/expr"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
	"streamdb/internal/window"
)

// The auction schema of slide 28: bids arrive per auction; an
// application punctuation marks an auction closed.
var auctionSch = tuple.NewSchema("Bids",
	tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
	tuple.Field{Name: "auction", Kind: tuple.KindInt},
	tuple.Field{Name: "bid", Kind: tuple.KindFloat},
)

func bid(ts, auction int64, v float64) stream.Element {
	return stream.Tup(tuple.New(ts, tuple.Time(ts), tuple.Int(auction), tuple.Float(v)))
}

func auctionGroupBy(t *testing.T) *GroupBy {
	t.Helper()
	cnt := mustFn(t, "count", false)
	maxF := mustFn(t, "max", false)
	g, err := NewGroupBy("auctions", auctionSch,
		[]expr.Expr{expr.MustColumn(auctionSch, "auction")}, []string{"auction"},
		[]Spec{
			{Fn: cnt, Name: "bids"},
			{Fn: maxF, Arg: expr.MustColumn(auctionSch, "bid"), Name: "winning"},
		}, window.Spec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPunctuationClosesGroup(t *testing.T) {
	g := auctionGroupBy(t)
	var out []*tuple.Tuple
	emit := func(e stream.Element) { out = append(out, e.Tuple) }
	g.Push(0, bid(1, 7, 10), emit)
	g.Push(0, bid(2, 8, 5), emit)
	g.Push(0, bid(3, 7, 30), emit)
	if len(out) != 0 {
		t.Fatal("emitted before auction close")
	}
	// Auction 7 closes: "no more tuples with auction = 7".
	g.Push(0, stream.Punct(stream.EndGroupPunct(4, 1, tuple.Int(7))), emit)
	if len(out) != 1 {
		t.Fatalf("close emitted %d rows", len(out))
	}
	if a, _ := out[0].Vals[1].AsInt(); a != 7 {
		t.Errorf("closed auction = %d", a)
	}
	if c, _ := out[0].Vals[2].AsInt(); c != 2 {
		t.Errorf("bids = %d", c)
	}
	if w, _ := out[0].Vals[3].AsFloat(); w != 30 {
		t.Errorf("winning = %v", w)
	}
	// Auction 8 still open; flush emits it.
	g.Flush(emit)
	if len(out) != 2 {
		t.Fatalf("flush emitted %d total", len(out))
	}
	if a, _ := out[1].Vals[1].AsInt(); a != 8 {
		t.Errorf("remaining auction = %d", a)
	}
}

func TestPunctuationCloseReleasesState(t *testing.T) {
	g := auctionGroupBy(t)
	emit := func(stream.Element) {}
	for i := int64(0); i < 100; i++ {
		g.Push(0, bid(i, i, 1), emit)
	}
	before := g.MemSize()
	// Close every auction below 50 with a range pattern.
	p := &stream.Punctuation{Ts: 200, Fields: map[int]stream.Pattern{
		1: {Kind: stream.PatLE, Val: tuple.Int(49)},
	}}
	var closed int
	g.Push(0, stream.Punct(p), func(stream.Element) { closed++ })
	if closed != 50 {
		t.Errorf("closed %d groups, want 50", closed)
	}
	if after := g.MemSize(); after >= before {
		t.Errorf("state not released: %d -> %d", before, after)
	}
}

func TestPunctuationOnNonGroupColumnIsConservative(t *testing.T) {
	g := auctionGroupBy(t)
	var out []*tuple.Tuple
	emit := func(e stream.Element) { out = append(out, e.Tuple) }
	g.Push(0, bid(1, 7, 10), emit)
	// Punctuation on the bid column (index 2): grouping does not
	// preserve it, so no group may close.
	g.Push(0, stream.Punct(stream.EndGroupPunct(2, 2, tuple.Float(10))), emit)
	if len(out) != 0 {
		t.Errorf("group closed on a non-grouping punctuation: %v", out)
	}
}

func TestPunctuationCloseRespectsHaving(t *testing.T) {
	cnt := mustFn(t, "count", false)
	having := func(out *tuple.Schema) (expr.Expr, error) {
		return expr.NewBin(expr.OpGt, expr.MustColumn(out, "bids"), expr.Constant(tuple.Int(1)))
	}
	g, err := NewGroupBy("a", auctionSch,
		[]expr.Expr{expr.MustColumn(auctionSch, "auction")}, []string{"auction"},
		[]Spec{{Fn: cnt, Name: "bids"}}, window.Spec{}, having)
	if err != nil {
		t.Fatal(err)
	}
	var out []*tuple.Tuple
	emit := func(e stream.Element) { out = append(out, e.Tuple) }
	g.Push(0, bid(1, 7, 1), emit)
	g.Push(0, stream.Punct(stream.EndGroupPunct(2, 1, tuple.Int(7))), emit)
	if len(out) != 0 {
		t.Errorf("HAVING ignored on punctuation close: %v", out)
	}
	// The group is gone either way: a later flush emits nothing.
	g.Flush(emit)
	if len(out) != 0 {
		t.Errorf("closed group resurfaced: %v", out)
	}
}

func TestPunctuationCloseInTimeWindows(t *testing.T) {
	cnt := mustFn(t, "count", false)
	g, err := NewGroupBy("a", auctionSch,
		[]expr.Expr{expr.MustColumn(auctionSch, "auction")}, []string{"auction"},
		[]Spec{{Fn: cnt, Name: "bids"}}, window.Tumbling(100), nil)
	if err != nil {
		t.Fatal(err)
	}
	var out []*tuple.Tuple
	emit := func(e stream.Element) { out = append(out, e.Tuple) }
	g.Push(0, bid(1, 7, 1), emit)
	g.Push(0, bid(2, 8, 1), emit)
	// Early close of auction 7 inside the open window.
	g.Push(0, stream.Punct(stream.EndGroupPunct(3, 1, tuple.Int(7))), emit)
	if len(out) != 1 {
		t.Fatalf("early close emitted %d", len(out))
	}
	g.Flush(emit)
	// Only auction 8 remains in the window.
	if len(out) != 2 {
		t.Fatalf("total = %d", len(out))
	}
}
