// Command streamd runs one node of the distributed 3-level
// architecture (slides 14, 54-55). A high-level node listens for
// partial-aggregate streams from low-level nodes and prints merged
// per-minute results; a low-level node generates (or would tap) raw
// traffic, runs the decomposed filter + bounded partial aggregation,
// and ships the reduced stream upward.
//
// Demo (one process per node):
//
//	streamd -mode high -listen :7070 -nodes 2
//	streamd -mode low  -connect localhost:7070 -n 200000 -seed 1
//	streamd -mode low  -connect localhost:7070 -n 200000 -seed 2
//
// Or everything in-process:
//
//	streamd -mode demo -nodes 3 -n 100000
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"sync"

	"streamdb/internal/dsms"
	"streamdb/internal/query"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "streamd: "+format+"\n", args...)
	os.Exit(1)
}

// decomposeSQL is the standing query both levels agree on, decomposed
// automatically per slide 54: the filter plus a bounded partial
// aggregation run at each observation point; merging runs here.
const decomposeSQL = `select srcIP, count(*) as pkts, sum(length) as bytes
	from Traffic [range 60] where length > 512 group by srcIP`

func decomposition() *dsms.Decomposition {
	cat := query.NewCatalog()
	cat.Register("Traffic", stream.TrafficSchema("Traffic"))
	d, err := query.Decompose(decomposeSQL, cat, 4096)
	if err != nil {
		fatalf("%v", err)
	}
	return d
}

func runLow(d *dsms.Decomposition, conn net.Conn, n int, seed int64) (raw, partials int64) {
	w := dsms.NewWriter(conn)
	ll, err := d.NewLowLevel("lfta")
	if err != nil {
		fatalf("%v", err)
	}
	emit := func(e stream.Element) {
		if err := w.Send(e.Tuple); err != nil {
			fatalf("send: %v", err)
		}
	}
	src := stream.Limit(stream.NewTrafficStream(seed, 100000, 5000), n)
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		ll.Push(e, emit)
	}
	ll.Flush(emit)
	if err := w.Close(); err != nil {
		fatalf("close: %v", err)
	}
	return ll.RawIn, ll.PartialsOut
}

func runHigh(d *dsms.Decomposition, ln net.Listener, nodes int) {
	high, err := d.NewHighLevel("hfta")
	if err != nil {
		fatalf("%v", err)
	}
	var mu sync.Mutex
	var finals int64
	emit := func(e stream.Element) {
		finals++
		t := e.Tuple
		bucket, _ := t.Vals[0].AsTime()
		ip, _ := t.Vals[1].AsUint()
		pkts, _ := t.Vals[2].AsInt()
		bytes, _ := t.Vals[3].AsFloat()
		fmt.Printf("minute %4d  src %-15s  pkts %6d  bytes %12.0f\n",
			bucket/(60*stream.Second), tuple.FormatIPv4(uint32(ip)), pkts, bytes)
	}
	var wg sync.WaitGroup
	var received int64
	for i := 0; i < nodes; i++ {
		conn, err := ln.Accept()
		if err != nil {
			fatalf("accept: %v", err)
		}
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			r := dsms.NewReader(conn, d.PartialSchema())
			for {
				e, ok := r.Next()
				if !ok {
					if r.Err != nil {
						fmt.Fprintln(os.Stderr, "streamd: reader:", r.Err)
					}
					return
				}
				mu.Lock()
				received++
				high.Push(0, e, emit)
				mu.Unlock()
			}
		}(conn)
	}
	wg.Wait()
	high.Push(0, stream.Punct(&stream.Punctuation{Ts: 1 << 62}), emit)
	high.Flush(emit)
	fmt.Printf("high-level: %d partial records merged into %d final rows\n", received, finals)
}

func main() {
	mode := flag.String("mode", "demo", "high | low | demo")
	listen := flag.String("listen", ":7070", "high: listen address")
	connect := flag.String("connect", "localhost:7070", "low: high-level node address")
	nodes := flag.Int("nodes", 2, "high/demo: number of low-level nodes")
	n := flag.Int("n", 100000, "low/demo: packets per low-level node")
	seed := flag.Int64("seed", 1, "low: generator seed")
	flag.Parse()

	d := decomposition()
	switch *mode {
	case "high":
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fatalf("%v", err)
		}
		defer ln.Close()
		fmt.Printf("high-level node on %s, awaiting %d low-level nodes\n", ln.Addr(), *nodes)
		runHigh(d, ln, *nodes)
	case "low":
		conn, err := net.Dial("tcp", *connect)
		if err != nil {
			fatalf("%v", err)
		}
		raw, partials := runLow(d, conn, *n, *seed)
		fmt.Printf("low-level node: %d raw -> %d partials (%.1fx reduction)\n",
			raw, partials, float64(raw)/float64(partials))
	case "demo":
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatalf("%v", err)
		}
		defer ln.Close()
		var wg sync.WaitGroup
		for i := 0; i < *nodes; i++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				conn, err := net.Dial("tcp", ln.Addr().String())
				if err != nil {
					fatalf("%v", err)
				}
				raw, partials := runLow(d, conn, *n, seed)
				fmt.Printf("low-level node %d: %d raw -> %d partials (%.1fx reduction)\n",
					seed, raw, partials, float64(raw)/float64(partials))
			}(int64(i + 1))
		}
		runHigh(d, ln, *nodes)
		wg.Wait()
	default:
		fatalf("unknown mode %q", *mode)
	}
}
