package ckpt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Store is the write-ahead checkpoint store. It generalizes the
// Hancock SigStore's block-I/O discipline — sequential whole-file
// writes, atomic rename commit — and adds what crash recovery needs on
// top: an fsync'd manifest carrying a CRC and epoch for the current
// AND previous generation, so a crash at any byte of a commit leaves a
// readable checkpoint behind.
//
// Commit protocol:
//
//  1. write ckpt-<epoch>.dat sequentially, fsync it
//  2. write MANIFEST.tmp naming the new generation first and the
//     previous one second, with payload lengths + CRCs and a
//     whole-manifest CRC; fsync
//  3. rename MANIFEST.tmp -> MANIFEST, fsync the directory
//  4. unlink data files no generation references
//
// A torn data file fails its length or CRC check and Latest falls back
// to the previous generation; a torn manifest fails the manifest CRC
// and the rename's atomicity means the old manifest is still in place.
type Store struct {
	dir  string
	wrap func(io.Writer) io.Writer
}

const manifestName = "MANIFEST"

var manifestMagic = []byte("SDCK")

// Open creates or opens a checkpoint store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// WrapWrites installs a writer wrapper around data-file writes: the
// fault-injection seam. Tests route writes through dsms.FaultWriter to
// prove torn and corrupted commits are rejected at recovery.
func (s *Store) WrapWrites(wrap func(io.Writer) io.Writer) { s.wrap = wrap }

// manifestGen is one generation entry in the manifest.
type manifestGen struct {
	epoch int64
	file  string
	size  int64
	crc   uint32
}

// readManifest parses and validates the manifest. A missing manifest
// returns (nil, nil); a corrupt one returns an error.
func (s *Store) readManifest() ([]manifestGen, error) {
	raw, err := os.ReadFile(filepath.Join(s.dir, manifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	if len(raw) < len(manifestMagic)+4 || string(raw[:len(manifestMagic)]) != string(manifestMagic) {
		return nil, fmt.Errorf("ckpt: bad manifest magic")
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("ckpt: manifest CRC mismatch (torn write)")
	}
	d := NewDecoder(body[len(manifestMagic):])
	if v := d.Uvarint(); v != 1 {
		return nil, fmt.Errorf("ckpt: manifest version %d unsupported", v)
	}
	n := d.Uvarint()
	if n > 2 {
		return nil, fmt.Errorf("ckpt: manifest names %d generations, want <= 2", n)
	}
	gens := make([]manifestGen, 0, n)
	for i := uint64(0); i < n; i++ {
		g := manifestGen{
			epoch: d.Varint(),
			file:  d.String(),
			size:  d.Varint(),
			crc:   uint32(d.Uvarint()),
		}
		if strings.ContainsAny(g.file, "/\\") {
			return nil, fmt.Errorf("ckpt: manifest names file outside store: %q", g.file)
		}
		gens = append(gens, g)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return gens, nil
}

func (s *Store) writeManifest(gens []manifestGen) error {
	enc := &Encoder{}
	enc.buf = append(enc.buf, manifestMagic...)
	enc.Uvarint(1)
	enc.Uvarint(uint64(len(gens)))
	for _, g := range gens {
		enc.Varint(g.epoch)
		enc.String(g.file)
		enc.Varint(g.size)
		enc.Uvarint(uint64(g.crc))
	}
	body := enc.Bytes()
	body = binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body))

	tmp := filepath.Join(s.dir, manifestName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if _, err := f.Write(body); err != nil {
		f.Close()
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, manifestName)); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	return s.syncDir()
}

func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	defer d.Close()
	// Some filesystems refuse directory fsync; the rename is still
	// atomic, so degrade silently rather than failing the commit.
	_ = d.Sync()
	return nil
}

// Commit durably writes the checkpoint and makes it the current
// generation. The previous current generation is retained as fallback;
// anything older is garbage-collected.
func (s *Store) Commit(c *Checkpoint) error {
	prev, err := s.readManifest()
	if err != nil {
		// A corrupt manifest must not block progress: the next commit
		// rewrites it. Older data files stay until a clean commit.
		prev = nil
	}
	if len(prev) > 0 && c.Epoch <= prev[0].epoch {
		return fmt.Errorf("ckpt: epoch %d not beyond committed epoch %d", c.Epoch, prev[0].epoch)
	}
	payload := c.Encode()
	name := fmt.Sprintf("ckpt-%016x.dat", uint64(c.Epoch))
	path := filepath.Join(s.dir, name)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	var w io.Writer = f
	if s.wrap != nil {
		w = s.wrap(f)
	}
	if _, err := w.Write(payload); err != nil {
		f.Close()
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}

	gens := []manifestGen{{
		epoch: c.Epoch,
		file:  name,
		size:  int64(len(payload)),
		crc:   crc32.ChecksumIEEE(payload),
	}}
	if len(prev) > 0 {
		gens = append(gens, prev[0])
	}
	if err := s.writeManifest(gens); err != nil {
		return err
	}
	s.gc(gens)
	return nil
}

// gc unlinks checkpoint data files no manifest generation references.
func (s *Store) gc(gens []manifestGen) {
	keep := map[string]bool{manifestName: true}
	for _, g := range gens {
		keep[g.file] = true
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		n := e.Name()
		if !keep[n] && (strings.HasPrefix(n, "ckpt-") || strings.HasSuffix(n, ".tmp")) {
			os.Remove(filepath.Join(s.dir, n))
		}
	}
}

// Latest returns the newest intact checkpoint, validating manifest CRC,
// payload length, payload CRC, and the checkpoint's own structure; a
// torn or corrupt current generation falls back to the previous one.
// An empty store returns (nil, nil).
func (s *Store) Latest() (*Checkpoint, error) {
	gens, err := s.readManifest()
	if err != nil {
		return nil, err
	}
	if len(gens) == 0 {
		return nil, nil
	}
	var firstErr error
	for _, g := range gens {
		c, err := s.load(g)
		if err == nil {
			return c, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, fmt.Errorf("ckpt: no intact generation: %w", firstErr)
}

func (s *Store) load(g manifestGen) (*Checkpoint, error) {
	raw, err := os.ReadFile(filepath.Join(s.dir, g.file))
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	if int64(len(raw)) != g.size {
		return nil, fmt.Errorf("ckpt: %s is %d bytes, manifest says %d (torn write)",
			g.file, len(raw), g.size)
	}
	if crc32.ChecksumIEEE(raw) != g.crc {
		return nil, fmt.Errorf("ckpt: %s payload CRC mismatch", g.file)
	}
	c, err := DecodeCheckpoint(raw)
	if err != nil {
		return nil, err
	}
	if c.Epoch != g.epoch {
		return nil, fmt.Errorf("ckpt: %s carries epoch %d, manifest says %d",
			g.file, c.Epoch, g.epoch)
	}
	return c, nil
}
