// Continuous (persistent) queries: slide 19's Tapestry/NiagaraCQ
// lineage. Queries are registered once and results stream out as data
// is pushed in — including a windowed aggregate whose windows are
// closed by explicit progress punctuations (slide 28).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"streamdb"
)

func main() {
	eng := streamdb.New()
	eng.RegisterSchema("Traffic", streamdb.NewSchema("Traffic",
		streamdb.Field{Name: "time", Kind: streamdb.KindTime, Ordering: true},
		streamdb.Field{Name: "srcIP", Kind: streamdb.KindIP},
		streamdb.Field{Name: "length", Kind: streamdb.KindUint},
	))

	// Standing query 1: an alerting filter. Every matching tuple is
	// delivered the moment it is fed.
	alerts := 0
	alert, err := eng.RegisterContinuous(
		"select time, ip4(srcIP) as src, length from Traffic where length > 1400",
		func(t *streamdb.Tuple) {
			alerts++
			if alerts <= 3 {
				src, _ := t.Vals[1].AsString()
				l, _ := t.Vals[2].AsUint()
				fmt.Printf("ALERT: jumbo packet from %s (%d bytes)\n", src, l)
			}
		})
	if err != nil {
		log.Fatal(err)
	}

	// Standing query 2: per-second top talkers, windows closed by
	// punctuation.
	talkers, err := eng.RegisterContinuous(
		`select tb, ip4(srcIP) as src, count(*) as pkts
		 from Traffic [range 1]
		 group by time/1000000000 as tb, srcIP
		 having count(*) > 300`,
		func(t *streamdb.Tuple) {
			sec, _ := t.Vals[0].AsInt()
			src, _ := t.Vals[1].AsString()
			pkts, _ := t.Vals[2].AsInt()
			fmt.Printf("second %d: top talker %s with %d packets\n", sec, src, pkts)
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("registered standing queries:")
	fmt.Printf("  alert filter (bounded-memory: %v)\n", alert.Plan().Bounded.OK)
	fmt.Printf("  top talkers  (bounded-memory: %v)\n\n", talkers.Plan().Bounded.OK)

	// Simulate a live feed: 5 virtual seconds of traffic, with a
	// progress punctuation at each second boundary so the aggregate
	// emits without waiting for future data.
	rng := rand.New(rand.NewSource(9))
	ts := int64(0)
	for sec := int64(0); sec < 5; sec++ {
		for i := 0; i < 2000; i++ {
			ts += streamdb.Second / 2000
			ip := uint32(rng.Intn(6))
			if sec%2 == 1 {
				ip = uint32(rng.Intn(3)) // skew toward few talkers on odd seconds
			}
			t := streamdb.NewTuple(ts,
				streamdb.Time(ts), streamdb.IP(ip), streamdb.Uint(uint64(40+rng.Intn(1461))))
			if err := alert.Feed("Traffic", t); err != nil {
				log.Fatal(err)
			}
			if err := talkers.Feed("Traffic", t); err != nil {
				log.Fatal(err)
			}
		}
		if err := talkers.Advance("Traffic", (sec+1)*streamdb.Second); err != nil {
			log.Fatal(err)
		}
	}
	alert.Close()
	talkers.Close()
	fmt.Printf("\ntotal jumbo-packet alerts: %d\n", alerts)
}
