package tuple

import "testing"

// TestArenaRetainBlocksReuse is the refcount regression for the
// ArenaPool/consumer interaction: a consumer that Retains an arena
// (e.g. a source queue holding a decoded batch while a checkpoint
// barrier stalls the engine) must keep the decoded tuples intact even
// after the producer Puts the arena back, and the storage must only be
// zeroed and recycled once the consumer Releases.
func TestArenaRetainBlocksReuse(t *testing.T) {
	pool := NewArenaPool()
	want := batchTuples(32)
	buf, err := AppendEncodeBatch(nil, batchSchema, want)
	if err != nil {
		t.Fatal(err)
	}

	a := pool.Get()
	got, _, err := DecodeBatchInto(buf, batchSchema, a)
	if err != nil {
		t.Fatal(err)
	}
	tuplesEqual(t, got, want)

	a.Retain() // consumer keeps the batch
	pool.Put(a) // producer is done — must NOT zero or recycle yet

	// The retained arena never reached the freelist: a fresh Get must
	// hand out different storage, and decoding into it must not disturb
	// the retained batch.
	b := pool.Get()
	if b == a {
		t.Fatal("pool recycled an arena with an outstanding retain")
	}
	if _, _, err := DecodeBatchInto(buf, batchSchema, b); err != nil {
		t.Fatal(err)
	}
	pool.Put(b)
	tuplesEqual(t, got, want) // the queued batch survived the producer's Put

	// Last reference gone: the arena is zeroed (so it pins nothing) and
	// becomes recyclable. The Tuple structs themselves are zeroed too,
	// so grab the value backing first.
	vals := got[0].Vals
	a.Release()
	for j := range vals {
		if vals[j] != (Value{}) {
			t.Fatalf("arena storage not zeroed after final release: %v", vals[j])
		}
	}
	// got aliases the arena's ptrs array, which the release nils too.
	if got[0] != nil {
		t.Fatal("arena tuple pointers not zeroed after final release")
	}
}

// TestArenaUnpooledLifecycle: a zero-value Arena (no pool) supports the
// same Retain/Release protocol; the final Release zeroes storage but has
// no freelist to return to.
func TestArenaUnpooledLifecycle(t *testing.T) {
	want := batchTuples(8)
	buf, err := AppendEncodeBatch(nil, batchSchema, want)
	if err != nil {
		t.Fatal(err)
	}
	a := &Arena{}
	a.Retain()
	got, _, err := DecodeBatchInto(buf, batchSchema, a)
	if err != nil {
		t.Fatal(err)
	}
	tuplesEqual(t, got, want)
	vals := got[0].Vals
	a.Release()
	if vals[0] != (Value{}) {
		t.Fatal("final release did not zero unpooled arena storage")
	}
}
