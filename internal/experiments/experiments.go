// Package experiments implements the reproduction harness: one function
// per figure/table/worked example in the tutorial (see DESIGN.md §3 for
// the experiment index E1-E16). Each returns a Table whose rows mirror
// the shape of the paper's artifact; cmd/experiments prints them and
// the root bench_test.go wraps them in testing.B benchmarks.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's result in paper shape.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				b.WriteString("  ")
			}
			w := len(c)
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s", w, c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Scale controls experiment sizes: 1 is the full paper-shaped run,
// smaller fractions shrink workloads for quick benchmarking.
type Scale float64

// N scales a base count, with a floor to keep experiments meaningful.
func (s Scale) N(base int) int {
	n := int(float64(base) * float64(s))
	if n < 100 {
		n = 100
	}
	return n
}
