package dsms

// Wire protocol v3 coverage: negotiation and byte-level interop with
// v2-only peers, batch-granular replay under chaos, mid-batch resume
// dedupe, transport counters, and the BulkSource path into the batched
// execution engine.

import (
	"bufio"
	"bytes"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"streamdb/internal/exec"
	"streamdb/internal/expr"
	"streamdb/internal/ops"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

// sendAll drives a writer through n tuples and Close, returning the
// tuples sent.
func sendAll(t *testing.T, w *ReconnectWriter, n int) []*tuple.Tuple {
	t.Helper()
	sent := mkTuples(n)
	for _, tp := range sent {
		if err := w.Send(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return sent
}

func TestWireV3RoundTrip(t *testing.T) {
	addr, srv, wait := testServer(t, 1, SessionConfig{})
	w, err := NewReconnectWriter(ReconnectConfig{
		StreamID:      "s1",
		Dial:          func() (net.Conn, error) { return net.Dial("tcp", addr) },
		Schema:        sch,
		WireBatch:     16,
		FlushInterval: -1,
		AckEvery:      64,
	})
	if err != nil {
		t.Fatal(err)
	}
	sent := sendAll(t, w, 100)
	got := wait()["s1"]
	if !bytes.Equal(encodeAll(got), encodeAll(sent)) {
		t.Fatalf("v3 delivered %d tuples differing from %d sent", len(got), len(sent))
	}
	if v := w.NegotiatedWire(); v != wireV3 {
		t.Errorf("negotiated wire %d, want 3", v)
	}
	st := srv.Stats()
	if st.V3Conns == 0 || st.Batches == 0 {
		t.Errorf("server saw no v3 activity: %+v", st)
	}
	if st.Frames != 100 || st.Dupes != 0 {
		t.Errorf("server stats: %+v", st)
	}
	if ws := w.Stats(); ws.Sent != 100 || ws.Bytes == 0 {
		t.Errorf("client stats: %+v", ws)
	}
}

func TestWireV3ClientAgainstV2OnlyServerDowngrades(t *testing.T) {
	// A server that predates v3 (emulated by MaxWireVersion) drops the
	// HELLO3 connection; the client must fall back to v2 and deliver an
	// identical tuple sequence.
	addr, srv, wait := testServer(t, 1, SessionConfig{MaxWireVersion: 2})
	w, err := NewReconnectWriter(ReconnectConfig{
		StreamID:      "s1",
		Dial:          func() (net.Conn, error) { return net.Dial("tcp", addr) },
		Schema:        sch,
		WireBatch:     16,
		FlushInterval: -1,
		BaseBackoff:   time.Millisecond,
		MaxBackoff:    2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	sent := sendAll(t, w, 100)
	got := wait()["s1"]
	if !bytes.Equal(encodeAll(got), encodeAll(sent)) {
		t.Fatalf("downgraded delivery differs: %d vs %d tuples", len(got), len(sent))
	}
	if v := w.NegotiatedWire(); v != wireV2 {
		t.Errorf("negotiated wire %d, want 2", v)
	}
	st := srv.Stats()
	if st.V3Conns != 0 || st.Batches != 0 {
		t.Errorf("v2-only server recorded v3 activity: %+v", st)
	}
	if st.Frames != 100 {
		t.Errorf("server applied %d tuples, want 100", st.Frames)
	}
}

func TestWireV2ClientAgainstV3Server(t *testing.T) {
	// The reverse direction: a client without a schema speaks plain v2
	// to a v3-capable server.
	addr, srv, wait := testServer(t, 1, SessionConfig{})
	w, err := NewReconnectWriter(ReconnectConfig{
		StreamID: "s1",
		Dial:     func() (net.Conn, error) { return net.Dial("tcp", addr) },
	})
	if err != nil {
		t.Fatal(err)
	}
	sent := sendAll(t, w, 100)
	got := wait()["s1"]
	if !bytes.Equal(encodeAll(got), encodeAll(sent)) {
		t.Fatal("v2 client against v3 server: delivery differs")
	}
	if st := srv.Stats(); st.V3Conns != 0 || st.Batches != 0 || st.Frames != 100 {
		t.Errorf("server stats: %+v", st)
	}
}

func TestWireForcedV2StillBatchesSends(t *testing.T) {
	// WireVersion 2 with WireBatch set: the coalescing buffer still
	// amortizes locking but frames degrade to per-tuple v2 DATA.
	addr, srv, wait := testServer(t, 1, SessionConfig{})
	w, err := NewReconnectWriter(ReconnectConfig{
		StreamID:      "s1",
		Dial:          func() (net.Conn, error) { return net.Dial("tcp", addr) },
		Schema:        sch,
		WireVersion:   2,
		WireBatch:     16,
		FlushInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sent := sendAll(t, w, 100)
	got := wait()["s1"]
	if !bytes.Equal(encodeAll(got), encodeAll(sent)) {
		t.Fatal("forced-v2 delivery differs")
	}
	if v := w.NegotiatedWire(); v != wireV2 {
		t.Errorf("negotiated wire %d, want 2", v)
	}
	if st := srv.Stats(); st.Batches != 0 || st.Frames != 100 {
		t.Errorf("server stats: %+v", st)
	}
}

func TestWireV3SendBatchExplicit(t *testing.T) {
	addr, srv, wait := testServer(t, 1, SessionConfig{})
	w, err := NewReconnectWriter(ReconnectConfig{
		StreamID: "s1",
		Dial:     func() (net.Conn, error) { return net.Dial("tcp", addr) },
		Schema:   sch,
		AckEvery: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	sent := mkTuples(100)
	for i := 0; i < len(sent); i += 25 {
		if err := w.SendBatch(sent[i : i+25]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := wait()["s1"]
	if !bytes.Equal(encodeAll(got), encodeAll(sent)) {
		t.Fatal("SendBatch delivery differs")
	}
	if st := srv.Stats(); st.Batches != 4 || st.Frames != 100 {
		t.Errorf("server stats: %+v", st)
	}
}

func TestWireAutoBatchTimerFlush(t *testing.T) {
	// A partially filled auto-batch must reach the wire via the flush
	// timer, not wait for WireBatch tuples that never come.
	addr, srv, wait := testServer(t, 1, SessionConfig{})
	w, err := NewReconnectWriter(ReconnectConfig{
		StreamID:      "s1",
		Dial:          func() (net.Conn, error) { return net.Dial("tcp", addr) },
		Schema:        sch,
		WireBatch:     64,
		FlushInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	sent := mkTuples(3)
	for _, tp := range sent {
		if err := w.Send(tp); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for w.Buffered() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if w.Buffered() != 3 {
		t.Fatalf("timer did not flush the open batch: %d buffered", w.Buffered())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := wait()["s1"]
	if !bytes.Equal(encodeAll(got), encodeAll(sent)) {
		t.Fatal("timer-flushed delivery differs")
	}
	if st := srv.Stats(); st.Batches != 1 || st.Frames != 3 {
		t.Errorf("server stats: %+v", st)
	}
}

func TestWireBatchChaosExactlyOnce(t *testing.T) {
	// E17-style chaos over batched frames: drops and corruption force
	// reconnects; batch-granular replay must still deliver exactly once
	// in order. Faults start on the second dial so the version
	// negotiation itself is clean and the whole run stays on v3.
	addr, srv, wait := testServer(t, 1, SessionConfig{})
	var dials int
	w, err := NewReconnectWriter(ReconnectConfig{
		StreamID: "s1",
		Dial: func() (net.Conn, error) {
			c, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			dials++
			if dials == 1 {
				return c, nil
			}
			return InjectFaults(c, FaultConfig{Seed: int64(dials), DropRate: 0.05, CorruptRate: 0.02}), nil
		},
		Schema:        sch,
		WireBatch:     8,
		FlushInterval: -1,
		AckEvery:      16,
		BaseBackoff:   time.Millisecond,
		MaxBackoff:    5 * time.Millisecond,
		Timeout:       2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	sent := mkTuples(800)
	for i, tp := range sent {
		if err := w.Send(tp); err != nil {
			t.Fatal(err)
		}
		if i == 100 {
			// Cut the healthy first connection to move onto faulty ones.
			w.mu.Lock()
			if w.conn != nil {
				w.conn.Close()
			}
			w.mu.Unlock()
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := wait()["s1"]
	if len(got) != len(sent) {
		t.Fatalf("delivered %d tuples, want %d (exactly-once violated)", len(got), len(sent))
	}
	if !bytes.Equal(encodeAll(got), encodeAll(sent)) {
		t.Fatal("delivered tuples differ from sent (order or content corrupted)")
	}
	ws := w.Stats()
	if ws.Reconnects == 0 {
		t.Error("no reconnects; chaos ineffective")
	}
	if v := w.NegotiatedWire(); v != wireV3 {
		t.Errorf("run degraded to wire v%d", v)
	}
	st := srv.Stats()
	if st.Batches == 0 {
		t.Error("no batch frames applied")
	}
	t.Logf("client: %+v; server: %+v", ws, st)
}

func TestWireResumeMidBatch(t *testing.T) {
	// Hand-crafted frames: after a resume, a replayed batch overlapping
	// the applied prefix must emit only its unseen suffix.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewSessionServer(ln, sch, SessionConfig{})
	var mu sync.Mutex
	var got []*tuple.Tuple
	done := make(chan error, 1)
	go func() {
		done <- srv.Serve(1, func(_ string, tp *tuple.Tuple) {
			mu.Lock()
			got = append(got, tp)
			mu.Unlock()
		})
	}()
	ts := mkTuples(12)

	dial := func() (net.Conn, *bufio.Writer, *bufio.Reader, uint64) {
		t.Helper()
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		bw, br := bufio.NewWriter(conn), bufio.NewReader(conn)
		granted, last, err := handshake3(conn, bw, br, "s1", time.Second)
		if err != nil || granted != wireV3 {
			t.Fatalf("handshake3: granted %d, err %v", granted, err)
		}
		return conn, bw, br, last
	}
	sendBatch := func(bw *bufio.Writer, br *bufio.Reader, first uint64, batch []*tuple.Tuple) uint64 {
		t.Helper()
		payload, err := tuple.AppendEncodeBatch(nil, sch, batch)
		if err != nil {
			t.Fatal(err)
		}
		if err := writeBatchFrame(bw, first, uint64(len(batch)), payload); err != nil {
			t.Fatal(err)
		}
		if err := bw.WriteByte(frameHeartbeat); err != nil {
			t.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		acked, err := readSeqFrame(br, frameAck)
		if err != nil {
			t.Fatal(err)
		}
		return acked
	}

	conn, bw, br, last := dial()
	if last != 0 {
		t.Fatalf("fresh session resumed at %d", last)
	}
	if acked := sendBatch(bw, br, 1, ts[0:8]); acked != 8 {
		t.Fatalf("acked %d, want 8", acked)
	}
	conn.Close() // die mid-stream

	conn, bw, br, last = dial()
	if last != 8 {
		t.Fatalf("resume point %d, want 8", last)
	}
	// Replay a batch that starts before the resume point: seqs 5..12,
	// of which 5..8 are already applied.
	if acked := sendBatch(bw, br, 5, ts[4:12]); acked != 12 {
		t.Fatalf("acked %d, want 12", acked)
	}
	if err := writeSeqFrame(bw, frameEOS, 12); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if final, err := readSeqFrame(br, frameEOSAck); err != nil || final != 12 {
		t.Fatalf("EOSACK %d, err %v", final, err)
	}
	conn.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if !bytes.Equal(encodeAll(got), encodeAll(ts)) {
		t.Fatalf("mid-batch overlap broke exactly-once: %d tuples delivered", len(got))
	}
	st := srv.Stats()
	if st.Dupes != 4 {
		t.Errorf("dupes %d, want 4 (the overlapped prefix)", st.Dupes)
	}
	if st.Batches != 2 || st.Frames != 12 {
		t.Errorf("stats: %+v", st)
	}
}

func TestWireBatchGapForcesResume(t *testing.T) {
	// A batch frame ahead of the high-water mark means this connection
	// lost frames: the server must drop it rather than apply out of
	// order.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewSessionServer(ln, sch, SessionConfig{})
	go srv.Serve(1, nil)
	defer ln.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	bw, br := bufio.NewWriter(conn), bufio.NewReader(conn)
	if _, _, err := handshake3(conn, bw, br, "s1", time.Second); err != nil {
		t.Fatal(err)
	}
	ts := mkTuples(4)
	payload, err := tuple.AppendEncodeBatch(nil, sch, ts)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeBatchFrame(bw, 3, 4, payload); err != nil { // gap: expects 1
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := br.ReadByte(); err == nil {
		t.Fatal("server kept a gapped connection alive")
	}
	if st := srv.Stats(); st.Corrupt == 0 || st.Frames != 0 {
		t.Errorf("stats after gap: %+v", st)
	}
}

func TestSessionSourceFeedsBatchedEngine(t *testing.T) {
	// The network source must feed exec.RunWith's batch path directly:
	// SessionServer -> SessionSource (BulkSource) -> Select -> sink.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewSessionServer(ln, sch, SessionConfig{})
	src := NewSessionSource(srv, 1, 0)

	var out []*tuple.Tuple
	g := exec.NewGraph(func(e stream.Element) {
		if !e.IsPunct() {
			out = append(out, e.Tuple)
		}
	})
	si := g.AddSource(src)
	pred, err := expr.NewBin(expr.OpGe, expr.MustColumn(sch, "v"), expr.Constant(tuple.Float(0)))
	if err != nil {
		t.Fatal(err)
	}
	sel, err := ops.NewSelect("sel", sch, pred, -1, 1)
	if err != nil {
		t.Fatal(err)
	}
	id := g.AddOp(sel)
	if err := g.ConnectSource(si, id, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.ConnectOut(id); err != nil {
		t.Fatal(err)
	}
	runDone := make(chan struct{})
	go func() {
		g.RunWith(-1, exec.RunOptions{BatchSize: 32})
		close(runDone)
	}()

	w, err := NewReconnectWriter(ReconnectConfig{
		StreamID:      "s1",
		Dial:          func() (net.Conn, error) { return net.Dial("tcp", ln.Addr().String()) },
		Schema:        sch,
		WireBatch:     16,
		FlushInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sent := sendAll(t, w, 300)
	select {
	case <-runDone:
	case <-time.After(10 * time.Second):
		t.Fatal("engine did not finish after all streams completed")
	}
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeAll(out), encodeAll(sent)) {
		t.Fatalf("engine saw %d tuples differing from %d sent", len(out), len(sent))
	}
}

func TestTransportCountersAndPeerDeath(t *testing.T) {
	// Satellite coverage: Writer.Send/Reader.Next counters and
	// Reader.Close error propagation when the peer dies mid-stream, in
	// both per-tuple and batch modes.
	for _, batch := range []bool{false, true} {
		name := "pertuple"
		if batch {
			name = "batch"
		}
		t.Run(name+"/clean", func(t *testing.T) {
			client, server := pipeConn(t)
			var w *Writer
			var r *Reader
			if batch {
				w, r = NewBatchWriter(client, sch), NewBatchReader(server, sch)
			} else {
				w, r = NewWriter(client), NewReader(server, sch)
			}
			ts := mkTuples(40)
			if err := w.SendBatch(ts[:30]); err != nil {
				t.Fatal(err)
			}
			for _, tp := range ts[30:] {
				if err := w.Send(tp); err != nil {
					t.Fatal(err)
				}
			}
			if w.Sent != 40 || w.Bytes == 0 {
				t.Errorf("writer counters: Sent=%d Bytes=%d", w.Sent, w.Bytes)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			got := stream.DrainTuples(r)
			if !bytes.Equal(encodeAll(got), encodeAll(ts)) {
				t.Fatalf("delivered %d tuples differ", len(got))
			}
			if r.Received != 40 {
				t.Errorf("reader Received=%d, want 40", r.Received)
			}
			if err := r.Close(); err != nil {
				t.Errorf("clean EOS reported error: %v", err)
			}
		})
		t.Run(name+"/peerdeath", func(t *testing.T) {
			client, server := pipeConn(t)
			var w *Writer
			var r *Reader
			if batch {
				w, r = NewBatchWriter(client, sch), NewBatchReader(server, sch)
			} else {
				w, r = NewWriter(client), NewReader(server, sch)
			}
			if err := w.SendBatch(mkTuples(5)); err != nil {
				t.Fatal(err)
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			client.Close() // die without the EOS frame
			if got := stream.DrainTuples(r); len(got) != 5 {
				t.Fatalf("got %d tuples before death", len(got))
			}
			if err := r.Close(); err == nil {
				t.Error("mid-stream peer death reported as clean EOS")
			}
			if r.Received != 5 {
				t.Errorf("Received=%d, want 5", r.Received)
			}
		})
	}
}

func TestReaderRejectsOversizedFrame(t *testing.T) {
	// Regression: a corrupt length varint must not drive an unbounded
	// allocation; the frame is rejected against maxFramePayload.
	client, server := pipeConn(t)
	var hdr []byte
	hdr = appendUvarintBytes(hdr, maxFramePayload+1)
	if _, err := client.Write(hdr); err != nil {
		t.Fatal(err)
	}
	client.Close()
	r := NewReader(server, sch)
	if _, ok := r.Next(); ok {
		t.Fatal("oversized frame yielded a tuple")
	}
	if r.Err == nil || !strings.Contains(r.Err.Error(), "exceeds limit") {
		t.Errorf("oversized frame error: %v", r.Err)
	}
}

func appendUvarintBytes(buf []byte, v uint64) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

func TestReconnectCountersBothWires(t *testing.T) {
	// Client counters must behave identically under v2 and v3
	// negotiation: Sent counts tuples, Bytes counts wire bytes, and the
	// v3 encoding must come in strictly smaller for the same tuples.
	run := func(v3 bool) ReconnectStats {
		streams := 1
		addr, _, wait := testServer(t, streams, SessionConfig{})
		cfg := ReconnectConfig{
			StreamID:      "s1",
			Dial:          func() (net.Conn, error) { return net.Dial("tcp", addr) },
			AckEvery:      64,
			FlushInterval: -1,
		}
		if v3 {
			cfg.Schema = sch
			cfg.WireBatch = 64
		}
		w, err := NewReconnectWriter(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sent := sendAll(t, w, 256)
		got := wait()["s1"]
		if !bytes.Equal(encodeAll(got), encodeAll(sent)) {
			t.Fatal("delivery differs")
		}
		return w.Stats()
	}
	v2 := run(false)
	v3 := run(true)
	if v2.Sent != 256 || v3.Sent != 256 {
		t.Errorf("Sent: v2=%d v3=%d, want 256", v2.Sent, v3.Sent)
	}
	if v2.Bytes == 0 || v3.Bytes == 0 {
		t.Fatalf("Bytes not counted: v2=%d v3=%d", v2.Bytes, v3.Bytes)
	}
	if float64(v3.Bytes) > 0.7*float64(v2.Bytes) {
		t.Errorf("v3 wire bytes %d not ≥30%% below v2's %d", v3.Bytes, v2.Bytes)
	}
	t.Logf("bytes/tuple: v2=%.1f v3=%.1f", float64(v2.Bytes)/256, float64(v3.Bytes)/256)
}

func TestWireBatchReplayBufferBounded(t *testing.T) {
	// The AckEvery bound still holds at tuple granularity when frames
	// are batched.
	addr, _, wait := testServer(t, 1, SessionConfig{})
	const ackEvery = 32
	w, err := NewReconnectWriter(ReconnectConfig{
		StreamID:      "s1",
		Dial:          func() (net.Conn, error) { return net.Dial("tcp", addr) },
		Schema:        sch,
		WireBatch:     8,
		FlushInterval: -1,
		AckEvery:      ackEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range mkTuples(200) {
		if err := w.Send(tp); err != nil {
			t.Fatal(err)
		}
		if b := w.Buffered(); b > ackEvery {
			t.Fatalf("replay buffer %d tuples exceeds bound %d", b, ackEvery)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	wait()
	if mb := w.Stats().MaxBuffered; mb > ackEvery {
		t.Errorf("MaxBuffered %d exceeds bound %d", mb, ackEvery)
	}
}
