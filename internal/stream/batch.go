package stream

import (
	"sync"

	"streamdb/internal/tuple"
)

// This file holds the micro-batching support used by the concurrent
// execution engine: pooled element slices that amortize allocation on
// the hot path, and bulk reads for sources that can deliver many
// elements per call.

// BatchPool recycles element slices of a common target capacity through
// a sync.Pool so the batched execution path allocates O(pipeline depth)
// buffers instead of O(elements).
type BatchPool struct {
	size int
	pool sync.Pool
}

// NewBatchPool builds a pool of element slices with the given target
// capacity (minimum 1).
func NewBatchPool(size int) *BatchPool {
	if size < 1 {
		size = 1
	}
	p := &BatchPool{size: size}
	p.pool.New = func() interface{} {
		b := make([]Element, 0, size)
		return &b
	}
	return p
}

// Size reports the target batch capacity.
func (p *BatchPool) Size() int { return p.size }

// Get returns an empty batch with at least the pool's target capacity.
func (p *BatchPool) Get() []Element {
	return (*p.pool.Get().(*[]Element))[:0]
}

// Put recycles a batch. The slice is zeroed first so pooled buffers do
// not pin tuples against the garbage collector.
func (p *BatchPool) Put(b []Element) {
	if cap(b) == 0 {
		return
	}
	b = b[:cap(b)]
	for i := range b {
		b[i] = Element{}
	}
	b = b[:0]
	p.pool.Put(&b)
}

// BulkSource is implemented by sources that can deliver many elements in
// one call, amortizing the per-element interface dispatch of Next. The
// batched engine uses it when filling edge batches from a source.
type BulkSource interface {
	Source
	// NextBatch appends up to max elements to dst and returns the
	// extended slice. The second result is false once the source is
	// exhausted (mirroring Next); a short append with true means "more
	// later" for resumable sources.
	NextBatch(dst []Element, max int) ([]Element, bool)
}

// AppendTuples appends one element per tuple to dst: the bridge from
// batch-granular producers (e.g. a network transport decoding whole
// frames) into the element batches the engine moves.
func AppendTuples(dst []Element, tuples []*tuple.Tuple) []Element {
	for _, t := range tuples {
		dst = append(dst, Tup(t))
	}
	return dst
}

// NextBatch implements BulkSource: a slice replay can hand out its
// backing array in whole chunks.
func (s *SliceSource) NextBatch(dst []Element, max int) ([]Element, bool) {
	if s.pos >= len(s.elems) {
		return dst, false
	}
	n := len(s.elems) - s.pos
	if n > max {
		n = max
	}
	dst = append(dst, s.elems[s.pos:s.pos+n]...)
	s.pos += n
	return dst, s.pos < len(s.elems)
}
