package expr

// Column kernels must be exactly EvalBool over every row: the compiled
// kernel is checked against the generic evaluator on the same
// adversarial grid the scalar fast lane uses (NULLs, runtime kind
// deviations, boundary values), plus randomized batches, under both a
// nil selection (dense scan) and sparse input selections — including
// the in-place dst-aliases-sel refinement the Select operator performs.

import (
	"math/rand"
	"testing"

	"streamdb/internal/tuple"
)

// kernelBatch transposes tuples into the column layout kernels consume.
func kernelBatch(tuples []*tuple.Tuple) (cols [][]tuple.Value, ts []int64) {
	arity := fastSch.Arity()
	cols = make([][]tuple.Value, arity)
	for _, tp := range tuples {
		ts = append(ts, tp.Ts)
		for c := 0; c < arity; c++ {
			cols[c] = append(cols[c], tp.Vals[c])
		}
	}
	return cols, ts
}

// wantSel is the reference result: EvalBool row by row over the input
// selection (or all rows when sel is nil).
func wantSel(e Expr, tuples []*tuple.Tuple, sel []int32) []int32 {
	out := []int32{}
	if sel == nil {
		for r := range tuples {
			if EvalBool(e, tuples[r]) {
				out = append(out, int32(r))
			}
		}
		return out
	}
	for _, r := range sel {
		if EvalBool(e, tuples[r]) {
			out = append(out, r)
		}
	}
	return out
}

func selEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// kernelTuples extends the scalar lane's adversarial grid with
// randomized rows so batches are long enough to exercise the loops.
func kernelTuples() []*tuple.Tuple {
	out := fastTuples()
	rng := rand.New(rand.NewSource(42))
	val := func(k int) tuple.Value {
		switch k {
		case 0:
			return tuple.Null
		case 1:
			return tuple.Int(rng.Int63n(20) - 10)
		case 2:
			return tuple.Uint(uint64(rng.Int63n(20)))
		case 3:
			return tuple.Float(float64(rng.Int63n(40))/4 - 5)
		default:
			return tuple.Time(rng.Int63n(50))
		}
	}
	for i := 0; i < 200; i++ {
		ts := rng.Int63n(100)
		vals := []tuple.Value{tuple.Time(ts)}
		// Mostly schema-conforming values, occasionally a deviating kind
		// or NULL, so the typed loops and their fallback branch both run.
		mix := func(conform int) tuple.Value {
			if rng.Intn(10) == 0 {
				return val(rng.Intn(5))
			}
			return val(conform)
		}
		vals = append(vals, mix(1), mix(2), mix(3))
		out = append(out, tuple.New(ts, vals...))
	}
	return out
}

func TestKernelMatchesEvalBool(t *testing.T) {
	tuples := kernelTuples()
	cols, ts := kernelBatch(tuples)
	var sparse []int32 // every third row, a sparse input selection
	for r := 0; r < len(tuples); r += 3 {
		sparse = append(sparse, int32(r))
	}
	checked := 0
	for _, cn := range []string{"time", "i", "u", "f"} {
		for _, lit := range fastLits() {
			for _, op := range cmpOps {
				for _, flip := range []bool{false, true} {
					var l, r Expr
					if flip {
						l, r = Constant(lit), MustColumn(fastSch, cn)
					} else {
						l, r = MustColumn(fastSch, cn), Constant(lit)
					}
					e, err := NewBin(op, l, r)
					if err != nil {
						t.Fatal(err)
					}
					kern := CompileKernel(e, fastSch.Arity())
					for _, sel := range [][]int32{nil, sparse} {
						got := kern(cols, ts, sel, nil)
						want := wantSel(e, tuples, sel)
						if !selEqual(got, want) {
							t.Fatalf("%s %v lit=%s flip=%v sel=%v: kernel %v, EvalBool %v",
								cn, op, lit, flip, sel != nil, got, want)
						}
					}
					checked++
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no kernels checked")
	}
	t.Logf("verified %d kernels against EvalBool", checked)
}

func TestKernelBooleanComposition(t *testing.T) {
	cmp := func(cn string, op BinOp, lit tuple.Value) Expr {
		e, err := NewBin(op, MustColumn(fastSch, cn), Constant(lit))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	parts := []Expr{
		cmp("i", OpGt, tuple.Int(0)),
		cmp("u", OpLe, tuple.Uint(7)),
		cmp("f", OpNe, tuple.Float(7)),
		cmp("time", OpGe, tuple.Time(3)),
	}
	var exprs []Expr
	for i := range parts {
		for j := range parts {
			and, err := NewBin(OpAnd, parts[i], parts[j])
			if err != nil {
				t.Fatal(err)
			}
			or, err := NewBin(OpOr, parts[i], parts[j])
			if err != nil {
				t.Fatal(err)
			}
			nested, err := NewBin(OpOr, and, or)
			if err != nil {
				t.Fatal(err)
			}
			exprs = append(exprs, and, or, nested, &Not{E: parts[i]})
		}
	}
	tuples := kernelTuples()
	cols, ts := kernelBatch(tuples)
	var sparse []int32
	for r := 1; r < len(tuples); r += 2 {
		sparse = append(sparse, int32(r))
	}
	for ei, e := range exprs {
		kern := CompileKernel(e, fastSch.Arity())
		for _, sel := range [][]int32{nil, sparse} {
			got := kern(cols, ts, sel, nil)
			want := wantSel(e, tuples, sel)
			if !selEqual(got, want) {
				t.Fatalf("expr %d sel=%v: kernel %v, EvalBool %v", ei, sel != nil, got, want)
			}
		}
	}
}

// TestKernelInPlaceRefinement: the Select operator refines an exclusive
// batch's selection in place — dst aliases sel. AND's sequential
// refinement and OR's merge-union must both tolerate that aliasing.
func TestKernelInPlaceRefinement(t *testing.T) {
	cmp := func(cn string, op BinOp, lit tuple.Value) Expr {
		e, err := NewBin(op, MustColumn(fastSch, cn), Constant(lit))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	and, err := NewBin(OpAnd, cmp("i", OpGt, tuple.Int(-5)), cmp("u", OpLt, tuple.Uint(15)))
	if err != nil {
		t.Fatal(err)
	}
	or, err := NewBin(OpOr, cmp("i", OpGt, tuple.Int(5)), cmp("f", OpLt, tuple.Float(0)))
	if err != nil {
		t.Fatal(err)
	}
	both, err := NewBin(OpAnd, and, or)
	if err != nil {
		t.Fatal(err)
	}
	tuples := kernelTuples()
	cols, ts := kernelBatch(tuples)
	for name, e := range map[string]Expr{"and": and, "or": or, "nested": both} {
		kern := CompileKernel(e, fastSch.Arity())
		sel := make([]int32, 0, len(tuples))
		for r := 0; r < len(tuples); r++ {
			sel = append(sel, int32(r))
		}
		want := wantSel(e, tuples, sel)
		got := kern(cols, ts, sel, sel[:0]) // dst aliases sel
		if !selEqual(got, want) {
			t.Fatalf("%s in-place: kernel %v, EvalBool %v", name, got, want)
		}
		// Refine the survivors again: idempotent for a pure predicate.
		again := kern(cols, ts, got, got[:0])
		if !selEqual(again, want) {
			t.Fatalf("%s re-refine: kernel %v, want %v", name, again, want)
		}
	}
}
