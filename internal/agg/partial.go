package agg

import (
	"fmt"

	"streamdb/internal/expr"
	"streamdb/internal/ops"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

// Partializable is implemented by aggregate states that can ship a
// fixed-arity partial representation to a higher-level combiner. Only
// distributive and algebraic aggregates qualify — holistic states have
// unbounded partials, which is exactly why Gigascope's low level cannot
// compute them (slides 34-37).
type Partializable interface {
	State
	// PartialVals serializes the accumulator into a fixed set of values.
	PartialVals() []tuple.Value
	// PartialKinds reports the serialized column kinds.
	PartialKinds() []tuple.Kind
	// MergePartial folds a serialized partial into the accumulator.
	MergePartial(vals []tuple.Value) error
}

// PartialVals implements Partializable for countState.
func (s *countState) PartialVals() []tuple.Value { return []tuple.Value{tuple.Int(s.n)} }

// PartialKinds implements Partializable for countState.
func (s *countState) PartialKinds() []tuple.Kind { return []tuple.Kind{tuple.KindInt} }

// MergePartial implements Partializable for countState.
func (s *countState) MergePartial(vals []tuple.Value) error {
	n, ok := vals[0].AsInt()
	if !ok {
		return fmt.Errorf("agg: bad count partial")
	}
	s.n += n
	return nil
}

// PartialVals implements Partializable for sumState.
func (s *sumState) PartialVals() []tuple.Value {
	return []tuple.Value{tuple.Float(s.sum), tuple.Bool(s.any)}
}

// PartialKinds implements Partializable for sumState.
func (s *sumState) PartialKinds() []tuple.Kind {
	return []tuple.Kind{tuple.KindFloat, tuple.KindBool}
}

// MergePartial implements Partializable for sumState.
func (s *sumState) MergePartial(vals []tuple.Value) error {
	f, ok1 := vals[0].AsFloat()
	a, ok2 := vals[1].AsBool()
	if !ok1 || !ok2 {
		return fmt.Errorf("agg: bad sum partial")
	}
	s.sum += f
	s.any = s.any || a
	return nil
}

// PartialVals implements Partializable for minmaxState.
func (s *minmaxState) PartialVals() []tuple.Value { return []tuple.Value{s.best} }

// PartialKinds implements Partializable for minmaxState.
func (s *minmaxState) PartialKinds() []tuple.Kind { return []tuple.Kind{s.best.Kind} }

// MergePartial implements Partializable for minmaxState.
func (s *minmaxState) MergePartial(vals []tuple.Value) error {
	s.Add(vals[0])
	return nil
}

// PartialVals implements Partializable for avgState.
func (s *avgState) PartialVals() []tuple.Value {
	return []tuple.Value{tuple.Float(s.sum), tuple.Int(s.n)}
}

// PartialKinds implements Partializable for avgState.
func (s *avgState) PartialKinds() []tuple.Kind {
	return []tuple.Kind{tuple.KindFloat, tuple.KindInt}
}

// MergePartial implements Partializable for avgState.
func (s *avgState) MergePartial(vals []tuple.Value) error {
	f, ok1 := vals[0].AsFloat()
	n, ok2 := vals[1].AsInt()
	if !ok1 || !ok2 {
		return fmt.Errorf("agg: bad avg partial")
	}
	s.sum += f
	s.n += n
	return nil
}

// PartialVals implements Partializable for stddevState.
func (s *stddevState) PartialVals() []tuple.Value {
	return []tuple.Value{tuple.Float(s.sum), tuple.Float(s.sq), tuple.Int(s.n)}
}

// PartialKinds implements Partializable for stddevState.
func (s *stddevState) PartialKinds() []tuple.Kind {
	return []tuple.Kind{tuple.KindFloat, tuple.KindFloat, tuple.KindInt}
}

// MergePartial implements Partializable for stddevState.
func (s *stddevState) MergePartial(vals []tuple.Value) error {
	a, ok1 := vals[0].AsFloat()
	b, ok2 := vals[1].AsFloat()
	n, ok3 := vals[2].AsInt()
	if !ok1 || !ok2 || !ok3 {
		return fmt.Errorf("agg: bad stddev partial")
	}
	s.sum += a
	s.sq += b
	s.n += n
	return nil
}

// PartialAgg is the low-level half of Gigascope's two-level aggregation
// (slide 37): a fixed-size direct-mapped group table sized for the
// resource-limited observation point. On a slot collision the incumbent
// partial is emitted downstream and the slot is recycled — "bounded
// number of groups maintained at low level, unbounded number of groups
// maintainable at high level". Slots also flush when the tuple's time
// bucket advances past theirs.
type PartialAgg struct {
	name      string
	groupBy   []expr.Expr
	aggs      []Spec
	bucketLen int64 // time-bucket width; 0 disables bucket flushing
	slots     []*pslot
	out       *tuple.Schema
	curBucket int64
	evictions int64
	emitted   int64
	absorbed  int64
}

type pslot struct {
	keys   []tuple.Value
	bucket int64
	states []Partializable
	used   bool
}

// NewPartialAgg builds the low-level aggregator with the given slot
// count. Every aggregate must be partializable.
func NewPartialAgg(name string, in *tuple.Schema, groupBy []expr.Expr, groupNames []string, aggs []Spec, slots int, bucketLen int64) (*PartialAgg, error) {
	if slots <= 0 {
		return nil, fmt.Errorf("agg: partial aggregation needs positive slot count")
	}
	if len(groupBy) != len(groupNames) {
		return nil, fmt.Errorf("agg: %d group exprs, %d names", len(groupBy), len(groupNames))
	}
	fields := []tuple.Field{{Name: "bucket", Kind: tuple.KindTime, Ordering: true}}
	for i, g := range groupBy {
		fields = append(fields, tuple.Field{Name: groupNames[i], Kind: g.Kind()})
	}
	for _, a := range aggs {
		st := a.Fn.New()
		p, ok := st.(Partializable)
		if !ok {
			return nil, fmt.Errorf("agg: %s (%s) cannot be partially aggregated", a.Fn.Name, a.Fn.Class)
		}
		for j, k := range p.PartialKinds() {
			fields = append(fields, tuple.Field{Name: fmt.Sprintf("%s#%d", a.Name, j), Kind: k})
		}
	}
	pa := &PartialAgg{
		name: name, groupBy: groupBy, aggs: aggs, bucketLen: bucketLen,
		slots: make([]*pslot, slots),
		out:   tuple.NewSchema(name, fields...),
	}
	for i := range pa.slots {
		pa.slots[i] = &pslot{}
	}
	return pa, nil
}

// Name implements ops.Operator.
func (p *PartialAgg) Name() string { return p.name }

// OutSchema implements ops.Operator.
func (p *PartialAgg) OutSchema() *tuple.Schema { return p.out }

// NumInputs implements ops.Operator.
func (p *PartialAgg) NumInputs() int { return 1 }

// Push implements ops.Operator.
func (p *PartialAgg) Push(_ int, e stream.Element, emit ops.Emit) {
	if e.IsPunct() {
		return
	}
	t := e.Tuple
	bucket := int64(0)
	if p.bucketLen > 0 {
		bucket = (t.Ts / p.bucketLen) * p.bucketLen
	}
	// Bucket boundary: flush every slot still holding an older bucket,
	// so the high level can finalize a bucket as soon as it sees a
	// partial from a newer one.
	if bucket > p.curBucket {
		for _, slot := range p.slots {
			if slot.used && slot.bucket < bucket {
				p.flushSlot(slot, emit)
			}
		}
		p.curBucket = bucket
	}
	keys := make([]tuple.Value, len(p.groupBy))
	h := uint64(1469598103934665603)
	for i, ge := range p.groupBy {
		keys[i] = ge.Eval(t)
		h ^= keys[i].Hash()
		h *= 1099511628211
	}
	slot := p.slots[h%uint64(len(p.slots))]
	if slot.used && (slot.bucket != bucket || !keysEqual(slot.keys, keys)) {
		p.flushSlot(slot, emit)
		p.evictions++
	}
	if !slot.used {
		slot.used = true
		slot.keys = keys
		slot.bucket = bucket
		slot.states = make([]Partializable, len(p.aggs))
		for i, a := range p.aggs {
			slot.states[i] = a.Fn.New().(Partializable)
		}
	}
	for i, a := range p.aggs {
		if a.Arg == nil {
			slot.states[i].Add(tuple.Int(1))
		} else {
			slot.states[i].Add(a.Arg.Eval(t))
		}
	}
	p.absorbed++
}

func (p *PartialAgg) flushSlot(slot *pslot, emit ops.Emit) {
	vals := []tuple.Value{tuple.Time(slot.bucket)}
	vals = append(vals, slot.keys...)
	for _, st := range slot.states {
		vals = append(vals, st.PartialVals()...)
	}
	p.emitted++
	emit(stream.Tup(tuple.New(slot.bucket, vals...)))
	slot.used = false
	slot.keys = nil
	slot.states = nil
}

// Flush implements ops.Operator.
func (p *PartialAgg) Flush(emit ops.Emit) {
	for _, slot := range p.slots {
		if slot.used {
			p.flushSlot(slot, emit)
		}
	}
}

// MemSize implements ops.Operator: fixed by construction — the whole
// point of the low-level design.
func (p *PartialAgg) MemSize() int {
	n := 64
	for _, slot := range p.slots {
		n += 24
		if slot.used {
			for _, k := range slot.keys {
				n += k.MemSize()
			}
			for _, st := range slot.states {
				n += st.MemSize()
			}
		}
	}
	return n
}

// Stats reports (tuples absorbed, partials emitted, evictions). The
// data-reduction factor of experiment E8 is absorbed/emitted.
func (p *PartialAgg) Stats() (absorbed, emitted, evictions int64) {
	return p.absorbed, p.emitted, p.evictions
}

// FinalAgg is the high-level half: it re-groups partial records on the
// group keys and merges their partial values, emitting final results
// when the time bucket advances (or at Flush).
type FinalAgg struct {
	name      string
	in        *tuple.Schema
	nkeys     int
	aggs      []Spec
	out       *tuple.Schema
	groups    map[uint64][]*fgroup
	n         int
	watermk   int64
	emitted   int64
	mergeErrs int64
}

type fgroup struct {
	bucket int64
	keys   []tuple.Value
	states []Partializable
}

// NewFinalAgg builds the combiner for partial records produced by a
// PartialAgg with the same group and aggregate specification.
func NewFinalAgg(name string, partial *PartialAgg) (*FinalAgg, error) {
	in := partial.OutSchema()
	nkeys := len(partial.groupBy)
	fields := []tuple.Field{{Name: "bucket", Kind: tuple.KindTime, Ordering: true}}
	fields = append(fields, in.Fields[1:1+nkeys]...)
	for _, a := range partial.aggs {
		argKind := tuple.KindInt
		if a.Arg != nil {
			argKind = a.Arg.Kind()
		}
		fields = append(fields, tuple.Field{Name: a.Name, Kind: a.Fn.Result(argKind)})
	}
	return &FinalAgg{
		name: name, in: in, nkeys: nkeys, aggs: partial.aggs,
		out:    tuple.NewSchema(name, fields...),
		groups: make(map[uint64][]*fgroup),
	}, nil
}

// Name implements ops.Operator.
func (f *FinalAgg) Name() string { return f.name }

// OutSchema implements ops.Operator.
func (f *FinalAgg) OutSchema() *tuple.Schema { return f.out }

// NumInputs implements ops.Operator.
func (f *FinalAgg) NumInputs() int { return 1 }

// Push implements ops.Operator.
func (f *FinalAgg) Push(_ int, e stream.Element, emit ops.Emit) {
	if e.IsPunct() {
		f.advance(e.Punct.Ts, emit)
		return
	}
	t := e.Tuple
	bucket, _ := t.Vals[0].AsTime()
	keys := t.Vals[1 : 1+f.nkeys]
	h := uint64(bucket) * 1099511628211
	for _, k := range keys {
		h ^= k.Hash()
		h *= 1099511628211
	}
	var grp *fgroup
	for _, cand := range f.groups[h] {
		if cand.bucket == bucket && keysEqual(cand.keys, keys) {
			grp = cand
			break
		}
	}
	if grp == nil {
		grp = &fgroup{bucket: bucket, keys: append([]tuple.Value(nil), keys...),
			states: make([]Partializable, len(f.aggs))}
		for i, a := range f.aggs {
			grp.states[i] = a.Fn.New().(Partializable)
		}
		f.groups[h] = append(f.groups[h], grp)
		f.n++
	}
	off := 1 + f.nkeys
	for i := range f.aggs {
		arity := len(grp.states[i].PartialKinds())
		if err := grp.states[i].MergePartial(t.Vals[off : off+arity]); err != nil {
			f.mergeErrs++
		}
		off += arity
	}
	// Buckets strictly older than the incoming partial's bucket are
	// complete once the low level has moved on.
	if bucket > f.watermk {
		f.advance(bucket, emit)
	}
}

func (f *FinalAgg) advance(now int64, emit ops.Emit) {
	if now <= f.watermk {
		return
	}
	f.watermk = now
	for h, chain := range f.groups {
		keep := chain[:0]
		for _, grp := range chain {
			if grp.bucket < now {
				f.emitGroup(grp, emit)
				f.n--
			} else {
				keep = append(keep, grp)
			}
		}
		if len(keep) == 0 {
			delete(f.groups, h)
		} else {
			f.groups[h] = keep
		}
	}
}

func (f *FinalAgg) emitGroup(grp *fgroup, emit ops.Emit) {
	vals := []tuple.Value{tuple.Time(grp.bucket)}
	vals = append(vals, grp.keys...)
	for _, st := range grp.states {
		vals = append(vals, st.Result())
	}
	f.emitted++
	emit(stream.Tup(tuple.New(grp.bucket, vals...)))
}

// Flush implements ops.Operator.
func (f *FinalAgg) Flush(emit ops.Emit) {
	for _, chain := range f.groups {
		for _, grp := range chain {
			f.emitGroup(grp, emit)
		}
	}
	f.groups = make(map[uint64][]*fgroup)
	f.n = 0
}

// MemSize implements ops.Operator.
func (f *FinalAgg) MemSize() int {
	n := 64
	for _, chain := range f.groups {
		for _, grp := range chain {
			n += 32
			for _, k := range grp.keys {
				n += k.MemSize()
			}
			for _, st := range grp.states {
				n += st.MemSize()
			}
		}
	}
	return n
}

// Groups reports the number of live final groups.
func (f *FinalAgg) Groups() int { return f.n }

// Emitted reports final rows produced.
func (f *FinalAgg) Emitted() int64 { return f.emitted }

// MergeErrors reports partial records that failed to merge (malformed
// input, e.g. a stream not produced by the matching PartialAgg).
func (f *FinalAgg) MergeErrors() int64 { return f.mergeErrs }
