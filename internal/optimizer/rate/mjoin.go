package rate

import (
	"fmt"
	"math"
	"sort"
)

// MultiJoinModel predicts the behaviour of an N-way sliding-window
// equijoin [VNB03] ("Maximizing the Output Rate of Multi-Way Join
// Queries over Streaming Information Sources", slide 64's reference
// list): per-stream arrival rates and window lengths determine expected
// window populations; a per-pair match probability determines how many
// candidates survive each probe step.
type MultiJoinModel struct {
	// Rates[i] is stream i's arrival rate in tuples/sec.
	Rates []float64
	// Windows[i] is stream i's window length in seconds.
	Windows []float64
	// MatchProb is the probability an arbitrary pair of tuples from two
	// different streams agrees on the join key.
	MatchProb float64
}

// Validate checks the model.
func (m MultiJoinModel) Validate() error {
	if len(m.Rates) < 2 || len(m.Rates) != len(m.Windows) {
		return fmt.Errorf("rate: multi-join needs matched rates/windows (>= 2)")
	}
	for i := range m.Rates {
		if m.Rates[i] <= 0 || m.Windows[i] <= 0 {
			return fmt.Errorf("rate: stream %d rate/window must be positive", i)
		}
	}
	if m.MatchProb <= 0 || m.MatchProb > 1 {
		return fmt.Errorf("rate: match probability out of (0,1]")
	}
	return nil
}

// population returns the expected live tuple count of stream i's window.
func (m MultiJoinModel) population(i int) float64 {
	return m.Rates[i] * m.Windows[i]
}

// OutputRate predicts result tuples/sec: each arrival on stream i forms
// prod_{j != i} (pop_j * p) complete combinations in expectation.
func (m MultiJoinModel) OutputRate() float64 {
	total := 0.0
	for i := range m.Rates {
		prod := m.Rates[i]
		for j := range m.Rates {
			if j != i {
				prod *= m.population(j) * m.MatchProb
			}
		}
		total += prod
	}
	return total
}

// ProbeCost predicts expected key comparisons per second for a given
// probe order per arrival stream: probing stream o1 first inspects
// pop(o1) candidates; the surviving pop(o1)*p partial matches each
// inspect pop(o2), and so on — the progressive-pruning cost the MJoin
// operator pays.
func (m MultiJoinModel) ProbeCost(orders [][]int) float64 {
	total := 0.0
	for i, order := range orders {
		perArrival := 0.0
		partial := 1.0
		for _, j := range order {
			perArrival += partial * m.population(j)
			partial *= m.population(j) * m.MatchProb
		}
		total += m.Rates[i] * perArrival
	}
	return total
}

// BestProbeOrders returns, per arrival stream, the probe order that
// minimizes expected cost. For the progressive-pruning cost model the
// optimal order visits windows by ascending expected surviving work;
// with a uniform match probability that is simply ascending population
// (exchange argument), which is also [GO03]'s heuristic.
func (m MultiJoinModel) BestProbeOrders() [][]int {
	n := len(m.Rates)
	orders := make([][]int, n)
	for i := 0; i < n; i++ {
		var others []int
		for j := 0; j < n; j++ {
			if j != i {
				others = append(others, j)
			}
		}
		sort.SliceStable(others, func(a, b int) bool {
			return m.population(others[a]) < m.population(others[b])
		})
		orders[i] = others
	}
	return orders
}

// WorstProbeOrders returns the reverse (descending population) order,
// the baseline the optimization is measured against.
func (m MultiJoinModel) WorstProbeOrders() [][]int {
	best := m.BestProbeOrders()
	for _, o := range best {
		for l, r := 0, len(o)-1; l < r; l, r = l+1, r-1 {
			o[l], o[r] = o[r], o[l]
		}
	}
	return best
}

// StateSize predicts total resident tuples across windows.
func (m MultiJoinModel) StateSize() float64 {
	total := 0.0
	for i := range m.Rates {
		total += m.population(i)
	}
	return total
}

// TrimWindowsForBudget shrinks windows proportionally until the state
// fits the tuple budget, returning the scale factor applied — the
// memory-limited operating point (slide 33's second regime) for
// multi-way joins.
func (m *MultiJoinModel) TrimWindowsForBudget(budget float64) float64 {
	s := m.StateSize()
	if s <= budget || s == 0 {
		return 1
	}
	f := budget / s
	for i := range m.Windows {
		m.Windows[i] *= f
	}
	return f
}

// OutputPerProbe is the rate-based figure of merit: results per unit of
// probe work under the best probe orders. Plans (window assignments)
// with higher values dominate when CPU is the constraint.
func (m MultiJoinModel) OutputPerProbe() float64 {
	cost := m.ProbeCost(m.BestProbeOrders())
	if cost == 0 {
		return math.Inf(1)
	}
	return m.OutputRate() / cost
}
