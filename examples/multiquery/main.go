// Multi-query stream processing (slide 45): many standing queries over
// the same streams share work. Part 1 shares selection predicates;
// part 2 shares one physical sliding-window join among queries with
// different window sizes [HFAE03].
package main

import (
	"fmt"
	"log"

	"streamdb/internal/expr"
	"streamdb/internal/optimizer/share"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

func main() {
	sch := stream.TrafficSchema("Traffic")
	length := expr.MustColumn(sch, "length")
	proto := expr.MustColumn(sch, "protocol")

	// Part 1: 100 monitoring queries, but only 5 distinct predicates —
	// the shared evaluator computes each once per tuple.
	ss := share.NewSharedSelect("monitors", sch)
	matched := make([]int, 100)
	for q := 0; q < 100; q++ {
		var pred expr.Expr
		switch q % 5 {
		case 0:
			pred, _ = expr.NewBin(expr.OpGt, length, expr.Constant(tuple.Int(1200)))
		case 1:
			pred, _ = expr.NewBin(expr.OpLt, length, expr.Constant(tuple.Int(100)))
		case 2:
			pred, _ = expr.NewBin(expr.OpEq, proto, expr.Constant(tuple.Int(17)))
		case 3:
			pred, _ = expr.NewBin(expr.OpEq, proto, expr.Constant(tuple.Int(6)))
		default:
			pred, _ = expr.NewBin(expr.OpGt, length, expr.Constant(tuple.Int(600)))
		}
		qq := q
		if _, err := ss.Register(pred, func(stream.Element) { matched[qq]++ }); err != nil {
			log.Fatal(err)
		}
	}
	src := stream.Limit(stream.NewTrafficStream(5, 50000, 500), 100000)
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		ss.Push(e)
	}
	shared, unshared := ss.Stats()
	fmt.Printf("selection sharing: 100 queries, %d distinct predicates\n", ss.DistinctPredicates())
	fmt.Printf("  evaluations: %d shared vs %d unshared (%.0fx saving)\n",
		shared, unshared, float64(unshared)/float64(shared))
	fmt.Printf("  example outputs: q0 matched %d tuples, q2 matched %d\n\n", matched[0], matched[2])

	// Part 2: five correlation queries joining the same two streams on
	// destIP, with windows from 1s to 16s, served by ONE join sized for
	// the largest window.
	a := tuple.NewSchema("A",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "destIP", Kind: tuple.KindIP},
	)
	b := tuple.NewSchema("B",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "destIP", Kind: tuple.KindIP},
	)
	results := make([]int, 5)
	var queries []share.JoinQuery
	for q := 0; q < 5; q++ {
		win := int64(1<<uint(q)) * stream.Second
		qq := q
		queries = append(queries, share.JoinQuery{
			Window: win,
			Sink:   func(stream.Element) { results[qq]++ },
		})
	}
	sj, err := share.NewSharedWindowJoin("sj", a, b, []int{1}, []int{1}, queries)
	if err != nil {
		log.Fatal(err)
	}
	genA := stream.Limit(stream.NewTrafficStream(6, 2000, 50), 20000)
	genB := stream.Limit(stream.NewTrafficStream(7, 200, 50), 2000)
	toAB := func(e stream.Element) stream.Element {
		t := e.Tuple
		return stream.Tup(tuple.New(t.Ts, t.Vals[0], t.Vals[2]))
	}
	for {
		ea, okA := genA.Next()
		if okA {
			sj.Push(0, toAB(ea))
		}
		eb, okB := genB.Next()
		if okB {
			sj.Push(1, toAB(eb))
		}
		if !okA && !okB {
			break
		}
	}
	probes, routed := sj.Stats()
	fmt.Println("shared window join: 5 queries, windows 1s..16s, one state store")
	for q, r := range results {
		fmt.Printf("  query %d (window %2ds): %7d results\n", q, 1<<uint(q), r)
	}
	fmt.Printf("  probes by shared join: %d (routed %d results); per-query deployment would probe ~%.0f\n",
		probes, routed, sj.UnsharedProbeEstimate())
}
