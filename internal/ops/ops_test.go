package ops

import (
	"testing"

	"streamdb/internal/expr"
	"streamdb/internal/stream"
	"streamdb/internal/tuple"
	"streamdb/internal/window"
)

var trafficSch = tuple.NewSchema("Traffic",
	tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
	tuple.Field{Name: "srcIP", Kind: tuple.KindIP},
	tuple.Field{Name: "length", Kind: tuple.KindUint},
)

func traffic(ts int64, src uint32, length uint64) stream.Element {
	return stream.Tup(tuple.New(ts, tuple.Time(ts), tuple.IP(src), tuple.Uint(length)))
}

// collect runs elements through an operator (single input) and returns outputs.
func collect(op Operator, elems ...stream.Element) []stream.Element {
	var out []stream.Element
	emit := func(e stream.Element) { out = append(out, e) }
	for _, e := range elems {
		op.Push(0, e, emit)
	}
	op.Flush(emit)
	return out
}

func TestSelectFilters(t *testing.T) {
	pred, _ := expr.NewBin(expr.OpGt, expr.MustColumn(trafficSch, "length"), expr.Constant(tuple.Int(512)))
	sel, err := NewSelect("sel", trafficSch, pred, -1, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := collect(sel, traffic(1, 1, 100), traffic(2, 2, 600), traffic(3, 3, 513))
	if len(out) != 2 {
		t.Fatalf("out = %v", out)
	}
	if s := sel.Selectivity(); s < 0.6 || s > 0.7 {
		t.Errorf("observed selectivity = %v, want 2/3", s)
	}
	if sel.UnitCost() != 1 || sel.NumInputs() != 1 || sel.MemSize() <= 0 {
		t.Error("metadata broken")
	}
}

func TestSelectDeclaredSelectivityAndPunct(t *testing.T) {
	pred := expr.Constant(tuple.Bool(false))
	sel, _ := NewSelect("sel", trafficSch, pred, 0.25, 2)
	if sel.Selectivity() != 0.25 || sel.UnitCost() != 2 {
		t.Error("declared cost/selectivity not honored")
	}
	p := stream.Punct(stream.ProgressPunct(5, 0, tuple.Time(5)))
	out := collect(sel, traffic(1, 1, 1), p)
	if len(out) != 1 || !out[0].IsPunct() {
		t.Errorf("punctuation did not pass: %v", out)
	}
}

func TestSelectRejectsNonBoolean(t *testing.T) {
	if _, err := NewSelect("bad", trafficSch, expr.MustColumn(trafficSch, "length"), -1, 1); err == nil {
		t.Error("non-boolean predicate accepted")
	}
}

func TestProjectComputesExpressions(t *testing.T) {
	out := tuple.NewSchema("Out",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "kb", Kind: tuple.KindInt},
	)
	div, _ := expr.NewBin(expr.OpDiv, expr.MustColumn(trafficSch, "length"), expr.Constant(tuple.Int(1024)))
	proj, err := NewProject("proj", out, []expr.Expr{expr.MustColumn(trafficSch, "time"), div})
	if err != nil {
		t.Fatal(err)
	}
	res := collect(proj, traffic(1, 1, 2048))
	if len(res) != 1 {
		t.Fatalf("res = %v", res)
	}
	if v, _ := res[0].Tuple.Vals[1].AsInt(); v != 2 {
		t.Errorf("kb = %d", v)
	}
	if proj.OutSchema() != out {
		t.Error("schema mismatch")
	}
}

func TestProjectValidatesArityAndTypes(t *testing.T) {
	out := tuple.NewSchema("Out", tuple.Field{Name: "x", Kind: tuple.KindInt})
	if _, err := NewProject("p", out, nil); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := NewProject("p", out, []expr.Expr{expr.Constant(tuple.String("s"))}); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestProjectForwardsProgressPunct(t *testing.T) {
	out := tuple.NewSchema("Out", tuple.Field{Name: "len", Kind: tuple.KindUint})
	proj, _ := NewProject("p", out, []expr.Expr{expr.MustColumn(trafficSch, "length")})
	res := collect(proj, stream.Punct(stream.ProgressPunct(9, 0, tuple.Time(9))))
	if len(res) != 1 || !res[0].IsPunct() || res[0].Ts() != 9 {
		t.Errorf("res = %v", res)
	}
}

func TestDupElimWindowed(t *testing.T) {
	d := NewDupElim("dist", trafficSch, []int{2}, 10)
	out := collect(d,
		traffic(1, 1, 500), traffic(2, 2, 500), traffic(3, 3, 700), // 500 dup at ts=2
		traffic(12, 4, 500), // new window: 500 allowed again
	)
	if len(out) != 3 {
		t.Fatalf("out = %v", out)
	}
	if d.MemSize() <= 64 {
		t.Error("MemSize does not track state")
	}
}

func TestDupElimUnbounded(t *testing.T) {
	d := NewDupElim("dist", trafficSch, []int{2}, 0)
	out := collect(d, traffic(1, 1, 500), traffic(1000, 2, 500))
	if len(out) != 1 {
		t.Errorf("unbounded distinct emitted %d", len(out))
	}
}

func TestUnionPassesTuples(t *testing.T) {
	u := NewUnion("u", trafficSch)
	var out []stream.Element
	emit := func(e stream.Element) { out = append(out, e) }
	u.Push(0, traffic(1, 1, 1), emit)
	u.Push(1, traffic(2, 2, 2), emit)
	u.Push(0, stream.Punct(stream.ProgressPunct(3, 0, tuple.Time(3))), emit)
	u.Flush(emit)
	if len(out) != 2 {
		t.Errorf("union out = %v", out)
	}
	if u.NumInputs() != 2 {
		t.Error("NumInputs != 2")
	}
}

// joinSchemas returns the two-stream schemas of slide 30's example.
func joinSchemas() (*tuple.Schema, *tuple.Schema) {
	a := tuple.NewSchema("A",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "destIP", Kind: tuple.KindIP},
	)
	b := tuple.NewSchema("B",
		tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
		tuple.Field{Name: "destIP", Kind: tuple.KindIP},
	)
	return a, b
}

func ab(ts int64, ip uint32) *tuple.Tuple {
	return tuple.New(ts, tuple.Time(ts), tuple.IP(ip))
}

func runJoin(t *testing.T, lm, rm JoinMethod, lw, rw window.Spec) *WindowJoin {
	t.Helper()
	a, b := joinSchemas()
	j, err := NewWindowJoin("j", a, b,
		JoinConfig{Window: lw, Method: lm, Key: []int{1}},
		JoinConfig{Window: rw, Method: rm, Key: []int{1}},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestWindowJoinBasicMatch(t *testing.T) {
	for _, m := range []JoinMethod{JoinHash, JoinNestedLoop} {
		j := runJoin(t, m, m, window.Tumbling(100), window.Tumbling(100))
		var out []stream.Element
		emit := func(e stream.Element) { out = append(out, e) }
		j.Push(0, stream.Tup(ab(1, 7)), emit)  // A: ip 7
		j.Push(1, stream.Tup(ab(2, 7)), emit)  // B: ip 7 -> match
		j.Push(1, stream.Tup(ab(3, 9)), emit)  // B: ip 9 -> no match
		j.Push(0, stream.Tup(ab(4, 9)), emit)  // A: ip 9 -> match
		j.Push(0, stream.Tup(ab(5, 12)), emit) // no match
		if len(out) != 2 {
			t.Fatalf("[%v] out = %v", m, out)
		}
		// Output field order must be (left, right) regardless of arrival port.
		first := out[0].Tuple
		if len(first.Vals) != 4 {
			t.Fatalf("arity = %d", len(first.Vals))
		}
		lts, _ := first.Vals[0].AsTime()
		rts, _ := first.Vals[2].AsTime()
		if lts != 1 || rts != 2 {
			t.Errorf("[%v] field order wrong: lts=%d rts=%d", m, lts, rts)
		}
		if j.Emitted() != 2 {
			t.Errorf("Emitted = %d", j.Emitted())
		}
	}
}

func TestWindowJoinExpiry(t *testing.T) {
	// Window of 10 units: an A tuple at ts=1 must not join a B tuple at ts=20.
	j := runJoin(t, JoinHash, JoinHash, window.Time(10, 10), window.Time(10, 10))
	var out []stream.Element
	emit := func(e stream.Element) { out = append(out, e) }
	j.Push(0, stream.Tup(ab(1, 7)), emit)
	j.Push(1, stream.Tup(ab(20, 7)), emit)
	if len(out) != 0 {
		t.Fatalf("expired tuple joined: %v", out)
	}
	l, r := j.WindowSizes()
	if l != 0 || r != 1 {
		t.Errorf("window sizes = %d, %d; want 0, 1", l, r)
	}
}

func TestWindowJoinAsymmetricMethods(t *testing.T) {
	// Hash probe on one side, nested loops on the other (slide 33).
	j := runJoin(t, JoinHash, JoinNestedLoop, window.Tumbling(100), window.Tumbling(100))
	var out []stream.Element
	emit := func(e stream.Element) { out = append(out, e) }
	j.Push(0, stream.Tup(ab(1, 7)), emit)
	j.Push(0, stream.Tup(ab(2, 8)), emit)
	j.Push(1, stream.Tup(ab(3, 7)), emit) // probes left side (hash)
	j.Push(0, stream.Tup(ab(4, 7)), emit) // probes right side (nested loop)
	if len(out) != 2 {
		t.Fatalf("out = %v", out)
	}
	if j.Probes() == 0 {
		t.Error("no probes counted")
	}
}

func TestWindowJoinNestedLoopCostExceedsHash(t *testing.T) {
	// With many non-matching tuples stored, NLJ performs far more probes.
	mk := func(m JoinMethod) int64 {
		j := runJoin(t, m, m, window.Tumbling(1_000_000), window.Tumbling(1_000_000))
		emit := func(stream.Element) {}
		for i := int64(0); i < 200; i++ {
			j.Push(0, stream.Tup(ab(i, uint32(i))), emit)
		}
		j.Push(1, stream.Tup(ab(300, 5)), emit)
		return j.Probes()
	}
	if hp, np := mk(JoinHash), mk(JoinNestedLoop); hp >= np {
		t.Errorf("hash probes %d >= nlj probes %d", hp, np)
	}
}

func TestWindowJoinResidualPredicate(t *testing.T) {
	a, b := joinSchemas()
	outSch := a.Concat(b)
	// Residual: left time < right time.
	res, _ := expr.NewBin(expr.OpLt, expr.MustColumn(outSch, "time"), expr.MustColumn(outSch, "B.time"))
	j, err := NewWindowJoin("j", a, b,
		JoinConfig{Window: window.Tumbling(100), Method: JoinHash, Key: []int{1}},
		JoinConfig{Window: window.Tumbling(100), Method: JoinHash, Key: []int{1}},
		res)
	if err != nil {
		t.Fatal(err)
	}
	var out []stream.Element
	emit := func(e stream.Element) { out = append(out, e) }
	j.Push(0, stream.Tup(ab(5, 7)), emit)
	j.Push(1, stream.Tup(ab(6, 7)), emit) // 5 < 6: emitted
	j.Push(0, stream.Tup(ab(7, 7)), emit) // joins B@6, but 7 < 6 false: dropped
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
}

func TestWindowJoinMemoryCapEvicts(t *testing.T) {
	a, b := joinSchemas()
	j, err := NewWindowJoin("j", a, b,
		JoinConfig{Window: window.Tumbling(1 << 30), Method: JoinHash, Key: []int{1}, MaxTuples: 10},
		JoinConfig{Window: window.Tumbling(1 << 30), Method: JoinHash, Key: []int{1}},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	emit := func(stream.Element) {}
	for i := int64(0); i < 50; i++ {
		j.Push(0, stream.Tup(ab(i, uint32(i))), emit)
	}
	l, _ := j.WindowSizes()
	if l > 10 {
		t.Errorf("left window = %d, cap was 10", l)
	}
	le, _ := j.Evicted()
	if le != 40 {
		t.Errorf("evicted = %d, want 40", le)
	}
	// Evicted tuples must not join.
	var out []stream.Element
	j.Push(1, stream.Tup(ab(100, 0)), func(e stream.Element) { out = append(out, e) })
	if len(out) != 0 {
		t.Errorf("evicted tuple joined: %v", out)
	}
}

func TestWindowJoinPunctuationInvalidates(t *testing.T) {
	j := runJoin(t, JoinHash, JoinHash, window.Time(10, 10), window.Time(10, 10))
	emit := func(stream.Element) {}
	j.Push(0, stream.Tup(ab(1, 7)), emit)
	// Progress punctuation on the right at ts=50 invalidates left window.
	j.Push(1, stream.Punct(stream.ProgressPunct(50, 0, tuple.Time(50))), emit)
	l, _ := j.WindowSizes()
	if l != 0 {
		t.Errorf("left window = %d after punctuation, want 0", l)
	}
}

func TestWindowJoinValidation(t *testing.T) {
	a, b := joinSchemas()
	if _, err := NewWindowJoin("j", a, b,
		JoinConfig{Method: JoinHash, Key: []int{1}},
		JoinConfig{Method: JoinHash, Key: nil}, nil); err == nil {
		t.Error("key arity mismatch accepted")
	}
	if _, err := NewWindowJoin("j", a, b,
		JoinConfig{Method: JoinHash}, JoinConfig{Method: JoinHash}, nil); err == nil {
		t.Error("hash join without keys accepted")
	}
	if _, err := NewWindowJoin("j", a, b,
		JoinConfig{Method: JoinNestedLoop, Key: []int{0}},
		JoinConfig{Method: JoinNestedLoop, Key: []int{1}}, nil); err == nil {
		t.Error("time-vs-ip key type mismatch accepted")
	}
	if _, err := NewWindowJoin("j", a, b,
		JoinConfig{Method: JoinHash, Key: []int{1}},
		JoinConfig{Method: JoinHash, Key: []int{1}},
		expr.MustColumn(a, "time")); err == nil {
		t.Error("non-boolean residual accepted")
	}
}

func TestSymmetricHashJoinUnbounded(t *testing.T) {
	a, b := joinSchemas()
	j, err := NewSymmetricHashJoin("shj", a, b, []int{1}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	var out []stream.Element
	emit := func(e stream.Element) { out = append(out, e) }
	// Very distant timestamps still join: no window.
	j.Push(0, stream.Tup(ab(1, 7)), emit)
	j.Push(1, stream.Tup(ab(1_000_000, 7)), emit)
	if len(out) != 1 {
		t.Errorf("unbounded join failed: %v", out)
	}
	if j.Selectivity() <= 0 || j.UnitCost() < 1 {
		t.Error("cost metadata broken")
	}
}
