package expr

import (
	"testing"
	"testing/quick"

	"streamdb/internal/tuple"
)

var testSchema = tuple.NewSchema("T",
	tuple.Field{Name: "time", Kind: tuple.KindTime, Ordering: true},
	tuple.Field{Name: "a", Kind: tuple.KindInt},
	tuple.Field{Name: "b", Kind: tuple.KindFloat},
	tuple.Field{Name: "s", Kind: tuple.KindString},
	tuple.Field{Name: "flag", Kind: tuple.KindBool},
)

func row(ts int64, a int64, b float64, s string, flag bool) *tuple.Tuple {
	return tuple.New(ts, tuple.Time(ts), tuple.Int(a), tuple.Float(b), tuple.String(s), tuple.Bool(flag))
}

func mustBin(t *testing.T, op BinOp, l, r Expr) *Bin {
	t.Helper()
	b, err := NewBin(op, l, r)
	if err != nil {
		t.Fatalf("NewBin(%v): %v", op, err)
	}
	return b
}

func TestColumnBinding(t *testing.T) {
	c, err := Column(testSchema, "a")
	if err != nil || c.Index != 1 || c.Kind() != tuple.KindInt {
		t.Fatalf("Column(a) = %+v, %v", c, err)
	}
	if _, err := Column(testSchema, "zz"); err == nil {
		t.Error("Column(zz) succeeded")
	}
	tup := row(0, 7, 0, "", false)
	if v, _ := c.Eval(tup).AsInt(); v != 7 {
		t.Errorf("Eval = %v", c.Eval(tup))
	}
}

func TestArithmetic(t *testing.T) {
	a := MustColumn(testSchema, "a")
	b := MustColumn(testSchema, "b")
	tup := row(0, 10, 2.5, "", false)
	cases := []struct {
		op   BinOp
		l, r Expr
		want tuple.Value
	}{
		{OpAdd, a, Constant(tuple.Int(5)), tuple.Int(15)},
		{OpSub, a, Constant(tuple.Int(5)), tuple.Int(5)},
		{OpMul, a, b, tuple.Float(25)},
		{OpDiv, a, Constant(tuple.Int(3)), tuple.Int(3)},
		{OpMod, a, Constant(tuple.Int(3)), tuple.Int(1)},
		{OpDiv, a, b, tuple.Float(4)},
		{OpDiv, a, Constant(tuple.Int(0)), tuple.Null},
		{OpMod, a, Constant(tuple.Int(0)), tuple.Null},
	}
	for _, c := range cases {
		e := mustBin(t, c.op, c.l, c.r)
		got := e.Eval(tup)
		if c.want.IsNull() {
			if !got.IsNull() {
				t.Errorf("%s = %v, want NULL", e, got)
			}
		} else if !got.Equal(c.want) {
			t.Errorf("%s = %v, want %v", e, got, c.want)
		}
	}
}

func TestTimeBucketIdiom(t *testing.T) {
	// The GSQL "group by time/60 as tb" idiom (slide 13).
	tb := mustBin(t, OpDiv, MustColumn(testSchema, "time"), Constant(tuple.Int(60)))
	if v, _ := tb.Eval(row(125, 0, 0, "", false)).AsInt(); v != 2 {
		t.Errorf("time/60 @125 = %d, want 2", v)
	}
}

func TestComparisons(t *testing.T) {
	a := MustColumn(testSchema, "a")
	tup := row(0, 10, 0, "", false)
	cases := []struct {
		op   BinOp
		rhs  int64
		want bool
	}{
		{OpEq, 10, true}, {OpEq, 9, false},
		{OpNe, 9, true}, {OpNe, 10, false},
		{OpLt, 11, true}, {OpLt, 10, false},
		{OpLe, 10, true}, {OpLe, 9, false},
		{OpGt, 9, true}, {OpGt, 10, false},
		{OpGe, 10, true}, {OpGe, 11, false},
	}
	for _, c := range cases {
		e := mustBin(t, c.op, a, Constant(tuple.Int(c.rhs)))
		if got := EvalBool(e, tup); got != c.want {
			t.Errorf("%s = %v, want %v", e, got, c.want)
		}
	}
}

func TestTypeCheckRejects(t *testing.T) {
	s := MustColumn(testSchema, "s")
	a := MustColumn(testSchema, "a")
	flag := MustColumn(testSchema, "flag")
	if _, err := NewBin(OpAdd, s, a); err == nil {
		t.Error("string + int accepted")
	}
	if _, err := NewBin(OpLt, s, a); err == nil {
		t.Error("string < int accepted")
	}
	if _, err := NewBin(OpAnd, a, flag); err == nil {
		t.Error("int AND bool accepted")
	}
	if _, err := NewBin(OpEq, s, s); err != nil {
		t.Error("string = string rejected")
	}
}

func TestThreeValuedLogic(t *testing.T) {
	null := Constant(tuple.Null)
	tr := Constant(tuple.Bool(true))
	fa := Constant(tuple.Bool(false))
	tup := row(0, 0, 0, "", false)

	and1 := &Bin{Op: OpAnd, L: null, R: fa}
	if v := and1.Eval(tup); !v.Equal(tuple.Bool(false)) {
		t.Errorf("NULL AND false = %v, want false", v)
	}
	and2 := &Bin{Op: OpAnd, L: null, R: tr}
	if v := and2.Eval(tup); !v.IsNull() {
		t.Errorf("NULL AND true = %v, want NULL", v)
	}
	or1 := &Bin{Op: OpOr, L: null, R: tr}
	if v := or1.Eval(tup); !v.Equal(tuple.Bool(true)) {
		t.Errorf("NULL OR true = %v, want true", v)
	}
	or2 := &Bin{Op: OpOr, L: null, R: fa}
	if v := or2.Eval(tup); !v.IsNull() {
		t.Errorf("NULL OR false = %v, want NULL", v)
	}
	cmp := &Bin{Op: OpEq, L: null, R: Constant(tuple.Int(1))}
	if v := cmp.Eval(tup); !v.IsNull() {
		t.Errorf("NULL = 1 -> %v, want NULL", v)
	}
	if EvalBool(cmp, tup) {
		t.Error("EvalBool(NULL) = true")
	}
}

func TestNotNegIsNull(t *testing.T) {
	tup := row(0, 5, 0, "", true)
	not := &Not{E: MustColumn(testSchema, "flag")}
	if EvalBool(not, tup) {
		t.Error("NOT true = true")
	}
	neg := &Neg{E: MustColumn(testSchema, "a")}
	if v, _ := neg.Eval(tup).AsInt(); v != -5 {
		t.Errorf("-a = %v", v)
	}
	negf := &Neg{E: Constant(tuple.Float(1.5))}
	if v := negf.Eval(tup); !v.Equal(tuple.Float(-1.5)) {
		t.Errorf("-1.5 = %v", v)
	}
	isn := &IsNull{E: Constant(tuple.Null)}
	if !EvalBool(isn, tup) {
		t.Error("NULL IS NULL = false")
	}
	isnn := &IsNull{E: MustColumn(testSchema, "a"), Negate: true}
	if !EvalBool(isnn, tup) {
		t.Error("a IS NOT NULL = false")
	}
}

func TestColumns(t *testing.T) {
	a := MustColumn(testSchema, "a")
	b := MustColumn(testSchema, "b")
	e := mustBin(t, OpAdd, a, mustBin(t, OpMul, b, a))
	cols := e.Columns(nil)
	if len(cols) != 3 || cols[0] != 1 || cols[1] != 2 || cols[2] != 1 {
		t.Errorf("Columns = %v", cols)
	}
}

func TestFuncRegistry(t *testing.T) {
	if _, ok := LookupFunc("CONTAINS"); !ok {
		t.Error("lookup is not case-insensitive")
	}
	if _, err := NewCall("nosuchfn"); err == nil {
		t.Error("unknown function accepted")
	}
	if _, err := NewCall("contains", Constant(tuple.String("x"))); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestBuiltinFunctions(t *testing.T) {
	tup := row(0, -5, 2.25, "BitTorrent protocol handshake", false)
	s := MustColumn(testSchema, "s")
	eval := func(name string, args ...Expr) tuple.Value {
		c, err := NewCall(name, args...)
		if err != nil {
			t.Fatalf("NewCall(%s): %v", name, err)
		}
		return c.Eval(tup)
	}
	if v := eval("abs", MustColumn(testSchema, "a")); !v.Equal(tuple.Float(5)) {
		t.Errorf("abs(-5) = %v", v)
	}
	if v := eval("sqrt", MustColumn(testSchema, "b")); !v.Equal(tuple.Float(1.5)) {
		t.Errorf("sqrt(2.25) = %v", v)
	}
	if v := eval("sqrt", MustColumn(testSchema, "a")); !v.IsNull() {
		t.Errorf("sqrt(-5) = %v, want NULL", v)
	}
	if v := eval("floor", Constant(tuple.Float(2.9))); !v.Equal(tuple.Int(2)) {
		t.Errorf("floor(2.9) = %v", v)
	}
	if v := eval("len", s); !v.Equal(tuple.Int(29)) {
		t.Errorf("len = %v", v)
	}
	if v := eval("lower", Constant(tuple.String("AB"))); !v.Equal(tuple.String("ab")) {
		t.Errorf("lower = %v", v)
	}
	if v := eval("upper", Constant(tuple.String("ab"))); !v.Equal(tuple.String("AB")) {
		t.Errorf("upper = %v", v)
	}
	if v := eval("contains", s, Constant(tuple.String("BitTorrent"))); !v.Equal(tuple.Bool(true)) {
		t.Errorf("contains = %v", v)
	}
	if v := eval("contains_any", s, Constant(tuple.String("gnutella|BitTorrent|eDonkey"))); !v.Equal(tuple.Bool(true)) {
		t.Errorf("contains_any = %v", v)
	}
	if v := eval("contains_any", s, Constant(tuple.String("gnutella|eDonkey"))); !v.Equal(tuple.Bool(false)) {
		t.Errorf("contains_any negative = %v", v)
	}
	if v := eval("tb", MustColumn(testSchema, "time"), Constant(tuple.Int(60))); !v.Equal(tuple.Int(0)) {
		t.Errorf("tb = %v", v)
	}
	if v := eval("ip4", Constant(tuple.IP(0x01000001))); !v.Equal(tuple.String("1.0.0.1")) {
		t.Errorf("ip4 = %v", v)
	}
	if v := eval("coalesce", Constant(tuple.Null), Constant(tuple.Int(3))); !v.Equal(tuple.Int(3)) {
		t.Errorf("coalesce = %v", v)
	}
}

type mapTable map[string]string

func (m mapTable) Lookup(k tuple.Value) (tuple.Value, bool) {
	s, ok := k.AsString()
	if !ok {
		return tuple.Null, false
	}
	v, hit := m[s]
	return tuple.String(v), hit
}

func TestLookupTable(t *testing.T) {
	RegisterTable("peerid.tbl", mapTable{"10.0.0.1": "peerA"})
	c, err := NewCall("lookup", Constant(tuple.String("10.0.0.1")), Constant(tuple.String("peerid.tbl")))
	if err != nil {
		t.Fatal(err)
	}
	if v := c.Eval(nil); !v.Equal(tuple.String("peerA")) {
		t.Errorf("lookup = %v", v)
	}
	miss, _ := NewCall("lookup", Constant(tuple.String("9.9.9.9")), Constant(tuple.String("peerid.tbl")))
	if v := miss.Eval(nil); !v.IsNull() {
		t.Errorf("lookup miss = %v", v)
	}
	noTbl, _ := NewCall("lookup", Constant(tuple.String("x")), Constant(tuple.String("nope.tbl")))
	if v := noTbl.Eval(nil); !v.IsNull() {
		t.Errorf("lookup missing table = %v", v)
	}
}

func TestSelectivity(t *testing.T) {
	pred := mustBin(t, OpGt, MustColumn(testSchema, "a"), Constant(tuple.Int(5)))
	var sample []*tuple.Tuple
	for i := int64(0); i < 10; i++ {
		sample = append(sample, row(i, i, 0, "", false))
	}
	if s := Selectivity(pred, sample); s != 0.4 {
		t.Errorf("Selectivity = %v, want 0.4", s)
	}
	if s := Selectivity(pred, nil); s != 1 {
		t.Errorf("Selectivity(empty) = %v, want 1", s)
	}
}

func TestArithmeticProperty(t *testing.T) {
	// (a + b) - b == a for int arithmetic.
	f := func(a, b int32) bool {
		ea := Constant(tuple.Int(int64(a)))
		eb := Constant(tuple.Int(int64(b)))
		add, _ := NewBin(OpAdd, ea, eb)
		sub, _ := NewBin(OpSub, add, eb)
		v, _ := sub.Eval(nil).AsInt()
		return v == int64(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	a := MustColumn(testSchema, "a")
	e := mustBin(t, OpGt, a, Constant(tuple.Int(5)))
	if e.String() != "(a > 5)" {
		t.Errorf("String = %q", e.String())
	}
	c, _ := NewCall("contains", MustColumn(testSchema, "s"), Constant(tuple.String("x")))
	if c.String() != "contains(s, 'x')" {
		t.Errorf("call String = %q", c.String())
	}
}
