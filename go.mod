module streamdb

go 1.22
