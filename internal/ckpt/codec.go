// Package ckpt implements durable, aligned checkpoints of operator
// state: the missing layer between the session transport's
// connection-loss recovery (PR 1/5) and true crash tolerance. A
// checkpoint is a consistent cut — every operator's state captured at
// the same logical stream position — committed atomically to a
// two-generation store whose fsync'd manifest carries a CRC and epoch
// (generalizing the Hancock store's sequential-write, atomic-rename
// discipline). Recovery restores operator state from the newest intact
// generation and replays sources from the checkpointed sequence
// numbers, making standing queries exactly-once across process death
// (Fragkoulis et al.; Röger & Mayer — see PAPERS.md).
package ckpt

import (
	"encoding/binary"
	"fmt"
	"math"

	"streamdb/internal/stream"
	"streamdb/internal/tuple"
)

// Encoder accumulates one operator's state section. All methods append
// to an internal buffer; the framing (section name, length, checksum)
// is added by the checkpoint assembly, not the operator.
type Encoder struct {
	buf []byte
}

// Bytes returns the accumulated encoding.
func (e *Encoder) Bytes() []byte { return e.buf }

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Varint appends a signed varint.
func (e *Encoder) Varint(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// Int appends an int as a signed varint.
func (e *Encoder) Int(v int) { e.Varint(int64(v)) }

// Bool appends a boolean.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Float64 appends a fixed 8-byte float.
func (e *Encoder) Float64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// BytesField appends a length-prefixed byte string.
func (e *Encoder) BytesField(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Tuple appends one tuple in the self-describing per-tuple encoding.
func (e *Encoder) Tuple(t *tuple.Tuple) { e.buf = tuple.AppendEncode(e.buf, t) }

// Values appends a bare value slice (group keys, partial vectors) by
// wrapping it in a zero-timestamp tuple.
func (e *Encoder) Values(vals []tuple.Value) {
	e.Tuple(&tuple.Tuple{Vals: vals})
}

// TupleBatch appends a tuple slice in the schema-coded batch encoding
// (wire v3): kind bytes dropped, delta timestamps, null bitmaps. The
// restore side must supply the same schema.
func (e *Encoder) TupleBatch(s *tuple.Schema, tuples []*tuple.Tuple) error {
	buf, err := tuple.AppendEncodeBatch(e.buf, s, tuples)
	if err != nil {
		return err
	}
	e.buf = buf
	return nil
}

// Element appends a stream element: a tagged union of tuple and
// punctuation. Used for in-flight lane state (port queues) where data
// tuples and punctuations interleave.
func (e *Encoder) Element(el stream.Element) {
	if el.Punct != nil {
		p := el.Punct
		e.buf = append(e.buf, 1)
		e.Varint(p.Ts)
		e.Varint(p.Barrier)
		e.Uvarint(uint64(len(p.Fields)))
		for idx, pat := range p.Fields {
			e.Int(idx)
			e.buf = append(e.buf, byte(pat.Kind))
			e.Values([]tuple.Value{pat.Val, pat.Hi})
		}
		return
	}
	e.buf = append(e.buf, 0)
	e.Tuple(el.Tuple)
}

// Decoder reads back an Encoder's stream. Errors are sticky: after the
// first failure every method returns a zero value and Err reports the
// original cause, so restore code can decode a whole section and check
// once.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps a section payload.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first decode failure, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining reports undecoded bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail(format string, args ...interface{}) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("ckpt: truncated uvarint at %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// Varint reads a signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("ckpt: truncated varint at %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// Int reads an int.
func (d *Decoder) Int() int { return int(d.Varint()) }

// Bool reads a boolean.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.buf) {
		d.fail("ckpt: truncated bool at %d", d.off)
		return false
	}
	b := d.buf[d.off]
	d.off++
	return b != 0
}

// Float64 reads a fixed 8-byte float.
func (d *Decoder) Float64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("ckpt: truncated float at %d", d.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

// BytesField reads a length-prefixed byte string (a copy).
func (d *Decoder) BytesField() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail("ckpt: byte string of %d exceeds buffer", n)
		return nil
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:])
	d.off += int(n)
	return out
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail("ckpt: string of %d exceeds buffer", n)
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// Tuple reads one self-describing tuple.
func (d *Decoder) Tuple() *tuple.Tuple {
	if d.err != nil {
		return nil
	}
	t, n, err := tuple.Decode(d.buf[d.off:])
	if err != nil {
		d.fail("ckpt: %v", err)
		return nil
	}
	d.off += n
	return t
}

// Values reads a bare value slice.
func (d *Decoder) Values() []tuple.Value {
	t := d.Tuple()
	if t == nil {
		return nil
	}
	return t.Vals
}

// TupleBatch reads a schema-coded tuple batch. The returned tuples are
// freshly allocated per call (the decode arena is private to the call
// and kept alive by the tuples themselves).
func (d *Decoder) TupleBatch(s *tuple.Schema) []*tuple.Tuple {
	if d.err != nil {
		return nil
	}
	// A fresh arena per batch: restored tuples alias it, and nothing
	// ever resets it, so they stay valid for the operator's lifetime.
	arena := &tuple.Arena{}
	ts, n, err := tuple.DecodeBatchInto(d.buf[d.off:], s, arena)
	if err != nil {
		d.fail("ckpt: %v", err)
		return nil
	}
	d.off += n
	return ts
}

// Element reads a stream element written by Encoder.Element.
func (d *Decoder) Element() stream.Element {
	if d.Bool() {
		p := &stream.Punctuation{Ts: d.Varint(), Barrier: d.Varint()}
		if n := d.Uvarint(); n > 0 {
			if n > uint64(len(d.buf)) {
				d.fail("ckpt: punctuation field count %d exceeds buffer", n)
				return stream.Element{}
			}
			p.Fields = make(map[int]stream.Pattern, n)
			for i := uint64(0); i < n && d.err == nil; i++ {
				idx := d.Int()
				if d.off >= len(d.buf) {
					d.fail("ckpt: truncated pattern kind")
					return stream.Element{}
				}
				kind := stream.PatternKind(d.buf[d.off])
				d.off++
				vals := d.Values()
				if len(vals) != 2 {
					d.fail("ckpt: pattern wants 2 values, got %d", len(vals))
					return stream.Element{}
				}
				p.Fields[idx] = stream.Pattern{Kind: kind, Val: vals[0], Hi: vals[1]}
			}
		}
		return stream.Punct(p)
	}
	if d.err != nil {
		return stream.Element{}
	}
	return stream.Tup(d.Tuple())
}
