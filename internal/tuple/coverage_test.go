package tuple

import (
	"math"
	"testing"
	"time"
)

func TestValueAccessorFailures(t *testing.T) {
	if _, ok := Null.AsInt(); ok {
		t.Error("Null.AsInt ok")
	}
	if _, ok := String("x").AsUint(); ok {
		t.Error("String.AsUint ok")
	}
	if _, ok := Float(-1).AsUint(); ok {
		t.Error("negative Float.AsUint ok")
	}
	if u, ok := Float(3.9).AsUint(); !ok || u != 3 {
		t.Errorf("Float(3.9).AsUint = %d, %v", u, ok)
	}
	if _, ok := String("x").AsFloat(); ok {
		t.Error("String.AsFloat ok")
	}
	if _, ok := Int(1).AsString(); ok {
		t.Error("Int.AsString ok")
	}
	if _, ok := Int(1).AsBool(); ok {
		t.Error("Int.AsBool ok")
	}
	if f, ok := Bool(true).AsFloat(); !ok || f != 1 {
		t.Errorf("Bool.AsFloat = %v, %v", f, ok)
	}
	if u, ok := Int(5).AsUint(); !ok || u != 5 {
		t.Errorf("Int(5).AsUint = %d, %v", u, ok)
	}
	if n, ok := Bool(true).AsInt(); !ok || n != 1 {
		t.Errorf("Bool.AsInt = %d, %v", n, ok)
	}
}

func TestRawStrFlTimeOf(t *testing.T) {
	v := Uint(42)
	if v.Raw() != 42 {
		t.Error("Raw broken")
	}
	if String("hi").Str() != "hi" {
		t.Error("Str broken")
	}
	if Float(2.5).Fl() != 2.5 {
		t.Error("Fl broken")
	}
	now := time.Unix(100, 5)
	tv := TimeOf(now)
	if ns, _ := tv.AsTime(); ns != now.UnixNano() {
		t.Error("TimeOf broken")
	}
	if !Null.IsNull() || Int(0).IsNull() {
		t.Error("IsNull broken")
	}
}

func TestValueStringAllKinds(t *testing.T) {
	cases := map[string]Value{
		"NULL":    Null,
		"-3":      Int(-3),
		"7":       Uint(7),
		"1.25":    Float(1.25),
		"s":       String("s"),
		"true":    Bool(true),
		"false":   Bool(false),
		"1.2.3.4": IP(0x01020304),
		"99":      Time(99),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String(%v) = %q, want %q", v.Kind, got, want)
		}
	}
	if got := (Value{Kind: Kind(200)}).String(); got != "?" {
		t.Errorf("unknown kind String = %q", got)
	}
	if got := Kind(200).String(); got != "Kind(200)" {
		t.Errorf("unknown Kind.String = %q", got)
	}
}

func TestCompareMixedKindsTotalOrder(t *testing.T) {
	// Non-numeric different kinds order by kind for a stable total order.
	s, b := String("z"), Bool(true)
	if s.Compare(b) != -s.Compare(b)*-1 { // trivially true; ensure no panic
		t.Error("unreachable")
	}
	if s.Compare(b) == 0 || s.Compare(b) != -b.Compare(s) {
		t.Errorf("cross-kind compare not antisymmetric: %d vs %d", s.Compare(b), b.Compare(s))
	}
	// NaN-free float/int mixed comparisons.
	if Float(1.5).Compare(Int(1)) != 1 || Int(1).Compare(Float(1.5)) != -1 {
		t.Error("mixed numeric compare broken")
	}
	if Float(2).Compare(Int(2)) != 0 {
		t.Error("equal mixed compare broken")
	}
	// Equal same-kind strings and bools.
	if String("a").Compare(String("a")) != 0 || Bool(true).Compare(Bool(true)) != 0 {
		t.Error("same-kind equality compare broken")
	}
}

func TestHashKinds(t *testing.T) {
	// Distinct values should (overwhelmingly) hash distinctly.
	vals := []Value{
		Null, Int(1), Int(2), Uint(3), Float(1.5), Float(2.5),
		String("a"), String("b"), Bool(true), Bool(false), IP(1), Time(2),
	}
	seen := map[uint64][]Value{}
	for _, v := range vals {
		seen[v.Hash()] = append(seen[v.Hash()], v)
	}
	for h, group := range seen {
		distinct := false
		for _, v := range group[1:] {
			if !v.Equal(group[0]) {
				distinct = true
			}
		}
		// Int(1)/Time... Time(2) vs Int(2) hash identically by design
		// (numeric equality), so only flag non-numeric collisions.
		if distinct && group[0].Kind == KindString {
			t.Errorf("string hash collision at %d: %v", h, group)
		}
	}
	// Huge float does not panic and hashes by bits.
	_ = Float(math.MaxFloat64).Hash()
	_ = Float(math.Inf(1)).Hash()
	_ = Float(1.5).Hash()
}

func TestSchemaStringAndOrderingAbsent(t *testing.T) {
	s := NewSchema("S", Field{Name: "a", Kind: KindInt})
	if s.OrderingIndex() != -1 {
		t.Error("phantom ordering attribute")
	}
	if s.String() != "S(a INT)" {
		t.Errorf("String = %q", s.String())
	}
	tp := New(5, Int(1))
	if tp.String() != "(1)@5" {
		t.Errorf("tuple String = %q", tp.String())
	}
}

func TestSchemaPanicsOnTwoOrderings(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("two ordering attributes did not panic")
		}
	}()
	NewSchema("S",
		Field{Name: "a", Kind: KindTime, Ordering: true},
		Field{Name: "b", Kind: KindTime, Ordering: true},
	)
}
