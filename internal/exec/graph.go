// Package exec is the dataflow execution engine: it wires sources and
// operators into a graph and runs it, either deterministically in
// virtual time (arrival order across sources defined by timestamps) or
// concurrently with one goroutine per operator connected by channels.
//
// The deterministic mode is what the experiments use — the tutorial's
// figures depend on exact arrival interleavings (slides 41, 43). The
// concurrent mode is the throughput-oriented deployment shape and the
// substrate for the system-profile comparisons of slide 52.
package exec

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"streamdb/internal/ops"
	"streamdb/internal/stream"
)

// NodeID identifies an operator node in a graph.
type NodeID int

// Sink receives graph outputs.
type Sink func(stream.Element)

type edge struct {
	to   NodeID // -1 = graph output
	port int
}

type node struct {
	op       ops.Operator
	out      []edge
	stats    NodeStats
	detached bool // true after a panic: the node no longer processes input
}

// NodeStats is per-operator introspection (Aurora-style, slide 47).
type NodeStats struct {
	In, Out   int64
	MaxQueue  int
	MaxMemory int
	// Replicas records the effective replication width the concurrent
	// engine chose for this node on its last run: RunOptions.Parallelism
	// after the GOMAXPROCS cap, or 1 for unreplicated nodes.
	Replicas int
	// Routed counts, for key-partitioned nodes, the data elements the
	// hash-split router sent to each replica on the last concurrent run
	// (len == Replicas); nil for other nodes. The slice header is shared
	// with the engine's copy — treat it as read-only.
	Routed []int64
	// Panics counts operator panics converted into node failures by the
	// execution layer's isolation boundary.
	Panics int64
	// Batches counts column batches delivered to this node on the last
	// concurrent columnar run (per-replica deliveries summed).
	Batches int64
	// RowFallbacks counts columnar units that collapsed back to
	// row-at-a-time processing at this node: batches materialized by the
	// engine for row-only lanes, plus batches/spans an operator's own
	// columnar plan rerouted through its row path (e.g. a join outside
	// the fast envelope). Zero on an all-columnar run — the observability
	// hook for "did my pipeline actually stay columnar?".
	RowFallbacks int64
	// BatchTarget is the adaptive controller's current micro-batch
	// target for this node's output edges (0 on non-adaptive runs or
	// while the target sits at RunOptions.BatchSize).
	BatchTarget int
	// ShedRate is the controller-imposed drop rate on this node (only
	// nonzero for in-graph shedders under an adaptive run past
	// capacity).
	ShedRate float64
	// Rescales counts live key-partition re-splits applied to this node
	// by the adaptive controller on the last concurrent run.
	Rescales int64
	// SharedEvals/NaiveEvals mirror the work counters of a shared
	// multi-query fan-out node (optimizer/share): evaluations the
	// shared node actually performed vs what an unshared per-query
	// deployment would have spent on the same input. The ratio is the
	// node's live sharing degree. Zero for ordinary operators.
	SharedEvals int64
	NaiveEvals  int64
}

// sharedEvalStats is implemented by shared multi-query fan-out
// operators (e.g. share.SharedSelect); Stats/AllStats fold the
// counters into NodeStats so introspection surfaces (streamd -stats)
// see sharing degrees without importing the sharing layer.
type sharedEvalStats interface {
	EvalStats() (shared, naive int64)
}

func foldShared(op ops.Operator, st NodeStats) NodeStats {
	if se, ok := op.(sharedEvalStats); ok {
		st.SharedEvals, st.NaiveEvals = se.EvalStats()
	}
	return st
}

// NamedStats pairs a node with its counters for introspection dumps
// (streamd -stats serializes a slice of these as JSON).
type NamedStats struct {
	Node NodeID `json:"node"`
	Op   string `json:"op"`
	NodeStats
}

// AllStats snapshots every node's counters with names attached. Call it
// only while the graph is quiescent (between Pump calls, or after a
// concurrent run returns) — the counters are not synchronized.
func (g *Graph) AllStats() []NamedStats {
	out := make([]NamedStats, len(g.nodes))
	for i, n := range g.nodes {
		out[i] = NamedStats{Node: NodeID(i), Op: n.op.Name(), NodeStats: foldShared(n.op, n.stats)}
	}
	return out
}

// FailurePolicy selects what the engine does when an operator panics.
type FailurePolicy int

const (
	// FailFast (the default) stops the run at the first node failure;
	// Err reports it. In concurrent mode sources stop feeding and the
	// pipeline drains so the run still terminates cleanly.
	FailFast FailurePolicy = iota
	// Degrade detaches the failed node (its input is discarded from
	// then on) and keeps the rest of the graph running to completion —
	// graceful degradation for standing queries where partial results
	// beat no results. Err still reports the failure.
	Degrade
)

// NodeFailure describes one operator panic caught by the engine.
type NodeFailure struct {
	Node  NodeID
	Op    string
	Panic interface{}
	Stack string
}

// Error implements error.
func (f *NodeFailure) Error() string {
	return fmt.Sprintf("exec: node %d (%s) panicked: %v", f.Node, f.Op, f.Panic)
}

type sourceNode struct {
	src    stream.Source
	out    []edge
	peeked *stream.Element
	done   bool
	count  int64
}

// Graph is a dataflow of sources and operators.
type Graph struct {
	sources []*sourceNode
	nodes   []*node
	sink    Sink
	// workCap bounds the pending-work deque in deterministic mode; 0 =
	// unbounded. When the cap is hit, the oldest pending element is
	// dropped (tail-drop under overload) and counted.
	workCap int
	dropped int64

	// Panic isolation: operator panics become recorded node failures
	// instead of crashing (or deadlocking) the whole run.
	policy FailurePolicy
	halted atomic.Bool // FailFast tripped: stop admitting/feeding work
	failMu sync.Mutex
	failed []NodeFailure
	// failHook is set by RunWith while checkpointing is active: a node
	// failure must abort the pending barrier epoch or paused sources
	// would wait on it forever.
	failHook func()
}

// NewGraph builds an empty graph writing outputs to sink (may be nil).
func NewGraph(sink Sink) *Graph {
	if sink == nil {
		sink = func(stream.Element) {}
	}
	return &Graph{sink: sink}
}

// SetWorkCap bounds pending work (tuples queued between operators).
func (g *Graph) SetWorkCap(n int) { g.workCap = n }

// Dropped reports elements discarded by the work cap.
func (g *Graph) Dropped() int64 { return g.dropped }

// SetFailurePolicy selects fail-fast (default) or degrade handling of
// operator panics.
func (g *Graph) SetFailurePolicy(p FailurePolicy) { g.policy = p }

// Err reports the first node failure of the run, or nil.
func (g *Graph) Err() error {
	g.failMu.Lock()
	defer g.failMu.Unlock()
	if len(g.failed) == 0 {
		return nil
	}
	f := g.failed[0]
	return &f
}

// Failures returns every node failure recorded so far.
func (g *Graph) Failures() []NodeFailure {
	g.failMu.Lock()
	defer g.failMu.Unlock()
	out := make([]NodeFailure, len(g.failed))
	copy(out, g.failed)
	return out
}

// recordPanic converts an operator panic into a counted node failure.
// The node is detached (it processes no further input); under FailFast
// the whole run is flagged to halt. The node mutations happen under
// failMu because replicated workers may crash concurrently.
func (g *Graph) recordPanic(id NodeID, n *node, r interface{}) {
	g.failMu.Lock()
	n.stats.Panics++
	n.detached = true
	g.failed = append(g.failed, NodeFailure{Node: id, Op: n.op.Name(), Panic: r, Stack: string(debug.Stack())})
	g.failMu.Unlock()
	if g.policy == FailFast {
		g.halted.Store(true)
	}
	if g.failHook != nil {
		g.failHook()
	}
}

// AddSource registers a stream source; connect it with ConnectSource.
func (g *Graph) AddSource(src stream.Source) int {
	g.sources = append(g.sources, &sourceNode{src: src})
	return len(g.sources) - 1
}

// AddOp registers an operator and returns its node ID.
func (g *Graph) AddOp(op ops.Operator) NodeID {
	g.nodes = append(g.nodes, &node{op: op})
	return NodeID(len(g.nodes) - 1)
}

// ConnectSource wires source si to input port of node to.
func (g *Graph) ConnectSource(si int, to NodeID, port int) error {
	if si < 0 || si >= len(g.sources) {
		return fmt.Errorf("exec: no source %d", si)
	}
	if err := g.checkPort(to, port); err != nil {
		return err
	}
	g.sources[si].out = append(g.sources[si].out, edge{to: to, port: port})
	return nil
}

// Connect wires node from's output to node to's input port.
func (g *Graph) Connect(from, to NodeID, port int) error {
	if int(from) < 0 || int(from) >= len(g.nodes) {
		return fmt.Errorf("exec: no node %d", from)
	}
	if err := g.checkPort(to, port); err != nil {
		return err
	}
	g.nodes[from].out = append(g.nodes[from].out, edge{to: to, port: port})
	return nil
}

// ConnectOut wires node from's output to the graph sink.
func (g *Graph) ConnectOut(from NodeID) error {
	if int(from) < 0 || int(from) >= len(g.nodes) {
		return fmt.Errorf("exec: no node %d", from)
	}
	g.nodes[from].out = append(g.nodes[from].out, edge{to: -1})
	return nil
}

func (g *Graph) checkPort(to NodeID, port int) error {
	if int(to) < 0 || int(to) >= len(g.nodes) {
		return fmt.Errorf("exec: no node %d", to)
	}
	if port < 0 || port >= g.nodes[to].op.NumInputs() {
		return fmt.Errorf("exec: node %s has no port %d", g.nodes[to].op.Name(), port)
	}
	return nil
}

// Stats returns a node's counters.
func (g *Graph) Stats(id NodeID) NodeStats {
	n := g.nodes[id]
	return foldShared(n.op, n.stats)
}

// AddSharedFanOut registers a shared multi-query fan-out node (e.g.
// share.SharedSelect) and terminates it at the graph output: the node
// delivers results to its own per-query sinks — as selection-vector
// views on the columnar lane — and emits nothing downstream, so the
// output edge exists only to give the engine a complete topology.
func (g *Graph) AddSharedFanOut(op ops.Operator) (NodeID, error) {
	id := g.AddOp(op)
	return id, g.ConnectOut(id)
}

// peek returns the source's next element without consuming it. Sources
// implementing stream.Resumable are not marked exhausted when they run
// dry: push-fed queues yield more elements after later Feed calls.
func (s *sourceNode) peek() (stream.Element, bool) {
	if s.done {
		return stream.Element{}, false
	}
	if s.peeked == nil {
		e, ok := s.src.Next()
		if !ok {
			if r, resumable := s.src.(stream.Resumable); !resumable || !r.Resumable() {
				s.done = true
			}
			return stream.Element{}, false
		}
		s.peeked = &e
	}
	return *s.peeked, true
}

func (s *sourceNode) take() stream.Element {
	e := *s.peeked
	s.peeked = nil
	s.count++
	return e
}

type work struct {
	to   NodeID
	port int
	e    stream.Element
}

// Run executes deterministically in virtual time: the next element
// processed is always the pending arrival with the smallest timestamp
// across sources (ties by source index), and each arrival is pushed
// through the graph to completion before the next is admitted. Stops
// after maxElements source elements (< 0 = until sources exhaust), then
// flushes every operator in insertion order. Returns elements consumed.
func (g *Graph) Run(maxElements int64) int64 {
	consumed := g.Pump(maxElements)
	g.Finish()
	return consumed
}

// Pump processes up to maxElements currently-available source elements
// (< 0 = until sources run dry) without flushing operators. Push-fed
// (resumable) sources can be replenished and pumped again — the
// mechanism behind persistent/continuous queries (slide 19).
func (g *Graph) Pump(maxElements int64) int64 {
	var consumed int64
	var queue []work
	for maxElements < 0 || consumed < maxElements {
		if g.halted.Load() {
			break
		}
		// Pick the earliest pending arrival.
		best := -1
		var bestTs int64
		for i, s := range g.sources {
			e, ok := s.peek()
			if !ok {
				continue
			}
			if best < 0 || e.Ts() < bestTs {
				best, bestTs = i, e.Ts()
			}
		}
		if best < 0 {
			break
		}
		src := g.sources[best]
		e := src.take()
		consumed++
		for _, ed := range src.out {
			queue = append(queue, work{to: ed.to, port: ed.port, e: e})
		}
		g.drain(&queue)
	}
	return consumed
}

// Finish flushes every operator (end-of-stream).
func (g *Graph) Finish() {
	var queue []work
	g.flush(&queue)
}

// drain processes pending work FIFO until empty.
func (g *Graph) drain(queue *[]work) {
	for len(*queue) > 0 {
		if g.halted.Load() {
			// Fail-fast: abandon pending work; Err carries the cause.
			*queue = (*queue)[:0]
			return
		}
		if g.workCap > 0 && len(*queue) > g.workCap {
			// Overload: tail-drop the oldest pending tuple.
			*queue = (*queue)[1:]
			g.dropped++
			continue
		}
		w := (*queue)[0]
		*queue = (*queue)[1:]
		g.dispatch(w, queue)
	}
}

func (g *Graph) dispatch(w work, queue *[]work) {
	if w.to < 0 {
		g.sink(w.e)
		return
	}
	n := g.nodes[w.to]
	if n.detached {
		return // degraded node: input is discarded
	}
	n.stats.In++
	if l := len(*queue); l > n.stats.MaxQueue {
		n.stats.MaxQueue = l
	}
	g.safePush(w.to, n, w.port, w.e, queue)
	// MemSize can be O(live state), so the high-water mark is sampled on
	// a stride, not per element; Run takes an exact final sample after
	// every operator's Flush.
	if !n.detached && n.stats.In%64 == 1 {
		if m := n.op.MemSize(); m > n.stats.MaxMemory {
			n.stats.MaxMemory = m
		}
	}
}

// safePush is the panic-isolation boundary around one operator push.
func (g *Graph) safePush(id NodeID, n *node, port int, e stream.Element, queue *[]work) {
	defer func() {
		if r := recover(); r != nil {
			g.recordPanic(id, n, r)
		}
	}()
	n.op.Push(port, e, func(out stream.Element) {
		n.stats.Out++
		for _, ed := range n.out {
			*queue = append(*queue, work{to: ed.to, port: ed.port, e: out})
		}
	})
}

// flush finalizes operators in insertion order (sources feed nodes in
// the order they were added, so insertion order is a valid topological
// order for graphs built front-to-back).
func (g *Graph) flush(queue *[]work) {
	for id := range g.nodes {
		if g.halted.Load() {
			return
		}
		n := g.nodes[id]
		if n.detached {
			continue
		}
		g.safeFlush(NodeID(id), n, queue)
		g.drain(queue)
		// Exact post-flush sample: state peaks here, and the strided
		// dispatch-time sampling may have skipped the true maximum.
		if m := n.op.MemSize(); m > n.stats.MaxMemory {
			n.stats.MaxMemory = m
		}
	}
}

// safeFlush is the panic-isolation boundary around one operator flush.
func (g *Graph) safeFlush(id NodeID, n *node, queue *[]work) {
	defer func() {
		if r := recover(); r != nil {
			g.recordPanic(id, n, r)
		}
	}()
	n.op.Flush(func(out stream.Element) {
		n.stats.Out++
		for _, ed := range n.out {
			*queue = append(*queue, work{to: ed.to, port: ed.port, e: out})
		}
	})
}

// RunConcurrent executes the graph with one goroutine per operator and
// batched channels between them (see RunWith). Arrival order across
// different sources is not deterministic; use Run for experiments that
// depend on interleaving. Returns when all sources are exhausted and
// the pipeline has flushed. maxElements < 0 = unbounded; chanCap is the
// per-edge channel capacity in batches (<= 0 uses the default).
func (g *Graph) RunConcurrent(maxElements int64, chanCap int) {
	g.RunWith(maxElements, RunOptions{ChanCap: chanCap})
}
