// Package rate implements rate-based query optimization [VN02]
// (slides 39-41): plans are ranked by the tuple output rate they can
// sustain given stream arrival rates, operator service capacities and
// selectivities — not by the classic total-work cost metric.
//
// The model reproduces the tutorial's worked example: a 500 tuples/sec
// stream through {a slow selective operator, a very fast operator}
// yields 0.5 tuples/sec in one order and 5 tuples/sec in the other.
package rate

import (
	"fmt"
	"math"
	"sort"
)

// Op models one unary operator for rate purposes.
type Op struct {
	Name string
	// Sel is the fraction of input tuples that survive.
	Sel float64
	// Capacity is the service rate in tuples/sec; +Inf for operators
	// whose per-tuple cost is negligible ("very fast op").
	Capacity float64
}

// Validate checks the model parameters.
func (o Op) Validate() error {
	if o.Sel < 0 || o.Sel > 1 {
		return fmt.Errorf("rate: selectivity %v out of [0,1]", o.Sel)
	}
	if o.Capacity <= 0 {
		return fmt.Errorf("rate: capacity must be positive")
	}
	return nil
}

// ChainOutput computes the sustained output rate of a pipeline: each
// operator forwards min(input, capacity) * sel tuples/sec — input beyond
// the service capacity is dropped at that operator's queue (the
// steady-state behaviour of an overloaded operator).
func ChainOutput(input float64, chain []Op) float64 {
	r := input
	for _, op := range chain {
		r = math.Min(r, op.Capacity) * op.Sel
	}
	return r
}

// ChainCost computes the classic cost-metric: total service demand in
// operator-seconds per second of stream, the quantity a traditional
// least-cost optimizer would minimize (slide 40's contrast).
func ChainCost(input float64, chain []Op) float64 {
	r := input
	cost := 0.0
	for _, op := range chain {
		admitted := math.Min(r, op.Capacity)
		if !math.IsInf(op.Capacity, 1) {
			cost += admitted / op.Capacity
		}
		r = admitted * op.Sel
	}
	return cost
}

// ChainDemand computes the uncapped total service demand of a pipeline
// in operator-seconds per second: each operator is offered everything
// its upstream would emit at full service (capacity-clamped throughput,
// as in ChainOutput), but its own demand counts the full offered rate.
// Unlike ChainCost — whose admitted/capacity terms saturate at 1 — the
// result exceeds the number of operators exactly when no static
// configuration can keep up, which makes it the scaling signal for
// provisioning decisions: demand d needs ceil(d) servers, and demand
// beyond the available pool predicts load shedding.
func ChainDemand(input float64, chain []Op) float64 {
	r := input
	demand := 0.0
	for _, op := range chain {
		if !math.IsInf(op.Capacity, 1) {
			demand += r / op.Capacity
		}
		r = math.Min(r, op.Capacity) * op.Sel
	}
	return demand
}

// Plan is an operator ordering with its predicted metrics.
type Plan struct {
	Order  []int // indexes into the op set
	Output float64
	Cost   float64
}

// Names renders the plan order using the op names.
func (p Plan) Names(opSet []Op) []string {
	out := make([]string, len(p.Order))
	for i, idx := range p.Order {
		out[i] = opSet[idx].Name
	}
	return out
}

// Enumerate returns every permutation of the commutative operator set,
// with predicted output rate and cost, sorted by descending output rate.
// Intended for the small operator sets of streaming predicates (n <= 8).
func Enumerate(input float64, opSet []Op) ([]Plan, error) {
	if len(opSet) == 0 {
		return nil, fmt.Errorf("rate: empty operator set")
	}
	if len(opSet) > 8 {
		return nil, fmt.Errorf("rate: %d operators is too many to enumerate", len(opSet))
	}
	for _, op := range opSet {
		if err := op.Validate(); err != nil {
			return nil, err
		}
	}
	idx := make([]int, len(opSet))
	for i := range idx {
		idx[i] = i
	}
	var plans []Plan
	var rec func(k int)
	rec = func(k int) {
		if k == len(idx) {
			order := append([]int(nil), idx...)
			chain := make([]Op, len(order))
			for i, j := range order {
				chain[i] = opSet[j]
			}
			plans = append(plans, Plan{
				Order:  order,
				Output: ChainOutput(input, chain),
				Cost:   ChainCost(input, chain),
			})
			return
		}
		for i := k; i < len(idx); i++ {
			idx[k], idx[i] = idx[i], idx[k]
			rec(k + 1)
			idx[k], idx[i] = idx[i], idx[k]
		}
	}
	rec(0)
	sort.SliceStable(plans, func(i, j int) bool { return plans[i].Output > plans[j].Output })
	return plans, nil
}

// Best returns the rate-optimal plan (maximum output rate).
func Best(input float64, opSet []Op) (Plan, error) {
	plans, err := Enumerate(input, opSet)
	if err != nil {
		return Plan{}, err
	}
	return plans[0], nil
}

// LeastCost returns the plan a traditional optimizer would pick
// (minimum total service demand), for the rate-vs-cost contrast of
// slide 40.
func LeastCost(input float64, opSet []Op) (Plan, error) {
	plans, err := Enumerate(input, opSet)
	if err != nil {
		return Plan{}, err
	}
	best := plans[0]
	for _, p := range plans[1:] {
		if p.Cost < best.Cost {
			best = p
		}
	}
	return best, nil
}

// JoinModel predicts a sliding-window join's output rate from input
// rates, window lengths (seconds) and per-pair match probability
// [KNV03]: each arriving a-tuple meets rb*Tb candidate partners and
// vice versa.
type JoinModel struct {
	RateA, RateB     float64
	WindowA, WindowB float64 // seconds of stream time
	MatchProb        float64
	// CapacityProbes bounds the probes/sec the executor can perform;
	// +Inf when CPU is not the constraint.
	CapacityProbes float64
}

// OutputRate predicts result tuples per second.
func (m JoinModel) OutputRate() float64 {
	probesPerSec := m.RateA*m.RateB*m.WindowB + m.RateB*m.RateA*m.WindowA
	produced := probesPerSec * m.MatchProb
	if math.IsInf(m.CapacityProbes, 1) || probesPerSec <= m.CapacityProbes {
		return produced
	}
	// CPU-limited: only a fraction of probes happen.
	return produced * (m.CapacityProbes / probesPerSec)
}

// StateSize predicts the join's resident tuple count (memory demand).
func (m JoinModel) StateSize() float64 {
	return m.RateA*m.WindowA + m.RateB*m.WindowB
}
