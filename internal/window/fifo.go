package window

import "streamdb/internal/tuple"

// fifoSegLen is the tuples-per-segment granularity of Fifo. 64 pointers
// per segment keeps a segment within a cache-line multiple while making
// the freelist amortize allocation over 64 inserts.
const fifoSegLen = 64

// fifoFreeCap bounds the per-Fifo segment freelist so a transient burst
// does not pin memory forever.
const fifoFreeCap = 8

type fifoSeg struct {
	next  *fifoSeg
	elems [fifoSegLen]*tuple.Tuple
}

// Fifo is a queue of tuples backed by a linked list of fixed-size
// segments with a small per-instance freelist: the join operators'
// insertion-order state. Compared to a plain slice FIFO it neither
// leaks its consumed prefix (a reslice pins the backing array) nor
// reallocates on growth, and emptied segments are recycled locally, so
// steady-state windows reach a zero-allocation regime.
type Fifo struct {
	head, tail *fifoSeg
	headIdx    int // first live slot in head
	tailIdx    int // next free slot in tail
	count      int
	free       *fifoSeg
	nfree      int
	bytes      int
}

// NewFifo builds an empty tuple FIFO.
func NewFifo() *Fifo { return &Fifo{} }

func (f *Fifo) getSeg() *fifoSeg {
	if f.free != nil {
		s := f.free
		f.free = s.next
		s.next = nil
		f.nfree--
		return s
	}
	return &fifoSeg{}
}

func (f *Fifo) putSeg(s *fifoSeg) {
	if f.nfree >= fifoFreeCap {
		return // let the GC take it
	}
	*s = fifoSeg{next: f.free}
	f.free = s
	f.nfree++
}

// Push appends a tuple at the tail.
func (f *Fifo) Push(t *tuple.Tuple) {
	if f.tail == nil {
		f.tail = f.getSeg()
		f.head = f.tail
		f.headIdx, f.tailIdx = 0, 0
	} else if f.tailIdx == fifoSegLen {
		s := f.getSeg()
		f.tail.next = s
		f.tail = s
		f.tailIdx = 0
	}
	f.tail.elems[f.tailIdx] = t
	f.tailIdx++
	f.count++
	f.bytes += t.MemSize()
}

// PushRun appends a run of tuples at the tail, copying segment-sized
// chunks instead of re-checking the tail boundary per tuple: the bulk
// lane of the columnar join insert, where a whole equal-timestamp run
// lands in the window at once. Equivalent to calling Push in order.
func (f *Fifo) PushRun(run []*tuple.Tuple) {
	for len(run) > 0 {
		if f.tail == nil {
			f.tail = f.getSeg()
			f.head = f.tail
			f.headIdx, f.tailIdx = 0, 0
		} else if f.tailIdx == fifoSegLen {
			s := f.getSeg()
			f.tail.next = s
			f.tail = s
			f.tailIdx = 0
		}
		n := copy(f.tail.elems[f.tailIdx:], run)
		f.tailIdx += n
		f.count += n
		for _, t := range run[:n] {
			f.bytes += t.MemSize()
		}
		run = run[n:]
	}
}

// Front returns the oldest tuple, or nil when empty.
func (f *Fifo) Front() *tuple.Tuple {
	if f.count == 0 {
		return nil
	}
	return f.head.elems[f.headIdx]
}

// PopFront removes and returns the oldest tuple (nil when empty),
// recycling emptied segments through the freelist.
func (f *Fifo) PopFront() *tuple.Tuple {
	if f.count == 0 {
		return nil
	}
	t := f.head.elems[f.headIdx]
	f.head.elems[f.headIdx] = nil
	f.headIdx++
	f.count--
	f.bytes -= t.MemSize()
	if f.headIdx == fifoSegLen {
		s := f.head
		f.head = s.next
		f.headIdx = 0
		f.putSeg(s)
		if f.head == nil {
			f.tail = nil
			f.tailIdx = 0
		}
	} else if f.count == 0 {
		// Single partially-consumed segment: rewind it so a long-lived
		// queue does not creep through fresh segments while empty.
		f.headIdx = 0
		f.tailIdx = 0
	}
	return t
}

// Each visits live tuples oldest-first; return false to stop.
func (f *Fifo) Each(fn func(*tuple.Tuple) bool) {
	idx := f.headIdx
	for s := f.head; s != nil; s = s.next {
		end := fifoSegLen
		if s == f.tail {
			end = f.tailIdx
		}
		for ; idx < end; idx++ {
			if !fn(s.elems[idx]) {
				return
			}
		}
		idx = 0
	}
}

// AppendTo appends every live tuple oldest-first to dst and returns the
// extended slice: the snapshot path of the checkpoint subsystem, which
// serializes a window's contents without disturbing segment structure.
func (f *Fifo) AppendTo(dst []*tuple.Tuple) []*tuple.Tuple {
	if cap(dst)-len(dst) < f.count {
		grown := make([]*tuple.Tuple, len(dst), len(dst)+f.count)
		copy(grown, dst)
		dst = grown
	}
	f.Each(func(t *tuple.Tuple) bool {
		dst = append(dst, t)
		return true
	})
	return dst
}

// Len reports the number of queued tuples.
func (f *Fifo) Len() int { return f.count }

// MemSize reports the approximate bytes held (tuples plus segments).
func (f *Fifo) MemSize() int {
	segs := 0
	for s := f.head; s != nil; s = s.next {
		segs++
	}
	return f.bytes + segs*(16+8*fifoSegLen)
}
