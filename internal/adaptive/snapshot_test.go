package adaptive

// The eddy's Snapshot/Restore round-trip must preserve the learned
// routing: a restored eddy keeps the same filter order and keeps
// adapting from the same decayed statistics, so the continuation of a
// restored run routes exactly as the uninterrupted run would — the
// property the adaptive rescale path depends on when replica state
// moves between workers.

import (
	"testing"

	"streamdb/internal/ckpt"
)

func TestEddySnapshotRestoreContinues(t *testing.T) {
	build := func() *Eddy {
		fa := filt(t, "fa", "a", 0, 1)    // never true: should rank first
		fb := filt(t, "fb", "b", 1000, 1) // always true
		e, err := NewEddy([]*Filter{fb, fa}, 0.5, 20)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	orig := build()
	for i := int64(0); i < 200; i++ {
		orig.Process(row(i, 5, 5))
	}
	enc := &ckpt.Encoder{}
	if err := orig.Snapshot(enc); err != nil {
		t.Fatal(err)
	}
	restored := build()
	if err := restored.Restore(ckpt.NewDecoder(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got, want := restored.Order(), orig.Order(); got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("restored order = %v, want %v", got, want)
	}
	// Both continuations must behave identically: same routing decisions,
	// same statistics evolution.
	for i := int64(200); i < 400; i++ {
		if a, b := orig.Process(row(i, 5, 5)), restored.Process(row(i, 5, 5)); a != b {
			t.Fatalf("tuple %d: original %v, restored %v", i, a, b)
		}
	}
	oi, oo, oe := orig.Stats()
	ri, ro, re := restored.Stats()
	if oi != ri || oo != ro || oe != re {
		t.Errorf("diverged stats: original (%d,%d,%d), restored (%d,%d,%d)", oi, oo, oe, ri, ro, re)
	}
}

func TestEddyRestoreRejectsMismatch(t *testing.T) {
	two, err := NewEddy([]*Filter{filt(t, "fa", "a", 50, 1), filt(t, "fb", "b", 50, 1)}, 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	enc := &ckpt.Encoder{}
	if err := two.Snapshot(enc); err != nil {
		t.Fatal(err)
	}
	one, err := NewEddy([]*Filter{filt(t, "fa", "a", 50, 1)}, 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := one.Restore(ckpt.NewDecoder(enc.Bytes())); err == nil {
		t.Error("restore into an eddy with a different filter count must fail")
	}

	// A corrupted permutation (duplicate index) must be rejected before
	// any state is mutated.
	bad := &ckpt.Encoder{}
	bad.Uvarint(2)
	bad.Uvarint(0)
	bad.Uvarint(0) // duplicate
	for i := 0; i < 2; i++ {
		bad.Float64(1)
		bad.Float64(1)
	}
	bad.Varint(0)
	bad.Varint(0)
	bad.Varint(0)
	bad.Varint(0)
	fresh, err := NewEddy([]*Filter{filt(t, "fa", "a", 50, 1), filt(t, "fb", "b", 50, 1)}, 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(ckpt.NewDecoder(bad.Bytes())); err == nil {
		t.Error("restore with a duplicate filter order must fail")
	}
}
